package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fluxquery"
)

// TestMain quiets the access log for every test server in the package:
// newServer captures slog.Default at construction.
func TestMain(m *testing.M) {
	slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
	os.Exit(m.Run())
}

// promSamples is a tiny lexer for the Prometheus text exposition
// format (version 0.0.4). It validates the line grammar — every sample
// belongs to a family announced by # HELP and # TYPE lines, values
// parse as floats — and returns the samples keyed by the full series
// string (name plus label set).
func promSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	helped := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		series, val, found := cutSample(line)
		if !found {
			t.Fatalf("line %d: not a sample: %q", ln+1, line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, line, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// Histogram sample names carry the family name plus a suffix.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
				family = base
			}
		}
		if typed[family] == "" || !helped[family] {
			t.Fatalf("line %d: sample %q precedes its HELP/TYPE", ln+1, series)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = f
	}
	return samples
}

// cutSample splits a sample line into series (name{labels}) and value,
// tolerating spaces inside quoted label values.
func cutSample(line string) (series, value string, ok bool) {
	inQuotes := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inQuotes = !inQuotes
			}
		case ' ':
			if !inQuotes {
				return line[:i], line[i+1:], true
			}
		}
	}
	return "", "", false
}

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus text v0.0.4", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return promSamples(t, string(b))
}

// TestMetricsExposition: /metrics serves valid exposition covering the
// scan, pipeline, pool and HTTP families, and the pass counters are
// monotone across /eval calls.
func TestMetricsExposition(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setParallel(4)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}

	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(50)); code != 200 {
		t.Fatalf("eval 1: %d %s", code, body)
	}
	first := scrape(t, ts.URL)
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(50)); code != 200 {
		t.Fatalf("eval 2: %d %s", code, body)
	}
	second := scrape(t, ts.URL)

	for _, series := range []string{
		"flux_scan_passes_total",
		"flux_scan_bytes_total",
		"flux_scan_events_total",
		"flux_dispatch_batches_total",
		"flux_pass_seconds_count",
		`flux_eval_batch_seconds_count{plan="q3"}`,
		`flux_eval_batch_seconds_count{plan="titles"}`,
		`flux_stage_stall_seconds_total{stage="tokenize"}`,
		`flux_ring_peak_occupancy_count{ring="event"}`,
		"flux_pool_inflight",
		"flux_pool_capacity",
		"flux_pool_rejected_total",
		"flux_http_requests_total",
		"flux_http_request_seconds_count",
	} {
		if _, ok := second[series]; !ok {
			t.Errorf("exposition lacks %s", series)
		}
	}
	if first["flux_scan_passes_total"] != 1 || second["flux_scan_passes_total"] != 2 {
		t.Errorf("pass counter not monotone: %v then %v",
			first["flux_scan_passes_total"], second["flux_scan_passes_total"])
	}
	for _, counter := range []string{"flux_scan_bytes_total", "flux_scan_events_total", "flux_http_requests_total"} {
		if second[counter] <= first[counter] {
			t.Errorf("%s not monotone: %v then %v", counter, first[counter], second[counter])
		}
	}
}

// TestMetricsBufmgrSeries: a budgeted server exposes the buffer
// manager's ledger and spill traffic.
func TestMetricsBufmgrSeries(t *testing.T) {
	srv, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 16<<10, fluxquery.BufferSpill, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if err := srv.register("buf", testQBuf); err != nil {
		t.Fatal(err)
	}
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(200)); code != 200 {
		t.Fatalf("eval: %d %s", code, body)
	}
	samples := scrape(t, ts.URL)
	if got := samples["flux_bufmgr_budget_bytes"]; got != 16<<10 {
		t.Errorf("budget gauge = %v, want %d", got, 16<<10)
	}
	if samples["flux_bufmgr_spilled_bytes_total"] <= 0 || samples["flux_bufmgr_spill_ops_total"] <= 0 {
		t.Errorf("spill counters empty: spilled=%v ops=%v",
			samples["flux_bufmgr_spilled_bytes_total"], samples["flux_bufmgr_spill_ops_total"])
	}
}

// TestPoolSaturationMetrics: a shed request reports the live pool
// depth in its JSON body and increments the rejected-requests series.
func TestPoolSaturationMetrics(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setPool(1)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	srv.pool <- struct{}{} // occupy the only slot
	code, body := do(t, "POST", ts.URL+"/eval", testDoc(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated eval: %d %s", code, body)
	}
	var shed struct {
		Code     string `json:"code"`
		Depth    int    `json:"pool_depth"`
		Capacity int    `json:"pool_capacity"`
	}
	if err := json.Unmarshal([]byte(body), &shed); err != nil {
		t.Fatal(err)
	}
	if shed.Code != codePoolSaturated || shed.Depth != 1 || shed.Capacity != 1 {
		t.Fatalf("503 body = %s", body)
	}
	<-srv.pool
	samples := scrape(t, ts.URL)
	if samples["flux_pool_rejected_total"] != 1 {
		t.Errorf("rejected series = %v, want 1", samples["flux_pool_rejected_total"])
	}
}

// TestEvalTrace: ?trace=1 returns the pass's span tree, tagged with
// the request id and carrying stamped scan/dispatch/eval spans.
func TestEvalTrace(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/eval?trace=1", strings.NewReader(testDoc(100)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-me")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	b, _ := io.ReadAll(hresp.Body)
	if hresp.StatusCode != 200 {
		t.Fatalf("traced eval: %d %s", hresp.StatusCode, b)
	}
	var resp evalResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	tr := resp.Trace
	if tr == nil || tr.ID != "trace-me" || tr.PassID == 0 || tr.Root == nil {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Root.Name != "pass" || tr.Root.Dur <= 0 {
		t.Fatalf("root span = %+v", tr.Root)
	}
	names := map[string]bool{}
	for _, ch := range tr.Root.Children {
		names[ch.Name] = true
		for _, gr := range ch.Children {
			names[gr.Name] = true
		}
	}
	for _, want := range []string{"scan", "dispatch", "eval:q3"} {
		if !names[want] {
			t.Errorf("trace lacks span %q: have %v", want, names)
		}
	}
	// Untraced evals must not carry a tree.
	_, body := do(t, "POST", ts.URL+"/eval", testDoc(1))
	var plain evalResponse
	if err := json.Unmarshal([]byte(body), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Errorf("untraced eval carries a trace: %+v", plain.Trace)
	}
}

// TestConcurrentScrapeRace drives pipelined /eval traffic while
// scraping /metrics from other goroutines; under -race this pins the
// scrape path against live instrument writes.
func TestConcurrentScrapeRace(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setParallel(2)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}
	doc := testDoc(200)
	const evalWorkers, scrapeWorkers, rounds = 3, 2, 8
	var wg sync.WaitGroup
	errs := make(chan error, evalWorkers*rounds)
	for w := 0; w < evalWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/eval", "application/xml", strings.NewReader(doc))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("eval: %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for w := 0; w < scrapeWorkers; w++ {
		wg.Add(1)
		go func() {
			// t.Fatal is test-goroutine-only, so the workers just drain
			// the exposition; the validated scrape happens after the join.
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("metrics: %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	final := scrape(t, ts.URL)
	if got := final["flux_scan_passes_total"]; got != evalWorkers*rounds {
		t.Errorf("passes = %v, want %d", got, evalWorkers*rounds)
	}
}
