package main

// Lifecycle tests: the -eval-timeout / client-disconnect / drain error
// taxonomy and the SIGTERM drain sequence, exercised through the
// public handler.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxquery"
)

// TestEvalTimeoutCode: with -eval-timeout set, a pass stalled on a
// client that stops sending mid-document is terminated at the deadline
// and classified 504 TIMEOUT — the read deadline pinned to the eval
// budget unblocks the body read that context cancellation alone could
// not interrupt.
func TestEvalTimeoutCode(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setEvalTimeout(60 * time.Millisecond)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		// An open document, then silence: the server stays blocked in a
		// body read until its deadline fires.
		pw.Write([]byte("<bib><book><title>T</title>"))
	}()
	resp, err := http.Post(ts.URL+"/eval", "application/xml", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled eval: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), codeTimeout) {
		t.Fatalf("504 body lacks the %s code: %s", codeTimeout, body)
	}

	// The server is intact: a normal document still evaluates.
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(2)); code != 200 {
		t.Fatalf("eval after timeout: %d %s", code, body)
	}
}

// TestClientGoneCode: a pass whose request context is already dead is
// classified 499 CLIENT_GONE — the caller vanished; nothing was wrong
// with the document or the server.
func TestClientGoneCode(t *testing.T) {
	srv, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 0, fluxquery.BufferSpill, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/eval", strings.NewReader(testDoc(50))).WithContext(ctx)
	rr := httptest.NewRecorder()
	srv.handler().ServeHTTP(rr, req)
	if rr.Code != statusClientGone {
		t.Fatalf("dead-client eval: %d %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), codeClientGone) {
		t.Fatalf("499 body lacks the %s code: %s", codeClientGone, rr.Body)
	}
}

// TestDrainLifecycle: beginDrain closes intake (retryable 503 DRAINING)
// and flips the /stats state; with nothing in flight, drain completes
// cleanly within its deadline.
func TestDrainLifecycle(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if got := statsState(t, ts.URL); got != "serving" {
		t.Fatalf("steady-state /stats state = %q", got)
	}

	srv.beginDrain()
	req, _ := http.NewRequest("POST", ts.URL+"/eval", strings.NewReader(testDoc(1)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), codeDraining) {
		t.Fatalf("draining eval: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 DRAINING without a Retry-After header")
	}
	if got := statsState(t, ts.URL); got != "draining" {
		t.Fatalf("draining /stats state = %q", got)
	}
	if !srv.drain(time.Second) {
		t.Fatal("drain with no in-flight passes reported a timeout")
	}
}

func statsState(t *testing.T, url string) string {
	t.Helper()
	_, body := do(t, "GET", url+"/stats", "")
	var st statsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats: %v: %s", err, body)
	}
	return st.State
}

// TestDrainCancelsInflightPass: a pass still streaming when the drain
// deadline expires is cancelled — the handler answers 503 DRAINING and
// drain reports the forced (non-clean) exit.
func TestDrainCancelsInflightPass(t *testing.T) {
	srv, ts := newTestServer(t)
	// A single eval slot doubles as the admission probe: once the pass
	// holds it, the server is provably mid-stream.
	srv.setPool(1)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopFeed := func() { stopOnce.Do(func() { close(stop); pw.Close() }) }
	defer stopFeed()
	go func() {
		// Feed an endless document slowly so the pass outlives the drain
		// deadline and hits its cancellation checks between reads.
		pw.Write([]byte("<bib>"))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pw.Write([]byte("<book><title>x</title></book>")); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	type result struct {
		code int
		body string
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/eval", "application/xml", pr)
		if err != nil {
			resc <- result{}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{resp.StatusCode, string(b)}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for len(srv.pool) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pass never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if clean := srv.drain(50 * time.Millisecond); clean {
		t.Error("drain reported clean with a pass still streaming")
	}
	// drain returning proves the cancelled handler finished; stop the
	// body stream so the client transport delivers its buffered 503 (an
	// HTTP/1 client that keeps streaming its body holds the response).
	stopFeed()
	select {
	case res := <-resc:
		if res.code != http.StatusServiceUnavailable || !strings.Contains(res.body, codeDraining) {
			t.Fatalf("cancelled in-flight eval: %d %s", res.code, res.body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight pass not cancelled by the drain deadline")
	}
}
