package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"fluxquery"
)

// server holds the compiled-query registry. Plans are compiled once at
// registration; each /eval assembles a StreamSet from the selected plans
// and evaluates the posted document in one shared pass.
type server struct {
	d       *fluxquery.DTD
	maxBody int64
	proj    fluxquery.Projection

	mu      sync.RWMutex
	queries map[string]*entry
}

type entry struct {
	name string
	src  string
	plan *fluxquery.Plan
}

func newServer(dtdSrc string, maxBody int64, proj fluxquery.Projection) (*server, error) {
	d, err := fluxquery.ParseDTD(dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("parsing DTD: %w", err)
	}
	return &server{d: d, maxBody: maxBody, proj: proj, queries: map[string]*entry{}}, nil
}

func (s *server) root() string { return s.d.Root() }

func (s *server) register(name, src string) error {
	if name == "" {
		return fmt.Errorf("empty query name")
	}
	q, err := fluxquery.ParseQuery(src)
	if err != nil {
		return err
	}
	p, err := fluxquery.Compile(q, s.d, fluxquery.Options{})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.queries[name] = &entry{name: name, src: src, plan: p}
	s.mu.Unlock()
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("PUT /queries/{name}", s.handlePut)
	mux.HandleFunc("GET /queries/{name}", s.handleGet)
	mux.HandleFunc("DELETE /queries/{name}", s.handleDelete)
	mux.HandleFunc("POST /eval", s.handleEval)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.queries)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "root": s.root(), "queries": n})
}

type queryInfo struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]queryInfo, 0, len(s.queries))
	for _, e := range s.queries {
		out = append(out, queryInfo{Name: e.name, Query: e.src})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "query exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if err := s.register(name, string(src)); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "compiling query %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"registered": name})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.queries[name]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, queryInfo{Name: e.name, Query: e.src})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

type evalStats struct {
	Events             int64 `json:"events"`
	PeakBufferBytes    int64 `json:"peak_buffer_bytes"`
	BufferedBytesTotal int64 `json:"buffered_bytes_total"`
	OutputBytes        int64 `json:"output_bytes"`
	SkippedSubtrees    int64 `json:"skipped_subtrees"`
	HandlerFirings     int64 `json:"handler_firings"`
}

type evalResult struct {
	Query  string    `json:"query"`
	Output string    `json:"output,omitempty"`
	Error  string    `json:"error,omitempty"`
	Stats  evalStats `json:"stats"`
}

// scanStats reports the shared scan pass of one /eval: exactly one
// tokenize+validate pass feeds every selected query, and — with
// projection on — events no selected query can use are pruned before any
// evaluator sees them.
type scanStats struct {
	Passes          int64  `json:"passes"`
	Projection      string `json:"projection"`
	EventsDelivered int64  `json:"events_delivered"`
	EventsSkipped   int64  `json:"events_skipped"`
	SubtreesSkipped int64  `json:"subtrees_skipped"`
	BytesSkipped    int64  `json:"bytes_skipped"`
}

type evalResponse struct {
	DurationMicros int64        `json:"duration_us"`
	Scan           scanStats    `json:"scan"`
	Results        []evalResult `json:"results"`
}

// handleEval evaluates the selected queries over the posted document in a
// single shared tokenize+validate pass.
func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	names := r.URL.Query()["q"]
	s.mu.RLock()
	var selected []*entry
	if len(names) == 0 {
		for _, e := range s.queries {
			selected = append(selected, e)
		}
	} else {
		for _, name := range names {
			e, ok := s.queries[name]
			if !ok {
				s.mu.RUnlock()
				writeErr(w, http.StatusNotFound, "no query %q", name)
				return
			}
			selected = append(selected, e)
		}
	}
	s.mu.RUnlock()
	sort.Slice(selected, func(i, j int) bool { return selected[i].name < selected[j].name })

	set := fluxquery.NewStreamSet(s.d)
	set.SetProjection(s.proj)
	outs := make([]*bytes.Buffer, len(selected))
	regs := make([]*fluxquery.StreamQuery, len(selected))
	for i, e := range selected {
		outs[i] = &bytes.Buffer{}
		reg, err := set.Register(e.plan, outs[i])
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "registering %q: %v", e.name, err)
			return
		}
		regs[i] = reg
	}

	start := time.Now()
	if err := set.Run(http.MaxBytesReader(w, r.Body, s.maxBody)); err != nil {
		// MaxBytesReader makes an oversized body a read error at the
		// limit, so a too-large document cannot be silently truncated
		// into a (possibly valid) prefix.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "document exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "document rejected: %v", err)
		return
	}
	resp := evalResponse{DurationMicros: time.Since(start).Microseconds()}
	sc := set.LastScan()
	resp.Scan = scanStats{
		Passes:          sc.Passes,
		Projection:      s.proj.String(),
		EventsDelivered: sc.EventsDelivered,
		EventsSkipped:   sc.EventsSkipped,
		SubtreesSkipped: sc.SubtreesSkipped,
		BytesSkipped:    sc.BytesSkipped,
	}
	for i, e := range selected {
		st, err := regs[i].Stats()
		res := evalResult{
			Query:  e.name,
			Output: outs[i].String(),
			Stats: evalStats{
				Events:             st.Events,
				PeakBufferBytes:    st.PeakBufferBytes,
				BufferedBytesTotal: st.BufferedBytesTotal,
				OutputBytes:        st.OutputBytes,
				SkippedSubtrees:    st.SkippedSubtrees,
				HandlerFirings:     st.HandlerFirings,
			},
		}
		if err != nil {
			res.Error = err.Error()
			res.Output = ""
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}
