package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"fluxquery"
)

// server holds the compiled-query registry. Plans are compiled once at
// registration; each /eval assembles a StreamSet from the selected plans
// and evaluates the posted document in one shared pass. One process-wide
// BufferManager (when -budget is set) governs the buffer memory of every
// concurrent pass.
type server struct {
	d       *fluxquery.DTD
	maxBody int64
	proj    fluxquery.Projection
	bufs    *fluxquery.BufferManager
	policy  fluxquery.BufferPolicy
	budget  int64

	mu      sync.RWMutex
	queries map[string]*entry
	// agg accumulates per-query scan/buffer/spill statistics across
	// /eval calls for GET /stats.
	agg map[string]*queryAgg
	// evals counts completed /eval passes.
	evals int64
}

type entry struct {
	name string
	src  string
	plan *fluxquery.Plan
}

// queryAgg is the cumulative record of one registered query.
type queryAgg struct {
	Evals               int64 `json:"evals"`
	Errors              int64 `json:"errors"`
	BudgetRejections    int64 `json:"budget_rejections"`
	Events              int64 `json:"events"`
	OutputBytes         int64 `json:"output_bytes"`
	PeakBufferBytes     int64 `json:"peak_buffer_bytes"`
	PeakHeapBufferBytes int64 `json:"peak_heap_buffer_bytes"`
	SpilledBytes        int64 `json:"spilled_bytes"`
	RehydratedBytes     int64 `json:"rehydrated_bytes"`
	StallMicros         int64 `json:"stall_us"`
}

func newServer(dtdSrc string, maxBody int64, proj fluxquery.Projection, budget int64, policy fluxquery.BufferPolicy, spillDir string) (*server, error) {
	d, err := fluxquery.ParseDTD(dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("parsing DTD: %w", err)
	}
	s := &server{
		d: d, maxBody: maxBody, proj: proj,
		budget: budget, policy: policy,
		queries: map[string]*entry{}, agg: map[string]*queryAgg{},
	}
	if budget > 0 {
		s.bufs = fluxquery.NewBufferManager(budget, policy, spillDir)
	}
	return s, nil
}

func (s *server) root() string { return s.d.Root() }

func (s *server) register(name, src string) error {
	if name == "" {
		return fmt.Errorf("empty query name")
	}
	q, err := fluxquery.ParseQuery(src)
	if err != nil {
		return err
	}
	p, err := fluxquery.Compile(q, s.d, fluxquery.Options{})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.queries[name] = &entry{name: name, src: src, plan: p}
	s.mu.Unlock()
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("PUT /queries/{name}", s.handlePut)
	mux.HandleFunc("GET /queries/{name}", s.handleGet)
	mux.HandleFunc("DELETE /queries/{name}", s.handleDelete)
	mux.HandleFunc("POST /eval", s.handleEval)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.queries)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "root": s.root(), "queries": n})
}

type queryInfo struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]queryInfo, 0, len(s.queries))
	for _, e := range s.queries {
		out = append(out, queryInfo{Name: e.name, Query: e.src})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "query exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if err := s.register(name, string(src)); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "compiling query %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"registered": name})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.queries[name]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, queryInfo{Name: e.name, Query: e.src})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

type evalStats struct {
	Events             int64 `json:"events"`
	PeakBufferBytes    int64 `json:"peak_buffer_bytes"`
	BufferedBytesTotal int64 `json:"buffered_bytes_total"`
	OutputBytes        int64 `json:"output_bytes"`
	SkippedSubtrees    int64 `json:"skipped_subtrees"`
	HandlerFirings     int64 `json:"handler_firings"`
	// Buffer-budget counters (zero unless the server runs with -budget):
	// heap-resident high-water, spill traffic, and backpressure stall.
	PeakHeapBufferBytes int64 `json:"peak_heap_buffer_bytes,omitempty"`
	SpilledBytes        int64 `json:"spilled_bytes,omitempty"`
	RehydratedBytes     int64 `json:"rehydrated_bytes,omitempty"`
	StallMicros         int64 `json:"stall_us,omitempty"`
}

type evalResult struct {
	Query  string `json:"query"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// Code classifies a per-query failure: 413 when the query was
	// rejected for exceeding the buffer budget (the 413-style per-query
	// rejection of a BufferFail server), 422 for any other evaluation
	// error. The HTTP status stays 200: the shared pass succeeded and
	// sibling queries carry results.
	Code  int       `json:"code,omitempty"`
	Stats evalStats `json:"stats"`
}

// scanStats reports the shared scan pass of one /eval: exactly one
// tokenize+validate pass feeds every selected query, and — with
// projection on — events no selected query can use are pruned before any
// evaluator sees them.
type scanStats struct {
	Passes          int64  `json:"passes"`
	Projection      string `json:"projection"`
	EventsDelivered int64  `json:"events_delivered"`
	EventsSkipped   int64  `json:"events_skipped"`
	SubtreesSkipped int64  `json:"subtrees_skipped"`
	BytesSkipped    int64  `json:"bytes_skipped"`
	// StallMicros is the time the shared pass spent blocked by
	// backpressure (zero unless -budget with -budget-policy backpressure).
	StallMicros int64 `json:"stall_us,omitempty"`
}

type evalResponse struct {
	DurationMicros int64        `json:"duration_us"`
	Scan           scanStats    `json:"scan"`
	Results        []evalResult `json:"results"`
}

// handleEval evaluates the selected queries over the posted document in a
// single shared tokenize+validate pass.
func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	names := r.URL.Query()["q"]
	s.mu.RLock()
	var selected []*entry
	if len(names) == 0 {
		for _, e := range s.queries {
			selected = append(selected, e)
		}
	} else {
		for _, name := range names {
			e, ok := s.queries[name]
			if !ok {
				s.mu.RUnlock()
				writeErr(w, http.StatusNotFound, "no query %q", name)
				return
			}
			selected = append(selected, e)
		}
	}
	s.mu.RUnlock()
	sort.Slice(selected, func(i, j int) bool { return selected[i].name < selected[j].name })

	set := fluxquery.NewStreamSet(s.d)
	set.SetProjection(s.proj)
	set.SetBuffers(s.bufs)
	outs := make([]*bytes.Buffer, len(selected))
	regs := make([]*fluxquery.StreamQuery, len(selected))
	for i, e := range selected {
		outs[i] = &bytes.Buffer{}
		reg, err := set.Register(e.plan, outs[i])
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "registering %q: %v", e.name, err)
			return
		}
		regs[i] = reg
	}

	start := time.Now()
	if err := set.Run(http.MaxBytesReader(w, r.Body, s.maxBody)); err != nil {
		// MaxBytesReader makes an oversized body a read error at the
		// limit, so a too-large document cannot be silently truncated
		// into a (possibly valid) prefix.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "document exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "document rejected: %v", err)
		return
	}
	resp := evalResponse{DurationMicros: time.Since(start).Microseconds()}
	sc := set.LastScan()
	resp.Scan = scanStats{
		Passes:          sc.Passes,
		Projection:      s.proj.String(),
		EventsDelivered: sc.EventsDelivered,
		EventsSkipped:   sc.EventsSkipped,
		SubtreesSkipped: sc.SubtreesSkipped,
		BytesSkipped:    sc.BytesSkipped,
		StallMicros:     sc.Stall.Microseconds(),
	}
	for i, e := range selected {
		st, err := regs[i].Stats()
		res := evalResult{
			Query:  e.name,
			Output: outs[i].String(),
			Stats: evalStats{
				Events:              st.Events,
				PeakBufferBytes:     st.PeakBufferBytes,
				BufferedBytesTotal:  st.BufferedBytesTotal,
				OutputBytes:         st.OutputBytes,
				SkippedSubtrees:     st.SkippedSubtrees,
				HandlerFirings:      st.HandlerFirings,
				PeakHeapBufferBytes: st.PeakHeapBufferBytes,
				SpilledBytes:        st.SpilledBytes,
				RehydratedBytes:     st.RehydratedBytes,
				StallMicros:         st.BudgetStall.Microseconds(),
			},
		}
		if err != nil {
			res.Error = err.Error()
			res.Output = ""
			res.Code = http.StatusUnprocessableEntity
			if errors.Is(err, fluxquery.ErrBudgetExceeded) {
				res.Code = http.StatusRequestEntityTooLarge
			}
		}
		s.record(e.name, st, err)
		resp.Results = append(resp.Results, res)
	}
	s.mu.Lock()
	s.evals++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// record folds one query's pass outcome into the /stats aggregates.
func (s *server) record(name string, st fluxquery.Stats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agg[name]
	if a == nil {
		a = &queryAgg{}
		s.agg[name] = a
	}
	a.Evals++
	if err != nil {
		a.Errors++
		if errors.Is(err, fluxquery.ErrBudgetExceeded) {
			a.BudgetRejections++
		}
	}
	a.Events += st.Events
	a.OutputBytes += st.OutputBytes
	if st.PeakBufferBytes > a.PeakBufferBytes {
		a.PeakBufferBytes = st.PeakBufferBytes
	}
	if st.PeakHeapBufferBytes > a.PeakHeapBufferBytes {
		a.PeakHeapBufferBytes = st.PeakHeapBufferBytes
	}
	a.SpilledBytes += st.SpilledBytes
	a.RehydratedBytes += st.RehydratedBytes
	a.StallMicros += st.BudgetStall.Microseconds()
}

// statsResponse is the GET /stats document: per-query cumulative
// scan/buffer/spill aggregates plus the process-wide buffer-manager
// snapshot.
type statsResponse struct {
	Evals   int64                `json:"evals"`
	Queries map[string]*queryAgg `json:"queries"`
	Buffers *bufferStats         `json:"buffers,omitempty"`
}

// bufferStats embeds the manager snapshot (whose fields carry their
// own JSON tags, so new counters appear here automatically) plus the
// stall in the microsecond unit the rest of the API uses.
type bufferStats struct {
	fluxquery.BufferMetrics
	StallMicros int64 `json:"stall_us"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := statsResponse{Evals: s.evals, Queries: make(map[string]*queryAgg, len(s.agg))}
	for name, a := range s.agg {
		cp := *a
		resp.Queries[name] = &cp
	}
	s.mu.RUnlock()
	if s.bufs != nil {
		mt := s.bufs.Metrics()
		resp.Buffers = &bufferStats{BufferMetrics: mt, StallMicros: mt.StallNanos / 1000}
	}
	writeJSON(w, http.StatusOK, resp)
}
