package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fluxquery"
	"fluxquery/internal/faultinj"
	"fluxquery/internal/telemetry"
)

// Lifecycle states of the server, reported by GET /stats and the
// flux_server_draining gauge. Serving is the steady state; draining
// means a shutdown signal arrived — intake is closed (new /eval gets a
// structured 503 DRAINING) while in-flight passes finish under the
// drain deadline.
const (
	stateServing int32 = iota
	stateDraining
)

// server holds the compiled-query registry. Plans are compiled once at
// registration; each /eval assembles a StreamSet from the selected plans
// and evaluates the posted document in one shared pass. One process-wide
// BufferManager (when -budget is set) governs the buffer memory of every
// concurrent pass.
type server struct {
	d       *fluxquery.DTD
	maxBody int64
	proj    fluxquery.Projection
	bufs    *fluxquery.BufferManager
	policy  fluxquery.BufferPolicy
	budget  int64
	// parallel, when >= 2, runs each /eval's shared pass pipelined with
	// that many feed workers (StreamSet.SetParallel).
	parallel int
	// dispatch selects each pass's fan-out strategy: fanout (every batch
	// to every query) or trie (events routed through the shared dispatch
	// trie, per-query delivery).
	dispatch fluxquery.Dispatch
	// pool bounds the number of concurrently streaming /eval passes: a
	// request that cannot claim a slot without blocking is rejected with
	// a structured 503 rather than queued, so saturation is visible to
	// the client instead of turning into unbounded goroutines all
	// contending for the one buffer budget. nil = unbounded.
	pool chan struct{}

	// evalTimeout, when > 0, bounds each /eval pass's wall time
	// (-eval-timeout): the per-request context gets the deadline and the
	// connection's read deadline is pinned to it, so a pass stuck in a
	// body read is unblocked too. Expiry maps to 504 TIMEOUT.
	evalTimeout time.Duration
	// state is the lifecycle state (stateServing/stateDraining).
	state atomic.Int32
	// passCtx is the ancestor of every /eval's request context; drain
	// cancels it (via passCancel) after the drain deadline so stuck
	// passes terminate instead of holding shutdown hostage.
	passCtx    context.Context
	passCancel context.CancelFunc
	// inflight tracks running /eval handlers so drain can wait for them.
	// lifeMu makes the state check and the inflight registration one
	// atomic step against beginDrain: once the state flips, no handler
	// can slip a new Add past drain's Wait.
	lifeMu   sync.Mutex
	inflight sync.WaitGroup

	// tel is the process-wide metrics registry behind GET /metrics; the
	// shared passes, the buffer manager and the ingest pool all publish
	// into it.
	tel *fluxquery.Telemetry
	// rec is the process-wide pass flight recorder behind the
	// GET /debug/passes endpoints (nil when -flightrec 0): every /eval
	// pass deposits one record, and passes over the -slow-pass /
	// -slow-stall thresholds dump a span-tree post-mortem through the
	// structured log, keyed by request id.
	rec *fluxquery.FlightRecorder
	// ledger attributes cumulative cost (eval CPU, events, bytes, buffer
	// peaks, errors) to registered query names across every /eval pass —
	// behind GET /queries/{name}/stats and GET /top.
	ledger *fluxquery.QueryLedger
	// started stamps process start for flux_server_uptime_seconds and
	// /stats; build describes the binary for flux_build_info.
	started time.Time
	build   buildMeta
	// log writes structured access logs; every request gets an id
	// (X-Request-Id) that also tags its ?trace=1 span tree.
	log    *slog.Logger
	reqSeq atomic.Uint64
	idBase string
	// mRejected, mHTTPReqs, mHTTPSecs are the server's own series:
	// shed-load rejections, request count and request latency.
	mRejected *telemetry.Counter
	mHTTPReqs *telemetry.Counter
	mHTTPSecs *telemetry.Histogram

	mu      sync.RWMutex
	queries map[string]*entry
	// agg accumulates per-query scan/buffer/spill statistics across
	// /eval calls for GET /stats.
	agg map[string]*queryAgg
	// evals counts completed /eval passes; rejected counts structured
	// 503 pool rejections.
	evals    int64
	rejected int64
	// pipeline accumulates pipelined-pass metrics across /eval calls;
	// dispatchStats accumulates trie-routed-pass metrics likewise.
	pipeline      pipelineAgg
	dispatchStats dispatchAgg
}

// dispatchAgg is the cumulative record of trie-routed shared passes for
// GET /stats.
type dispatchAgg struct {
	Passes     int64 `json:"passes"`
	Events     int64 `json:"events"`
	Deliveries int64 `json:"deliveries"`
	Flushes    int64 `json:"flushes"`
	TrieNodes  int   `json:"trie_nodes"`
	MaxFanout  int   `json:"max_fanout"`
}

// pipelineAgg is the cumulative record of pipelined shared passes for
// GET /stats.
type pipelineAgg struct {
	Passes              int64 `json:"passes"`
	Batches             int64 `json:"batches"`
	Steals              int64 `json:"steals"`
	TokenizeStallMicros int64 `json:"tokenize_stall_us"`
	ValidateStallMicros int64 `json:"validate_stall_us"`
	DispatchStallMicros int64 `json:"dispatch_stall_us"`
	TokenRingPeak       int   `json:"token_ring_peak"`
	EventRingPeak       int   `json:"event_ring_peak"`
}

type entry struct {
	name string
	src  string
	plan *fluxquery.Plan
}

// queryAgg is the cumulative record of one registered query.
type queryAgg struct {
	Evals               int64 `json:"evals"`
	Errors              int64 `json:"errors"`
	BudgetRejections    int64 `json:"budget_rejections"`
	Events              int64 `json:"events"`
	OutputBytes         int64 `json:"output_bytes"`
	PeakBufferBytes     int64 `json:"peak_buffer_bytes"`
	PeakHeapBufferBytes int64 `json:"peak_heap_buffer_bytes"`
	SpilledBytes        int64 `json:"spilled_bytes"`
	RehydratedBytes     int64 `json:"rehydrated_bytes"`
	StallMicros         int64 `json:"stall_us"`
}

func newServer(dtdSrc string, maxBody int64, proj fluxquery.Projection, budget int64, policy fluxquery.BufferPolicy, spillDir string) (*server, error) {
	d, err := fluxquery.ParseDTD(dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("parsing DTD: %w", err)
	}
	s := &server{
		d: d, maxBody: maxBody, proj: proj,
		budget: budget, policy: policy,
		queries: map[string]*entry{}, agg: map[string]*queryAgg{},
		ledger:  fluxquery.NewQueryLedger(),
		started: time.Now(),
		build:   readBuildMeta(),
	}
	s.passCtx, s.passCancel = context.WithCancel(context.Background())
	if budget > 0 {
		s.bufs = fluxquery.NewBufferManager(budget, policy, spillDir)
	}
	s.tel = fluxquery.NewTelemetry()
	s.log = slog.Default()
	s.idBase = fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff)
	reg := s.tel.Registry()
	s.mRejected = reg.Counter("flux_pool_rejected_total",
		"Eval requests shed with a structured 503 POOL_SATURATED.")
	s.mHTTPReqs = reg.Counter("flux_http_requests_total",
		"HTTP requests served.")
	s.mHTTPSecs = reg.Histogram("flux_http_request_seconds",
		"HTTP request wall time.", telemetry.LatencyBuckets, telemetry.ScaleNanos)
	if s.bufs != nil {
		s.bufs.RegisterMetrics(s.tel)
	}
	reg.GaugeFunc("flux_server_draining",
		"1 while the server is draining (intake closed, in-flight passes finishing), else 0.",
		func() int64 { return int64(s.state.Load()) })
	reg.GaugeFunc("flux_build_info",
		"Build metadata; the value is constant 1, the labels carry the versions.",
		func() int64 { return 1 },
		telemetry.L("version", s.build.Version),
		telemetry.L("goversion", s.build.GoVersion),
		telemetry.L("revision", s.build.Revision))
	reg.GaugeFunc("flux_server_uptime_seconds",
		"Seconds since process start.",
		func() int64 { return int64(time.Since(s.started).Seconds()) })
	faultinj.RegisterMetrics(reg)
	return s, nil
}

// buildMeta describes the running binary for flux_build_info and /stats.
type buildMeta struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

// readBuildMeta extracts the module version, Go toolchain version and
// VCS revision stamped into the binary by the Go linker. A binary built
// outside a module or VCS checkout (go test binaries, bare go run)
// reports "devel"/"unknown" rather than failing.
func readBuildMeta() buildMeta {
	m := buildMeta{Version: "devel", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return m
	}
	m.GoVersion = bi.GoVersion
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		m.Version = v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			m.Revision = kv.Value
		}
	}
	return m
}

// setFlightRecorder installs the pass flight recorder (size <= 0
// disables it and the /debug/passes endpoints). slowPass and slowStall
// arm the slow-pass capture policy. Must be called before the server
// handles requests.
func (s *server) setFlightRecorder(size int, slowPass, slowStall time.Duration) {
	if size <= 0 {
		s.rec = nil
		return
	}
	s.rec = fluxquery.NewFlightRecorder(fluxquery.FlightRecorderConfig{
		Size:        size,
		SlowLatency: slowPass,
		SlowStall:   slowStall,
		Logger:      s.log,
	})
}

// setEvalTimeout bounds each /eval pass's wall time (0 = unbounded).
func (s *server) setEvalTimeout(d time.Duration) { s.evalTimeout = d }

// lifecycle names the current state for /stats and logs.
func (s *server) lifecycle() string {
	if s.state.Load() == stateDraining {
		return "draining"
	}
	return "serving"
}

// beginDrain closes /eval intake: new passes are rejected with a
// structured 503 DRAINING while in-flight passes keep running.
// Idempotent.
func (s *server) beginDrain() {
	s.lifeMu.Lock()
	s.state.Store(stateDraining)
	s.lifeMu.Unlock()
}

// drain waits up to timeout for in-flight /eval passes to finish, then
// cancels the pass context so stragglers terminate through the engine's
// cancellation path. Returns true when every pass finished within the
// deadline (false means stragglers were cancelled and then joined).
func (s *server) drain(timeout time.Duration) bool {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var clean bool
	select {
	case <-done:
		clean = true
	case <-time.After(timeout):
	}
	// Cancel unconditionally: pending passes (timeout path) terminate,
	// and the watcher goroutines of any future Bind calls never leak.
	s.passCancel()
	<-done
	return clean
}

// setParallel selects pipelined shared passes for /eval (>= 2; 0/1 is
// sequential).
func (s *server) setParallel(n int) { s.parallel = n }

// setDispatch selects the fan-out strategy of /eval's shared passes.
func (s *server) setDispatch(d fluxquery.Dispatch) { s.dispatch = d }

// setPool bounds the in-flight /eval passes to n (0 = unbounded). Must
// be called before the server starts handling requests.
func (s *server) setPool(n int) {
	if n <= 0 {
		s.pool = nil
		return
	}
	s.pool = make(chan struct{}, n)
}

func (s *server) root() string { return s.d.Root() }

func (s *server) register(name, src string) error {
	if name == "" {
		return fmt.Errorf("empty query name")
	}
	q, err := fluxquery.ParseQuery(src)
	if err != nil {
		return err
	}
	p, err := fluxquery.Compile(q, s.d, fluxquery.Options{})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.queries[name] = &entry{name: name, src: src, plan: p}
	s.mu.Unlock()
	return nil
}

func (s *server) handler() http.Handler {
	// Pool occupancy is read at scrape time straight off the slot
	// channel (len = passes streaming now, cap = -pool). Registered here
	// rather than in newServer so setPool has run.
	reg := s.tel.Registry()
	reg.GaugeFunc("flux_pool_inflight",
		"Eval passes currently streaming.",
		func() int64 { return int64(len(s.pool)) })
	reg.GaugeFunc("flux_pool_capacity",
		"Maximum concurrently streaming eval passes (-pool; 0 = unbounded).",
		func() int64 { return int64(cap(s.pool)) })

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /queries", s.handleList)
	mux.HandleFunc("PUT /queries/{name}", s.handlePut)
	mux.HandleFunc("GET /queries/{name}", s.handleGet)
	mux.HandleFunc("DELETE /queries/{name}", s.handleDelete)
	mux.HandleFunc("POST /eval", s.handleEval)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /queries/{name}/stats", s.handleQueryStats)
	mux.HandleFunc("GET /top", s.handleTop)
	mux.HandleFunc("GET /debug/passes", s.handlePasses)
	mux.HandleFunc("GET /debug/passes/{id}", s.handlePass)
	return s.withObservability(mux)
}

// handleMetrics serves the registry in Prometheus text exposition
// format (version 0.0.4) for scraping.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", fluxquery.MetricsContentType)
	_ = s.tel.WritePrometheus(w)
}

// ctxReqID keys the request id in the request context.
type ctxKey int

const ctxReqID ctxKey = 0

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach the connection's deadline controls through the wrapper — the
// -eval-timeout read deadline is a silent no-op without it.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// withObservability assigns every request an id (returned as
// X-Request-Id and propagated to ?trace=1 span trees), writes a
// structured access log line, and feeds the request-rate and latency
// series.
func (s *server) withObservability(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("%s-%d", s.idBase, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), ctxReqID, id)))
		dur := time.Since(start)
		s.mHTTPReqs.Inc()
		s.mHTTPSecs.Observe(dur.Nanoseconds())
		s.log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "dur", dur)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Error codes of the structured error taxonomy: every non-200 response
// is {"error": ..., "code": ...}, where the HTTP status signals
// retryability and the code names the limit or stage that rejected the
// request (a 503 POOL_SATURATED is retryable after backoff, a 413
// BODY_TOO_LARGE is not).
const (
	codeBodyTooLarge  = "BODY_TOO_LARGE"   // 413: request body exceeds -max-body
	codePoolSaturated = "POOL_SATURATED"   // 503: all -pool eval slots are streaming
	codeQueryNotFound = "QUERY_NOT_FOUND"  // 404: no registered query by that name
	codeInvalidQuery  = "INVALID_QUERY"    // 422: query text does not compile
	codeInvalidDoc    = "INVALID_DOCUMENT" // 422: document malformed or DTD-invalid
	codeBadRequest    = "BAD_REQUEST"      // 400: unreadable request
	codeInternal      = "INTERNAL"         // 500: server-side registration failure
	codeTimeout       = "TIMEOUT"          // 504: pass exceeded -eval-timeout
	codeClientGone    = "CLIENT_GONE"      // 499: client disconnected mid-pass
	codeDraining      = "DRAINING"         // 503: server is shutting down, intake closed
	codePassNotFound  = "PASS_NOT_FOUND"   // 404: pass id not retained by the flight recorder
	codeRecorderOff   = "RECORDER_OFF"     // 404: server runs with -flightrec 0
)

// statusClientGone is nginx's non-standard 499 "client closed request";
// the client is gone so the status is for the access log, not the wire.
const statusClientGone = 499

func writeErr(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}

// classifyStreamErr maps a failed pass's error to a status and code by
// asking which termination source fired: the -eval-timeout deadline
// (via the context or the connection read deadline) is a 504 TIMEOUT,
// a client disconnect is 499 CLIENT_GONE, a drain cancellation is 503
// DRAINING, and anything else is a genuine document rejection.
//
// deadline is the eval deadline (zero when -eval-timeout is unset) and
// is checked by clock as well: when the connection read deadline fires,
// net/http treats the failed body read as a dead connection and cancels
// the request context, so by classification time ctx can report
// Canceled rather than DeadlineExceeded and the read error may have
// been flattened into a parse message. A pass that ran past its own
// deadline is a timeout regardless of which of those races won.
func classifyStreamErr(ctx context.Context, r *http.Request, err error, passCtx context.Context, deadline time.Time) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(ctx.Err(), context.DeadlineExceeded) ||
		(!deadline.IsZero() && !time.Now().Before(deadline)):
		return http.StatusGatewayTimeout, codeTimeout
	case r.Context().Err() != nil:
		return statusClientGone, codeClientGone
	case passCtx.Err() != nil && errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, codeDraining
	default:
		return http.StatusUnprocessableEntity, codeInvalidDoc
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.queries)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "root": s.root(), "queries": n})
}

type queryInfo struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]queryInfo, 0, len(s.queries))
	for _, e := range s.queries {
		out = append(out, queryInfo{Name: e.name, Query: e.src})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "query exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		writeErr(w, http.StatusBadRequest, codeBadRequest, "reading body: %v", err)
		return
	}
	if err := s.register(name, string(src)); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, codeInvalidQuery, "compiling query %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"registered": name})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.queries[name]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeQueryNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, queryInfo{Name: e.name, Query: e.src})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, codeQueryNotFound, "no query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

type evalStats struct {
	Events             int64 `json:"events"`
	PeakBufferBytes    int64 `json:"peak_buffer_bytes"`
	BufferedBytesTotal int64 `json:"buffered_bytes_total"`
	OutputBytes        int64 `json:"output_bytes"`
	SkippedSubtrees    int64 `json:"skipped_subtrees"`
	HandlerFirings     int64 `json:"handler_firings"`
	// Buffer-budget counters (zero unless the server runs with -budget):
	// heap-resident high-water, spill traffic, and backpressure stall.
	PeakHeapBufferBytes int64 `json:"peak_heap_buffer_bytes,omitempty"`
	SpilledBytes        int64 `json:"spilled_bytes,omitempty"`
	RehydratedBytes     int64 `json:"rehydrated_bytes,omitempty"`
	StallMicros         int64 `json:"stall_us,omitempty"`
}

type evalResult struct {
	Query  string `json:"query"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// Code classifies a per-query failure: 413 when the query was
	// rejected for exceeding the buffer budget (the 413-style per-query
	// rejection of a BufferFail server), 422 for any other evaluation
	// error. The HTTP status stays 200: the shared pass succeeded and
	// sibling queries carry results.
	Code  int       `json:"code,omitempty"`
	Stats evalStats `json:"stats"`
}

// scanStats reports the shared scan pass of one /eval: exactly one
// tokenize+validate pass feeds every selected query, and — with
// projection on — events no selected query can use are pruned before any
// evaluator sees them.
type scanStats struct {
	Passes          int64  `json:"passes"`
	Projection      string `json:"projection"`
	EventsDelivered int64  `json:"events_delivered"`
	EventsSkipped   int64  `json:"events_skipped"`
	SubtreesSkipped int64  `json:"subtrees_skipped"`
	BytesSkipped    int64  `json:"bytes_skipped"`
	// InputBytes is the raw input size the pass consumed, skipped
	// regions included.
	InputBytes int64 `json:"input_bytes"`
	// StallMicros is the time the shared pass spent blocked by
	// backpressure (zero unless -budget with -budget-policy backpressure).
	StallMicros int64 `json:"stall_us,omitempty"`
}

type evalResponse struct {
	DurationMicros int64     `json:"duration_us"`
	Scan           scanStats `json:"scan"`
	// Pipeline reports the pass's pipeline metrics when the server runs
	// with -parallel >= 2 (absent for sequential passes).
	Pipeline *passInfo `json:"pipeline,omitempty"`
	// Dispatch reports the pass's trie-routing metrics when the server
	// runs with -dispatch trie (absent under plain fanout).
	Dispatch *dispatchInfo `json:"dispatch,omitempty"`
	Results  []evalResult  `json:"results"`
	// Trace is the pass's span tree, present only with ?trace=1: the
	// shared pass broken into scan and dispatch phases with one eval
	// span per query, plus tokenize/validate stage spans (with stall
	// attribution and ring high-water marks) under -parallel. The
	// trace's id is the request's X-Request-Id.
	Trace *fluxquery.Trace `json:"trace,omitempty"`
}

// passInfo is one pipelined pass: worker count, batches through the
// rings, work-steal events, per-stage stall time and ring high-water
// marks.
type passInfo struct {
	Parallel            int   `json:"parallel"`
	Batches             int64 `json:"batches"`
	Steals              int64 `json:"steals"`
	TokenizeStallMicros int64 `json:"tokenize_stall_us"`
	ValidateStallMicros int64 `json:"validate_stall_us"`
	DispatchStallMicros int64 `json:"dispatch_stall_us"`
	TokenRingPeak       int   `json:"token_ring_peak"`
	EventRingPeak       int   `json:"event_ring_peak"`
}

// dispatchInfo is one trie-routed pass: trie snapshot size, routed
// events, per-query deliveries (the work a plain fanout would have
// multiplied by the query count) and per-query batch flushes.
type dispatchInfo struct {
	Mode        string `json:"mode"`
	Plans       int    `json:"plans"`
	TrieNodes   int    `json:"trie_nodes"`
	TrieLists   int    `json:"trie_lists"`
	MaxFanout   int    `json:"max_fanout"`
	Events      int64  `json:"events"`
	Deliveries  int64  `json:"deliveries"`
	Flushes     int64  `json:"flushes"`
	BuildMicros int64  `json:"build_us"`
}

// handleEval evaluates the selected queries over the posted document in a
// single shared tokenize+validate pass.
func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	// A draining server accepts no new passes: the client gets a
	// retryable 503 naming the state, and the drain loop only has the
	// already-admitted passes to wait for.
	s.lifeMu.Lock()
	if s.state.Load() == stateDraining {
		s.lifeMu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, codeDraining,
			"server is draining; retry against another instance")
		return
	}
	s.inflight.Add(1)
	s.lifeMu.Unlock()
	defer s.inflight.Done()
	// Claim an ingest slot without blocking: when every slot is already
	// streaming a document, shed load with a structured 503 the client
	// can back off on, instead of stacking passes against the shared
	// buffer budget.
	if s.pool != nil {
		select {
		case s.pool <- struct{}{}:
			defer func() { <-s.pool }()
		default:
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			s.mRejected.Inc()
			w.Header().Set("Retry-After", "1")
			// The body carries the live pool occupancy so a client can
			// tell a momentary spike (depth just hit capacity) from
			// sustained saturation without a second /stats round trip.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":         fmt.Sprintf("all %d eval slots are streaming; retry later", cap(s.pool)),
				"code":          codePoolSaturated,
				"pool_depth":    len(s.pool),
				"pool_capacity": cap(s.pool),
			})
			return
		}
	}
	names := r.URL.Query()["q"]
	s.mu.RLock()
	var selected []*entry
	if len(names) == 0 {
		for _, e := range s.queries {
			selected = append(selected, e)
		}
	} else {
		for _, name := range names {
			e, ok := s.queries[name]
			if !ok {
				s.mu.RUnlock()
				writeErr(w, http.StatusNotFound, codeQueryNotFound, "no query %q", name)
				return
			}
			selected = append(selected, e)
		}
	}
	s.mu.RUnlock()
	sort.Slice(selected, func(i, j int) bool { return selected[i].name < selected[j].name })

	set := fluxquery.NewStreamSet(s.d)
	set.SetProjection(s.proj)
	set.SetBuffers(s.bufs)
	set.SetParallel(s.parallel)
	set.SetDispatch(s.dispatch)
	set.SetTelemetry(s.tel)
	// The recorder and ledger are process-wide; the per-request set is
	// just this pass's route into them. The request id rides along so a
	// slow-pass dump joins back to the access-log line.
	set.SetRecorder(s.rec)
	set.SetLedger(s.ledger)
	reqID, _ := r.Context().Value(ctxReqID).(string)
	set.SetRequestID(reqID)
	traced := false
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		traced = true
		set.SetTracing(true, reqID)
	}
	outs := make([]*bytes.Buffer, len(selected))
	regs := make([]*fluxquery.StreamQuery, len(selected))
	for i, e := range selected {
		outs[i] = &bytes.Buffer{}
		// The registration name labels the plan's eval-latency series
		// and trace span, so metrics line up with /queries names.
		reg, err := set.RegisterNamed(e.plan, outs[i], e.name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, codeInternal, "registering %q: %v", e.name, err)
			return
		}
		regs[i] = reg
	}

	// The pass context merges three termination sources: the client's
	// own context (disconnect), the server's pass context (drain
	// cancellation), and the optional -eval-timeout deadline. The
	// connection read deadline is pinned to the same deadline so a pass
	// stuck inside a body read is unblocked when the budget expires —
	// context cancellation alone cannot interrupt a blocked TCP read.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.passCtx, cancel)
	defer stop()
	var evalDeadline time.Time
	if s.evalTimeout > 0 {
		evalDeadline = time.Now().Add(s.evalTimeout)
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithDeadline(ctx, evalDeadline)
		defer tcancel()
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(evalDeadline)
	}
	// The faultinj reader is a no-op unless a test or fluxbench -fault
	// armed the body.read site.
	body := io.Reader(&faultinj.Reader{
		Site: faultinj.SiteBodyRead,
		R:    http.MaxBytesReader(w, r.Body, s.maxBody),
	})

	start := time.Now()
	if err := set.RunContext(ctx, body); err != nil {
		// MaxBytesReader makes an oversized body a read error at the
		// limit, so a too-large document cannot be silently truncated
		// into a (possibly valid) prefix.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "document exceeds -max-body (%d bytes)", s.maxBody)
			return
		}
		status, code := classifyStreamErr(ctx, r, err, s.passCtx, evalDeadline)
		writeErr(w, status, code, "document rejected: %v", err)
		return
	}
	resp := evalResponse{DurationMicros: time.Since(start).Microseconds()}
	if traced {
		resp.Trace = set.LastTrace()
	}
	if ps := set.LastPass(); ps.Parallel >= 2 {
		resp.Pipeline = &passInfo{
			Parallel:            ps.Parallel,
			Batches:             ps.Batches,
			Steals:              ps.Steals,
			TokenizeStallMicros: ps.TokenizeStall.Microseconds(),
			ValidateStallMicros: ps.ValidateStall.Microseconds(),
			DispatchStallMicros: ps.DispatchStall.Microseconds(),
			TokenRingPeak:       ps.TokenRingPeak,
			EventRingPeak:       ps.EventRingPeak,
		}
	}
	if ds := set.LastDispatch(); ds.Mode == "trie" {
		resp.Dispatch = &dispatchInfo{
			Mode:        ds.Mode,
			Plans:       ds.Plans,
			TrieNodes:   ds.TrieNodes,
			TrieLists:   ds.TrieLists,
			MaxFanout:   ds.MaxFanout,
			Events:      ds.Events,
			Deliveries:  ds.Deliveries,
			Flushes:     ds.Flushes,
			BuildMicros: ds.BuildNanos / 1000,
		}
	}
	sc := set.LastScan()
	resp.Scan = scanStats{
		Passes:          sc.Passes,
		Projection:      s.proj.String(),
		EventsDelivered: sc.EventsDelivered,
		EventsSkipped:   sc.EventsSkipped,
		SubtreesSkipped: sc.SubtreesSkipped,
		BytesSkipped:    sc.BytesSkipped,
		InputBytes:      sc.InputBytes,
		StallMicros:     sc.Stall.Microseconds(),
	}
	for i, e := range selected {
		st, err := regs[i].Stats()
		res := evalResult{
			Query:  e.name,
			Output: outs[i].String(),
			Stats: evalStats{
				Events:              st.Events,
				PeakBufferBytes:     st.PeakBufferBytes,
				BufferedBytesTotal:  st.BufferedBytesTotal,
				OutputBytes:         st.OutputBytes,
				SkippedSubtrees:     st.SkippedSubtrees,
				HandlerFirings:      st.HandlerFirings,
				PeakHeapBufferBytes: st.PeakHeapBufferBytes,
				SpilledBytes:        st.SpilledBytes,
				RehydratedBytes:     st.RehydratedBytes,
				StallMicros:         st.BudgetStall.Microseconds(),
			},
		}
		if err != nil {
			res.Error = err.Error()
			res.Output = ""
			res.Code = http.StatusUnprocessableEntity
			if errors.Is(err, fluxquery.ErrBudgetExceeded) {
				res.Code = http.StatusRequestEntityTooLarge
			}
		}
		s.record(e.name, st, err)
		resp.Results = append(resp.Results, res)
	}
	s.mu.Lock()
	s.evals++
	if ps := set.LastPass(); ps.Parallel >= 2 {
		s.pipeline.Passes++
		s.pipeline.Batches += ps.Batches
		s.pipeline.Steals += ps.Steals
		s.pipeline.TokenizeStallMicros += ps.TokenizeStall.Microseconds()
		s.pipeline.ValidateStallMicros += ps.ValidateStall.Microseconds()
		s.pipeline.DispatchStallMicros += ps.DispatchStall.Microseconds()
		if ps.TokenRingPeak > s.pipeline.TokenRingPeak {
			s.pipeline.TokenRingPeak = ps.TokenRingPeak
		}
		if ps.EventRingPeak > s.pipeline.EventRingPeak {
			s.pipeline.EventRingPeak = ps.EventRingPeak
		}
	}
	if ds := set.LastDispatch(); ds.Mode == "trie" {
		s.dispatchStats.Passes++
		s.dispatchStats.Events += ds.Events
		s.dispatchStats.Deliveries += ds.Deliveries
		s.dispatchStats.Flushes += ds.Flushes
		s.dispatchStats.TrieNodes = ds.TrieNodes
		s.dispatchStats.MaxFanout = ds.MaxFanout
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// record folds one query's pass outcome into the /stats aggregates.
func (s *server) record(name string, st fluxquery.Stats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.agg[name]
	if a == nil {
		a = &queryAgg{}
		s.agg[name] = a
	}
	a.Evals++
	if err != nil {
		a.Errors++
		if errors.Is(err, fluxquery.ErrBudgetExceeded) {
			a.BudgetRejections++
		}
	}
	a.Events += st.Events
	a.OutputBytes += st.OutputBytes
	if st.PeakBufferBytes > a.PeakBufferBytes {
		a.PeakBufferBytes = st.PeakBufferBytes
	}
	if st.PeakHeapBufferBytes > a.PeakHeapBufferBytes {
		a.PeakHeapBufferBytes = st.PeakHeapBufferBytes
	}
	a.SpilledBytes += st.SpilledBytes
	a.RehydratedBytes += st.RehydratedBytes
	a.StallMicros += st.BudgetStall.Microseconds()
}

// statsResponse is the GET /stats document: per-query cumulative
// scan/buffer/spill aggregates plus the process-wide buffer-manager
// snapshot.
type statsResponse struct {
	// State is the lifecycle state: "serving", or "draining" once a
	// shutdown signal closed intake.
	State string `json:"state"`
	// Build describes the running binary (mirrors flux_build_info);
	// UptimeSeconds mirrors flux_server_uptime_seconds.
	Build         buildMeta            `json:"build"`
	UptimeSeconds int64                `json:"uptime_seconds"`
	Evals         int64                `json:"evals"`
	Queries       map[string]*queryAgg `json:"queries"`
	Buffers       *bufferStats         `json:"buffers,omitempty"`
	// Pool reports the bounded ingest pool (absent when unbounded);
	// Pipeline the cumulative pipelined-pass metrics (absent while no
	// pipelined pass has run).
	Pool     *poolStats   `json:"pool,omitempty"`
	Pipeline *pipelineAgg `json:"pipeline,omitempty"`
	// Dispatch reports cumulative trie-routing metrics (absent while no
	// trie-dispatched pass has run).
	Dispatch *dispatchAgg `json:"dispatch,omitempty"`
}

// poolStats reports the ingest pool: capacity, passes currently
// streaming, and structured-503 rejections since start.
type poolStats struct {
	Capacity int   `json:"capacity"`
	InFlight int   `json:"in_flight"`
	Rejected int64 `json:"rejected"`
}

// bufferStats embeds the manager snapshot (whose fields carry their
// own JSON tags, so new counters appear here automatically) plus the
// stall in the microsecond unit the rest of the API uses.
type bufferStats struct {
	fluxquery.BufferMetrics
	StallMicros int64 `json:"stall_us"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := statsResponse{
		State:         s.lifecycle(),
		Build:         s.build,
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Evals:         s.evals,
		Queries:       make(map[string]*queryAgg, len(s.agg)),
	}
	for name, a := range s.agg {
		cp := *a
		resp.Queries[name] = &cp
	}
	if s.pool != nil {
		resp.Pool = &poolStats{Capacity: cap(s.pool), InFlight: len(s.pool), Rejected: s.rejected}
	}
	if s.pipeline.Passes > 0 {
		cp := s.pipeline
		resp.Pipeline = &cp
	}
	if s.dispatchStats.Passes > 0 {
		cp := s.dispatchStats
		resp.Dispatch = &cp
	}
	s.mu.RUnlock()
	if s.bufs != nil {
		mt := s.bufs.Metrics()
		resp.Buffers = &bufferStats{BufferMetrics: mt, StallMicros: mt.Stall.Microseconds()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// passesResponse is the GET /debug/passes document: recorder state,
// time-windowed rollups computed from the ring at request time, and the
// retained pass records, most recent first.
type passesResponse struct {
	// Total counts passes ever recorded; Retained of those still in the
	// ring (Capacity bounds it).
	Total    uint64 `json:"total"`
	Retained int    `json:"retained"`
	Capacity int    `json:"capacity"`
	// Rollups aggregates the last minute, the last five minutes and
	// everything retained ("1m", "5m", "all").
	Rollups map[string]fluxquery.PassRollup `json:"rollups"`
	Passes  []fluxquery.PassRecord          `json:"passes"`
}

// handlePasses serves the flight recorder: GET /debug/passes[?n=K]
// returns the rollups and the K most recent records (all retained when
// n is absent or 0).
func (s *server) handlePasses(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeErr(w, http.StatusNotFound, codeRecorderOff, "flight recorder disabled (-flightrec 0)")
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "bad n=%q (want a non-negative integer)", v)
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, passesResponse{
		Total:    s.rec.Total(),
		Retained: s.rec.Len(),
		Capacity: s.rec.Cap(),
		Rollups: map[string]fluxquery.PassRollup{
			"1m":  s.rec.Rollup(time.Minute),
			"5m":  s.rec.Rollup(5 * time.Minute),
			"all": s.rec.Rollup(0),
		},
		Passes: s.rec.Snapshot(n),
	})
}

// handlePass serves one retained pass record by id:
// GET /debug/passes/{id}.
func (s *server) handlePass(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeErr(w, http.StatusNotFound, codeRecorderOff, "flight recorder disabled (-flightrec 0)")
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, "bad pass id %q", r.PathValue("id"))
		return
	}
	rec, ok := s.rec.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, codePassNotFound,
			"pass %d not retained (ring keeps the most recent %d)", id, s.rec.Cap())
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleQueryStats serves one registered query's cumulative cost ledger:
// GET /queries/{name}/stats. A registered query that no /eval has
// touched yet reports a zero entry rather than a 404.
func (s *server) handleQueryStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	_, registered := s.queries[name]
	s.mu.RUnlock()
	qs, ok := s.ledger.Get(name)
	if !ok {
		if !registered {
			writeErr(w, http.StatusNotFound, codeQueryNotFound, "no query %q", name)
			return
		}
		qs = fluxquery.QueryStats{Name: name}
	}
	writeJSON(w, http.StatusOK, qs)
}

// topResponse is the GET /top document: the K most expensive registered
// queries on one cost axis.
type topResponse struct {
	Axis    string                 `json:"axis"`
	Axes    []string               `json:"axes"`
	Queries []fluxquery.QueryStats `json:"queries"`
}

// handleTop ranks registered queries by cumulative cost:
// GET /top[?axis=cpu|events|bytes|buffer|errors|passes][&k=N]
// (default: top 10 by eval CPU).
func (s *server) handleTop(w http.ResponseWriter, r *http.Request) {
	axis := r.URL.Query().Get("axis")
	if axis == "" {
		axis = "cpu"
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, codeBadRequest, "bad k=%q (want an integer)", v)
			return
		}
		k = parsed
	}
	top, err := s.ledger.TopK(axis, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, topResponse{Axis: axis, Axes: fluxquery.LedgerAxes(), Queries: top})
}
