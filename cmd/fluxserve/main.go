// Command fluxserve is a continuous-query server over the shared-stream
// multi-query engine: clients register compiled XQuery plans once, then
// POST XML documents; every registered query is evaluated over each
// document in a single tokenize+validate pass (fluxquery.StreamSet).
//
// Usage:
//
//	fluxserve -dtd bib.dtd [-addr :8080] [-proj fast|validate|off]
//	          [-budget 64M -budget-policy fail|spill|backpressure [-spill-dir DIR]]
//	          [-parallel N] [-dispatch fanout|trie] [-pool N]
//	          [-debug-addr :6060] [-q name=query.xq ...]
//
// Endpoints:
//
//	GET    /healthz              liveness (also reports query count)
//	GET    /queries              list registered queries
//	PUT    /queries/{name}       register/replace a query (body: XQuery text)
//	GET    /queries/{name}       show one query
//	DELETE /queries/{name}       unregister a query
//	POST   /eval                 evaluate all queries over the posted XML
//	POST   /eval?q=a&q=b         evaluate a subset
//	POST   /eval?trace=1         additionally return the pass's span tree
//	GET    /stats                per-query and aggregate buffer/spill metrics
//	GET    /metrics              Prometheus text exposition of all series
//	GET    /queries/{name}/stats one query's cumulative cost ledger
//	GET    /top?axis=cpu&k=10    most expensive queries by one cost axis
//	GET    /debug/passes         flight recorder: recent passes + rollups
//	GET    /debug/passes/{id}    one retained pass record by pass id
//
// Observability: every request is assigned an id (echoed as
// X-Request-Id and written to the structured stderr access log); with
// ?trace=1 an /eval response additionally carries the shared pass's
// span tree — scan and dispatch phases, one eval span per query, and
// under -parallel the tokenize/validate stage spans with stall
// attribution and ring high-water marks — tagged with that request id.
// GET /metrics exposes scan, pipeline, buffer-manager, ingest-pool and
// HTTP series for scraping (plus flux_build_info and
// flux_server_uptime_seconds); -debug-addr starts a second listener
// with Go's pprof profiling endpoints (/debug/pprof/), kept off the
// public address so profiling is opt-in.
//
// Flight recorder: every /eval pass deposits one record — engine
// configuration, input bytes, MB/s, per-stage stall breakdown, ring
// peaks, buffer/spill accounting, fault hits, cancellation reason and
// terminal error — into a fixed ring of -flightrec records (default
// 256; 0 disables). GET /debug/passes returns the retained records with
// 1m/5m/since-start rollups (latency percentiles computed from the
// ring), GET /debug/passes/{id} one record by pass id. A pass slower
// than -slow-pass, or with cumulative stage stall over -slow-stall,
// additionally retains its full span tree and is dumped through the
// structured log with its request id. GET /queries/{name}/stats serves
// one query's cumulative cost ledger (eval CPU, events, output bytes,
// buffer peaks, errors) and GET /top ranks queries by any cost axis.
// The companion command fluxtop renders these endpoints as a live
// terminal dashboard (fluxtop -addr http://host:8080).
//
// /eval responds with JSON:
//
//   - "scan": the shared pass itself — "passes" (always 1: one
//     tokenize+validate pass no matter how many queries ride it), the
//     projection mode, and the events delivered to the plans vs events,
//     subtrees and raw bytes pruned by the union skip automaton (the
//     projection of everything no selected query can touch; see -proj).
//   - "results": one object per query carrying the output document, the
//     query's statistics from the shared pass, and any per-query error (a
//     failing query never disturbs the others or the stream).
//
// With -proj fast (the default), stream regions outside every selected
// query's path-set are checked for tag balance but not validated against
// the DTD; -proj validate keeps full validation while still pruning
// delivery, and -proj off disables projection.
//
// With -budget, one process-wide buffer manager governs the runtime
// buffers of every concurrent /eval pass. -budget-policy selects the
// overflow behavior: "spill" and "backpressure" bound the aggregate
// live heap of all passes against the one budget (spill evicts cold
// buffered subtrees to an unlinked temp file under -spill-dir and
// rehydrates them on access — byte-identical output, bounded heap;
// backpressure throttles an over-budget pass while other passes drain).
// "fail" is a per-query cap, not an aggregate bound: each query is
// rejected when its own buffers would exceed the budget (its /eval
// result carries code 413 while sibling queries complete), so N
// concurrent passes may together hold up to N budgets. GET /stats
// exposes the manager's counters and per-query cumulative aggregates.
//
// With -dispatch trie, each /eval's shared pass routes events through a
// dispatch trie interning every selected query's projection automaton:
// an event is delivered only to the queries whose paths reach it, so
// per-event cost tracks the distinct registered paths instead of the
// query count. Outputs are byte-identical to fanout; the /eval response
// and GET /stats gain a "dispatch" object with the trie size and
// routing totals.
//
// With -parallel N (N >= 2), each /eval's shared pass runs pipelined:
// tokenizer, validator and dispatcher on separate goroutines connected
// by bounded batch rings, the plan set sharded across N feed workers.
// -pool bounds the number of concurrently streaming /eval passes
// (default 2×GOMAXPROCS); a request arriving with every slot busy is
// shed with a structured 503 ({"error": ..., "code":
// "POOL_SATURATED"}) rather than queued, so many documents streaming
// against the one buffer budget stay bounded. Every non-200 response
// carries such a "code" (BODY_TOO_LARGE, POOL_SATURATED,
// QUERY_NOT_FOUND, INVALID_QUERY, INVALID_DOCUMENT, BAD_REQUEST,
// INTERNAL, TIMEOUT, CLIENT_GONE, DRAINING); GET /stats reports pool
// occupancy/rejections and, under -parallel, cumulative per-stage
// stall and work-steal metrics.
//
// Timeouts and cancellation: -eval-timeout bounds each /eval pass's
// wall time — the deadline rides the request context into the engine
// (every layer down to the buffer-manager gate observes it) and is
// also pinned onto the connection's read deadline so a pass stuck
// reading the body is unblocked too; expiry returns a 504 TIMEOUT. A
// client that disconnects mid-pass cancels its pass the same way (499
// CLIENT_GONE in the access log). -read-timeout, when set, deadlines
// the whole request read at the HTTP layer (http.Server.ReadTimeout;
// 0 keeps only the 10s header deadline).
//
// Shutdown: on SIGTERM or SIGINT the server stops intake — new /eval
// requests get a structured 503 DRAINING, /stats reports "state":
// "draining" — and waits up to -drain-timeout for in-flight passes to
// finish; stragglers are then cancelled through the same context path.
// The process exits 0 after a drain in which every admitted pass
// terminated (finished or cancelled cleanly).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fluxquery"
	"fluxquery/internal/unit"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dtdPath   = flag.String("dtd", "", "path to the DTD file governing all streams (required)")
		maxBody   = flag.Int64("max-body", 64<<20, "maximum request body size in bytes")
		projMode  = flag.String("proj", "fast", "stream projection for shared passes: fast, validate or off")
		budget    = flag.String("budget", "", "buffer byte budget for all passes, e.g. 64M (empty = unlimited)")
		budPolicy = flag.String("budget-policy", "spill", "buffer overflow policy: fail, spill or backpressure")
		spillDir  = flag.String("spill-dir", "", "directory for the spill segment file (default: system temp)")
		parallel  = flag.Int("parallel", 1, "pipelined shared passes: >= 2 runs tokenize/validate/dispatch on separate goroutines with that many feed workers; 0 or 1 is sequential")
		dispMode  = flag.String("dispatch", "fanout", "shared-pass fan-out strategy: fanout (every batch to every query) or trie (trie-routed per-query delivery)")
		pool      = flag.Int("pool", 2*runtime.GOMAXPROCS(0), "maximum concurrently streaming /eval passes; excess requests get a structured 503 (0 = unbounded)")
		debugAddr = flag.String("debug-addr", "", "separate listen address for pprof profiling endpoints (empty = disabled)")
		flightrec = flag.Int("flightrec", 256, "pass flight-recorder ring size behind GET /debug/passes (0 = disabled)")
		slowPass  = flag.Duration("slow-pass", 0, "latency threshold of the slow-pass capture policy: slower passes keep their span tree and dump to the log (0 = off)")
		slowStall = flag.Duration("slow-stall", 0, "stall threshold of the slow-pass capture policy: passes with more cumulative stage stall keep their span tree and dump to the log (0 = off)")
		evalTO    = flag.Duration("eval-timeout", 0, "wall-time budget per /eval pass; expiry cancels the pass and returns a 504 TIMEOUT (0 = unbounded)")
		readTO    = flag.Duration("read-timeout", 0, "whole-request read deadline at the HTTP layer (0 = header deadline only)")
		drainTO   = flag.Duration("drain-timeout", 15*time.Second, "on SIGTERM/SIGINT, how long in-flight /eval passes may finish before being cancelled")
	)
	var preload multiFlag
	flag.Var(&preload, "q", "preload a query as name=path.xq (repeatable)")
	flag.Parse()

	if *dtdPath == "" {
		fmt.Fprintln(os.Stderr, "fluxserve: -dtd is required")
		os.Exit(2)
	}
	dtdSrc, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(1)
	}
	projection, err := fluxquery.ParseProjection(*projMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(2)
	}
	budgetBytes, err := unit.ParseBytes(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve: -budget:", err)
		os.Exit(2)
	}
	policy, err := fluxquery.ParseBufferPolicy(*budPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(2)
	}
	// The server captures slog.Default at construction, so the handler
	// must be installed first.
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	srv, err := newServer(string(dtdSrc), *maxBody, projection, budgetBytes, policy, *spillDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(1)
	}
	dispatch, err := fluxquery.ParseDispatch(*dispMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(2)
	}
	srv.setParallel(*parallel)
	srv.setDispatch(dispatch)
	srv.setPool(*pool)
	srv.setEvalTimeout(*evalTO)
	srv.setFlightRecorder(*flightrec, *slowPass, *slowStall)
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "fluxserve: -q wants name=path, got %q\n", spec)
			os.Exit(2)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fluxserve:", err)
			os.Exit(1)
		}
		if err := srv.register(name, string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "fluxserve: -q %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// Profiling stays on its own opt-in listener: pprof handlers expose
	// heap contents and must never ride the public address.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "fluxserve: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				fmt.Fprintln(os.Stderr, "fluxserve: debug listener:", err)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "fluxserve: serving DTD root <%s> on %s (%d queries preloaded)\n",
		srv.root(), *addr, len(preload))
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.handler(),
		// A long-running server must not let half-open connections pin
		// goroutines forever (slow-loris); document bodies can be large,
		// so only the header read is deadlined here unless -read-timeout
		// opts into a whole-request read deadline.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: the first SIGTERM/SIGINT starts the drain; a
	// second signal (stop() restores default handling) kills the process
	// the ordinary way if the drain itself wedges.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "fluxserve: draining (timeout %s)\n", *drainTO)
	// Order matters: close /eval intake before http.Server.Shutdown, so
	// no request slips in between the two; Shutdown then waits for the
	// connections of the already-admitted (or already-drained) passes.
	clean := srv.drain(*drainTO)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "fluxserve: shutdown:", err)
	}
	if clean {
		fmt.Fprintln(os.Stderr, "fluxserve: drained, exiting")
	} else {
		fmt.Fprintln(os.Stderr, "fluxserve: drain deadline hit, in-flight passes cancelled")
	}
	os.Exit(0)
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
