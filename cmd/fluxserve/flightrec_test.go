package main

// Flight-recorder and cost-attribution endpoint tests: /debug/passes,
// /debug/passes/{id}, /queries/{name}/stats, /top, plus the build-info
// and uptime series, exercised through the public handler.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// recTestServer is newTestServer with the flight recorder armed.
func recTestServer(t *testing.T, size int) (*server, *httptest.Server) {
	t.Helper()
	srv, ts := newTestServer(t)
	srv.setFlightRecorder(size, 0, 0)
	return srv, ts
}

// evalWithReqID posts a document with an explicit X-Request-Id.
func evalWithReqID(t *testing.T, url, doc, reqID string) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/eval", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("eval: %d %s", resp.StatusCode, b)
	}
}

// TestDebugPassesEndpoint: every /eval deposits one record; the ring
// document reports totals, windowed rollups and most-recent-first
// records carrying the caller's X-Request-Id; single records resolve
// by pass id.
func TestDebugPassesEndpoint(t *testing.T) {
	srv, ts := recTestServer(t, 8)
	url := ts.URL
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	evalWithReqID(t, url, testDoc(10), "pass-one")
	evalWithReqID(t, url, testDoc(20), "pass-two")

	code, body := do(t, "GET", url+"/debug/passes", "")
	if code != 200 {
		t.Fatalf("debug/passes: %d %s", code, body)
	}
	var pr passesResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Total != 2 || pr.Retained != 2 || pr.Capacity != 8 {
		t.Fatalf("ring counters = %+v", pr)
	}
	if len(pr.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(pr.Passes))
	}
	// Most recent first, request ids propagated from the HTTP layer.
	if pr.Passes[0].RequestID != "pass-two" || pr.Passes[1].RequestID != "pass-one" {
		t.Errorf("request ids = %q, %q", pr.Passes[0].RequestID, pr.Passes[1].RequestID)
	}
	latest := pr.Passes[0]
	if latest.Plans != 1 || latest.InputBytes != int64(len(testDoc(20))) ||
		latest.Events == 0 || latest.Duration <= 0 {
		t.Errorf("latest record = %+v", latest)
	}
	for _, win := range []string{"1m", "5m", "all"} {
		ru, ok := pr.Rollups[win]
		if !ok || ru.Passes != 2 || ru.P50 <= 0 {
			t.Errorf("rollup %q = %+v, %v", win, ru, ok)
		}
	}

	// ?n=1 truncates to the most recent record only.
	_, body = do(t, "GET", url+"/debug/passes?n=1", "")
	var one passesResponse
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Passes) != 1 || one.Passes[0].PassID != latest.PassID || one.Total != 2 {
		t.Fatalf("?n=1 = %+v", one)
	}
	if code, body := do(t, "GET", url+"/debug/passes?n=zebra", ""); code != 400 || !strings.Contains(body, codeBadRequest) {
		t.Fatalf("bad n: %d %s", code, body)
	}

	// Single-record lookup by pass id, and the 404 taxonomy.
	code, body = do(t, "GET", fmt.Sprintf("%s/debug/passes/%d", url, latest.PassID), "")
	if code != 200 {
		t.Fatalf("debug/passes/{id}: %d %s", code, body)
	}
	var rec struct {
		PassID    uint64 `json:"pass_id"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.PassID != latest.PassID || rec.RequestID != "pass-two" {
		t.Fatalf("record = %+v", rec)
	}
	if code, body := do(t, "GET", url+"/debug/passes/99999999", ""); code != 404 || !strings.Contains(body, codePassNotFound) {
		t.Fatalf("unknown pass: %d %s", code, body)
	}
	if code, body := do(t, "GET", url+"/debug/passes/zebra", ""); code != 400 || !strings.Contains(body, codeBadRequest) {
		t.Fatalf("bad pass id: %d %s", code, body)
	}
}

// TestDebugPassesRecorderOff: with -flightrec 0 the ring endpoints
// answer a structured RECORDER_OFF, not an empty document.
func TestDebugPassesRecorderOff(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/debug/passes", "/debug/passes/1"} {
		if code, body := do(t, "GET", ts.URL+path, ""); code != 404 || !strings.Contains(body, codeRecorderOff) {
			t.Errorf("%s with recorder off: %d %s", path, code, body)
		}
	}
}

// TestQueryStatsEndpoint: the per-query ledger accrues across /eval
// calls; a registered-but-unevaluated query reads as a zero entry and
// an unregistered name is a 404.
func TestQueryStatsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}

	// Registered, never evaluated: zero entry, not 404.
	code, body := do(t, "GET", ts.URL+"/queries/q3/stats", "")
	if code != 200 {
		t.Fatalf("pre-eval stats: %d %s", code, body)
	}
	var qs struct {
		Name    string `json:"name"`
		Passes  int64  `json:"passes"`
		EvalCPU int64  `json:"eval_cpu_ns"`
		Events  int64  `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &qs); err != nil {
		t.Fatal(err)
	}
	if qs.Name != "q3" || qs.Passes != 0 {
		t.Fatalf("zero entry = %+v", qs)
	}

	for i := 0; i < 2; i++ {
		if code, body := do(t, "POST", ts.URL+"/eval", testDoc(20)); code != 200 {
			t.Fatalf("eval: %d %s", code, body)
		}
	}
	_, body = do(t, "GET", ts.URL+"/queries/q3/stats", "")
	if err := json.Unmarshal([]byte(body), &qs); err != nil {
		t.Fatal(err)
	}
	if qs.Passes != 2 || qs.EvalCPU <= 0 || qs.Events <= 0 {
		t.Fatalf("post-eval ledger = %+v", qs)
	}

	if code, body := do(t, "GET", ts.URL+"/queries/nosuch/stats", ""); code != 404 || !strings.Contains(body, codeQueryNotFound) {
		t.Fatalf("unregistered stats: %d %s", code, body)
	}
}

// TestTopEndpoint: /top ranks registered queries on any ledger axis
// and rejects unknown axes.
func TestTopEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(50)); code != 200 {
		t.Fatalf("eval: %d %s", code, body)
	}

	code, body := do(t, "GET", ts.URL+"/top", "")
	if code != 200 {
		t.Fatalf("top: %d %s", code, body)
	}
	var top topResponse
	if err := json.Unmarshal([]byte(body), &top); err != nil {
		t.Fatal(err)
	}
	if top.Axis != "cpu" || len(top.Axes) == 0 || len(top.Queries) != 2 {
		t.Fatalf("default top = %+v", top)
	}
	for _, q := range top.Queries {
		if q.Passes != 1 || q.EvalCPU <= 0 {
			t.Errorf("ranked entry = %+v", q)
		}
	}

	_, body = do(t, "GET", ts.URL+"/top?axis=passes&k=1", "")
	if err := json.Unmarshal([]byte(body), &top); err != nil {
		t.Fatal(err)
	}
	if top.Axis != "passes" || len(top.Queries) != 1 {
		t.Fatalf("top?axis=passes&k=1 = %+v", top)
	}
	if code, body := do(t, "GET", ts.URL+"/top?axis=bogus", ""); code != 400 || !strings.Contains(body, codeBadRequest) {
		t.Fatalf("unknown axis: %d %s", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/top?k=zebra", ""); code != 400 || !strings.Contains(body, codeBadRequest) {
		t.Fatalf("bad k: %d %s", code, body)
	}
}

// TestBuildInfoAndUptime: /metrics exposes flux_build_info (value 1,
// metadata in labels) and a monotone uptime gauge; /stats mirrors both
// as structured fields.
func TestBuildInfoAndUptime(t *testing.T) {
	srv, ts := newTestServer(t)
	samples := scrape(t, ts.URL)
	foundBuild := false
	for series, val := range samples {
		if strings.HasPrefix(series, "flux_build_info{") {
			foundBuild = true
			if val != 1 {
				t.Errorf("flux_build_info = %v, want 1", val)
			}
			for _, label := range []string{"version=", "goversion=", "revision="} {
				if !strings.Contains(series, label) {
					t.Errorf("flux_build_info lacks %s label: %s", label, series)
				}
			}
		}
	}
	if !foundBuild {
		t.Error("exposition lacks flux_build_info")
	}
	if _, ok := samples["flux_server_uptime_seconds"]; !ok {
		t.Error("exposition lacks flux_server_uptime_seconds")
	}

	// Backdate the start: the gauge must track elapsed wall time.
	srv.started = time.Now().Add(-90 * time.Second)
	samples = scrape(t, ts.URL)
	if up := samples["flux_server_uptime_seconds"]; up < 90 {
		t.Errorf("uptime = %v, want >= 90 after backdating", up)
	}

	_, body := do(t, "GET", ts.URL+"/stats", "")
	var st statsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Build.GoVersion == "" || st.Build.Version == "" || st.Build.Revision == "" {
		t.Errorf("stats build = %+v", st.Build)
	}
	if st.UptimeSeconds < 90 {
		t.Errorf("stats uptime = %d, want >= 90", st.UptimeSeconds)
	}
}

// TestSlowPassCaptureOverHTTP: with -slow-pass armed at an
// unachievably low threshold, every record is marked slow and retains
// its span tree in the ring document.
func TestSlowPassCaptureOverHTTP(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setFlightRecorder(8, time.Nanosecond, 0)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(20)); code != 200 {
		t.Fatalf("eval: %d %s", code, body)
	}
	_, body := do(t, "GET", ts.URL+"/debug/passes", "")
	var pr passesResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Passes) != 1 || !pr.Passes[0].Slow {
		t.Fatalf("slow pass not flagged: %+v", pr.Passes)
	}
	if pr.Passes[0].Trace == nil || pr.Passes[0].Trace.Root == nil {
		t.Fatalf("slow pass record lacks its span tree: %+v", pr.Passes[0])
	}
	if pr.Rollups["all"].Slow != 1 {
		t.Errorf("rollup slow count = %d, want 1", pr.Rollups["all"].Slow)
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack for runtime helpers); churn tests use it to
// prove scrapes and evals leak nothing.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines settled at %d, baseline %d:\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugEndpointsChurnRace scrapes /debug/passes and /top while
// pipelined evals and register/unregister churn run concurrently;
// under -race this pins the ring and ledger against live pass
// deposits, and the settle check proves nothing leaks.
func TestDebugEndpointsChurnRace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, ts := recTestServer(t, 32)
	url := ts.URL
	srv.setParallel(2)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}

	doc := testDoc(100)
	const evalWorkers, scrapeWorkers, rounds = 3, 2, 8
	var wg sync.WaitGroup
	errs := make(chan error, (evalWorkers+scrapeWorkers+1)*rounds)
	for w := 0; w < evalWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(url+"/eval", "application/xml", strings.NewReader(doc))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("eval: %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for w := 0; w < scrapeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			paths := []string{"/debug/passes", "/top", "/debug/passes?n=4", "/top?axis=events"}
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(url + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("scrape %s: %d", paths[(w+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(w)
	}
	// Register/unregister churn: a third query flickers in and out while
	// passes run and the ledger is ranked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := srv.register(fmt.Sprintf("churn%d", i), testQT); err != nil {
				errs <- err
				return
			}
			resp, err := http.Get(url + "/top?axis=passes")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/queries/churn%d", url, i), nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The ring saw every pass; counters agree between endpoints.
	_, body := do(t, "GET", url+"/debug/passes", "")
	var pr passesResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Total != evalWorkers*rounds {
		t.Errorf("recorder total = %d, want %d", pr.Total, evalWorkers*rounds)
	}
	seen := map[uint64]bool{}
	for _, rec := range pr.Passes {
		if seen[rec.PassID] {
			t.Errorf("duplicate pass id %d in snapshot", rec.PassID)
		}
		seen[rec.PassID] = true
	}

	// Tear the server and the client's idle connections down first: the
	// settle check targets leaks in the pass/ledger path, not keep-alive
	// plumbing.
	http.DefaultClient.CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}
