package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fluxquery"
	"fluxquery/internal/unit"
)

const testDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const testQ3 = `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`
const testQT = `<titles>{ for $b in $ROOT/bib/book return <t>{ $b/title }</t> }</titles>`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 0, fluxquery.BufferSpill, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func testDoc(books int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&b, "<book><title>T%d</title><author>A%d</author></book>", i, i)
	}
	b.WriteString("</bib>")
	return b.String()
}

func TestQueryLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	if code, body := do(t, "GET", ts.URL+"/healthz", ""); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := do(t, "PUT", ts.URL+"/queries/q3", testQ3); code != 200 {
		t.Fatalf("register q3: %d %s", code, body)
	}
	if code, body := do(t, "PUT", ts.URL+"/queries/bad", "for $x in"); code != 422 {
		t.Fatalf("bad query accepted: %d %s", code, body)
	}
	if code, body := do(t, "GET", ts.URL+"/queries/q3", ""); code != 200 || !strings.Contains(body, "for $b") {
		t.Fatalf("get q3: %d %s", code, body)
	}
	code, body := do(t, "GET", ts.URL+"/queries", "")
	if code != 200 {
		t.Fatalf("list: %d %s", code, body)
	}
	var list []queryInfo
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "q3" {
		t.Fatalf("list = %+v", list)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/queries/q3", ""); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/queries/q3", ""); code != 404 {
		t.Fatalf("double delete: %d", code)
	}
}

func TestEvalSharedPass(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, "POST", ts.URL+"/eval", testDoc(5))
	if code != 200 {
		t.Fatalf("eval: %d %s", code, body)
	}
	var resp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	// Results are name-sorted: q3 then titles.
	if resp.Results[0].Query != "q3" || !strings.Contains(resp.Results[0].Output, "<result><title>T0</title>") {
		t.Errorf("q3 result: %+v", resp.Results[0])
	}
	if resp.Results[1].Query != "titles" || !strings.Contains(resp.Results[1].Output, "<t><title>T4</title></t>") {
		t.Errorf("titles result: %+v", resp.Results[1])
	}
	for _, res := range resp.Results {
		if res.Error != "" {
			t.Errorf("%s: unexpected error %q", res.Query, res.Error)
		}
		if res.Stats.Events == 0 || res.Stats.OutputBytes == 0 {
			t.Errorf("%s: empty stats %+v", res.Query, res.Stats)
		}
	}
	// The shared scan is reported once, at response level: exactly one
	// pass, with projection deliveries recorded.
	if resp.Scan.Passes != 1 {
		t.Errorf("scan passes = %d, want 1", resp.Scan.Passes)
	}
	if resp.Scan.Projection != "fast" || resp.Scan.EventsDelivered == 0 {
		t.Errorf("scan stats not reported: %+v", resp.Scan)
	}
}

func TestEvalSubsetAndErrors(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, "POST", ts.URL+"/eval?q=titles", testDoc(2))
	if code != 200 {
		t.Fatalf("eval subset: %d %s", code, body)
	}
	var resp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Query != "titles" {
		t.Fatalf("subset results = %+v", resp.Results)
	}

	if code, _ := do(t, "POST", ts.URL+"/eval?q=nosuch", testDoc(1)); code != 404 {
		t.Fatalf("unknown query name: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/eval", `<bib><pamphlet/></bib>`); code != 422 {
		t.Fatalf("invalid document: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/eval", `not xml at all`); code != 422 {
		t.Fatalf("garbage document: %d", code)
	}
}

func TestEvalWithNoQueriesValidatesOnly(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, "POST", ts.URL+"/eval", testDoc(1))
	if code != 200 {
		t.Fatalf("eval with zero queries: %d %s", code, body)
	}
	var resp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("results = %+v, want none", resp.Results)
	}
}

// testQBuf buffers every book's author list until the second loop, so a
// small budget is actually exercised.
const testQBuf = `<r>{ for $b in $ROOT/bib/book return <x>{ $b/title }</x> }{ for $c in $ROOT/bib/book return <y>{ $c/author }</y> }</r>`

// TestStatsEndpointAndBudgetedEval: a server with a spill budget serves
// byte-identical results, reports spill counters in /eval stats, and
// aggregates them in GET /stats.
func TestStatsEndpointAndBudgetedEval(t *testing.T) {
	srv, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 16<<10, fluxquery.BufferSpill, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if err := srv.register("buf", testQBuf); err != nil {
		t.Fatal(err)
	}

	// Unbudgeted reference for the same query and document.
	ref, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 0, fluxquery.BufferSpill, "")
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ref.handler())
	defer rts.Close()
	if err := ref.register("buf", testQBuf); err != nil {
		t.Fatal(err)
	}

	doc := testDoc(200)
	code, body := do(t, "POST", ts.URL+"/eval", doc)
	if code != 200 {
		t.Fatalf("budgeted eval: %d %s", code, body)
	}
	_, refBody := do(t, "POST", rts.URL+"/eval", doc)
	var resp, refResp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(refBody), &refResp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Output != refResp.Results[0].Output {
		t.Fatal("budgeted output differs from unbudgeted")
	}
	st := resp.Results[0].Stats
	if st.SpilledBytes == 0 || st.RehydratedBytes == 0 {
		t.Errorf("spill counters missing from /eval stats: %+v", st)
	}
	if st.PeakHeapBufferBytes == 0 || st.PeakHeapBufferBytes > 16<<10 {
		t.Errorf("heap peak %d not bounded by the 16 KiB budget", st.PeakHeapBufferBytes)
	}
	if st.PeakBufferBytes <= 16<<10 {
		t.Errorf("workload too small to exercise the budget: logical peak %d", st.PeakBufferBytes)
	}

	code, body = do(t, "GET", ts.URL+"/stats", "")
	if code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Evals != 1 {
		t.Errorf("evals = %d, want 1", stats.Evals)
	}
	agg := stats.Queries["buf"]
	if agg == nil || agg.Evals != 1 || agg.SpilledBytes == 0 {
		t.Errorf("per-query aggregate missing or empty: %+v", agg)
	}
	if stats.Buffers == nil || stats.Buffers.Budget != 16<<10 || stats.Buffers.Policy != "spill" {
		t.Fatalf("buffer manager snapshot: %+v", stats.Buffers)
	}
	if stats.Buffers.SpillOps == 0 || stats.Buffers.SpillSegsLive != 0 {
		t.Errorf("manager counters: %+v", stats.Buffers)
	}
}

// TestBudgetFailPerQueryRejection: under -budget-policy fail, the
// over-budget query's /eval result carries code 413 and an
// ErrBudgetExceeded message while the cheap sibling completes normally
// in the same pass.
func TestBudgetFailPerQueryRejection(t *testing.T) {
	srv, err := newServer(testDTD, 1<<20, fluxquery.ProjectionFast, 2048, fluxquery.BufferFail, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if err := srv.register("greedy", testQBuf); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("light", testQT); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, "POST", ts.URL+"/eval", testDoc(200))
	if code != 200 {
		t.Fatalf("eval: %d %s", code, body)
	}
	var resp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	byName := map[string]evalResult{}
	for _, r := range resp.Results {
		byName[r.Query] = r
	}
	if g := byName["greedy"]; g.Code != http.StatusRequestEntityTooLarge ||
		!strings.Contains(g.Error, "budget exceeded") {
		t.Errorf("greedy rejection: %+v", g)
	}
	if l := byName["light"]; l.Error != "" || l.Output == "" {
		t.Errorf("light sibling disturbed: %+v", l)
	}
	_, body = do(t, "GET", ts.URL+"/stats", "")
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries["greedy"].BudgetRejections != 1 {
		t.Errorf("rejection not aggregated: %+v", stats.Queries["greedy"])
	}
	if stats.Buffers.Rejections != 1 {
		t.Errorf("manager rejections: %+v", stats.Buffers)
	}
}

// TestParseBytes covers the -budget flag syntax (shared helper).
func TestParseBytes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false}, {"1024", 1024, false}, {"4K", 4 << 10, false},
		{"64M", 64 << 20, false}, {"2g", 2 << 30, false}, {"1.5M", 0, true},
		{"-3", 0, true}, {"x", 0, true},
	} {
		got, err := unit.ParseBytes(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// TestEvalRejectsOversizedBody: a document larger than -max-body must be
// rejected with 413, never silently truncated into a valid prefix.
func TestEvalRejectsOversizedBody(t *testing.T) {
	srv, err := newServer(testDTD, 500, fluxquery.ProjectionFast, 0, fluxquery.BufferSpill, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, "POST", ts.URL+"/eval", testDoc(100))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", code, body)
	}
	if code, _ := do(t, "PUT", ts.URL+"/queries/huge", strings.Repeat(" ", 2000)+testQ3); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query body: %d", code)
	}
}

// TestParallelEval: a server running pipelined passes returns the same
// results as a sequential one and reports pipeline metrics in /eval and
// GET /stats.
func TestParallelEval(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setParallel(4)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := srv.register("titles", testQT); err != nil {
		t.Fatal(err)
	}
	ref, rts := newTestServer(t)
	if err := ref.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	if err := ref.register("titles", testQT); err != nil {
		t.Fatal(err)
	}

	doc := testDoc(300)
	code, body := do(t, "POST", ts.URL+"/eval", doc)
	if code != 200 {
		t.Fatalf("parallel eval: %d %s", code, body)
	}
	_, refBody := do(t, "POST", rts.URL+"/eval", doc)
	var resp, refResp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(refBody), &refResp); err != nil {
		t.Fatal(err)
	}
	for i := range resp.Results {
		if resp.Results[i].Output != refResp.Results[i].Output {
			t.Errorf("%s: parallel output differs from sequential", resp.Results[i].Query)
		}
	}
	if resp.Pipeline == nil || resp.Pipeline.Parallel < 2 || resp.Pipeline.Batches == 0 {
		t.Fatalf("pipeline metrics missing from /eval: %+v", resp.Pipeline)
	}
	if refResp.Pipeline != nil {
		t.Errorf("sequential pass reported pipeline metrics: %+v", refResp.Pipeline)
	}

	_, body = do(t, "GET", ts.URL+"/stats", "")
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Pipeline == nil || stats.Pipeline.Passes != 1 || stats.Pipeline.Batches == 0 {
		t.Errorf("pipeline aggregate missing from /stats: %+v", stats.Pipeline)
	}
}

// TestPoolSaturation: with a single eval slot held by an in-flight
// pass, the next /eval is shed with a structured 503 POOL_SATURATED,
// and the rejection is visible in GET /stats.
func TestPoolSaturation(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.setPool(1)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot directly (an in-flight pass holds it exactly
	// like this), then observe the shed path deterministically.
	srv.pool <- struct{}{}
	code, body := do(t, "POST", ts.URL+"/eval", testDoc(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated eval: %d %s", code, body)
	}
	if !strings.Contains(body, codePoolSaturated) {
		t.Fatalf("503 body lacks the %s code: %s", codePoolSaturated, body)
	}
	<-srv.pool

	// With the slot free again, the same request streams normally.
	if code, body := do(t, "POST", ts.URL+"/eval", testDoc(1)); code != 200 {
		t.Fatalf("post-drain eval: %d %s", code, body)
	}
	_, body = do(t, "GET", ts.URL+"/stats", "")
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Pool == nil || stats.Pool.Capacity != 1 || stats.Pool.Rejected != 1 {
		t.Fatalf("pool stats: %+v", stats.Pool)
	}
}

// TestErrorCodeTaxonomy: every structured error response carries its
// classifying code alongside the message.
func TestErrorCodeTaxonomy(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.register("q3", testQ3); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"PUT", "/queries/bad", "for $x in", 422, codeInvalidQuery},
		{"GET", "/queries/nosuch", "", 404, codeQueryNotFound},
		{"DELETE", "/queries/nosuch", "", 404, codeQueryNotFound},
		{"POST", "/eval?q=nosuch", testDoc(1), 404, codeQueryNotFound},
		{"POST", "/eval", "not xml", 422, codeInvalidDoc},
	} {
		status, body := do(t, tc.method, ts.URL+tc.path, tc.body)
		if status != tc.status || !strings.Contains(body, tc.code) {
			t.Errorf("%s %s: got %d %s, want %d with code %s",
				tc.method, tc.path, status, body, tc.status, tc.code)
		}
	}
}
