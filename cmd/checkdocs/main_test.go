package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func collect() (func(string, ...any), *[]string) {
	var got []string
	return func(format string, args ...any) {
		got = append(got, format)
	}, &got
}

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "exists.md", "target")
	md := write(t, dir, "doc.md",
		"[ok](exists.md) [web](https://example.com) [frag](#x) "+
			"[ok-frag](exists.md#sec) [broken](missing.md)")
	report, got := collect()
	checkMarkdown(md, report)
	if len(*got) != 1 {
		t.Fatalf("problems = %v, want exactly the broken link", *got)
	}
}

func TestCheckQueryAndDTD(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "testdata/good.xq", `<r>{ for $b in $ROOT/bib/book return { $b/title } }</r>`)
	bad := write(t, dir, "testdata/bad.xq", `for $x in`)
	report, got := collect()
	checkQuery(good, report)
	if len(*got) != 0 {
		t.Fatalf("good query flagged: %v", *got)
	}
	checkQuery(bad, report)
	if len(*got) != 1 {
		t.Fatalf("bad query not flagged")
	}

	report2, got2 := collect()
	checkDTD(write(t, dir, "testdata/good.dtd", `<!ELEMENT bib (#PCDATA)>`), report2)
	if len(*got2) != 0 {
		t.Fatalf("good DTD flagged: %v", *got2)
	}
	checkDTD(write(t, dir, "testdata/bad.dtd", `<!ELEMENT`), report2)
	if len(*got2) != 1 {
		t.Fatal("bad DTD not flagged")
	}
}

// TestRepositoryIsClean runs the real checks over this repository: the
// docs CI job must stay green.
func TestRepositoryIsClean(t *testing.T) {
	root := "../.."
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, format)
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(d.Name(), ".md"):
			checkMarkdown(path, report)
		case strings.HasSuffix(d.Name(), ".xq") && inTestdata(path):
			checkQuery(path, report)
		case strings.HasSuffix(d.Name(), ".dtd") && inTestdata(path):
			checkDTD(path, report)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("repository docs/corpus problems: %v", problems)
	}
}
