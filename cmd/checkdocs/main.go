// Command checkdocs is the repository's documentation and corpus lint,
// run by the CI docs job. It fails (exit 1) when:
//
//   - a Markdown file contains a relative link whose target does not
//     exist (absolute http(s) links and pure #fragments are not checked),
//   - a query file in testdata/*.xq does not parse in the supported
//     XQuery fragment,
//   - a DTD file in testdata/*.dtd does not parse.
//
// Usage:
//
//	checkdocs [-root dir]
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"fluxquery"
)

// mdLink matches inline Markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Skip VCS internals and vendored trees; everything else in the
			// repository is fair game.
			if name == ".git" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(name, ".md"):
			checkMarkdown(path, report)
		case strings.HasSuffix(name, ".xq") && inTestdata(path):
			checkQuery(path, report)
		case strings.HasSuffix(name, ".dtd") && inTestdata(path):
			checkDTD(path, report)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "checkdocs:", p)
		}
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("checkdocs: ok")
}

func inTestdata(path string) bool {
	return strings.Contains(filepath.ToSlash(path), "testdata/")
}

// checkMarkdown verifies every relative link target exists on disk.
func checkMarkdown(path string, report func(string, ...any)) {
	b, err := os.ReadFile(path)
	if err != nil {
		report("%s: %v", path, err)
		return
	}
	for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		// Strip a trailing #fragment; the file part must exist.
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
			if target == "" {
				continue
			}
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			report("%s: broken relative link %q", path, m[1])
		}
	}
}

// checkQuery verifies a corpus query parses.
func checkQuery(path string, report func(string, ...any)) {
	b, err := os.ReadFile(path)
	if err != nil {
		report("%s: %v", path, err)
		return
	}
	if _, err := fluxquery.ParseQuery(string(b)); err != nil {
		report("%s: query does not parse: %v", path, err)
	}
}

// checkDTD verifies a corpus schema parses.
func checkDTD(path string, report func(string, ...any)) {
	b, err := os.ReadFile(path)
	if err != nil {
		report("%s: %v", path, err)
		return
	}
	if _, err := fluxquery.ParseDTD(string(b)); err != nil {
		report("%s: DTD does not parse: %v", path, err)
	}
}
