package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// This file implements -baseline: re-run the measurement catalogue and
// diff its throughput against a committed BENCH_*.json trajectory file,
// failing on regression. It is the perf analogue of the differential
// suite — a PR that slows a hot path down past the threshold turns the
// bench job red instead of landing silently.

// key identifies a measurement across runs; it must be stable under
// append-only schema evolution of record.
type key struct {
	Suite  string
	Query  string
	Engine string
	Proj   string
	Plans  int
}

func (r *record) key() key {
	return key{Suite: r.Suite, Query: r.Query, Engine: r.Engine, Proj: r.Proj, Plans: r.Plans}
}

// loadBaseline reads a BENCH_*.json file written by -json.
func loadBaseline(path string) (map[key]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]record, len(records))
	for _, r := range records {
		out[r.key()] = r
	}
	return out, nil
}

// runBaseline measures the current tree and diffs MB/s per measurement
// against the baseline file. It returns an error when any shared
// measurement regresses by more than maxRegressPct percent.
func runBaseline(r *runner, baselinePath string, maxRegressPct float64, normalize bool) error {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	cur, err := collectRecords(r)
	if err != nil {
		return err
	}
	if normalize {
		cur = normalizeRecords(r.w, base, cur)
	}
	if failed := diffRecords(r.w, base, cur, maxRegressPct); failed > 0 {
		return fmt.Errorf("%d measurement(s) regressed by more than %.0f%% MB/s vs %s",
			failed, maxRegressPct, baselinePath)
	}
	fmt.Fprintf(r.w, "OK: no measurement regressed by more than %.0f%% vs %s\n", maxRegressPct, baselinePath)
	return nil
}

// normalizeRecords rescales the current run by the median current/base
// throughput ratio, so a uniformly slower or faster machine diffs clean
// against a baseline from different hardware and only measurements that
// moved relative to the rest of the suite stand out.
func normalizeRecords(w io.Writer, base map[key]record, cur []record) []record {
	var ratios []float64
	for _, c := range cur {
		if b, ok := base[c.key()]; ok && b.MBPerS > 0 && c.MBPerS > 0 {
			ratios = append(ratios, c.MBPerS/b.MBPerS)
		}
	}
	if len(ratios) == 0 {
		return cur
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if median <= 0 {
		return cur
	}
	fmt.Fprintf(w, "normalizing by median throughput ratio %.3f (machine-speed difference cancelled)\n", median)
	out := make([]record, len(cur))
	for i, c := range cur {
		c.MBPerS /= median
		out[i] = c
	}
	return out
}

// diffRecords prints the per-measurement throughput deltas and returns
// the number of regressions past the threshold. Measurements missing
// from either side are reported but do not count as failures (the schema
// is append-only; new workloads appear over time).
func diffRecords(w io.Writer, base map[key]record, cur []record, maxRegressPct float64) int {
	type row struct {
		k          key
		baseMB     float64
		curMB      float64
		deltaPct   float64
		regression bool
	}
	var rows []row
	var missing []key
	seen := make(map[key]bool, len(cur))
	for _, c := range cur {
		k := c.key()
		seen[k] = true
		b, ok := base[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		if b.MBPerS <= 0 {
			continue
		}
		d := (c.MBPerS - b.MBPerS) / b.MBPerS * 100
		rows = append(rows, row{k: k, baseMB: b.MBPerS, curMB: c.MBPerS, deltaPct: d,
			regression: d < -maxRegressPct})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].deltaPct < rows[j].deltaPct })

	fmt.Fprintf(w, "%-14s %-24s %-16s %-8s %10s %10s %8s\n",
		"suite", "query", "engine", "proj", "base MB/s", "cur MB/s", "delta")
	failed := 0
	for _, row := range rows {
		marker := ""
		if row.regression {
			marker = "  << REGRESSION"
			failed++
		}
		fmt.Fprintf(w, "%-14s %-24s %-16s %-8s %10.1f %10.1f %+7.1f%%%s\n",
			row.k.Suite, row.k.Query, row.k.Engine, row.k.Proj,
			row.baseMB, row.curMB, row.deltaPct, marker)
	}
	for _, k := range missing {
		fmt.Fprintf(w, "%-14s %-24s %-16s %-8s %10s (not in baseline)\n",
			k.Suite, k.Query, k.Engine, k.Proj, "-")
	}
	for k := range base {
		if !seen[k] {
			fmt.Fprintf(w, "%-14s %-24s %-16s %-8s %10s (baseline only)\n",
				k.Suite, k.Query, k.Engine, k.Proj, "-")
		}
	}
	return failed
}
