package main

// The -fault mode drives the engine's fault-injection harness
// (internal/faultinj) from the command line: it arms a fault spec —
// or sweeps every site × mode — runs a workload known to reach each
// armed site, and reports whether the injection was actually hit and
// whether the pass degraded the way the failure model promises
// (error and short-write faults surface as a clean pass error,
// latency faults merely slow the pass down, and a follow-up clean
// run succeeds — the process stays reusable).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"fluxquery"
	"fluxquery/internal/faultinj"
	"fluxquery/internal/workload"
)

// faultWorkload names the workload that reaches a fault site.
func faultWorkload(site string) string {
	switch site {
	case faultinj.SiteSpillWrite, faultinj.SiteSpillRead:
		return "spill"
	case faultinj.SiteRingToken, faultinj.SiteRingEvent:
		return "ring"
	case faultinj.SiteBodyRead:
		return "body"
	}
	return ""
}

// faultHarness pre-builds the three site-covering workloads so a sweep
// does not recompile plans per cell.
type faultHarness struct {
	// spill: a buffering query under BufferSpill with a budget at half
	// its natural peak, so every run writes and rehydrates segments.
	spillPlan *fluxquery.Plan
	spillDoc  []byte
	// ring: a pipelined shared pass (tokenize/validate stages on their
	// own goroutines), so both ring hand-offs run.
	ringSet *fluxquery.StreamSet
	ringDoc []byte
	// body: a plain pass whose input rides a faultinj.Reader at the
	// body.read site, standing in for the fluxserve request body.
	bodyPlan *fluxquery.Plan
	bodyDoc  []byte
}

func newFaultHarness(r *runner) (*faultHarness, error) {
	h := &faultHarness{}
	// 64 KB keeps the spill cells quick: a latency fault fires once per
	// spill op, and sleep granularity makes thousands of ops add up.
	c := workload.ByName("xmp-q3-weak")
	doc, err := r.gen(c, 64<<10)
	if err != nil {
		return nil, err
	}
	ref := fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{})
	_, st, err := ref.ExecuteString(string(doc))
	if err != nil {
		return nil, err
	}
	h.spillPlan = fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{
		BufferBudget: st.PeakBufferBytes / 2,
		BufferPolicy: fluxquery.BufferSpill,
	})
	h.spillDoc = doc
	h.bodyPlan = ref
	h.bodyDoc = doc

	d, err := fluxquery.ParseDTD(mqDTD())
	if err != nil {
		return nil, err
	}
	set := fluxquery.NewStreamSet(d)
	set.SetParallel(4)
	for g := 0; g < 4; g++ {
		p := fluxquery.MustCompile(mqQuery(g), mqDTD(), fluxquery.Options{})
		if _, err := set.Register(p, io.Discard); err != nil {
			return nil, err
		}
	}
	h.ringSet = set
	h.ringDoc = mqDoc()
	return h, nil
}

// run executes the named workload once and returns the pass error.
func (h *faultHarness) run(name string) error {
	switch name {
	case "spill":
		_, err := h.spillPlan.Execute(bytes.NewReader(h.spillDoc), io.Discard)
		return err
	case "ring":
		return h.ringSet.Run(bytes.NewReader(h.ringDoc))
	case "body":
		_, err := h.bodyPlan.Execute(
			&faultinj.Reader{Site: faultinj.SiteBodyRead, R: bytes.NewReader(h.bodyDoc)},
			io.Discard)
		return err
	}
	return fmt.Errorf("unknown fault workload %q", name)
}

// runFault is the -fault entry point. spec "sweep" runs every site ×
// mode; any other spec is an ArmSpec string armed for one run of the
// covering workloads. Returns non-zero when a cell violates the
// failure model: a site never reached, an error fault that did not
// fail the pass, a latency fault that did, or a clean follow-up run
// that failed (process not reusable).
func runFault(r *runner, spec string) int {
	h, err := newFaultHarness(r)
	if err != nil {
		fmt.Fprintf(r.w, "fluxbench: -fault: %v\n", err)
		return 1
	}
	defer h.spillPlan.Close()
	defer faultinj.Reset()
	if spec != "sweep" {
		return runFaultSpec(r, h, spec)
	}

	fmt.Fprintf(r.w, "== fault injection sweep: every site x mode ==\n")
	fmt.Fprintf(r.w, "%-12s %-11s %-6s %6s %9s %12s  %s\n",
		"site", "mode", "wkld", "hits", "injected", "time", "outcome")
	bad := 0
	for _, sn := range faultinj.Sites() {
		wl := faultWorkload(sn)
		for _, mode := range faultinj.Modes() {
			faultinj.Reset()
			f := faultinj.Fault{Mode: mode}
			if mode == faultinj.ModeLatency {
				f.Latency = 200 * time.Microsecond
			}
			if err := faultinj.Arm(sn, f); err != nil {
				fmt.Fprintf(r.w, "fluxbench: -fault: %v\n", err)
				return 1
			}
			start := time.Now()
			passErr := h.run(wl)
			el := time.Since(start).Round(time.Microsecond)
			hits, inj := faultinj.Hits(sn), faultinj.Injected(sn)
			faultinj.Reset()
			cleanErr := h.run(wl)
			outcome := faultOutcome(mode, inj, passErr, cleanErr)
			if outcome != "ok" {
				bad++
			}
			fmt.Fprintf(r.w, "%-12s %-11s %-6s %6d %9d %12s  %s\n",
				sn, mode, wl, hits, inj, el, outcome)
		}
	}
	if bad > 0 {
		fmt.Fprintf(r.w, "\n%d cell(s) violated the failure model\n", bad)
		return 1
	}
	return 0
}

// faultOutcome classifies one sweep cell against the failure model.
func faultOutcome(mode faultinj.Mode, injected int64, passErr, cleanErr error) string {
	switch {
	case injected == 0:
		return "SITE NOT REACHED"
	case cleanErr != nil:
		return fmt.Sprintf("NOT REUSABLE: clean rerun failed: %v", cleanErr)
	case mode == faultinj.ModeLatency && passErr != nil:
		return fmt.Sprintf("LATENCY FAILED PASS: %v", passErr)
	case mode != faultinj.ModeLatency && passErr == nil:
		return "FAULT SWALLOWED: pass succeeded"
	case mode != faultinj.ModeLatency && !errors.Is(passErr, faultinj.ErrInjected):
		return fmt.Sprintf("WRONG ERROR: %v", passErr)
	}
	return "ok"
}

// runFaultSpec arms one user spec and runs the covering workloads.
func runFaultSpec(r *runner, h *faultHarness, spec string) int {
	if err := faultinj.ArmSpec(spec); err != nil {
		fmt.Fprintf(r.w, "fluxbench: -fault: %v\n", err)
		return 1
	}
	// Run each workload covering at least one armed site (armed =
	// injected-or-injectable; detect via the spec's site names).
	need := map[string]bool{}
	for _, sn := range faultinj.Sites() {
		if faultinj.Injected(sn) > 0 || specNames(spec, sn) {
			need[faultWorkload(sn)] = true
		}
	}
	fmt.Fprintf(r.w, "== fault run: %s ==\n", spec)
	for _, wl := range []string{"spill", "ring", "body"} {
		if !need[wl] {
			continue
		}
		start := time.Now()
		err := h.run(wl)
		el := time.Since(start).Round(time.Microsecond)
		fmt.Fprintf(r.w, "%-6s %12s  err=%v\n", wl, el, err)
	}
	fmt.Fprintf(r.w, "%-12s %6s %9s\n", "site", "hits", "injected")
	for _, sn := range faultinj.Sites() {
		if faultinj.Hits(sn) == 0 && faultinj.Injected(sn) == 0 {
			continue
		}
		fmt.Fprintf(r.w, "%-12s %6d %9d\n", sn, faultinj.Hits(sn), faultinj.Injected(sn))
	}
	return 0
}

// specNames reports whether the spec string names the site.
func specNames(spec, site string) bool {
	for _, item := range splitSpec(spec) {
		if item == site {
			return true
		}
	}
	return false
}

func splitSpec(spec string) []string {
	var out []string
	for _, item := range bytes.Split([]byte(spec), []byte(",")) {
		name, _, _ := bytes.Cut(bytes.TrimSpace(item), []byte(":"))
		out = append(out, string(name))
	}
	return out
}
