package main

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"fluxquery"
)

// The multiquery suite measures what the dispatch trie is for: the
// marginal per-plan cost of one shared pass as the registration count
// grows from 100 to 10 000 while the distinct path population stays
// fixed. The workload registers N queries drawn round-robin from
// mqGroups distinct loop paths over a weak (star-content) catalog
// schema, so the trie interns mqGroups path families no matter how many
// registrations ride them and an event's delivery cost tracks the plans
// whose paths reach it — flat marginal cost is the acceptance shape
// (marginal ns/plan at 10k within 2x of 100). A fanout-mode record at
// the smallest count anchors the comparison against the
// deliver-everything-to-everyone baseline.

const (
	mqGroups        = 32
	mqItemsPerGroup = 140 // document lands near 256 KB
)

// mqDTD builds the catalog schema: db holds a free mix of mqGroups group
// elements, each group a star of its own item kind with two leaf fields.
// All content models are unordered stars, so every plan streams without
// buffering and the suite isolates dispatch cost.
func mqDTD() string {
	var sb strings.Builder
	sb.WriteString("<!ELEMENT db (")
	for g := 0; g < mqGroups; g++ {
		if g > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(&sb, "g%d", g)
	}
	sb.WriteString(")*>\n")
	for g := 0; g < mqGroups; g++ {
		fmt.Fprintf(&sb, "<!ELEMENT g%d (item%d)*>\n", g, g)
		fmt.Fprintf(&sb, "<!ELEMENT item%d (name%d|val%d)*>\n", g, g, g)
		fmt.Fprintf(&sb, "<!ELEMENT name%d (#PCDATA)>\n", g)
		fmt.Fprintf(&sb, "<!ELEMENT val%d (#PCDATA)>\n", g)
	}
	return sb.String()
}

func mqDoc() []byte {
	var sb bytes.Buffer
	sb.WriteString("<db>")
	for g := 0; g < mqGroups; g++ {
		fmt.Fprintf(&sb, "<g%d>", g)
		for i := 0; i < mqItemsPerGroup; i++ {
			fmt.Fprintf(&sb, "<item%d><name%d>n%d-%d</name%d><val%d>%d</val%d></item%d>",
				g, g, g, i, g, g, i%97, g, g)
		}
		fmt.Fprintf(&sb, "</g%d>", g)
	}
	sb.WriteString("</db>")
	return sb.Bytes()
}

func mqQuery(g int) string {
	return fmt.Sprintf("<out>{ for $x in $ROOT/db/g%d/item%d return <r>{ $x/name%d }</r> }</out>",
		g, g, g)
}

// multiQueryRecords measures trie-dispatched shared passes at 100, 1 000
// and 10 000 registrations plus one fanout pass at 100 for comparison.
func multiQueryRecords(r *runner) ([]record, error) {
	dtdSrc := mqDTD()
	d, err := fluxquery.ParseDTD(dtdSrc)
	if err != nil {
		return nil, err
	}
	doc := mqDoc()
	plans := make([]*fluxquery.Plan, mqGroups)
	for g := range plans {
		plans[g] = fluxquery.MustCompile(mqQuery(g), dtdSrc, fluxquery.Options{})
	}

	measure := func(mode fluxquery.Dispatch, n int) (record, error) {
		set := fluxquery.NewStreamSet(d)
		set.SetDispatch(mode)
		regs := make([]*fluxquery.StreamQuery, n)
		for i := 0; i < n; i++ {
			reg, err := set.Register(plans[i%mqGroups], io.Discard)
			if err != nil {
				return record{}, err
			}
			regs[i] = reg
		}
		// One warm pass outside the measurement: the first Run after
		// registration churn rebuilds the projection union and the trie
		// snapshot, a cost amortized over every later pass of a long-lived
		// set. The suite measures the steady-state marginal cost.
		if err := set.Run(bytes.NewReader(doc)); err != nil {
			return record{}, err
		}
		best, allocs, durs, err := measureAllocs(r.reps, func() error {
			return set.Run(bytes.NewReader(doc))
		})
		if err != nil {
			return record{}, err
		}
		var peak, out int64
		for _, reg := range regs {
			st, err := reg.Stats()
			if err != nil {
				return record{}, err
			}
			if st.PeakBufferBytes > peak {
				peak = st.PeakBufferBytes
			}
			out += st.OutputBytes
		}
		engine := "flux-fanout"
		if mode == fluxquery.DispatchTrie {
			engine = "flux-trie"
		}
		ds := set.LastDispatch()
		rec := record{
			Suite: "multiquery", Query: fmt.Sprintf("catalog-%dpaths", mqGroups),
			Engine: engine, Plans: n, DocBytes: len(doc),
			NsPerOp: best.Nanoseconds(), MBPerS: mbPerS(int64(len(doc))*int64(n), best),
			AllocsPerOp: allocs, PeakBufferBytes: peak, OutputBytes: out,
			Proj:              "fast",
			MarginalNsPerPlan: best.Nanoseconds() / int64(n),
			TrieNodes:         ds.TrieNodes,
			TrieDeliveries:    ds.Deliveries,
		}
		return withQuantiles(rec, durs), nil
	}

	var records []record
	for _, n := range []int{100, 1000, 10000} {
		rec, err := measure(fluxquery.DispatchTrie, n)
		if err != nil {
			return nil, fmt.Errorf("multiquery trie %d: %w", n, err)
		}
		records = append(records, rec)
	}
	rec, err := measure(fluxquery.DispatchFanout, 100)
	if err != nil {
		return nil, fmt.Errorf("multiquery fanout: %w", err)
	}
	return append(records, rec), nil
}
