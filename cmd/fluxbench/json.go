package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	goruntime "runtime"
	"sort"
	"time"

	"fluxquery"
	"fluxquery/internal/workload"
)

// record is one machine-readable measurement. The schema is the contract
// for BENCH_*.json trajectory files: keep fields append-only.
type record struct {
	// Suite identifies the measurement family: "workload" for the
	// single-query case suite, "shared-stream" for the multi-query engine.
	Suite  string `json:"suite"`
	Query  string `json:"query"`
	Engine string `json:"engine"`
	// Plans is the number of plans riding one pass (1 for the single-query
	// suite).
	Plans    int `json:"plans"`
	DocBytes int `json:"doc_bytes"`
	// NsPerOp is the best wall-clock time for one operation (one
	// execution, or one shared pass of all plans).
	NsPerOp int64 `json:"ns_per_op"`
	// MBPerS is aggregate throughput: bytes of input evaluated per second,
	// counting each riding plan's evaluation of the document.
	MBPerS float64 `json:"mb_per_s"`
	// AllocsPerOp is the heap allocation count of the measured repetition.
	AllocsPerOp     uint64 `json:"allocs_per_op"`
	PeakBufferBytes int64  `json:"peak_buffer_bytes"`
	OutputBytes     int64  `json:"output_bytes"`
	// Proj is the stream-projection mode of flux-engine measurements
	// ("fast"/"off"); empty for the baseline engines, which do not
	// project the scan.
	Proj string `json:"proj,omitempty"`
	// EventsDelivered/EventsSkipped/BytesSkipped report the projection of
	// the measured scan: events fanned to the evaluator vs pruned before
	// it, and raw bytes the tokenizer bulk-skipped.
	EventsDelivered int64 `json:"events_delivered,omitempty"`
	EventsSkipped   int64 `json:"events_skipped,omitempty"`
	BytesSkipped    int64 `json:"bytes_skipped,omitempty"`
	// Budget* describe budgeted (buffer-managed) measurements: the byte
	// budget and policy, the spill traffic of the measured run, the
	// heap-resident peak the budget bounded, and backpressure stall.
	Budget              int64  `json:"budget,omitempty"`
	BudgetPolicy        string `json:"budget_policy,omitempty"`
	SpilledBytes        int64  `json:"spilled_bytes,omitempty"`
	RehydratedBytes     int64  `json:"rehydrated_bytes,omitempty"`
	PeakHeapBufferBytes int64  `json:"peak_heap_buffer_bytes,omitempty"`
	StallNs             int64  `json:"stall_ns,omitempty"`
	// GoMaxProcs is the scheduler width of the measuring process — a
	// parallel measurement from a 1-CPU run is not comparable to one
	// from 8, so the record carries it.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Parallel is the feed-worker count of a pipelined measurement (the
	// `parallel` suite; 0 = sequential pass). The remaining fields
	// describe that pass: work-steal events between evaluator workers,
	// per-stage stall time (tokenizer blocked on a full ring, validator
	// blocked on a full ring, dispatcher blocked on an empty ring) and
	// the rings' occupancy high-water marks.
	Parallel        int   `json:"parallel,omitempty"`
	Steals          int64 `json:"steals,omitempty"`
	TokenizeStallNs int64 `json:"tokenize_stall_ns,omitempty"`
	ValidateStallNs int64 `json:"validate_stall_ns,omitempty"`
	DispatchStallNs int64 `json:"dispatch_stall_ns,omitempty"`
	TokenRingPeak   int   `json:"token_ring_peak,omitempty"`
	EventRingPeak   int   `json:"event_ring_peak,omitempty"`
	// Multiquery suite fields: the per-plan marginal cost of one shared
	// pass (NsPerOp / Plans), the dispatch trie's interned node count and
	// the events it delivered (plan-events, summed over fan-out lists).
	MarginalNsPerPlan int64 `json:"marginal_ns_per_plan,omitempty"`
	TrieNodes         int   `json:"trie_nodes,omitempty"`
	TrieDeliveries    int64 `json:"trie_deliveries,omitempty"`
	// P50Ns/P95Ns/P99Ns are latency quantiles over the measurement's
	// repetitions (nearest-rank). NsPerOp remains the best repetition;
	// the quantiles expose the spread — with few -reps the upper ones
	// saturate at the slowest repetition.
	P50Ns int64 `json:"p50_ns,omitempty"`
	P95Ns int64 `json:"p95_ns,omitempty"`
	P99Ns int64 `json:"p99_ns,omitempty"`
}

// withQuantiles fills rec's latency quantile fields from the
// repetition durations and returns it.
func withQuantiles(rec record, durs []time.Duration) record {
	rec.P50Ns = pctile(durs, 0.50)
	rec.P95Ns = pctile(durs, 0.95)
	rec.P99Ns = pctile(durs, 0.99)
	return rec
}

// withRollupQuantiles fills rec's latency quantiles from the flight
// recorder's since-start rollup: the engine's own per-pass wall times,
// reduced by the same nearest-rank method as pctile. StreamSet suites
// use this so the benchmark exercises the observability path it
// reports through; when the recorder saw no passes the repetition
// timings are the fallback.
func withRollupQuantiles(rec record, frec *fluxquery.FlightRecorder, durs []time.Duration) record {
	ru := frec.Rollup(0)
	if ru.Passes == 0 {
		return withQuantiles(rec, durs)
	}
	rec.P50Ns = ru.P50.Nanoseconds()
	rec.P95Ns = ru.P95.Nanoseconds()
	rec.P99Ns = ru.P99.Nanoseconds()
	return rec
}

// benchRecorder returns a flight recorder sized to retain every
// measured repetition of one suite configuration.
func benchRecorder(reps int) *fluxquery.FlightRecorder {
	if reps < 1 {
		reps = 1
	}
	return fluxquery.NewFlightRecorder(fluxquery.FlightRecorderConfig{Size: reps})
}

// pctile returns the q-quantile (0 < q <= 1) of the ascending-sorted
// durations by the nearest-rank method.
func pctile(durs []time.Duration, q float64) int64 {
	if len(durs) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(durs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(durs) {
		rank = len(durs)
	}
	return durs[rank-1].Nanoseconds()
}

// measureAllocs runs fn reps times and returns the best wall time, the
// allocation count of that repetition, and every repetition's duration
// sorted ascending (for latency quantiles).
func measureAllocs(reps int, fn func() error) (best time.Duration, allocs uint64, durs []time.Duration, err error) {
	best = 1 << 62
	var ms0, ms1 goruntime.MemStats
	for i := 0; i < reps; i++ {
		goruntime.ReadMemStats(&ms0)
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0, nil, err
		}
		el := time.Since(start)
		goruntime.ReadMemStats(&ms1)
		if el < best {
			best = el
			allocs = ms1.Mallocs - ms0.Mallocs
		}
		durs = append(durs, el)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return best, allocs, durs, nil
}

func mbPerS(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / (1 << 20)
}

// runJSON measures the workload catalogue on every engine plus the
// shared-stream multi-query workload and writes the records as JSON.
func runJSON(r *runner, path string) error {
	records, err := collectRecords(r)
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// collectRecords runs the full measurement catalogue (single-query suite
// and shared-stream suite) and returns the records. It is shared by the
// -json writer and the -baseline regression diff.
func collectRecords(r *runner) ([]record, error) {
	var records []record

	// Single-query suite: every case on every engine.
	for i := range workload.Cases {
		c := &workload.Cases[i]
		size := int64(1 << 20)
		if c.Join {
			size = 256 << 10
		}
		doc, err := r.gen(c, size)
		if err != nil {
			return nil, err
		}
		// The flux engine is measured twice — projection off and fast — so
		// trajectory files record the stream-projection win per query; the
		// baseline engines do not project the scan.
		type variant struct {
			engine fluxquery.Engine
			proj   fluxquery.Projection
			label  string
		}
		variants := []variant{
			{fluxquery.EngineFlux, fluxquery.ProjectionOff, "off"},
			{fluxquery.EngineFlux, fluxquery.ProjectionFast, "fast"},
			{fluxquery.EngineProjection, fluxquery.ProjectionOff, ""},
			{fluxquery.EngineNaive, fluxquery.ProjectionOff, ""},
		}
		for _, v := range variants {
			p := fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{Engine: v.engine, Projection: v.proj})
			var st fluxquery.Stats
			best, allocs, durs, err := measureAllocs(r.reps, func() error {
				var rerr error
				st, rerr = p.Execute(bytes.NewReader(doc), io.Discard)
				return rerr
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.Name, v.engine, err)
			}
			records = append(records, withQuantiles(record{
				Suite:           "workload",
				Query:           c.Name,
				Engine:          v.engine.String(),
				Plans:           1,
				DocBytes:        len(doc),
				NsPerOp:         best.Nanoseconds(),
				MBPerS:          mbPerS(int64(len(doc)), best),
				AllocsPerOp:     allocs,
				PeakBufferBytes: st.PeakBufferBytes,
				OutputBytes:     st.OutputBytes,
				Proj:            v.label,
				EventsDelivered: st.ScanEventsDelivered,
				EventsSkipped:   st.ScanEventsSkipped,
				BytesSkipped:    st.ScanBytesSkipped,
			}, durs))
		}
	}

	// Shared-stream suite: N streaming auction queries on one pass.
	shared, err := sharedStreamRecords(r)
	if err != nil {
		return nil, err
	}
	records = append(records, shared...)

	// Budgeted suite: the spill path under memory pressure.
	budgeted, err := budgetedRecords(r)
	if err != nil {
		return nil, err
	}
	records = append(records, budgeted...)

	// Parallel suite: the pipelined shared pass vs the sequential one.
	par, err := parallelRecords(r)
	if err != nil {
		return nil, err
	}
	records = append(records, par...)

	// Multiquery suite: marginal per-plan cost of trie dispatch at
	// 100/1k/10k registrations.
	mq, err := multiQueryRecords(r)
	if err != nil {
		return nil, err
	}
	records = append(records, mq...)

	gmp := goruntime.GOMAXPROCS(0)
	for i := range records {
		records[i].GoMaxProcs = gmp
	}
	return records, nil
}

// parallelRecords measures the tentpole: all 8 streaming XMark queries
// riding one auction stream, first as the sequential shared pass, then
// pipelined (tokenize ∥ validate ∥ dispatch with r.parallel feed
// workers sharding the plan set). Both records carry the same suite,
// query, plans and proj, differing in engine — so a -baseline diff
// tracks each independently — and the pipelined record adds the
// per-stage stall, steal and ring-occupancy evidence.
func parallelRecords(r *runner) ([]record, error) {
	names := []string{
		"xmark-q1", "xmark-q8-join", "xmark-q13", "xmark-q2-bidders",
		"xmark-q17-nophone", "xmark-q20-cities", "xmark-q4-sellers", "xmark-q11-bids",
	}
	base := workload.ByName(names[0])
	doc, err := r.gen(base, 512<<10)
	if err != nil {
		return nil, err
	}
	d, err := fluxquery.ParseDTD(base.DTD)
	if err != nil {
		return nil, err
	}
	plans := make([]*fluxquery.Plan, len(names))
	for i, name := range names {
		c := workload.ByName(name)
		plans[i] = fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{})
	}
	aggregate := int64(len(doc)) * int64(len(plans))
	workers := r.parallel
	if workers < 2 {
		workers = 4
	}

	var records []record
	for _, par := range []int{0, workers} {
		set := fluxquery.NewStreamSet(d)
		set.SetParallel(par)
		frec := benchRecorder(r.reps)
		set.SetRecorder(frec)
		regs := make([]*fluxquery.StreamQuery, len(plans))
		for i, p := range plans {
			reg, err := set.Register(p, io.Discard)
			if err != nil {
				return nil, err
			}
			regs[i] = reg
		}
		best, allocs, durs, err := measureAllocs(r.reps, func() error {
			return set.Run(bytes.NewReader(doc))
		})
		if err != nil {
			return nil, err
		}
		var peak, out int64
		for _, reg := range regs {
			st, err := reg.Stats()
			if err != nil {
				return nil, err
			}
			if st.PeakBufferBytes > peak {
				peak = st.PeakBufferBytes
			}
			out += st.OutputBytes
		}
		sc := set.LastScan()
		rec := record{
			Suite: "parallel", Query: "xmark-8q", Plans: len(plans),
			Engine: "flux-mqe-seq", DocBytes: len(doc),
			NsPerOp: best.Nanoseconds(), MBPerS: mbPerS(aggregate, best),
			AllocsPerOp: allocs, PeakBufferBytes: peak, OutputBytes: out,
			Proj:            "fast",
			EventsDelivered: sc.EventsDelivered,
			EventsSkipped:   sc.EventsSkipped,
			BytesSkipped:    sc.BytesSkipped,
		}
		if par >= 2 {
			ps := set.LastPass()
			rec.Engine = "flux-mqe-parallel"
			rec.Parallel = ps.Parallel
			rec.Steals = ps.Steals
			rec.TokenizeStallNs = ps.TokenizeStall.Nanoseconds()
			rec.ValidateStallNs = ps.ValidateStall.Nanoseconds()
			rec.DispatchStallNs = ps.DispatchStall.Nanoseconds()
			rec.TokenRingPeak = ps.TokenRingPeak
			rec.EventRingPeak = ps.EventRingPeak
		}
		records = append(records, withRollupQuantiles(rec, frec, durs))
	}
	return records, nil
}

// budgetedRecords measures the buffer manager's spill path: accrual
// workloads run with a budget at half their natural peak under
// PolicySpill, so the record's MB/s carries the full
// encode→segment-store→rehydrate round trip and a regression in the
// spill path turns the -baseline diff red like any other hot path.
func budgetedRecords(r *runner) ([]record, error) {
	var records []record
	// Two access shapes: xmp-q4-distinct accrues a buffer across the
	// whole stream and scans it once at the end (the spill path's
	// sequential best case); xmark-q8-join re-scans its buffers per
	// outer row (the nested-loop stress case, bounded by MRU re-drops).
	for _, name := range []string{"xmp-q4-distinct", "xmark-q8-join"} {
		c := workload.ByName(name)
		doc, err := r.gen(c, 256<<10)
		if err != nil {
			return nil, err
		}
		// Natural peak first, then the budgeted run at half of it.
		probe := fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{})
		pst, err := probe.Execute(bytes.NewReader(doc), io.Discard)
		if err != nil {
			return nil, err
		}
		budget := r.budget
		if budget <= 0 {
			budget = pst.PeakBufferBytes / 2
		}
		p := fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{
			BufferBudget: budget,
			BufferPolicy: fluxquery.BufferSpill,
		})
		var st fluxquery.Stats
		best, allocs, durs, err := measureAllocs(r.reps, func() error {
			var rerr error
			st, rerr = p.Execute(bytes.NewReader(doc), io.Discard)
			return rerr
		})
		// The plan owns its manager (and the spill store's fd): release it.
		if cerr := p.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("budgeted %s: %w", name, err)
		}
		records = append(records, withQuantiles(record{
			Suite:               "budgeted",
			Query:               name,
			Engine:              "flux-spill",
			Plans:               1,
			DocBytes:            len(doc),
			NsPerOp:             best.Nanoseconds(),
			MBPerS:              mbPerS(int64(len(doc)), best),
			AllocsPerOp:         allocs,
			PeakBufferBytes:     st.PeakBufferBytes,
			OutputBytes:         st.OutputBytes,
			Proj:                "fast",
			Budget:              budget,
			BudgetPolicy:        "spill",
			SpilledBytes:        st.SpilledBytes,
			RehydratedBytes:     st.RehydratedBytes,
			PeakHeapBufferBytes: st.PeakHeapBufferBytes,
			StallNs:             st.BudgetStall.Nanoseconds(),
		}, durs))
	}
	return records, nil
}

// sharedStreamRecords measures the multi-query engine: 8 streaming XMark
// queries riding one auction stream, against the same 8 run sequentially.
func sharedStreamRecords(r *runner) ([]record, error) {
	names := []string{"xmark-q1", "xmark-q13", "xmark-q2-bidders"}
	base := workload.ByName(names[0])
	doc, err := r.gen(base, 256<<10)
	if err != nil {
		return nil, err
	}
	d, err := fluxquery.ParseDTD(base.DTD)
	if err != nil {
		return nil, err
	}
	const nPlans = 8
	plans := make([]*fluxquery.Plan, nPlans)
	for i := range plans {
		c := workload.ByName(names[i%len(names)])
		plans[i] = fluxquery.MustCompile(c.Query, c.DTD, fluxquery.Options{})
	}
	aggregate := int64(len(doc)) * nPlans

	// The shared pass is measured with projection off and fast: the union
	// skip automaton prunes what no riding plan can use, so fast records
	// carry the scan's delivered/skipped split.
	var sharedRecords []record
	for _, pm := range []fluxquery.Projection{fluxquery.ProjectionOff, fluxquery.ProjectionFast} {
		set := fluxquery.NewStreamSet(d)
		set.SetProjection(pm)
		frec := benchRecorder(r.reps)
		set.SetRecorder(frec)
		regs := make([]*fluxquery.StreamQuery, len(plans))
		for i, p := range plans {
			reg, err := set.Register(p, io.Discard)
			if err != nil {
				return nil, err
			}
			regs[i] = reg
		}
		bestShared, sharedAllocs, sharedDurs, err := measureAllocs(r.reps, func() error {
			return set.Run(bytes.NewReader(doc))
		})
		if err != nil {
			return nil, err
		}
		// Peak buffer and output of the pass: the maximum and sum over the
		// riding plans (one record describes the whole shared pass).
		var sharedPeak, sharedOut int64
		for _, reg := range regs {
			st, err := reg.Stats()
			if err != nil {
				return nil, err
			}
			if st.PeakBufferBytes > sharedPeak {
				sharedPeak = st.PeakBufferBytes
			}
			sharedOut += st.OutputBytes
		}
		sc := set.LastScan()
		sharedRecords = append(sharedRecords, withRollupQuantiles(record{
			Suite: "shared-stream", Query: "xmark-mix", Engine: "flux-mqe",
			Plans: nPlans, DocBytes: len(doc),
			NsPerOp: bestShared.Nanoseconds(), MBPerS: mbPerS(aggregate, bestShared),
			AllocsPerOp: sharedAllocs, PeakBufferBytes: sharedPeak, OutputBytes: sharedOut,
			Proj:            pm.String(),
			EventsDelivered: sc.EventsDelivered,
			EventsSkipped:   sc.EventsSkipped,
			BytesSkipped:    sc.BytesSkipped,
		}, frec, sharedDurs))
	}
	var seqPeak, seqOut int64
	bestSeq, seqAllocs, seqDurs, err := measureAllocs(r.reps, func() error {
		seqPeak, seqOut = 0, 0
		for _, p := range plans {
			st, err := p.Execute(bytes.NewReader(doc), io.Discard)
			if err != nil {
				return err
			}
			if st.PeakBufferBytes > seqPeak {
				seqPeak = st.PeakBufferBytes
			}
			seqOut += st.OutputBytes
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return append(sharedRecords, withQuantiles(record{
		Suite: "shared-stream", Query: "xmark-mix", Engine: "flux-sequential",
		Plans: nPlans, DocBytes: len(doc),
		NsPerOp: bestSeq.Nanoseconds(), MBPerS: mbPerS(aggregate, bestSeq),
		AllocsPerOp: seqAllocs, PeakBufferBytes: seqPeak, OutputBytes: seqOut,
		Proj: "fast",
	}, seqDurs)), nil
}
