package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"fluxquery/internal/workload"
)

// TestExperimentsProduceTables runs the cheap experiments end to end and
// checks their table structure; E1–E3 and E7 share all code paths with
// E4/E5/E8 but sweep larger documents, so they are exercised by the
// bench suite instead.
func TestExperimentsProduceTables(t *testing.T) {
	var sb strings.Builder
	r := &runner{scale: 1, reps: 1, w: &sb}
	if err := e4(r); err != nil {
		t.Fatal(err)
	}
	if err := e5(r); err != nil {
		t.Fatal(err)
	}
	if err := e6(r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"E4: DTD strength", "weak", "strong",
		"E5: loop merging", "merged (optimizer on)",
		"E6: conditional elimination", "eliminated (optimizer on)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The strong dialect row must report 0B peak.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "strong") && !strings.Contains(line, "0B") {
			t.Errorf("strong DTD row should be bufferless: %s", line)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
		if experiments[id] == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := sortedIDs(); !strings.Contains(got, "e1") || !strings.Contains(got, "e8") {
		t.Errorf("sortedIDs = %s", got)
	}
}

// TestJSONModeWritesRecords runs -json end to end (reps=1) and checks the
// trajectory-file schema: every workload case on every engine plus the
// shared-stream pair, each with sane measurements.
func TestJSONModeWritesRecords(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	r := &runner{scale: 1, reps: 1, w: io.Discard}
	if err := runJSON(r, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []record
	if err := json.Unmarshal(b, &records); err != nil {
		t.Fatal(err)
	}
	// Per case: flux with projection off and fast, plus the two baseline
	// engines. Shared-stream: the mqe pass with projection off and fast,
	// plus the sequential comparison. Budgeted: the two spill workloads.
	// Parallel: the sequential and pipelined shared-pass pair.
	// Multiquery: trie dispatch at 100/1k/10k plus fanout at 100.
	wantWorkload := len(workload.Cases) * 4
	if len(records) != wantWorkload+3+2+2+4 {
		t.Fatalf("got %d records, want %d workload + 3 shared-stream + 2 budgeted + 2 parallel + 4 multiquery", len(records), wantWorkload)
	}
	sharedSeen, fluxFast, budgeted, parSeen := 0, 0, 0, 0
	mqMarginal := map[int]int64{}
	for _, rec := range records {
		if rec.NsPerOp <= 0 || rec.MBPerS <= 0 || rec.DocBytes <= 0 {
			t.Errorf("degenerate record: %+v", rec)
		}
		if rec.GoMaxProcs <= 0 {
			t.Errorf("record without gomaxprocs: %+v", rec)
		}
		if rec.Suite == "parallel" {
			parSeen++
			if rec.Plans != 8 {
				t.Errorf("parallel record with %d plans: %+v", rec.Plans, rec)
			}
			switch rec.Engine {
			case "flux-mqe-seq":
				if rec.Parallel != 0 {
					t.Errorf("sequential record carries parallel=%d", rec.Parallel)
				}
			case "flux-mqe-parallel":
				if rec.Parallel < 2 {
					t.Errorf("pipelined record without parallel field: %+v", rec)
				}
			default:
				t.Errorf("unexpected parallel-suite engine %q", rec.Engine)
			}
		}
		if rec.Suite == "shared-stream" {
			sharedSeen++
			if rec.Plans != 8 {
				t.Errorf("shared-stream record with %d plans: %+v", rec.Plans, rec)
			}
		}
		if rec.Suite == "workload" && rec.Engine == "flux" && rec.Proj == "fast" {
			fluxFast++
		}
		if rec.Suite == "multiquery" {
			if rec.MarginalNsPerPlan <= 0 {
				t.Errorf("multiquery record without marginal cost: %+v", rec)
			}
			if rec.Engine == "flux-trie" {
				if rec.TrieNodes == 0 || rec.TrieDeliveries == 0 {
					t.Errorf("trie record reports no trie work: %+v", rec)
				}
				mqMarginal[rec.Plans] = rec.MarginalNsPerPlan
			}
		}
		if rec.Suite == "budgeted" {
			budgeted++
			if rec.Budget <= 0 || rec.SpilledBytes == 0 || rec.RehydratedBytes == 0 {
				t.Errorf("budgeted record did not exercise the spill path: %+v", rec)
			}
			if rec.PeakHeapBufferBytes > rec.Budget {
				t.Errorf("budgeted record heap peak %d over budget %d", rec.PeakHeapBufferBytes, rec.Budget)
			}
		}
	}
	if sharedSeen != 3 {
		t.Errorf("shared-stream records = %d, want 3", sharedSeen)
	}
	if budgeted != 2 {
		t.Errorf("budgeted records = %d, want 2", budgeted)
	}
	if fluxFast != len(workload.Cases) {
		t.Errorf("flux proj=fast records = %d, want one per case (%d)", fluxFast, len(workload.Cases))
	}
	if parSeen != 2 {
		t.Errorf("parallel records = %d, want 2", parSeen)
	}
	// The acceptance shape: interning keeps per-plan marginal cost flat,
	// so 10k registrations must stay within 2x of the 100-plan marginal.
	if m100, m10k := mqMarginal[100], mqMarginal[10000]; m100 == 0 || m10k == 0 {
		t.Errorf("multiquery trie records missing (marginals: %v)", mqMarginal)
	} else if m10k > 2*m100 {
		t.Errorf("multiquery marginal cost at 10k = %dns/plan, more than 2x the 100-plan marginal %dns/plan", m10k, m100)
	}
}
