package main

import (
	"strings"
	"testing"
)

// TestExperimentsProduceTables runs the cheap experiments end to end and
// checks their table structure; E1–E3 and E7 share all code paths with
// E4/E5/E8 but sweep larger documents, so they are exercised by the
// bench suite instead.
func TestExperimentsProduceTables(t *testing.T) {
	var sb strings.Builder
	r := &runner{scale: 1, reps: 1, w: &sb}
	if err := e4(r); err != nil {
		t.Fatal(err)
	}
	if err := e5(r); err != nil {
		t.Fatal(err)
	}
	if err := e6(r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"E4: DTD strength", "weak", "strong",
		"E5: loop merging", "merged (optimizer on)",
		"E6: conditional elimination", "eliminated (optimizer on)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The strong dialect row must report 0B peak.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "strong") && !strings.Contains(line, "0B") {
			t.Errorf("strong DTD row should be bufferless: %s", line)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
		if experiments[id] == nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := sortedIDs(); !strings.Contains(got, "e1") || !strings.Contains(got, "e8") {
		t.Errorf("sortedIDs = %s", got)
	}
}
