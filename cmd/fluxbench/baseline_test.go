package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiffRecordsRegression(t *testing.T) {
	mk := func(q string, mbs float64) record {
		return record{Suite: "workload", Query: q, Engine: "flux", Plans: 1, MBPerS: mbs}
	}
	base := map[key]record{}
	for _, r := range []record{mk("q-ok", 100), mk("q-slow", 100), mk("q-gone", 50)} {
		base[r.key()] = r
	}
	cur := []record{
		mk("q-ok", 95),   // -5%: within threshold
		mk("q-slow", 80), // -20%: regression
		mk("q-new", 10),  // not in baseline: reported, not failed
	}
	var out strings.Builder
	failed := diffRecords(&out, base, cur, 10)
	if failed != 1 {
		t.Fatalf("failed = %d, want 1\n%s", failed, out.String())
	}
	s := out.String()
	for _, want := range []string{"REGRESSION", "q-slow", "not in baseline", "baseline only"} {
		if !strings.Contains(s, want) {
			t.Fatalf("diff output missing %q:\n%s", want, s)
		}
	}
	if failed := diffRecords(&out, base, cur, 25); failed != 0 {
		t.Fatalf("threshold 25%%: failed = %d, want 0", failed)
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	recs := []record{{Suite: "workload", Query: "q", Engine: "flux", Plans: 1, MBPerS: 42}}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[recs[0].key()].MBPerS != 42 {
		t.Fatalf("loadBaseline = %+v", got)
	}
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline file must error")
	}
}

func TestNormalizeRecordsCancelsMachineSpeed(t *testing.T) {
	mk := func(q string, mbs float64) record {
		return record{Suite: "workload", Query: q, Engine: "flux", Plans: 1, MBPerS: mbs}
	}
	base := map[key]record{}
	for _, r := range []record{mk("a", 100), mk("b", 200), mk("c", 300)} {
		base[r.key()] = r
	}
	// A machine uniformly 2x slower, except "c" which truly regressed a
	// further 50% relative to the rest.
	cur := []record{mk("a", 50), mk("b", 100), mk("c", 75)}
	var out strings.Builder
	norm := normalizeRecords(&out, base, cur)
	if failed := diffRecords(&out, base, norm, 35); failed != 1 {
		t.Fatalf("failed = %d, want 1 (only the true regression)\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "normalizing by median") {
		t.Fatalf("missing normalization note:\n%s", out.String())
	}
	// Without the real regression, a uniformly slower machine passes.
	cur2 := []record{mk("a", 50), mk("b", 100), mk("c", 150)}
	var out2 strings.Builder
	if failed := diffRecords(&out2, base, normalizeRecords(&out2, base, cur2), 10); failed != 0 {
		t.Fatalf("uniform slowdown flagged as regression:\n%s", out2.String())
	}
}
