// Command fluxbench regenerates the evaluation tables of EXPERIMENTS.md:
// for every experiment it runs the workload on the flux, projection and
// naive engines and prints the measured runtime and buffer high-water
// mark in the shape the paper reports (who wins, by what factor, and how
// the curves scale).
//
// Usage:
//
//	fluxbench                       # all experiments at default scale
//	fluxbench -exp e1               # one experiment
//	fluxbench -scale 4              # 4x larger documents
//	fluxbench -json out.json        # machine-readable suite results ("-" = stdout)
//	fluxbench -baseline BENCH.json  # diff current MB/s against a committed baseline
//	fluxbench -cpuprofile cpu.prof  # pprof evidence for perf PRs
//	fluxbench -fault sweep          # fault-injection matrix: every site x mode
//	fluxbench -fault spill.write:error:1   # arm one fault spec and run its workloads
//
// With -json, fluxbench skips the tables and instead runs the workload
// catalogue (every case on every engine, plus the shared-stream
// multi-query workload) and writes one JSON record per measurement —
// engine, query, throughput, allocations and peak buffer — so successive
// PRs can record BENCH_*.json trajectory files.
//
// With -baseline, the same catalogue runs and its throughput is compared
// per measurement against the given BENCH_*.json file; the process exits
// non-zero when any shared measurement regresses by more than
// -regress-pct percent MB/s (default 10). Baselines are machine-specific:
// compare only runs from the same class of hardware.
//
// -cpuprofile and -memprofile write pprof profiles covering the measured
// work, so perf PRs can attach evidence of where the time went.
//
// With -fault, fluxbench instead exercises the engine's fault-injection
// sites (internal/faultinj): "-fault sweep" runs every site × mode and
// verifies the failure model (error and short-write faults fail the
// pass cleanly, latency faults do not, the process stays reusable),
// exiting non-zero on any violation; any other value is an ArmSpec
// string ("site:mode[:param]", comma-separated) armed for one run of
// the workloads covering those sites.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"fluxquery"
	"fluxquery/internal/unit"
	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

var engines = []fluxquery.Engine{fluxquery.EngineFlux, fluxquery.EngineProjection, fluxquery.EngineNaive}

func main() {
	// The work happens in run so that its defers — the pprof writers in
	// particular — complete before the process exits with a failure code
	// (a -baseline regression is exactly when the profiles are wanted).
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id: e1..e8 or all")
		scale      = flag.Int64("scale", 1, "document size multiplier")
		reps       = flag.Int("reps", 3, "repetitions per measurement (best time reported)")
		jsonPath   = flag.String("json", "", "write machine-readable workload-suite results to this file (\"-\" for stdout) instead of the experiment tables")
		baseline   = flag.String("baseline", "", "diff the current run against this BENCH_*.json file and exit non-zero on regression")
		regressPct = flag.Float64("regress-pct", 10, "MB/s regression threshold (percent) for -baseline")
		normalize  = flag.Bool("normalize", false, "for -baseline: divide every current/baseline ratio by the run's median ratio, cancelling uniform machine-speed differences (use when diffing against a baseline from different hardware)")
		budget     = flag.String("budget", "", "byte budget for the budgeted (spill) suite, e.g. 512K or 64M; empty = half of each workload's natural peak")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the measured work to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (taken after the measured work) to this file")
		parallel   = flag.Int("parallel", 4, "feed-worker count of the parallel suite's pipelined shared pass")
		fault      = flag.String("fault", "", "fault-injection mode: \"sweep\" runs every site x mode; any other value is a faultinj ArmSpec (site:mode[:param], comma-separated) armed for one run")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fluxbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			goruntime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fluxbench: -memprofile: %v\n", err)
			}
		}()
	}
	budgetBytes, err := unit.ParseBytes(*budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fluxbench: -budget: %v\n", err)
		return 1
	}
	r := &runner{scale: *scale, reps: *reps, budget: budgetBytes, parallel: *parallel, w: os.Stdout}
	if *fault != "" {
		return runFault(r, *fault)
	}
	if *baseline != "" {
		if err := runBaseline(r, *baseline, *regressPct, *normalize); err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: -baseline: %v\n", err)
			return 1
		}
		return 0
	}
	if *jsonPath != "" {
		if err := runJSON(r, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: -json: %v\n", err)
			return 1
		}
		return 0
	}
	ids := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		fn, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fluxbench: unknown experiment %q\n", id)
			return 1
		}
		if err := fn(r); err != nil {
			fmt.Fprintf(os.Stderr, "fluxbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintln(r.w)
	}
	return 0
}

type runner struct {
	scale int64
	reps  int
	// budget overrides the budgeted suite's byte budget (0 = half of
	// each workload's measured natural peak).
	budget int64
	// parallel is the feed-worker count of the parallel suite's
	// pipelined measurement.
	parallel int
	w        io.Writer
}

type measurement struct {
	time   time.Duration
	stats  fluxquery.Stats
	docLen int
}

// measure runs query on engine over doc, reporting the best of reps runs.
func (r *runner) measure(query, dtdSrc string, doc []byte, o fluxquery.Options) (measurement, error) {
	p := fluxquery.MustCompile(query, dtdSrc, o)
	best := measurement{time: 1 << 62, docLen: len(doc)}
	for i := 0; i < r.reps; i++ {
		start := time.Now()
		st, err := p.Execute(bytes.NewReader(doc), io.Discard)
		if err != nil {
			return best, err
		}
		el := time.Since(start)
		if el < best.time {
			best.time = el
			best.stats = st
		}
	}
	return best, nil
}

func (r *runner) gen(c *workload.Case, size int64) ([]byte, error) {
	var buf bytes.Buffer
	err := c.Gen(&buf, size*r.scale, 42)
	return buf.Bytes(), err
}

func (r *runner) header(title, corresponds string) {
	fmt.Fprintf(r.w, "== %s ==\n", title)
	fmt.Fprintf(r.w, "   (%s)\n", corresponds)
}

func kb(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

var experiments = map[string]func(*runner) error{
	"e1": e1, "e2": e2, "e3": e3, "e4": e4,
	"e5": e5, "e6": e6, "e7": e7, "e8": e8, "e9": e9,
}

var sweep = []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}

func e1(r *runner) error {
	r.header("E1: peak buffer vs document size — XMP Q3, weak DTD",
		"[8] memory-consumption experiment; flux stays flat, baselines grow linearly")
	c := workload.ByName("xmp-q3-weak")
	fmt.Fprintf(r.w, "%-10s %14s %14s %14s\n", "doc", "flux", "projection", "naive")
	for _, size := range sweep {
		doc, err := r.gen(c, size)
		if err != nil {
			return err
		}
		row := make([]string, len(engines))
		for i, e := range engines {
			m, err := r.measure(c.Query, c.DTD, doc, fluxquery.Options{Engine: e})
			if err != nil {
				return err
			}
			row[i] = kb(m.stats.PeakBufferBytes)
		}
		fmt.Fprintf(r.w, "%-10s %14s %14s %14s\n", kb(int64(len(doc))), row[0], row[1], row[2])
	}
	return nil
}

func e2(r *runner) error {
	r.header("E2: runtime vs document size — XMP Q3, weak DTD",
		"[8] runtime experiment; flux avoids tree construction")
	c := workload.ByName("xmp-q3-weak")
	fmt.Fprintf(r.w, "%-10s %14s %14s %14s\n", "doc", "flux", "projection", "naive")
	for _, size := range sweep {
		doc, err := r.gen(c, size)
		if err != nil {
			return err
		}
		row := make([]string, len(engines))
		for i, e := range engines {
			m, err := r.measure(c.Query, c.DTD, doc, fluxquery.Options{Engine: e})
			if err != nil {
				return err
			}
			row[i] = m.time.Round(time.Microsecond).String()
		}
		fmt.Fprintf(r.w, "%-10s %14s %14s %14s\n", kb(int64(len(doc))), row[0], row[1], row[2])
	}
	return nil
}

func e3(r *runner) error {
	r.header("E3: query suite at 1MB — all workloads, all engines",
		"[8] per-query table: runtime and peak buffer")
	fmt.Fprintf(r.w, "%-18s %-11s %12s %12s\n", "case", "engine", "time", "peak")
	for _, c := range workload.Cases {
		// Join workloads run at 256 KB: nested-loop joins are quadratic
		// on every engine and the comparison shape is size-independent.
		size := int64(1 << 20)
		if c.Join {
			size = 256 << 10
		}
		doc, err := r.gen(&c, size)
		if err != nil {
			return err
		}
		for _, e := range engines {
			m, err := r.measure(c.Query, c.DTD, doc, fluxquery.Options{Engine: e})
			if err != nil {
				return err
			}
			fmt.Fprintf(r.w, "%-18s %-11s %12s %12s\n", c.Name, e,
				m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes))
		}
	}
	return nil
}

func e4(r *runner) error {
	r.header("E4: DTD strength — XMP Q3 on weak / mixed / strong DTDs (flux)",
		"paper §2 worked example: order constraints eliminate buffering")
	fmt.Fprintf(r.w, "%-10s %12s %12s %14s\n", "dialect", "time", "peak", "buffered-total")
	for _, dia := range []xmlgen.BibDialect{xmlgen.WeakBib, xmlgen.MixedBib, xmlgen.StrongBib} {
		cfg := xmlgen.BibConfig{Dialect: dia, Seed: 42}
		cfg.Books = xmlgen.SizedBibBooks(cfg, (1<<20)*r.scale)
		var buf bytes.Buffer
		if err := xmlgen.WriteBib(&buf, cfg); err != nil {
			return err
		}
		m, err := r.measure(workload.Q3, dia.DTD(), buf.Bytes(), fluxquery.Options{})
		if err != nil {
			return err
		}
		name := [...]string{"weak", "strong", "mixed"}[dia]
		fmt.Fprintf(r.w, "%-10s %12s %12s %14s\n", name,
			m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes), kb(m.stats.BufferedBytesTotal))
	}
	return nil
}

func e5(r *runner) error {
	r.header("E5: loop merging ablation — two loops over $book/publisher (flux)",
		"paper §3.1 cardinality constraint: merged loop halves buffered copies")
	c := workload.ByName("paper-loop-merge")
	doc, err := r.gen(c, 1<<20)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		o    fluxquery.Options
	}{
		{"merged (optimizer on)", fluxquery.Options{}},
		{"unmerged (rule off)", fluxquery.Options{NoLoopMerging: true}},
	}
	fmt.Fprintf(r.w, "%-24s %12s %12s %14s\n", "variant", "time", "peak", "buffered-total")
	for _, row := range rows {
		m, err := r.measure(c.Query, c.DTD, doc, row.o)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%-24s %12s %12s %14s\n", row.name,
			m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes), kb(m.stats.BufferedBytesTotal))
	}
	return nil
}

func e6(r *runner) error {
	r.header("E6: conditional elimination ablation — author+editor conflict (flux)",
		"paper §3.1 language constraint: unsatisfiable branch removed statically")
	c := workload.ByName("paper-conflict")
	doc, err := r.gen(c, 1<<20)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		o    fluxquery.Options
	}{
		{"eliminated (optimizer on)", fluxquery.Options{}},
		{"evaluated (rule off)", fluxquery.Options{NoConditionalElimination: true}},
	}
	fmt.Fprintf(r.w, "%-26s %12s %12s\n", "variant", "time", "peak")
	for _, row := range rows {
		m, err := r.measure(c.Query, c.DTD, doc, row.o)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%-26s %12s %12s\n", row.name,
			m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes))
	}
	return nil
}

func e7(r *runner) error {
	r.header("E7: XMark auction queries — sizes x engines",
		"[8] XMark experiment: lookup, join and listing queries")
	fmt.Fprintf(r.w, "%-18s %-8s %-11s %12s %12s\n", "case", "doc", "engine", "time", "peak")
	for _, name := range []string{"xmark-q1", "xmark-q8-join", "xmark-q13", "xmark-q2-bidders"} {
		c := workload.ByName(name)
		for _, size := range []int64{128 << 10, 512 << 10} {
			doc, err := r.gen(c, size)
			if err != nil {
				return err
			}
			for _, e := range engines {
				m, err := r.measure(c.Query, c.DTD, doc, fluxquery.Options{Engine: e})
				if err != nil {
					return err
				}
				fmt.Fprintf(r.w, "%-18s %-8s %-11s %12s %12s\n", name, kb(int64(len(doc))), e,
					m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes))
			}
		}
	}
	return nil
}

func e8(r *runner) error {
	r.header("E8: buffer scaling with book count — XMP Q3, weak DTD",
		"paper §2: flux buffers one book at a time; peak independent of count")
	fmt.Fprintf(r.w, "%-8s %14s %14s %14s\n", "books", "flux", "projection", "naive")
	for _, books := range []int{100, 1000, 10000} {
		var buf bytes.Buffer
		if err := xmlgen.WriteBib(&buf, xmlgen.BibConfig{Dialect: xmlgen.WeakBib, Books: books, Seed: 42}); err != nil {
			return err
		}
		row := make([]string, len(engines))
		for i, e := range engines {
			m, err := r.measure(workload.Q3, xmlgen.WeakBibDTD, buf.Bytes(), fluxquery.Options{Engine: e})
			if err != nil {
				return err
			}
			row[i] = kb(m.stats.PeakBufferBytes)
		}
		fmt.Fprintf(r.w, "%-8d %14s %14s %14s\n", books, row[0], row[1], row[2])
	}
	return nil
}

func e9(r *runner) error {
	r.header("E9: BDF buffer projection ablation — isbn-only vs full info buffers (flux)",
		"paper §3.2: the BDF buffers only the paths the query employs, improving on [10]")
	c := workload.ByName("bdf-projection")
	doc, err := r.gen(c, 1<<20)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		o    fluxquery.Options
	}{
		{"projected (BDF on)", fluxquery.Options{}},
		{"full buffers ([10]-style)", fluxquery.Options{NoBufferProjection: true}},
	}
	fmt.Fprintf(r.w, "%-26s %12s %12s %14s\n", "variant", "time", "peak", "buffered-total")
	for _, row := range rows {
		m, err := r.measure(c.Query, c.DTD, doc, row.o)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%-26s %12s %12s %14s\n", row.name,
			m.time.Round(time.Microsecond), kb(m.stats.PeakBufferBytes), kb(m.stats.BufferedBytesTotal))
	}
	return nil
}

// sortedIDs lists experiment ids for -h output.
func sortedIDs() string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}
