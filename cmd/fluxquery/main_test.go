package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testdata = "../../testdata"

func TestRunExecutesQuery(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.xml")
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFile:  filepath.Join(testdata, "q3.xq"),
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		outPath:    out,
		engineName: "flux",
		stats:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	want := `<results><result><title>TCP/IP Illustrated</title><author>Stevens</author></result><result><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author></result></results>`
	if got != want {
		t.Errorf("got %s", got)
	}
}

func TestRunAllEngines(t *testing.T) {
	var outputs []string
	for _, engine := range []string{"flux", "projection", "naive"} {
		out := filepath.Join(t.TempDir(), "out.xml")
		err := run(options{
			dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
			queryFile:  filepath.Join(testdata, "q3.xq"),
			inPath:     filepath.Join(testdata, "sample-bib.xml"),
			outPath:    out,
			engineName: engine,
		})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		b, _ := os.ReadFile(out)
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Error("engines disagree via CLI")
	}
}

// TestRunMultiQuerySharedPass: repeated -q files evaluate over one shared
// stream pass, and each result section matches its single-query run.
func TestRunMultiQuerySharedPass(t *testing.T) {
	dir := t.TempDir()
	q2 := filepath.Join(dir, "titles.xq")
	if err := os.WriteFile(q2, []byte(`<titles>{ for $b in $ROOT/bib/book return <t>{ $b/title }</t> }</titles>`), 0o644); err != nil {
		t.Fatal(err)
	}
	single := filepath.Join(dir, "single.xml")
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFile:  filepath.Join(testdata, "q3.xq"),
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		outPath:    single,
		engineName: "flux",
	})
	if err != nil {
		t.Fatal(err)
	}
	singleOut, _ := os.ReadFile(single)

	out := filepath.Join(dir, "multi.xml")
	err = run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFiles: []string{filepath.Join(testdata, "q3.xq"), q2},
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		outPath:    out,
		engineName: "flux",
		stats:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(out)
	got := string(b)
	if !strings.Contains(got, "<!-- query: "+filepath.Join(testdata, "q3.xq")+" -->") {
		t.Errorf("missing q3 section header in %s", got)
	}
	if !strings.Contains(got, string(singleOut)) {
		t.Errorf("q3 section differs from single-query run:\n%s", got)
	}
	if !strings.Contains(got, "<titles><t><title>TCP/IP Illustrated</title></t>") {
		t.Errorf("titles section missing or wrong:\n%s", got)
	}
}

func TestRunMultiQueryRequiresFlux(t *testing.T) {
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFiles: []string{filepath.Join(testdata, "q3.xq"), filepath.Join(testdata, "q3.xq")},
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		engineName: "naive",
	})
	if err == nil {
		t.Fatal("multiple queries on a baseline engine accepted")
	}
}

func TestRunValidateMode(t *testing.T) {
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		engineName: "flux",
		validate:   true,
	})
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	// The strong DTD rejects the sample (no publisher/price).
	err = run(options{
		dtdPath:    filepath.Join(testdata, "bib-strong.dtd"),
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		engineName: "flux",
		validate:   true,
	})
	if err == nil {
		t.Fatal("invalid document accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no dtd and no doctype", func() error {
			return run(options{queryText: "<a/>", inPath: filepath.Join(testdata, "sample-bib.xml"), engineName: "flux"})
		}},
		{"missing query", func() error {
			return run(options{dtdPath: filepath.Join(testdata, "bib-weak.dtd"), engineName: "flux"})
		}},
		{"bad engine", func() error {
			return run(options{dtdPath: filepath.Join(testdata, "bib-weak.dtd"), queryText: "<a/>", engineName: "warp"})
		}},
		{"nonexistent dtd", func() error {
			return run(options{dtdPath: "no/such.dtd", queryText: "<a/>", engineName: "flux"})
		}},
		{"bad query text", func() error {
			return run(options{dtdPath: filepath.Join(testdata, "bib-weak.dtd"), queryText: "for for for", engineName: "flux"})
		}},
		{"nonexistent -q file", func() error {
			return run(options{dtdPath: filepath.Join(testdata, "bib-weak.dtd"), queryFiles: []string{"no/such.xq"}, engineName: "flux"})
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunDTDFromDoctype(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	content := `<!DOCTYPE bib [
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
]>
<bib><book><title>T</title><author>A</author></book></bib>`
	if err := os.WriteFile(doc, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.xml")
	err := run(options{
		queryText:  `<r>{ for $b in $ROOT/bib/book return { $b/title } }</r>`,
		inPath:     doc,
		outPath:    out,
		engineName: "flux",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(out)
	if got := string(b); got != "<r><title>T</title></r>" {
		t.Errorf("got %s", got)
	}
}

func TestRunExplain(t *testing.T) {
	// Explain prints to stdout; capture it.
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFile:  filepath.Join(testdata, "q3.xq"),
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		engineName: "flux",
		explain:    true,
	})
	w.Close()
	os.Stdout = old
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{"process-stream", "on-first past(author,title)", "buffer description forest"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}

// TestRunMultiQueryBadEngineLeavesOutputIntact: the invalid
// multi-query/baseline-engine combination must fail before -out is
// truncated.
func TestRunMultiQueryBadEngineLeavesOutputIntact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.xml")
	if err := os.WriteFile(out, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{
		dtdPath:    filepath.Join(testdata, "bib-weak.dtd"),
		queryFiles: []string{filepath.Join(testdata, "q3.xq"), filepath.Join(testdata, "q3.xq")},
		inPath:     filepath.Join(testdata, "sample-bib.xml"),
		outPath:    out,
		engineName: "naive",
	})
	if err == nil {
		t.Fatal("invalid combination accepted")
	}
	b, _ := os.ReadFile(out)
	if string(b) != "precious" {
		t.Errorf("existing -out file destroyed by a failed invocation: %q", b)
	}
}
