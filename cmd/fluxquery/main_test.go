package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testdata = "../../testdata"

func TestRunExecutesQuery(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.xml")
	err := run(
		filepath.Join(testdata, "bib-weak.dtd"),
		"", filepath.Join(testdata, "q3.xq"),
		filepath.Join(testdata, "sample-bib.xml"),
		out, "flux", false, true, false, false,
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	want := `<results><result><title>TCP/IP Illustrated</title><author>Stevens</author></result><result><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author></result></results>`
	if got != want {
		t.Errorf("got %s", got)
	}
}

func TestRunAllEngines(t *testing.T) {
	var outputs []string
	for _, engine := range []string{"flux", "projection", "naive"} {
		out := filepath.Join(t.TempDir(), "out.xml")
		err := run(
			filepath.Join(testdata, "bib-weak.dtd"),
			"", filepath.Join(testdata, "q3.xq"),
			filepath.Join(testdata, "sample-bib.xml"),
			out, engine, false, false, false, false,
		)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		b, _ := os.ReadFile(out)
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Error("engines disagree via CLI")
	}
}

func TestRunValidateMode(t *testing.T) {
	err := run(
		filepath.Join(testdata, "bib-weak.dtd"),
		"", "", filepath.Join(testdata, "sample-bib.xml"),
		"", "flux", false, false, true, false,
	)
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	// The strong DTD rejects the sample (no publisher/price).
	err = run(
		filepath.Join(testdata, "bib-strong.dtd"),
		"", "", filepath.Join(testdata, "sample-bib.xml"),
		"", "flux", false, false, true, false,
	)
	if err == nil {
		t.Fatal("invalid document accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no dtd and no doctype", func() error {
			return run("", "<a/>", "", filepath.Join(testdata, "sample-bib.xml"), "", "flux", false, false, false, false)
		}},
		{"missing query", func() error {
			return run(filepath.Join(testdata, "bib-weak.dtd"), "", "", "", "", "flux", false, false, false, false)
		}},
		{"bad engine", func() error {
			return run(filepath.Join(testdata, "bib-weak.dtd"), "<a/>", "", "", "", "warp", false, false, false, false)
		}},
		{"nonexistent dtd", func() error {
			return run("no/such.dtd", "<a/>", "", "", "", "flux", false, false, false, false)
		}},
		{"bad query text", func() error {
			return run(filepath.Join(testdata, "bib-weak.dtd"), "for for for", "", "", "", "flux", false, false, false, false)
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunDTDFromDoctype(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	content := `<!DOCTYPE bib [
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
]>
<bib><book><title>T</title><author>A</author></book></bib>`
	if err := os.WriteFile(doc, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.xml")
	err := run("", `<r>{ for $b in $ROOT/bib/book return { $b/title } }</r>`, "", doc, out, "flux", false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(out)
	if got := string(b); got != "<r><title>T</title></r>" {
		t.Errorf("got %s", got)
	}
}

func TestRunExplain(t *testing.T) {
	// Explain prints to stdout; capture it.
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	err := run(
		filepath.Join(testdata, "bib-weak.dtd"),
		"", filepath.Join(testdata, "q3.xq"),
		filepath.Join(testdata, "sample-bib.xml"),
		"", "flux", true, false, false, false,
	)
	w.Close()
	os.Stdout = old
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{"process-stream", "on-first past(author,title)", "buffer description forest"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}
