// Command fluxquery runs XQuery over an XML document stream using the
// FluXQuery engine (or one of the baseline engines), optionally explaining
// the compilation pipeline. Several queries may be given with repeated -q
// flags; they are then evaluated over the input in a single shared
// tokenize+validate pass (the multi-query engine).
//
// Usage:
//
//	fluxquery -dtd bib.dtd -query 'query text' [-in doc.xml] [-out result.xml]
//	fluxquery -dtd bib.dtd -queryfile q.xq -engine naive -stats
//	fluxquery -dtd bib.dtd -q q1.xq -q q2.xq -q q3.xq -in doc.xml -stats
//	fluxquery -dtd bib.dtd -queryfile q.xq -explain
//	fluxquery -dtd bib.dtd -validate -in doc.xml
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fluxquery"
)

func main() {
	var (
		dtdPath    = flag.String("dtd", "", "path to the DTD file (default: DOCTYPE internal subset of the input)")
		queryText  = flag.String("query", "", "query text")
		queryFile  = flag.String("queryfile", "", "path to a query file")
		inPath     = flag.String("in", "", "input document (default stdin)")
		outPath    = flag.String("out", "", "output stream (default stdout)")
		engineName = flag.String("engine", "flux", "engine: flux, projection or naive")
		explain    = flag.Bool("explain", false, "print the compilation pipeline instead of executing")
		stats      = flag.Bool("stats", false, "print execution statistics to stderr")
		validate   = flag.Bool("validate", false, "only validate the input against the DTD")
		noOpt      = flag.Bool("no-optimizer", false, "disable the algebraic optimizer")
		projMode   = flag.String("proj", "fast", "stream projection: fast (bulk-skip irrelevant subtrees), validate (skip delivery, full validation) or off")
		parallel   = flag.Int("parallel", 1, "pipelined execution: >= 2 runs tokenize/validate/dispatch on separate goroutines with that many feed workers (flux engine only); 0 or 1 is sequential")
		trace      = flag.Bool("trace", false, "print the execution's span timeline (scan/eval phases, stalls, ring peaks) to stderr")
	)
	var queryFiles multiFlag
	flag.Var(&queryFiles, "q", "path to a query file; repeat to evaluate several queries in one shared pass")
	flag.Parse()
	if err := run(options{
		dtdPath:    *dtdPath,
		queryText:  *queryText,
		queryFile:  *queryFile,
		queryFiles: queryFiles,
		inPath:     *inPath,
		outPath:    *outPath,
		engineName: *engineName,
		explain:    *explain,
		stats:      *stats,
		validate:   *validate,
		noOpt:      *noOpt,
		projMode:   *projMode,
		parallel:   *parallel,
		trace:      *trace,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fluxquery:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

type options struct {
	dtdPath    string
	queryText  string
	queryFile  string
	queryFiles []string
	inPath     string
	outPath    string
	engineName string
	explain    bool
	stats      bool
	validate   bool
	noOpt      bool
	projMode   string
	parallel   int
	trace      bool
}

func run(o options) error {
	var in io.Reader = os.Stdin
	if o.inPath != "" {
		f, err := os.Open(o.inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var d *fluxquery.DTD
	if o.dtdPath != "" {
		dtdSrc, err := os.ReadFile(o.dtdPath)
		if err != nil {
			return err
		}
		d, err = fluxquery.ParseDTD(string(dtdSrc))
		if err != nil {
			return err
		}
	} else {
		// Without -dtd, read the schema from the document's DOCTYPE
		// internal subset. The whole input is buffered so it can be
		// replayed for execution.
		buf, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		d, err = fluxquery.DTDFromDocument(bytes.NewReader(buf))
		if err != nil {
			return fmt.Errorf("no -dtd given and %v", err)
		}
		in = bytes.NewReader(buf)
	}

	if o.validate {
		if err := d.Validate(in); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "valid")
		return nil
	}

	// Collect queries: -query / -queryfile define the single-query path,
	// repeated -q flags the shared-stream path.
	type namedQuery struct {
		name string
		text string
	}
	var queries []namedQuery
	switch {
	case o.queryText != "":
		// -query wins over -queryfile, as it always has.
		queries = append(queries, namedQuery{name: "query", text: o.queryText})
	case o.queryFile != "":
		b, err := os.ReadFile(o.queryFile)
		if err != nil {
			return err
		}
		queries = append(queries, namedQuery{name: o.queryFile, text: string(b)})
	}
	for _, path := range o.queryFiles {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		queries = append(queries, namedQuery{name: path, text: string(b)})
	}
	if len(queries) == 0 {
		return fmt.Errorf("provide -query, -queryfile or -q")
	}

	engine, err := fluxquery.ParseEngine(o.engineName)
	if err != nil {
		return err
	}
	if o.projMode == "" {
		o.projMode = "fast"
	}
	projection, err := fluxquery.ParseProjection(o.projMode)
	if err != nil {
		return err
	}
	// Reject the invalid combination before compiling anything and —
	// crucially — before -out truncates an existing file.
	if len(queries) > 1 && engine != fluxquery.EngineFlux {
		return fmt.Errorf("multiple queries require -engine flux (shared event streams)")
	}
	if o.parallel >= 2 && engine != fluxquery.EngineFlux {
		return fmt.Errorf("-parallel requires -engine flux (pipelined shared passes)")
	}
	plans := make([]*fluxquery.Plan, len(queries))
	for i, nq := range queries {
		q, err := fluxquery.ParseQuery(nq.text)
		if err != nil {
			return fmt.Errorf("%s: %w", nq.name, err)
		}
		plans[i], err = fluxquery.Compile(q, d, fluxquery.Options{
			Engine:           engine,
			DisableOptimizer: o.noOpt,
			Projection:       projection,
			Parallel:         o.parallel,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", nq.name, err)
		}
	}

	if o.explain {
		for i, p := range plans {
			if len(plans) > 1 {
				fmt.Printf("== query %s ==\n", queries[i].name)
			}
			fmt.Println(p.Explain())
		}
		return nil
	}

	var out io.Writer = os.Stdout
	if o.outPath != "" {
		f, err := os.Create(o.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	printStats := func(name string, st fluxquery.Stats, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "query=%s engine=%s time=%v events=%d peak-buffer=%dB buffered-total=%dB output=%dB skipped=%d firings=%d\n",
			name, st.Engine, elapsed.Round(time.Microsecond), st.Events,
			st.PeakBufferBytes, st.BufferedBytesTotal, st.OutputBytes,
			st.SkippedSubtrees, st.HandlerFirings)
		if st.ScanEventsDelivered > 0 || st.ScanEventsSkipped > 0 {
			fmt.Fprintf(os.Stderr, "query=%s proj=%s scan-delivered=%d scan-skipped=%d scan-subtrees=%d scan-bytes-skipped=%d\n",
				name, o.projMode, st.ScanEventsDelivered, st.ScanEventsSkipped,
				st.ScanSubtreesSkipped, st.ScanBytesSkipped)
		}
	}

	if len(plans) == 1 {
		start := time.Now()
		var st fluxquery.Stats
		if o.trace {
			var tr *fluxquery.Trace
			st, tr, err = plans[0].ExecuteTrace(in, out, queries[0].name)
			if err != nil {
				return err
			}
			tr.WriteTree(os.Stderr)
		} else {
			st, err = plans[0].Execute(in, out)
			if err != nil {
				return err
			}
		}
		if o.stats {
			printStats(queries[0].name, st, time.Since(start))
		}
		return nil
	}

	// Several queries: one shared tokenize+validate pass over the input.
	// Each query's result streams into its own buffer (results would
	// interleave on a shared writer); they are emitted in query order,
	// separated by a comment naming the query.
	set := fluxquery.NewStreamSet(d)
	set.SetProjection(projection)
	set.SetParallel(o.parallel)
	set.SetTracing(o.trace, "cli")
	outs := make([]*bytes.Buffer, len(plans))
	regs := make([]*fluxquery.StreamQuery, len(plans))
	for i, p := range plans {
		outs[i] = &bytes.Buffer{}
		regs[i], err = set.RegisterNamed(p, outs[i], queries[i].name)
		if err != nil {
			return fmt.Errorf("%s: %w", queries[i].name, err)
		}
	}
	start := time.Now()
	if err := set.Run(in); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if o.trace {
		set.LastTrace().WriteTree(os.Stderr)
	}
	var firstErr error
	for i := range plans {
		st, qerr := regs[i].Stats()
		if qerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", queries[i].name, qerr)
			}
			fmt.Fprintf(os.Stderr, "fluxquery: %s: %v\n", queries[i].name, qerr)
			continue
		}
		fmt.Fprintf(out, "<!-- query: %s -->\n", queries[i].name)
		if _, err := out.Write(outs[i].Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if o.stats {
			printStats(queries[i].name, st, elapsed)
		}
	}
	if o.stats {
		sc := set.LastScan()
		fmt.Fprintf(os.Stderr, "shared-pass proj=%s passes=%d scan-delivered=%d scan-skipped=%d scan-subtrees=%d scan-bytes-skipped=%d\n",
			o.projMode, sc.Passes, sc.EventsDelivered, sc.EventsSkipped, sc.SubtreesSkipped, sc.BytesSkipped)
		if ps := set.LastPass(); ps.Parallel >= 2 {
			fmt.Fprintf(os.Stderr, "shared-pass parallel=%d batches=%d steals=%d tok-stall=%v val-stall=%v disp-stall=%v ring-peak=%d/%d\n",
				ps.Parallel, ps.Batches, ps.Steals,
				ps.TokenizeStall.Round(time.Microsecond), ps.ValidateStall.Round(time.Microsecond),
				ps.DispatchStall.Round(time.Microsecond), ps.TokenRingPeak, ps.EventRingPeak)
		}
	}
	return firstErr
}
