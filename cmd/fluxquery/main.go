// Command fluxquery runs an XQuery over an XML document stream using the
// FluXQuery engine (or one of the baseline engines), optionally explaining
// the compilation pipeline.
//
// Usage:
//
//	fluxquery -dtd bib.dtd -query 'query text' [-in doc.xml] [-out result.xml]
//	fluxquery -dtd bib.dtd -queryfile q.xq -engine naive -stats
//	fluxquery -dtd bib.dtd -queryfile q.xq -explain
//	fluxquery -dtd bib.dtd -validate -in doc.xml
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fluxquery"
)

func main() {
	var (
		dtdPath    = flag.String("dtd", "", "path to the DTD file (default: DOCTYPE internal subset of the input)")
		queryText  = flag.String("query", "", "query text")
		queryFile  = flag.String("queryfile", "", "path to a query file")
		inPath     = flag.String("in", "", "input document (default stdin)")
		outPath    = flag.String("out", "", "output stream (default stdout)")
		engineName = flag.String("engine", "flux", "engine: flux, projection or naive")
		explain    = flag.Bool("explain", false, "print the compilation pipeline instead of executing")
		stats      = flag.Bool("stats", false, "print execution statistics to stderr")
		validate   = flag.Bool("validate", false, "only validate the input against the DTD")
		noOpt      = flag.Bool("no-optimizer", false, "disable the algebraic optimizer")
	)
	flag.Parse()
	if err := run(*dtdPath, *queryText, *queryFile, *inPath, *outPath, *engineName, *explain, *stats, *validate, *noOpt); err != nil {
		fmt.Fprintln(os.Stderr, "fluxquery:", err)
		os.Exit(1)
	}
}

func run(dtdPath, queryText, queryFile, inPath, outPath, engineName string, explain, stats, validate, noOpt bool) error {
	var in io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var d *fluxquery.DTD
	if dtdPath != "" {
		dtdSrc, err := os.ReadFile(dtdPath)
		if err != nil {
			return err
		}
		d, err = fluxquery.ParseDTD(string(dtdSrc))
		if err != nil {
			return err
		}
	} else {
		// Without -dtd, read the schema from the document's DOCTYPE
		// internal subset. The whole input is buffered so it can be
		// replayed for execution.
		buf, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		d, err = fluxquery.DTDFromDocument(bytes.NewReader(buf))
		if err != nil {
			return fmt.Errorf("no -dtd given and %v", err)
		}
		in = bytes.NewReader(buf)
	}

	if validate {
		if err := d.Validate(in); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "valid")
		return nil
	}

	if queryText == "" && queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryText = string(b)
	}
	if queryText == "" {
		return fmt.Errorf("provide -query or -queryfile")
	}
	q, err := fluxquery.ParseQuery(queryText)
	if err != nil {
		return err
	}
	engine, err := fluxquery.ParseEngine(engineName)
	if err != nil {
		return err
	}
	plan, err := fluxquery.Compile(q, d, fluxquery.Options{
		Engine:           engine,
		DisableOptimizer: noOpt,
	})
	if err != nil {
		return err
	}

	if explain {
		fmt.Println(plan.Explain())
		return nil
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	start := time.Now()
	st, err := plan.Execute(in, out)
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(os.Stderr, "engine=%s time=%v events=%d peak-buffer=%dB buffered-total=%dB output=%dB skipped=%d firings=%d\n",
			st.Engine, time.Since(start).Round(time.Microsecond), st.Events,
			st.PeakBufferBytes, st.BufferedBytesTotal, st.OutputBytes,
			st.SkippedSubtrees, st.HandlerFirings)
	}
	return nil
}
