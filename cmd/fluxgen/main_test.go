package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xsax"
)

func generate(t *testing.T, kind, dialect string, size int64, books int) (doc, dtdSrc string) {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "doc.xml")
	dtdOut := filepath.Join(dir, "doc.dtd")
	if err := run(kind, dialect, size, books, 1, out, dtdOut, ""); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	d, err := os.ReadFile(dtdOut)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), string(d)
}

func TestGenerateKindsAreValid(t *testing.T) {
	cases := []struct {
		kind, dialect string
	}{
		{"bib", "weak"},
		{"bib", "strong"},
		{"bib", "mixed"},
		{"auction", ""},
		{"store", ""},
	}
	for _, c := range cases {
		doc, dtdSrc := generate(t, c.kind, c.dialect, 50_000, 0)
		d, err := dtd.Parse(dtdSrc)
		if err != nil {
			t.Fatalf("%s/%s: emitted DTD invalid: %v", c.kind, c.dialect, err)
		}
		if err := xsax.Validate(strings.NewReader(doc), d); err != nil {
			t.Errorf("%s/%s: generated document invalid: %v", c.kind, c.dialect, err)
		}
		if len(doc) < 20_000 || len(doc) > 150_000 {
			t.Errorf("%s/%s: size %d far from 50_000 target", c.kind, c.dialect, len(doc))
		}
	}
}

func TestGenerateExactBookCount(t *testing.T) {
	doc, _ := generate(t, "bib", "weak", 0, 7)
	if got := strings.Count(doc, "<book"); got != 7 {
		t.Errorf("book count = %d, want 7", got)
	}
}

func TestGenerateRandomAgainstDTDFile(t *testing.T) {
	dir := t.TempDir()
	dtdFile := filepath.Join(dir, "my.dtd")
	src := "<!ELEMENT r (a|b)*><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>"
	if err := os.WriteFile(dtdFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "doc.xml")
	if err := run("random", "", 0, 0, 3, out, "", dtdFile); err != nil {
		t.Fatal(err)
	}
	doc, _ := os.ReadFile(out)
	d := dtd.MustParse(src)
	if err := xsax.Validate(strings.NewReader(string(doc)), d); err != nil {
		t.Errorf("random doc invalid: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run("warp", "", 0, 0, 1, "", "", ""); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("bib", "sideways", 0, 0, 1, "", "", ""); err == nil {
		t.Error("unknown dialect accepted")
	}
	if err := run("random", "", 0, 0, 1, "", "", ""); err == nil {
		t.Error("random without dtdfile accepted")
	}
}
