// Command fluxgen generates the synthetic experiment workloads:
// bibliography documents (in the paper's weak/strong/mixed DTD dialects),
// XMark-style auction sites, two-branch store documents and random
// documents valid for an arbitrary DTD.
//
// Usage:
//
//	fluxgen -kind bib -dialect weak -size 1048576 > bib.xml
//	fluxgen -kind bib -dialect strong -books 500 -out bib.xml -dtd-out bib.dtd
//	fluxgen -kind auction -size 4194304 > site.xml
//	fluxgen -kind store -size 200000 > store.xml
//	fluxgen -kind random -dtdfile my.dtd -seed 7 > doc.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmlgen"
)

func main() {
	var (
		kind    = flag.String("kind", "bib", "bib, auction, store or random")
		dialect = flag.String("dialect", "weak", "bib dialect: weak, strong or mixed")
		size    = flag.Int64("size", 1<<20, "approximate document size in bytes")
		books   = flag.Int("books", 0, "bib: exact book count (overrides -size)")
		seed    = flag.Int64("seed", 42, "generator seed")
		outPath = flag.String("out", "", "output file (default stdout)")
		dtdOut  = flag.String("dtd-out", "", "also write the matching DTD to this file")
		dtdFile = flag.String("dtdfile", "", "random: DTD to generate against")
	)
	flag.Parse()
	if err := run(*kind, *dialect, *size, *books, *seed, *outPath, *dtdOut, *dtdFile); err != nil {
		fmt.Fprintln(os.Stderr, "fluxgen:", err)
		os.Exit(1)
	}
}

func run(kind, dialect string, size int64, books int, seed int64, outPath, dtdOut, dtdFile string) error {
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var dtdSrc string
	var gen func() error
	switch kind {
	case "bib":
		var dia xmlgen.BibDialect
		switch dialect {
		case "weak":
			dia = xmlgen.WeakBib
		case "strong":
			dia = xmlgen.StrongBib
		case "mixed":
			dia = xmlgen.MixedBib
		default:
			return fmt.Errorf("unknown dialect %q", dialect)
		}
		cfg := xmlgen.BibConfig{Dialect: dia, Seed: seed, Books: books}
		if books == 0 {
			cfg.Books = xmlgen.SizedBibBooks(cfg, size)
		}
		dtdSrc = dia.DTD()
		gen = func() error { return xmlgen.WriteBib(out, cfg) }
	case "auction":
		dtdSrc = xmlgen.AuctionDTD
		gen = func() error {
			return xmlgen.WriteAuction(out, xmlgen.AuctionConfig{Factor: float64(size) / 40000, Seed: seed})
		}
	case "store":
		dtdSrc = xmlgen.StoreDTD
		n := int(size / 110)
		if n < 2 {
			n = 2
		}
		gen = func() error {
			return xmlgen.WriteStore(out, xmlgen.StoreConfig{Books: n / 2, Entries: n / 2, Seed: seed})
		}
	case "random":
		if dtdFile == "" {
			return fmt.Errorf("-kind random requires -dtdfile")
		}
		b, err := os.ReadFile(dtdFile)
		if err != nil {
			return err
		}
		d, err := dtd.Parse(string(b))
		if err != nil {
			return err
		}
		dtdSrc = string(b)
		gen = func() error { return xmlgen.WriteRandom(out, d, xmlgen.RandomConfig{Seed: seed}) }
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	if dtdOut != "" {
		if err := os.WriteFile(dtdOut, []byte(dtdSrc), 0o644); err != nil {
			return err
		}
	}
	return gen()
}
