package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeServe builds a stand-in fluxserve serving canned observability
// documents; recorderOff serves /debug/passes as fluxserve does with
// -flightrec 0.
func fakeServe(t *testing.T, recorderOff bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{
			"state": "serving",
			"build": {"version": "v1.2.3", "go_version": "go1.22.0", "revision": "abcdef123456"},
			"uptime_seconds": 95,
			"evals": 7,
			"pool": {"capacity": 8, "in_flight": 2, "rejected": 1}
		}`))
	})
	mux.HandleFunc("GET /debug/passes", func(w http.ResponseWriter, r *http.Request) {
		if recorderOff {
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error": "flight recorder disabled (-flightrec 0)", "code": "RECORDER_OFF"}`))
			return
		}
		w.Write([]byte(`{
			"total": 7, "retained": 3, "capacity": 256,
			"rollups": {
				"1m":  {"passes": 2, "errors": 0, "slow": 1, "mbps": 12.5, "p50_ns": 800000, "p95_ns": 2000000, "p99_ns": 2000000, "max_ns": 2000000, "stall_total_ns": 150000},
				"5m":  {"passes": 3, "errors": 1, "slow": 1, "mbps": 11.0, "p50_ns": 900000, "p95_ns": 2100000, "p99_ns": 2100000, "max_ns": 2100000, "stall_total_ns": 200000},
				"all": {"passes": 3, "errors": 1, "slow": 1, "mbps": 11.0, "p50_ns": 900000, "p95_ns": 2100000, "p99_ns": 2100000, "max_ns": 2100000, "stall_total_ns": 200000}
			},
			"passes": [
				{"pass_id": 42, "request_id": "req-latest", "start": "2026-08-08T10:00:02Z", "duration_ns": 1500000,
				 "plans": 2, "input_bytes": 4096, "events": 900, "batches": 4, "mbps": 12.5,
				 "tokenize_stall_ns": 100000, "validate_stall_ns": 50000},
				{"pass_id": 41, "request_id": "req-slow", "start": "2026-08-08T10:00:01Z", "duration_ns": 2000000,
				 "plans": 2, "input_bytes": 4096, "events": 900, "mbps": 9.0, "slow": true},
				{"pass_id": 40, "request_id": "req-bad", "start": "2026-08-08T10:00:00Z", "duration_ns": 500000,
				 "plans": 2, "input_bytes": 1024, "events": 100, "mbps": 2.0,
				 "error": "malformed document", "plan_errors": 1, "cancel_reason": "deadline"}
			]
		}`))
	})
	mux.HandleFunc("GET /top", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("axis") != "cpu" {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error": "unknown axis", "code": "BAD_REQUEST"}`))
			return
		}
		w.Write([]byte(`{
			"axis": "cpu", "axes": ["buffer", "bytes", "cpu", "errors", "events", "passes"],
			"queries": [
				{"name": "expensive-query", "passes": 3, "errors": 1, "eval_cpu_ns": 4500000, "events": 2700, "output_bytes": 300000, "peak_buffer_bytes": 65536},
				{"name": "cheap", "passes": 3, "eval_cpu_ns": 900000, "events": 300, "output_bytes": 2048, "peak_buffer_bytes": 512}
			]
		}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestOnceSnapshot: -once renders every dashboard section from the
// polled documents, with no terminal control sequences.
func TestOnceSnapshot(t *testing.T) {
	ts := fakeServe(t, false)
	var out strings.Builder
	if err := run(context.Background(), &out, ts.URL, "cpu", 10, 10, time.Second, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "\x1b[") {
		t.Error("-once output carries terminal control sequences")
	}
	for _, want := range []string{
		"state=serving",
		"v1.2.3 (go1.22.0, rev abcdef123456)",
		"evals=7",
		"2/8 in flight, 1 rejected",
		"passes total=7 retained=3/256",
		"top queries by cpu",
		"expensive-query",
		"req-latest",
		"req-slow",
		"SLOW",
		"ERR malformed document",
		"(deadline)",
		"tokenize",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot lacks %q:\n%s", want, got)
		}
	}
	// Slow/failed passes lead the recent-passes list.
	if strings.Index(got, "req-slow") > strings.Index(got, "req-latest") {
		t.Error("slow pass not surfaced before clean passes")
	}
}

// TestRecorderOffDegrades: a server with -flightrec 0 still renders;
// the pass sections are replaced by a notice.
func TestRecorderOffDegrades(t *testing.T) {
	ts := fakeServe(t, true)
	var out strings.Builder
	if err := run(context.Background(), &out, ts.URL, "cpu", 10, 10, time.Second, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "flight recorder disabled") {
		t.Errorf("no degradation notice:\n%s", got)
	}
	if !strings.Contains(got, "top queries by cpu") {
		t.Errorf("ledger section missing despite recorder off:\n%s", got)
	}
}

// TestBadAxisFails: an axis the server rejects is a fatal error in
// -once mode (scripts must see the failure).
func TestBadAxisFails(t *testing.T) {
	ts := fakeServe(t, false)
	err := run(context.Background(), &strings.Builder{}, ts.URL, "bogus", 10, 10, time.Second, true)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad axis error = %v", err)
	}
}

// TestLiveModeRedraws: live mode emits clear sequences and stops on
// context cancellation.
func TestLiveModeRedraws(t *testing.T) {
	ts := fakeServe(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	var mu syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, &mu, ts.URL, "cpu", 10, 10, 10*time.Millisecond, false) }()

	deadline := time.Now().Add(2 * time.Second)
	for mu.frames() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no redraw within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run did not stop on cancel")
	}
	if !strings.Contains(mu.String(), "\x1b[H\x1b[2J") {
		t.Error("live mode never cleared the screen")
	}
}

// syncWriter is a goroutine-safe writer counting rendered frames.
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func (w *syncWriter) frames() int {
	return strings.Count(w.String(), "\x1b[H\x1b[2J")
}

func TestBarAndFormatters(t *testing.T) {
	if got := bar(0.5, 4); got != "██░░" {
		t.Errorf("bar(0.5, 4) = %q", got)
	}
	if got := bar(-1, 3); got != "░░░" {
		t.Errorf("bar(-1, 3) = %q", got)
	}
	if got := bar(2, 3); got != "███" {
		t.Errorf("bar(2, 3) = %q", got)
	}
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "0"}, {500 * time.Microsecond, "500µs"}, {2500 * time.Microsecond, "2.5ms"},
		{1500 * time.Millisecond, "1.50s"}, {90 * time.Second, "1m30s"},
	} {
		if got := fmtDur(tc.d); got != tc.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{512, "512B"}, {2048, "2.0KiB"}, {3 << 20, "3.0MiB"}, {5 << 30, "5.00GiB"},
	} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
