// Command fluxtop is a live terminal dashboard over a running
// fluxserve instance. It polls the server's observability endpoints —
// GET /stats, GET /debug/passes (flight recorder) and GET /top (cost
// ledger) — and renders throughput, per-stage stall bars, ingest-pool
// depth, the most expensive registered queries and the recent pass
// history, refreshing in place.
//
// Usage:
//
//	fluxtop [-addr http://localhost:8080] [-interval 2s]
//	        [-axis cpu|events|bytes|buffer|errors|passes] [-k 10]
//	        [-n 10] [-once]
//
// -once fetches a single snapshot, prints it without terminal control
// sequences and exits — suitable for scripts and smoke tests. In live
// mode fluxtop redraws every -interval until interrupted.
//
// fluxtop depends only on the standard library and the fluxquery
// module's public record types; it degrades gracefully when the server
// runs with the flight recorder disabled (-flightrec 0) or has no pool
// bound, showing whatever endpoints respond.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"fluxquery"
)

// passesDoc mirrors fluxserve's GET /debug/passes response.
type passesDoc struct {
	Total    uint64                          `json:"total"`
	Retained int                             `json:"retained"`
	Capacity int                             `json:"capacity"`
	Rollups  map[string]fluxquery.PassRollup `json:"rollups"`
	Passes   []fluxquery.PassRecord          `json:"passes"`
}

// topDoc mirrors fluxserve's GET /top response.
type topDoc struct {
	Axis    string                 `json:"axis"`
	Axes    []string               `json:"axes"`
	Queries []fluxquery.QueryStats `json:"queries"`
}

// statsDoc mirrors the subset of GET /stats the dashboard shows.
type statsDoc struct {
	State string `json:"state"`
	Build struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		Revision  string `json:"revision"`
	} `json:"build"`
	UptimeSeconds int64 `json:"uptime_seconds"`
	Evals         int64 `json:"evals"`
	Pool          *struct {
		Capacity int   `json:"capacity"`
		InFlight int   `json:"in_flight"`
		Rejected int64 `json:"rejected"`
	} `json:"pool,omitempty"`
}

// snapshot is one poll of the server: whichever endpoints answered,
// plus degradation flags for the ones that are off.
type snapshot struct {
	Stats       statsDoc
	Top         topDoc
	Passes      passesDoc
	RecorderOff bool
}

type client struct {
	base string
	http *http.Client
}

// getJSON fetches one endpoint into v and returns the HTTP status
// (0 on transport failure).
func (c *client) getJSON(path string, v any) (int, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("GET %s: %d %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return resp.StatusCode, json.Unmarshal(body, v)
}

// fetch polls all dashboard endpoints. /stats must answer (it carries
// liveness); a 404 from /debug/passes means the recorder is disabled
// and is reported, not fatal.
func (c *client) fetch(axis string, k, n int) (*snapshot, error) {
	s := &snapshot{}
	if _, err := c.getJSON("/stats", &s.Stats); err != nil {
		return nil, err
	}
	status, err := c.getJSON(fmt.Sprintf("/debug/passes?n=%d", n), &s.Passes)
	if err != nil {
		if status != http.StatusNotFound {
			return nil, err
		}
		s.RecorderOff = true
	}
	if _, err := c.getJSON(fmt.Sprintf("/top?axis=%s&k=%d", axis, k), &s.Top); err != nil {
		return nil, err
	}
	return s, nil
}

// bar renders frac (clamped to [0,1]) as a fixed-width block gauge.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("░", width-full)
}

// fmtDur prints a duration at dashboard precision: three significant
// units max, sub-second values in ms/µs.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return d.Truncate(time.Second).String()
	}
}

// fmtBytes prints a byte count in binary units.
func fmtBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	}
}

// render writes one full dashboard frame.
func render(w io.Writer, addr string, s *snapshot) {
	st := s.Stats
	fmt.Fprintf(w, "fluxserve %s  state=%s  up %s  %s (%s, rev %s)  evals=%d\n",
		addr, st.State, fmtDur(time.Duration(st.UptimeSeconds)*time.Second),
		st.Build.Version, st.Build.GoVersion, st.Build.Revision, st.Evals)

	if st.Pool != nil && st.Pool.Capacity > 0 {
		frac := float64(st.Pool.InFlight) / float64(st.Pool.Capacity)
		fmt.Fprintf(w, "pool  [%s] %d/%d in flight, %d rejected\n",
			bar(frac, 20), st.Pool.InFlight, st.Pool.Capacity, st.Pool.Rejected)
	}

	if s.RecorderOff {
		fmt.Fprintf(w, "\nflight recorder disabled (-flightrec 0): no pass history\n")
	} else {
		p := s.Passes
		fmt.Fprintf(w, "passes total=%d retained=%d/%d\n", p.Total, p.Retained, p.Capacity)

		fmt.Fprintf(w, "\n%-4s %7s %6s %5s %9s %9s %9s %9s %9s\n",
			"win", "passes", "errors", "slow", "MB/s", "p50", "p95", "p99", "stall")
		for _, win := range []string{"1m", "5m", "all"} {
			ru, ok := p.Rollups[win]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-4s %7d %6d %5d %9.1f %9s %9s %9s %9s\n",
				win, ru.Passes, ru.Errors, ru.Slow, ru.MBps,
				fmtDur(ru.P50), fmtDur(ru.P95), fmtDur(ru.P99), fmtDur(ru.StallTotal))
		}

		if len(p.Passes) > 0 {
			last := p.Passes[0]
			fmt.Fprintf(w, "\nlast pass stalls (of %s wall)\n", fmtDur(last.Duration))
			for _, stage := range []struct {
				name  string
				stall time.Duration
			}{
				{"tokenize", last.TokenizeStall},
				{"validate", last.ValidateStall},
				{"dispatch", last.DispatchStall},
				{"gate", last.GateStall},
			} {
				frac := 0.0
				if last.Duration > 0 {
					frac = float64(stage.stall) / float64(last.Duration)
				}
				fmt.Fprintf(w, "  %-8s [%s] %s\n", stage.name, bar(frac, 20), fmtDur(stage.stall))
			}
		}
	}

	fmt.Fprintf(w, "\ntop queries by %s\n", s.Top.Axis)
	if len(s.Top.Queries) == 0 {
		fmt.Fprintf(w, "  (no query has been evaluated yet)\n")
	} else {
		fmt.Fprintf(w, "%-3s %-20s %7s %10s %10s %10s %10s %6s\n",
			"#", "query", "passes", "cpu", "events", "output", "buf peak", "errors")
		for i, q := range s.Top.Queries {
			name := q.Name
			if len(name) > 20 {
				name = name[:17] + "..."
			}
			fmt.Fprintf(w, "%-3d %-20s %7d %10s %10d %10s %10s %6d\n",
				i+1, name, q.Passes, fmtDur(q.EvalCPU), q.Events,
				fmtBytes(q.OutputBytes), fmtBytes(q.PeakBufferBytes), q.Errors)
		}
	}

	if !s.RecorderOff && len(s.Passes.Passes) > 0 {
		// Slow and failed passes surface first; within each class the
		// snapshot is already most-recent-first.
		recs := append([]fluxquery.PassRecord(nil), s.Passes.Passes...)
		sort.SliceStable(recs, func(i, j int) bool {
			wi := recs[i].Slow || recs[i].Err != ""
			wj := recs[j].Slow || recs[j].Err != ""
			return wi && !wj
		})
		fmt.Fprintf(w, "\nrecent passes\n")
		fmt.Fprintf(w, "%-8s %-16s %9s %9s %9s %6s  %s\n",
			"pass", "request", "dur", "MB/s", "stall", "plans", "note")
		for _, r := range recs {
			note := ""
			switch {
			case r.Err != "":
				note = "ERR " + r.Err
			case r.Slow:
				note = "SLOW"
			}
			if r.CancelReason != "" {
				note += " (" + r.CancelReason + ")"
			}
			reqID := r.RequestID
			if len(reqID) > 16 {
				reqID = reqID[:13] + "..."
			}
			fmt.Fprintf(w, "%-8d %-16s %9s %9.1f %9s %6d  %s\n",
				r.PassID, reqID, fmtDur(r.Duration), r.MBps, fmtDur(r.TotalStall()), r.Plans, note)
		}
	}
}

// run drives the dashboard: one frame in -once mode, a redraw loop
// otherwise, until ctx is cancelled.
func run(ctx context.Context, out io.Writer, addr, axis string, k, n int, interval time.Duration, once bool) error {
	c := &client{base: strings.TrimRight(addr, "/"), http: &http.Client{Timeout: 10 * time.Second}}
	frame := func() error {
		s, err := c.fetch(axis, k, n)
		if err != nil {
			return err
		}
		var buf strings.Builder
		if !once {
			buf.WriteString("\x1b[H\x1b[2J") // cursor home + clear
		}
		render(&buf, c.base, s)
		_, err = io.WriteString(out, buf.String())
		return err
	}
	if err := frame(); err != nil {
		return err
	}
	if once {
		return nil
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(out)
			return nil
		case <-tick.C:
			if err := frame(); err != nil {
				// A transient poll failure (server draining, restart)
				// keeps the loop alive; the error is shown in place.
				fmt.Fprintf(out, "\x1b[H\x1b[2Jfluxtop: %v (retrying every %s)\n", err, interval)
			}
		}
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the fluxserve instance")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	axis := flag.String("axis", "cpu", "cost axis for the top-queries table (cpu|events|bytes|buffer|errors|passes)")
	k := flag.Int("k", 10, "number of queries in the top table")
	n := flag.Int("n", 10, "number of recent passes to show")
	once := flag.Bool("once", false, "print a single snapshot without terminal control sequences and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, *addr, *axis, *k, *n, *interval, *once); err != nil {
		fmt.Fprintf(os.Stderr, "fluxtop: %v\n", err)
		os.Exit(1)
	}
}
