package fluxquery

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

func telemetryDoc(books int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&b, "<book year=\"2004\"><title>T%d</title><author>A%d</author><author>B%d</author></book>", i, i, i)
	}
	b.WriteString("</bib>")
	return b.String()
}

// TestPlanTelemetryCounters: a plan compiled with Options.Telemetry
// publishes pass/byte/event series, and each execution carries a
// distinct pass id and the input size in its Stats.
func TestPlanTelemetryCounters(t *testing.T) {
	tel := NewTelemetry()
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Telemetry: tel})
	doc := telemetryDoc(50)

	st1, err := p.Execute(strings.NewReader(doc), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := p.Execute(strings.NewReader(doc), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if st1.PassID == 0 || st2.PassID == 0 || st1.PassID == st2.PassID {
		t.Errorf("pass ids must be distinct and nonzero: %d, %d", st1.PassID, st2.PassID)
	}
	if st1.InputBytes != int64(len(doc)) {
		t.Errorf("InputBytes = %d, want %d", st1.InputBytes, len(doc))
	}

	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"flux_scan_passes_total 2",
		"flux_scan_bytes_total",
		"flux_scan_events_total",
		"flux_pass_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestStreamSetTelemetryAndTrace: a traced shared pass yields per-plan
// eval series labeled by registration name and a span tree whose scan
// and dispatch phases sum to (nearly) the pass wall time.
func TestStreamSetTelemetryAndTrace(t *testing.T) {
	tel := NewTelemetry()
	d, err := ParseDTD(xmlgen.WeakBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	set := NewStreamSet(d)
	set.SetTelemetry(tel)
	set.SetTracing(true, "req-42")
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	if _, err := set.RegisterNamed(p, io.Discard, "books"); err != nil {
		t.Fatal(err)
	}
	if err := set.Run(strings.NewReader(telemetryDoc(200))); err != nil {
		t.Fatal(err)
	}

	tr := set.LastTrace()
	if tr == nil || tr.ID != "req-42" || tr.PassID == 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Root == nil || tr.Root.Dur <= 0 {
		t.Fatalf("root span missing or unstamped: %+v", tr.Root)
	}
	var scan, dispatch *TraceSpan
	for _, ch := range tr.Root.Children {
		switch ch.Name {
		case "scan":
			scan = ch
		case "dispatch":
			dispatch = ch
		}
	}
	if scan == nil || dispatch == nil {
		t.Fatalf("trace lacks scan/dispatch spans: %+v", tr.Root.Children)
	}
	if scan.BytesIn == 0 || scan.EventsOut == 0 {
		t.Errorf("scan span totals not stamped: %+v", scan)
	}
	found := false
	for _, ch := range dispatch.Children {
		if ch.Name == "eval:books" && ch.Dur > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dispatch lacks a stamped eval:books span: %+v", dispatch.Children)
	}

	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"flux_scan_passes_total 1",
		`flux_eval_batch_seconds_count{plan="books"}`,
		"flux_dispatch_batches_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestTraceSpansSumToWall: on a sequential pass the scan and dispatch
// spans partition the pass loop, so their durations must sum to within
// 10% of the root span's wall time. A few attempts damp scheduler
// noise; one conforming pass proves the accounting.
func TestTraceSpansSumToWall(t *testing.T) {
	d, err := ParseDTD(xmlgen.WeakBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	doc := telemetryDoc(5000)

	var lastRatio float64
	for attempt := 0; attempt < 5; attempt++ {
		set := NewStreamSet(d)
		set.SetTracing(true, "sum")
		if _, err := set.Register(p, io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := set.Run(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		tr := set.LastTrace()
		var sum time.Duration
		for _, ch := range tr.Root.Children {
			sum += ch.Dur
		}
		lastRatio = float64(sum) / float64(tr.Root.Dur)
		if lastRatio >= 0.9 && lastRatio <= 1.05 {
			return
		}
	}
	t.Errorf("span sum / wall = %.3f after retries, want within [0.9, 1.05]", lastRatio)
}

// TestTelemetryZeroPerEventAllocs: enabling telemetry must add only a
// per-pass constant to the pass's allocation count, never a per-event
// term — instruments are resolved once per pass and observed per
// batch, and recording into them is allocation-free.
func TestTelemetryZeroPerEventAllocs(t *testing.T) {
	d, err := ParseDTD(xmlgen.WeakBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	doc := []byte(telemetryDoc(2500))
	events := int64(0)

	measure := func(configure func(*StreamSet)) float64 {
		set := NewStreamSet(d)
		if configure != nil {
			configure(set)
		}
		reg, err := set.Register(p, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		run := func() {
			if err := set.Run(bytes.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm pools, interning and output buffers
		run()
		allocs := testing.AllocsPerRun(5, run)
		if st, err := reg.Stats(); err == nil {
			events = st.Events
		}
		return allocs
	}
	off := measure(nil)
	on := measure(func(s *StreamSet) { s.SetTelemetry(NewTelemetry()) })
	rec := measure(func(s *StreamSet) {
		s.SetRecorder(NewFlightRecorder(FlightRecorderConfig{}))
		s.SetLedger(NewQueryLedger())
	})
	if events < 10_000 {
		t.Fatalf("workload too small to resolve per-event costs: %d events", events)
	}
	// The query itself buffers per book, so absolute counts scale with
	// the input on both sides; the instrumentation DELTA is what must
	// not. The same bound holds for the flight recorder and cost
	// ledger: one record deposit and one ledger update per pass, zero
	// per-event terms.
	for _, tc := range []struct {
		name string
		on   float64
	}{{"telemetry", on}, {"recorder+ledger", rec}} {
		if perEvent := (tc.on - off) / float64(events); perEvent > 0.01 {
			t.Errorf("%s adds %.4f allocations per event (off %.1f, on %.1f, %d events), want ~0",
				tc.name, perEvent, off, tc.on, events)
		}
	}
}

// TestTelemetryOverhead compares the 8-query XMark shared pass with
// telemetry enabled against disabled and bounds the slowdown. Timing
// ratios are machine-load sensitive, so the check only runs when
// FLUX_TELEMETRY_OVERHEAD=1 (the CI bench-smoke job sets it).
func TestTelemetryOverhead(t *testing.T) {
	if os.Getenv("FLUX_TELEMETRY_OVERHEAD") == "" {
		t.Skip("set FLUX_TELEMETRY_OVERHEAD=1 to run the overhead check")
	}
	names := []string{
		"xmark-q1", "xmark-q8-join", "xmark-q13", "xmark-q2-bidders",
		"xmark-q17-nophone", "xmark-q20-cities", "xmark-q4-sellers", "xmark-q11-bids",
	}
	base := workload.ByName(names[0])
	var buf bytes.Buffer
	if err := base.Gen(&buf, 512<<10, 42); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	d, err := ParseDTD(base.DTD)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, len(names))
	for i, name := range names {
		c := workload.ByName(name)
		plans[i] = MustCompile(c.Query, c.DTD, Options{})
	}
	measure := func(configure func(*StreamSet)) time.Duration {
		set := NewStreamSet(d)
		if configure != nil {
			configure(set)
		}
		for _, p := range plans {
			if _, err := set.Register(p, io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		best := time.Duration(1 << 62)
		for i := 0; i < 7; i++ {
			start := time.Now()
			if err := set.Run(bytes.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	measure(nil) // warm pools and interning before any measurement
	off := measure(nil)
	for _, tc := range []struct {
		name      string
		configure func(*StreamSet)
	}{
		{"telemetry", func(s *StreamSet) { s.SetTelemetry(NewTelemetry()) }},
		{"recorder+ledger", func(s *StreamSet) {
			s.SetRecorder(NewFlightRecorder(FlightRecorderConfig{}))
			s.SetLedger(NewQueryLedger())
			s.SetRequestID("overhead")
		}},
	} {
		on := measure(tc.configure)
		overhead := float64(on-off) / float64(off) * 100
		t.Logf("%s overhead: off=%v on=%v (%.2f%%)", tc.name, off, on, overhead)
		if overhead > 3.0 {
			t.Errorf("%s overhead %.2f%% exceeds 3%% (off=%v on=%v)", tc.name, overhead, off, on)
		}
	}
}
