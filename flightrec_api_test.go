package fluxquery

import (
	"bytes"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"fluxquery/internal/xmlgen"
)

// TestFlightRecorderDifferential: recorder-on (slow capture armed, so
// every pass builds a span tree) and recorder-off runs must produce
// byte-identical outputs, across sequential and pipelined passes and
// both dispatch modes. Run under -race in CI.
func TestFlightRecorderDifferential(t *testing.T) {
	d, err := ParseDTD(xmlgen.WeakBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{paperQuery, paperQuery}
	doc := telemetryDoc(400)

	run := func(instrument bool, parallel int, disp Dispatch) []string {
		set := NewStreamSet(d)
		set.SetParallel(parallel)
		set.SetDispatch(disp)
		if instrument {
			rec := NewFlightRecorder(FlightRecorderConfig{
				Size:        16,
				SlowLatency: time.Nanosecond, // every pass trips capture
				Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			set.SetRecorder(rec)
			set.SetLedger(NewQueryLedger())
			set.SetRequestID("diff")
		}
		outs := make([]*bytes.Buffer, len(queries))
		for i, q := range queries {
			outs[i] = &bytes.Buffer{}
			p := MustCompile(q, xmlgen.WeakBibDTD, Options{})
			if _, err := set.Register(p, outs[i]); err != nil {
				t.Fatal(err)
			}
		}
		for pass := 0; pass < 2; pass++ {
			if err := set.Run(strings.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
		}
		res := make([]string, len(outs))
		for i, b := range outs {
			res[i] = b.String()
		}
		if instrument {
			if got := int(set.Recorder().Total()); got != 2 {
				t.Fatalf("recorder total = %d, want 2", got)
			}
		}
		return res
	}

	for _, cfg := range []struct {
		parallel int
		disp     Dispatch
	}{{0, DispatchFanout}, {0, DispatchTrie}, {4, DispatchFanout}, {4, DispatchTrie}} {
		off := run(false, cfg.parallel, cfg.disp)
		on := run(true, cfg.parallel, cfg.disp)
		for i := range off {
			if off[i] != on[i] {
				t.Errorf("parallel=%d dispatch=%v query %d: recorder-on output differs from recorder-off",
					cfg.parallel, cfg.disp, i)
			}
			if off[i] == "" {
				t.Errorf("parallel=%d dispatch=%v query %d: empty output", cfg.parallel, cfg.disp, i)
			}
		}
	}
}

// TestStreamSetRecorderAndLedger exercises the public observability
// surface end to end: records land in the recorder with the request id,
// rollups aggregate them, and the ledger attributes cost by name.
func TestStreamSetRecorderAndLedger(t *testing.T) {
	d, err := ParseDTD(xmlgen.WeakBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewFlightRecorder(FlightRecorderConfig{Size: 8})
	led := NewQueryLedger()
	set := NewStreamSet(d)
	set.SetRecorder(rec)
	set.SetLedger(led)
	set.SetRequestID("api-req")
	if set.Recorder() != rec || set.Ledger() != led {
		t.Fatal("getters did not return the installed handles")
	}

	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	sq, err := set.RegisterNamed(p, io.Discard, "books")
	if err != nil {
		t.Fatal(err)
	}
	doc := telemetryDoc(100)
	for i := 0; i < 3; i++ {
		if err := set.Run(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}

	if rec.Len() != 3 || rec.Cap() != 8 || rec.Total() != 3 {
		t.Fatalf("recorder Len/Cap/Total = %d/%d/%d", rec.Len(), rec.Cap(), rec.Total())
	}
	r := rec.Snapshot(1)[0]
	if r.RequestID != "api-req" || r.Plans != 1 || r.InputBytes != int64(len(doc)) {
		t.Fatalf("latest record = %+v", r)
	}
	st, err := sq.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rec.Get(st.PassID); !ok || got.PassID != st.PassID {
		t.Fatalf("Get(%d) = %+v, %v", st.PassID, got, ok)
	}
	ru := rec.Rollup(0)
	if ru.Passes != 3 || ru.Errors != 0 || ru.P50 <= 0 {
		t.Fatalf("rollup = %+v", ru)
	}

	qs, ok := led.Get("books")
	if !ok || qs.Passes != 3 || qs.EvalCPU <= 0 || qs.Events <= 0 {
		t.Fatalf("ledger entry = %+v, %v", qs, ok)
	}
	for _, axis := range LedgerAxes() {
		top, err := led.TopK(axis, 1)
		if err != nil || len(top) != 1 || top[0].Name != "books" {
			t.Fatalf("TopK(%q) = %+v, %v", axis, top, err)
		}
	}
	if _, err := led.TopK("nope", 1); err == nil {
		t.Fatal("unknown axis accepted")
	}

	// Nil handles are inert.
	var nilRec *FlightRecorder
	var nilLed *QueryLedger
	if nilRec.Len() != 0 || nilRec.Snapshot(1) != nil || nilLed.Len() != 0 || nilLed.Stats() != nil {
		t.Fatal("nil handles reported state")
	}
	if ru := nilRec.Rollup(time.Minute); ru.Passes != 0 {
		t.Fatal("nil rollup")
	}
	nilLed.Reset()
	set.SetRecorder(nil)
	set.SetLedger(nil)
	if err := set.Run(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 3 {
		t.Fatal("detached recorder still received records")
	}
}
