package fluxquery

// Differential tests of schema-driven stream projection: on every corpus
// query (including all 8 XMark streaming queries) the projected pass must
// produce byte-identical output to the unprojected one — a too-narrow
// path-set is a correctness bug, so these are the subsystem's primary
// acceptance tests.

import (
	"bytes"
	"strings"
	"testing"

	"fluxquery/internal/workload"
)

// projModes are the three projection settings under test.
var projModes = []Projection{ProjectionOff, ProjectionValidate, ProjectionFast}

// TestProjectionDifferentialCorpus: for every workload case, execution
// with projection fast/validate is byte-identical to projection off, and
// the buffer accounting (the paper's memory metric) is unchanged.
func TestProjectionDifferentialCorpus(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				var doc bytes.Buffer
				if err := c.Gen(&doc, 20_000, seed); err != nil {
					t.Fatal(err)
				}
				var want string
				var wantSt Stats
				for _, m := range projModes {
					p := MustCompile(c.Query, c.DTD, Options{Projection: m})
					out, st, err := p.ExecuteString(doc.String())
					if err != nil {
						t.Fatalf("seed %d proj=%v: %v", seed, m, err)
					}
					if m == ProjectionOff {
						want, wantSt = out, st
						continue
					}
					if out != want {
						t.Fatalf("seed %d: proj=%v output differs from proj=off\nproj: %.200s\noff:  %.200s",
							seed, m, out, want)
					}
					if st.PeakBufferBytes != wantSt.PeakBufferBytes ||
						st.BufferedBytesTotal != wantSt.BufferedBytesTotal ||
						st.HandlerFirings != wantSt.HandlerFirings {
						t.Errorf("seed %d: proj=%v buffer accounting diverged: %+v vs %+v",
							seed, m, st, wantSt)
					}
					if st.Events > wantSt.Events {
						t.Errorf("seed %d: proj=%v delivered more events (%d) than off (%d)",
							seed, m, st.Events, wantSt.Events)
					}
				}
			}
		})
	}
}

// TestProjectionCoversAllXMarkQueries pins the acceptance workload: the
// catalogue must contain all 8 XMark streaming queries, so the corpus
// differential above really covers them.
func TestProjectionCoversAllXMarkQueries(t *testing.T) {
	var n int
	for _, c := range workload.Cases {
		if strings.HasPrefix(c.Name, "xmark-") {
			n++
		}
	}
	if n != 8 {
		t.Fatalf("workload catalogue has %d xmark queries, want 8", n)
	}
}

// TestProjectionSkipsSelectiveQuery: on a selective lookup over a broad
// document, fast projection must actually prune — subtrees skipped, raw
// bytes bulk-skipped — while still producing identical output (covered
// above). This guards against the automaton silently degenerating to
// keep-everything.
func TestProjectionSkipsSelectiveQuery(t *testing.T) {
	c := workload.ByName("xmark-q1")
	var doc bytes.Buffer
	if err := c.Gen(&doc, 200_000, 42); err != nil {
		t.Fatal(err)
	}
	p := MustCompile(c.Query, c.DTD, Options{Projection: ProjectionFast})
	_, st, err := p.ExecuteString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if st.ScanSubtreesSkipped == 0 || st.ScanBytesSkipped == 0 {
		t.Fatalf("selective query pruned nothing: %+v", st)
	}
	if st.ScanBytesSkipped < int64(doc.Len())/2 {
		t.Errorf("selective query bulk-skipped only %d of %d bytes", st.ScanBytesSkipped, doc.Len())
	}
	if st.ScanEventsDelivered == 0 {
		t.Error("no events delivered at all")
	}
}

// TestProjectionStreamSetUnion: a StreamSet projects with the UNION of
// the registered path-sets — each plan's output must match its own solo
// run even when the union is far wider than the plan's own set, and the
// union must narrow again when a broad plan unregisters.
func TestProjectionStreamSetUnion(t *testing.T) {
	narrow := workload.ByName("xmark-q1")        // people only
	broad := workload.ByName("xmark-q13")        // items with description copy
	other := workload.ByName("xmark-q2-bidders") // open auctions
	var doc bytes.Buffer
	if err := narrow.Gen(&doc, 120_000, 7); err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(narrow.DTD)
	if err != nil {
		t.Fatal(err)
	}

	solo := func(c *workload.Case) string {
		p := MustCompile(c.Query, c.DTD, Options{Projection: ProjectionOff})
		out, _, err := p.ExecuteString(doc.String())
		if err != nil {
			t.Fatalf("%s solo: %v", c.Name, err)
		}
		return out
	}

	for _, m := range projModes {
		set := NewStreamSet(d)
		set.SetProjection(m)
		cases := []*workload.Case{narrow, broad, other}
		outs := make([]*bytes.Buffer, len(cases))
		regs := make([]*StreamQuery, len(cases))
		for i, c := range cases {
			outs[i] = &bytes.Buffer{}
			regs[i], err = set.Register(MustCompile(c.Query, c.DTD, Options{}), outs[i])
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := set.Run(bytes.NewReader(doc.Bytes())); err != nil {
			t.Fatalf("proj=%v: %v", m, err)
		}
		for i, c := range cases {
			if outs[i].String() != solo(c) {
				t.Errorf("proj=%v: %s diverges from solo run", m, c.Name)
			}
		}
		sc := set.LastScan()
		if sc.Passes != 1 {
			t.Errorf("proj=%v: %d passes, want 1", m, sc.Passes)
		}
		if m == ProjectionOff && (sc.EventsDelivered != 0 || sc.EventsSkipped != 0) {
			t.Errorf("proj=off recorded scan stats: %+v", sc)
		}
		if m != ProjectionOff && sc.EventsDelivered == 0 {
			t.Errorf("proj=%v: no deliveries recorded: %+v", m, sc)
		}

		// Unregistering the broad plans must narrow the union: the narrow
		// lookup alone prunes most of the document.
		regs[1].Unregister()
		regs[2].Unregister()
		outs[0].Reset()
		if err := set.Run(bytes.NewReader(doc.Bytes())); err != nil {
			t.Fatalf("proj=%v after unregister: %v", m, err)
		}
		if outs[0].String() != solo(narrow) {
			t.Errorf("proj=%v: narrowed union broke the remaining plan", m)
		}
		if m == ProjectionFast {
			// A narrower union prunes higher in the tree: fewer but far
			// larger skips, so raw bytes skipped must grow.
			if after := set.LastScan(); after.BytesSkipped <= sc.BytesSkipped {
				t.Errorf("union did not narrow after unregister: %d -> %d bytes skipped",
					sc.BytesSkipped, after.BytesSkipped)
			}
		}
	}
}

// TestProjectionMalformedInsideSkippedRegion documents the fast/validate
// trade-off: a validity error buried inside a pruned subtree is caught by
// ProjectionValidate (and Off) and traded away by ProjectionFast, while a
// well-formedness error (tag imbalance) is caught by every mode.
func TestProjectionMalformedInsideSkippedRegion(t *testing.T) {
	const dtdSrc = `<!ELEMENT bib (book)*>
<!ELEMENT book (title,extra)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT extra (note)*>
<!ELEMENT note (#PCDATA)>`
	const query = `<t>{ for $b in $ROOT/bib/book return { $b/title } }</t>`
	// <wrong> is undeclared, hidden inside <extra>, which the query never
	// touches.
	const invalid = `<bib><book><title>T</title><extra><wrong/></extra></book></bib>`
	const unbalanced = `<bib><book><title>T</title><extra><note></extra></book></bib>`

	for _, m := range projModes {
		p := MustCompile(query, dtdSrc, Options{Projection: m})
		_, _, err := p.ExecuteString(invalid)
		if m == ProjectionFast {
			if err != nil {
				t.Errorf("fast: expected the invalid-but-balanced interior to be traded away, got %v", err)
			}
		} else if err == nil {
			t.Errorf("proj=%v: undeclared element inside skipped region not reported", m)
		}
		if _, _, err := p.ExecuteString(unbalanced); err == nil {
			t.Errorf("proj=%v: tag imbalance inside skipped region not reported", m)
		}
	}
}

// TestProjectionShellEndTagMismatch: the bulk skip verifies the outermost
// end tag of a pruned subtree, so a shell whose subtree closes with the
// wrong name fails in every mode.
func TestProjectionShellEndTagMismatch(t *testing.T) {
	const dtdSrc = `<!ELEMENT bib (book)*>
<!ELEMENT book (title,extra)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT extra (#PCDATA)>`
	const query = `<t>{ for $b in $ROOT/bib/book return { $b/title } }</t>`
	const doc = `<bib><book><title>T</title><extra>x</title></book></bib>`
	for _, m := range projModes {
		p := MustCompile(query, dtdSrc, Options{Projection: m})
		if _, _, err := p.ExecuteString(doc); err == nil {
			t.Errorf("proj=%v: mismatched end tag of pruned subtree not reported", m)
		}
	}
}
