// Package fluxquery is an optimizing XQuery processor for streaming XML
// data — a from-scratch reproduction of the FluXQuery engine (Koch,
// Scherzinger, Schweikardt, Stegmaier; VLDB 2004).
//
// The engine evaluates a practical XQuery fragment (nested for-loops,
// where-joins, conditionals, element constructors; no aggregation) over
// XML streams. A DTD is mandatory: FluXQuery's contribution is that it
// exploits schema constraints — cardinality, order and co-occurrence
// constraints derived from the DTD's content models — to rewrite the
// query into the event-based FluX language and thereby minimize main
// memory buffering.
//
// Basic use:
//
//	d, _ := fluxquery.ParseDTD(`<!ELEMENT bib (book)*> ...`)
//	q, _ := fluxquery.ParseQuery(`<results>{ for $b in $ROOT/bib/book
//	    return <result>{ $b/title }{ $b/author }</result> }</results>`)
//	plan, _ := fluxquery.Compile(q, d, fluxquery.Options{})
//	stats, _ := plan.Execute(inputStream, outputStream)
//	fmt.Println(stats.PeakBufferBytes) // bytes buffered at the high-water mark
//
// Three engines share the same front-end and produce byte-identical
// results: EngineFlux (the paper's streaming engine), EngineProjection
// (document projection à la Marian & Siméon, VLDB 2003) and EngineNaive
// (a conventional main-memory processor). The latter two reproduce the
// comparison systems of the paper's evaluation.
package fluxquery

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"fluxquery/internal/baseline"
	"fluxquery/internal/bufmgr"
	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/flightrec"
	"fluxquery/internal/mqe"
	"fluxquery/internal/nf"
	"fluxquery/internal/opt"
	"fluxquery/internal/proj"
	"fluxquery/internal/runtime"
	"fluxquery/internal/telemetry"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
	"fluxquery/internal/xsax"
)

// Engine selects the execution strategy.
type Engine int

// Available engines.
const (
	// EngineFlux is the paper's engine: schema-based scheduling into FluX
	// and streamed evaluation with minimal buffers.
	EngineFlux Engine = iota
	// EngineProjection builds an in-memory tree pruned to the query's
	// paths (Marian & Siméon-style document projection), then evaluates.
	EngineProjection
	// EngineNaive builds the full document tree, then evaluates.
	EngineNaive
)

// String returns the engine's name.
func (e Engine) String() string {
	switch e {
	case EngineFlux:
		return "flux"
	case EngineProjection:
		return "projection"
	case EngineNaive:
		return "naive"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine converts an engine name ("flux", "projection", "naive").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "flux":
		return EngineFlux, nil
	case "projection":
		return EngineProjection, nil
	case "naive":
		return EngineNaive, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want flux, projection or naive)", s)
	}
}

// Projection selects how the flux engine treats stream regions the query
// provably cannot touch (the plan's projection path-set, derived from its
// FluX handlers and buffer description forest — see docs/ARCHITECTURE.md).
type Projection int

// Projection modes.
const (
	// ProjectionFast (the default) bulk-skips irrelevant subtrees in the
	// tokenizer: their bytes are scanned only for the matching end tag —
	// no attribute materialization, no entity expansion, no event fanout.
	// Skipped regions are checked for XML tag balance, but element
	// declarations and content models inside them are not enforced; every
	// element at or above the projection frontier is still fully DTD
	// validated. Output is byte-identical to an unprojected run on every
	// valid document (the differential suite asserts it); on an invalid
	// document, an error buried inside an irrelevant subtree may go
	// undetected.
	ProjectionFast Projection = iota
	// ProjectionValidate filters event delivery through the same
	// automaton but still tokenizes and DTD-validates the whole stream:
	// error behavior is exactly that of ProjectionOff, while evaluators
	// and the shared-stream fanout still skip the irrelevant events.
	ProjectionValidate
	// ProjectionOff disables stream projection entirely.
	ProjectionOff
)

// String returns the mode's flag spelling ("fast", "validate", "off").
func (p Projection) String() string { return p.mode().String() }

// ParseProjection converts a flag value ("fast", "validate", "off").
func ParseProjection(s string) (Projection, error) {
	m, ok := proj.ParseMode(s)
	if !ok {
		return 0, fmt.Errorf("unknown projection mode %q (want fast, validate or off)", s)
	}
	switch m {
	case proj.ModeValidate:
		return ProjectionValidate, nil
	case proj.ModeOff:
		return ProjectionOff, nil
	default:
		return ProjectionFast, nil
	}
}

func (p Projection) mode() proj.Mode {
	switch p {
	case ProjectionValidate:
		return proj.ModeValidate
	case ProjectionOff:
		return proj.ModeOff
	default:
		return proj.ModeFast
	}
}

// BufferPolicy selects what a budgeted execution does when the next
// buffer fill would push live heap buffer bytes past the budget.
type BufferPolicy int

// Overflow policies.
const (
	// BufferFail aborts the over-budget plan with ErrBudgetExceeded.
	// The cap is per plan, so in a shared pass the failing query never
	// disturbs its siblings — this is the deterministic "reject" mode a
	// server uses to bound any single query.
	BufferFail BufferPolicy = iota
	// BufferSpill evicts the plan's coldest buffered subtrees — largest
	// first — to an unlinked temp-file segment store and transparently
	// rehydrates them when the evaluator first touches them. Output is
	// byte-identical to an unbudgeted run; live heap buffer bytes stay
	// under the budget whenever any cold subtree remains to evict.
	BufferSpill
	// BufferBackpressure lets reservations through but blocks the
	// stream feed of an over-budget pass while any other pass still
	// holds memory it can drain, throttling concurrent work instead of
	// failing it. A lone pass never blocks (nothing could drain).
	BufferBackpressure
)

// String returns the policy's flag spelling.
func (p BufferPolicy) String() string { return p.policy().String() }

// ParseBufferPolicy converts a flag value ("fail", "spill",
// "backpressure").
func ParseBufferPolicy(s string) (BufferPolicy, error) {
	pol, ok := bufmgr.ParsePolicy(s)
	if !ok {
		return 0, fmt.Errorf("unknown buffer policy %q (want fail, spill or backpressure)", s)
	}
	switch pol {
	case bufmgr.PolicySpill:
		return BufferSpill, nil
	case bufmgr.PolicyBackpressure:
		return BufferBackpressure, nil
	default:
		return BufferFail, nil
	}
}

func (p BufferPolicy) policy() bufmgr.Policy {
	switch p {
	case BufferSpill:
		return bufmgr.PolicySpill
	case BufferBackpressure:
		return bufmgr.PolicyBackpressure
	default:
		return bufmgr.PolicyFail
	}
}

// ErrBudgetExceeded is the typed error a BufferFail plan aborts with
// when it would exceed its buffer budget; match it with errors.Is.
var ErrBudgetExceeded = bufmgr.ErrBudgetExceeded

// BufferManager governs the buffer memory of any number of plan
// executions and StreamSet passes against one byte budget. Create one
// per process (or per tenant), hand it to Options.Buffers and
// StreamSet.SetBuffers, and Close it when done to release the spill
// store. All methods are safe for concurrent use.
type BufferManager struct {
	m *bufmgr.Manager
}

// NewBufferManager returns a manager enforcing budget bytes (<= 0
// accounts without enforcing) under the given policy. spillDir is where
// BufferSpill keeps its segment file ("" = the system temp directory);
// the file is created lazily and unlinked immediately, so it cannot
// outlive the process.
func NewBufferManager(budget int64, policy BufferPolicy, spillDir string) *BufferManager {
	return &BufferManager{m: bufmgr.New(bufmgr.Config{
		Budget:   budget,
		Policy:   policy.policy(),
		SpillDir: spillDir,
	})}
}

// Close releases the manager's spill store. Executions drawing on the
// manager must have finished.
func (b *BufferManager) Close() error {
	if b == nil {
		return nil
	}
	return b.m.Close()
}

// BufferMetrics is a point-in-time snapshot of a BufferManager.
type BufferMetrics = bufmgr.Metrics

// Metrics returns the manager's counters: current and peak reserved
// bytes, spill and rehydrate traffic, backpressure stall time, and
// PolicyFail rejections.
func (b *BufferManager) Metrics() BufferMetrics {
	if b == nil {
		return BufferMetrics{}
	}
	return b.m.Metrics()
}

// Telemetry is the engine's metrics handle: a registry of counters,
// gauges and histograms that every wired component publishes to, and
// that WritePrometheus renders as a /metrics scrape. Create one per
// process, hand it to Options.Telemetry and StreamSet.SetTelemetry (and
// BufferManager.RegisterMetrics), and serve WritePrometheus over HTTP.
// A nil *Telemetry disables everything at the cost of a few nil checks
// per pass — there is no background goroutine and no sampling either way.
type Telemetry struct {
	reg *telemetry.Registry
}

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return &Telemetry{reg: telemetry.New()} }

// MetricsContentType is the HTTP Content-Type of WritePrometheus output
// (Prometheus text exposition format v0.0.4).
const MetricsContentType = telemetry.ContentType

// WritePrometheus renders every registered series in Prometheus text
// exposition format. Safe for concurrent use with ongoing executions;
// scrapes of an unchanged registry are byte-identical.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.reg.WritePrometheus(w)
}

// Registry exposes the underlying instrument registry so servers inside
// this module can add their own series (request counters, pool gauges)
// to the same scrape. Nil-safe.
func (t *Telemetry) Registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Trace is one pass's span tree, captured by Plan.ExecuteTrace or a
// StreamSet with tracing enabled: per-stage durations with stall
// attribution, data-flow counters and ring high-water marks. It marshals
// to JSON and renders as a human-readable timeline via WriteTree.
type Trace = telemetry.Trace

// TraceSpan is one node of a Trace.
type TraceSpan = telemetry.Span

// RegisterMetrics publishes the manager's ledger (reserved bytes, spill
// traffic, backpressure stalls, rejections) on the telemetry registry as
// flux_bufmgr_* series. Values are read from the live ledger at scrape
// time; nothing is added to the reservation path.
func (b *BufferManager) RegisterMetrics(t *Telemetry) {
	if b == nil {
		return
	}
	b.m.RegisterMetrics(t.Registry())
}

// Options configures compilation.
type Options struct {
	// Engine selects the execution strategy (default EngineFlux).
	Engine Engine
	// Projection selects the flux engine's stream-projection mode for
	// Plan.Execute (default ProjectionFast). StreamSet passes have their
	// own set-level switch, StreamSet.SetProjection. The baseline engines
	// ignore it.
	Projection Projection
	// DisableOptimizer skips the algebraic optimization step entirely.
	DisableOptimizer bool
	// NoLoopMerging disables the cardinality-constraint loop-merging rule
	// (ablation).
	NoLoopMerging bool
	// NoConditionalElimination disables the language-constraint
	// unsatisfiable-conditional rule (ablation).
	NoConditionalElimination bool
	// NoBufferProjection disables the BDF's sub-path projection inside
	// buffers: buffered children are kept whole, as pure document
	// projection would keep them (ablation for the paper's improvement
	// over [10]).
	NoBufferProjection bool
	// BufferBudget bounds the live heap bytes of the plan's runtime
	// buffers (EngineFlux only; 0 = unlimited). Compile creates a
	// plan-owned BufferManager with BufferPolicy and BufferSpillDir;
	// every Execute of the plan draws on it, and Plan.Close releases
	// its spill store. Ignored when Buffers is set.
	BufferBudget   int64
	BufferPolicy   BufferPolicy
	BufferSpillDir string
	// Buffers, when non-nil, makes the plan's executions draw on a
	// shared, process-wide BufferManager instead (the budget then spans
	// every plan and StreamSet wired to it).
	Buffers *BufferManager
	// Parallel selects pipelined execution for EngineFlux: with a value
	// >= 2, Execute runs tokenization, DTD validation and evaluation as
	// pipeline stages on separate goroutines connected by bounded batch
	// rings, so the scan overlaps the evaluator. 0 or 1 is the
	// sequential pass. Output is byte-identical either way. StreamSet
	// passes have their own switch, StreamSet.SetParallel.
	Parallel int
	// Telemetry, when non-nil, publishes the plan's execution metrics
	// (pass counts, latency, input bytes and events) on the registry.
	// StreamSet passes have their own hook, StreamSet.SetTelemetry.
	Telemetry *Telemetry
}

// DTD is a parsed document type definition.
type DTD struct {
	d *dtd.DTD
}

// ParseDTD parses DTD declaration text (<!ELEMENT ...> <!ATTLIST ...>).
func ParseDTD(src string) (*DTD, error) {
	d, err := dtd.Parse(src)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// DTDFromDocument extracts and parses the DOCTYPE internal subset from a
// document's prolog (everything before the root element). It fails if
// the document carries no DOCTYPE with an internal subset.
func DTDFromDocument(doc io.Reader) (*DTD, error) {
	sc := xmltok.NewScanner(doc)
	for {
		tok, err := sc.Next()
		if err != nil {
			return nil, fmt.Errorf("no DOCTYPE declaration found: %w", err)
		}
		switch tok.Kind {
		case xmltok.Directive:
			d, err := dtd.ParseDoctype(tok.Data)
			if err != nil {
				return nil, err
			}
			return &DTD{d: d}, nil
		case xmltok.StartElement:
			return nil, fmt.Errorf("document has no DOCTYPE before the root element")
		}
	}
}

// Root returns the expected document element name.
func (d *DTD) Root() string { return d.d.Root }

// String renders the DTD in declaration syntax.
func (d *DTD) String() string { return d.d.String() }

// ConstraintSummary renders the schema constraints derived for one
// element: cardinalities, order constraints and co-occurrence conflicts.
func (d *DTD) ConstraintSummary(element string) string {
	return d.d.ConstraintSummary(element)
}

// Validate checks a document stream against the DTD.
func (d *DTD) Validate(r io.Reader) error {
	return xsax.Validate(r, d.d)
}

// Query is a parsed query.
type Query struct {
	src  string
	expr xquery.Expr
}

// ParseQuery parses a query in the supported XQuery fragment. The
// document root is addressed as $ROOT (or a leading /).
func ParseQuery(src string) (*Query, error) {
	e, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{src: src, expr: e}, nil
}

// String returns the parsed query rendered back to XQuery.
func (q *Query) String() string { return q.expr.String() }

// Stats reports one execution.
type Stats struct {
	// Engine that produced the result.
	Engine Engine
	// Events is the number of XML tokens consumed.
	Events int64
	// PeakBufferBytes is the high-water mark of live buffered data — the
	// paper's main memory metric (deterministic byte accounting, not heap
	// size).
	PeakBufferBytes int64
	// BufferedBytesTotal is cumulative buffer fill traffic.
	BufferedBytesTotal int64
	// BufferedNodes counts buffered subtree roots.
	BufferedNodes int64
	// OutputBytes is the size of the result stream.
	OutputBytes int64
	// SkippedSubtrees counts input subtrees consumed without processing.
	SkippedSubtrees int64
	// HandlerFirings counts handler/loop-body executions (flux engine).
	HandlerFirings int64
	// ScanEventsDelivered and ScanEventsSkipped report the stream
	// projection of the scan that fed this execution: events delivered to
	// the evaluator vs pruned before it (zero when projection is off).
	// For a StreamSet run the scan is shared, so these appear in
	// StreamSet.LastScan rather than per plan.
	ScanEventsDelivered int64
	ScanEventsSkipped   int64
	// ScanSubtreesSkipped counts pruned subtrees; ScanBytesSkipped counts
	// raw input bytes the tokenizer bulk-skipped (ProjectionFast only).
	ScanSubtreesSkipped int64
	ScanBytesSkipped    int64
	// PeakHeapBufferBytes is the high-water of heap-resident buffered
	// bytes — the quantity a buffer budget bounds. Equal to
	// PeakBufferBytes unless BufferSpill moved subtrees to disk.
	PeakHeapBufferBytes int64
	// SpilledBytes and RehydratedBytes count the execution's traffic to
	// and from the spill store (BufferSpill only).
	SpilledBytes    int64
	RehydratedBytes int64
	// BudgetStall is the time the pass spent blocked by
	// BufferBackpressure (for a StreamSet run, the shared pass's stall).
	BudgetStall time.Duration
	// InputBytes is the raw input size the pass consumed (flux engine).
	InputBytes int64
	// PassID is the process-unique id of the execution pass, correlating
	// these stats with logs, traces and metric scrapes.
	PassID uint64
	// Duration is the wall-clock execution time.
	Duration time.Duration
}

// Plan is a compiled, executable query.
//
// A Plan is immutable after Compile: Execute and ExecuteString may be
// called from any number of goroutines concurrently, each call carrying
// its own execution state. The per-execution machinery (scanner window,
// validator stack, writer buffer) is drawn from internal sync.Pools, so
// steady-state executions allocate only the buffers the query's buffer
// description forest actually requires.
type Plan struct {
	opts       Options
	d          *dtd.DTD
	normalized xquery.Expr
	optimized  xquery.Expr
	optTrace   opt.Trace
	flux       *core.Query
	phys       *runtime.Plan
	// bufs governs the buffer memory of the plan's executions: the
	// shared manager from Options.Buffers, a plan-owned one built from
	// Options.BufferBudget, or nil (unmanaged). ownBufs marks the
	// plan-owned case, which Plan.Close releases.
	bufs    *bufmgr.Manager
	ownBufs bool
	// pm holds the plan's resolved telemetry instruments (nil when
	// Options.Telemetry was not set).
	pm *planMetrics
}

// planMetrics is the instrument bundle of single-plan executions,
// resolved once at Compile. The series names are shared with StreamSet
// passes — a registry wired to both aggregates them, which is the
// intended reading (every execution is one pass over one input).
type planMetrics struct {
	passes      *telemetry.Counter
	bytes       *telemetry.Counter
	events      *telemetry.Counter
	passSeconds *telemetry.Histogram
}

func newPlanMetrics(t *Telemetry) *planMetrics {
	reg := t.Registry()
	if reg == nil {
		return nil
	}
	return &planMetrics{
		passes: reg.Counter("flux_scan_passes_total",
			"Completed shared scan passes."),
		bytes: reg.Counter("flux_scan_bytes_total",
			"Raw input bytes consumed by scan passes."),
		events: reg.Counter("flux_scan_events_total",
			"Validated events fanned out to riding plans."),
		passSeconds: reg.Histogram("flux_pass_seconds",
			"Wall time of one shared scan pass.",
			telemetry.PassLatencyBuckets, telemetry.ScaleNanos),
	}
}

// Close releases the plan-owned buffer manager created by
// Options.BufferBudget (its lazily created spill store holds an open
// file descriptor). It is a no-op — and the Plan remains usable — for
// unbudgeted plans and plans drawing on a shared Options.Buffers
// manager, whose owner closes it. Executions of this plan must have
// finished.
func (p *Plan) Close() error {
	if !p.ownBufs {
		return nil
	}
	return p.bufs.Close()
}

// Compile runs the full pipeline of the paper's architecture (Figure 2):
// normalization, algebraic optimization against the DTD, translation into
// FluX, and physical plan generation. For the baseline engines the
// pipeline stops after optimization.
func Compile(q *Query, d *DTD, o Options) (*Plan, error) {
	n, err := nf.Normalize(q.expr)
	if err != nil {
		return nil, err
	}
	p := &Plan{opts: o, d: d.d, normalized: n, optimized: n}
	if !o.DisableOptimizer {
		optimized, trace, err := opt.Optimize(n, d.d, opt.Options{
			NoLoopMerging:     o.NoLoopMerging,
			NoCondElimination: o.NoConditionalElimination,
		})
		if err != nil {
			return nil, err
		}
		p.optimized = optimized
		p.optTrace = trace
	}
	if o.Engine == EngineFlux {
		flux, err := core.Schedule(p.optimized, d.d)
		if err != nil {
			return nil, err
		}
		phys, err := runtime.CompileOptions(flux, runtime.Options{
			FullBuffers: o.NoBufferProjection,
			Projection:  o.Projection.mode(),
		})
		if err != nil {
			return nil, err
		}
		p.flux = flux
		p.phys = phys
	}
	if o.Buffers != nil {
		p.bufs = o.Buffers.m
	} else if o.BufferBudget > 0 {
		p.bufs = bufmgr.New(bufmgr.Config{
			Budget:   o.BufferBudget,
			Policy:   o.BufferPolicy.policy(),
			SpillDir: o.BufferSpillDir,
		})
		p.ownBufs = true
	}
	if o.Telemetry != nil {
		p.pm = newPlanMetrics(o.Telemetry)
	}
	return p, nil
}

// MustCompile panics on error; for tests and examples with fixed inputs.
func MustCompile(query, dtdSrc string, o Options) *Plan {
	q, err := ParseQuery(query)
	if err != nil {
		panic(err)
	}
	d, err := ParseDTD(dtdSrc)
	if err != nil {
		panic(err)
	}
	p, err := Compile(q, d, o)
	if err != nil {
		panic(err)
	}
	return p
}

// Execute runs the plan over an input document stream and writes the
// result stream to w. It is safe for concurrent use: the plan is
// read-only and all mutable state is per-call.
func (p *Plan) Execute(r io.Reader, w io.Writer) (Stats, error) {
	return p.execute(nil, r, w, nil)
}

// ExecuteContext is Execute under a cancellation context: the feed loop
// checks ctx at every batch boundary, parked gate waits and pipeline
// stages unpark on cancellation, and a cancelled execution returns ctx's
// error as the plan's terminal status — never a silently truncated
// result stream. The baseline engines (EngineProjection, EngineNaive)
// exist for the paper's measurements only and do not observe ctx.
func (p *Plan) ExecuteContext(ctx context.Context, r io.Reader, w io.Writer) (Stats, error) {
	return p.execute(ctx, r, w, nil)
}

// ExecuteTrace is Execute with per-pass span tracing: it returns the
// execution's span tree alongside the stats. id tags the trace (a
// request id, a file name — anything that correlates it with its
// caller); the trace's PassID matches Stats.PassID. For the flux engine
// the tree breaks the pass into scan/eval spans (pipelined executions
// add tokenize/validate stage spans with stall attribution and ring
// high-water marks); the baseline engines report a root span only.
func (p *Plan) ExecuteTrace(r io.Reader, w io.Writer, id string) (Stats, *Trace, error) {
	tr := telemetry.NewTrace(id)
	st, err := p.execute(nil, r, w, tr)
	if tr.Root != nil && tr.Root.Dur == 0 {
		tr.End() // baseline engines: root span only
	}
	return st, tr, err
}

func (p *Plan) execute(ctx context.Context, r io.Reader, w io.Writer, tr *telemetry.Trace) (Stats, error) {
	start := time.Now()
	var rst *runtime.Stats
	var err error
	switch p.opts.Engine {
	case EngineFlux:
		if p.opts.Parallel >= 2 {
			rst, err = p.phys.RunManagedParallelTraceContext(ctx, r, w, p.bufs, tr)
		} else {
			rst, err = p.phys.RunManagedTraceContext(ctx, r, w, p.bufs, tr)
		}
	case EngineProjection:
		rst, err = baseline.RunProjection(p.optimized, p.d, r, w)
	case EngineNaive:
		rst, err = baseline.RunNaive(p.optimized, p.d, r, w)
	default:
		return Stats{}, fmt.Errorf("unknown engine %v", p.opts.Engine)
	}
	wall := time.Since(start)
	st := statsFrom(rst, p.opts.Engine, wall)
	if st.PassID == 0 {
		if tr != nil {
			st.PassID = tr.PassID
		} else {
			st.PassID = telemetry.NextPassID()
		}
	}
	if pm := p.pm; pm != nil && err == nil {
		pm.passes.Inc()
		pm.bytes.Add(st.InputBytes)
		pm.events.Add(st.Events)
		pm.passSeconds.Observe(wall.Nanoseconds())
	}
	return st, err
}

// statsFrom converts the runtime's counters into the public Stats.
func statsFrom(rst *runtime.Stats, e Engine, d time.Duration) Stats {
	st := Stats{Engine: e, Duration: d}
	if rst != nil {
		st.Events = rst.Events
		st.PeakBufferBytes = rst.PeakBufferBytes
		st.BufferedBytesTotal = rst.BufferedBytesTotal
		st.BufferedNodes = rst.BufferedNodes
		st.OutputBytes = rst.OutputBytes
		st.SkippedSubtrees = rst.SkippedSubtrees
		st.HandlerFirings = rst.HandlerFirings
		st.ScanEventsDelivered = rst.ScanEventsDelivered
		st.ScanEventsSkipped = rst.ScanEventsSkipped
		st.ScanSubtreesSkipped = rst.ScanSubtreesSkipped
		st.ScanBytesSkipped = rst.ScanBytesSkipped
		st.PeakHeapBufferBytes = rst.PeakHeapBufferBytes
		st.SpilledBytes = rst.SpilledBytes
		st.RehydratedBytes = rst.RehydratedBytes
		st.BudgetStall = rst.BudgetStall
		st.InputBytes = rst.ScanBytesRead
		st.PassID = rst.PassID
	}
	return st
}

// ExecuteString is a convenience wrapper for string input and output.
func (p *Plan) ExecuteString(doc string) (string, Stats, error) {
	var out strings.Builder
	st, err := p.Execute(strings.NewReader(doc), &out)
	return out.String(), st, err
}

// StreamSet evaluates any number of compiled plans over a shared input
// stream in a single tokenize+validate pass (the multi-query engine,
// internal/mqe). Where N independent Execute calls scan a document N
// times, a StreamSet scans it once and fans the validated events out to
// every registered plan; each plan's output is byte-identical to what its
// own Execute would produce.
//
// Plans are registered with a per-plan output writer and can be
// registered and unregistered concurrently with Run: registrations take
// effect at the next Run, unregistrations detach from an in-flight Run at
// the next event-batch boundary. A plan that fails mid-stream (bad
// output writer, runtime error) is detached and reported through its
// StreamQuery; the stream and the other plans continue.
type StreamSet struct {
	d   *DTD
	set *mqe.Set
	// rec and led retain the installed wrapper handles so Recorder()
	// and Ledger() hand back what SetRecorder/SetLedger received.
	rec *FlightRecorder
	led *QueryLedger
}

// NewStreamSet returns an empty StreamSet for streams governed by d.
func NewStreamSet(d *DTD) *StreamSet {
	return &StreamSet{d: d, set: mqe.NewSet(d.d)}
}

// Register adds a compiled plan to the set, streaming its result to out
// on every subsequent Run. The plan must use EngineFlux (the baseline
// engines materialize documents and do not ride event streams) and be
// compiled against the set's DTD.
func (s *StreamSet) Register(p *Plan, out io.Writer) (*StreamQuery, error) {
	return s.RegisterNamed(p, out, "")
}

// RegisterNamed is Register with an explicit plan name. The name labels
// the plan's telemetry: its per-batch eval latency series
// (flux_eval_batch_seconds{plan="..."}) and its eval span in traces.
// An empty name auto-assigns q0, q1, … in registration order.
func (s *StreamSet) RegisterNamed(p *Plan, out io.Writer, name string) (*StreamQuery, error) {
	if p.opts.Engine != EngineFlux {
		return nil, fmt.Errorf("fluxquery: StreamSet requires EngineFlux plans, got %v", p.opts.Engine)
	}
	sub, err := s.set.RegisterNamed(p.phys, out, name)
	if err != nil {
		return nil, err
	}
	return &StreamQuery{sub: sub}, nil
}

// Len returns the number of registered plans.
func (s *StreamSet) Len() int { return s.set.Len() }

// SetProjection selects how shared passes treat stream regions that no
// registered plan can use. The set maintains the union of every
// registered plan's projection path-set as one skip automaton, recomputed
// on Register/Unregister; the mode (default ProjectionFast) decides
// whether the pruned remainder is bulk-skipped in the tokenizer, still
// validated, or delivered anyway. Takes effect at the next Run.
func (s *StreamSet) SetProjection(m Projection) { s.set.SetProjection(m.mode()) }

// SetBuffers installs the BufferManager governing the set's shared
// passes (nil = unmanaged). Each Run opens one backpressure gate for the
// pass and one budget account per riding plan, so a BufferFail overflow
// rejects only the offending query while its siblings complete, and
// BufferSpill keeps each plan's live heap buffers under the shared
// budget. Takes effect at the next Run.
func (s *StreamSet) SetBuffers(b *BufferManager) {
	if b == nil {
		s.set.SetBuffers(nil)
		return
	}
	s.set.SetBuffers(b.m)
}

// SetParallel selects how the set's shared passes execute: n >= 2 runs
// the staged pipeline — tokenize, validate and dispatch on separate
// goroutines connected by bounded batch rings, with up to n feed
// workers sharding the plan set by cost estimate (idle workers steal
// plans from loaded ones) — while 0 or 1 keeps the sequential
// single-goroutine pass. Per-plan outputs are byte-identical either
// way. Takes effect at the next Run.
func (s *StreamSet) SetParallel(n int) { s.set.SetParallel(n) }

// Dispatch selects how a StreamSet's shared passes fan the validated
// event stream out to the registered plans.
type Dispatch int

// Dispatch modes.
const (
	// DispatchFanout (the default) delivers every event batch to every
	// riding plan; each plan's own projection logic discards what it
	// cannot use. Per-event cost is linear in the registration count.
	DispatchFanout Dispatch = iota
	// DispatchTrie routes each event through a dispatch trie that interns
	// the registered plans' projection automata into one id-indexed
	// structure: the event resolves its trie node once and is delivered
	// only to the plans whose paths actually reach it, with per-plan
	// pending batches flushed as they fill. Per-event cost tracks the
	// number of distinct registered paths, not the registration count, so
	// the marginal cost of one more overlapping query stays near-flat.
	// Outputs are byte-identical to DispatchFanout (and to independent
	// Execute calls); delivered-event statistics differ, since plans that
	// tolerate it no longer receive shells of irrelevant subtrees.
	DispatchTrie
)

// String returns the mode's flag spelling ("fanout", "trie").
func (d Dispatch) String() string { return d.mode().String() }

// ParseDispatch converts a flag value ("fanout", "trie").
func ParseDispatch(s string) (Dispatch, error) {
	m, ok := mqe.ParseDispatchMode(s)
	if !ok {
		return 0, fmt.Errorf("unknown dispatch mode %q (want fanout or trie)", s)
	}
	if m == mqe.DispatchTrie {
		return DispatchTrie, nil
	}
	return DispatchFanout, nil
}

func (d Dispatch) mode() mqe.DispatchMode {
	if d == DispatchTrie {
		return mqe.DispatchTrie
	}
	return mqe.DispatchFanout
}

// SetDispatch selects the set's fan-out strategy (default
// DispatchFanout). Takes effect at the next Run; the dispatch trie is
// rebuilt lazily after registration changes, under the same
// immutable-snapshot discipline as the projection union.
func (s *StreamSet) SetDispatch(d Dispatch) { s.set.SetDispatch(d.mode()) }

// DispatchStats reports the dispatch-layer statistics of the most
// recent shared pass: the mode and plan count always, and — under
// DispatchTrie — the trie snapshot's size, the pass's routing totals
// and the trie build time.
type DispatchStats = mqe.DispatchStats

// LastDispatch returns the dispatch statistics of the most recent
// successfully completed Run.
func (s *StreamSet) LastDispatch() DispatchStats { return s.set.LastDispatch() }

// SetTelemetry wires the set's shared passes into t's metrics registry:
// pass/byte/event counters, pass-latency and input-size histograms,
// per-stage stall and ring-occupancy series, and per-plan eval latency
// histograms labeled by registration name. nil detaches. Takes effect
// at the next Run; the disabled path costs one nil check per batch.
func (s *StreamSet) SetTelemetry(t *Telemetry) {
	if t == nil {
		s.set.SetTelemetry(nil)
		return
	}
	s.set.SetTelemetry(t.reg)
}

// SetTracing toggles per-pass span tracing. While enabled, every Run
// builds a span tree — scan and dispatch phases, one eval span per
// riding plan, stage spans with stall attribution for pipelined passes
// — retrievable through LastTrace. id tags the traces (reused across
// runs until changed). Takes effect at the next Run.
func (s *StreamSet) SetTracing(on bool, id string) { s.set.SetTracing(on, id) }

// LastTrace returns the span tree of the most recent completed Run, or
// nil if tracing was off for that run.
func (s *StreamSet) LastTrace() *Trace { return s.set.LastTrace() }

// PassRecord is one completed shared pass as retained by the
// FlightRecorder: engine configuration, data-flow totals, per-stage
// stall breakdown, ring peaks, buffer and spill accounting, fault hits,
// cancellation reason and terminal error. It marshals to JSON (duration
// fields in nanoseconds).
type PassRecord = flightrec.Record

// PassRollup is a windowed aggregate over retained PassRecords: counts,
// data flow, nearest-rank latency percentiles and stall attribution.
type PassRollup = flightrec.Rollup

// FlightRecorderConfig configures a FlightRecorder.
type FlightRecorderConfig struct {
	// Size is the ring capacity in pass records (default 256); the ring
	// is preallocated, so recording never allocates ring storage.
	Size int
	// SlowLatency and SlowStall arm the slow-pass capture policy: a
	// pass whose wall time exceeds SlowLatency, or whose summed stage
	// stall exceeds SlowStall, retains its full span tree in the record
	// and is dumped through Logger with its request id. Zero disables
	// the respective trigger.
	SlowLatency time.Duration
	SlowStall   time.Duration
	// Logger receives slow-pass dumps (nil = slog.Default()).
	Logger *slog.Logger
}

// FlightRecorder is the engine's pass flight recorder: a fixed-size ring
// of completed pass records with time-windowed rollups and a slow-pass
// capture policy. Create one per process, install it on StreamSets with
// SetRecorder, and query it after the fact — the recorder answers "what
// did pass #N do" where Telemetry answers "how is the process doing".
// All methods are safe for concurrent use and nil-safe.
type FlightRecorder struct {
	rec *flightrec.Recorder
}

// NewFlightRecorder returns a recorder with a preallocated ring.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return &FlightRecorder{rec: flightrec.New(flightrec.Config{
		Size:        cfg.Size,
		SlowLatency: cfg.SlowLatency,
		SlowStall:   cfg.SlowStall,
		Logger:      cfg.Logger,
	})}
}

// Len returns the number of retained records; Cap the ring capacity;
// Total the number of records ever deposited.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	return f.rec.Len()
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return f.rec.Cap()
}

// Total returns the number of records ever deposited (Total - Len have
// been overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.rec.Total()
}

// Snapshot returns up to n retained pass records, most recent first
// (n <= 0 returns all retained).
func (f *FlightRecorder) Snapshot(n int) []PassRecord {
	if f == nil {
		return nil
	}
	return f.rec.Snapshot(n)
}

// Get returns the retained record with the given pass id.
func (f *FlightRecorder) Get(passID uint64) (PassRecord, bool) {
	if f == nil {
		return PassRecord{}, false
	}
	return f.rec.Get(passID)
}

// Rollup aggregates the retained records whose pass ended within window
// of now (window <= 0 covers every retained record). Percentiles are
// computed from the ring at call time, not maintained as histograms.
func (f *FlightRecorder) Rollup(window time.Duration) PassRollup {
	if f == nil {
		return PassRollup{Window: window}
	}
	return f.rec.Rollup(window)
}

// SetRecorder installs the flight recorder receiving one PassRecord per
// completed Run, success or failure (nil detaches). When the recorder's
// slow-pass thresholds are armed, passes build a span tree even with
// tracing off, so slow passes dump with full stage attribution. Takes
// effect at the next Run.
func (s *StreamSet) SetRecorder(f *FlightRecorder) {
	s.rec = f
	if f == nil {
		s.set.SetRecorder(nil)
		return
	}
	s.set.SetRecorder(f.rec)
}

// Recorder returns the installed flight recorder (nil when none).
func (s *StreamSet) Recorder() *FlightRecorder { return s.rec }

// SetRequestID labels subsequent Runs' flight-recorder records (and
// slow-pass log dumps) with the driving request's id ("" clears it), so
// a slow pass joins back to its access-log line. Takes effect at the
// next Run.
func (s *StreamSet) SetRequestID(id string) { s.set.SetRequestID(id) }

// QueryStats is the cumulative cost ledger of one registered query name:
// passes ridden, evaluator CPU attributed, events and bytes delivered,
// buffer high-water marks, spill traffic, error count and last error.
type QueryStats = mqe.QueryStats

// QueryLedger attributes cost to registered query names across shared
// passes. Create one per process, install it on StreamSets with
// SetLedger; entries accrue across Runs and across StreamSets sharing
// the ledger, keyed by registration name. All methods are safe for
// concurrent use and nil-safe.
type QueryLedger struct {
	l *mqe.Ledger
}

// NewQueryLedger returns an empty ledger.
func NewQueryLedger() *QueryLedger { return &QueryLedger{l: mqe.NewLedger()} }

// Len returns the number of distinct query names in the ledger.
func (q *QueryLedger) Len() int {
	if q == nil {
		return 0
	}
	return q.l.Len()
}

// Get returns the entry for one query name.
func (q *QueryLedger) Get(name string) (QueryStats, bool) {
	if q == nil {
		return QueryStats{}, false
	}
	return q.l.Get(name)
}

// Stats returns every entry, sorted by name.
func (q *QueryLedger) Stats() []QueryStats {
	if q == nil {
		return nil
	}
	return q.l.Stats()
}

// TopK returns the k entries with the largest value on the given axis —
// one of LedgerAxes: "cpu" (evaluator CPU), "events", "bytes" (output),
// "buffer" (peak heap buffer), "errors", "passes" — descending, ties
// broken by name. k <= 0 returns every entry.
func (q *QueryLedger) TopK(axis string, k int) ([]QueryStats, error) {
	if q == nil {
		return nil, nil
	}
	return q.l.TopK(axis, k)
}

// Reset clears every entry.
func (q *QueryLedger) Reset() {
	if q == nil {
		return
	}
	q.l.Reset()
}

// LedgerAxes returns the axis names QueryLedger.TopK accepts.
func LedgerAxes() []string { return mqe.Axes() }

// SetLedger installs the cost ledger (nil detaches): every Run folds
// each riding plan's cost — evaluator CPU, delivered events, output
// bytes, buffer peaks, errors — into the ledger entry of its
// registration name. Takes effect at the next Run.
func (s *StreamSet) SetLedger(q *QueryLedger) {
	s.led = q
	if q == nil {
		s.set.SetLedger(nil)
		return
	}
	s.set.SetLedger(q.l)
}

// Ledger returns the installed cost ledger (nil when none).
func (s *StreamSet) Ledger() *QueryLedger { return s.led }

// PassStats reports the pipeline metrics of a parallel shared pass (all
// zeros after sequential passes).
type PassStats struct {
	// Parallel is the evaluator worker count the pass ran with.
	Parallel int
	// Batches counts validated event batches fanned out to the plans.
	Batches int64
	// Steals counts plan feeds claimed by a worker outside its own cost
	// stripe.
	Steals int64
	// TokenizeStall, ValidateStall and DispatchStall are the per-stage
	// blocked times: the tokenizer on a full token ring (validation was
	// the bottleneck), the validator on a full event ring (evaluation
	// was the bottleneck), and the dispatcher waiting for a validated
	// batch (the scan was the bottleneck).
	TokenizeStall time.Duration
	ValidateStall time.Duration
	DispatchStall time.Duration
	// TokenRingPeak and EventRingPeak are high-water occupancies of the
	// two inter-stage rings.
	TokenRingPeak int
	EventRingPeak int
}

// LastPass returns the pipeline metrics of the most recent successfully
// completed Run.
func (s *StreamSet) LastPass() PassStats {
	ps := s.set.LastPass()
	return PassStats{
		Parallel:      ps.Parallel,
		Batches:       ps.Batches,
		Steals:        ps.Steals,
		TokenizeStall: ps.TokenizeStall,
		ValidateStall: ps.ValidateStall,
		DispatchStall: ps.DispatchStall,
		TokenRingPeak: ps.TokenRingPeak,
		EventRingPeak: ps.EventRingPeak,
	}
}

// ScanStats reports one shared scan pass of a StreamSet.
type ScanStats struct {
	// Passes counts completed Run calls (each is exactly one
	// tokenize+validate pass regardless of how many plans ride it).
	Passes int64
	// EventsDelivered and EventsSkipped report the most recent pass's
	// projection: events fanned out to the plans vs pruned at the scan.
	EventsDelivered int64
	EventsSkipped   int64
	// SubtreesSkipped counts pruned subtrees; BytesSkipped counts raw
	// input bytes bulk-skipped by the tokenizer (ProjectionFast only).
	SubtreesSkipped int64
	BytesSkipped    int64
	// InputBytes is the raw input size the most recent pass consumed,
	// skipped regions included.
	InputBytes int64
	// Stall is the time the pass spent blocked by BufferBackpressure.
	Stall time.Duration
}

// LastScan returns the scan statistics of the most recent Run.
func (s *StreamSet) LastScan() ScanStats {
	sc, passes := s.set.LastScan()
	return ScanStats{
		Passes:          passes,
		EventsDelivered: sc.EventsDelivered,
		EventsSkipped:   sc.EventsSkipped,
		SubtreesSkipped: sc.SubtreesSkipped,
		BytesSkipped:    sc.BytesSkipped,
		InputBytes:      sc.BytesRead,
		Stall:           s.set.LastStall(),
	}
}

// Run evaluates every registered plan over one document in a single
// shared pass. Per-plan outcomes are reported through each StreamQuery;
// Run's own error is the stream's (tokenizer or validation failure), nil
// on a well-formed, valid document. Concurrent Run calls are serialized,
// since every plan streams to the fixed writer it was registered with.
func (s *StreamSet) Run(r io.Reader) error { return s.set.Run(r) }

// RunContext is Run under a cancellation context: the shared pass checks
// ctx at every batch boundary, parked stages (backpressure gate waits,
// pipeline ring hand-offs) unpark on cancellation, and ctx's error
// becomes both RunContext's return and every riding query's Err() — a
// cancelled pass always reports the cancellation on each query, never a
// silently truncated result.
func (s *StreamSet) RunContext(ctx context.Context, r io.Reader) error {
	return s.set.RunContext(ctx, r)
}

// RunString is a convenience wrapper over Run for string input.
func (s *StreamSet) RunString(doc string) error { return s.Run(strings.NewReader(doc)) }

// StreamQuery is one plan's registration in a StreamSet.
type StreamQuery struct {
	sub *mqe.Sub
}

// Unregister removes the plan from its StreamSet. If a Run is in flight
// the plan is detached at the next batch boundary and that run's result
// records the abort. Unregister is idempotent.
func (q *StreamQuery) Unregister() { q.sub.Unregister() }

// Stats returns the plan's outcome from the most recent Run that included
// it: execution statistics and the error that ended the evaluation (nil
// for a clean run). Before any Run it reports an error.
func (q *StreamQuery) Stats() (Stats, error) {
	rst, err := q.sub.Result()
	return statsFrom(&rst, EngineFlux, q.sub.Duration()), err
}

// FluxString renders the scheduled FluX query (flux engine only).
func (p *Plan) FluxString() string {
	if p.flux == nil {
		return ""
	}
	return p.flux.String()
}

// Explain describes every stage of the compilation pipeline.
func (p *Plan) Explain() string {
	var b strings.Builder
	b.WriteString("== normal form ==\n")
	b.WriteString(p.normalized.String())
	b.WriteString("\n\n== algebraic optimization ==\n")
	if len(p.optTrace) == 0 {
		b.WriteString("(no rewrites)\n")
	} else {
		for _, s := range p.optTrace {
			b.WriteString("  " + s.String() + "\n")
		}
		b.WriteString(p.optimized.String())
		b.WriteString("\n")
	}
	if p.flux != nil {
		b.WriteString("\n== flux query ==\n")
		b.WriteString(p.flux.String())
		b.WriteString("\n== scheduling decisions ==\n")
		for _, s := range p.flux.Trace {
			b.WriteString("  " + s + "\n")
		}
		b.WriteString("\n== buffer description forest ==\n")
		b.WriteString(p.phys.BDF.String())
	}
	return b.String()
}
