package fluxquery

// Zero-copy invariant over the differential corpus: the copying Token
// adapter and the zero-copy event path of the scanner must describe the
// exact same stream for every workload document, and the validating
// xsax layer must agree between its Token and event forms too.

import (
	"bytes"
	"io"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/workload"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xsax"
)

type flatTok struct {
	kind  xmltok.Kind
	name  string
	data  string
	attrs []xmltok.Attr
}

func flatEqual(a, b []flatTok) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].name != b[i].name || a[i].data != b[i].data || len(a[i].attrs) != len(b[i].attrs) {
			return i, false
		}
		for j := range a[i].attrs {
			if a[i].attrs[j] != b[i].attrs[j] {
				return i, false
			}
		}
	}
	return 0, true
}

// TestZeroCopyCorpusParity runs every workload generator and checks that
// the scanner's Token adapter and its zero-copy event API produce
// byte-identical streams, with views copied eagerly on the event side.
func TestZeroCopyCorpusParity(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				var doc bytes.Buffer
				if err := c.Gen(&doc, 30_000, seed); err != nil {
					t.Fatal(err)
				}

				var viaTokens []flatTok
				s := xmltok.NewScanner(bytes.NewReader(doc.Bytes()))
				for {
					tok, err := s.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					viaTokens = append(viaTokens, flatTok{
						kind: tok.Kind, name: tok.Name, data: tok.Data,
						attrs: append([]xmltok.Attr(nil), tok.Attrs...),
					})
				}

				var viaEvents []flatTok
				s.Reset(bytes.NewReader(doc.Bytes()))
				for {
					ev, err := s.NextEvent()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					ft := flatTok{kind: ev.Kind, name: string(ev.NameBytes()), data: string(ev.DataBytes())}
					for _, a := range ev.Attrs() {
						ft.attrs = append(ft.attrs, xmltok.Attr{Name: string(a.Name), Value: string(a.Value)})
					}
					viaEvents = append(viaEvents, ft)
				}

				if at, ok := flatEqual(viaTokens, viaEvents); !ok {
					t.Fatalf("seed %d: token and event streams diverge at %d", seed, at)
				}
			}
		})
	}
}

// TestXSAXEventTokenParity checks the validating layer the same way: the
// xsax Token adapter and event API agree on every workload document.
func TestXSAXEventTokenParity(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var doc bytes.Buffer
			if err := c.Gen(&doc, 30_000, 1); err != nil {
				t.Fatal(err)
			}
			d := dtd.MustParse(c.DTD)

			var viaTokens []flatTok
			r := xsax.NewReader(bytes.NewReader(doc.Bytes()), d)
			for {
				tok, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				viaTokens = append(viaTokens, flatTok{
					kind: tok.Kind, name: tok.Name, data: tok.Data,
					attrs: append([]xmltok.Attr(nil), tok.Attrs...),
				})
			}

			var viaEvents []flatTok
			r.Reset(bytes.NewReader(doc.Bytes()), d)
			for {
				ev, err := r.NextEvent()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				ft := flatTok{kind: ev.Kind, name: ev.Name, data: string(ev.Data)}
				for _, a := range ev.Attrs {
					ft.attrs = append(ft.attrs, xmltok.Attr{Name: string(a.Name), Value: string(a.Value)})
				}
				viaEvents = append(viaEvents, ft)
			}

			if at, ok := flatEqual(viaTokens, viaEvents); !ok {
				t.Fatalf("xsax token and event streams diverge at %d", at)
			}
		})
	}
}
