package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every method must no-op on nil receivers: the disabled path is
	// nil pointers all the way down.
	var r *Registry
	c := r.Counter("x", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x", "h", LatencyBuckets, ScaleNanos)
	r.GaugeFunc("y", "h", func() int64 { return 1 })
	r.CounterFunc("z", "h", ScaleNone, func() int64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}

	var tr *Trace
	tr.End()
	sp := tr.Span()
	if sp != nil {
		t.Fatalf("nil trace must hand out nil spans")
	}
	sp = sp.Child("scan")
	sp.AddTime(time.Second)
	sp.AddStall(time.Second)
	sp.AddBytes(1)
	sp.AddEvents(1)
	tr.WriteTree(&strings.Builder{})
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("flux_evals_total", "evals")
	c.Add(2)
	c.Inc()
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same name+labels returns the same instrument.
	if c2 := r.Counter("flux_evals_total", "evals"); c2 != c {
		t.Fatalf("re-registration must return the same counter")
	}
	// Distinct labels are distinct series of one family.
	a := r.Counter("flux_stage_stall_seconds_total", "stalls", L("stage", "tokenize"))
	b := r.Counter("flux_stage_stall_seconds_total", "stalls", L("stage", "validate"))
	if a == b {
		t.Fatalf("distinct label sets must be distinct series")
	}
	g := r.Gauge("flux_pool_in_flight", "in flight")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []int64{100, 1000, 10000}, ScaleNanos)
	for i := 0; i < 90; i++ {
		h.Observe(50) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(500) // second
	}
	h.Observe(5000) // third
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 90*50+9*500+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.P50 <= 0 || s.P50 > 100 {
		t.Fatalf("p50 = %d, want within first bucket (0,100]", s.P50)
	}
	if s.P95 <= 100 || s.P95 > 1000 {
		t.Fatalf("p95 = %d, want within second bucket (100,1000]", s.P95)
	}
	// Rank 99 of 100 sits at the second bucket's cumulative edge, so the
	// estimate may be the bucket bound itself or interpolate beyond it.
	if s.P99 < 500 || s.P99 > 10000 {
		t.Fatalf("p99 = %d, want within (500,10000]", s.P99)
	}
	// Overflow lands in +Inf and quantiles saturate at the top bound.
	h.Observe(1 << 40)
	if q := h.Snapshot().P99; q > 10000 {
		t.Fatalf("p99 after overflow = %d, must saturate at top bound", q)
	}
}

// TestHistogramBucketBoundaries pins the bound semantics: bounds are
// inclusive upper bounds (Prometheus "le"), a value one past a bound
// falls into the next bucket, and overflow lands in the implicit +Inf
// bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	bounds := []int64{100, 1000, 10000}
	h := r.Histogram("b", "boundaries", bounds, ScaleNanos)
	for _, v := range []int64{100, 101, 1000, 1001, 10000, 10001} {
		h.Observe(v)
	}
	want := []int64{1, 2, 2, 1} // [<=100, <=1000, <=10000, +Inf]
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d holds %d, want %d", i, got, w)
		}
	}
}

// TestPassLatencyBucketsResolveSubMillisecond: the flux_pass_seconds
// ladder must keep distinguishing passes below one millisecond — the
// common case for small documents — rather than collapsing them into
// one or two buckets.
func TestPassLatencyBucketsResolveSubMillisecond(t *testing.T) {
	subMS := 0
	for i, b := range PassLatencyBuckets {
		if i > 0 && b <= PassLatencyBuckets[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, PassLatencyBuckets)
		}
		if b < int64(time.Millisecond) {
			subMS++
		}
	}
	if subMS < 5 {
		t.Fatalf("only %d sub-millisecond bounds in %v, want >= 5", subMS, PassLatencyBuckets)
	}
	if top := PassLatencyBuckets[len(PassLatencyBuckets)-1]; top != int64(10*time.Second) {
		t.Errorf("ceiling = %d, want 10s in nanoseconds", top)
	}

	// Two passes an octave apart under 1ms must land in distinct
	// buckets so quantile interpolation can tell them apart.
	r := New()
	h := r.Histogram("p", "pass", PassLatencyBuckets, ScaleNanos)
	h.Observe(int64(150 * time.Microsecond))
	h.Observe(int64(700 * time.Microsecond))
	occupied := 0
	for i := range h.buckets {
		if h.buckets[i].Load() > 0 {
			occupied++
		}
	}
	if occupied != 2 {
		t.Errorf("150µs and 700µs share a bucket (occupied=%d)", occupied)
	}
	// Quantile estimates for a uniform sub-ms population stay sub-ms.
	for i := 0; i < 100; i++ {
		h.Observe(int64(300 * time.Microsecond))
	}
	if p50 := h.Snapshot().P50; p50 <= 0 || p50 > int64(time.Millisecond) {
		t.Errorf("p50 = %dns for a 300µs population, want sub-millisecond", p50)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("b_total", "b help").Add(7)
	r.Gauge("a_gauge", "a help", L("kind", `qu"ote`)).Set(-2)
	r.Histogram("h_seconds", "h help", []int64{1_000_000, 1_000_000_000}, ScaleNanos).Observe(2_000_000)
	r.GaugeFunc("fn_gauge", "fn help", func() int64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_gauge a help",
		"# TYPE a_gauge gauge",
		`a_gauge{kind="qu\"ote"} -2`,
		"# TYPE b_total counter",
		"b_total 7",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.001"} 0`,
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 0.002",
		"h_seconds_count 1",
		"fn_gauge 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must appear in name order.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	// Scrapes are deterministic.
	var sb2 strings.Builder
	_ = r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Errorf("successive scrapes differ")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h", "h", OccupancyBuckets, ScaleNone)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 40))
				var sb strings.Builder
				if i%100 == 0 {
					_ = r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Snapshot().Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Snapshot().Count)
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("req-1")
	if tr.PassID == 0 {
		t.Fatalf("trace must carry a pass id")
	}
	root := tr.Span()
	scan := root.Child("scan")
	scan.AddTime(3 * time.Millisecond)
	scan.AddBytes(1 << 20)
	scan.AddEvents(500)
	disp := root.Child("dispatch")
	disp.AddTime(2 * time.Millisecond)
	disp.AddStall(time.Millisecond)
	ev := disp.Child("eval:q1")
	ev.AddTime(time.Millisecond)
	// Child returns the existing span on re-entry.
	if root.Child("scan") != scan {
		t.Fatalf("Child must return the existing span by name")
	}
	tr.End()
	if tr.Root.Dur <= 0 {
		t.Fatalf("root span must cover wall time")
	}
	var sb strings.Builder
	tr.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{"pass #", "(req req-1)", "scan", "dispatch", "eval:q1", "stall=", "in=1.0MB", "out=500ev"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q in:\n%s", want, out)
		}
	}
}

func TestNextPassID(t *testing.T) {
	a, b := NextPassID(), NextPassID()
	if b <= a {
		t.Fatalf("pass ids must increase: %d then %d", a, b)
	}
}

// TestInstrumentsAllocFree pins the observation hot path: once an
// instrument is resolved from the registry, recording into it must not
// allocate — per-event code paths rely on it.
func TestInstrumentsAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", LatencyBuckets, ScaleNanos)
	tr := NewTrace("alloc")
	sp := tr.Span().Child("stage")
	observe := func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(1)
		h.Observe(125_000)
		sp.AddTime(time.Microsecond)
		sp.AddStall(time.Microsecond)
		sp.AddBytes(64)
		sp.AddEvents(2)
		sp.SetRingPeak(7)
	}
	observe() // warm: nothing to warm, but keep parity with the scan tests
	if allocs := testing.AllocsPerRun(100, observe); allocs > 0 {
		t.Fatalf("observation path allocates %.1f times per round, want 0", allocs)
	}
}
