package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// passID numbers every execution pass in the process, so logs, traces
// and metrics of one pass correlate. It only ever increases.
var passID atomic.Uint64

// NextPassID returns a fresh process-unique pass id.
func NextPassID() uint64 { return passID.Add(1) }

// Span is one node of a pass trace: a named stage with an accumulated
// duration, stall attribution and data-flow counters. Spans are written
// by the goroutine driving the stage they describe; cross-goroutine
// visibility is established by the pass's own synchronization (ring
// handoffs, feed barriers, the pass join), after which the finished
// tree is safe to read.
//
// Durations accumulate rather than derive from start/end pairs: a stage
// like "scan" runs as many slices interleaved with other stages on one
// goroutine, and the span carries the sum of its slices.
type Span struct {
	// Name identifies the stage ("pass", "scan", "eval:q1", ...).
	Name string `json:"name"`
	// Start is the span's first activity relative to the trace start.
	Start time.Duration `json:"start_ns"`
	// Dur is the accumulated active time of the stage.
	Dur time.Duration `json:"dur_ns"`
	// Stall is the portion of the stage spent blocked (ring full/empty,
	// backpressure gate) — attribution, not additional time.
	Stall time.Duration `json:"stall_ns,omitempty"`
	// BytesIn counts raw input bytes consumed by the stage; EventsOut
	// counts events it delivered downstream.
	BytesIn   int64 `json:"bytes_in,omitempty"`
	EventsOut int64 `json:"events_out,omitempty"`
	// RingPeak is the high-water occupancy of the ring the stage feeds
	// (pipelined passes only).
	RingPeak int `json:"ring_peak,omitempty"`
	// Children are sub-stages.
	Children []*Span `json:"children,omitempty"`

	t0 time.Time // trace epoch, for started-clock helpers
}

// Trace is one pass's span tree. A nil *Trace is the disabled tracer:
// every method no-ops and returns nil spans, so call sites never branch.
type Trace struct {
	// ID correlates the trace with logs (a request id, or empty).
	ID string `json:"id,omitempty"`
	// PassID is the process-unique pass number.
	PassID uint64 `json:"pass_id"`
	// Root is the whole-pass span; its Dur is the wall time.
	Root *Span `json:"root"`

	start time.Time
}

// NewTrace starts a trace whose root span covers the whole pass.
func NewTrace(id string) *Trace {
	now := time.Now()
	return &Trace{
		ID:     id,
		PassID: NextPassID(),
		Root:   &Span{Name: "pass", t0: now},
		start:  now,
	}
}

// End closes the root span at the current wall clock.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.Root.Dur = time.Since(t.start)
}

// Span returns the root span (nil on a nil trace).
func (t *Trace) Span() *Span {
	if t == nil {
		return nil
	}
	return t.Root
}

// Child adds (or returns the existing) child span with this name. The
// first activity timestamp is stamped on creation.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	c := &Span{Name: name, t0: s.t0}
	if !s.t0.IsZero() {
		c.Start = time.Since(s.t0)
	}
	s.Children = append(s.Children, c)
	return c
}

// AddTime accumulates active stage time.
func (s *Span) AddTime(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.Dur += d
}

// AddStall accumulates blocked time attribution.
func (s *Span) AddStall(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.Stall += d
}

// AddBytes accumulates raw input bytes consumed.
func (s *Span) AddBytes(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.BytesIn += n
}

// AddEvents accumulates events delivered downstream.
func (s *Span) AddEvents(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.EventsOut += n
}

// SetRingPeak records the stage's ring high-water mark.
func (s *Span) SetRingPeak(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.RingPeak = n
}

// WriteTree renders the trace as a human-readable span timeline, one
// span per line, indented by depth:
//
//	pass #42 (req 7f3a) 12.4ms
//	  scan          8.1ms  in=1.2MB out=48123ev
//	  dispatch      4.1ms  stall=0.3ms
//	    eval:q1.xq  2.2ms
func (t *Trace) WriteTree(w io.Writer) {
	if t == nil || t.Root == nil {
		return
	}
	head := fmt.Sprintf("pass #%d", t.PassID)
	if t.ID != "" {
		head += fmt.Sprintf(" (req %s)", t.ID)
	}
	fmt.Fprintf(w, "%s %s\n", head, fmtDur(t.Root.Dur))
	for _, c := range t.Root.Children {
		writeSpan(w, c, 1)
	}
}

func writeSpan(w io.Writer, s *Span, depth int) {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b, "%-18s %8s", s.Name, fmtDur(s.Dur))
	if s.Stall > 0 {
		fmt.Fprintf(&b, "  stall=%s", fmtDur(s.Stall))
	}
	if s.BytesIn > 0 {
		fmt.Fprintf(&b, "  in=%s", fmtBytes(s.BytesIn))
	}
	if s.EventsOut > 0 {
		fmt.Fprintf(&b, "  out=%dev", s.EventsOut)
	}
	if s.RingPeak > 0 {
		fmt.Fprintf(&b, "  ring-peak=%d", s.RingPeak)
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
	for _, c := range s.Children {
		writeSpan(w, c, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
