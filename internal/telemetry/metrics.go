// Package telemetry is the engine's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms with quantile snapshots), a hand-rolled
// Prometheus text-exposition encoder (prom.go) and a lightweight span
// tracer for per-pass stage attribution (trace.go).
//
// Two properties shape the design:
//
//   - Nil safety. Every instrument method — and every registration
//     method on *Registry — is a no-op on a nil receiver, so call sites
//     wire telemetry unconditionally and the disabled path costs a few
//     predictable nil branches instead of an interface dispatch or an
//     allocation. A component holds the instruments it needs as plain
//     pointers; when the process runs without telemetry, those pointers
//     are nil and the hot path never diverges.
//
//   - Allocation-free observation. Instruments are resolved by name
//     once, at wiring time (registration takes a mutex and a map
//     lookup); after that, Counter.Add, Gauge.Set and
//     Histogram.Observe are pure atomic operations on pre-existing
//     memory. Histograms use fixed int64 bucket bounds chosen at
//     registration, so Observe is a linear scan over a small bound
//     slice plus two atomic adds — no allocation, ever.
//
// Values are int64 in a native unit (nanoseconds, bytes, counts); the
// exposition scale registered with each instrument converts to the
// Prometheus base unit (seconds, bytes) only at scrape time.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a registered family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Label is one fixed name="value" pair of a series. Labels are bound at
// registration: there is no per-observation label lookup.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in the instrument's native int64 unit; an implicit +Inf bucket
// catches the overflow. Observation is allocation-free: a linear scan
// over the bounds (histograms here have at most a few dozen) and two
// atomic adds.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time view of a histogram with estimated
// quantiles (linear interpolation within the containing bucket, in the
// instrument's native unit).
type HistSnapshot struct {
	Count         int64
	Sum           int64
	P50, P95, P99 int64
}

// Snapshot returns the histogram's counters and estimated p50/p95/p99.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	n := len(h.bounds) + 1
	counts := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by linear
// interpolation inside the containing bucket. The +Inf bucket reports
// its lower bound (the largest finite bound).
func (h *Histogram) quantile(counts []int64, total int64, q float64) int64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		var lo, hi int64
		if i == 0 {
			lo, hi = 0, h.bounds[0]
		} else if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		} else {
			lo, hi = h.bounds[i-1], h.bounds[i]
		}
		frac := (rank - prev) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Common bucket ladders (native units: nanoseconds and bytes).
var (
	// LatencyBuckets spans 10µs to 10s, roughly logarithmic.
	LatencyBuckets = []int64{
		10_000, 50_000, 100_000, 500_000, // 10µs..500µs
		1_000_000, 5_000_000, 10_000_000, 50_000_000, // 1ms..50ms
		100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000, // 100ms..10s
	}
	// PassLatencyBuckets resolves shared-pass wall times. Small
	// documents finish a pass in well under a millisecond, so the
	// sub-ms range is covered at ~2× steps (25µs..800µs) instead of
	// LatencyBuckets' single 100µs..500µs..1ms span; above 1.6ms the
	// ladder coarsens toward the same 10s ceiling.
	PassLatencyBuckets = []int64{
		25_000, 50_000, 100_000, 200_000, 400_000, 800_000, // 25µs..800µs
		1_600_000, 3_200_000, 6_400_000, 12_800_000, // 1.6ms..12.8ms
		25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000, // 25ms..500ms
		1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000, // 1s..10s
	}
	// SizeBuckets spans 1 KiB to 1 GiB in powers of four.
	SizeBuckets = []int64{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
	}
	// OccupancyBuckets covers small integer occupancies (ring depths).
	OccupancyBuckets = []int64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
)

// Scale factors converting native units to Prometheus base units at
// exposition time.
const (
	ScaleNone    = 1.0
	ScaleNanos   = 1e-9 // nanoseconds → seconds
	ScaleMicros  = 1e-6 // microseconds → seconds
	ScaleNatural = ScaleNone
)

// series is one registered instrument.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gFn    func() int64
	cFn    func() int64
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	scale  float64
	series []*series
}

// Registry holds metric families and hands out instruments. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	// order preserves registration order for deterministic exposition of
	// equal-prefix names (exposition sorts by name anyway; order makes
	// family iteration stable under the lock).
	order []string
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: map[string]*family{}} }

// familyFor returns (creating if needed) the family for name, checking
// kind consistency.
func (r *Registry) familyFor(name, help string, kind Kind, scale float64) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, scale: scale}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// labelsEqual reports whether two bound label sets are identical.
func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// find returns the family's series with exactly these labels, or nil.
func (f *family) find(labels []Label) *series {
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	return nil
}

// Counter registers (or returns the existing) counter series name{labels}.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter, ScaleNone)
	if s := f.find(labels); s != nil {
		return s.c
	}
	s := &series{labels: labels, c: &Counter{}}
	f.series = append(f.series, s)
	return s.c
}

// CounterScaled is Counter with an exposition scale (e.g. ScaleNanos for
// a *_seconds_total series accumulated in nanoseconds).
func (r *Registry) CounterScaled(name, help string, scale float64, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter, scale)
	if s := f.find(labels); s != nil {
		return s.c
	}
	s := &series{labels: labels, c: &Counter{}}
	f.series = append(f.series, s)
	return s.c
}

// Gauge registers (or returns the existing) gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge, ScaleNone)
	if s := f.find(labels); s != nil {
		return s.g
	}
	s := &series{labels: labels, g: &Gauge{}}
	f.series = append(f.series, s)
	return s.g
}

// GaugeFunc registers a gauge series whose value is read by fn at scrape
// time (for snapshotting an external source, e.g. a buffer-manager
// ledger, without double accounting). Re-registering the same
// name{labels} replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge, ScaleNone)
	if s := f.find(labels); s != nil {
		s.gFn = fn
		return
	}
	f.series = append(f.series, &series{labels: labels, gFn: fn})
}

// CounterFunc registers a counter series read by fn at scrape time. The
// function must be monotone; scale converts at exposition (e.g.
// ScaleNanos for a nanosecond-accumulating stall clock).
func (r *Registry) CounterFunc(name, help string, scale float64, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter, scale)
	if s := f.find(labels); s != nil {
		s.cFn = fn
		return
	}
	f.series = append(f.series, &series{labels: labels, cFn: fn})
}

// Histogram registers (or returns the existing) histogram series with
// the given inclusive upper bounds in the instrument's native unit and
// the exposition scale converting that unit to the Prometheus base unit.
func (r *Registry) Histogram(name, help string, bounds []int64, scale float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindHistogram, scale)
	if s := f.find(labels); s != nil {
		return s.h
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	f.series = append(f.series, &series{labels: labels, h: h})
	return h
}

// snapshotFamilies returns a deterministic, alphabetically sorted copy
// of the registry's families for exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.fams[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelString renders {k="v",...} with Prometheus escaping ("" for an
// unlabeled series; extra appends additional pairs, used for le).
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatValue renders a scaled sample without trailing float noise for
// integral values.
func formatValue(v int64, scale float64) string {
	if scale == ScaleNone {
		return fmt.Sprintf("%d", v)
	}
	return trimFloat(float64(v) * scale)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
