package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// ContentType is the Prometheus text exposition content type served by
// a /metrics endpoint backed by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format v0.0.4: a # HELP and # TYPE line per family, then
// one sample line per series — counters and gauges directly, histograms
// as cumulative <name>_bucket{le="..."} series plus <name>_sum and
// <name>_count. Families are emitted in name order, so successive
// scrapes of an unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, kindString(f.kind))
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				v := s.c.Value()
				if s.cFn != nil {
					v = s.cFn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s.labels), formatValue(v, f.scale))
			case KindGauge:
				v := s.g.Value()
				if s.gFn != nil {
					v = s.gFn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s.labels), formatValue(v, f.scale))
			case KindHistogram:
				writeHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

func kindString(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// writeHistogram emits the cumulative bucket series, sum and count of
// one histogram. Bucket bounds are scaled to the base unit; the sample
// values are cumulative counts as the format requires.
func writeHistogram(w io.Writer, f *family, s *series) {
	h := s.h
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		le := formatBound(float64(b) * f.scale)
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, L("le", le)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, L("le", "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels), formatValue(h.sum.Load(), f.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels), h.count.Load())
}

// formatBound renders a scaled bucket bound (avoiding exponent noise for
// clean powers where possible).
func formatBound(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return trimFloat(f)
}
