package core

import (
	"fmt"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xquery"
)

// SafetyError reports a FluX query that is unsafe for a DTD (paper §2): a
// handler body dereferences a path that may still be encountered on the
// stream — or whose final item may still be incomplete — when the handler
// fires.
type SafetyError struct {
	Scope string // stream variable
	Msg   string
}

func (e *SafetyError) Error() string {
	return fmt.Sprintf("flux query unsafe in scope $%s: %s", e.Scope, e.Msg)
}

// CheckSafety verifies that q is safe for its DTD. The scheduler produces
// safe queries by construction; this checker validates hand-written FluX
// and serves as an executable definition of the paper's safety notion.
func CheckSafety(q *Query) error {
	return checkExpr(q.Root, q.DTD)
}

func checkExpr(e Expr, d *dtd.DTD) error {
	switch t := e.(type) {
	case ProcessStream:
		return checkPS(t, d)
	case Element:
		for _, c := range t.Children {
			if err := checkExpr(c, d); err != nil {
				return err
			}
		}
	case SeqF:
		for _, c := range t.Items {
			if err := checkExpr(c, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkPS(ps ProcessStream, d *dtd.DTD) error {
	elem := d.Element(ps.ElemName)
	if elem == nil {
		return &SafetyError{Scope: ps.Var, Msg: fmt.Sprintf("unknown element type %q", ps.ElemName)}
	}
	for _, h := range ps.Handlers {
		switch h.Kind {
		case OnElement:
			// The child label must be possible at all, and the body is
			// checked in the child's scope.
			if d.Cardinality(ps.ElemName, h.Label) == dtd.CardNone && !elem.IsAny() {
				return &SafetyError{Scope: ps.Var, Msg: fmt.Sprintf("handler 'on %s' can never fire: no %s child under %s", h.Label, h.Label, ps.ElemName)}
			}
			if err := checkExpr(h.Body, d); err != nil {
				return err
			}
		case OnFirst:
			// Every scope-level label dereferenced by the body must be
			// past-safe for the handler's firing condition.
			deps := handlerDeps(h.Body, ps.Var)
			if deps.all || deps.text {
				return &SafetyError{Scope: ps.Var, Msg: fmt.Sprintf("on-first past(%v) body reads text or whole-element content, whose completion the DTD cannot witness before the end tag", h.Past)}
			}
			for _, l := range deps.sorted() {
				if !d.PastImplies(ps.ElemName, h.Past, l) {
					return &SafetyError{Scope: ps.Var, Msg: fmt.Sprintf("on-first past(%v) body dereferences $%s/%s, but %s children may still arrive (or be incomplete) when the handler fires", h.Past, ps.Var, l, l)}
				}
			}
			if err := checkExpr(h.Body, d); err != nil {
				return err
			}
		case OnEnd:
			// Fires at the closing tag: all buffers complete, trivially
			// safe. Nested structures are still checked.
			if err := checkExpr(h.Body, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// handlerDeps extracts the scope dependencies of a handler body,
// descending through FluX structure into embedded XQuery.
func handlerDeps(e Expr, scopeVar string) *depSet {
	d := newDepSet()
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case XQ:
			sub := scopeDeps(t.E, scopeVar)
			for l := range sub.labels {
				d.addLabel(l)
			}
			d.text = d.text || sub.text
			d.all = d.all || sub.all
		case Element:
			for _, c := range t.Children {
				walk(c)
			}
		case SeqF:
			for _, c := range t.Items {
				walk(c)
			}
		case CopyVar:
			if t.Var == scopeVar {
				d.all = true
			}
		case AtomicVar:
			if t.Var == scopeVar {
				switch t.Step.Axis {
				case xquery.TextAxis:
					d.text = true
				}
			}
		case ProcessStream:
			// A nested stream over a different variable cannot read this
			// scope (scheduler invariant); nothing to collect.
		}
	}
	walk(e)
	return d
}
