// Package core implements the paper's primary contribution: the FluX
// query language (paper §2) and the schema-based scheduling algorithm
// that rewrites normalized, optimized XQuery into FluX (paper §3.1, third
// step), together with the safety checker for FluX queries under a DTD.
//
// FluX extends XQuery with the process-stream construct:
//
//	process-stream $x:
//	    on a as $y return e;            -- fires per a-child, streaming
//	    on-first past(S) return e;      -- fires once, when no child
//	                                    --   labeled in S can occur anymore
//	    on-end return e                 -- fires at the closing tag
//
// on-end is the engine's explicit spelling of the deferred case: an
// on-first handler whose firing position under the paper's XSAX semantics
// would coincide with the start of a child the handler itself references
// (and which would therefore be unsafe) is scheduled at the closing tag
// instead, where every buffer is complete.
package core

import (
	"fmt"
	"sort"
	"strings"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xquery"
)

// Expr is a FluX expression.
type Expr interface {
	fluxNode()
	String() string
}

// XQ embeds a normalized XQuery expression that is evaluated over memory
// buffers when its enclosing handler fires.
type XQ struct{ E xquery.Expr }

// Element is an output element constructor whose children are FluX
// expressions.
type Element struct {
	Name     string
	Attrs    []xquery.Attr
	Children []Expr
}

// TextLit is constant character data output.
type TextLit struct{ Data string }

// CopyVar streams a verbatim copy of the element currently bound to Var
// to the output (the FluX body {$t}).
type CopyVar struct{ Var string }

// AtomicVar streams the atomized value of the current element: its text
// content ({$t/text()}) or an attribute ({$t/@a}).
type AtomicVar struct {
	Var  string
	Step xquery.Step
}

// SeqF concatenates FluX expressions.
type SeqF struct{ Items []Expr }

// ProcessStream traverses the children of the element bound to Var from
// left to right, firing handlers (paper §2).
type ProcessStream struct {
	Var      string
	ElemName string // the DTD element type of Var
	Handlers []Handler
}

// HandlerKind discriminates process-stream handlers.
type HandlerKind uint8

// Handler kinds.
const (
	// OnElement fires on each child with the given label.
	OnElement HandlerKind = iota
	// OnFirst fires once, as soon as the DTD implies that no child
	// labeled in Past can occur anymore.
	OnFirst
	// OnEnd fires once at the element's closing tag.
	OnEnd
)

// Handler is one process-stream handler.
type Handler struct {
	Kind  HandlerKind
	Label string   // OnElement: the child label
	Bind  string   // OnElement: the variable bound to the child
	Past  []string // OnFirst: the past set, sorted
	Body  Expr
}

func (XQ) fluxNode()            {}
func (Element) fluxNode()       {}
func (TextLit) fluxNode()       {}
func (CopyVar) fluxNode()       {}
func (AtomicVar) fluxNode()     {}
func (SeqF) fluxNode()          {}
func (ProcessStream) fluxNode() {}

func (e XQ) String() string      { return e.E.String() }
func (e TextLit) String() string { return fmt.Sprintf("text { %q }", e.Data) }
func (e CopyVar) String() string { return "{$" + e.Var + "}" }

func (e AtomicVar) String() string {
	return "{$" + e.Var + "/" + e.Step.String() + "}"
}

func (e SeqF) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}

func (e Element) String() string {
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
	}
	if len(e.Children) == 0 {
		b.WriteString("/>")
		return b.String()
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		b.WriteString(" { ")
		b.WriteString(c.String())
		b.WriteString(" }")
	}
	b.WriteString(" </")
	b.WriteString(e.Name)
	b.WriteByte('>')
	return b.String()
}

func (e ProcessStream) String() string {
	var b strings.Builder
	b.WriteString("process-stream $")
	b.WriteString(e.Var)
	b.WriteString(":")
	for i, h := range e.Handlers {
		if i > 0 {
			b.WriteString(";")
		}
		b.WriteString(" ")
		b.WriteString(h.String())
	}
	return b.String()
}

func (h Handler) String() string {
	switch h.Kind {
	case OnElement:
		return fmt.Sprintf("on %s as $%s return { %s }", h.Label, h.Bind, h.Body)
	case OnFirst:
		return fmt.Sprintf("on-first past(%s) return { %s }", strings.Join(h.Past, ","), h.Body)
	default:
		return fmt.Sprintf("on-end return { %s }", h.Body)
	}
}

// Query is a complete FluX query scheduled for a specific DTD.
type Query struct {
	Root Expr
	DTD  *dtd.DTD
	// Trace describes the scheduling decisions, for explain output.
	Trace []string
}

func (q *Query) String() string {
	var b strings.Builder
	writeIndented(&b, q.Root, 0)
	return b.String()
}

// writeIndented pretty-prints FluX with indentation for readability.
func writeIndented(b *strings.Builder, e Expr, depth int) {
	ind := strings.Repeat("  ", depth)
	switch t := e.(type) {
	case ProcessStream:
		fmt.Fprintf(b, "%sprocess-stream $%s:\n", ind, t.Var)
		for i, h := range t.Handlers {
			term := ";"
			if i == len(t.Handlers)-1 {
				term = ""
			}
			switch h.Kind {
			case OnElement:
				fmt.Fprintf(b, "%s  on %s as $%s return {\n", ind, h.Label, h.Bind)
			case OnFirst:
				fmt.Fprintf(b, "%s  on-first past(%s) return {\n", ind, strings.Join(h.Past, ","))
			default:
				fmt.Fprintf(b, "%s  on-end return {\n", ind)
			}
			writeIndented(b, h.Body, depth+2)
			fmt.Fprintf(b, "%s  }%s\n", ind, term)
		}
	case Element:
		fmt.Fprintf(b, "%s<%s", ind, t.Name)
		for _, a := range t.Attrs {
			fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
		}
		if len(t.Children) == 0 {
			b.WriteString("/>\n")
			return
		}
		b.WriteString(">\n")
		for _, c := range t.Children {
			writeIndented(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s</%s>\n", ind, t.Name)
	case SeqF:
		for _, c := range t.Items {
			writeIndented(b, c, depth)
		}
	default:
		fmt.Fprintf(b, "%s%s\n", ind, e.String())
	}
}

// sortedSet returns a sorted, deduplicated copy of labels.
func sortedSet(labels []string) []string {
	m := make(map[string]bool, len(labels))
	for _, l := range labels {
		m[l] = true
	}
	out := make([]string, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
