package core

import (
	"fmt"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xquery"
)

// ScheduleError reports a query that cannot be scheduled.
type ScheduleError struct{ Msg string }

func (e *ScheduleError) Error() string { return "schedule: " + e.Msg }

// Schedule rewrites a normalized (and typically pre-optimized) XQuery
// expression into a FluX query for the given DTD (paper §3.1, third
// step). The algorithm walks the query top-down, maintaining for every
// stream scope the set of child labels consumed so far; a subexpression
// becomes
//
//   - an "on a" handler (pure streaming) when it is a loop over $x/a whose
//     body only reads the bound child, and the DTD's order constraints
//     guarantee that everything scheduled before it arrives before any a;
//   - an "on-first past(S)" handler otherwise, with S the union of its own
//     dependencies and those of all earlier handlers — it evaluates over
//     memory buffers when the DTD implies no S-child can arrive anymore;
//   - an "on-end" handler when the on-first firing position would be
//     unsafe (paper §2's safety notion) — e.g. dependencies on text
//     content, wildcards, or a past set whose condition can first hold at
//     the start tag of a referenced child.
func Schedule(e xquery.Expr, d *dtd.DTD) (*Query, error) {
	s := &scheduler{d: d}
	root, err := s.scheduleBody(e, xquery.RootVar, dtd.DocElem)
	if err != nil {
		return nil, err
	}
	return &Query{Root: root, DTD: d, Trace: s.trace}, nil
}

type scheduler struct {
	d     *dtd.DTD
	trace []string
}

func (s *scheduler) logf(format string, args ...any) {
	s.trace = append(s.trace, fmt.Sprintf(format, args...))
}

// scheduleBody schedules an expression whose free variable is scopeVar,
// bound to an element of type scopeElem.
func (s *scheduler) scheduleBody(e xquery.Expr, scopeVar, scopeElem string) (Expr, error) {
	if !refsOnly(e, scopeVar) {
		return nil, &ScheduleError{Msg: fmt.Sprintf("expression references variables other than $%s: %s", scopeVar, e)}
	}
	if !hasScopeDeps(e, scopeVar) {
		return constExpr(e), nil
	}
	switch t := e.(type) {
	case xquery.Path:
		// A bare copy or atomic emission of the scope element itself.
		if t.Var == scopeVar {
			switch {
			case len(t.Steps) == 0:
				return CopyVar{Var: scopeVar}, nil
			case len(t.Steps) == 1 && t.Steps[0].Axis != xquery.Child:
				return AtomicVar{Var: scopeVar, Step: t.Steps[0]}, nil
			}
		}
	case xquery.Elem:
		// A constructor wrapping the scope consumption keeps its shape.
		inner, err := s.scheduleBody(seqOf(t.Children), scopeVar, scopeElem)
		if err != nil {
			return nil, err
		}
		return Element{Name: t.Name, Attrs: t.Attrs, Children: []Expr{inner}}, nil
	}
	// General case: one process-stream over the scope variable.
	units, err := s.flatten(e, scopeVar)
	if err != nil {
		return nil, err
	}
	handlers, err := s.scheduleUnits(units, scopeVar, scopeElem)
	if err != nil {
		return nil, err
	}
	return ProcessStream{Var: scopeVar, ElemName: scopeElem, Handlers: handlers}, nil
}

func seqOf(items []xquery.Expr) xquery.Expr {
	switch len(items) {
	case 0:
		return xquery.EmptySeq{}
	case 1:
		return items[0]
	default:
		return xquery.Seq{Items: items}
	}
}

// unit is one schedulable piece of a scope body, in output order.
type unit struct {
	// Exactly one of const_/dep is set; open/close mark constructor
	// fragments around dependent content.
	openName  string
	openAttrs []xquery.Attr
	close_    string
	const_    Expr
	dep       xquery.Expr
}

// flatten decomposes a scope body into schedulable units. Constructors
// containing scope-dependent expressions are split into open-tag,
// content, close-tag units so that one stream pass can interleave their
// output correctly.
func (s *scheduler) flatten(e xquery.Expr, scopeVar string) ([]unit, error) {
	switch t := e.(type) {
	case nil:
		return nil, nil
	case xquery.EmptySeq:
		return nil, nil
	case xquery.Seq:
		var units []unit
		for _, c := range t.Items {
			u, err := s.flatten(c, scopeVar)
			if err != nil {
				return nil, err
			}
			units = append(units, u...)
		}
		return units, nil
	case xquery.Elem:
		if !hasScopeDeps(t, scopeVar) {
			return []unit{{const_: constExpr(t)}}, nil
		}
		units := []unit{{openName: t.Name, openAttrs: t.Attrs}}
		for _, c := range t.Children {
			u, err := s.flatten(c, scopeVar)
			if err != nil {
				return nil, err
			}
			units = append(units, u...)
		}
		return append(units, unit{close_: t.Name}), nil
	default:
		if !hasScopeDeps(e, scopeVar) {
			return []unit{{const_: constExpr(e)}}, nil
		}
		return []unit{{dep: e}}, nil
	}
}

// scheduleUnits is the heart of the algorithm: it assigns each unit to a
// handler, maintaining the invariant that handler firing order equals
// output order.
func (s *scheduler) scheduleUnits(units []unit, scopeVar, scopeElem string) ([]Handler, error) {
	var handlers []Handler
	var pastSoFar []string
	streamed := map[string]bool{} // labels consumed by on-element handlers
	deferred := false             // once true, everything goes to on-end

	constHandler := func(body Expr) {
		if deferred {
			handlers = append(handlers, Handler{Kind: OnEnd, Body: body})
			return
		}
		handlers = append(handlers, Handler{Kind: OnFirst, Past: sortedSet(pastSoFar), Body: body})
	}

	for _, u := range units {
		switch {
		case u.openName != "":
			constHandler(OpenTag{Name: u.openName, Attrs: u.openAttrs})
		case u.close_ != "":
			constHandler(CloseTag{Name: u.close_})
		case u.const_ != nil:
			constHandler(u.const_)
		default:
			e := u.dep
			d := scopeDeps(e, scopeVar)

			// Streaming candidate: for $y in $x/a where the body reads
			// only $y.
			if f, ok := e.(xquery.For); ok && !deferred && !d.text && !d.all {
				b := f.Bindings[0]
				label := b.In.Steps[0].Name
				if b.In.Var == scopeVar && label != "*" && refsOnly(f.Return, b.Var) && !streamed[label] {
					ok := true
					for _, prev := range pastSoFar {
						if !s.d.OrderBefore(scopeElem, prev, label) {
							s.logf("scope $%s: cannot stream 'on %s' — no order constraint %s < %s", scopeVar, label, prev, label)
							ok = false
							break
						}
					}
					if ok {
						body, err := s.scheduleBody(f.Return, b.Var, label)
						if err != nil {
							return nil, err
						}
						s.logf("scope $%s: streaming handler 'on %s as $%s'", scopeVar, label, b.Var)
						handlers = append(handlers, Handler{Kind: OnElement, Label: label, Bind: b.Var, Body: body})
						streamed[label] = true
						pastSoFar = append(pastSoFar, label)
						continue
					}
				}
			}

			// Buffered: on-first past(pastSoFar ∪ deps), or on-end if that
			// firing position is unsafe.
			set := sortedSet(append(append([]string{}, pastSoFar...), d.sorted()...))
			unsafe := deferred || d.text || d.all
			if !unsafe {
				for _, l := range d.sorted() {
					if !s.d.PastImplies(scopeElem, set, l) {
						s.logf("scope $%s: past(%v) unsafe for referenced label %s — deferring to on-end", scopeVar, set, l)
						unsafe = true
						break
					}
				}
			}
			if unsafe {
				handlers = append(handlers, Handler{Kind: OnEnd, Body: XQ{E: e}})
				deferred = true
			} else {
				s.logf("scope $%s: buffered handler 'on-first past(%v)'", scopeVar, set)
				handlers = append(handlers, Handler{Kind: OnFirst, Past: set, Body: XQ{E: e}})
			}
			pastSoFar = append(pastSoFar, d.sorted()...)
		}
	}
	return handlers, nil
}

// openTag and closeTag are internal handler bodies emitting constructor
// fragments when a constructor spans multiple handlers.
type OpenTag struct {
	Name  string
	Attrs []xquery.Attr
}

type CloseTag struct{ Name string }

func (OpenTag) fluxNode()  {}
func (CloseTag) fluxNode() {}

func (t OpenTag) String() string  { return "<" + t.Name + ">…" }
func (t CloseTag) String() string { return "…</" + t.Name + ">" }

// constExpr converts a scope-independent XQuery expression to FluX.
func constExpr(e xquery.Expr) Expr {
	switch t := e.(type) {
	case xquery.Text:
		return TextLit{Data: t.Data}
	case xquery.Str:
		return TextLit{Data: t.Value}
	case xquery.Num:
		return TextLit{Data: t.Lit}
	case xquery.EmptySeq:
		return SeqF{}
	case xquery.Seq:
		items := make([]Expr, len(t.Items))
		for i, c := range t.Items {
			items[i] = constExpr(c)
		}
		return SeqF{Items: items}
	case xquery.Elem:
		out := Element{Name: t.Name, Attrs: t.Attrs}
		for _, c := range t.Children {
			out.Children = append(out.Children, constExpr(c))
		}
		return out
	default:
		// Residual constant expressions (e.g. concat of literals) are
		// evaluated by the buffer evaluator with an empty environment.
		return XQ{E: e}
	}
}
