package core

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

// TestScheduleRejectsForeignVariables: expressions referencing unbound
// variables cannot be scheduled.
func TestScheduleRejectsForeignVariables(t *testing.T) {
	d := dtd.MustParse(weakBib)
	n := nf.MustNormalize(xquery.MustParse(`<r>{ for $b in $elsewhere/bib/book return { $b } }</r>`))
	if _, err := Schedule(n, d); err == nil {
		t.Fatal("foreign root variable accepted")
	}
}

// TestConstExprConversion: constant queries become pure FluX constants,
// with residual calls falling back to XQ.
func TestConstExprConversion(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the printed FluX
	}{
		{`<a x="1">text<b/></a>`, `<a x="1">`},
		{`"just a string"`, "just a string"},
		{`42`, "42"},
		{`(<a/>, <b/>)`, "<a/>"},
		{`concat("x", "y")`, `concat("x", "y")`},
	}
	d := dtd.MustParse(weakBib)
	for _, c := range cases {
		n := nf.MustNormalize(xquery.MustParse(c.src))
		q, err := Schedule(n, d)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if !strings.Contains(q.String(), c.want) {
			t.Errorf("%s: printed flux missing %q:\n%s", c.src, c.want, q)
		}
		if strings.Contains(q.String(), "process-stream") {
			t.Errorf("%s: constant query needs no stream:\n%s", c.src, q)
		}
	}
}

// TestHandlerDepsThroughStructures: deps are found through Element, SeqF
// and CopyVar/AtomicVar bodies.
func TestHandlerDepsThroughStructures(t *testing.T) {
	xq := XQ{E: xquery.MustParse(`for $a in $b/author return { $a }`)}
	body := Element{Name: "wrap", Children: []Expr{SeqF{Items: []Expr{xq}}}}
	deps := handlerDeps(body, "b")
	if !deps.labels["author"] {
		t.Errorf("author dep lost: %+v", deps)
	}
	cv := handlerDeps(CopyVar{Var: "b"}, "b")
	if !cv.all {
		t.Error("whole-element copy must set all")
	}
	av := handlerDeps(AtomicVar{Var: "b", Step: xquery.Step{Axis: xquery.TextAxis}}, "b")
	if !av.text {
		t.Error("text() atomic must set text")
	}
	other := handlerDeps(CopyVar{Var: "z"}, "b")
	if !other.empty() {
		t.Error("foreign var copy is not a scope dep")
	}
}

// TestSafetyChecksNestedStructures: unsafe handlers nested below elements
// and sequences are still found.
func TestSafetyChecksNestedStructures(t *testing.T) {
	d := dtd.MustParse(mixedOrderBib)
	unsafe := Handler{
		Kind: OnFirst,
		Past: []string{"author", "title"},
		Body: XQ{E: xquery.MustParse(`for $p in $b/price return { $p }`)},
	}
	q := &Query{DTD: d, Root: SeqF{Items: []Expr{
		Element{Name: "wrap", Children: []Expr{
			ProcessStream{Var: "b", ElemName: "book", Handlers: []Handler{unsafe}},
		}},
	}}}
	if err := CheckSafety(q); err == nil {
		t.Fatal("nested unsafe handler accepted")
	}
	// on-end with the same body is fine.
	q2 := &Query{DTD: d, Root: ProcessStream{Var: "b", ElemName: "book", Handlers: []Handler{
		{Kind: OnEnd, Body: unsafe.Body},
	}}}
	if err := CheckSafety(q2); err != nil {
		t.Fatalf("on-end wrongly rejected: %v", err)
	}
}

// TestSafetyRejectsWholeCopiesInOnFirst: bare {$x} inside on-first cannot
// be proven complete before the end tag.
func TestSafetyRejectsWholeCopiesInOnFirst(t *testing.T) {
	d := dtd.MustParse(weakBib)
	q := &Query{DTD: d, Root: ProcessStream{Var: "b", ElemName: "book", Handlers: []Handler{
		{Kind: OnFirst, Past: []string{"author", "title"}, Body: CopyVar{Var: "b"}},
	}}}
	if err := CheckSafety(q); err == nil {
		t.Fatal("whole-element copy in on-first accepted")
	}
}

// TestSafetyUnknownElementType: a PS over an undeclared element fails.
func TestSafetyUnknownElementType(t *testing.T) {
	d := dtd.MustParse(weakBib)
	q := &Query{DTD: d, Root: ProcessStream{Var: "x", ElemName: "ghost"}}
	if err := CheckSafety(q); err == nil {
		t.Fatal("ghost element accepted")
	}
}

// TestPrintingBranches: printer covers atomic vars, empty elements and
// handler punctuation.
func TestPrintingBranches(t *testing.T) {
	ps := ProcessStream{Var: "b", ElemName: "book", Handlers: []Handler{
		{Kind: OnElement, Label: "title", Bind: "t", Body: AtomicVar{Var: "t", Step: xquery.Step{Axis: xquery.TextAxis}}},
		{Kind: OnFirst, Past: []string{"author"}, Body: TextLit{Data: "sep"}},
		{Kind: OnEnd, Body: Element{Name: "empty"}},
	}}
	s := (&Query{Root: ps}).String()
	for _, want := range []string{"{$t/text()}", "on-first past(author)", "on-end return", "<empty/>"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed flux missing %q:\n%s", want, s)
		}
	}
	// One-line form exercises Handler.String and Element.String.
	flat := ps.String()
	if !strings.Contains(flat, "on title as $t") {
		t.Errorf("flat form: %s", flat)
	}
	el := Element{Name: "r", Attrs: []xquery.Attr{{Name: "k", Value: "v"}}, Children: []Expr{TextLit{Data: "x"}}}
	if !strings.Contains(el.String(), `k="v"`) {
		t.Errorf("element attrs lost: %s", el)
	}
}

// TestOpenCloseTagStrings: the emit markers render recognizably.
func TestOpenCloseTagStrings(t *testing.T) {
	if (OpenTag{Name: "s"}).String() == "" || (CloseTag{Name: "s"}).String() == "" {
		t.Error("empty marker strings")
	}
}

// TestMultiConstructorSiblingsSchedule: two dependent sibling
// constructors within one scope force open/close emission handlers but
// still schedule and check safely.
func TestMultiConstructorSiblingsSchedule(t *testing.T) {
	src := `<out>{ for $b in $ROOT/bib/book return <r><first>{ $b/title }</first><second>{ $b/author }</second></r> }</out>`
	q := schedule(t, src, weakBib)
	s := q.String()
	if !strings.Contains(s, "…") { // emit markers present
		t.Logf("note: no emit markers; scheduler may have nested structurally:\n%s", s)
	}
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no PS over $b:\n%s", q)
	}
	if len(book.Handlers) < 4 {
		t.Errorf("expected open/stream/close handler mix, got %d handlers:\n%s", len(book.Handlers), q)
	}
}
