package core

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const mixedOrderBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book ((title|author)*,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

// The paper's running query (XMP Q3).
const q3 = `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`

func schedule(t *testing.T, src, dtdSrc string) *Query {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	q, err := Schedule(n, d)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := CheckSafety(q); err != nil {
		t.Fatalf("scheduler produced unsafe query: %v\n%s", err, q)
	}
	return q
}

// findPS locates the process-stream over the given variable.
func findPS(e Expr, v string) *ProcessStream {
	switch t := e.(type) {
	case ProcessStream:
		if t.Var == v {
			cp := t
			return &cp
		}
		for _, h := range t.Handlers {
			if ps := findPS(h.Body, v); ps != nil {
				return ps
			}
		}
	case Element:
		for _, c := range t.Children {
			if ps := findPS(c, v); ps != nil {
				return ps
			}
		}
	case SeqF:
		for _, c := range t.Items {
			if ps := findPS(c, v); ps != nil {
				return ps
			}
		}
	}
	return nil
}

// TestQ3WeakDTD reproduces the paper's §2 scheduling: under the weak DTD,
// titles stream and authors are buffered behind on-first past(title,author).
func TestQ3WeakDTD(t *testing.T) {
	q := schedule(t, q3, weakBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no process-stream over $b:\n%s", q)
	}
	var onTitle, onFirstAuthor bool
	for _, h := range book.Handlers {
		if h.Kind == OnElement && h.Label == "title" {
			onTitle = true
			if _, ok := h.Body.(CopyVar); !ok {
				t.Errorf("title handler should stream-copy, got %s", h.Body)
			}
		}
		if h.Kind == OnFirst && len(h.Past) == 2 && h.Past[0] == "author" && h.Past[1] == "title" {
			onFirstAuthor = true
			if _, ok := h.Body.(XQ); !ok {
				t.Errorf("author handler should be buffered XQuery, got %T", h.Body)
			}
		}
		if h.Kind == OnElement && h.Label == "author" {
			t.Error("author must NOT stream under the weak DTD")
		}
	}
	if !onTitle {
		t.Errorf("missing streaming title handler:\n%s", q)
	}
	if !onFirstAuthor {
		t.Errorf("missing on-first past(author,title) handler:\n%s", q)
	}
}

// TestQ3StrongDTD reproduces the paper's second FluX query: with the
// Figure 1 DTD both titles and authors stream; no buffering handler
// remains (except constant emissions).
func TestQ3StrongDTD(t *testing.T) {
	q := schedule(t, q3, strongBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no process-stream over $b:\n%s", q)
	}
	var onTitle, onAuthor bool
	for _, h := range book.Handlers {
		if h.Kind == OnElement && h.Label == "title" {
			onTitle = true
		}
		if h.Kind == OnElement && h.Label == "author" {
			onAuthor = true
		}
		if h.Kind == OnFirst {
			if _, isXQ := h.Body.(XQ); isXQ {
				t.Errorf("no buffered XQuery expected under strong DTD, got %s", h)
			}
		}
		if h.Kind == OnEnd {
			t.Errorf("no on-end expected under strong DTD, got %s", h)
		}
	}
	if !onTitle || !onAuthor {
		t.Errorf("both title and author must stream:\n%s", q)
	}
}

// TestSchedulerOrderWithinStrongDTD: swapping output order (authors before
// titles) must force buffering of authors... no — authors come later in
// the stream, so outputting authors first forces buffering of TITLES? No:
// authors-first output under title-before-author stream order means the
// author part can stream only if nothing precedes it; titles output after
// authors requires titles buffered. But titles arrive BEFORE authors, so
// titles must be buffered while authors stream... which order constraints
// cannot allow either: streaming authors (first expr) is fine; titles
// buffered with past(author,title).
func TestSchedulerSwappedOutput(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <result>{ $b/author }{ $b/title }</result> }</results>`
	q := schedule(t, src, strongBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no process-stream over $b:\n%s", q)
	}
	var streamAuthor, bufferedTitle bool
	for _, h := range book.Handlers {
		if h.Kind == OnElement && h.Label == "author" {
			streamAuthor = true
		}
		if h.Kind != OnElement {
			if deps := handlerDeps(h.Body, "b"); deps.labels["title"] {
				bufferedTitle = true
			}
		}
		if h.Kind == OnElement && h.Label == "title" {
			t.Errorf("title cannot stream when its output follows authors")
		}
	}
	if !streamAuthor {
		t.Errorf("author should stream (first in output order):\n%s", q)
	}
	if !bufferedTitle {
		t.Errorf("title should be buffered:\n%s", q)
	}
}

// TestPaperUnsafeExample: hand-built FluX with $book/price inside
// on-first past(title,author) under ((title|author)*,price) must be
// rejected by the safety checker (paper §2).
func TestPaperUnsafeExample(t *testing.T) {
	d := dtd.MustParse(mixedOrderBib)
	priceLoop := xquery.MustParse(`for $p in $b/price return { $p }`)
	q := &Query{
		DTD: d,
		Root: Element{Name: "results", Children: []Expr{
			ProcessStream{Var: "ROOT", ElemName: dtd.DocElem, Handlers: []Handler{
				{Kind: OnElement, Label: "bib", Bind: "bib", Body: ProcessStream{
					Var: "bib", ElemName: "bib", Handlers: []Handler{
						{Kind: OnElement, Label: "book", Bind: "b", Body: ProcessStream{
							Var: "b", ElemName: "book", Handlers: []Handler{
								{Kind: OnElement, Label: "title", Bind: "t", Body: CopyVar{Var: "t"}},
								{Kind: OnFirst, Past: []string{"author", "title"}, Body: XQ{E: priceLoop}},
							},
						}},
					},
				}},
			}},
		}},
	}
	err := CheckSafety(q)
	if err == nil {
		t.Fatal("paper's unsafe example accepted")
	}
	if !strings.Contains(err.Error(), "price") {
		t.Errorf("error should name the unsafe path: %v", err)
	}
	// The safe variant (authors instead of price) must pass.
	authorLoop := xquery.MustParse(`for $a in $b/author return { $a }`)
	q2 := *q
	q2.Root = replaceOnFirstBody(q.Root, XQ{E: authorLoop})
	if err := CheckSafety(&q2); err != nil {
		t.Errorf("safe variant rejected: %v", err)
	}
}

func replaceOnFirstBody(e Expr, body Expr) Expr {
	switch t := e.(type) {
	case Element:
		out := t
		out.Children = make([]Expr, len(t.Children))
		for i, c := range t.Children {
			out.Children[i] = replaceOnFirstBody(c, body)
		}
		return out
	case ProcessStream:
		out := t
		out.Handlers = make([]Handler, len(t.Handlers))
		for i, h := range t.Handlers {
			if h.Kind == OnFirst {
				h.Body = body
			} else {
				h.Body = replaceOnFirstBody(h.Body, body)
			}
			out.Handlers[i] = h
		}
		return out
	default:
		return e
	}
}

// TestMixedOrderDTDPriceStreams: under ((title|author)*,price), the order
// constraints title < price and author < price let a price copy stream
// even though titles/authors interleave.
func TestMixedOrderDTDPriceStreams(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/price }</result> }</results>`
	q := schedule(t, src, mixedOrderBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no PS over $b:\n%s", q)
	}
	foundStream := false
	for _, h := range book.Handlers {
		if h.Kind == OnElement && h.Label == "price" {
			foundStream = true
		}
	}
	if !foundStream {
		t.Errorf("price should stream (ordered after everything):\n%s", q)
	}
}

// TestMixedOrderDTDPriceCondDefersToEnd: a conditional over $b/price
// cannot use on-first — past(title,price) first holds at the price start
// tag, where the price buffer is still incomplete (the paper's unsafety) —
// so the scheduler defers it to on-end.
func TestMixedOrderDTDPriceCondDefersToEnd(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ if ($b/price = "9") then <cheap/> else () }</result> }</results>`
	q := schedule(t, src, mixedOrderBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no PS over $b:\n%s", q)
	}
	foundEnd := false
	for _, h := range book.Handlers {
		if deps := handlerDeps(h.Body, "b"); deps.labels["price"] {
			if h.Kind != OnEnd {
				t.Errorf("price expression must be on-end, got %s", h)
			}
			foundEnd = true
		}
	}
	if !foundEnd {
		t.Errorf("no handler for price:\n%s", q)
	}
}

// TestJoinBuffersAtCommonScope: a join between two top-level branches
// buffers at the scope owning both paths.
func TestJoinBuffersAtCommonScope(t *testing.T) {
	d := `
<!ELEMENT store (bib,reviews)>
<!ELEMENT bib (book)*>
<!ELEMENT book (title)>
<!ELEMENT reviews (entry)*>
<!ELEMENT entry (title,rating)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT rating (#PCDATA)>
`
	src := `<out>{ for $b in $ROOT/store/bib/book, $e in $ROOT/store/reviews/entry where $b/title = $e/title return <hit>{ $e/rating }</hit> }</out>`
	q := schedule(t, src, d)
	// The for over $ROOT/store cannot stream into book scope because its
	// body references $ROOT/store/reviews; the store-level expression is
	// buffered.
	store := findPS(q.Root, "v1") // fresh var over store — naming internal
	_ = store
	s := q.String()
	if !strings.Contains(s, "on-first") && !strings.Contains(s, "on-end") {
		t.Errorf("join must introduce a buffered handler:\n%s", s)
	}
}

// TestUnsatisfiableOnElementRejected: a handler on a label that cannot
// occur is flagged by the safety checker.
func TestUnsatisfiableOnElementRejected(t *testing.T) {
	d := dtd.MustParse(weakBib)
	q := &Query{DTD: d, Root: ProcessStream{Var: "ROOT", ElemName: dtd.DocElem, Handlers: []Handler{
		{Kind: OnElement, Label: "magazine", Bind: "m", Body: CopyVar{Var: "m"}},
	}}}
	if err := CheckSafety(q); err == nil {
		t.Error("handler on impossible label accepted")
	}
}

// TestFluxPrinting: the paper-style rendering mentions the constructs.
func TestFluxPrinting(t *testing.T) {
	q := schedule(t, q3, weakBib)
	s := q.String()
	for _, want := range []string{"process-stream $b", "on title as $t", "on-first past(author,title)", "<results>", "<result>"} {
		if !strings.Contains(s, want) && !strings.Contains(s, strings.ReplaceAll(want, "$t", "$v")) {
			// variable names for title loops are user-defined or fresh;
			// accept any name by relaxing the title check below.
			if want == "on title as $t" {
				if !strings.Contains(s, "on title as $") {
					t.Errorf("printed FluX missing %q:\n%s", want, s)
				}
				continue
			}
			t.Errorf("printed FluX missing %q:\n%s", want, s)
		}
	}
}

// TestScheduleTraceExplainsDecisions: the trace records why authors could
// not stream under the weak DTD.
func TestScheduleTraceExplainsDecisions(t *testing.T) {
	q := schedule(t, q3, weakBib)
	joined := strings.Join(q.Trace, "\n")
	if !strings.Contains(joined, "cannot stream") {
		t.Errorf("trace does not explain buffering decision:\n%s", joined)
	}
	if !strings.Contains(joined, "streaming handler") {
		t.Errorf("trace does not record streaming decisions:\n%s", joined)
	}
}

// TestAtomicEmissions: text() bodies become AtomicVar streams.
func TestAtomicEmissions(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <r>{ $b/title/text() }</r> }</results>`
	q := schedule(t, src, strongBib)
	s := q.String()
	if !strings.Contains(s, "/text()}") {
		t.Errorf("atomic text emission missing:\n%s", s)
	}
}

// TestConstantsScheduledAtRightPosition: a constant between two dependent
// expressions becomes an on-first handler with the predecessors' past set.
func TestConstantsScheduledAtRightPosition(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <r>{ $b/title }<sep/>{ $b/author }</r> }</results>`
	q := schedule(t, src, strongBib)
	book := findPS(q.Root, "b")
	if book == nil {
		t.Fatalf("no PS over $b:\n%s", q)
	}
	// Expect: open r, on title, on-first past(title) <sep/>, on author, close r.
	var sepIdx, titleIdx, authorIdx int = -1, -1, -1
	for i, h := range book.Handlers {
		switch {
		case h.Kind == OnElement && h.Label == "title":
			titleIdx = i
		case h.Kind == OnElement && h.Label == "author":
			authorIdx = i
		case h.Kind == OnFirst && strings.Contains(h.Body.String(), "sep"):
			sepIdx = i
			if len(h.Past) != 1 || h.Past[0] != "title" {
				t.Errorf("separator past set = %v, want [title]", h.Past)
			}
		}
	}
	if !(titleIdx < sepIdx && sepIdx < authorIdx) {
		t.Errorf("handler order wrong: title=%d sep=%d author=%d\n%s", titleIdx, sepIdx, authorIdx, q)
	}
}
