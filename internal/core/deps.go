package core

import (
	"fluxquery/internal/xquery"
)

// depSet describes which parts of a scope element an expression reads:
// the set of child labels, whether it needs text content, and whether it
// needs everything (wildcard steps or whole-element copies inside
// buffered contexts).
type depSet struct {
	labels map[string]bool
	text   bool
	all    bool
}

func newDepSet() *depSet { return &depSet{labels: map[string]bool{}} }

func (d *depSet) addLabel(l string) {
	if l == "*" {
		d.all = true
		return
	}
	d.labels[l] = true
}

// sorted returns the label set as a sorted slice.
func (d *depSet) sorted() []string {
	out := make([]string, 0, len(d.labels))
	for l := range d.labels {
		out = append(out, l)
	}
	return sortedSet(out)
}

func (d *depSet) empty() bool { return len(d.labels) == 0 && !d.text && !d.all }

// scopeDeps computes the dependencies of e on children of the variable
// scopeVar. Paths rooted at variables bound inside e are not
// dependencies of the scope (they are resolved within buffered subtrees).
// A bare $scopeVar reference (whole-element copy inside a buffered body)
// sets all.
func scopeDeps(e xquery.Expr, scopeVar string) *depSet {
	d := newDepSet()
	collectDeps(e, scopeVar, map[string]bool{}, d)
	return d
}

func collectDeps(e xquery.Expr, scopeVar string, bound map[string]bool, d *depSet) {
	switch t := e.(type) {
	case nil:
		return
	case xquery.Path:
		if t.Var != scopeVar || bound[scopeVar] {
			return
		}
		if len(t.Steps) == 0 {
			d.all = true
			return
		}
		switch t.Steps[0].Axis {
		case xquery.Child:
			d.addLabel(t.Steps[0].Name)
		case xquery.TextAxis:
			d.text = true
		case xquery.Attribute:
			// Attributes arrive with the start tag; no child dependency.
		}
	case xquery.For:
		inner := bound
		for _, b := range t.Bindings {
			collectDeps(b.In, scopeVar, inner, d)
			if b.Var == scopeVar {
				inner = copySet(inner)
				inner[scopeVar] = true
			}
		}
		collectDeps(t.Where, scopeVar, inner, d)
		collectDeps(t.Return, scopeVar, inner, d)
	case xquery.Let:
		inner := bound
		for _, b := range t.Bindings {
			collectDeps(b.In, scopeVar, inner, d)
			if b.Var == scopeVar {
				inner = copySet(inner)
				inner[scopeVar] = true
			}
		}
		collectDeps(t.Body, scopeVar, inner, d)
	case xquery.Seq:
		for _, c := range t.Items {
			collectDeps(c, scopeVar, bound, d)
		}
	case xquery.Elem:
		for _, c := range t.Children {
			collectDeps(c, scopeVar, bound, d)
		}
	case xquery.If:
		collectDeps(t.Cond, scopeVar, bound, d)
		collectDeps(t.Then, scopeVar, bound, d)
		collectDeps(t.Else, scopeVar, bound, d)
	case xquery.And:
		collectDeps(t.L, scopeVar, bound, d)
		collectDeps(t.R, scopeVar, bound, d)
	case xquery.Or:
		collectDeps(t.L, scopeVar, bound, d)
		collectDeps(t.R, scopeVar, bound, d)
	case xquery.Cmp:
		collectDeps(t.L, scopeVar, bound, d)
		collectDeps(t.R, scopeVar, bound, d)
	case xquery.Call:
		for _, a := range t.Args {
			collectDeps(a, scopeVar, bound, d)
		}
	}
}

func copySet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// hasScopeDeps reports whether e reads anything from scopeVar.
func hasScopeDeps(e xquery.Expr, scopeVar string) bool {
	// Attribute-only references also count as scope-dependent output even
	// though they impose no child-order constraints; detect them
	// separately.
	if !scopeDeps(e, scopeVar).empty() {
		return true
	}
	found := false
	var walk func(e xquery.Expr, bound map[string]bool)
	walk = func(e xquery.Expr, bound map[string]bool) {
		if found || e == nil {
			return
		}
		switch t := e.(type) {
		case xquery.Path:
			if t.Var == scopeVar && !bound[scopeVar] {
				found = true
			}
		case xquery.For:
			inner := bound
			for _, b := range t.Bindings {
				walk(b.In, inner)
				if b.Var == scopeVar {
					inner = copySet(inner)
					inner[scopeVar] = true
				}
			}
			walk(t.Where, inner)
			walk(t.Return, inner)
		case xquery.Let:
			inner := bound
			for _, b := range t.Bindings {
				walk(b.In, inner)
				if b.Var == scopeVar {
					inner = copySet(inner)
					inner[scopeVar] = true
				}
			}
			walk(t.Body, inner)
		case xquery.Seq:
			for _, c := range t.Items {
				walk(c, bound)
			}
		case xquery.Elem:
			for _, c := range t.Children {
				walk(c, bound)
			}
		case xquery.If:
			walk(t.Cond, bound)
			walk(t.Then, bound)
			walk(t.Else, bound)
		case xquery.And:
			walk(t.L, bound)
			walk(t.R, bound)
		case xquery.Or:
			walk(t.L, bound)
			walk(t.R, bound)
		case xquery.Cmp:
			walk(t.L, bound)
			walk(t.R, bound)
		case xquery.Call:
			for _, a := range t.Args {
				walk(a, bound)
			}
		}
	}
	walk(e, map[string]bool{})
	return found
}

// refsOnly reports whether every free variable of e is v.
func refsOnly(e xquery.Expr, v string) bool {
	for fv := range xquery.FreeVars(e) {
		if fv != v {
			return false
		}
	}
	return true
}
