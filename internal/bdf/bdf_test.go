package bdf

import (
	"strings"
	"testing"

	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

func forest(t *testing.T, src, dtdSrc string) *Forest {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Schedule(n, d)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compute(q)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func scopeOf(f *Forest, v string) *Scope {
	for _, s := range f.Scopes {
		if s.Var == v {
			return s
		}
	}
	return nil
}

// TestQ3WeakDTDBuffersOnlyAuthors: the paper's headline claim — only the
// author children of one book are buffered, not the titles.
func TestQ3WeakDTDBuffersOnlyAuthors(t *testing.T) {
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`, weakBib)
	book := scopeOf(f, "b")
	if book == nil {
		t.Fatalf("no scope for $b: %s", f)
	}
	if _, ok := book.Buffered["author"]; !ok {
		t.Errorf("author must be buffered: %s", f)
	}
	if _, ok := book.Buffered["title"]; ok {
		t.Errorf("title must NOT be buffered (it streams): %s", f)
	}
	if !book.Buffered["author"].CopyAll {
		t.Errorf("author copies need the full subtree: %s", f)
	}
}

// TestStrongDTDBuffersNothing: with Figure 1's DTD everything streams.
func TestStrongDTDBuffersNothing(t *testing.T) {
	const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`, strongBib)
	for _, s := range f.Scopes {
		if len(s.Buffered) != 0 || s.Text {
			t.Errorf("scope $%s should buffer nothing: %s", s.Var, f)
		}
	}
}

// TestProjectionInsideBuffers: only the paths the handler uses are kept
// inside buffered subtrees.
func TestProjectionInsideBuffers(t *testing.T) {
	const d = `
<!ELEMENT bib (book)*>
<!ELEMENT book (info|title)*>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`
	// The query reads only info/isbn; blurb must not be part of the
	// projection.
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return <r>{ $b/title }{ for $i in $b/info return { $i/isbn } }</r> }</results>`, d)
	book := scopeOf(f, "b")
	if book == nil {
		t.Fatalf("no book scope: %s", f)
	}
	info, ok := book.Buffered["info"]
	if !ok {
		t.Fatalf("info must be buffered: %s", f)
	}
	if info.CopyAll {
		t.Errorf("info must be projected, not fully copied: %s", f)
	}
	if _, ok := info.Children["isbn"]; !ok {
		t.Errorf("isbn projection missing: %s", f)
	}
	if _, ok := info.Children["blurb"]; ok {
		t.Errorf("blurb wrongly buffered: %s", f)
	}
	if !info.Children["isbn"].CopyAll {
		t.Errorf("isbn is copied to output, needs full subtree: %s", f)
	}
}

// TestConditionValueReads: comparisons buffer the compared node's value.
func TestConditionValueReads(t *testing.T) {
	const d = `
<!ELEMENT bib (book)*>
<!ELEMENT book (price|title)*>
<!ELEMENT price (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return { if ($b/price = "9") then <cheap/> else () } }</results>`, d)
	book := scopeOf(f, "b")
	if book == nil {
		t.Fatalf("no book scope: %s", f)
	}
	price, ok := book.Buffered["price"]
	if !ok {
		t.Fatalf("price must be buffered for the comparison: %s", f)
	}
	if !price.CopyAll {
		t.Errorf("price value read needs the subtree: %s", f)
	}
}

// TestLastRefEnablesEarlyFree: the author buffer is freed right after the
// on-first handler that reads it.
func TestLastRefEnablesEarlyFree(t *testing.T) {
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`, weakBib)
	book := scopeOf(f, "b")
	idx, ok := book.LastRef["author"]
	if !ok {
		t.Fatalf("no LastRef for author")
	}
	if idx <= 0 {
		t.Errorf("author's last reference should be a later handler, got %d", idx)
	}
}

func TestKeepSemantics(t *testing.T) {
	n := newNode()
	isbn := n.child("isbn")
	isbn.CopyAll = true
	if _, keep := n.Keep("isbn"); !keep {
		t.Error("isbn should be kept")
	}
	if _, keep := n.Keep("blurb"); keep {
		t.Error("blurb should be dropped")
	}
	sub, keep := n.Keep("isbn")
	if !keep || sub == nil || !sub.CopyAll {
		t.Error("isbn projection should be CopyAll")
	}
	all := newNode()
	all.CopyAll = true
	if proj, keep := all.Keep("anything"); !keep || proj != nil {
		t.Error("CopyAll keeps everything with nil projection")
	}
	star := newNode()
	star.child("*").Text = true
	if proj, keep := star.Keep("whatever"); !keep || proj == nil {
		t.Error("wildcard child should match any label")
	}
}

func TestForestString(t *testing.T) {
	f := forest(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`, weakBib)
	s := f.String()
	if !strings.Contains(s, "buffer book/author (full subtree)") {
		t.Errorf("explain output missing author buffer:\n%s", s)
	}
	if !strings.Contains(s, "no buffers") {
		t.Errorf("streaming scopes should say 'no buffers':\n%s", s)
	}
}
