package bdf

// Adversarial tests for path-set extraction: the projection layer
// (internal/proj, internal/runtime) derives its stream path-sets from the
// tries this package computes, so a trie that comes out too narrow here
// silently drops data from query results. Each case targets a construct
// that must WIDEN the result: "*" wildcard buffers, CopyAll endpoint
// reads, and text()-only steps.

import (
	"testing"

	"fluxquery/internal/xquery"
)

// trie computes the projection trie of a query expression rooted at v.
func trie(t *testing.T, src, v string) *Node {
	t.Helper()
	n, err := PathsTrie(xquery.MustParse(src), v)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPathsTrieCopyAllEndpoint: a bare variable read in output position
// is a node copy — the endpoint must be CopyAll, not structure-only.
func TestPathsTrieCopyAllEndpoint(t *testing.T) {
	n := trie(t, `$b/title`, "b")
	title, ok := n.Keep("title")
	if !ok {
		t.Fatal("title dropped entirely")
	}
	if title == nil {
		t.Fatal("keep-all for a named child of a non-CopyAll node")
	}
	if !title.CopyAll {
		t.Error("endpoint read of title must be CopyAll (the whole subtree is emitted)")
	}
	// Siblings stay droppable: CopyAll must not leak upward.
	if n.CopyAll {
		t.Error("CopyAll leaked to the parent")
	}
	if _, ok := n.Keep("author"); ok {
		t.Error("untouched sibling kept")
	}
}

// TestPathsTrieCopyAllSubsumesDeeperPaths: once a prefix is CopyAll,
// Keep must keep every deeper label — a projection that consulted the
// (empty) child map instead would drop the subtree's interior.
func TestPathsTrieCopyAllSubsumesDeeperPaths(t *testing.T) {
	n := trie(t, `$b/info`, "b")
	info, ok := n.Keep("info")
	if !ok || !info.CopyAll {
		t.Fatalf("info not CopyAll: %v %v", info, ok)
	}
	sub, ok := info.Keep("anything")
	if !ok {
		t.Fatal("child of a CopyAll subtree dropped")
	}
	if sub != nil {
		t.Fatal("child of a CopyAll subtree must be keep-everything (nil projection)")
	}
}

// TestPathsTrieTextOnlyNode: $b/title/text() needs the title node's text
// but no subtree copy; the title node itself must survive with Text set.
func TestPathsTrieTextOnlyNode(t *testing.T) {
	n := trie(t, `$b/title/text()`, "b")
	title, ok := n.Keep("title")
	if !ok || title == nil {
		t.Fatalf("title dropped: %v %v", title, ok)
	}
	if !title.Text {
		t.Error("text() endpoint must set Text")
	}
	if title.CopyAll {
		t.Error("text() endpoint must not widen to CopyAll (that defeats projection)")
	}
}

// TestPathsTrieComparisonAtomization: a comparison atomizes its path
// operand — the string value needs the whole subtree, so the endpoint
// must widen to CopyAll even though nothing is emitted.
func TestPathsTrieComparisonAtomization(t *testing.T) {
	n := trie(t, `if ($b/publisher = "X") then $b/title else ()`, "b")
	pub, ok := n.Keep("publisher")
	if !ok || pub == nil || !pub.CopyAll {
		t.Fatalf("comparison operand not CopyAll: %v %v", pub, ok)
	}
}

// TestScopeWildcardBuffer: a whole-element read ({$x}) in a once-handler
// buffers EVERY child — the scope must carry a "*" CopyAll entry so that
// labels never named by the query are still buffered (and never pruned
// from the stream).
func TestScopeWildcardBuffer(t *testing.T) {
	// The where clause atomizes $b itself: its string value needs every
	// child, which only the "*" wildcard entry can express.
	f := forest(t, `<r>{ for $b in $ROOT/bib/book where $b = "x" return <hit/> }</r>`, weakBib)
	s := scopeOf(f, "b")
	if s == nil {
		t.Fatal("no scope for $b")
	}
	star, ok := s.Buffered["*"]
	if !ok {
		t.Fatalf("whole-element read lost the * wildcard buffer: %+v", s.Buffered)
	}
	if !star.CopyAll {
		t.Error("* buffer must be CopyAll")
	}
	if !s.Text {
		t.Error("whole-element read must buffer the scope's text too")
	}
}

// TestScopeWildcardKeep: Node.Keep must route unnamed labels through the
// "*" entry.
func TestScopeWildcardKeep(t *testing.T) {
	n := newNode()
	n.child("*").CopyAll = true
	sub, ok := n.Keep("anything")
	if !ok {
		t.Fatal("label not routed through *")
	}
	if sub == nil || !sub.CopyAll {
		t.Fatalf("wildcard projection lost: %+v", sub)
	}
}

// TestScopeTextOnlyBuffer: a scope whose handlers read only text() of a
// child must keep that child with Text (wide enough) but without CopyAll
// (narrow enough).
func TestScopeTextOnlyBuffer(t *testing.T) {
	const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (author+,title)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	// author+ precedes title, and the output wants title before authors,
	// so authors are buffered; only their text is read.
	f := forest(t, `<r>{ for $b in $ROOT/bib/book return <x>{ $b/title }<a>{ $b/author/text() }</a></x> }</r>`, strongBib)
	s := scopeOf(f, "b")
	if s == nil {
		t.Fatal("no scope for $b")
	}
	author, ok := s.Buffered["author"]
	if !ok {
		t.Fatalf("author not buffered: %+v", s.Buffered)
	}
	if !author.Text {
		t.Error("author text() read lost")
	}
}
