// Package bdf computes the Buffer Description Forest of a FluX query
// (paper §3.2): for every process-stream scope, exactly which child paths
// of the scope element must be materialized in memory buffers so that the
// scope's on-first and on-end handlers can be evaluated — and nothing
// more. This is the step that improves on document projection [10]: data
// handled on the fly by streaming handlers is never buffered, and buffered
// subtrees are themselves projected to the paths the handlers use.
package bdf

import (
	"fmt"
	"sort"
	"strings"

	"fluxquery/internal/core"
	"fluxquery/internal/xquery"
)

// Node is one node of the buffer description forest: the projection of a
// buffered subtree.
type Node struct {
	// Children maps child labels to their projections. The key "*"
	// subsumes every label.
	Children map[string]*Node
	// CopyAll marks that the entire subtree is needed (node copies and
	// string-value reads).
	CopyAll bool
	// Text marks that direct text children are needed (text() steps).
	Text bool
}

func newNode() *Node { return &Node{Children: map[string]*Node{}} }

func (n *Node) child(label string) *Node {
	c, ok := n.Children[label]
	if !ok {
		c = newNode()
		n.Children[label] = c
	}
	return c
}

// Keep reports whether a child with the given label must be retained
// under this projection node.
func (n *Node) Keep(label string) (*Node, bool) {
	if n.CopyAll {
		return nil, true // nil projection = keep everything below
	}
	if c, ok := n.Children[label]; ok {
		return c, true
	}
	if c, ok := n.Children["*"]; ok {
		return c, true
	}
	return nil, false
}

// Scope describes the buffering requirements of one process-stream.
type Scope struct {
	// Var and Elem identify the scope.
	Var  string
	Elem string
	// Buffered maps child labels of the scope element to their
	// projections; only these children are materialized.
	Buffered map[string]*Node
	// Text reports whether direct text children of the scope element are
	// buffered.
	Text bool
	// LastRef maps a buffered label to the index (in the handler list) of
	// the last handler that reads it; after that handler fires the
	// label's buffers are freed.
	LastRef map[string]int
}

// Forest is the buffer description forest of a whole query: one Scope per
// process-stream, in depth-first order.
type Forest struct {
	Scopes []*Scope
}

// Compute derives the forest from a scheduled query.
func Compute(q *core.Query) (*Forest, error) {
	f := &Forest{}
	if err := walkExpr(q.Root, f); err != nil {
		return nil, err
	}
	return f, nil
}

// ComputeScope derives the buffering requirements of a single
// process-stream; the runtime compiler calls this per scope.
func ComputeScope(ps core.ProcessStream) (*Scope, error) {
	s := &Scope{
		Var:      ps.Var,
		Elem:     ps.ElemName,
		Buffered: map[string]*Node{},
		LastRef:  map[string]int{},
	}
	for i, h := range ps.Handlers {
		switch h.Kind {
		case core.OnElement:
			// Streaming handlers buffer nothing at this scope.
			continue
		case core.OnFirst, core.OnEnd:
			if err := s.addBody(h.Body, ps.Var, i); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func walkExpr(e core.Expr, f *Forest) error {
	switch t := e.(type) {
	case core.ProcessStream:
		s, err := ComputeScope(t)
		if err != nil {
			return err
		}
		f.Scopes = append(f.Scopes, s)
		for _, h := range t.Handlers {
			if err := walkExpr(h.Body, f); err != nil {
				return err
			}
		}
	case core.Element:
		for _, c := range t.Children {
			if err := walkExpr(c, f); err != nil {
				return err
			}
		}
	case core.SeqF:
		for _, c := range t.Items {
			if err := walkExpr(c, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// addBody folds one handler body's requirements into the scope.
func (s *Scope) addBody(body core.Expr, scopeVar string, handlerIdx int) error {
	switch t := body.(type) {
	case core.XQ:
		root := newNode()
		if err := collectPaths(t.E, scopeVar, map[string]*Node{scopeVar: root}); err != nil {
			return err
		}
		s.merge(root, handlerIdx)
		return nil
	case core.Element:
		for _, c := range t.Children {
			if err := s.addBody(c, scopeVar, handlerIdx); err != nil {
				return err
			}
		}
		return nil
	case core.SeqF:
		for _, c := range t.Items {
			if err := s.addBody(c, scopeVar, handlerIdx); err != nil {
				return err
			}
		}
		return nil
	default:
		// OpenTag, CloseTag, TextLit, CopyVar, AtomicVar of deeper scopes,
		// nested ProcessStream: no buffering at this scope.
		return nil
	}
}

// merge folds a requirement trie rooted at the scope element into the
// scope's per-label map.
func (s *Scope) merge(root *Node, handlerIdx int) {
	if root.Text || root.CopyAll {
		s.Text = true
	}
	for label, proj := range root.Children {
		cur, ok := s.Buffered[label]
		if !ok {
			cur = newNode()
			s.Buffered[label] = cur
		}
		mergeNode(cur, proj)
		s.LastRef[label] = handlerIdx
	}
	if root.CopyAll {
		// Whole-element reads buffer every child completely.
		cur, ok := s.Buffered["*"]
		if !ok {
			cur = newNode()
			s.Buffered["*"] = cur
		}
		cur.CopyAll = true
		s.LastRef["*"] = handlerIdx
	}
}

func mergeNode(dst, src *Node) {
	dst.CopyAll = dst.CopyAll || src.CopyAll
	dst.Text = dst.Text || src.Text
	for l, c := range src.Children {
		d, ok := dst.Children[l]
		if !ok {
			d = newNode()
			dst.Children[l] = d
		}
		mergeNode(d, c)
	}
}

// PathsTrie computes the projection trie of all paths reachable from
// rootVar in e — the document-projection analysis of Marian & Siméon [10]
// that the baseline projection engine uses.
func PathsTrie(e xquery.Expr, rootVar string) (*Node, error) {
	root := newNode()
	if err := collectPaths(e, rootVar, map[string]*Node{rootVar: root}); err != nil {
		return nil, err
	}
	return root, nil
}

// collectPaths walks a normalized XQuery expression, extending the
// variable-to-trie binding map, and marks every read.
//
// Reads are classified as:
//   - node copy (bare $v in output position)        -> CopyAll
//   - atomization ($v/text(), comparisons, data())  -> CopyAll at the
//     endpoint (string value needs the whole subtree) or Text for text()
//   - structural navigation (for bindings, steps)   -> child tries
func collectPaths(e xquery.Expr, scopeVar string, env map[string]*Node) error {
	switch t := e.(type) {
	case nil:
		return nil
	case xquery.Text, xquery.Str, xquery.Num, xquery.EmptySeq:
		return nil
	case xquery.Path:
		n := walkSteps(env, t)
		if n != nil {
			// Endpoint read: value or copy — keep the whole subtree.
			n.CopyAll = true
		}
		return nil
	case xquery.Seq:
		for _, c := range t.Items {
			if err := collectPaths(c, scopeVar, env); err != nil {
				return err
			}
		}
		return nil
	case xquery.Elem:
		for _, c := range t.Children {
			if err := collectPaths(c, scopeVar, env); err != nil {
				return err
			}
		}
		return nil
	case xquery.For:
		inner := env
		for _, b := range t.Bindings {
			n := walkSteps(inner, b.In)
			inner = copyEnv(inner)
			inner[b.Var] = n // nil when rooted elsewhere
		}
		for _, b := range t.Lets {
			n := walkSteps(inner, b.In)
			inner = copyEnv(inner)
			inner[b.Var] = n
		}
		if err := collectPaths(t.Where, scopeVar, inner); err != nil {
			return err
		}
		return collectPaths(t.Return, scopeVar, inner)
	case xquery.Let:
		inner := env
		for _, b := range t.Bindings {
			n := walkSteps(inner, b.In)
			inner = copyEnv(inner)
			inner[b.Var] = n
		}
		return collectPaths(t.Body, scopeVar, inner)
	case xquery.If:
		if err := collectPaths(t.Cond, scopeVar, env); err != nil {
			return err
		}
		if err := collectPaths(t.Then, scopeVar, env); err != nil {
			return err
		}
		return collectPaths(t.Else, scopeVar, env)
	case xquery.And:
		if err := collectPaths(t.L, scopeVar, env); err != nil {
			return err
		}
		return collectPaths(t.R, scopeVar, env)
	case xquery.Or:
		if err := collectPaths(t.L, scopeVar, env); err != nil {
			return err
		}
		return collectPaths(t.R, scopeVar, env)
	case xquery.Cmp:
		if err := collectPaths(t.L, scopeVar, env); err != nil {
			return err
		}
		return collectPaths(t.R, scopeVar, env)
	case xquery.Call:
		for _, a := range t.Args {
			if err := collectPaths(a, scopeVar, env); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("bdf: unsupported expression %T", e)
	}
}

// walkSteps resolves a path against the trie environment, returning the
// endpoint node (creating trie nodes along the way), or nil if the path
// is rooted at a variable outside the scope.
func walkSteps(env map[string]*Node, p xquery.Path) *Node {
	n, ok := env[p.Var]
	if !ok || n == nil {
		return nil
	}
	for _, s := range p.Steps {
		switch s.Axis {
		case xquery.Child:
			n = n.child(s.Name)
		case xquery.TextAxis:
			n.Text = true
			return nil // text endpoints need no subtree
		case xquery.Attribute:
			return nil // attributes ride along with the element
		}
	}
	return n
}

func copyEnv(env map[string]*Node) map[string]*Node {
	c := make(map[string]*Node, len(env)+1)
	for k, v := range env {
		c[k] = v
	}
	return c
}

// String renders the forest for explain output.
func (f *Forest) String() string {
	var b strings.Builder
	for _, s := range f.Scopes {
		fmt.Fprintf(&b, "scope $%s (%s):", s.Var, s.Elem)
		if len(s.Buffered) == 0 && !s.Text {
			b.WriteString(" no buffers\n")
			continue
		}
		b.WriteString("\n")
		labels := make([]string, 0, len(s.Buffered))
		for l := range s.Buffered {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, "  buffer %s/%s%s\n", s.Elem, l, projString(s.Buffered[l]))
		}
		if s.Text {
			fmt.Fprintf(&b, "  buffer %s text content\n", s.Elem)
		}
	}
	return b.String()
}

func projString(n *Node) string {
	if n.CopyAll {
		return " (full subtree)"
	}
	var parts []string
	labels := make([]string, 0, len(n.Children))
	for l := range n.Children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		parts = append(parts, l+projString(n.Children[l]))
	}
	if n.Text {
		parts = append(parts, "text()")
	}
	if len(parts) == 0 {
		return " (structure only)"
	}
	return " -> {" + strings.Join(parts, ", ") + "}"
}
