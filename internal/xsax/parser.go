package xsax

import (
	"io"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmltok"
)

// Handler receives conventional SAX events from the push Parser.
type Handler interface {
	StartElement(name string, attrs []xmltok.Attr) error
	EndElement(name string) error
	Text(data string) error
	// First receives an on-first event for the registered trigger id: at
	// the current stream position, no child labeled in the trigger's Past
	// set can occur anymore within the enclosing trigger element.
	First(id int) error
}

// Trigger registers an on-first event: within every element named
// Element, fire once, as soon as no further child labeled in Past can
// occur. Unfired triggers fire at the element's end tag (where the
// condition holds trivially).
type Trigger struct {
	Element string
	Past    []string
}

// Parser is the push form of XSAX. Per the paper, the DTD and all
// on-first handlers are registered up front; the parser then interleaves
// First events with the ordinary SAX event stream.
type Parser struct {
	d        *dtd.DTD
	h        Handler
	triggers []Trigger
	// byElement[name] lists trigger ids applying to elements named name.
	byElement map[string][]int
}

// NewParser returns a Parser delivering events to h.
func NewParser(d *dtd.DTD, h Handler, triggers []Trigger) *Parser {
	p := &Parser{d: d, h: h, triggers: triggers, byElement: make(map[string][]int)}
	for id, t := range triggers {
		p.byElement[t.Element] = append(p.byElement[t.Element], id)
	}
	return p
}

// tframe tracks trigger state of one open element instance.
type tframe struct {
	ids   []int
	fired []bool
}

// Parse reads the stream, validates it and delivers events. The trigger
// conditions are evaluated at element start, after each complete child and
// at element end; eligible triggers fire in registration order, once per
// element instance.
func (p *Parser) Parse(rd io.Reader) error {
	r := GetReader(rd, p.d)
	defer PutReader(r)
	var tstack []tframe
	var attrbuf []xmltok.Attr
	check := func() error {
		if len(tstack) == 0 {
			return nil
		}
		tf := &tstack[len(tstack)-1]
		for i, id := range tf.ids {
			if tf.fired[i] {
				continue
			}
			if r.Past(p.triggers[id].Past) {
				tf.fired[i] = true
				if err := p.h.First(id); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for {
		ev, err := r.NextEvent()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case xmltok.StartElement:
			ids := p.byElement[ev.Name]
			tstack = append(tstack, tframe{ids: ids, fired: make([]bool, len(ids))})
			// Convert the zero-copy views for the handler; the slice is
			// reused, so handlers must not retain it.
			attrbuf = ev.AppendOwnedAttrs(attrbuf[:0])
			if err := p.h.StartElement(ev.Name, attrbuf); err != nil {
				return err
			}
			// Condition check at element start (e.g. past(S) for labels
			// that cannot occur at all).
			if err := check(); err != nil {
				return err
			}
		case xmltok.EndElement:
			// Remaining triggers of this instance fire at the end tag.
			tf := &tstack[len(tstack)-1]
			for i, id := range tf.ids {
				if !tf.fired[i] {
					tf.fired[i] = true
					if err := p.h.First(id); err != nil {
						return err
					}
				}
			}
			tstack = tstack[:len(tstack)-1]
			if err := p.h.EndElement(ev.Name); err != nil {
				return err
			}
			// The completed child advanced the parent's automaton state:
			// re-evaluate the parent's triggers.
			if err := check(); err != nil {
				return err
			}
		case xmltok.Text:
			if err := p.h.Text(string(ev.Data)); err != nil {
				return err
			}
		}
	}
}
