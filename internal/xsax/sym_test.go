package xsax

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
	"fluxquery/internal/xmltok"
)

const symTestDTD = `
<!ELEMENT root (item)*>
<!ELEMENT item (name,qty)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ATTLIST item id CDATA #IMPLIED>
`

func symTestDoc() []byte {
	var doc bytes.Buffer
	doc.WriteString("<root>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&doc, `<item id="%d"><name>n%d</name><qty>%d</qty></item>`, i, i, i)
	}
	doc.WriteString("</root>")
	return doc.Bytes()
}

// TestReaderZeroAllocSteadyState pins the tentpole claim at the validated
// layer: once the vocabulary is interned and bound, the tokenize+validate
// event loop performs zero heap allocations per event.
func TestReaderZeroAllocSteadyState(t *testing.T) {
	d := dtd.MustParse(symTestDTD)
	data := symTestDoc()
	rd := bytes.NewReader(data)
	r := NewReader(rd, d)
	scan := func() {
		rd.Reset(data)
		r.Reset(rd, d)
		for {
			_, err := r.NextEvent()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	scan() // warm: interning, window and stack growth
	if allocs := testing.AllocsPerRun(5, scan); allocs > 0 {
		t.Fatalf("steady-state validated scan allocates %.1f times per pass, want 0", allocs)
	}
}

// TestReaderZeroAllocProjected is the same pin for the projected
// streaming path (fast mode, id-vocabulary automaton): shell deliveries
// and bulk skips stay allocation-free too.
func TestReaderZeroAllocProjected(t *testing.T) {
	d := dtd.MustParse(symTestDTD)
	// Keep /root/item/name (with text); qty prunes to a shell.
	ps := proj.NewPathSet()
	ps.Root.Child("root").Child("item").Child("name").Text = true
	a := proj.CompileVocab(ps, d.IDNames())

	data := symTestDoc()
	rd := bytes.NewReader(data)
	r := NewReader(rd, d)
	scan := func() {
		rd.Reset(data)
		r.Reset(rd, d)
		r.SetProjection(a, proj.ModeFast)
		for {
			_, err := r.NextEvent()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	scan()
	if allocs := testing.AllocsPerRun(5, scan); allocs > 0 {
		t.Fatalf("steady-state projected scan allocates %.1f times per pass, want 0", allocs)
	}
	if st := r.ScanStats(); st.SubtreesSkipped == 0 {
		t.Fatalf("projection did not prune anything: %+v", st)
	}
}

// TestReaderProcInstNameInterned: the ProcInst target resolves through
// the symbol table to the same owned string on every occurrence (the old
// code allocated a fresh string per event).
func TestReaderProcInstNameInterned(t *testing.T) {
	d := dtd.MustParse(symTestDTD)
	doc := []byte(`<root><?target one?><item id="1"><name>n</name><qty>1</qty></item><?target two?></root>`)
	r := NewReader(bytes.NewReader(doc), d)
	var names []string
	for {
		ev, err := r.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == xmltok.ProcInst {
			names = append(names, ev.Name)
		}
	}
	if len(names) != 2 || names[0] != "target" || names[1] != "target" {
		t.Fatalf("ProcInst names = %q, want two %q", names, "target")
	}
}

// TestOwnedAttrsSymResolution: attribute names from OwnedAttrs are the
// symbol table's interned strings, resolved without consulting the DTD.
func TestOwnedAttrsSymResolution(t *testing.T) {
	d := dtd.MustParse(symTestDTD)
	doc := []byte(`<root><item id="42"><name>n</name><qty>1</qty></item></root>`)
	r := NewReader(bytes.NewReader(doc), d)
	for {
		ev, err := r.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == xmltok.StartElement && ev.Name == "item" {
			attrs := ev.OwnedAttrs()
			if len(attrs) != 1 || attrs[0].Name != "id" || attrs[0].Value != "42" {
				t.Fatalf("OwnedAttrs = %+v", attrs)
			}
		}
	}
}

// TestReaderEndTagMismatchStillCaught: the integer end-tag check rejects
// exactly what the string comparison did.
func TestReaderEndTagMismatchStillCaught(t *testing.T) {
	d := dtd.MustParse(symTestDTD)
	doc := []byte(`<root><item id="1"><name>n</name><qty>1</qty></root></item>`)
	r := NewReader(bytes.NewReader(doc), d)
	for {
		_, err := r.NextEvent()
		if err == io.EOF {
			t.Fatalf("mismatched end tag accepted")
		}
		if err != nil {
			return // rejected, as required
		}
	}
}
