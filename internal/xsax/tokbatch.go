package xsax

import (
	"sync"

	"fluxquery/internal/xmltok"
)

// This file defines the raw token batch that the pipelined pass stages
// between its tokenizer and validator goroutines. A TokBatch is the
// pre-validation analogue of Batch: it owns copies of every scanner view
// so the scanner can keep running ahead, and it carries the projection
// verdicts the tokenizer stage already decided (shells, dropped text,
// validate-only interiors) so the validator replays exactly the
// sequential reader's delivery decisions without re-running the skip
// automaton.

// Flags on a TokEvent, set by the tokenizer stage.
const (
	// tokShellStart marks the start tag of a pruned subtree: the
	// validator validates it (including attributes) and delivers it bare.
	tokShellStart uint8 = 1 << iota
	// tokShellEndFast is the synthesized end tag of a bulk-skipped
	// subtree: the interior was never validated, so the frame is popped
	// without the content-model accepting check (fast mode only).
	tokShellEndFast
	// tokShellEnd is the real end tag of a pruned subtree in validate
	// mode: fully validated, delivered.
	tokShellEnd
	// tokTextDrop marks text the projection automaton rejects: validated
	// (the character-data rule still applies), counted skipped, not
	// delivered.
	tokTextDrop
	// tokInterior marks an event inside a pruned subtree in validate
	// mode: fully validated, counted skipped, not delivered.
	tokInterior
)

// TokEvent is one raw tokenizer event staged ahead of validation.
// Element and ProcInst names travel as symbols only — the validator
// resolves them through the scanner's symbol table, which is safe to
// read concurrently with interning (see SymTab).
type TokEvent struct {
	Kind  xmltok.Kind
	Flags uint8
	Sym   xmltok.Sym
	// Line is the scanner line at which the event was produced, carried
	// so validation errors downstream report the same position the
	// sequential reader would.
	Line int32
	// Data holds text/comment/directive content (owned by the batch).
	Data []byte
	// Attrs holds a StartElement's attributes (owned by the batch).
	Attrs []xmltok.AttrBytes
}

// TokBatch is an owned, reusable sequence of raw tokenizer events. The
// per-event byte views are valid until the next Reset; the validated
// Batch built from a TokBatch aliases this arena, so the pipeline
// recycles the pair together.
type TokBatch struct {
	Events []TokEvent
	arena  []byte
	attrs  []xmltok.AttrBytes
}

// Reset empties the batch, retaining its storage.
func (b *TokBatch) Reset() {
	b.Events = b.Events[:0]
	b.arena = b.arena[:0]
	b.attrs = b.attrs[:0]
}

// Len returns the number of buffered events.
func (b *TokBatch) Len() int { return len(b.Events) }

// ArenaBytes returns the payload bytes the batch owns; drivers use it to
// bound batch size.
func (b *TokBatch) ArenaBytes() int { return len(b.arena) }

// Append copies ev into the batch with the given flags and line.
func (b *TokBatch) Append(ev *xmltok.Event, flags uint8, line int) {
	e := TokEvent{Kind: ev.Kind, Flags: flags, Sym: ev.Sym(), Line: int32(line)}
	if d := ev.DataBytes(); len(d) > 0 {
		e.Data = b.copyBytes(d)
	}
	if attrs := ev.Attrs(); len(attrs) > 0 {
		start := len(b.attrs)
		for _, a := range attrs {
			b.attrs = append(b.attrs, xmltok.AttrBytes{
				Name:  b.copyBytes(a.Name),
				Value: b.copyBytes(a.Value),
				Sym:   a.Sym,
			})
		}
		// Full slice expression: a later growth must not let one event's
		// append bleed into another event's view.
		e.Attrs = b.attrs[start:len(b.attrs):len(b.attrs)]
	}
	b.Events = append(b.Events, e)
}

// AppendSynth appends a synthesized event (no scanner views), used for
// the end tag of a bulk-skipped subtree.
func (b *TokBatch) AppendSynth(kind xmltok.Kind, sym xmltok.Sym, flags uint8, line int) {
	b.Events = append(b.Events, TokEvent{Kind: kind, Flags: flags, Sym: sym, Line: int32(line)})
}

func (b *TokBatch) copyBytes(p []byte) []byte {
	off := len(b.arena)
	b.arena = append(b.arena, p...)
	return b.arena[off:len(b.arena):len(b.arena)]
}

var tokBatchPool sync.Pool

func getTokBatch() *TokBatch {
	if v := tokBatchPool.Get(); v != nil {
		b := v.(*TokBatch)
		b.Reset()
		return b
	}
	return &TokBatch{}
}

func putTokBatch(b *TokBatch) { tokBatchPool.Put(b) }
