package xsax

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmltok"
)

const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const strongDoc = `<bib>
<book><title>T1</title><author>A1</author><author>A2</author><publisher>P</publisher><price>9</price></book>
<book><title>T2</title><editor>E1</editor><publisher>P</publisher><price>8</price></book>
</bib>`

func TestValidateAcceptsValid(t *testing.T) {
	d := dtd.MustParse(strongBib)
	if err := Validate(strings.NewReader(strongDoc), d); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestValidateRejectsInvalid(t *testing.T) {
	d := dtd.MustParse(strongBib)
	cases := []struct{ name, doc string }{
		{"wrong root", `<book></book>`},
		{"undeclared element", `<bib><magazine/></bib>`},
		{"missing title", `<bib><book><author>A</author><publisher>P</publisher><price>9</price></book></bib>`},
		{"author and editor", `<bib><book><title>T</title><author>A</author><editor>E</editor><publisher>P</publisher><price>9</price></book></bib>`},
		{"wrong order", `<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>9</price></book></bib>`},
		{"premature end", `<bib><book><title>T</title><author>A</author></book></bib>`},
		{"text in element content", `<bib>stray text</bib>`},
		{"mismatched tags", `<bib><book></bib></book>`},
	}
	for _, c := range cases {
		if err := Validate(strings.NewReader(c.doc), d); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.doc)
		}
	}
}

func TestWhitespaceInElementContentDropped(t *testing.T) {
	d := dtd.MustParse(weakBib)
	r := NewReader(strings.NewReader("<bib>\n  <book>\n    <title>T</title>\n  </book>\n</bib>"), d)
	var kinds []xmltok.Kind
	for {
		tok, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, tok.Kind)
	}
	// No Text tokens except inside title.
	want := []xmltok.Kind{
		xmltok.StartElement, xmltok.StartElement, xmltok.StartElement,
		xmltok.Text, xmltok.EndElement, xmltok.EndElement, xmltok.EndElement,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestReaderPast(t *testing.T) {
	d := dtd.MustParse(strongBib)
	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>`
	r := NewReader(strings.NewReader(doc), d)
	// Track Past(title) transitions within book.
	next := func() xmltok.Token {
		t.Helper()
		tok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		return tok
	}
	next() // <bib>
	next() // <book>
	if r.Past([]string{"title"}) {
		t.Error("at book start, title still possible")
	}
	next() // <title>
	next() // T
	next() // </title>
	if !r.Past([]string{"title"}) {
		t.Error("after title, no more titles under strong DTD")
	}
	if r.Past([]string{"author", "editor"}) {
		t.Error("authors still possible after title")
	}
	next() // <author>
	next() // A
	next() // </author>
	if r.Past([]string{"author"}) {
		t.Error("more authors possible (author+)")
	}
	next() // <publisher>
	next() // P
	next() // </publisher>
	if !r.Past([]string{"author", "editor"}) {
		t.Error("after publisher, author/editor are past")
	}
}

func TestReaderSkip(t *testing.T) {
	d := dtd.MustParse(strongBib)
	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book><book><title>U</title><editor>E</editor><publisher>P</publisher><price>1</price></book></bib>`
	r := NewReader(strings.NewReader(doc), d)
	mustNext := func() xmltok.Token {
		t.Helper()
		tok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		return tok
	}
	mustNext() // <bib>
	tok := mustNext()
	if tok.Kind != xmltok.StartElement || tok.Name != "book" {
		t.Fatalf("expected first book, got %+v", tok)
	}
	if err := r.Skip(); err != nil { // skip rest of book 1
		t.Fatal(err)
	}
	tok = mustNext()
	if tok.Kind != xmltok.StartElement || tok.Name != "book" {
		t.Fatalf("after skip, expected second book, got %+v", tok)
	}
}

// recorder logs events for push-parser tests.
type recorder struct {
	events []string
	failOn string
}

func (rec *recorder) StartElement(name string, attrs []xmltok.Attr) error {
	rec.events = append(rec.events, "<"+name+">")
	if rec.failOn == "<"+name+">" {
		return fmt.Errorf("handler failure at %s", name)
	}
	return nil
}

func (rec *recorder) EndElement(name string) error {
	rec.events = append(rec.events, "</"+name+">")
	return nil
}

func (rec *recorder) Text(data string) error {
	rec.events = append(rec.events, "text:"+data)
	return nil
}

func (rec *recorder) First(id int) error {
	rec.events = append(rec.events, fmt.Sprintf("first:%d", id))
	return nil
}

// TestParserOnFirstStrongDTD reproduces the paper's Figure 1 scenario: with
// the strong DTD, past(title) fires right after the title child, and
// past(author,editor) fires after the publisher starts... i.e. after the
// last author/editor completes and the publisher child advances the state.
func TestParserOnFirstStrongDTD(t *testing.T) {
	d := dtd.MustParse(strongBib)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{
		{Element: "book", Past: []string{"title"}},
		{Element: "book", Past: []string{"author", "editor"}},
	})
	doc := `<bib><book><title>T</title><author>A1</author><author>A2</author><publisher>P</publisher><price>9</price></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rec.events, " ")
	want := "<bib> <book> <title> text:T </title> first:0 <author> text:A1 </author> <author> text:A2 </author> <publisher> text:P </publisher> first:1 <price> text:9 </price> </book> </bib>"
	if got != want {
		t.Errorf("event stream:\n got: %s\nwant: %s", got, want)
	}
}

// TestParserOnFirstWeakDTD: with the weak DTD, past(title,author) can only
// fire at the closing book tag (the paper's §2 discussion).
func TestParserOnFirstWeakDTD(t *testing.T) {
	d := dtd.MustParse(weakBib)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{{Element: "book", Past: []string{"title", "author"}}})
	doc := `<bib><book><author>A</author><title>T</title></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rec.events, " ")
	want := "<bib> <book> <author> text:A </author> <title> text:T </title> first:0 </book> </bib>"
	if got != want {
		t.Errorf("event stream:\n got: %s\nwant: %s", got, want)
	}
}

// TestParserOnFirstPerInstance: triggers fire once per element instance.
func TestParserOnFirstPerInstance(t *testing.T) {
	d := dtd.MustParse(weakBib)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{{Element: "book", Past: []string{"title", "author"}}})
	doc := `<bib><book><title>T</title></book><book><author>A</author></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	n := strings.Count(strings.Join(rec.events, " "), "first:0")
	if n != 2 {
		t.Errorf("trigger fired %d times, want 2 (once per book)", n)
	}
}

// TestParserImpossibleLabelsFireAtStart: a trigger over labels that cannot
// occur at all fires immediately at element start.
func TestParserImpossibleLabelsFireAtStart(t *testing.T) {
	d := dtd.MustParse(strongBib)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{{Element: "title", Past: []string{"author"}}})
	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rec.events, " ")
	if !strings.Contains(joined, "<title> first:0") {
		t.Errorf("trigger should fire at title start: %s", joined)
	}
}

func TestParserHandlerErrorStopsParse(t *testing.T) {
	d := dtd.MustParse(weakBib)
	rec := &recorder{failOn: "<title>"}
	p := NewParser(d, rec, nil)
	doc := `<bib><book><title>T</title></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err == nil {
		t.Fatal("handler error not propagated")
	}
}

func TestValidateAttributesViaReader(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT bib (book)*>
<!ELEMENT book (#PCDATA)>
<!ATTLIST book year CDATA #REQUIRED>
`)
	if err := Validate(strings.NewReader(`<bib><book year="1994">x</book></bib>`), d); err != nil {
		t.Errorf("valid attrs rejected: %v", err)
	}
	if err := Validate(strings.NewReader(`<bib><book>x</book></bib>`), d); err == nil {
		t.Error("missing required attribute accepted")
	}
}

func TestEmptyDocumentRejected(t *testing.T) {
	d := dtd.MustParse(weakBib)
	if err := Validate(strings.NewReader("   "), d); err == nil {
		t.Error("empty document accepted")
	}
}
