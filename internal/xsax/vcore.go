package xsax

import (
	"fmt"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmltok"
)

// vcore is the DTD-validation state machine shared by the sequential
// Reader and the pipelined pass's validator stage: the open-element
// stack, the content-model stepping, the attribute checks and the
// sym→declaration binding. Its methods return errors without position
// information; callers wrap them with the line number of their event
// source (the Reader's live scanner, or the line a TokEvent carried
// across the ring).
type vcore struct {
	d       *dtd.DTD
	stack   []frame
	apairs  []dtd.AttrPair
	sawRoot bool
	// symElem binds stream symbols to declarations: symElem[sym] is the
	// *dtd.Element of the name with that symbol, bound at the name's
	// first occurrence on this stream (one map lookup per distinct name
	// per stream; every later occurrence is a slice load).
	symElem []*dtd.Element
}

// reset rebinds the core to a new stream and DTD, retaining storage.
func (v *vcore) reset(d *dtd.DTD) {
	v.d = d
	v.stack = v.stack[:0]
	v.sawRoot = false
	// Symbols may be renumbered by a scanner Reset, and the DTD may
	// differ: drop all sym→element bindings (they re-form at first
	// occurrence per name).
	for i := range v.symElem {
		v.symElem[i] = nil
	}
}

// elemOf resolves a start tag's stream symbol to its DTD declaration,
// binding the symbol at the name's first occurrence on this stream. The
// steady-state cost is a single slice load per start tag.
func (v *vcore) elemOf(sym xmltok.Sym, name []byte) *dtd.Element {
	if int(sym) < len(v.symElem) {
		if e := v.symElem[sym]; e != nil {
			return e
		}
	}
	e := v.d.ElementBytes(name)
	if e == nil {
		return nil
	}
	for int(sym) >= len(v.symElem) {
		v.symElem = append(v.symElem, nil)
	}
	v.symElem[sym] = e
	return e
}

// start validates a start tag — root rule, parent content-model step,
// attribute declarations — and pushes its frame, returning the bound
// declaration.
func (v *vcore) start(sym xmltok.Sym, name []byte, attrs []xmltok.AttrBytes) (*dtd.Element, error) {
	e := v.elemOf(sym, name)
	if e == nil {
		return nil, fmt.Errorf("undeclared element <%s>", name)
	}
	if len(v.stack) == 0 {
		if v.sawRoot {
			return nil, fmt.Errorf("multiple root elements")
		}
		if e.Name != v.d.Root {
			return nil, fmt.Errorf("root element is <%s>, DTD requires <%s>", e.Name, v.d.Root)
		}
		v.sawRoot = true
	} else {
		parent := &v.stack[len(v.stack)-1]
		next := parent.elem.Automaton().StepID(parent.state, e.ID())
		if next < 0 {
			return nil, fmt.Errorf("child <%s> not allowed here in <%s> (content model %s)",
				e.Name, parent.elem.Name, parent.elem.Model)
		}
		parent.state = next
	}
	// Attribute validation over the zero-copy views.
	v.apairs = v.apairs[:0]
	for _, a := range attrs {
		v.apairs = append(v.apairs, dtd.AttrPair{Name: a.Name, Value: a.Value})
	}
	if err := v.d.ValidateAttrPairs(e, v.apairs); err != nil {
		return nil, err
	}
	v.stack = append(v.stack, frame{elem: e, sym: sym, state: e.Automaton().Start()})
	return e, nil
}

// end validates an end tag — name match against the open element, the
// content model's accepting state — and pops its frame.
func (v *vcore) end(sym xmltok.Sym, name []byte) (*dtd.Element, error) {
	if len(v.stack) == 0 {
		return nil, fmt.Errorf("unmatched end tag </%s>", name)
	}
	f := v.stack[len(v.stack)-1]
	// The tokenizer hands start and end tags of one element the same
	// symbol, so the name check is one integer comparison.
	if sym != f.sym {
		return nil, fmt.Errorf("end tag </%s> does not match open element <%s>", name, f.elem.Name)
	}
	if !f.elem.Automaton().Accepting(f.state) {
		return nil, fmt.Errorf("element <%s> ended prematurely (content model %s)", f.elem.Name, f.elem.Model)
	}
	v.stack = v.stack[:len(v.stack)-1]
	return f.elem, nil
}

// popShell pops the innermost frame without the accepting-state check:
// the end tag of a bulk-skipped subtree, whose interior was never
// validated, so the content model cannot be checked.
func (v *vcore) popShell() *dtd.Element {
	f := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return f.elem
}

// text classifies a text event: deliver it, drop it (insignificant
// whitespace in element content), or reject it (character data in an
// element whose model has no #PCDATA).
func (v *vcore) text(data []byte) (deliver bool, err error) {
	if len(v.stack) > 0 && !v.stack[len(v.stack)-1].elem.HasPCData() {
		if !xmltok.IsAllWhitespace(data) {
			return false, fmt.Errorf("element %s may not contain character data", v.stack[len(v.stack)-1].elem.Name)
		}
		// Insignificant whitespace in element content: drop it so
		// downstream operators see the pure child sequence.
		return false, nil
	}
	return true, nil
}
