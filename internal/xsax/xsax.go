// Package xsax implements the paper's XSAX parser (§3.2): a validating
// streaming XML parser that runs the DTD's content-model automata while
// scanning and can inject "on-first" events — notifications that, at the
// current position of the stream, no further child with a label from a
// registered set can occur inside the enclosing element.
//
// Two interfaces are provided. Reader is a validating pull reader used by
// the runtime's streamed query evaluator; it exposes the automaton state
// of every open element so the evaluator can decide past(S) questions
// itself. Parser is the push (SAX-style) form described in the paper: the
// DTD and the on-first triggers are registered up front, and the parser
// inserts First events among the conventional start/end/text events.
package xsax

import (
	"fmt"
	"io"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmltok"
)

// frame is one open element during parsing.
type frame struct {
	name  string
	elem  *dtd.Element
	state int
}

// Reader is a validating pull reader over an XML stream.
type Reader struct {
	sc    *xmltok.Scanner
	d     *dtd.DTD
	stack []frame
	// attrbuf is scratch space for attribute validation.
	attrbuf map[string]string
	sawRoot bool
}

// NewReader returns a validating reader for the stream r under DTD d.
func NewReader(r io.Reader, d *dtd.DTD) *Reader {
	return &Reader{
		sc:      xmltok.NewScanner(r),
		d:       d,
		attrbuf: make(map[string]string, 8),
	}
}

// Depth returns the number of currently open elements.
func (r *Reader) Depth() int { return len(r.stack) }

// Element returns the declaration of the innermost open element, or nil at
// document level.
func (r *Reader) Element() *dtd.Element {
	if len(r.stack) == 0 {
		return nil
	}
	return r.stack[len(r.stack)-1].elem
}

// State returns the content-model automaton state of the innermost open
// element, or -1 at document level.
func (r *Reader) State() int {
	if len(r.stack) == 0 {
		return -1
	}
	return r.stack[len(r.stack)-1].state
}

// Past reports whether, at the current position inside the innermost open
// element, no further child labeled in set can occur (the on-first firing
// condition).
func (r *Reader) Past(set []string) bool {
	if len(r.stack) == 0 {
		return false
	}
	f := &r.stack[len(r.stack)-1]
	return f.elem.Automaton().Past(f.state, set)
}

// Line returns the scanner's current line for error reporting.
func (r *Reader) Line() int { return r.sc.Line() }

// Next returns the next validated token. Comments, processing
// instructions and directives are passed through unvalidated. The error
// is io.EOF at the end of a well-formed, valid document.
func (r *Reader) Next() (xmltok.Token, error) {
	for {
		tok, err := r.sc.Next()
		if err == io.EOF && !r.sawRoot {
			return tok, r.errf("document has no root element")
		}
		if err != nil {
			return tok, err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			if err := r.startElement(tok); err != nil {
				return tok, err
			}
			return tok, nil
		case xmltok.EndElement:
			if err := r.endElement(tok); err != nil {
				return tok, err
			}
			return tok, nil
		case xmltok.Text:
			if len(r.stack) > 0 && !r.stack[len(r.stack)-1].elem.HasPCData() && !tok.IsWhitespace() {
				return tok, r.errf("element %s may not contain character data", r.stack[len(r.stack)-1].name)
			}
			if tok.IsWhitespace() && len(r.stack) > 0 && !r.stack[len(r.stack)-1].elem.HasPCData() {
				// Insignificant whitespace in element content: drop it so
				// downstream operators see the pure child sequence.
				continue
			}
			return tok, nil
		default:
			return tok, nil
		}
	}
}

func (r *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("xsax: line %d: %s", r.sc.Line(), fmt.Sprintf(format, args...))
}

func (r *Reader) startElement(tok xmltok.Token) error {
	e := r.d.Element(tok.Name)
	if e == nil {
		return r.errf("undeclared element <%s>", tok.Name)
	}
	if len(r.stack) == 0 {
		if r.sawRoot {
			return r.errf("multiple root elements")
		}
		if tok.Name != r.d.Root {
			return r.errf("root element is <%s>, DTD requires <%s>", tok.Name, r.d.Root)
		}
		r.sawRoot = true
	} else {
		parent := &r.stack[len(r.stack)-1]
		next := parent.elem.Automaton().Step(parent.state, tok.Name)
		if next < 0 {
			return r.errf("child <%s> not allowed here in <%s> (content model %s)",
				tok.Name, parent.name, parent.elem.Model)
		}
		parent.state = next
	}
	// Attribute validation.
	clear(r.attrbuf)
	for _, a := range tok.Attrs {
		r.attrbuf[a.Name] = a.Value
	}
	if err := r.d.ValidateAttrs(tok.Name, r.attrbuf); err != nil {
		return r.errf("%s", err)
	}
	r.stack = append(r.stack, frame{name: tok.Name, elem: e, state: e.Automaton().Start()})
	return nil
}

func (r *Reader) endElement(tok xmltok.Token) error {
	if len(r.stack) == 0 {
		return r.errf("unmatched end tag </%s>", tok.Name)
	}
	f := &r.stack[len(r.stack)-1]
	if f.name != tok.Name {
		return r.errf("end tag </%s> does not match open element <%s>", tok.Name, f.name)
	}
	if !f.elem.Automaton().Accepting(f.state) {
		return r.errf("element <%s> ended prematurely (content model %s)", f.name, f.elem.Model)
	}
	r.stack = r.stack[:len(r.stack)-1]
	return nil
}

// Skip consumes and validates the remainder of the innermost open
// element's subtree, including its end tag. It is the evaluator's "ignore
// this child" fast path.
func (r *Reader) Skip() error {
	depth := len(r.stack)
	for len(r.stack) >= depth {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return r.errf("unexpected EOF while skipping")
			}
			return err
		}
	}
	return nil
}

// Validate reads the whole stream and returns the first validation error,
// if any.
func Validate(rd io.Reader, d *dtd.DTD) error {
	r := NewReader(rd, d)
	for {
		_, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
