// Package xsax implements the paper's XSAX parser (§3.2): a validating
// streaming XML parser that runs the DTD's content-model automata while
// scanning and can inject "on-first" events — notifications that, at the
// current position of the stream, no further child with a label from a
// registered set can occur inside the enclosing element.
//
// Two interfaces are provided. Reader is a validating pull reader used by
// the runtime's streamed query evaluator; it exposes the automaton state
// of every open element so the evaluator can decide past(S) questions
// itself. Parser is the push (SAX-style) form described in the paper: the
// DTD and the on-first triggers are registered up front, and the parser
// inserts First events among the conventional start/end/text events.
//
// Reader is event-based and zero-copy: NextEvent validates the underlying
// tokenizer event and returns it with the element name resolved to the
// DTD's interned declaration name, so consumers dispatch on strings
// without allocating. Event data and attribute views are only valid until
// the next call; consumers copy exactly at the points where the buffer
// description forest says data must survive. The Token-returning Next is
// a copying adapter kept for convenience and tests.
package xsax

import (
	"fmt"
	"io"
	"sync"

	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
	"fluxquery/internal/xmltok"
)

// frame is one open element during parsing.
type frame struct {
	elem *dtd.Element
	// sym is the element's stream symbol; the end-tag name check is one
	// integer comparison against it.
	sym   xmltok.Sym
	state int
}

// Event is one validated XML event. Name is the interned element name
// from the DTD declaration (Start/EndElement) and is always safe to
// retain; Data and Attrs view scanner-owned memory valid only until the
// next Reader call.
type Event struct {
	Kind xmltok.Kind
	// Name is the element name (Start/EndElement) or ProcInst target.
	Name string
	// Elem is the DTD declaration of a Start/EndElement. Its dense ID()
	// keys every integer dispatch table above the reader.
	Elem *dtd.Element
	// Data holds text/comment/directive content (zero-copy view).
	Data []byte
	// Attrs holds a StartElement's attributes (zero-copy views; each
	// carries the attribute name's stream symbol).
	Attrs []xmltok.AttrBytes
	// tab resolves attribute-name symbols to owned strings after the
	// byte views have been invalidated; it points at the producing
	// scanner's symbol table, which is safe to read whenever the scanner
	// is idle (the batch rendezvous guarantees that for fanned-out
	// events).
	tab *xmltok.SymTab
}

// IsWhitespace reports whether a Text event is all XML whitespace.
func (e *Event) IsWhitespace() bool {
	return e.Kind == xmltok.Text && xmltok.IsAllWhitespace(e.Data)
}

// AppendOwnedAttrs appends the event's attributes to dst as owned
// strings. Attribute names resolve lazily through the scanner's symbol
// table — an owned, interned string, no allocation per attribute — so
// only the values are copied.
func (e *Event) AppendOwnedAttrs(dst []xmltok.Attr) []xmltok.Attr {
	for _, a := range e.Attrs {
		var name string
		if e.tab != nil && a.Sym != xmltok.NoSym {
			name = e.tab.Name(a.Sym)
		} else {
			name = string(a.Name)
		}
		dst = append(dst, xmltok.Attr{Name: name, Value: string(a.Value)})
	}
	return dst
}

// OwnedAttrs returns the event's attributes as owned strings, interning
// attribute names through the element's ATTLIST declarations. The result
// is freshly allocated and safe to retain.
func (e *Event) OwnedAttrs() []xmltok.Attr {
	if len(e.Attrs) == 0 {
		return nil
	}
	return e.AppendOwnedAttrs(make([]xmltok.Attr, 0, len(e.Attrs)))
}

// ScanStats reports what a projecting reader delivered and skipped over
// one stream.
type ScanStats struct {
	// EventsDelivered counts events handed to the consumer.
	EventsDelivered int64
	// EventsSkipped counts events (or, in fast mode, raw markup
	// structures) consumed without delivery.
	EventsSkipped int64
	// SubtreesSkipped counts pruned subtrees (shell deliveries).
	SubtreesSkipped int64
	// BytesSkipped counts raw input bytes consumed by bulk skips (fast
	// mode only; validate mode tokenizes everything).
	BytesSkipped int64
	// BytesRead counts all raw input bytes the scan consumed, skipped or
	// not — the pass's bytes-in for telemetry.
	BytesRead int64
}

// Reader is a validating pull reader over an XML stream. With
// SetProjection it additionally filters delivery through a projection
// skip automaton (see package proj): pruned subtrees are delivered as
// bare start/end shells with their interiors skipped.
type Reader struct {
	sc *xmltok.Scanner
	// vcore holds the validation state machine (open-element stack,
	// content-model stepping, sym→declaration binding); it is shared
	// with the pipelined pass's validator stage.
	vcore
	attrbuf []xmltok.Attr
	// ev is the reader-owned event returned by NextEvent; setEvent
	// overwrites it with direct field stores (a struct-literal assignment
	// would duffcopy the whole Event per delivered event).
	ev Event

	// Projection state: pauto is nil when projection is off. pstack holds
	// the automaton state per delivered open element (pstack[0] is the
	// virtual document state); a pending shell skip is consumed at the
	// next NextEvent call. pvocab selects the id-jump-table dispatch of
	// automata compiled with the DTD vocabulary.
	pauto       *proj.Automaton
	pfast       bool
	pvocab      bool
	pstack      []int32
	pendingSkip bool
	pstats      ScanStats
}

// NewReader returns a validating reader for the stream r under DTD d.
func NewReader(r io.Reader, d *dtd.DTD) *Reader {
	return &Reader{sc: xmltok.NewScanner(r), vcore: vcore{d: d}}
}

func (r *Reader) setEvent(kind xmltok.Kind, name string, elem *dtd.Element, data []byte, attrs []xmltok.AttrBytes, tab *xmltok.SymTab) *Event {
	ev := &r.ev
	ev.Kind = kind
	ev.Name = name
	ev.Elem = elem
	ev.Data = data
	ev.Attrs = attrs
	ev.tab = tab
	return ev
}

// Reset rebinds the reader to a new stream and DTD, retaining its
// scanner window and stack storage.
func (r *Reader) Reset(rd io.Reader, d *dtd.DTD) {
	r.sc.Reset(rd)
	r.vcore.reset(d)
	r.pauto = nil
	r.pfast = false
	r.pvocab = false
	r.pstack = r.pstack[:0]
	r.pendingSkip = false
	r.pstats = ScanStats{}
}

// SetProjection installs a projection automaton for the current stream:
// only events the automaton deems relevant are delivered; pruned subtrees
// become start/end shells. In fast mode pruned interiors are bulk-skipped
// in the tokenizer (tag balance and the outer end-tag name are checked,
// declarations and content models inside are not); otherwise they are
// fully tokenized and validated, and merely not delivered. Projection is
// cleared by Reset, so it must be re-installed per stream.
func (r *Reader) SetProjection(a *proj.Automaton, mode proj.Mode) {
	if a == nil || mode == proj.ModeOff {
		r.pauto = nil
		return
	}
	r.pauto = a
	r.pfast = mode == proj.ModeFast
	r.pvocab = a.HasVocab()
	r.pstack = append(r.pstack[:0], a.Start())
	r.pendingSkip = false
	r.pstats = ScanStats{}
}

// ScanStats returns the projection counters accumulated since
// SetProjection (zeros when projection is off) plus the raw bytes the
// underlying scanner has consumed on the current stream.
func (r *Reader) ScanStats() ScanStats {
	st := r.pstats
	st.BytesRead = r.sc.Offset()
	return st
}

var readerPool sync.Pool

// GetReader returns a pooled validating reader bound to rd and d.
// Release it with PutReader when the stream has been consumed.
func GetReader(rd io.Reader, d *dtd.DTD) *Reader {
	if v := readerPool.Get(); v != nil {
		r := v.(*Reader)
		r.Reset(rd, d)
		return r
	}
	return NewReader(rd, d)
}

// PutReader returns a Reader obtained from GetReader to the pool.
func PutReader(r *Reader) { readerPool.Put(r) }

// Depth returns the number of currently open elements.
func (r *Reader) Depth() int { return len(r.stack) }

// Element returns the declaration of the innermost open element, or nil at
// document level.
func (r *Reader) Element() *dtd.Element {
	if len(r.stack) == 0 {
		return nil
	}
	return r.stack[len(r.stack)-1].elem
}

// State returns the content-model automaton state of the innermost open
// element, or -1 at document level.
func (r *Reader) State() int {
	if len(r.stack) == 0 {
		return -1
	}
	return r.stack[len(r.stack)-1].state
}

// Past reports whether, at the current position inside the innermost open
// element, no further child labeled in set can occur (the on-first firing
// condition).
func (r *Reader) Past(set []string) bool {
	if len(r.stack) == 0 {
		return false
	}
	f := &r.stack[len(r.stack)-1]
	return f.elem.Automaton().Past(f.state, set)
}

// Line returns the scanner's current line for error reporting.
func (r *Reader) Line() int { return r.sc.Line() }

// NextEvent returns the next validated event in zero-copy form. Comments,
// processing instructions and directives are passed through unvalidated.
// The error is io.EOF at the end of a well-formed, valid document. With a
// projection installed (SetProjection), irrelevant events are consumed
// here and never delivered.
func (r *Reader) NextEvent() (*Event, error) {
	if r.pauto == nil {
		return r.nextCore()
	}
	if r.pendingSkip {
		ev, err := r.finishSkip()
		if err != nil {
			return nil, err
		}
		r.pstats.EventsDelivered++
		return ev, nil
	}
	for {
		ev, err := r.nextCore()
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case xmltok.StartElement:
			var next int32
			if r.pvocab {
				next = r.pauto.ChildID(r.pstack[len(r.pstack)-1], ev.Elem.ID())
			} else {
				next = r.pauto.Child(r.pstack[len(r.pstack)-1], ev.Name)
			}
			if next == proj.StateSkip {
				// Shell: deliver the (validated) start bare, mark its
				// interior for skipping. Nothing downstream reads a
				// pruned element's attributes, so they are dropped to
				// save the per-consumer batch copy.
				ev.Attrs = nil
				r.pendingSkip = true
				r.pstats.SubtreesSkipped++
			} else {
				r.pstack = append(r.pstack, next)
			}
		case xmltok.EndElement:
			r.pstack = r.pstack[:len(r.pstack)-1]
		case xmltok.Text:
			if !r.pauto.Text(r.pstack[len(r.pstack)-1]) {
				r.pstats.EventsSkipped++
				continue
			}
		}
		r.pstats.EventsDelivered++
		return ev, nil
	}
}

// finishSkip consumes the interior of a pending shell element and returns
// its EndElement. In fast mode the tokenizer bulk-skips the raw bytes; in
// validate mode every interior event is tokenized and validated, just not
// delivered.
func (r *Reader) finishSkip() (*Event, error) {
	r.pendingSkip = false
	f := r.stack[len(r.stack)-1]
	if r.pfast {
		c, err := r.sc.SkipSubtree(f.elem.Name)
		r.pstats.BytesSkipped += c.Bytes
		r.pstats.EventsSkipped += c.Events
		if err != nil {
			return nil, err
		}
		// The interior was not validated, so the element's content-model
		// accepting state cannot be checked; the frame is popped as-is.
		r.stack = r.stack[:len(r.stack)-1]
		return r.setEvent(xmltok.EndElement, f.elem.Name, f.elem, nil, nil, nil), nil
	}
	target := len(r.stack)
	for {
		ev, err := r.nextCore()
		if err != nil {
			if err == io.EOF {
				return nil, r.errf("unexpected EOF while skipping <%s>", f.elem.Name)
			}
			return nil, err
		}
		if ev.Kind == xmltok.EndElement && len(r.stack) == target-1 {
			return ev, nil
		}
		r.pstats.EventsSkipped++
	}
}

// nextCore is the unprojected event loop: tokenize, validate, deliver.
func (r *Reader) nextCore() (*Event, error) {
	for {
		ev, err := r.sc.NextEvent()
		if err == io.EOF && !r.sawRoot {
			return nil, r.errf("document has no root element")
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case xmltok.StartElement:
			return r.startElement(ev)
		case xmltok.EndElement:
			return r.endElement(ev)
		case xmltok.Text:
			deliver, terr := r.vcore.text(ev.DataBytes())
			if terr != nil {
				return nil, r.errf("%s", terr)
			}
			if !deliver {
				continue
			}
			return r.setEvent(xmltok.Text, "", nil, ev.DataBytes(), nil, nil), nil
		case xmltok.ProcInst:
			// The target resolves through the symbol table: owned string,
			// no per-event allocation.
			return r.setEvent(ev.Kind, r.sc.SymName(ev.Sym()), nil, ev.DataBytes(), nil, nil), nil
		default:
			return r.setEvent(ev.Kind, "", nil, ev.DataBytes(), nil, nil), nil
		}
	}
}

// Next returns the next validated token with owned strings. It is the
// copying adapter over NextEvent; the Attrs slice is reused across calls.
func (r *Reader) Next() (xmltok.Token, error) {
	ev, err := r.NextEvent()
	if err != nil {
		return xmltok.Token{}, err
	}
	t := xmltok.Token{Kind: ev.Kind, Name: ev.Name, Data: string(ev.Data)}
	if len(ev.Attrs) > 0 {
		r.attrbuf = ev.AppendOwnedAttrs(r.attrbuf[:0])
		t.Attrs = r.attrbuf
	}
	return t, nil
}

func (r *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("xsax: line %d: %s", r.sc.Line(), fmt.Sprintf(format, args...))
}

func (r *Reader) startElement(tok *xmltok.Event) (*Event, error) {
	attrs := tok.Attrs()
	e, err := r.vcore.start(tok.Sym(), tok.NameBytes(), attrs)
	if err != nil {
		return nil, r.errf("%s", err)
	}
	return r.setEvent(xmltok.StartElement, e.Name, e, nil, attrs, r.sc.Syms()), nil
}

func (r *Reader) endElement(tok *xmltok.Event) (*Event, error) {
	e, err := r.vcore.end(tok.Sym(), tok.NameBytes())
	if err != nil {
		return nil, r.errf("%s", err)
	}
	return r.setEvent(xmltok.EndElement, e.Name, e, nil, nil, nil), nil
}

// Skip consumes and validates the remainder of the innermost open
// element's subtree, including its end tag. It is the evaluator's "ignore
// this child" fast path.
func (r *Reader) Skip() error {
	depth := len(r.stack)
	for len(r.stack) >= depth {
		if _, err := r.NextEvent(); err != nil {
			if err == io.EOF {
				return r.errf("unexpected EOF while skipping")
			}
			return err
		}
	}
	return nil
}

// Validate reads the whole stream and returns the first validation error,
// if any.
func Validate(rd io.Reader, d *dtd.DTD) error {
	r := GetReader(rd, d)
	defer PutReader(r)
	for {
		_, err := r.NextEvent()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
