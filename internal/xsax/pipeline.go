package xsax

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"fluxquery/internal/dtd"
	"fluxquery/internal/faultinj"
	"fluxquery/internal/proj"
	"fluxquery/internal/xmltok"
)

// This file implements the pipelined pass: tokenization, DTD validation
// and delivery run as three stages on separate goroutines, connected by
// two bounded SPSC rings of owned batches —
//
//	tokenizer ──TokBatch ring──▶ validator ──Batch ring──▶ caller
//
// so the scanner runs ahead of validation, which runs ahead of the
// consumers, instead of the three alternating on one goroutine. The
// tokenizer stage also executes the projection automaton (it owns the
// scanner, and fast-mode pruning is a scanner operation); it records its
// verdicts as per-event flags that the validator replays, so delivery
// and error semantics are exactly those of the sequential Reader — the
// differential tests pin byte-identical output.
//
// Each ring is a pair of channels: full batches flowing downstream and
// empty batches flowing back. The batch population is fixed at ring
// construction, so a stage that outruns its consumer blocks on the full
// ring (backpressure) and a stage that outruns its producer blocks on
// the empty one; both blocked times are accounted as per-stage stalls.

// PipeStats reports a pipelined pass's stage metrics.
type PipeStats struct {
	// Batches counts validated batches handed to the caller.
	Batches int64
	// TokStall is the time the tokenizer stage spent blocked on a full
	// token ring (validation was the bottleneck); ValStall the same for
	// the validator on the event ring (consumers were the bottleneck);
	// DispStall the time the caller waited for a validated batch (the
	// scan was the bottleneck).
	TokStall, ValStall, DispStall time.Duration
	// TokRingPeak and ValRingPeak are high-water occupancies of the two
	// rings, observed at send.
	TokRingPeak, ValRingPeak int
}

// PipelineConfig configures a pipelined pass.
type PipelineConfig struct {
	// BatchEvents and BatchBytes bound a batch (defaults 256 events,
	// 32 KiB of payload).
	BatchEvents int
	BatchBytes  int
	// RingDepth bounds each inter-stage ring (default 4 batches).
	RingDepth int
	// Proj and ProjMode install a projection automaton, with the same
	// semantics as Reader.SetProjection.
	Proj     *proj.Automaton
	ProjMode proj.Mode
	// Throttle, when non-nil, is called by the tokenizer stage before
	// each batch: the pass's backpressure point (a bufmgr gate wait). A
	// non-nil return is the pass's terminal error — the tokenizer stops
	// and the error drains downstream like a stream error.
	Throttle func() error
	// Ctx, when non-nil, cancels the pass: Next returns ctx.Err() as
	// soon as the context is done, even while the stages are still
	// filling rings (the caller must still Close the pipeline, which
	// unparks and joins them).
	Ctx context.Context
}

const defaultRingDepth = 4

// Pipeline is one pipelined tokenize→validate pass over a stream. The
// caller drains it with Next/Recycle and must Close it exactly once —
// also on early abandonment, which unblocks and joins the stages.
type Pipeline struct {
	sc  *xmltok.Scanner
	d   *dtd.DTD
	cfg PipelineConfig

	// ctxDone is cfg.Ctx's done channel (nil blocks forever when no
	// context is configured).
	ctxDone <-chan struct{}

	quit   chan struct{}
	tvFull chan *TokBatch
	tvFree chan *TokBatch
	vdFull chan *Batch
	vdFree chan *Batch
	wg     sync.WaitGroup
	closed bool

	// Tokenizer-stage state: the projection automaton stack, the
	// sym→declaration cache for skip decisions (tundecl marks symbols
	// with no declaration: delivered, reported by the validator), and
	// the validate-mode interior depth.
	pauto  *proj.Automaton
	pfast  bool
	pvocab bool
	tstack []int32
	tselem []*dtd.Element
	tundec []bool
	vskip  int
	// terr/terrLine are the tokenizer's terminal condition, published to
	// the validator by closing tvFull.
	terr     error
	terrLine int
	tokStats ScanStats
	tokStall int64
	tokPeak  int

	// Validator-stage state. vname caches sym→owned name bytes for
	// vcore, which keys on byte slices (one small allocation per
	// distinct name per stream).
	val      vcore
	vname    [][]byte
	verr     error
	valStats ScanStats
	valStall int64
	valPeak  int

	// Caller-side counters.
	dispStall int64
	batches   int64
}

var pipePool sync.Pool

// NewPipeline starts a pipelined pass over rd under DTD d. The two stage
// goroutines run until the stream's terminal condition or Close.
func NewPipeline(rd io.Reader, d *dtd.DTD, cfg PipelineConfig) *Pipeline {
	var p *Pipeline
	if v := pipePool.Get(); v != nil {
		p = v.(*Pipeline)
		p.sc.Reset(rd)
	} else {
		p = &Pipeline{sc: xmltok.NewScanner(rd)}
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = 256
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 32 << 10
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = defaultRingDepth
	}
	if cfg.ProjMode == proj.ModeOff {
		cfg.Proj = nil
	}
	p.d = d
	p.cfg = cfg
	p.ctxDone = nil
	if cfg.Ctx != nil {
		p.ctxDone = cfg.Ctx.Done()
	}
	p.pauto = cfg.Proj
	p.pfast = cfg.ProjMode == proj.ModeFast
	p.pvocab = cfg.Proj != nil && cfg.Proj.HasVocab()
	p.tstack = p.tstack[:0]
	if p.pauto != nil {
		p.tstack = append(p.tstack, p.pauto.Start())
	}
	for i := range p.tselem {
		p.tselem[i] = nil
		p.tundec[i] = false
	}
	p.vskip = 0
	p.terr, p.terrLine = nil, 0
	p.tokStats, p.valStats = ScanStats{}, ScanStats{}
	p.tokStall, p.valStall, p.dispStall = 0, 0, 0
	p.tokPeak, p.valPeak, p.batches = 0, 0, 0
	p.val.reset(d)
	for i := range p.vname {
		p.vname[i] = nil
	}
	p.verr = nil
	p.closed = false

	r := cfg.RingDepth
	p.quit = make(chan struct{})
	p.tvFull = make(chan *TokBatch, r)
	p.tvFree = make(chan *TokBatch, r+1)
	p.vdFull = make(chan *Batch, r)
	p.vdFree = make(chan *Batch, r+1)
	// Fixed batch populations: stages only recirculate, so free-ring
	// sends below never block.
	for i := 0; i < r+1; i++ {
		p.tvFree <- getTokBatch()
		p.vdFree <- GetBatch()
	}

	p.wg.Add(2)
	go p.tokRun()
	go p.valRun()
	return p
}

// Next returns the next validated batch, or the pass's terminal error
// once the stages have drained: io.EOF after a well-formed, valid
// document, the first stream or validation error otherwise. The batch
// (including every byte view) is owned by the caller until Recycle.
func (p *Pipeline) Next() (*Batch, error) {
	var vb *Batch
	var ok bool
	select {
	case vb, ok = <-p.vdFull:
	default:
		start := time.Now()
		select {
		case vb, ok = <-p.vdFull:
		case <-p.ctxDone:
			p.dispStall += time.Since(start).Nanoseconds()
			return nil, p.cfg.Ctx.Err()
		}
		p.dispStall += time.Since(start).Nanoseconds()
	}
	if !ok {
		return nil, p.verr
	}
	p.batches++
	return vb, nil
}

// Recycle returns a batch obtained from Next, together with the raw
// token batch backing its views, to the pipeline's rings.
func (p *Pipeline) Recycle(b *Batch) {
	tb := b.src
	b.src = nil
	if tb != nil {
		select {
		case p.tvFree <- tb:
		default:
			putTokBatch(tb)
		}
	}
	select {
	case p.vdFree <- b:
	default:
		PutBatch(b)
	}
}

// Close unblocks and joins the stages, releases the batch population and
// returns the pass's scan statistics, stage metrics and terminal error
// (nil after a clean end-of-stream). It must be called exactly once.
func (p *Pipeline) Close() (ScanStats, PipeStats, error) {
	if p.closed {
		return ScanStats{}, PipeStats{}, fmt.Errorf("xsax: pipeline closed twice")
	}
	p.closed = true
	close(p.quit)
	p.wg.Wait()
	// Stages are joined: drain the rings back into the pools. The full
	// rings are closed by their producers, so a drained recv yields nil.
	for tb := range p.tvFull {
		putTokBatch(tb)
	}
	for vb := range p.vdFull {
		if vb.src != nil {
			putTokBatch(vb.src)
			vb.src = nil
		}
		PutBatch(vb)
	}
	for {
		select {
		case tb := <-p.tvFree:
			putTokBatch(tb)
			continue
		default:
		}
		break
	}
	for {
		select {
		case vb := <-p.vdFree:
			PutBatch(vb)
			continue
		default:
		}
		break
	}

	sc := ScanStats{
		EventsDelivered: p.valStats.EventsDelivered,
		EventsSkipped:   p.tokStats.EventsSkipped + p.valStats.EventsSkipped,
		SubtreesSkipped: p.tokStats.SubtreesSkipped,
		BytesSkipped:    p.tokStats.BytesSkipped,
		BytesRead:       p.sc.Offset(),
	}
	ps := PipeStats{
		Batches:     p.batches,
		TokStall:    time.Duration(p.tokStall),
		ValStall:    time.Duration(p.valStall),
		DispStall:   time.Duration(p.dispStall),
		TokRingPeak: p.tokPeak,
		ValRingPeak: p.valPeak,
	}
	err := p.verr
	if err == io.EOF {
		err = nil
	}
	pipePool.Put(p)
	return sc, ps, err
}

// ---------------------------------------------------------------------
// Tokenizer stage

func (p *Pipeline) tokRun() {
	defer p.wg.Done()
	defer close(p.tvFull)
	for {
		var tb *TokBatch
		select {
		case tb = <-p.tvFree:
			tb.Reset()
		case <-p.quit:
			return
		}
		if p.cfg.Throttle != nil {
			if err := p.cfg.Throttle(); err != nil {
				// Cancelled at the backpressure point: the error is the
				// pass's terminal condition, published like a stream error.
				p.terr = err
				p.terrLine = p.sc.Line()
				select {
				case p.tvFree <- tb:
				default:
					putTokBatch(tb)
				}
				return
			}
		}
		var terminal bool
		for tb.Len() < p.cfg.BatchEvents && tb.ArenaBytes() < p.cfg.BatchBytes {
			ev, err := p.sc.NextEvent()
			if err == nil {
				err = p.tokEmit(tb, ev)
			}
			if err != nil {
				p.terr = err
				p.terrLine = p.sc.Line()
				terminal = true
				break
			}
		}
		if tb.Len() > 0 {
			if !p.tokSend(tb) {
				return
			}
		} else {
			select {
			case p.tvFree <- tb:
			default:
				putTokBatch(tb)
			}
		}
		if terminal {
			return
		}
	}
}

// tokSend hands a full batch downstream, accounting blocked time as the
// tokenizer stage's stall. It reports false when the pass was abandoned
// or an injected ring fault dropped the hand-off (the fault becomes the
// pass's terminal error).
func (p *Pipeline) tokSend(tb *TokBatch) bool {
	if err := faultinj.Hit(faultinj.SiteRingToken); err != nil {
		p.terr = err
		p.terrLine = p.sc.Line()
		putTokBatch(tb)
		return false
	}
	select {
	case p.tvFull <- tb:
	default:
		start := time.Now()
		select {
		case p.tvFull <- tb:
			p.tokStall += time.Since(start).Nanoseconds()
		case <-p.quit:
			return false
		}
	}
	if n := len(p.tvFull); n > p.tokPeak {
		p.tokPeak = n
	}
	return true
}

// tokElem resolves a start tag's symbol to its declaration for the skip
// decision, caching per symbol. A nil result with ok=true means the name
// has no declaration: the event is delivered un-projected and the
// validator reports the error at the same position the sequential reader
// would.
func (p *Pipeline) tokElem(sym xmltok.Sym, name []byte) *dtd.Element {
	if int(sym) < len(p.tselem) {
		if e := p.tselem[sym]; e != nil {
			return e
		}
		if p.tundec[sym] {
			return nil
		}
	}
	for int(sym) >= len(p.tselem) {
		p.tselem = append(p.tselem, nil)
		p.tundec = append(p.tundec, false)
	}
	e := p.d.ElementBytes(name)
	if e == nil {
		p.tundec[sym] = true
		return nil
	}
	p.tselem[sym] = e
	return e
}

// tokEmit applies the projection automaton to one scanner event and
// appends the verdict-flagged raw event(s) to tb.
func (p *Pipeline) tokEmit(tb *TokBatch, ev *xmltok.Event) error {
	line := p.sc.Line()
	if p.pauto == nil {
		tb.Append(ev, 0, line)
		return nil
	}
	if p.vskip > 0 {
		// Inside a validate-mode pruned subtree: everything is tagged
		// for validation without delivery, except the closing end tag.
		switch ev.Kind {
		case xmltok.StartElement:
			p.vskip++
			tb.Append(ev, tokInterior, line)
		case xmltok.EndElement:
			p.vskip--
			if p.vskip == 0 {
				tb.Append(ev, tokShellEnd, line)
			} else {
				tb.Append(ev, tokInterior, line)
			}
		default:
			tb.Append(ev, tokInterior, line)
		}
		return nil
	}
	switch ev.Kind {
	case xmltok.StartElement:
		top := p.tstack[len(p.tstack)-1]
		e := p.tokElem(ev.Sym(), ev.NameBytes())
		if e == nil {
			// Undeclared element: no skip decision is possible; deliver
			// it (the validator rejects it) and keep the stack balanced
			// in case the scan runs ahead of the error.
			tb.Append(ev, 0, line)
			p.tstack = append(p.tstack, top)
			return nil
		}
		var next int32
		if p.pvocab {
			next = p.pauto.ChildID(top, e.ID())
		} else {
			next = p.pauto.Child(top, e.Name)
		}
		if next != proj.StateSkip {
			tb.Append(ev, 0, line)
			p.tstack = append(p.tstack, next)
			return nil
		}
		// Pruned subtree: the start goes downstream as a shell.
		p.tokStats.SubtreesSkipped++
		tb.Append(ev, tokShellStart, line)
		if !p.pfast {
			p.vskip = 1
			return nil
		}
		c, err := p.sc.SkipSubtree(e.Name)
		p.tokStats.BytesSkipped += c.Bytes
		p.tokStats.EventsSkipped += c.Events
		if err != nil {
			return err
		}
		tb.AppendSynth(xmltok.EndElement, ev.Sym(), tokShellEndFast, p.sc.Line())
	case xmltok.EndElement:
		if len(p.tstack) > 1 {
			p.tstack = p.tstack[:len(p.tstack)-1]
		}
		tb.Append(ev, 0, line)
	case xmltok.Text:
		var flags uint8
		if !p.pauto.Text(p.tstack[len(p.tstack)-1]) {
			flags = tokTextDrop
		}
		tb.Append(ev, flags, line)
	default:
		tb.Append(ev, 0, line)
	}
	return nil
}

// ---------------------------------------------------------------------
// Validator stage

func (p *Pipeline) valRun() {
	defer p.wg.Done()
	defer close(p.vdFull)
	for {
		var tb *TokBatch
		var ok bool
		select {
		case tb, ok = <-p.tvFull:
		case <-p.quit:
			return
		}
		if !ok {
			// Tokenizer terminal: convert a rootless clean EOF like the
			// sequential reader does.
			if p.terr == io.EOF && !p.val.sawRoot {
				p.verr = fmt.Errorf("xsax: line %d: document has no root element", p.terrLine)
			} else {
				p.verr = p.terr
			}
			return
		}
		var vb *Batch
		select {
		case vb = <-p.vdFree:
			vb.Reset()
		case <-p.quit:
			return
		}
		var verr error
		for i := range tb.Events {
			if verr = p.valEvent(vb, &tb.Events[i]); verr != nil {
				break
			}
		}
		// Events validated before an error are still delivered, exactly
		// as the sequential dispatcher delivers a partial batch before
		// reporting the stream's error.
		vb.src = tb
		if vb.Len() > 0 {
			if !p.valSend(vb) {
				return
			}
		} else {
			vb.src = nil
			select {
			case p.tvFree <- tb:
			default:
				putTokBatch(tb)
			}
			select {
			case p.vdFree <- vb:
			default:
				PutBatch(vb)
			}
		}
		if verr != nil {
			p.verr = verr
			return
		}
	}
}

func (p *Pipeline) valSend(vb *Batch) bool {
	if err := faultinj.Hit(faultinj.SiteRingEvent); err != nil {
		p.verr = err
		if vb.src != nil {
			putTokBatch(vb.src)
			vb.src = nil
		}
		PutBatch(vb)
		return false
	}
	select {
	case p.vdFull <- vb:
	default:
		start := time.Now()
		select {
		case p.vdFull <- vb:
			p.valStall += time.Since(start).Nanoseconds()
		case <-p.quit:
			return false
		}
	}
	if n := len(p.vdFull); n > p.valPeak {
		p.valPeak = n
	}
	return true
}

func (p *Pipeline) valErrf(te *TokEvent, err error) error {
	return fmt.Errorf("xsax: line %d: %s", te.Line, err)
}

// nameOf resolves an element symbol to owned name bytes for vcore (one
// allocation per distinct name per stream; the scanner's symbol table is
// safe to read while the tokenizer stage interns ahead).
func (p *Pipeline) nameOf(sym xmltok.Sym) []byte {
	if sym == xmltok.NoSym {
		return nil
	}
	if int(sym) < len(p.vname) {
		if nb := p.vname[sym]; nb != nil {
			return nb
		}
	}
	nb := []byte(p.sc.Syms().Name(sym))
	for int(sym) >= len(p.vname) {
		p.vname = append(p.vname, nil)
	}
	p.vname[sym] = nb
	return nb
}

// valEvent validates one raw event and appends its validated form to vb
// unless the tokenizer's projection verdict suppresses delivery.
func (p *Pipeline) valEvent(vb *Batch, te *TokEvent) error {
	if te.Flags&tokInterior != 0 {
		// Validate-mode pruned interior: full validation, no delivery.
		switch te.Kind {
		case xmltok.StartElement:
			if _, err := p.val.start(te.Sym, p.nameOf(te.Sym), te.Attrs); err != nil {
				return p.valErrf(te, err)
			}
		case xmltok.EndElement:
			if _, err := p.val.end(te.Sym, p.nameOf(te.Sym)); err != nil {
				return p.valErrf(te, err)
			}
		case xmltok.Text:
			deliver, err := p.val.text(te.Data)
			if err != nil {
				return p.valErrf(te, err)
			}
			if !deliver {
				// Insignificant whitespace never counts as skipped.
				return nil
			}
		}
		p.valStats.EventsSkipped++
		return nil
	}
	switch te.Kind {
	case xmltok.StartElement:
		e, err := p.val.start(te.Sym, p.nameOf(te.Sym), te.Attrs)
		if err != nil {
			return p.valErrf(te, err)
		}
		attrs := te.Attrs
		if te.Flags&tokShellStart != 0 {
			// Nothing downstream reads a pruned element's attributes
			// (they were still validated above).
			attrs = nil
		}
		vb.appendDirect(Event{Kind: xmltok.StartElement, Name: e.Name, Elem: e, Attrs: attrs, tab: p.sc.Syms()})
	case xmltok.EndElement:
		var e *dtd.Element
		if te.Flags&tokShellEndFast != 0 {
			// The interior was bulk-skipped unvalidated, so the content
			// model's accepting state cannot be checked.
			e = p.val.popShell()
		} else {
			var err error
			if e, err = p.val.end(te.Sym, p.nameOf(te.Sym)); err != nil {
				return p.valErrf(te, err)
			}
		}
		vb.appendDirect(Event{Kind: xmltok.EndElement, Name: e.Name, Elem: e})
	case xmltok.Text:
		deliver, err := p.val.text(te.Data)
		if err != nil {
			return p.valErrf(te, err)
		}
		if !deliver {
			return nil
		}
		if te.Flags&tokTextDrop != 0 {
			p.valStats.EventsSkipped++
			return nil
		}
		vb.appendDirect(Event{Kind: xmltok.Text, Data: te.Data})
	case xmltok.ProcInst:
		vb.appendDirect(Event{Kind: xmltok.ProcInst, Name: p.sc.Syms().Name(te.Sym), Data: te.Data})
	default:
		vb.appendDirect(Event{Kind: te.Kind, Data: te.Data})
	}
	if p.pauto != nil {
		p.valStats.EventsDelivered++
	}
	return nil
}
