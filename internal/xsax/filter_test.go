package xsax

import (
	"io"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
	"fluxquery/internal/xmltok"
)

const filterDTD = `<!ELEMENT bib (book)*>
<!ELEMENT book (title,info)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>`

const filterDoc = `<bib><book><title>T1</title><info><isbn>1</isbn><blurb>long text</blurb></info></book>` +
	`<book><title>T2</title><info><isbn>2</isbn><blurb>more text</blurb></info></book></bib>`

// titleOnly is a path-set keeping bib/book/title subtrees and nothing
// below info.
func titleOnly() *proj.Automaton {
	s := proj.NewPathSet()
	s.Root.Child("bib").Child("book").Child("title").All = true
	return proj.Compile(s)
}

// drainEvents collects (kind, name-or-data) pairs of a whole stream.
func drainEvents(t *testing.T, r *Reader) []string {
	t.Helper()
	var out []string
	for {
		ev, err := r.NextEvent()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case xmltok.StartElement:
			out = append(out, "<"+ev.Name+">")
		case xmltok.EndElement:
			out = append(out, "</"+ev.Name+">")
		case xmltok.Text:
			out = append(out, string(ev.Data))
		}
	}
}

func TestFilteredReaderShellsAndText(t *testing.T) {
	d := dtd.MustParse(filterDTD)
	for _, mode := range []proj.Mode{proj.ModeFast, proj.ModeValidate} {
		r := GetReader(strings.NewReader(filterDoc), d)
		r.SetProjection(titleOnly(), mode)
		got := strings.Join(drainEvents(t, r), " ")
		// info is a shell: start and end delivered, interior gone.
		want := "<bib> <book> <title> T1 </title> <info> </info> </book> " +
			"<book> <title> T2 </title> <info> </info> </book> </bib>"
		if got != want {
			t.Errorf("mode %v:\ngot:  %s\nwant: %s", mode, got, want)
		}
		st := r.ScanStats()
		if st.EventsDelivered == 0 || st.EventsSkipped == 0 || st.SubtreesSkipped != 2 {
			t.Errorf("mode %v: stats %+v", mode, st)
		}
		if mode == proj.ModeFast && st.BytesSkipped == 0 {
			t.Error("fast mode recorded no bulk-skipped bytes")
		}
		if mode == proj.ModeValidate && st.BytesSkipped != 0 {
			t.Error("validate mode claims bulk-skipped bytes")
		}
		PutReader(r)
	}
}

// TestFilteredReaderValidatesFrontier: the start tag of a pruned element
// is still fully validated (undeclared element, missing required
// attribute, content-model position) in both modes.
func TestFilteredReaderValidatesFrontier(t *testing.T) {
	d := dtd.MustParse(filterDTD)
	// <extra> is undeclared at the frontier (a direct, prunable child
	// position): both modes must reject it.
	bad := `<bib><book><title>T</title><extra/></book></bib>`
	for _, mode := range []proj.Mode{proj.ModeFast, proj.ModeValidate} {
		r := GetReader(strings.NewReader(bad), d)
		r.SetProjection(titleOnly(), mode)
		var err error
		for err == nil {
			_, err = r.NextEvent()
		}
		if err == io.EOF {
			t.Errorf("mode %v: undeclared frontier element accepted", mode)
		}
		PutReader(r)
	}
}

// TestFilteredReaderValidateModeSeesInterior: an invalid element hidden
// inside a pruned subtree is caught by validate mode and traded away by
// fast mode (the documented difference).
func TestFilteredReaderValidateModeSeesInterior(t *testing.T) {
	d := dtd.MustParse(filterDTD)
	bad := `<bib><book><title>T</title><info><wrong/></info></book></bib>`
	run := func(mode proj.Mode) error {
		r := GetReader(strings.NewReader(bad), d)
		defer PutReader(r)
		r.SetProjection(titleOnly(), mode)
		var err error
		for err == nil {
			_, err = r.NextEvent()
		}
		if err == io.EOF {
			return nil
		}
		return err
	}
	if err := run(proj.ModeValidate); err == nil {
		t.Error("validate mode accepted an invalid pruned interior")
	}
	if err := run(proj.ModeFast); err != nil {
		t.Errorf("fast mode rejected a balanced pruned interior: %v", err)
	}
}

// TestFilteredReaderEquivalence: filtering never changes which events of
// the kept region are delivered, against an unprojected reference.
func TestFilteredReaderEquivalence(t *testing.T) {
	d := dtd.MustParse(filterDTD)
	ref := GetReader(strings.NewReader(filterDoc), d)
	full := drainEvents(t, ref)
	PutReader(ref)

	// keep-everything set: All at the root child.
	s := proj.NewPathSet()
	s.Root.Child("bib").All = true
	for _, mode := range []proj.Mode{proj.ModeFast, proj.ModeValidate} {
		r := GetReader(strings.NewReader(filterDoc), d)
		r.SetProjection(proj.Compile(s), mode)
		got := drainEvents(t, r)
		PutReader(r)
		if strings.Join(got, "|") != strings.Join(full, "|") {
			t.Errorf("mode %v: keep-all projection altered the stream", mode)
		}
	}
}

// TestFilteredReaderReset: projection must not survive a pooled reader's
// Reset.
func TestFilteredReaderReset(t *testing.T) {
	d := dtd.MustParse(filterDTD)
	r := GetReader(strings.NewReader(filterDoc), d)
	r.SetProjection(titleOnly(), proj.ModeFast)
	drainEvents(t, r)
	r.Reset(strings.NewReader(filterDoc), d)
	if got := drainEvents(t, r); len(got) < 20 {
		t.Errorf("projection leaked through Reset: only %d events", len(got))
	}
	PutReader(r)
}
