package xsax

import (
	"sync"

	"fluxquery/internal/xmltok"
)

// Batch is an owned, reusable sequence of validated events. Events
// returned by Reader.NextEvent view scanner memory that is invalidated by
// the very next reader call; Append copies those views into the batch's
// arena so the whole batch can be handed across a consumer boundary — to
// an incremental StepExec, or to many of them at once in the shared-stream
// dispatcher — while the reader keeps scanning ahead.
//
// Ownership rule: the events in Events (including every Data and Attrs
// byte view) are valid until the next Reset of the batch. A driver must
// therefore not Reset until every consumer has finished the batch; the
// rendezvous protocol of runtime.StepExec guarantees exactly that.
// Element names and declarations are interned in the DTD and always safe
// to retain; consumers that keep text or attribute bytes beyond the batch
// lifetime must copy them (the evaluator does so at its BDF buffer-fill
// points).
type Batch struct {
	// Events is the batch content, in stream order.
	Events []Event
	// arena backs the Data and attribute byte views of Events.
	arena []byte
	// attrs backs the Attrs slices of Events.
	attrs []xmltok.AttrBytes
	// src, when non-nil, is the raw token batch whose arena this batch's
	// events alias (pipelined passes validate without re-copying); the
	// pair is recycled together by Pipeline.Recycle.
	src *TokBatch
}

// Reset empties the batch, retaining its storage. It invalidates every
// event previously handed out.
func (b *Batch) Reset() {
	b.Events = b.Events[:0]
	b.arena = b.arena[:0]
	b.attrs = b.attrs[:0]
	b.src = nil
}

// appendDirect appends an already-owned event without copying into the
// arena; the pipelined validator uses it because its event views alias
// the TokBatch recycled together with this batch.
func (b *Batch) appendDirect(e Event) { b.Events = append(b.Events, e) }

// Len returns the number of buffered events.
func (b *Batch) Len() int { return len(b.Events) }

// ArenaBytes returns the number of payload bytes the batch currently
// owns; drivers use it to bound batch size.
func (b *Batch) ArenaBytes() int { return len(b.arena) }

// Append copies ev into the batch. The copy is deep with respect to
// scanner-owned memory (Data, attribute names and values) and shallow for
// interned data (Name, Elem, the symbol-table reference — the scanner is
// idle while consumers hold the batch, so resolving symbols through it is
// safe).
func (b *Batch) Append(ev *Event) {
	e := Event{Kind: ev.Kind, Name: ev.Name, Elem: ev.Elem, tab: ev.tab}
	if len(ev.Data) > 0 {
		e.Data = b.copyBytes(ev.Data)
	}
	if len(ev.Attrs) > 0 {
		start := len(b.attrs)
		for _, a := range ev.Attrs {
			b.attrs = append(b.attrs, xmltok.AttrBytes{
				Name:  b.copyBytes(a.Name),
				Value: b.copyBytes(a.Value),
				Sym:   a.Sym,
			})
		}
		// Full slice expression: a later arena/attrs growth must not let
		// one event's append bleed into another event's view.
		e.Attrs = b.attrs[start:len(b.attrs):len(b.attrs)]
	}
	b.Events = append(b.Events, e)
}

func (b *Batch) copyBytes(p []byte) []byte {
	off := len(b.arena)
	b.arena = append(b.arena, p...)
	return b.arena[off:len(b.arena):len(b.arena)]
}

var batchPool sync.Pool

// GetBatch returns an empty pooled batch.
func GetBatch() *Batch {
	if v := batchPool.Get(); v != nil {
		b := v.(*Batch)
		b.Reset()
		return b
	}
	return &Batch{}
}

// PutBatch returns a batch to the pool. The caller must not retain any of
// the batch's events past this call.
func PutBatch(b *Batch) { batchPool.Put(b) }
