package xsax

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
)

// TestTriggerOrderingMultipleOnSameElement: triggers registered on the
// same element fire in registration order even when both become true at
// the same event.
func TestTriggerOrderingMultipleOnSameElement(t *testing.T) {
	d := dtd.MustParse(strongBib)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{
		{Element: "book", Past: []string{"title"}},
		{Element: "book", Past: []string{"title", "author", "editor"}},
		{Element: "book", Past: []string{"author", "editor"}},
	})
	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rec.events, " ")
	// first:0 after title; first:1 and first:2 after publisher, in
	// registration order.
	i0 := strings.Index(joined, "first:0")
	i1 := strings.Index(joined, "first:1")
	i2 := strings.Index(joined, "first:2")
	if !(i0 >= 0 && i0 < i1 && i1 < i2) {
		t.Errorf("trigger order wrong: %s", joined)
	}
}

// TestTriggersOnNestedInstances: independent firing per nesting level.
func TestTriggersOnNestedInstances(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT n (a?,n?,b?)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
`)
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{{Element: "n", Past: []string{"a"}}})
	doc := `<n><a/><n><b/></n></n>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	n := strings.Count(strings.Join(rec.events, " "), "first:0")
	if n != 2 {
		t.Errorf("fired %d times, want 2 (outer after <a/>, inner at <b/> or end)", n)
	}
}

// TestAnyContentModel: ANY elements accept any declared children and
// text; triggers over ANY never fire early.
func TestAnyContentModel(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT box ANY>
<!ELEMENT item (#PCDATA)>
`)
	if err := Validate(strings.NewReader(`<box>text<item>i</item><box><item>j</item></box></box>`), d); err != nil {
		t.Fatalf("ANY document rejected: %v", err)
	}
	rec := &recorder{}
	p := NewParser(d, rec, []Trigger{{Element: "box", Past: []string{"item"}}})
	doc := `<box><item>i</item><item>j</item></box>`
	if err := p.Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rec.events, " ")
	// The trigger may only fire at the end tag (items possible forever).
	if !strings.HasSuffix(joined, "first:0 </box>") {
		t.Errorf("ANY trigger fired early: %s", joined)
	}
}

// TestReaderElementAndState: accessors reflect the open element.
func TestReaderElementAndState(t *testing.T) {
	d := dtd.MustParse(weakBib)
	r := NewReader(strings.NewReader(`<bib><book><title>T</title></book></bib>`), d)
	if r.Element() != nil || r.State() != -1 {
		t.Error("document level should have no element")
	}
	r.Next() // <bib>
	if r.Element() == nil || r.Element().Name != "bib" {
		t.Errorf("element = %+v", r.Element())
	}
	r.Next() // <book>
	if r.Element().Name != "book" || r.Depth() != 2 {
		t.Errorf("element = %v depth = %d", r.Element().Name, r.Depth())
	}
	if r.State() < 0 {
		t.Error("book state missing")
	}
	if r.Line() <= 0 {
		t.Error("line not tracked")
	}
}

// TestSkipAtDocumentLevelFails gracefully (nothing to skip).
func TestSkipValidatesWhileSkipping(t *testing.T) {
	d := dtd.MustParse(strongBib)
	// The skipped book is invalid (editor after author): Skip must
	// report it.
	doc := `<bib><book><title>T</title><author>A</author><editor>E</editor><publisher>P</publisher><price>9</price></book></bib>`
	r := NewReader(strings.NewReader(doc), d)
	r.Next() // bib
	tok, err := r.Next()
	if err != nil || tok.Name != "book" {
		t.Fatalf("setup: %v %v", tok, err)
	}
	if err := r.Skip(); err == nil {
		t.Error("Skip validated nothing: invalid content accepted")
	}
}
