package xmltok

import "sync/atomic"

// This file implements the scanner's symbol table: every element and
// attribute name (and processing-instruction target) seen on a stream is
// interned to a dense integer Sym at tokenization time. The layers above
// the tokenizer key their per-event decisions on these integers — the
// validating reader binds Sym → *dtd.Element once per distinct name and
// stream, the DTD content-model automata and the projection automaton
// dispatch through Sym/name-id indexed tables, and the runtime's handler
// dispatch is a slice index — so the per-event hot path never hashes or
// compares a name string after a name's first occurrence.

// Sym is a dense per-scanner symbol: the index of an interned name in the
// scanner's symbol table, assigned in order of first occurrence starting
// at 0. Symbols are only meaningful relative to the scanner that produced
// them and are stable for the lifetime of one stream; a Reset may renumber
// (consumers re-derive their Sym-indexed bindings per stream).
type Sym int32

// NoSym marks an event that carries no name (Text, Comment, Directive).
const NoSym Sym = -1

// symTabInitSlots is the initial hash-table size; it must be a power of
// two. The table grows by doubling when occupancy passes 3/4.
const symTabInitSlots = 128

// maxRetainedSyms bounds the vocabulary a pooled scanner carries across
// Reset: a scanner that has accumulated more distinct names than this
// (many unrelated document vocabularies through one pool slot) starts
// over, so the table cannot grow without bound in a long-lived server.
const maxRetainedSyms = 4096

// SymTab interns byte-slice names to dense Sym integers. The zero value
// is ready to use. Interning a name that is already present performs one
// hash probe and no allocation; the first occurrence of a name copies it
// into an owned string.
//
// Concurrency: there is exactly one writer (the scanner goroutine calling
// Intern/Reset). Name and Len may be called from other goroutines
// concurrently with Intern, provided the caller obtained the symbol
// through a happens-before edge from the intern that issued it — the
// batch-ring handoff of the pipelined pass, or the batch rendezvous of
// the sequential pass, both establish that edge. Intern publishes the
// name vector through an atomic pointer on every new name, so readers
// never observe a torn slice header. Reset still requires quiescence: it
// renumbers symbols, so no reader may hold symbols across it (streams
// never share symbols across a Reset anyway).
type SymTab struct {
	// names maps Sym → owned name; its length is the symbol count. It is
	// the writer's working copy; cross-goroutine readers go through pub.
	names []string
	// pub is the atomically published snapshot of names, stored on every
	// append (one pointer store per distinct name per stream, nothing on
	// the hot repeat-name path).
	pub atomic.Pointer[[]string]
	// slots is the open-addressing hash table; entries are Sym indices or
	// -1 for empty. len(slots) is a power of two.
	slots []int32
}

// Len returns the number of interned names.
func (t *SymTab) Len() int { return len(t.names) }

// Name returns the interned name of s. The string is owned by the table
// and safe to retain for the lifetime of the scanner. Name panics on a
// symbol the table never issued.
func (t *SymTab) Name(s Sym) string {
	if p := t.pub.Load(); p != nil {
		return (*p)[s]
	}
	return t.names[s]
}

// publish snapshots names for concurrent readers.
func (t *SymTab) publish() {
	n := t.names
	t.pub.Store(&n)
}

// Reset discards all interned names and symbols. It must not run
// concurrently with any reader (the backing array is reused, so a stale
// snapshot would see renumbered names).
func (t *SymTab) Reset() {
	t.names = t.names[:0]
	t.publish()
	for i := range t.slots {
		t.slots[i] = -1
	}
}

// hashName is FNV-1a over the name bytes.
func hashName(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// hashNameStr is hashName over a string, so rehashing does not convert.
func hashNameStr(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the symbol of name, assigning the next dense symbol on
// first occurrence. The name bytes are not retained; the first occurrence
// copies them.
func (t *SymTab) Intern(name []byte) Sym {
	if len(t.slots) == 0 {
		t.grow(symTabInitSlots)
	}
	mask := uint32(len(t.slots) - 1)
	h := hashName(name)
	for i := h & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s < 0 {
			// First occurrence: the one allocation this name will ever
			// cost on this table.
			sym := Sym(len(t.names))
			t.names = append(t.names, string(name))
			t.publish()
			t.slots[i] = int32(sym)
			if len(t.names)*4 > len(t.slots)*3 {
				t.grow(len(t.slots) * 2)
			}
			return sym
		}
		// string(name) in a comparison does not allocate.
		if t.names[s] == string(name) {
			return Sym(s)
		}
	}
}

// grow rehashes the table into n slots (a power of two).
func (t *SymTab) grow(n int) {
	if cap(t.slots) >= n {
		t.slots = t.slots[:n]
	} else {
		t.slots = make([]int32, n)
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	mask := uint32(n - 1)
	for s, name := range t.names {
		h := hashNameStr(name)
		i := h & mask
		for t.slots[i] >= 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = int32(s)
	}
}
