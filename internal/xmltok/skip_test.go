package xmltok

import (
	"io"
	"strings"
	"testing"
)

// startSkipping positions a scanner just past the start tag of the named
// element and returns it.
func startSkipping(t *testing.T, doc, name string) *Scanner {
	t.Helper()
	sc := NewScanner(strings.NewReader(doc))
	for {
		ev, err := sc.NextEvent()
		if err != nil {
			t.Fatalf("element <%s> not found: %v", name, err)
		}
		if ev.Kind == StartElement && string(ev.NameBytes()) == name {
			return sc
		}
	}
}

func TestSkipSubtreeBasic(t *testing.T) {
	doc := `<root><skip><a x="1">text<b/></a><!--c--></skip><keep>K</keep></root>`
	sc := startSkipping(t, doc, "skip")
	depth := sc.Depth()
	c, err := sc.SkipSubtree("skip")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Depth() != depth-1 {
		t.Errorf("depth after skip = %d, want %d", sc.Depth(), depth-1)
	}
	if c.Bytes == 0 || c.Events == 0 {
		t.Errorf("no skip accounting: %+v", c)
	}
	// The stream continues correctly after the skip.
	ev, err := sc.NextEvent()
	if err != nil || ev.Kind != StartElement || string(ev.NameBytes()) != "keep" {
		t.Fatalf("after skip: %v %v, want <keep>", ev, err)
	}
	var rest []Kind
	for {
		ev, err := sc.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, ev.Kind)
	}
	want := []Kind{Text, EndElement, EndElement}
	if len(rest) != len(want) {
		t.Fatalf("tail events %v, want %v", rest, want)
	}
}

func TestSkipSubtreeSelfClosing(t *testing.T) {
	sc := startSkipping(t, `<root><skip/><keep/></root>`, "skip")
	if _, err := sc.SkipSubtree("skip"); err != nil {
		t.Fatal(err)
	}
	ev, err := sc.NextEvent()
	if err != nil || string(ev.NameBytes()) != "keep" {
		t.Fatalf("after self-close skip: %v %v", ev, err)
	}
}

// TestSkipSubtreeHostileContent: markup lookalikes inside comments,
// CDATA, PIs and quoted attribute values must not confuse the raw
// depth tracking.
func TestSkipSubtreeHostileContent(t *testing.T) {
	doc := `<root><skip>` +
		`<!-- </skip> <fake> -->` +
		`<![CDATA[</skip><more>]]>` +
		`<?pi </skip> ?>` +
		`<a title="</skip>" other='<b>'>&unknown-entity-ok-here;</a>` +
		`<empty attr="x/>"/>` +
		`</skip><keep/></root>`
	sc := startSkipping(t, doc, "skip")
	if _, err := sc.SkipSubtree("skip"); err != nil {
		t.Fatal(err)
	}
	ev, err := sc.NextEvent()
	if err != nil || string(ev.NameBytes()) != "keep" {
		t.Fatalf("after hostile skip: %v %v", ev, err)
	}
}

// TestSkipSubtreeLargeConstantMemory: skipping a subtree far larger than
// the scanner window must not grow the window.
func TestSkipSubtreeLargeConstantMemory(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<root><skip>`)
	for i := 0; i < 20000; i++ {
		b.WriteString(`<item attr="value value value">payload text content</item>`)
	}
	b.WriteString(`</skip><keep/></root>`)
	sc := startSkipping(t, b.String(), "skip")
	c, err := sc.SkipSubtree("skip")
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes < int64(20000*40) {
		t.Errorf("bytes skipped = %d, implausibly low", c.Bytes)
	}
	if c.Events < 40000 {
		t.Errorf("events skipped = %d, want >= 40000 (start+end per item)", c.Events)
	}
	if cap(sc.buf) > 4*defaultWindow {
		t.Errorf("window grew to %d during a bulk skip", cap(sc.buf))
	}
	if ev, err := sc.NextEvent(); err != nil || string(ev.NameBytes()) != "keep" {
		t.Fatalf("after large skip: %v %v", ev, err)
	}
}

func TestSkipSubtreeErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"eof", `<root><skip><a>`},
		{"mismatched outer end", `<root><skip><a></a></wrong><keep/></root>`},
		{"unterminated comment", `<root><skip><!-- nope</skip></root>`},
		{"unterminated cdata", `<root><skip><![CDATA[ nope</skip></root>`},
		{"stray bang", `<root><skip><!ELEMENT nope></skip></root>`},
	}
	for _, tc := range cases {
		sc := startSkipping(t, tc.doc, "skip")
		if _, err := sc.SkipSubtree("skip"); err == nil {
			t.Errorf("%s: skip succeeded on %q", tc.name, tc.doc)
		}
	}
}

// TestSkipSubtreeWindowStraddle: markup boundaries crossing the refill
// point must be handled; a tiny reader forces many refills.
func TestSkipSubtreeWindowStraddle(t *testing.T) {
	doc := `<root><skip><a key="</skip>"><b>text</b></a></skip><keep/></root>`
	sc := NewScanner(&iotest1{s: doc})
	for {
		ev, err := sc.NextEvent()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == StartElement && string(ev.NameBytes()) == "skip" {
			break
		}
	}
	if _, err := sc.SkipSubtree("skip"); err != nil {
		t.Fatal(err)
	}
	if ev, err := sc.NextEvent(); err != nil || string(ev.NameBytes()) != "keep" {
		t.Fatalf("after straddled skip: %v %v", ev, err)
	}
}

// iotest1 yields one byte per Read.
type iotest1 struct {
	s string
	n int
}

func (r *iotest1) Read(p []byte) (int, error) {
	if r.n >= len(r.s) {
		return 0, io.EOF
	}
	p[0] = r.s[r.n]
	r.n++
	return 1, nil
}
