package xmltok

import (
	"bufio"
	"io"
	"strings"
)

// Writer serializes XML tokens to an output stream and counts the bytes it
// emits. It performs the escaping required for character data and
// attribute values. Writer methods never return an error eagerly; the
// first underlying write error is latched and returned by Flush (and by
// every subsequent method), so query evaluators can emit output without
// error plumbing on every token.
type Writer struct {
	w       *bufio.Writer
	n       int64
	err     error
	openTag bool // a start tag is open and not yet closed with '>'
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Written returns the number of bytes written so far (pre-flush bytes
// included).
func (w *Writer) Written() int64 { return w.n }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.closeTag()
	if err := w.w.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

func (w *Writer) writeString(s string) {
	if w.err != nil {
		return
	}
	n, err := w.w.WriteString(s)
	w.n += int64(n)
	if err != nil {
		w.err = err
	}
}

func (w *Writer) writeByte(c byte) {
	if w.err != nil {
		return
	}
	if err := w.w.WriteByte(c); err != nil {
		w.err = err
		return
	}
	w.n++
}

func (w *Writer) closeTag() {
	if w.openTag {
		w.openTag = false
		w.writeByte('>')
	}
}

// StartElement emits an opening tag with the given attributes.
func (w *Writer) StartElement(name string, attrs []Attr) {
	w.closeTag()
	w.writeByte('<')
	w.writeString(name)
	for _, a := range attrs {
		w.writeByte(' ')
		w.writeString(a.Name)
		w.writeString(`="`)
		w.writeString(EscapeAttr(a.Value))
		w.writeByte('"')
	}
	w.openTag = true
}

// EndElement emits a closing tag. If the element is still open and empty it
// is emitted in self-closing form.
func (w *Writer) EndElement(name string) {
	if w.openTag {
		w.openTag = false
		w.writeString("/>")
		return
	}
	w.writeString("</")
	w.writeString(name)
	w.writeByte('>')
}

// Text emits escaped character data.
func (w *Writer) Text(data string) {
	if data == "" {
		return
	}
	w.closeTag()
	w.writeString(EscapeText(data))
}

// Comment emits an XML comment.
func (w *Writer) Comment(data string) {
	w.closeTag()
	w.writeString("<!--")
	w.writeString(data)
	w.writeString("-->")
}

// ProcInst emits a processing instruction.
func (w *Writer) ProcInst(target, data string) {
	w.closeTag()
	w.writeString("<?")
	w.writeString(target)
	if data != "" {
		w.writeByte(' ')
		w.writeString(data)
	}
	w.writeString("?>")
}

// Token emits an arbitrary token.
func (w *Writer) Token(t Token) {
	switch t.Kind {
	case StartElement:
		w.StartElement(t.Name, t.Attrs)
	case EndElement:
		w.EndElement(t.Name)
	case Text:
		w.Text(t.Data)
	case Comment:
		w.Comment(t.Data)
	case ProcInst:
		w.ProcInst(t.Name, t.Data)
	}
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes a string for use inside a double-quoted attribute
// value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<>&"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
