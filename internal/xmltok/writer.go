package xmltok

import (
	"io"
	"strings"
	"sync"
)

// Writer serializes XML tokens to an output stream and counts the bytes it
// emits. It performs the escaping required for character data and
// attribute values, streaming escaped segments directly into its buffer so
// that emission never allocates. Writer methods never return an error
// eagerly; the first underlying write error is latched and returned by
// Flush (and by every subsequent method), so query evaluators can emit
// output without error plumbing on every token.
type Writer struct {
	out     io.Writer
	buf     []byte
	n       int64
	err     error
	openTag bool // a start tag is open and not yet closed with '>'
}

const writerBufSize = 32 << 10

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{out: w, buf: make([]byte, 0, writerBufSize)}
}

// Reset rebinds the writer to a new output stream, retaining its buffer.
func (w *Writer) Reset(out io.Writer) {
	w.out = out
	w.buf = w.buf[:0]
	w.n = 0
	w.err = nil
	w.openTag = false
}

var writerPool = sync.Pool{New: func() any { return NewWriter(nil) }}

// GetWriter returns a pooled Writer bound to out. Release it with
// PutWriter once Flush has been called.
func GetWriter(out io.Writer) *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset(out)
	return w
}

// PutWriter returns a Writer obtained from GetWriter to the pool.
func PutWriter(w *Writer) {
	w.out = nil
	writerPool.Put(w)
}

// Written returns the number of bytes written so far (pre-flush bytes
// included).
func (w *Writer) Written() int64 { return w.n }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.closeTag()
	w.flushBuf()
	return w.err
}

func (w *Writer) flushBuf() {
	if len(w.buf) == 0 {
		return
	}
	if w.err == nil {
		n, err := w.out.Write(w.buf)
		if err == nil && n < len(w.buf) {
			err = io.ErrShortWrite
		}
		if err != nil {
			w.err = err
		}
	}
	w.buf = w.buf[:0]
}

func (w *Writer) writeString(s string) {
	if w.err != nil {
		return
	}
	if len(w.buf)+len(s) > cap(w.buf) {
		w.flushBuf()
		if len(s) >= cap(w.buf) {
			// Oversized chunk: write through.
			if w.err == nil {
				if _, err := io.WriteString(w.out, s); err != nil {
					w.err = err
				}
			}
			w.n += int64(len(s))
			return
		}
	}
	w.buf = append(w.buf, s...)
	w.n += int64(len(s))
}

func (w *Writer) writeBytes(b []byte) {
	if w.err != nil {
		return
	}
	if len(w.buf)+len(b) > cap(w.buf) {
		w.flushBuf()
		if len(b) >= cap(w.buf) {
			if w.err == nil {
				if _, err := w.out.Write(b); err != nil {
					w.err = err
				}
			}
			w.n += int64(len(b))
			return
		}
	}
	w.buf = append(w.buf, b...)
	w.n += int64(len(b))
}

func (w *Writer) writeByte(c byte) {
	if w.err != nil {
		return
	}
	if len(w.buf) == cap(w.buf) {
		w.flushBuf()
	}
	w.buf = append(w.buf, c)
	w.n++
}

func (w *Writer) closeTag() {
	if w.openTag {
		w.openTag = false
		w.writeByte('>')
	}
}

// StartElement emits an opening tag with the given attributes.
func (w *Writer) StartElement(name string, attrs []Attr) {
	w.closeTag()
	w.writeByte('<')
	w.writeString(name)
	for _, a := range attrs {
		w.writeByte(' ')
		w.writeString(a.Name)
		w.writeString(`="`)
		w.writeAttrEscapedString(a.Value)
		w.writeByte('"')
	}
	w.openTag = true
}

// StartElementRaw emits an opening tag whose attributes are zero-copy
// views from the scanner; nothing is retained after the call returns.
func (w *Writer) StartElementRaw(name string, attrs []AttrBytes) {
	w.closeTag()
	w.writeByte('<')
	w.writeString(name)
	for _, a := range attrs {
		w.writeByte(' ')
		w.writeBytes(a.Name)
		w.writeString(`="`)
		w.writeAttrEscaped(a.Value)
		w.writeByte('"')
	}
	w.openTag = true
}

// EndElement emits a closing tag. If the element is still open and empty it
// is emitted in self-closing form.
func (w *Writer) EndElement(name string) {
	if w.openTag {
		w.openTag = false
		w.writeString("/>")
		return
	}
	w.writeString("</")
	w.writeString(name)
	w.writeByte('>')
}

// Text emits escaped character data.
func (w *Writer) Text(data string) {
	if data == "" {
		return
	}
	w.closeTag()
	start := 0
	for i := 0; i < len(data); i++ {
		esc := escText(data[i])
		if esc == "" {
			continue
		}
		w.writeString(data[start:i])
		w.writeString(esc)
		start = i + 1
	}
	w.writeString(data[start:])
}

// TextBytes emits escaped character data from a zero-copy view.
func (w *Writer) TextBytes(data []byte) {
	if len(data) == 0 {
		return
	}
	w.closeTag()
	start := 0
	for i := 0; i < len(data); i++ {
		esc := escText(data[i])
		if esc == "" {
			continue
		}
		w.writeBytes(data[start:i])
		w.writeString(esc)
		start = i + 1
	}
	w.writeBytes(data[start:])
}

func escText(c byte) string {
	switch c {
	case '<':
		return "&lt;"
	case '>':
		return "&gt;"
	case '&':
		return "&amp;"
	}
	return ""
}

func escAttr(c byte) string {
	switch c {
	case '<':
		return "&lt;"
	case '>':
		return "&gt;"
	case '&':
		return "&amp;"
	case '"':
		return "&quot;"
	}
	return ""
}

func (w *Writer) writeAttrEscaped(v []byte) {
	start := 0
	for i := 0; i < len(v); i++ {
		esc := escAttr(v[i])
		if esc == "" {
			continue
		}
		w.writeBytes(v[start:i])
		w.writeString(esc)
		start = i + 1
	}
	w.writeBytes(v[start:])
}

func (w *Writer) writeAttrEscapedString(v string) {
	start := 0
	for i := 0; i < len(v); i++ {
		esc := escAttr(v[i])
		if esc == "" {
			continue
		}
		w.writeString(v[start:i])
		w.writeString(esc)
		start = i + 1
	}
	w.writeString(v[start:])
}

// Comment emits an XML comment.
func (w *Writer) Comment(data string) {
	w.closeTag()
	w.writeString("<!--")
	w.writeString(data)
	w.writeString("-->")
}

// ProcInst emits a processing instruction.
func (w *Writer) ProcInst(target, data string) {
	w.closeTag()
	w.writeString("<?")
	w.writeString(target)
	if data != "" {
		w.writeByte(' ')
		w.writeString(data)
	}
	w.writeString("?>")
}

// Token emits an arbitrary token.
func (w *Writer) Token(t Token) {
	switch t.Kind {
	case StartElement:
		w.StartElement(t.Name, t.Attrs)
	case EndElement:
		w.EndElement(t.Name)
	case Text:
		w.Text(t.Data)
	case Comment:
		w.Comment(t.Data)
	case ProcInst:
		w.ProcInst(t.Name, t.Data)
	}
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		if esc := escText(s[i]); esc != "" {
			b.WriteString(esc)
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes a string for use inside a double-quoted attribute
// value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<>&"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		if esc := escAttr(s[i]); esc != "" {
			b.WriteString(esc)
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
