package xmltok

import (
	"bytes"
)

// SkipCounts reports what a SkipSubtree consumed.
type SkipCounts struct {
	// Bytes is the number of raw input bytes the skip consumed.
	Bytes int64
	// Events is the number of markup events the skip passed over: start
	// and end tags (a self-closing tag counts as both), comments, CDATA
	// sections and processing instructions. Character data between tags is
	// not counted (it would not have produced separate events per run
	// boundary anyway).
	Events int64
}

// SkipSubtree consumes the remainder of the subtree of the most recently
// returned StartElement — everything up to and including its matching end
// tag — without materializing events: no attribute spans, no entity
// expansion, no text decoding, and a window that is discarded as it is
// consumed, so arbitrarily large subtrees are skipped in constant memory.
//
// The skipped region is checked for tag balance (every start tag closed,
// comments/CDATA/PIs terminated) and the outermost end tag's name is
// verified against name; element names, attributes and content models
// inside the region are NOT validated. Callers that need full validation
// of skipped regions must consume events conventionally instead (the
// xsax filtered reader's validate mode does exactly that).
//
// SkipSubtree must be called only when the last returned event was a
// StartElement; after it returns, the scanner is positioned exactly after
// the element's end tag and NextEvent continues normally. The depth
// reported by Depth decreases by one.
func (s *Scanner) SkipSubtree(name string) (SkipCounts, error) {
	var c SkipCounts
	if s.hasPending {
		// The element was self-closing: its subtree is empty. Consume the
		// synthesized EndElement.
		s.hasPending = false
		s.depth--
		s.openSyms = s.openSyms[:len(s.openSyms)-1]
		return c, nil
	}
	s.mark = -1 // nothing pinned: let fill discard consumed bytes freely
	start := s.base + int64(s.pos)
	depth := 1
	for depth > 0 {
		// Jump to the next markup start.
		i := bytes.IndexByte(s.buf[s.pos:], '<')
		if i < 0 {
			s.pos = len(s.buf)
			if err := s.fill(); err != nil {
				return s.skipCounts(c, start), s.errf("unexpected EOF: %d element(s) unclosed while skipping <%s>", depth, name)
			}
			continue
		}
		s.pos += i
		if err := s.ensure(2); err != nil {
			return s.skipCounts(c, start), s.errf("unexpected EOF after '<' while skipping <%s>", name)
		}
		switch s.buf[s.pos+1] {
		case '/':
			s.pos += 2
			matched, err := s.skipEndName(name, depth == 1)
			if err != nil {
				return s.skipCounts(c, start), err
			}
			ch, err := s.skipWS()
			if err != nil || ch != '>' {
				return s.skipCounts(c, start), s.errf("malformed end tag while skipping <%s>", name)
			}
			s.pos++
			depth--
			s.depth--
			c.Events++
			if depth == 0 {
				// The skipped element's symbol leaves the depth stack with
				// it (interior tags never touched the stack).
				s.openSyms = s.openSyms[:len(s.openSyms)-1]
				if !matched {
					return s.skipCounts(c, start), s.errf("end tag does not match <%s> while skipping its subtree", name)
				}
			}
		case '?':
			s.pos += 2
			if err := s.skipUntil(piClose, "processing instruction"); err != nil {
				return s.skipCounts(c, start), err
			}
			c.Events++
		case '!':
			s.pos += 2
			if err := s.skipBang(); err != nil {
				return s.skipCounts(c, start), err
			}
			c.Events++
		default:
			s.pos++
			selfClose, err := s.skipStartTag(name)
			if err != nil {
				return s.skipCounts(c, start), err
			}
			c.Events++
			if selfClose {
				c.Events++ // counts as start + end
			} else {
				depth++
				s.depth++
			}
		}
	}
	return s.skipCounts(c, start), nil
}

func (s *Scanner) skipCounts(c SkipCounts, start int64) SkipCounts {
	c.Bytes = s.base + int64(s.pos) - start
	return c
}

// skipEndName consumes the name of an end tag. When match is set it also
// compares the name byte-wise against want (the subtree root's name); the
// comparison is incremental so the name never needs to fit the window.
func (s *Scanner) skipEndName(want string, match bool) (bool, error) {
	j := 0
	ok := true
	for {
		for s.pos < len(s.buf) && isNameByte(s.buf[s.pos]) {
			if match {
				if j < len(want) && s.buf[s.pos] == want[j] {
					j++
				} else {
					ok = false
				}
			}
			s.pos++
		}
		if s.pos < len(s.buf) {
			break
		}
		if err := s.fill(); err != nil {
			return false, s.errf("unexpected EOF in end tag while skipping <%s>", want)
		}
	}
	return ok && (!match || j == len(want)), nil
}

// skipStartTag consumes a start tag from just past its '<', honoring
// quoted attribute values (which may contain '>'), and reports whether the
// tag was self-closing.
func (s *Scanner) skipStartTag(name string) (selfClose bool, err error) {
	var quote byte
	var prev byte
	for {
		win := s.buf[s.pos:]
		if quote != 0 {
			i := bytes.IndexByte(win, quote)
			if i < 0 {
				s.pos = len(s.buf)
				if err := s.fill(); err != nil {
					return false, s.errf("unterminated attribute value while skipping <%s>", name)
				}
				continue
			}
			s.pos += i + 1
			prev = quote
			quote = 0
			continue
		}
		// Bulk scan: find the tag close with one IndexByte, then check the
		// prefix for an opening quote — the same bounded-search shape as
		// the attribute-value scanner, avoiding IndexAny's per-rune loop.
		gt := bytes.IndexByte(win, '>')
		lim := gt
		if lim < 0 {
			lim = len(win)
		}
		qi := bytes.IndexByte(win[:lim], '"')
		if qj := bytes.IndexByte(win[:lim], '\''); qj >= 0 && (qi < 0 || qj < qi) {
			qi = qj
		}
		if qi >= 0 {
			if qi > 0 {
				prev = win[qi-1]
			}
			quote = win[qi]
			s.pos += qi + 1
			continue
		}
		if gt < 0 {
			if len(win) > 0 {
				prev = win[len(win)-1]
			}
			s.pos = len(s.buf)
			if err := s.fill(); err != nil {
				return false, s.errf("unterminated tag while skipping <%s>", name)
			}
			continue
		}
		if gt > 0 {
			prev = win[gt-1]
		}
		s.pos += gt + 1
		return prev == '/', nil
	}
}

// skipBang consumes a comment or CDATA section from just past "<!".
// Anything else is malformed inside element content.
func (s *Scanner) skipBang() error {
	if s.ensure(2) == nil && bytes.HasPrefix(s.buf[s.pos:], commentOpen) {
		s.pos += 2
		return s.skipUntil(commentClose, "comment")
	}
	if s.ensure(7) == nil && bytes.HasPrefix(s.buf[s.pos:], cdataBang) {
		s.pos += 7
		return s.skipUntil(cdataClose, "CDATA section")
	}
	return s.errf("unexpected <! markup in element content")
}

// skipUntil consumes input through the next occurrence of close.
func (s *Scanner) skipUntil(close []byte, what string) error {
	for {
		if i := bytes.Index(s.buf[s.pos:], close); i >= 0 {
			s.pos += i + len(close)
			return nil
		}
		if p := len(s.buf) - (len(close) - 1); p > s.pos {
			s.pos = p
		}
		if err := s.fill(); err != nil {
			return s.errf("unterminated %s", what)
		}
	}
}
