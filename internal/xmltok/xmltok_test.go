package xmltok

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// collect reads all tokens from the scanner, failing the test on error.
func collect(t *testing.T, src string) []Token {
	t.Helper()
	s := NewScanner(strings.NewReader(src))
	var out []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("scan %q: %v", src, err)
		}
		// Copy attrs: the scanner reuses the attribute buffer.
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, tok)
	}
}

func scanErr(src string) error {
	s := NewScanner(strings.NewReader(src))
	for {
		_, err := s.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestScanSimpleDocument(t *testing.T) {
	toks := collect(t, `<a><b x="1">hi</b><c/></a>`)
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b", Attrs: []Attr{{Name: "x", Value: "1"}}},
		{Kind: Text, Data: "hi"},
		{Kind: EndElement, Name: "b"},
		{Kind: StartElement, Name: "c"},
		{Kind: EndElement, Name: "c"},
		{Kind: EndElement, Name: "a"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, tok := range toks {
		w := want[i]
		if tok.Kind != w.Kind || tok.Name != w.Name || tok.Data != w.Data {
			t.Errorf("token %d = %+v, want %+v", i, tok, w)
		}
		if len(tok.Attrs) != len(w.Attrs) {
			t.Errorf("token %d attrs = %+v, want %+v", i, tok.Attrs, w.Attrs)
			continue
		}
		for j := range tok.Attrs {
			if tok.Attrs[j] != w.Attrs[j] {
				t.Errorf("token %d attr %d = %+v, want %+v", i, j, tok.Attrs[j], w.Attrs[j])
			}
		}
	}
}

func TestScanEntities(t *testing.T) {
	toks := collect(t, `<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if got, want := toks[1].Data, `<>&'"AB`; got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestScanEntityInAttribute(t *testing.T) {
	toks := collect(t, `<a t="x &amp; y &#x3c;"/>`)
	if got, want := toks[0].Attrs[0].Value, "x & y <"; got != want {
		t.Errorf("attr = %q, want %q", got, want)
	}
}

func TestScanCDATA(t *testing.T) {
	toks := collect(t, `<a>pre<![CDATA[<raw> & ]]stuff]]>post</a>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if got, want := toks[1].Data, "pre<raw> & ]]stuffpost"; got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestScanCommentAndPI(t *testing.T) {
	toks := collect(t, "<?xml version=\"1.0\"?><!-- a -- b --><a><!--inner--></a>")
	kinds := []Kind{ProcInst, Comment, StartElement, Comment, EndElement}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[1].Data != " a -- b " {
		t.Errorf("comment = %q", toks[1].Data)
	}
	if toks[0].Name != "xml" {
		t.Errorf("pi target = %q", toks[0].Name)
	}
}

func TestScanDoctypeWithInternalSubset(t *testing.T) {
	src := `<!DOCTYPE bib [
	<!ELEMENT bib (book)*>
	<!ELEMENT book (title|author)*>
]><bib></bib>`
	toks := collect(t, src)
	if toks[0].Kind != Directive {
		t.Fatalf("first token = %+v", toks[0])
	}
	if !strings.Contains(toks[0].Data, "<!ELEMENT book (title|author)*>") {
		t.Errorf("directive body lost internal subset: %q", toks[0].Data)
	}
	if toks[1].Kind != StartElement || toks[1].Name != "bib" {
		t.Errorf("root token = %+v", toks[1])
	}
}

func TestScanErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unclosed element", "<a><b></b>"},
		{"mismatch is not scanner's job but unclosed is", "<a>"},
		{"stray end tag", "</a>"},
		{"two roots", "<a/><b/>"},
		{"text outside root", "<a/>oops"},
		{"bad entity", "<a>&nope;</a>"},
		{"bad char ref", "<a>&#xZZ;</a>"},
		{"unterminated comment", "<a><!-- foo</a>"},
		{"lt in attribute", `<a x="<"/>`},
		{"duplicate attribute", `<a x="1" x="2"/>`},
		{"attr without value", `<a x/>`},
		{"garbage tag", "<a><1/></a>"},
	}
	for _, c := range cases {
		if err := scanErr(c.src); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestScanErrorLineNumbers(t *testing.T) {
	err := scanErr("<a>\n\n&bad;</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %v", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
}

func TestDepthTracking(t *testing.T) {
	s := NewScanner(strings.NewReader("<a><b/><c>x</c></a>"))
	depths := []int{1, 2, 1, 2, 2, 1, 0}
	for i, want := range depths {
		if _, err := s.Next(); err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if s.Depth() != want {
			t.Errorf("after token %d depth = %d, want %d", i, s.Depth(), want)
		}
	}
}

func TestWhitespaceToken(t *testing.T) {
	if !(Token{Kind: Text, Data: " \t\r\n"}).IsWhitespace() {
		t.Error("whitespace not detected")
	}
	if (Token{Kind: Text, Data: " x "}).IsWhitespace() {
		t.Error("non-whitespace misdetected")
	}
	if (Token{Kind: Comment, Data: " "}).IsWhitespace() {
		t.Error("comment cannot be whitespace text")
	}
}

func TestWriterBasics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.StartElement("results", nil)
	w.StartElement("result", []Attr{{Name: "id", Value: `a"<b`}})
	w.Text("x < y & z")
	w.EndElement("result")
	w.StartElement("empty", nil)
	w.EndElement("empty")
	w.EndElement("results")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `<results><result id="a&quot;&lt;b">x &lt; y &amp; z</result><empty/></results>`
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
	if w.Written() != int64(buf.Len()) {
		t.Errorf("Written = %d, buffer len %d", w.Written(), buf.Len())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after--
	return len(p), nil
}

func TestWriterLatchesError(t *testing.T) {
	w := NewWriter(&failWriter{after: 0})
	for i := 0; i < 10000; i++ {
		w.StartElement("verylongelementnamethatfillsbuffers", nil)
		w.Text(strings.Repeat("x", 100))
		w.EndElement("verylongelementnamethatfillsbuffers")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("expected latched write error")
	}
}

// TestRoundTrip checks that scanning the writer's output of a scanned
// document yields the same token stream (scan ∘ write ∘ scan = scan).
func TestRoundTrip(t *testing.T) {
	docs := []string{
		`<bib><book year="1994"><title>TCP/IP</title><author><last>Stevens</last></author></book></bib>`,
		`<a>text &amp; more<b/>tail</a>`,
		`<x><y z="1&#x41;2">v</y><!--c--><?pi data?></x>`,
	}
	for _, doc := range docs {
		first := collect(t, doc)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tok := range first {
			w.Token(tok)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		second := collect(t, buf.String())
		if len(first) != len(second) {
			t.Fatalf("token count changed: %d vs %d for %q -> %q", len(first), len(second), doc, buf.String())
		}
		for i := range first {
			a, b := first[i], second[i]
			if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data || len(a.Attrs) != len(b.Attrs) {
				t.Errorf("token %d: %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestEscapeRoundTripQuick property-tests that escaping then scanning
// arbitrary text recovers the original string.
func TestEscapeRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		// Strip control bytes that are not legal XML chars; the writer is
		// not responsible for sanitizing those.
		clean := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' || r >= 0x20 {
				return r
			}
			return -1
		}, s)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.StartElement("t", []Attr{{Name: "a", Value: clean}})
		w.Text(clean)
		w.EndElement("t")
		if err := w.Flush(); err != nil {
			return false
		}
		sc := NewScanner(bytes.NewReader(buf.Bytes()))
		start, err := sc.Next()
		if err != nil {
			return false
		}
		if len(start.Attrs) != 1 || start.Attrs[0].Value != clean {
			return false
		}
		var text strings.Builder
		for {
			tok, err := sc.Next()
			if err != nil {
				return false
			}
			if tok.Kind == EndElement {
				break
			}
			if tok.Kind != Text {
				return false
			}
			text.WriteString(tok.Data)
		}
		return text.String() == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "None", StartElement: "StartElement", EndElement: "EndElement",
		Text: "Text", Comment: "Comment", ProcInst: "ProcInst", Directive: "Directive",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
