package xmltok

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// eventsAsTokens drains the scanner through the zero-copy API, copying
// every view into an owned Token immediately (the discipline event
// consumers must follow).
func eventsAsTokens(t *testing.T, r io.Reader) []Token {
	t.Helper()
	s := NewScanner(r)
	var out []Token
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("event scan: %v", err)
		}
		tok := Token{Kind: ev.Kind, Name: string(ev.NameBytes()), Data: string(ev.DataBytes())}
		for _, a := range ev.Attrs() {
			tok.Attrs = append(tok.Attrs, Attr{Name: string(a.Name), Value: string(a.Value)})
		}
		out = append(out, tok)
	}
}

// adapterTokens drains the scanner through the copying Token adapter.
func adapterTokens(t *testing.T, r io.Reader) []Token {
	t.Helper()
	s := NewScanner(r)
	var out []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("token scan: %v", err)
		}
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, tok)
	}
}

func equalTokens(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name || a[i].Data != b[i].Data {
			return false
		}
		if len(a[i].Attrs) != len(b[i].Attrs) {
			return false
		}
		for j := range a[i].Attrs {
			if a[i].Attrs[j] != b[i].Attrs[j] {
				return false
			}
		}
	}
	return true
}

var zeroCopyDocs = []string{
	`<a><b x="1">hi</b><c/></a>`,
	`<a>text &amp; more &#65;<b y="q&quot;r"/>tail</a>`,
	`<a>pre<![CDATA[<raw> & ]]stuff]]>post</a>`,
	`<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- note --><?pi data?>x</a>`,
	`<root a1="v1" a2="v2"><mid><leaf>` + strings.Repeat("word ", 5000) + `</leaf></mid></root>`,
}

// TestEventAdapterParity: the copying Token adapter and an eager copy of
// the zero-copy event stream are byte-identical, including when the
// window is forced to refill on every byte (iotest.OneByteReader crosses
// a fill boundary inside every single token).
func TestEventAdapterParity(t *testing.T) {
	for i, doc := range zeroCopyDocs {
		want := adapterTokens(t, strings.NewReader(doc))
		if got := eventsAsTokens(t, strings.NewReader(doc)); !equalTokens(got, want) {
			t.Errorf("doc %d: event stream differs from token stream", i)
		}
		if got := eventsAsTokens(t, iotest.OneByteReader(strings.NewReader(doc))); !equalTokens(got, want) {
			t.Errorf("doc %d: one-byte-reader event stream differs", i)
		}
		if got := adapterTokens(t, iotest.OneByteReader(strings.NewReader(doc))); !equalTokens(got, want) {
			t.Errorf("doc %d: one-byte-reader token stream differs", i)
		}
	}
}

// TestEventViewsAcrossNextCalls pins the zero-copy contract: a view
// captured from an event is only guaranteed until the next scanner call,
// while a copy taken immediately stays byte-identical to what the
// adapter-copied Token path reports for the same position.
func TestEventViewsAcrossNextCalls(t *testing.T) {
	doc := `<a><t>` + strings.Repeat("alpha", 20) + `</t><t>` + strings.Repeat("beta", 20) + `</t></a>`
	ref := adapterTokens(t, strings.NewReader(doc))

	s := NewScanner(strings.NewReader(doc))
	type captured struct {
		view []byte // live view, possibly invalidated later
		copy string // immediate copy, must stay stable
		name string
	}
	var caps []captured
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, captured{
			view: ev.DataBytes(),
			copy: string(ev.DataBytes()),
			name: string(ev.NameBytes()),
		})
	}
	if len(caps) != len(ref) {
		t.Fatalf("got %d events, want %d", len(caps), len(ref))
	}
	for i, c := range caps {
		// The immediate copies survive any number of Next calls and match
		// the adapter path exactly.
		if c.copy != ref[i].Data {
			t.Errorf("event %d: copied data %q, adapter data %q", i, c.copy, ref[i].Data)
		}
		if c.name != ref[i].Name {
			t.Errorf("event %d: copied name %q, adapter name %q", i, c.name, ref[i].Name)
		}
	}
	// The raw views of earlier events are NOT required to still hold
	// their original content: they alias the scanner window. Verify that
	// the contract is real by checking that at least one early view was
	// recycled (if none were, the zero-copy window is not being reused).
	recycled := false
	for i, c := range caps {
		if string(c.view) != ref[i].Data {
			recycled = true
			break
		}
	}
	if !recycled {
		t.Log("note: no view was invalidated on this input; views may still not be relied upon")
	}
}

// TestScannerResetReuse: a Reset scanner produces identical streams with
// zero additional window allocations.
func TestScannerResetReuse(t *testing.T) {
	doc := zeroCopyDocs[1]
	s := NewScanner(strings.NewReader(doc))
	var first []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		first = append(first, tok)
	}
	s.Reset(strings.NewReader(doc))
	var second []Token
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		second = append(second, tok)
	}
	if !equalTokens(first, second) {
		t.Error("reset scanner produced a different stream")
	}
}

// TestHugeTokensCrossWindows: names, attribute values, comments and text
// far larger than the 64 KB window survive refills intact.
func TestHugeTokensCrossWindows(t *testing.T) {
	big := strings.Repeat("x", defaultWindow*3+17)
	doc := `<a v="` + big + `"><!--` + big + `-->` + big + `<![CDATA[` + big + `]]></a>`
	toks := adapterTokens(t, strings.NewReader(doc))
	if len(toks) != 4 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Attrs[0].Value != big {
		t.Error("huge attribute value corrupted")
	}
	if toks[1].Data != big {
		t.Error("huge comment corrupted")
	}
	if toks[2].Data != big+big {
		t.Error("huge text+CDATA run corrupted")
	}
	// And the same through a pathological reader.
	toks2 := eventsAsTokens(t, iotest.HalfReader(strings.NewReader(doc)))
	if !equalTokens(toks, toks2) {
		t.Error("half-reader stream differs")
	}
}

// BenchmarkScannerEvents measures the zero-copy event path in isolation.
func BenchmarkScannerEvents(b *testing.B) {
	var doc bytes.Buffer
	doc.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		doc.WriteString(`<item id="42" kind="thing"><name>some name here</name><desc>a description of the item</desc></item>`)
	}
	doc.WriteString("</root>")
	data := doc.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	s := NewScanner(bytes.NewReader(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(bytes.NewReader(data))
		for {
			_, err := s.NextEvent()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
