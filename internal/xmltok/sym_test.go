package xmltok

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestSymTabInternDense(t *testing.T) {
	var tab SymTab
	names := []string{"a", "b", "book", "author", "a"} // "a" repeats
	want := []Sym{0, 1, 2, 3, 0}
	for i, n := range names {
		if got := tab.Intern([]byte(n)); got != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", n, got, want[i])
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tab.Len())
	}
	for s, n := range []string{"a", "b", "book", "author"} {
		if tab.Name(Sym(s)) != n {
			t.Fatalf("Name(%d) = %q, want %q", s, tab.Name(Sym(s)), n)
		}
	}
}

// TestSymTabGrowth pushes the vocabulary well past the initial table size
// and checks that every symbol survives the rehashes: dense, stable, and
// round-tripping through Name.
func TestSymTabGrowth(t *testing.T) {
	var tab SymTab
	const n = 10 * symTabInitSlots
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("el-%d", i)
		if got := tab.Intern([]byte(name)); got != Sym(i) {
			t.Fatalf("Intern(%q) = %d, want %d", name, got, i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	// Every earlier symbol must still resolve to itself after growth.
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("el-%d", i)
		if got := tab.Intern([]byte(name)); got != Sym(i) {
			t.Fatalf("post-growth Intern(%q) = %d, want %d", name, got, i)
		}
		if tab.Name(Sym(i)) != name {
			t.Fatalf("post-growth Name(%d) = %q, want %q", i, tab.Name(Sym(i)), name)
		}
	}
}

// TestSymTabDistinctness: symbols are exact byte identities — case and
// namespace prefixes distinguish.
func TestSymTabDistinctness(t *testing.T) {
	var tab SymTab
	names := []string{"item", "Item", "ITEM", "ns:item", "ns2:item", "n:sitem"}
	seen := map[Sym]string{}
	for _, n := range names {
		s := tab.Intern([]byte(n))
		if prev, dup := seen[s]; dup {
			t.Fatalf("names %q and %q share symbol %d", prev, n, s)
		}
		seen[s] = n
	}
}

// TestScannerSymAgreement: a start tag and its end tag carry the same
// symbol, across plain, nested, repeated and self-closing elements.
func TestScannerSymAgreement(t *testing.T) {
	const doc = `<root><a x="1"/><b><a>t</a></b><ns:c></ns:c></root>`
	s := NewScanner(strings.NewReader(doc))
	type open struct {
		name string
		sym  Sym
	}
	var stack []open
	syms := map[string]Sym{}
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case StartElement:
			name := string(ev.NameBytes())
			if prev, ok := syms[name]; ok && prev != ev.Sym() {
				t.Fatalf("<%s> got symbol %d, earlier occurrence had %d", name, ev.Sym(), prev)
			}
			syms[name] = ev.Sym()
			stack = append(stack, open{name: name, sym: ev.Sym()})
		case EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if string(ev.NameBytes()) != top.name {
				t.Fatalf("end tag </%s>, open was <%s>", ev.NameBytes(), top.name)
			}
			if ev.Sym() != top.sym {
				t.Fatalf("end tag </%s> symbol %d != start symbol %d", top.name, ev.Sym(), top.sym)
			}
			if got := s.SymName(ev.Sym()); got != top.name {
				t.Fatalf("SymName(%d) = %q, want %q", ev.Sym(), got, top.name)
			}
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unbalanced: %d elements left open", len(stack))
	}
}

// TestScannerSymMismatchedEndTag: an end tag that does not match the open
// element (well-formed per this tokenizer, rejected by validating layers)
// still gets the true symbol of its own name.
func TestScannerSymMismatchedEndTag(t *testing.T) {
	s := NewScanner(strings.NewReader(`<a><b></a></b>`))
	var evs []struct {
		kind Kind
		name string
		sym  Sym
	}
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, struct {
			kind Kind
			name string
			sym  Sym
		}{ev.Kind, string(ev.NameBytes()), ev.Sym()})
	}
	// <a> and </a>, <b> and the first mismatched </a>: the mismatched end
	// tag must carry a's symbol (its actual name), not b's.
	symOf := map[string]Sym{}
	for _, e := range evs {
		if e.kind == StartElement {
			symOf[e.name] = e.sym
		}
	}
	for _, e := range evs {
		if e.sym != symOf[e.name] {
			t.Fatalf("%v <%s> has symbol %d, name's symbol is %d", e.kind, e.name, e.sym, symOf[e.name])
		}
	}
}

// TestScannerAttrSyms: attribute names are interned and agree across
// occurrences; element and attribute names share one symbol space.
func TestScannerAttrSyms(t *testing.T) {
	s := NewScanner(strings.NewReader(`<r a="1" b="2"><x a="3"/><a a="4">t</a></r>`))
	attrSym := map[string]Sym{}
	var elemA Sym = NoSym
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != StartElement {
			continue
		}
		if string(ev.NameBytes()) == "a" {
			elemA = ev.Sym()
		}
		for _, at := range ev.Attrs() {
			name := string(at.Name)
			if prev, ok := attrSym[name]; ok && prev != at.Sym {
				t.Fatalf("attribute %q symbol changed %d -> %d", name, prev, at.Sym)
			}
			attrSym[name] = at.Sym
			if got := s.SymName(at.Sym); got != name {
				t.Fatalf("SymName(attr %q) = %q", name, got)
			}
		}
	}
	// The element <a> and the attribute a are the same name, hence the
	// same symbol.
	if elemA == NoSym || attrSym["a"] != elemA {
		t.Fatalf("element <a> sym %d, attribute a sym %d: want equal", elemA, attrSym["a"])
	}
}

// TestScannerZeroAllocSteadyState: after the first pass interned the
// vocabulary, re-scanning the same document through the zero-copy API
// performs zero allocations per event.
func TestScannerZeroAllocSteadyState(t *testing.T) {
	var doc bytes.Buffer
	doc.WriteString("<root>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&doc, `<item id="%d"><name>n%d</name><qty>%d</qty></item>`, i, i, i)
	}
	doc.WriteString("</root>")
	data := doc.Bytes()

	s := NewScanner(bytes.NewReader(data))
	rd := bytes.NewReader(data)
	scan := func() {
		rd.Reset(data)
		s.Reset(rd)
		for {
			ev, err := s.NextEvent()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			_ = ev
		}
	}
	scan() // warm: interns the vocabulary, sizes window and stacks
	if allocs := testing.AllocsPerRun(5, scan); allocs > 0 {
		t.Fatalf("steady-state scan allocates %.1f times per pass, want 0", allocs)
	}
}

// TestScannerSymsAcrossReset: a Reset within the retained-vocabulary
// bound keeps symbols stable, so pooled scanners do not re-intern per
// stream.
func TestScannerSymsAcrossReset(t *testing.T) {
	const doc = `<r><a/></r>`
	s := NewScanner(strings.NewReader(doc))
	first := map[string]Sym{}
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == StartElement {
			first[string(ev.NameBytes())] = ev.Sym()
		}
	}
	s.Reset(strings.NewReader(doc))
	for {
		ev, err := s.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == StartElement {
			if got := first[string(ev.NameBytes())]; got != ev.Sym() {
				t.Fatalf("<%s> renumbered across Reset: %d -> %d", ev.NameBytes(), got, ev.Sym())
			}
		}
	}
}
