// Package xmltok provides a streaming XML tokenizer and a matching
// serializer. It is the lowest layer of the FluXQuery engine: every byte of
// the input stream passes through the Scanner exactly once, and every byte
// of the result stream is produced by the Writer.
//
// The tokenizer is deliberately self-contained (it does not use
// encoding/xml) so that the engine controls buffering, entity expansion and
// byte accounting. It implements the subset of XML 1.0 required for data
// streams: elements, attributes, character data, CDATA sections, comments,
// processing instructions, a DOCTYPE declaration (captured, not
// interpreted), and the predefined plus numeric character entities.
//
// Two result representations are offered. NextEvent is the zero-copy form;
// Next is a convenience adapter that copies the event into an owned Token,
// interning element and attribute names so that repeated tags in large
// streams do not allocate per occurrence. The engine's hot paths consume
// events and copy only at the points where data must outlive the stream
// position (the buffering boundary of the FluX semantics).
//
// # Zero-copy lifetime rules
//
// Every byte slice reachable from an Event — NameBytes, DataBytes, and
// both fields of each AttrBytes in Attrs — is a view into the scanner's
// internal window (or its per-event scratch buffer). The rules are:
//
//  1. A view is valid from the NextEvent call that returned it until the
//     NEXT call of any scanning method on the same Scanner (NextEvent,
//     Next, SkipSubtree, Reset). The next call may refill or shift the
//     window and overwrite the bytes in place.
//  2. The *Event pointer itself is scanner-owned and reused: retaining it
//     across calls retains a struct whose views have been invalidated.
//  3. Consumers that need data to survive the stream position must copy
//     it while the view is valid. The engine copies exactly once per
//     boundary crossing: xsax.Batch.Append for the shared-stream fanout,
//     and the runtime's BDF buffer-fill points (dom materialization,
//     OwnedAttrs) for data the query semantics require to live on.
//  4. Strings interned in the scanner's symbol table (element and
//     attribute names, resolved via SymName or the Token adapter) are
//     owned and safe to retain for the lifetime of the Scanner.
//
// # Symbols
//
// Every element and attribute name (and ProcInst target) is interned to a
// dense integer Sym at tokenization time: one hash probe per open tag or
// attribute; end tags reuse the open tag's symbol from the scanner's depth
// stack without re-hashing. Events carry the symbol alongside the byte
// view (Event.Sym, AttrBytes.Sym), so the layers above dispatch on
// integers and resolve names lazily — and allocation-free — through
// SymName. Symbols are dense (0, 1, 2, … in order of first occurrence),
// stable within a stream, and may be renumbered by Reset.
//
// The race detector will not catch violations of rule 1 on a single
// goroutine; the zero-copy invariant tests (zerocopy_test.go here and in
// the root package) exist for exactly that reason.
package xmltok

import (
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
	"unicode/utf8"
)

// Kind identifies the type of a Token.
type Kind uint8

// Token kinds produced by the Scanner.
const (
	// None is the zero Kind; it is never returned with a nil error.
	None Kind = iota
	// StartElement is an opening tag. Self-closing tags (<a/>) are
	// reported as a StartElement immediately followed by an EndElement.
	StartElement
	// EndElement is a closing tag.
	EndElement
	// Text is character data with entities expanded. Adjacent runs of
	// character data and CDATA sections are merged into one token.
	Text
	// Comment is the body of an XML comment (without the delimiters).
	Comment
	// ProcInst is a processing instruction; Name holds the target and
	// Data the remainder.
	ProcInst
	// Directive is a <!...> declaration such as DOCTYPE; Data holds the
	// raw body including any internal subset.
	Directive
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	case Directive:
		return "Directive"
	default:
		return "None"
	}
}

// Attr is a single attribute of a start-element tag.
type Attr struct {
	Name  string
	Value string
}

// AttrBytes is the zero-copy form of Attr: both slices view scanner-owned
// memory and are valid only until the next scanner call. Sym is the
// attribute name's interned symbol, valid for the stream.
type AttrBytes struct {
	Name  []byte
	Value []byte
	Sym   Sym
}

// Token is one XML event. Which fields are meaningful depends on Kind:
// StartElement uses Name and Attrs; EndElement uses Name; Text, Comment,
// ProcInst and Directive use Data (ProcInst also uses Name for the target).
type Token struct {
	Kind  Kind
	Name  string
	Data  string
	Attrs []Attr
}

// IsWhitespace reports whether a Text token consists entirely of XML
// whitespace (space, tab, CR, LF).
func (t Token) IsWhitespace() bool {
	if t.Kind != Text {
		return false
	}
	return isAllSpace(t.Data)
}

func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// IsAllWhitespace reports whether b consists entirely of XML whitespace
// (space, tab, CR, LF). It is the single whitespace rule shared by the
// tokenizer and the validating layers above it.
func IsAllWhitespace(b []byte) bool {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// Event is one XML event in zero-copy form. The byte slices returned by
// NameBytes, DataBytes and Attrs view the scanner's internal buffers and
// are valid only until the next NextEvent or Next call; consumers that
// need the data to survive the stream position must copy it.
type Event struct {
	Kind  Kind
	sym   Sym
	name  []byte
	data  []byte
	attrs []AttrBytes
}

// NameBytes returns the element name (StartElement, EndElement) or the
// ProcInst target. The view is valid until the next scanner call.
func (e *Event) NameBytes() []byte { return e.name }

// Sym returns the interned symbol of the event's name (StartElement,
// EndElement, ProcInst), or NoSym for nameless event kinds. A start tag
// and its matching end tag always carry the same symbol.
func (e *Event) Sym() Sym { return e.sym }

// DataBytes returns the character data (Text), body (Comment, Directive)
// or remainder (ProcInst). The view is valid until the next scanner call.
func (e *Event) DataBytes() []byte { return e.data }

// Attrs returns the attributes of a StartElement. The slice and the
// views inside it are valid until the next scanner call.
func (e *Event) Attrs() []AttrBytes { return e.attrs }

// IsWhitespace reports whether a Text event consists entirely of XML
// whitespace.
func (e *Event) IsWhitespace() bool {
	return e.Kind == Text && IsAllWhitespace(e.data)
}

// SyntaxError describes a malformed-input error with a line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml syntax error on line %d: %s", e.Line, e.Msg)
}

// span is a byte range of the current event, relative to the scanner's
// token mark (or into the scratch buffer when scratch is set). Spans stay
// valid across window refills because the refill shifts mark and data
// together.
type span struct {
	off, end int32
	scratch  bool
}

type attrSpan struct {
	name, val span
	sym       Sym
}

const defaultWindow = 64 << 10

// Scanner reads XML tokens from an io.Reader. Create one with NewScanner
// and call Next (owned tokens) or NextEvent (zero-copy events) until it
// returns io.EOF. A Scanner may be reused across documents with Reset;
// its window, scratch space and interning table are retained.
type Scanner struct {
	rd io.Reader
	// buf is the input window: buf[pos:] is unread, buf[mark:] (when mark
	// >= 0) is pinned for the event under construction and survives
	// refills.
	buf  []byte
	pos  int
	mark int
	// line counts newlines lazily: all newlines in buf[:lineScanned] are
	// accounted in line.
	line        int
	lineScanned int
	eof         bool
	// rdErr is a non-EOF read error that arrived together with data; it
	// is surfaced once the buffered bytes are consumed.
	rdErr   error
	done    bool
	started bool
	depth   int
	sawRoot bool
	// scratch receives decoded data (entities, CDATA, window-crossing
	// text) for the current event only.
	scratch []byte
	aspans  []attrSpan
	eattrs  []AttrBytes
	// pending EndElement of a self-closed tag, as absolute window offsets
	// (no read happens between delivery of the start and the end).
	pendingOff, pendingEnd int
	pendingSym             Sym
	hasPending             bool
	// base is the stream offset of buf[0]: bytes discarded by fill so
	// far. base+pos is the absolute stream position, which SkipSubtree
	// uses to report how many raw bytes a bulk skip consumed.
	base int64
	// syms interns every element/attribute name and PI target to a dense
	// Sym; openSyms is the depth stack of open-element symbols, so end
	// tags resolve their symbol with one byte comparison instead of a
	// hash probe.
	syms     SymTab
	openSyms []Sym
	// attrbuf is reused across Token conversions; the Attrs slice handed
	// out in a Token remains valid until the next call to Next.
	attrbuf []Attr
	// ev is the scanner-owned event returned by NextEvent; reusing it
	// avoids copying the event struct through every return in the hot
	// path.
	ev Event
}

// setEvent overwrites every field of the scanner-owned event with direct
// stores; assigning a struct literal instead would copy the whole Event
// through runtime.duffcopy on each hot-path return.
func (s *Scanner) setEvent(kind Kind, sym Sym, name, data []byte, attrs []AttrBytes) *Event {
	ev := &s.ev
	ev.Kind = kind
	ev.sym = sym
	ev.name = name
	ev.data = data
	ev.attrs = attrs
	return ev
}

// NewScanner returns a Scanner reading from r. A leading UTF-8 byte
// order mark is skipped.
func NewScanner(r io.Reader) *Scanner {
	s := &Scanner{}
	s.Reset(r)
	return s
}

// scanPasses counts scanner stream bindings (NewScanner and Reset) across
// the process. It exists so tests can assert how many tokenize+validate
// passes a code path really performs — in particular that the shared-stream
// dispatcher scans a document exactly once no matter how many plans ride
// the stream.
var scanPasses atomic.Uint64

// ScanPasses returns the number of scanner stream bindings performed so
// far. Tests take a delta around the code under scrutiny.
func ScanPasses() uint64 { return scanPasses.Load() }

// Reset rebinds the scanner to a new input stream, retaining its window,
// scratch buffers and interning table for reuse (see the pools in the
// consuming layers).
func (s *Scanner) Reset(r io.Reader) {
	scanPasses.Add(1)
	s.rd = r
	if s.buf == nil {
		s.buf = make([]byte, 0, defaultWindow)
	}
	s.buf = s.buf[:0]
	s.pos = 0
	s.mark = -1
	s.line = 1
	s.lineScanned = 0
	s.eof = false
	s.rdErr = nil
	s.base = 0
	s.done = false
	s.started = false
	s.depth = 0
	s.sawRoot = false
	s.scratch = s.scratch[:0]
	s.aspans = s.aspans[:0]
	s.eattrs = s.eattrs[:0]
	s.hasPending = false
	s.openSyms = s.openSyms[:0]
	if s.syms.Len() > maxRetainedSyms {
		// A pooled scanner that has seen too many unrelated vocabularies
		// starts its symbol space over; consumers re-derive Sym bindings
		// per stream anyway.
		s.syms.Reset()
	}
}

// SymName returns the owned, interned name of a symbol issued on the
// current stream. It is the allocation-free way to turn an event's Sym
// into a string that outlives the scanner position.
func (s *Scanner) SymName(sym Sym) string { return s.syms.Name(sym) }

// Syms exposes the scanner's symbol table so validating layers can size
// and index their Sym-keyed binding tables, and resolve names after the
// event's byte views have been invalidated. The table is written only by
// the scanning methods; callers may read it concurrently whenever the
// scanner is idle (the engine's batch rendezvous guarantees that).
func (s *Scanner) Syms() *SymTab { return &s.syms }

// Line returns the current 1-based line number (for error reporting).
func (s *Scanner) Line() int {
	if s.lineScanned < s.pos {
		s.line += bytes.Count(s.buf[s.lineScanned:s.pos], []byte{'\n'})
		s.lineScanned = s.pos
	}
	return s.line
}

// Depth returns the current element nesting depth after the most recently
// returned token (0 at document level).
func (s *Scanner) Depth() int { return s.depth }

// Offset returns the absolute stream position: the number of raw input
// bytes consumed so far. Telemetry reads it between events to attribute
// bytes-in to a scan.
func (s *Scanner) Offset() int64 { return s.base + int64(s.pos) }

func (s *Scanner) errf(format string, args ...any) error {
	return &SyntaxError{Line: s.Line(), Msg: fmt.Sprintf(format, args...)}
}

// fill reads more input into the window. Consumed bytes before the token
// mark are discarded (their newlines accounted first); the pinned region
// buf[mark:] is preserved, so mark-relative spans stay valid. Returns
// io.EOF when the underlying stream is exhausted.
func (s *Scanner) fill() error {
	if s.eof {
		return io.EOF
	}
	if s.rdErr != nil {
		return s.rdErr
	}
	keep := s.pos
	if s.mark >= 0 && s.mark < keep {
		keep = s.mark
	}
	if keep > 0 {
		if s.lineScanned < keep {
			s.line += bytes.Count(s.buf[s.lineScanned:keep], []byte{'\n'})
			s.lineScanned = keep
		}
		n := copy(s.buf, s.buf[keep:])
		s.buf = s.buf[:n]
		s.base += int64(keep)
		s.pos -= keep
		s.lineScanned -= keep
		if s.mark >= 0 {
			s.mark -= keep
		}
	}
	if len(s.buf) == cap(s.buf) {
		// The pinned token spans the whole window: grow it.
		nb := make([]byte, len(s.buf), 2*cap(s.buf))
		copy(nb, s.buf)
		s.buf = nb
	}
	for retries := 0; ; retries++ {
		n, err := s.rd.Read(s.buf[len(s.buf):cap(s.buf)])
		s.buf = s.buf[:len(s.buf)+n]
		if n > 0 {
			if err == io.EOF {
				s.eof = true
			} else if err != nil {
				s.rdErr = err
			}
			return nil
		}
		if err == io.EOF {
			s.eof = true
			return io.EOF
		}
		if err != nil {
			return err
		}
		if retries >= 100 {
			return io.ErrNoProgress
		}
	}
}

// ensure makes at least n unread bytes available, or returns io.EOF.
func (s *Scanner) ensure(n int) error {
	for len(s.buf)-s.pos < n {
		if err := s.fill(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scanner) resolve(sp span) []byte {
	if sp.scratch {
		return s.scratch[sp.off:sp.end]
	}
	return s.buf[s.mark+int(sp.off) : s.mark+int(sp.end)]
}

func (s *Scanner) str(sp span) string { return string(s.resolve(sp)) }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// nameByteTab precomputes isNameByte so the name-scanning inner loop is a
// single table load per byte.
var nameByteTab = func() (t [256]bool) {
	for c := 0; c < 256; c++ {
		t[c] = isNameByte(byte(c))
	}
	return
}()

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

// Next returns the next token, or io.EOF after the document ends. Any
// other non-nil error is a *SyntaxError or an error from the underlying
// reader. The token's strings are owned copies (names interned); only the
// Attrs slice header is reused across calls.
func (s *Scanner) Next() (Token, error) {
	ev, err := s.NextEvent()
	if err != nil {
		return Token{}, err
	}
	t := Token{Kind: ev.Kind}
	switch ev.Kind {
	case StartElement:
		t.Name = s.syms.Name(ev.sym)
		if len(ev.attrs) > 0 {
			s.attrbuf = s.attrbuf[:0]
			for _, a := range ev.attrs {
				s.attrbuf = append(s.attrbuf, Attr{Name: s.syms.Name(a.Sym), Value: string(a.Value)})
			}
			t.Attrs = s.attrbuf
		}
	case EndElement:
		t.Name = s.syms.Name(ev.sym)
	case ProcInst:
		t.Name = s.syms.Name(ev.sym)
		t.Data = string(ev.data)
	default:
		t.Data = string(ev.data)
	}
	return t, nil
}

// NextEvent returns the next event in zero-copy form, or io.EOF after the
// document ends. The event's views are valid until the following NextEvent
// or Next call.
func (s *Scanner) NextEvent() (*Event, error) {
	if s.done {
		return nil, io.EOF
	}
	if !s.started {
		s.started = true
		// EOF here just means the document is shorter than a BOM; the main
		// loop below reports it properly. A real read error must surface
		// now — swallowing it would retry the reader past a failed read.
		if err := s.ensure(3); err != nil && err != io.EOF {
			return nil, err
		}
		if len(s.buf)-s.pos >= 3 && s.buf[s.pos] == 0xEF && s.buf[s.pos+1] == 0xBB && s.buf[s.pos+2] == 0xBF {
			s.pos += 3
		}
	}
	if s.hasPending {
		s.hasPending = false
		s.depth--
		s.openSyms = s.openSyms[:len(s.openSyms)-1]
		return s.setEvent(EndElement, s.pendingSym, s.buf[s.pendingOff:s.pendingEnd], nil, nil), nil
	}
	s.mark = -1
	for {
		if s.pos == len(s.buf) {
			if err := s.fill(); err != nil {
				if err == io.EOF {
					if s.depth != 0 {
						return nil, s.errf("unexpected EOF: %d element(s) unclosed", s.depth)
					}
					s.done = true
					return nil, io.EOF
				}
				return nil, err
			}
		}
		if s.buf[s.pos] == '<' {
			return s.scanMarkup()
		}
		ev, err := s.scanTextEvent()
		if err != nil {
			return nil, err
		}
		if ev != nil {
			return ev, nil
		}
		// Whitespace at document level was skipped; continue.
		s.mark = -1
	}
}

// skipWS advances past XML whitespace and returns the first non-space
// byte without consuming it.
func (s *Scanner) skipWS() (byte, error) {
	for {
		for s.pos < len(s.buf) {
			c := s.buf[s.pos]
			if !isSpace(c) {
				return c, nil
			}
			s.pos++
		}
		if err := s.fill(); err != nil {
			return 0, err
		}
	}
}

// scanNameSpan scans an XML name starting at the cursor and returns its
// mark-relative span.
func (s *Scanner) scanNameSpan() (span, error) {
	if err := s.ensure(1); err != nil {
		return span{}, s.errf("unexpected EOF in name")
	}
	if c := s.buf[s.pos]; !isNameStart(c) {
		return span{}, s.errf("invalid name start character %q", c)
	}
	start := s.pos - s.mark
	s.pos++
	for {
		for s.pos < len(s.buf) && nameByteTab[s.buf[s.pos]] {
			s.pos++
		}
		if s.pos < len(s.buf) {
			break
		}
		if err := s.fill(); err != nil {
			if err == io.EOF {
				break
			}
			return span{}, err
		}
	}
	return span{off: int32(start), end: int32(s.pos - s.mark)}, nil
}

// decodeEntity decodes the entity reference at the cursor ('&' not yet
// consumed) and appends the expansion to scratch.
func (s *Scanner) decodeEntity() error {
	for {
		if i := bytes.IndexByte(s.buf[s.pos+1:], ';'); i >= 0 {
			name := s.buf[s.pos+1 : s.pos+1+i]
			if len(name) > 32 {
				return s.errf("entity reference too long")
			}
			if err := s.appendEntity(name); err != nil {
				return err
			}
			s.pos += i + 2
			return nil
		}
		if len(s.buf)-s.pos > 34 {
			return s.errf("entity reference too long")
		}
		if err := s.fill(); err != nil {
			return s.errf("unterminated entity reference")
		}
	}
}

func (s *Scanner) appendEntity(name []byte) error {
	switch string(name) {
	case "lt":
		s.scratch = append(s.scratch, '<')
		return nil
	case "gt":
		s.scratch = append(s.scratch, '>')
		return nil
	case "amp":
		s.scratch = append(s.scratch, '&')
		return nil
	case "apos":
		s.scratch = append(s.scratch, '\'')
		return nil
	case "quot":
		s.scratch = append(s.scratch, '"')
		return nil
	}
	if len(name) > 1 && name[0] == '#' {
		base := uint32(10)
		digits := name[1:]
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base = 16
			digits = digits[1:]
		}
		var n uint32
		for _, c := range digits {
			var d uint32
			switch {
			case c >= '0' && c <= '9':
				d = uint32(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = uint32(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = uint32(c-'A') + 10
			default:
				return s.errf("invalid character reference &%s;", name)
			}
			n = n*base + d
			if n > 0x10FFFF {
				return s.errf("character reference out of range &%s;", name)
			}
		}
		s.scratch = utf8.AppendRune(s.scratch, rune(n))
		return nil
	}
	return s.errf("unknown entity &%s;", name)
}

// indexTextStop returns the index of the first '<' or '&' in b, or -1.
// The '&' search is bounded by the position of '<' so that a window full
// of markup is not rescanned per text run.
func indexTextStop(b []byte) int {
	lt := bytes.IndexByte(b, '<')
	if lt == 0 {
		return 0
	}
	search := b
	if lt > 0 {
		search = b[:lt]
	}
	if amp := bytes.IndexByte(search, '&'); amp >= 0 {
		return amp
	}
	return lt
}

var cdataOpen = []byte("<![CDATA[")

// scanTextEvent scans a character-data run, expanding entities and merging
// CDATA sections. The invariant is that the pending undecoded segment is
// always buf[mark:pos]: when decoding forces a detour through scratch, the
// segment is spilled and mark moves forward, which also lets fill discard
// already-delivered window bytes instead of growing the window. A Kind of
// None with a nil error means document-level whitespace was skipped.
func (s *Scanner) scanTextEvent() (*Event, error) {
	s.scratch = s.scratch[:0]
	inScratch := false
	s.mark = s.pos
	for {
		i := indexTextStop(s.buf[s.pos:])
		if i < 0 {
			// The run continues past the window: spill and refill.
			s.pos = len(s.buf)
			s.scratch = append(s.scratch, s.buf[s.mark:s.pos]...)
			inScratch = true
			s.mark = s.pos
			if err := s.fill(); err != nil {
				if err == io.EOF {
					break
				}
				return nil, err
			}
			continue
		}
		s.pos += i
		if s.buf[s.pos] == '&' {
			s.scratch = append(s.scratch, s.buf[s.mark:s.pos]...)
			inScratch = true
			if err := s.decodeEntity(); err != nil {
				return nil, err
			}
			s.mark = s.pos
			continue
		}
		// '<': a CDATA section continues the run; anything else ends it.
		if err := s.ensure(len(cdataOpen)); err == nil && bytes.HasPrefix(s.buf[s.pos:], cdataOpen) {
			s.scratch = append(s.scratch, s.buf[s.mark:s.pos]...)
			inScratch = true
			s.pos += len(cdataOpen)
			if err := s.scanCDATAInto(); err != nil {
				return nil, err
			}
			s.mark = s.pos
			continue
		}
		break
	}
	var data []byte
	if inScratch {
		data = append(s.scratch, s.buf[s.mark:s.pos]...)
		s.scratch = data
	} else {
		data = s.buf[s.mark:s.pos]
	}
	if s.depth == 0 {
		// Character data at document level: only whitespace is allowed.
		for _, c := range data {
			if !isSpace(c) {
				return nil, s.errf("character data outside root element")
			}
		}
		return nil, nil
	}
	return s.setEvent(Text, NoSym, nil, data, nil), nil
}

var cdataClose = []byte("]]>")

// scanCDATAInto copies the body of a CDATA section (opener already
// consumed) into scratch.
func (s *Scanner) scanCDATAInto() error {
	s.mark = s.pos
	for {
		if i := bytes.Index(s.buf[s.pos:], cdataClose); i >= 0 {
			s.scratch = append(s.scratch, s.buf[s.pos:s.pos+i]...)
			s.pos += i + len(cdataClose)
			return nil
		}
		keepFrom := len(s.buf) - (len(cdataClose) - 1)
		if keepFrom < s.pos {
			keepFrom = s.pos
		}
		s.scratch = append(s.scratch, s.buf[s.pos:keepFrom]...)
		s.pos = keepFrom
		s.mark = s.pos
		if err := s.fill(); err != nil {
			return s.errf("unterminated CDATA section")
		}
	}
}

func (s *Scanner) scanMarkup() (*Event, error) {
	// s.buf[s.pos] == '<'
	s.mark = s.pos
	if err := s.ensure(2); err != nil {
		return nil, s.errf("unexpected EOF after '<'")
	}
	switch s.buf[s.pos+1] {
	case '/':
		s.pos += 2
		return s.scanEndTag()
	case '?':
		s.pos += 2
		return s.scanProcInst()
	case '!':
		s.pos += 2
		return s.scanBang()
	default:
		s.pos++
		return s.scanStartTag()
	}
}

func (s *Scanner) scanEndTag() (*Event, error) {
	name, err := s.scanNameSpan()
	if err != nil {
		return nil, err
	}
	c, err := s.skipWS()
	if err != nil || c != '>' {
		return nil, s.errf("malformed end tag </%s", s.str(name))
	}
	s.pos++
	if s.depth == 0 {
		return nil, s.errf("unmatched end tag </%s>", s.str(name))
	}
	s.depth--
	nb := s.resolve(name)
	// The matching open tag's symbol sits on top of the depth stack: one
	// byte comparison replaces the hash probe. A non-matching name (the
	// document is ill-formed; a validating layer will reject it) still
	// gets its true symbol via the table.
	var sym Sym
	if n := len(s.openSyms) - 1; n >= 0 {
		sym = s.openSyms[n]
		s.openSyms = s.openSyms[:n]
		if string(nb) != s.syms.Name(sym) {
			sym = s.syms.Intern(nb)
		}
	} else {
		sym = s.syms.Intern(nb)
	}
	return s.setEvent(EndElement, sym, nb, nil, nil), nil
}

func (s *Scanner) scanStartTag() (*Event, error) {
	name, err := s.scanNameSpan()
	if err != nil {
		return nil, err
	}
	if s.depth == 0 && s.sawRoot {
		return nil, s.errf("second root element <%s>", s.str(name))
	}
	s.aspans = s.aspans[:0]
	s.scratch = s.scratch[:0]
	selfClose := false
	for {
		c, err := s.skipWS()
		if err != nil {
			return nil, s.errf("unexpected EOF in tag <%s>", s.str(name))
		}
		if c == '>' {
			s.pos++
			break
		}
		if c == '/' {
			if err := s.ensure(2); err != nil || s.buf[s.pos+1] != '>' {
				return nil, s.errf("malformed self-closing tag <%s>", s.str(name))
			}
			s.pos += 2
			selfClose = true
			break
		}
		aname, err := s.scanNameSpan()
		if err != nil {
			return nil, err
		}
		c, err = s.skipWS()
		if err != nil || c != '=' {
			return nil, s.errf("attribute %s without value in <%s>", s.str(aname), s.str(name))
		}
		s.pos++
		c, err = s.skipWS()
		if err != nil || (c != '"' && c != '\'') {
			return nil, s.errf("attribute %s value must be quoted", s.str(aname))
		}
		s.pos++
		asym := s.syms.Intern(s.resolve(aname))
		val, err := s.scanAttValueSpan(c)
		if err != nil {
			return nil, err
		}
		// Interned symbols make duplicate detection an integer comparison.
		for _, sp := range s.aspans {
			if sp.sym == asym {
				return nil, s.errf("duplicate attribute %s in <%s>", s.str(aname), s.str(name))
			}
		}
		s.aspans = append(s.aspans, attrSpan{name: aname, val: val, sym: asym})
	}
	sym := s.syms.Intern(s.resolve(name))
	s.openSyms = append(s.openSyms, sym)
	s.depth++
	s.sawRoot = true
	if selfClose {
		// Report start now; the matching end is synthesized on the next
		// call (no read happens in between, so absolute offsets hold).
		s.hasPending = true
		s.pendingOff = s.mark + int(name.off)
		s.pendingEnd = s.mark + int(name.end)
		s.pendingSym = sym
	}
	s.eattrs = s.eattrs[:0]
	for _, sp := range s.aspans {
		s.eattrs = append(s.eattrs, AttrBytes{Name: s.resolve(sp.name), Value: s.resolve(sp.val), Sym: sp.sym})
	}
	return s.setEvent(StartElement, sym, s.resolve(name), nil, s.eattrs), nil
}

// scanAttValueSpan scans a quoted attribute value (opening quote
// consumed). Values without entities are returned as window spans; a
// value containing entities is decoded into scratch.
func (s *Scanner) scanAttValueSpan(quote byte) (span, error) {
	start := int32(s.pos - s.mark)
	segStart := start
	inScratch := false
	scrStart := int32(len(s.scratch))
	for {
		win := s.buf[s.pos:]
		qi := bytes.IndexByte(win, quote)
		lim := qi
		if lim < 0 {
			lim = len(win)
		}
		ai := bytes.IndexByte(win[:lim], '&')
		li := bytes.IndexByte(win[:lim], '<')
		if li >= 0 && (ai < 0 || li < ai) {
			s.pos += li
			return span{}, s.errf("'<' in attribute value")
		}
		if ai >= 0 {
			s.pos += ai
			s.scratch = append(s.scratch, s.buf[s.mark+int(segStart):s.pos]...)
			inScratch = true
			if err := s.decodeEntity(); err != nil {
				return span{}, err
			}
			segStart = int32(s.pos - s.mark)
			continue
		}
		if qi < 0 {
			s.pos = len(s.buf)
			if err := s.fill(); err != nil {
				return span{}, s.errf("unterminated attribute value")
			}
			continue
		}
		end := s.pos + qi
		s.pos = end + 1
		if inScratch {
			s.scratch = append(s.scratch, s.buf[s.mark+int(segStart):end]...)
			return span{off: scrStart, end: int32(len(s.scratch)), scratch: true}, nil
		}
		return span{off: start, end: int32(end - s.mark)}, nil
	}
}

var piClose = []byte("?>")

func (s *Scanner) scanProcInst() (*Event, error) {
	name, err := s.scanNameSpan()
	if err != nil {
		return nil, err
	}
	start := s.pos - s.mark
	for {
		if i := bytes.Index(s.buf[s.pos:], piClose); i >= 0 {
			data := s.buf[s.mark+start : s.pos+i]
			s.pos += i + len(piClose)
			for len(data) > 0 && isSpace(data[0]) {
				data = data[1:]
			}
			return s.setEvent(ProcInst, s.syms.Intern(s.resolve(name)), s.resolve(name), data, nil), nil
		}
		if p := len(s.buf) - 1; p > s.pos {
			s.pos = p
		}
		if err := s.fill(); err != nil {
			return nil, s.errf("unterminated processing instruction <?%s", s.str(name))
		}
	}
}

var commentOpen = []byte("--")
var commentClose = []byte("-->")
var cdataBang = []byte("[CDATA[")

func (s *Scanner) scanBang() (*Event, error) {
	// <!-- comment -->, <![CDATA[...]]> (markup context), or <!DOCTYPE...>.
	if s.ensure(2) == nil && bytes.HasPrefix(s.buf[s.pos:], commentOpen) {
		s.pos += 2
		return s.scanComment()
	}
	if s.ensure(7) == nil && bytes.HasPrefix(s.buf[s.pos:], cdataBang) {
		if s.depth == 0 {
			return nil, s.errf("CDATA outside root element")
		}
		s.pos += 7
		s.scratch = s.scratch[:0]
		if err := s.scanCDATAInto(); err != nil {
			return nil, err
		}
		return s.setEvent(Text, NoSym, nil, s.scratch, nil), nil
	}
	// Directive: copy until matching '>' tracking bracket and quote nesting
	// (the DOCTYPE internal subset may contain '>' inside [...]).
	bodyStart := s.pos - s.mark
	depth := 0
	var quote byte
	for {
		for s.pos < len(s.buf) {
			c := s.buf[s.pos]
			if quote != 0 {
				if c == quote {
					quote = 0
				}
				s.pos++
				continue
			}
			switch c {
			case '"', '\'':
				quote = c
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth <= 0 {
					data := s.buf[s.mark+bodyStart : s.pos]
					s.pos++
					return s.setEvent(Directive, NoSym, nil, data, nil), nil
				}
			}
			s.pos++
		}
		if err := s.fill(); err != nil {
			return nil, s.errf("unterminated <! directive")
		}
	}
}

func (s *Scanner) scanComment() (*Event, error) {
	start := s.pos - s.mark
	for {
		if i := bytes.Index(s.buf[s.pos:], commentClose); i >= 0 {
			data := s.buf[s.mark+start : s.pos+i]
			s.pos += i + len(commentClose)
			return s.setEvent(Comment, NoSym, nil, data, nil), nil
		}
		if p := len(s.buf) - (len(commentClose) - 1); p > s.pos {
			s.pos = p
		}
		if err := s.fill(); err != nil {
			return nil, s.errf("unterminated comment")
		}
	}
}
