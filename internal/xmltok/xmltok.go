// Package xmltok provides a streaming XML tokenizer and a matching
// serializer. It is the lowest layer of the FluXQuery engine: every byte of
// the input stream passes through the Scanner exactly once, and every byte
// of the result stream is produced by the Writer.
//
// The tokenizer is deliberately self-contained (it does not use
// encoding/xml) so that the engine controls buffering, entity expansion and
// byte accounting. It implements the subset of XML 1.0 required for data
// streams: elements, attributes, character data, CDATA sections, comments,
// processing instructions, a DOCTYPE declaration (captured, not
// interpreted), and the predefined plus numeric character entities.
package xmltok

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Kind identifies the type of a Token.
type Kind uint8

// Token kinds produced by the Scanner.
const (
	// None is the zero Kind; it is never returned with a nil error.
	None Kind = iota
	// StartElement is an opening tag. Self-closing tags (<a/>) are
	// reported as a StartElement immediately followed by an EndElement.
	StartElement
	// EndElement is a closing tag.
	EndElement
	// Text is character data with entities expanded. Adjacent runs of
	// character data and CDATA sections are merged into one token.
	Text
	// Comment is the body of an XML comment (without the delimiters).
	Comment
	// ProcInst is a processing instruction; Name holds the target and
	// Data the remainder.
	ProcInst
	// Directive is a <!...> declaration such as DOCTYPE; Data holds the
	// raw body including any internal subset.
	Directive
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	case Directive:
		return "Directive"
	default:
		return "None"
	}
}

// Attr is a single attribute of a start-element tag.
type Attr struct {
	Name  string
	Value string
}

// Token is one XML event. Which fields are meaningful depends on Kind:
// StartElement uses Name and Attrs; EndElement uses Name; Text, Comment,
// ProcInst and Directive use Data (ProcInst also uses Name for the target).
type Token struct {
	Kind  Kind
	Name  string
	Data  string
	Attrs []Attr
}

// IsWhitespace reports whether a Text token consists entirely of XML
// whitespace (space, tab, CR, LF).
func (t Token) IsWhitespace() bool {
	if t.Kind != Text {
		return false
	}
	for i := 0; i < len(t.Data); i++ {
		switch t.Data[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// SyntaxError describes a malformed-input error with a line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml syntax error on line %d: %s", e.Line, e.Msg)
}

// Scanner reads XML tokens from an io.Reader. Create one with NewScanner
// and call Next until it returns io.EOF.
type Scanner struct {
	r     *bufio.Reader
	line  int
	depth int
	// names interns element and attribute names so that repeated tags in
	// large streams do not allocate a fresh string per occurrence.
	names map[string]string
	// sawRoot tracks whether a root element was seen, for well-formedness.
	sawRoot bool
	done    bool
	// text accumulates character data across entity boundaries and CDATA.
	text strings.Builder
	// attrbuf is reused across start tags; the Attrs slice handed out in a
	// Token remains valid until the next call to Next.
	attrbuf []Attr
	// pendingEnd holds the name of a self-closed element whose synthetic
	// EndElement token is delivered on the following Next call.
	pendingEnd string
	// One-byte pushback. bufio.Reader.UnreadByte is invalidated by Peek,
	// so the scanner maintains its own, unconditional pushback slot.
	unread    byte
	hasUnread bool
}

// NewScanner returns a Scanner reading from r. A leading UTF-8 byte
// order mark is skipped.
func NewScanner(r io.Reader) *Scanner {
	br := bufio.NewReaderSize(r, 64<<10)
	if b, err := br.Peek(3); err == nil && b[0] == 0xEF && b[1] == 0xBB && b[2] == 0xBF {
		br.Discard(3)
	}
	return &Scanner{
		r:     br,
		line:  1,
		names: make(map[string]string, 64),
	}
}

// Line returns the current 1-based line number (for error reporting).
func (s *Scanner) Line() int { return s.line }

// Depth returns the current element nesting depth after the most recently
// returned token (0 at document level).
func (s *Scanner) Depth() int { return s.depth }

func (s *Scanner) errf(format string, args ...any) error {
	return &SyntaxError{Line: s.line, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) intern(b string) string {
	if v, ok := s.names[b]; ok {
		return v
	}
	v := strings.Clone(b)
	s.names[v] = v
	return v
}

func (s *Scanner) readByte() (byte, error) {
	if s.hasUnread {
		s.hasUnread = false
		return s.unread, nil
	}
	c, err := s.r.ReadByte()
	if err == nil && c == '\n' {
		s.line++
	}
	return c, err
}

// unreadByte pushes c back so the next readByte returns it again.
func (s *Scanner) unreadByte(c byte) {
	s.unread = c
	s.hasUnread = true
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

func (s *Scanner) skipSpace() (byte, error) {
	for {
		c, err := s.readByte()
		if err != nil {
			return 0, err
		}
		if !isSpace(c) {
			return c, nil
		}
	}
}

func (s *Scanner) readName(first byte) (string, error) {
	if !isNameStart(first) {
		return "", s.errf("invalid name start character %q", first)
	}
	var b strings.Builder
	b.WriteByte(first)
	for {
		c, err := s.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		if !isNameByte(c) {
			s.unreadByte(c)
			break
		}
		b.WriteByte(c)
	}
	return s.intern(b.String()), nil
}

// Next returns the next token, or io.EOF after the document ends. Any
// other non-nil error is a *SyntaxError or an error from the underlying
// reader.
func (s *Scanner) Next() (Token, error) {
	if s.done {
		return Token{}, io.EOF
	}
	if s.pendingEnd != "" {
		name := s.pendingEnd
		s.pendingEnd = ""
		s.depth--
		return Token{Kind: EndElement, Name: name}, nil
	}
	c, err := s.readByte()
	if err == io.EOF {
		if s.depth != 0 {
			return Token{}, s.errf("unexpected EOF: %d element(s) unclosed", s.depth)
		}
		s.done = true
		return Token{}, io.EOF
	}
	if err != nil {
		return Token{}, err
	}
	if c == '<' {
		return s.scanMarkup()
	}
	s.unreadByte(c)
	return s.scanText()
}

func (s *Scanner) scanText() (Token, error) {
	s.text.Reset()
	for {
		c, err := s.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Token{}, err
		}
		switch c {
		case '<':
			// Check for CDATA continuation of text.
			if b, err := s.r.Peek(8); err == nil && string(b) == "![CDATA[" {
				s.r.Discard(8)
				if err := s.scanCDATA(); err != nil {
					return Token{}, err
				}
				continue
			}
			s.unreadByte(c)
			goto out
		case '&':
			r, err := s.scanEntity()
			if err != nil {
				return Token{}, err
			}
			s.text.WriteString(r)
		default:
			s.text.WriteByte(c)
		}
	}
out:
	data := s.text.String()
	if s.depth == 0 {
		// Character data at document level: only whitespace is allowed.
		for i := 0; i < len(data); i++ {
			if !isSpace(data[i]) {
				return Token{}, s.errf("character data outside root element")
			}
		}
		return s.Next()
	}
	return Token{Kind: Text, Data: data}, nil
}

func (s *Scanner) scanCDATA() error {
	// Already consumed "<![CDATA[". Copy until "]]>".
	var run int
	for {
		c, err := s.readByte()
		if err != nil {
			return s.errf("unterminated CDATA section")
		}
		switch {
		case c == ']':
			run++
		case c == '>' && run >= 2:
			// Remove the two ']' we buffered beyond the first run-2.
			for i := 0; i < run-2; i++ {
				s.text.WriteByte(']')
			}
			return nil
		default:
			for i := 0; i < run; i++ {
				s.text.WriteByte(']')
			}
			run = 0
			s.text.WriteByte(c)
		}
	}
}

func (s *Scanner) scanEntity() (string, error) {
	var b strings.Builder
	for {
		c, err := s.readByte()
		if err != nil {
			return "", s.errf("unterminated entity reference")
		}
		if c == ';' {
			break
		}
		if b.Len() > 32 {
			return "", s.errf("entity reference too long")
		}
		b.WriteByte(c)
	}
	return expandEntity(b.String(), s)
}

func expandEntity(name string, s *Scanner) (string, error) {
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	if len(name) > 1 && name[0] == '#' {
		base := 10
		digits := name[1:]
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base = 16
			digits = digits[1:]
		}
		var n uint32
		for i := 0; i < len(digits); i++ {
			var d uint32
			c := digits[i]
			switch {
			case c >= '0' && c <= '9':
				d = uint32(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = uint32(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = uint32(c-'A') + 10
			default:
				return "", s.errf("invalid character reference &%s;", name)
			}
			n = n*uint32(base) + d
			if n > 0x10FFFF {
				return "", s.errf("character reference out of range &%s;", name)
			}
		}
		return string(rune(n)), nil
	}
	return "", s.errf("unknown entity &%s;", name)
}

func (s *Scanner) scanMarkup() (Token, error) {
	c, err := s.readByte()
	if err != nil {
		return Token{}, s.errf("unexpected EOF after '<'")
	}
	switch c {
	case '/':
		return s.scanEndTag()
	case '?':
		return s.scanProcInst()
	case '!':
		return s.scanBang()
	default:
		return s.scanStartTag(c)
	}
}

func (s *Scanner) scanEndTag() (Token, error) {
	c, err := s.readByte()
	if err != nil {
		return Token{}, s.errf("unexpected EOF in end tag")
	}
	name, err := s.readName(c)
	if err != nil {
		return Token{}, err
	}
	c, err = s.skipSpace()
	if err != nil || c != '>' {
		return Token{}, s.errf("malformed end tag </%s", name)
	}
	if s.depth == 0 {
		return Token{}, s.errf("unmatched end tag </%s>", name)
	}
	s.depth--
	return Token{Kind: EndElement, Name: name}, nil
}

func (s *Scanner) scanStartTag(first byte) (Token, error) {
	name, err := s.readName(first)
	if err != nil {
		return Token{}, err
	}
	if s.depth == 0 && s.sawRoot {
		return Token{}, s.errf("second root element <%s>", name)
	}
	s.attrbuf = s.attrbuf[:0]
	for {
		c, err := s.skipSpace()
		if err != nil {
			return Token{}, s.errf("unexpected EOF in tag <%s>", name)
		}
		switch c {
		case '>':
			s.depth++
			s.sawRoot = true
			return Token{Kind: StartElement, Name: name, Attrs: s.attrbuf}, nil
		case '/':
			c, err = s.readByte()
			if err != nil || c != '>' {
				return Token{}, s.errf("malformed self-closing tag <%s>", name)
			}
			s.sawRoot = true
			s.depth++
			// Report start now; the matching end is synthesized on the
			// next call via pendingEnd.
			s.pendingEnd = name
			return Token{Kind: StartElement, Name: name, Attrs: s.attrbuf}, nil
		default:
			aname, err := s.readName(c)
			if err != nil {
				return Token{}, err
			}
			c, err = s.skipSpace()
			if err != nil || c != '=' {
				return Token{}, s.errf("attribute %s without value in <%s>", aname, name)
			}
			c, err = s.skipSpace()
			if err != nil || (c != '"' && c != '\'') {
				return Token{}, s.errf("attribute %s value must be quoted", aname)
			}
			val, err := s.scanAttValue(c)
			if err != nil {
				return Token{}, err
			}
			for _, a := range s.attrbuf {
				if a.Name == aname {
					return Token{}, s.errf("duplicate attribute %s in <%s>", aname, name)
				}
			}
			s.attrbuf = append(s.attrbuf, Attr{Name: aname, Value: val})
		}
	}
}

func (s *Scanner) scanAttValue(quote byte) (string, error) {
	var b strings.Builder
	for {
		c, err := s.readByte()
		if err != nil {
			return "", s.errf("unterminated attribute value")
		}
		switch c {
		case quote:
			return b.String(), nil
		case '&':
			r, err := s.scanEntity()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		case '<':
			return "", s.errf("'<' in attribute value")
		default:
			b.WriteByte(c)
		}
	}
}

func (s *Scanner) scanProcInst() (Token, error) {
	c, err := s.readByte()
	if err != nil {
		return Token{}, s.errf("unexpected EOF in processing instruction")
	}
	name, err := s.readName(c)
	if err != nil {
		return Token{}, err
	}
	var b strings.Builder
	var prev byte
	for {
		c, err := s.readByte()
		if err != nil {
			return Token{}, s.errf("unterminated processing instruction <?%s", name)
		}
		if prev == '?' && c == '>' {
			data := strings.TrimSuffix(b.String(), "?")
			data = strings.TrimLeft(data, " \t\r\n")
			return Token{Kind: ProcInst, Name: name, Data: data}, nil
		}
		b.WriteByte(c)
		prev = c
	}
}

func (s *Scanner) scanBang() (Token, error) {
	// <!-- comment -->, <![CDATA[...]]> (text context), or <!DOCTYPE...>.
	b, err := s.r.Peek(2)
	if err == nil && string(b) == "--" {
		s.r.Discard(2)
		return s.scanComment()
	}
	if b, err := s.r.Peek(7); err == nil && string(b) == "[CDATA[" {
		s.r.Discard(7)
		s.text.Reset()
		if err := s.scanCDATA(); err != nil {
			return Token{}, err
		}
		if s.depth == 0 {
			return Token{}, s.errf("CDATA outside root element")
		}
		return Token{Kind: Text, Data: s.text.String()}, nil
	}
	// Directive: copy until matching '>' tracking bracket and quote nesting
	// (the DOCTYPE internal subset may contain '>' inside [...]).
	var body strings.Builder
	depth := 0
	var quote byte
	for {
		c, err := s.readByte()
		if err != nil {
			return Token{}, s.errf("unterminated <! directive")
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			body.WriteByte(c)
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return Token{Kind: Directive, Data: body.String()}, nil
			}
		}
		body.WriteByte(c)
	}
}

func (s *Scanner) scanComment() (Token, error) {
	var b strings.Builder
	var dashes int
	for {
		c, err := s.readByte()
		if err != nil {
			return Token{}, s.errf("unterminated comment")
		}
		switch {
		case c == '-':
			dashes++
		case c == '>' && dashes >= 2:
			data := b.String()
			for i := 0; i < dashes-2; i++ {
				data += "-"
			}
			return Token{Kind: Comment, Data: data}, nil
		default:
			for i := 0; i < dashes; i++ {
				b.WriteByte('-')
			}
			dashes = 0
			b.WriteByte(c)
		}
	}
}
