package runtime

import (
	"strings"
	"testing"

	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

// planWith compiles with explicit runtime options.
func planWith(t *testing.T, src, dtdSrc string, o Options) *Plan {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Schedule(n, d)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileOptions(q, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const infoBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (info|title)*>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`

const infoQuery = `<results>{ for $b in $ROOT/bib/book return <r>{ $b/title }{ for $i in $b/info return <isbn>{ $i/isbn/text() }</isbn> }</r> }</results>`

const infoDoc = `<bib><book><info><isbn>978</isbn><blurb>` + "BLURBBLURBBLURBBLURBBLURBBLURBBLURBBLURB" + `</blurb></info><title>T</title></book></bib>`

// TestFullBuffersAblation: FullBuffers keeps blurb bytes; projection
// drops them; results agree.
func TestFullBuffersAblation(t *testing.T) {
	projected := planWith(t, infoQuery, infoBib, Options{})
	full := planWith(t, infoQuery, infoBib, Options{FullBuffers: true})
	var out1, out2 strings.Builder
	st1, err := projected.Run(strings.NewReader(infoDoc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := full.Run(strings.NewReader(infoDoc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("ablation changed result:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	if st2.PeakBufferBytes <= st1.PeakBufferBytes {
		t.Errorf("full buffers should hold more: %d vs %d", st2.PeakBufferBytes, st1.PeakBufferBytes)
	}
	if st2.PeakBufferBytes-st1.PeakBufferBytes < 40 {
		t.Errorf("blurb bytes not measurably present: %d vs %d", st2.PeakBufferBytes, st1.PeakBufferBytes)
	}
}

// TestReplayModeAtomicAndCopy: a label that is both streamed and buffered
// exercises replay mode; atomic and copy bodies must behave identically
// to stream mode.
func TestReplayModeAtomicAndCopy(t *testing.T) {
	d := `
<!ELEMENT r (item)*>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item k CDATA #REQUIRED>
`
	// First expression streams item copies; second (an if over items)
	// buffers them; item is both streamed and buffered.
	src := `<out>{ for $i in $ROOT/r/item return <c>{ $i/@k }</c> }{ if ($ROOT/r/item = "x") then <has-x/> else () }</out>`
	p := planWith(t, src, d, Options{})
	var out strings.Builder
	st, err := p.Run(strings.NewReader(`<r><item k="1">x</item><item k="2">y</item></r>`), &out)
	if err != nil {
		t.Fatal(err)
	}
	want := `<out><c>1</c><c>2</c><has-x/></out>`
	if out.String() != want {
		t.Errorf("got %s, want %s", out.String(), want)
	}
	if st.BufferedNodes == 0 {
		t.Error("items should have been buffered for the conditional")
	}
}

// TestWhitespacePreservedInPCData: mixed text inside copied elements
// survives verbatim.
func TestWhitespacePreservedInPCData(t *testing.T) {
	d := `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	src := `<r>{ for $b in $ROOT/bib/book return <x>{ $b/title }{ $b/author }</x> }</r>`
	p := planWith(t, src, d, Options{})
	var out strings.Builder
	doc := `<bib><book><author>  spaced  text </author><title> keep
newlines </title></book></bib>`
	if _, err := p.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	want := `<r><x><title> keep
newlines </title><author>  spaced  text </author></x></r>`
	if out.String() != want {
		t.Errorf("got %q, want %q", out.String(), want)
	}
}

// TestStatsEventCounts: events are counted across dispatch paths.
func TestStatsEventCounts(t *testing.T) {
	p := plan(t, q3, weakBib)
	var out strings.Builder
	st, err := p.Run(strings.NewReader(weakDoc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events == 0 || st.OutputBytes == 0 || st.HandlerFirings == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

// TestEntityHeavyContent: escaped content round-trips through streaming
// copies and buffers alike.
func TestEntityHeavyContent(t *testing.T) {
	p := plan(t, q3, weakBib)
	doc := `<bib><book><title>a &lt; b &amp; c</title><author>&quot;A&quot; &#65;</author></book></bib>`
	var out strings.Builder
	if _, err := p.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	want := `<results><result><title>a &lt; b &amp; c</title><author>"A" A</author></result></results>`
	if out.String() != want {
		t.Errorf("got %s", out.String())
	}
}

// TestWildcardLoop: a for over $x/* buffers everything and still matches
// the naive semantics (ordered children).
func TestWildcardLoop(t *testing.T) {
	d := `
<!ELEMENT r (a|b)*>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`
	src := `<out>{ for $c in $ROOT/r/* return <w>{ $c/text() }</w> }</out>`
	p := planWith(t, src, d, Options{})
	var out strings.Builder
	if _, err := p.Run(strings.NewReader(`<r><a>1</a><b>2</b><a>3</a></r>`), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != `<out><w>1</w><w>2</w><w>3</w></out>` {
		t.Errorf("got %s", out.String())
	}
}
