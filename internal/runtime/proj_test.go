package runtime

// Adversarial tests of the plan→path-set derivation: every construct that
// widens what the evaluator reads (whole-element copies, text() reads,
// wildcard buffers, streamed+buffered labels) must widen the projection.
// A too-narrow path-set would not crash — it would silently change
// output, which is why each case here is paired with an execution-level
// equivalence check.

import (
	"strings"
	"testing"

	"fluxquery/internal/proj"
)

// verdict resolves a /-separated path against a plan's compiled skip
// automaton and returns the final state sentinel or id.
func verdict(p *Plan, path string) int32 {
	a := proj.Compile(proj.Union(p.Paths()))
	st := a.Start()
	for _, label := range strings.Split(path, "/") {
		st = a.Child(st, label)
		if st == proj.StateSkip || st == proj.StateAll {
			return st
		}
	}
	return st
}

// projEquiv runs a plan on doc with projection off vs fast and fails on
// any output difference.
func projEquiv(t *testing.T, src, dtdSrc, doc string) {
	t.Helper()
	off := plan(t, src, dtdSrc)
	off.pmode = proj.ModeOff
	wantOut, _ := runPlan(t, off, doc)
	fast := plan(t, src, dtdSrc)
	gotOut, _ := runPlan(t, fast, doc)
	if gotOut != wantOut {
		t.Fatalf("projection changed output:\nfast: %s\noff:  %s", gotOut, wantOut)
	}
}

func TestDeriveCopyAllSubtree(t *testing.T) {
	// {$b} copies the whole book: the path-set must keep everything below
	// book, not just the paths other handlers name.
	src := `<r>{ for $b in $ROOT/bib/book return { $b } }</r>`
	p := plan(t, src, weakBib)
	if got := verdict(p, "bib/book"); got != proj.StateAll {
		t.Errorf("copied subtree: verdict %d, want all\npaths:\n%s", got, p.Paths())
	}
	projEquiv(t, src, weakBib,
		`<bib><book><title>T</title><author>A</author></book></bib>`)
}

func TestDeriveTextOnlyNode(t *testing.T) {
	// $b/title/text() needs title's text but not title's element children
	// (none here) — and must NOT skip title itself.
	src := `<r>{ for $b in $ROOT/bib/book return <t>{ $b/title/text() }</t> }</r>`
	p := plan(t, src, strongBib)
	st := verdict(p, "bib/book/title")
	if st == proj.StateSkip {
		t.Fatalf("text()-read title skipped\npaths:\n%s", p.Paths())
	}
	a := proj.Compile(proj.Union(p.Paths()))
	cur := a.Start()
	for _, l := range []string{"bib", "book", "title"} {
		cur = a.Child(cur, l)
	}
	if cur != proj.StateAll && !a.Text(cur) {
		t.Errorf("title text not kept: state %d\npaths:\n%s", cur, p.Paths())
	}
	projEquiv(t, src, strongBib,
		`<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>`)
}

func TestDeriveIrrelevantSiblingSkipped(t *testing.T) {
	// Sanity: derivation must not degenerate to keep-everything —
	// publisher/price are untouched by q3 and must be prunable.
	p := plan(t, q3, strongBib)
	if got := verdict(p, "bib/book/publisher"); got != proj.StateSkip {
		t.Errorf("irrelevant sibling: verdict %d, want skip\npaths:\n%s", got, p.Paths())
	}
	if got := verdict(p, "bib/book/title"); got != proj.StateAll {
		t.Errorf("output title: verdict %d, want all", got)
	}
}

func TestDeriveStreamedPlusBufferedLabel(t *testing.T) {
	// A label that is both streamed (loop) and buffered (later read in a
	// second loop over the same label, forcing on-end buffering under the
	// weak DTD) is materialized fully by the evaluator — the derivation
	// must keep its whole subtree.
	src := `<r>{ for $b in $ROOT/bib/book return <x>{ $b/author }{ $b/title }</x> }</r>`
	doc := `<bib><book><author>A1</author><title>T</title><author>A2</author></book></bib>`
	projEquiv(t, src, weakBib, doc)
}

func TestDeriveAttributeRead(t *testing.T) {
	// Attribute reads ride on the start event: the child need not keep
	// its interior, but its shell must survive. Widening check only —
	// equivalence is what matters.
	const dtdSrc = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	src := `<r>{ for $b in $ROOT/bib/book return <y>{ $b/@year }</y> }</r>`
	projEquiv(t, src, dtdSrc,
		`<bib><book year="1999"><title>T</title><author>A</author></book></bib>`)
}

func TestDeriveNestedScopes(t *testing.T) {
	const dtdSrc = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,info)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>
`
	src := `<r>{ for $b in $ROOT/bib/book return <x>{ for $i in $b/info return <n>{ $i/isbn/text() }</n> }</x> }</r>`
	p := plan(t, src, dtdSrc)
	if got := verdict(p, "bib/book/info/blurb"); got != proj.StateSkip {
		t.Errorf("blurb under nested scope: verdict %d, want skip\npaths:\n%s", got, p.Paths())
	}
	if got := verdict(p, "bib/book/info/isbn"); got == proj.StateSkip {
		t.Errorf("isbn skipped\npaths:\n%s", p.Paths())
	}
	projEquiv(t, src, dtdSrc,
		`<bib><book><title>T</title><info><isbn>1</isbn><blurb>B</blurb></info></book></bib>`)
}

func TestPlanRunProjectionModes(t *testing.T) {
	doc := `<bib><book><title>T</title><author>A</author></book></bib>`
	var want string
	for i, mode := range []proj.Mode{proj.ModeOff, proj.ModeValidate, proj.ModeFast} {
		p := plan(t, q3, weakBib)
		p.pmode = mode
		out, st := runPlan(t, p, doc)
		if i == 0 {
			want = out
			if st.ScanEventsDelivered != 0 {
				t.Errorf("mode off recorded scan stats: %+v", st)
			}
			continue
		}
		if out != want {
			t.Errorf("mode %v output differs", mode)
		}
		if st.ScanEventsDelivered == 0 {
			t.Errorf("mode %v recorded no deliveries", mode)
		}
	}
}
