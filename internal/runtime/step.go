package runtime

import (
	"fmt"
	"io"
	"sync"

	"fluxquery/internal/bufmgr"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xsax"
)

// This file implements the incremental push/step execution API. The
// streamed evaluator in exec.go is written as a recursive pull consumer —
// the natural shape for the paper's handler semantics — so the push form
// inverts control: the evaluator runs on its own goroutine against a
// pushSource whose NextEvent blocks until the driver Feeds the next batch
// of owned events. The rendezvous is strict: Feed (or BeginFeed/EndFeed)
// returns only once the evaluator has either consumed the whole batch and
// asked for more, or terminated. That strictness is what makes the
// shared-stream dispatcher safe: after every consumer's EndFeed the batch
// arena may be reused, because no evaluator can still be reading it.
//
// Batching amortizes the two channel operations per rendezvous over a few
// hundred events, so the single-query path (Plan.Run, which is now a thin
// pull-driver over a StepExec) keeps its throughput.

// eventSource is the evaluator's view of its input: the validating pull
// reader in single-pass terms, or a pushSource fed by a driver.
type eventSource interface {
	NextEvent() (*xsax.Event, error)
}

// pushBatch is one unit handed from driver to evaluator. A non-nil err is
// terminal and delivered after the events: io.EOF for clean end of
// stream, anything else as the stream's failure at this position.
type pushBatch struct {
	evs []xsax.Event
	err error
}

// ackMsg reports the evaluator's state back to the driver: either "batch
// consumed, ready for the next" (done=false) or "terminated" with the
// final stats and error.
type ackMsg struct {
	done bool
	st   *Stats
	err  error
}

// pushSource adapts the push protocol to the evaluator's pull loop.
type pushSource struct {
	batches chan pushBatch
	acks    chan ackMsg
	// cur/idx iterate the current batch locally, without channel traffic.
	cur pushBatch
	idx int
	// needAck marks that a batch was received and its consumption must be
	// acknowledged before blocking for the next one.
	needAck bool
}

func (s *pushSource) reset() {
	s.cur = pushBatch{}
	s.idx = 0
	s.needAck = false
}

// NextEvent returns the next event of the current batch, rendezvousing
// with the driver when the batch is exhausted. A terminal error is
// sticky: once delivered, every further call returns it without
// synchronization (drain loops spin on io.EOF this way).
func (s *pushSource) NextEvent() (*xsax.Event, error) {
	for s.idx >= len(s.cur.evs) {
		if s.cur.err != nil {
			return nil, s.cur.err
		}
		if s.needAck {
			s.acks <- ackMsg{}
		}
		s.needAck = true
		s.cur = <-s.batches
		s.idx = 0
	}
	ev := &s.cur.evs[s.idx]
	s.idx++
	return ev, nil
}

// StepExec is an incremental execution of a compiled Plan. The caller
// pushes validated events with Feed (or the split BeginFeed/EndFeed pair)
// and terminates with Close; output is written to the writer given at
// creation as the evaluation progresses.
//
// A StepExec is driven from a single goroutine. The protocol is:
// any number of Feed calls (each BeginFeed paired with an EndFeed before
// any other call), then exactly one Close. Once Feed reports done the
// evaluator has terminated and further batches are discarded; Close must
// still be called to collect the result and release pooled state.
type StepExec struct {
	src *pushSource
	ex  *exec
	// inflight marks a BeginFeed awaiting its EndFeed.
	inflight bool
	done     bool
	released bool
	// managed marks a budget-accounted execution; unmanaged runs report
	// their logical peak as the heap peak (nothing ever spills).
	managed bool
	st      *Stats
	err     error
}

// srcPool recycles the rendezvous channels; after Close a pushSource is
// quiescent (its goroutine has exited and both channels are empty).
var srcPool = sync.Pool{New: func() any {
	return &pushSource{batches: make(chan pushBatch), acks: make(chan ackMsg)}
}}

// NewStepExec starts an incremental execution of the plan, writing the
// result stream to out. The caller must eventually call Close.
func (p *Plan) NewStepExec(out io.Writer) *StepExec {
	return p.NewStepExecBudgeted(out, nil)
}

// NewStepExecBudgeted is NewStepExec with the execution's buffer memory
// governed by the given account: every BDF buffer-fill point reserves
// against it and every buffer free releases. The caller retains
// ownership of the account — it must Close it after the StepExec's own
// Close to collect the final spill/residency stats (nil = unmanaged).
func (p *Plan) NewStepExecBudgeted(out io.Writer, acct *bufmgr.Account) *StepExec {
	src := srcPool.Get().(*pushSource)
	src.reset()
	ex := execPool.Get().(*exec)
	ex.xr = src
	ex.w = xmltok.GetWriter(out)
	ex.st = &Stats{}
	ex.cur = 0
	ex.acct = acct
	e := &StepExec{src: src, ex: ex, managed: acct != nil}
	go func() {
		st, err := runProtected(ex, p)
		src.acks <- ackMsg{done: true, st: st, err: err}
	}()
	return e
}

// runProtected converts an evaluator panic into an error so a wedged plan
// cannot deadlock its driver (or take down a serving process). An error
// payload (the buffer manager panics its I/O failures through here) is
// wrapped, not flattened, so callers can still classify it with
// errors.Is.
func runProtected(ex *exec, p *Plan) (st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				st, err = ex.st, fmt.Errorf("runtime: internal error: %w", e)
			} else {
				st, err = ex.st, fmt.Errorf("runtime: internal error: %v", r)
			}
		}
	}()
	return ex.run(p)
}

// BeginFeed hands a batch of owned events to the evaluator without
// waiting for consumption. The events — including every byte view they
// carry — must remain valid until the paired EndFeed returns. Splitting
// the feed lets a dispatcher start all consumers on the same batch and
// only then wait, so the evaluators run concurrently.
func (e *StepExec) BeginFeed(evs []xsax.Event) {
	if e.done || e.inflight || len(evs) == 0 {
		return
	}
	select {
	case e.src.batches <- pushBatch{evs: evs}:
		e.inflight = true
	case a := <-e.src.acks:
		// The evaluator terminated before consuming any input (a plan
		// whose root fails immediately); it is not receiving.
		e.settle(a)
	}
}

// EndFeed blocks until the evaluator has consumed the batch from the
// preceding BeginFeed (a no-op if none is pending). It reports whether
// the evaluator has terminated, with its error; once done, the execution
// only awaits Close.
func (e *StepExec) EndFeed() (done bool, err error) {
	if e.inflight {
		e.inflight = false
		a := <-e.src.acks
		if a.done {
			e.settle(a)
		}
	}
	return e.done, e.err
}

// Feed is BeginFeed and EndFeed in one synchronous call.
func (e *StepExec) Feed(evs []xsax.Event) (done bool, err error) {
	e.BeginFeed(evs)
	return e.EndFeed()
}

func (e *StepExec) settle(a ackMsg) {
	e.done = true
	e.st = a.st
	e.err = a.err
}

// Close terminates the execution and returns its result. cause io.EOF
// (or nil) signals a clean end of stream: the evaluator finishes its
// pending handlers and flushes the output. Any other cause is delivered
// to the evaluator as the stream's failure, aborting the evaluation with
// that error. Close is idempotent in effect but must be called exactly
// once per StepExec; the StepExec must not be used afterwards.
func (e *StepExec) Close(cause error) (*Stats, error) {
	if cause == nil {
		cause = io.EOF
	}
	if e.inflight {
		e.EndFeed()
	}
	for !e.done {
		select {
		case e.src.batches <- pushBatch{err: cause}:
			// Terminal delivered; the evaluator's next act is the final
			// ack (NextEvent never rendezvouses after a terminal error).
			a := <-e.src.acks
			if !a.done {
				panic("runtime: step protocol violation: ack after terminal batch")
			}
			e.settle(a)
		case a := <-e.src.acks:
			if !a.done {
				panic("runtime: step protocol violation: unsolicited ack")
			}
			e.settle(a)
		}
	}
	if !e.released {
		e.released = true
		xmltok.PutWriter(e.ex.w)
		e.ex.xr, e.ex.w, e.ex.st, e.ex.acct = nil, nil, nil, nil
		execPool.Put(e.ex)
		e.ex = nil
		srcPool.Put(e.src)
		e.src = nil
	}
	if e.st != nil && !e.managed {
		e.st.PeakHeapBufferBytes = e.st.PeakBufferBytes
	}
	return e.st, e.err
}
