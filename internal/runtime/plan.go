// Package runtime implements FluXQuery's runtime engine (paper §3.2): the
// query compiler that turns a FluX query into a physical query plan (with
// its buffer description forest), and the streamed query evaluator that
// executes the plan over the validating XSAX event stream, maintaining
// exactly the memory buffers the BDF prescribes.
package runtime

import (
	"fmt"

	"fluxquery/internal/bdf"
	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
	"fluxquery/internal/xquery"
)

// Plan is a compiled physical query plan.
type Plan struct {
	root pnode
	d    *dtd.DTD
	// BDF retains the forest for explain output.
	BDF *bdf.Forest
	// paths/pauto are the plan's projection path-set and its compiled
	// skip automaton (see package proj); pmode selects how Plan.Run
	// applies it.
	paths *proj.PathSet
	pauto *proj.Automaton
	pmode proj.Mode
	// needShells reports whether any process-stream scope carries an
	// on-first handler with a non-trivial past(S) condition. Only such
	// handlers read a scope's content-model state, which advances on the
	// start/end shells of children the plan does not descend into — so a
	// plan without them can have those shells elided entirely by the
	// multi-query dispatch trie.
	needShells bool
}

// Paths returns the plan's projection path-set: every document path the
// evaluator can read. The shared-stream dispatcher unions the path-sets
// of all riding plans into one skip automaton.
func (p *Plan) Paths() *proj.PathSet { return p.paths }

// DTD returns the schema the plan was compiled against. The shared-stream
// dispatcher uses it to check that every plan riding a stream agrees with
// the stream's schema.
func (p *Plan) DTD() *dtd.DTD { return p.d }

// CostEstimate is a cheap structural proxy for the plan's per-event
// feeding cost (the weight of its projection path-set). The shared-pass
// evaluator pool partitions plans across workers by it when no schema
// statistics are available (see shared.PlanCost for the informed model).
func (p *Plan) CostEstimate() int {
	if p.paths == nil {
		return 1
	}
	return p.paths.Size()
}

// ProjAutomaton returns the plan's compiled projection automaton
// (vocabulary form, dense name-id jump tables). The multi-query dispatch
// trie is the product of these automata across all registered plans.
func (p *Plan) ProjAutomaton() *proj.Automaton { return p.pauto }

// NeedShells reports whether the plan must receive start/end shells for
// elements it does not descend into. It is false exactly when no
// process-stream scope carries an on-first handler with a non-trivial
// past(S) condition: shells only feed the content-model automata that
// decide when such handlers fire, and firing order against streamed
// output is observable. A dispatcher may elide shells for plans that
// report false (the trie's projection-tightness rewrite).
func (p *Plan) NeedShells() bool { return p.needShells }

// pnode is a physical operator.
type pnode interface{ pnode() }

type pText struct{ data string }

type pOpen struct {
	name  string
	attrs []xquery.Attr
}

type pClose struct{ name string }

type pElement struct {
	name     string
	attrs    []xquery.Attr
	children []pnode
}

type pSeq struct{ items []pnode }

type pXQ struct {
	expr     xquery.Expr
	scopeVar string
}

type pCopy struct{ v string }

type pAtomic struct {
	v    string
	step xquery.Step
}

type pPS struct {
	v     string
	elem  string
	auto  *dtd.Automaton
	d     *dtd.DTD
	hs    []pHandler
	scope *bdf.Scope
	// onElem maps a child label to the index of its streaming handler in
	// hs; it is retained for the replay (materialized) path. The stream
	// path dispatches through the id-indexed slices below.
	onElem map[string]int
	// once lists the indices of OnFirst/OnEnd handlers in firing order.
	once []int

	// Integer dispatch tables, indexed by the DTD's dense name ids
	// (Element.ID): onElemID[id] is the streaming-handler index or -1;
	// bufOn[id]/bufProj[id] give the BDF buffering decision with the "*"
	// wildcard already folded in. One slice load per child start tag
	// replaces two map probes.
	onElemID []int32
	bufOn    []bool
	bufProj  []*bdf.Node
	numIDs   int
}

type pHandler struct {
	kind  core.HandlerKind
	label string
	bind  string
	past  []string
	body  pnode
	// pastOK, for OnFirst handlers, is the precompiled firing condition:
	// pastOK[q] reports whether past(past) holds in content-model state q,
	// so the per-child trigger check is a single slice load.
	pastOK []bool
}

func (pText) pnode()    {}
func (pOpen) pnode()    {}
func (pClose) pnode()   {}
func (pElement) pnode() {}
func (pSeq) pnode()     {}
func (pXQ) pnode()      {}
func (pCopy) pnode()    {}
func (pAtomic) pnode()  {}
func (*pPS) pnode()     {}

// Options configures plan compilation.
type Options struct {
	// FullBuffers disables the BDF's sub-path projection inside buffered
	// subtrees: buffered children are materialized completely, as a pure
	// document-projection engine (Marian & Siméon [10]) would. This is
	// the ablation for the paper's claim that the BDF "allows us to avoid
	// the buffering of the data which can be processed on the fly" and of
	// data the handlers never read.
	FullBuffers bool
	// Projection selects how Plan.Run applies the plan's skip automaton
	// to its own scan: ModeFast (default) bulk-skips irrelevant subtrees
	// in the tokenizer, ModeValidate filters delivery but still validates
	// everything, ModeOff delivers every event.
	Projection proj.Mode
}

// Compile checks the FluX query's safety, computes its buffer description
// forest and produces a physical plan.
func Compile(q *core.Query) (*Plan, error) {
	return CompileOptions(q, Options{})
}

// CompileOptions is Compile with explicit options.
func CompileOptions(q *core.Query, o Options) (*Plan, error) {
	if err := core.CheckSafety(q); err != nil {
		return nil, err
	}
	forest, err := bdf.Compute(q)
	if err != nil {
		return nil, err
	}
	c := &compiler{d: q.DTD, opts: o}
	root, err := c.compile(q.Root, "")
	if err != nil {
		return nil, err
	}
	paths := derivePaths(root)
	return &Plan{
		root:       root,
		d:          q.DTD,
		BDF:        forest,
		paths:      paths,
		pauto:      proj.CompileVocab(paths, q.DTD.IDNames()),
		pmode:      o.Projection,
		needShells: computeNeedShells(root),
	}, nil
}

// computeNeedShells walks the physical operator tree for any on-first
// handler whose precompiled past-condition vector is non-trivial (false
// in at least one content-model state): only those read the scope state
// that shells advance. An all-true vector fires at scope entry no matter
// what children arrive, so it does not pin shells.
func computeNeedShells(n pnode) bool {
	switch t := n.(type) {
	case *pPS:
		for _, h := range t.hs {
			for _, ok := range h.pastOK {
				if !ok {
					return true
				}
			}
			if h.body != nil && computeNeedShells(h.body) {
				return true
			}
		}
	case pSeq:
		for _, it := range t.items {
			if computeNeedShells(it) {
				return true
			}
		}
	case pElement:
		for _, ch := range t.children {
			if computeNeedShells(ch) {
				return true
			}
		}
	}
	return false
}

type compiler struct {
	d    *dtd.DTD
	opts Options
}

// compile translates FluX into physical operators. scopeVar is the
// variable of the enclosing handler's scope ("" at top level); XQ bodies
// evaluate relative to it.
func (c *compiler) compile(e core.Expr, scopeVar string) (pnode, error) {
	switch t := e.(type) {
	case core.TextLit:
		return pText{data: t.Data}, nil
	case core.OpenTag:
		return pOpen{name: t.Name, attrs: t.Attrs}, nil
	case core.CloseTag:
		return pClose{name: t.Name}, nil
	case core.XQ:
		return pXQ{expr: t.E, scopeVar: scopeVar}, nil
	case core.CopyVar:
		return pCopy{v: t.Var}, nil
	case core.AtomicVar:
		return pAtomic{v: t.Var, step: t.Step}, nil
	case core.SeqF:
		out := pSeq{}
		for _, it := range t.Items {
			p, err := c.compile(it, scopeVar)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, p)
		}
		return out, nil
	case core.Element:
		out := pElement{name: t.Name, attrs: t.Attrs}
		for _, ch := range t.Children {
			p, err := c.compile(ch, scopeVar)
			if err != nil {
				return nil, err
			}
			out.children = append(out.children, p)
		}
		return out, nil
	case core.ProcessStream:
		return c.compilePS(t)
	default:
		return nil, fmt.Errorf("runtime: cannot compile %T", e)
	}
}

func (c *compiler) compilePS(ps core.ProcessStream) (*pPS, error) {
	elem := c.d.Element(ps.ElemName)
	if elem == nil {
		return nil, fmt.Errorf("runtime: unknown element type %q for $%s", ps.ElemName, ps.Var)
	}
	scope, err := bdf.ComputeScope(ps)
	if err != nil {
		return nil, err
	}
	if c.opts.FullBuffers {
		for label := range scope.Buffered {
			scope.Buffered[label] = &bdf.Node{CopyAll: true}
		}
		if len(scope.Buffered) > 0 {
			scope.Text = true
		}
	}
	out := &pPS{
		v:      ps.Var,
		elem:   ps.ElemName,
		auto:   elem.Automaton(),
		d:      c.d,
		scope:  scope,
		onElem: map[string]int{},
	}
	for i, h := range ps.Handlers {
		var body pnode
		var pastOK []bool
		switch h.Kind {
		case core.OnElement:
			b, err := c.compile(h.Body, h.Bind)
			if err != nil {
				return nil, err
			}
			body = b
			if _, dup := out.onElem[h.Label]; dup {
				return nil, fmt.Errorf("runtime: two streaming handlers for label %s in scope $%s", h.Label, ps.Var)
			}
			out.onElem[h.Label] = i
		default:
			b, err := c.compile(h.Body, ps.Var)
			if err != nil {
				return nil, err
			}
			body = b
			out.once = append(out.once, i)
			if h.Kind == core.OnFirst {
				pastOK = elem.Automaton().PastVector(h.Past)
			}
		}
		out.hs = append(out.hs, pHandler{
			kind:   h.Kind,
			label:  h.Label,
			bind:   h.Bind,
			past:   h.Past,
			body:   body,
			pastOK: pastOK,
		})
	}
	out.compileIDDispatch(c.d)
	return out, nil
}

// compileIDDispatch flattens the scope's per-label maps into dense
// name-id-indexed slices for the stream path.
func (ps *pPS) compileIDDispatch(d *dtd.DTD) {
	n := d.NumIDs()
	ps.numIDs = n
	ps.onElemID = make([]int32, n)
	for i := range ps.onElemID {
		ps.onElemID[i] = -1
	}
	for label, idx := range ps.onElem {
		if e := d.Element(label); e != nil {
			ps.onElemID[e.ID()] = int32(idx)
		}
	}
	ps.bufOn = make([]bool, n)
	ps.bufProj = make([]*bdf.Node, n)
	star, hasStar := ps.scope.Buffered["*"]
	for id := int32(0); int(id) < n; id++ {
		name := d.ByID(id).Name
		if b, ok := ps.scope.Buffered[name]; ok {
			ps.bufOn[id], ps.bufProj[id] = true, b
		} else if hasStar {
			ps.bufOn[id], ps.bufProj[id] = true, star
		}
	}
}
