package runtime

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"fluxquery/internal/bdf"
	"fluxquery/internal/bufmgr"
	"fluxquery/internal/core"
	"fluxquery/internal/dom"
	"fluxquery/internal/eval"
	"fluxquery/internal/proj"
	"fluxquery/internal/telemetry"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
	"fluxquery/internal/xsax"
)

// Stats reports a plan execution. Buffer sizes use the deterministic
// byte accounting of the dom package, so "peak buffer" is the engine's
// machine-independent memory-consumption metric.
type Stats struct {
	// Events counts XML tokens consumed from the stream.
	Events int64
	// PeakBufferBytes is the high-water mark of live buffered data.
	PeakBufferBytes int64
	// BufferedBytesTotal accumulates every byte that was ever buffered
	// (fill traffic, not residency).
	BufferedBytesTotal int64
	// BufferedNodes counts buffered subtree roots.
	BufferedNodes int64
	// OutputBytes is the size of the produced result stream.
	OutputBytes int64
	// SkippedSubtrees counts children consumed without processing.
	SkippedSubtrees int64
	// HandlerFirings counts handler executions.
	HandlerFirings int64
	// Scan* report the stream projection of the pass that fed this
	// execution (zero when projection was off): events delivered to the
	// evaluator vs pruned before it, pruned subtrees, and raw bytes the
	// tokenizer bulk-skipped.
	ScanEventsDelivered int64
	ScanEventsSkipped   int64
	ScanSubtreesSkipped int64
	ScanBytesSkipped    int64
	// PeakHeapBufferBytes is the high-water of heap-resident buffered
	// bytes. It equals PeakBufferBytes (the logical metric above) unless
	// a buffer manager spilled subtrees to disk, in which case it is the
	// quantity the budget bounds.
	PeakHeapBufferBytes int64
	// SpilledBytes and RehydratedBytes count the execution's traffic to
	// and from the spill store (PolicySpill only).
	SpilledBytes    int64
	RehydratedBytes int64
	// BudgetStall is the time the pass spent blocked at its backpressure
	// gate (PolicyBackpressure only; for a shared pass the stall belongs
	// to the pass and every riding plan reports the same value).
	BudgetStall time.Duration
	// ScanBytesRead is the raw input size the pass consumed.
	ScanBytesRead int64
	// PassID is the process-unique id of the pass that fed this
	// execution, correlating the stats with logs, traces and metrics.
	PassID uint64
}

// execPool recycles the per-execution machinery (the evaluator frame; the
// validating reader and output writer have pools of their own) so that a
// compiled Plan executes from many goroutines with near-zero steady-state
// allocation.
var execPool = sync.Pool{New: func() any { return &exec{} }}

// Batch sizing for the pull driver: enough events to amortize the
// per-batch rendezvous to noise, small enough that the owned-copy arena
// stays cache-resident.
const (
	feedBatchEvents = 256
	feedBatchBytes  = 32 << 10
)

// Run executes the plan on an input stream, writing the result stream to
// out. It is the single-query wrapper over the incremental push API: a
// pooled validating reader tokenizes and validates the stream, and
// batches of owned events are fed to a StepExec. The shared-stream
// dispatcher (internal/mqe) drives the same StepExec machinery with one
// reader and many plans.
func (p *Plan) Run(in io.Reader, out io.Writer) (*Stats, error) {
	return p.RunManaged(in, out, nil)
}

// RunManaged is Run with the execution's buffer memory governed by m: a
// per-pass gate throttles the feed loop under backpressure and a
// per-plan account enforces the budget at every buffer-fill point (nil m
// = unmanaged, the plain Run).
func (p *Plan) RunManaged(in io.Reader, out io.Writer, m *bufmgr.Manager) (*Stats, error) {
	return p.runManaged(nil, in, out, m, nil)
}

// RunManagedContext is RunManaged under a cancellation context: the feed
// loop checks ctx at every batch boundary and the backpressure gate
// unparks on cancellation, so a cancelled run terminates promptly with
// ctx's error as the plan's terminal status (never a silently truncated
// result). A nil ctx degrades to RunManaged.
func (p *Plan) RunManagedContext(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager) (*Stats, error) {
	return p.runManaged(ctx, in, out, m, nil)
}

// RunManagedTrace is RunManaged with span capture: tr's root span gains
// "scan" (batch fill) and "eval" (plan evaluation) children whose
// accumulated durations partition the pass's wall time (modulo loop
// overhead), and the trace is ended when the run returns. A nil trace
// degrades to RunManaged.
func (p *Plan) RunManagedTrace(in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	return p.runManaged(nil, in, out, m, tr)
}

// RunManagedTraceContext is RunManagedTrace under a cancellation context.
func (p *Plan) RunManagedTraceContext(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	return p.runManaged(ctx, in, out, m, tr)
}

func (p *Plan) runManaged(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	gate := m.NewGate()
	gate.Bind(ctx)
	acct := gate.NewAccount()
	se := p.NewStepExecBudgeted(out, acct)
	xr := xsax.GetReader(in, p.d)
	if p.pmode != proj.ModeOff {
		xr.SetProjection(p.pauto, p.pmode)
	}
	passID := telemetry.NextPassID()
	traced := tr != nil
	if traced {
		passID = tr.PassID
	}
	scanSpan := tr.Span().Child("scan")
	evalSpan := tr.Span().Child("eval")
	var scanTime, evalTime time.Duration
	b := xsax.GetBatch()
	var cause error
	for cause == nil {
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
			break
		}
		// The backpressure point: under PolicyBackpressure the gate
		// blocks the feed while the process is over budget and another
		// pass can still drain. With a bound context it doubles as the
		// cancellation checkpoint, unparking on ctx.Done.
		if err := gate.Wait(); err != nil {
			cause = err
			break
		}
		b.Reset()
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		for b.Len() < feedBatchEvents && b.ArenaBytes() < feedBatchBytes {
			ev, err := xr.NextEvent()
			if err != nil {
				cause = err
				break
			}
			b.Append(ev)
		}
		var t1 time.Time
		if traced {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		done, _ := se.Feed(b.Events)
		if traced {
			evalTime += time.Since(t1)
		}
		if done {
			break
		}
	}
	st, err := se.Close(cause)
	if st != nil {
		sc := xr.ScanStats()
		st.ScanEventsDelivered = sc.EventsDelivered
		st.ScanEventsSkipped = sc.EventsSkipped
		st.ScanSubtreesSkipped = sc.SubtreesSkipped
		st.ScanBytesSkipped = sc.BytesSkipped
		st.ScanBytesRead = sc.BytesRead
		st.PassID = passID
		scanSpan.AddBytes(sc.BytesRead)
		scanSpan.AddEvents(st.Events)
	}
	if acct != nil {
		as := acct.Close()
		if st != nil {
			st.PeakHeapBufferBytes = as.PeakBytes
			st.SpilledBytes = as.SpilledBytes
			st.RehydratedBytes = as.RehydratedBytes
			st.BudgetStall = gate.Stall()
		}
	}
	if traced {
		scanSpan.AddTime(scanTime)
		evalSpan.AddTime(evalTime)
		tr.Span().AddStall(gate.Stall())
		tr.End()
	}
	gate.Close()
	xsax.PutBatch(b)
	xsax.PutReader(xr)
	return st, err
}

// RunManagedParallel is RunManaged in pipelined form: tokenization and
// DTD validation run ahead of evaluation on their own goroutines,
// connected by bounded batch rings (xsax.Pipeline), so the scan overlaps
// the plan's evaluator instead of alternating with it. Output and error
// semantics are identical to RunManaged.
func (p *Plan) RunManagedParallel(in io.Reader, out io.Writer, m *bufmgr.Manager) (*Stats, error) {
	return p.runManagedParallel(nil, in, out, m, nil)
}

// RunManagedParallelContext is RunManagedParallel under a cancellation
// context: the driver stops waiting on the validated-batch ring as soon
// as ctx is done, stage goroutines parked at the backpressure gate or on
// ring hand-offs unpark, and the pipeline is joined before returning
// ctx's error as the plan's terminal status.
func (p *Plan) RunManagedParallelContext(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager) (*Stats, error) {
	return p.runManagedParallel(ctx, in, out, m, nil)
}

// RunManagedParallelTrace is RunManagedParallel with span capture. The
// "scan" child accumulates the feed loop's wait on the validated-batch
// ring and carries "tokenize"/"validate" sub-spans with stage stall and
// ring-peak attribution; "eval" is the plan's evaluation time. Stage
// spans describe concurrent goroutines, so unlike the sequential form
// their durations overlap the wall clock rather than partitioning it.
func (p *Plan) RunManagedParallelTrace(in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	return p.runManagedParallel(nil, in, out, m, tr)
}

// RunManagedParallelTraceContext is RunManagedParallelTrace under a
// cancellation context.
func (p *Plan) RunManagedParallelTraceContext(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	return p.runManagedParallel(ctx, in, out, m, tr)
}

func (p *Plan) runManagedParallel(ctx context.Context, in io.Reader, out io.Writer, m *bufmgr.Manager, tr *telemetry.Trace) (*Stats, error) {
	gate := m.NewGate()
	gate.Bind(ctx)
	acct := gate.NewAccount()
	se := p.NewStepExecBudgeted(out, acct)
	var pa *proj.Automaton
	if p.pmode != proj.ModeOff {
		pa = p.pauto
	}
	pl := xsax.NewPipeline(in, p.d, xsax.PipelineConfig{
		BatchEvents: feedBatchEvents,
		BatchBytes:  feedBatchBytes,
		Proj:        pa,
		ProjMode:    p.pmode,
		// The backpressure point moves into the tokenizer stage: under
		// PolicyBackpressure it parks before each batch while the
		// process is over budget and another pass can still drain.
		Throttle: gate.Wait,
		Ctx:      ctx,
	})
	passID := telemetry.NextPassID()
	traced := tr != nil
	if traced {
		passID = tr.PassID
	}
	scanSpan := tr.Span().Child("scan")
	evalSpan := tr.Span().Child("eval")
	var scanTime, evalTime time.Duration
	var cause error
	for cause == nil {
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
			break
		}
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		vb, err := pl.Next()
		var t1 time.Time
		if traced {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		if err != nil {
			cause = err
			break
		}
		done, _ := se.Feed(vb.Events)
		pl.Recycle(vb)
		if traced {
			evalTime += time.Since(t1)
		}
		if done {
			break
		}
	}
	st, err := se.Close(cause)
	if acct != nil {
		as := acct.Close()
		if st != nil {
			st.PeakHeapBufferBytes = as.PeakBytes
			st.SpilledBytes = as.SpilledBytes
			st.RehydratedBytes = as.RehydratedBytes
		}
	}
	// The account is closed first: a tokenizer stage parked in the gate
	// can only drain once this pass's reservations release.
	sc, pps, _ := pl.Close()
	if st != nil {
		st.ScanEventsDelivered = sc.EventsDelivered
		st.ScanEventsSkipped = sc.EventsSkipped
		st.ScanSubtreesSkipped = sc.SubtreesSkipped
		st.ScanBytesSkipped = sc.BytesSkipped
		st.ScanBytesRead = sc.BytesRead
		st.PassID = passID
		scanSpan.AddBytes(sc.BytesRead)
		scanSpan.AddEvents(st.Events)
	}
	if traced {
		scanSpan.AddTime(scanTime)
		evalSpan.AddTime(evalTime)
		tok := scanSpan.Child("tokenize")
		tok.AddStall(pps.TokStall)
		tok.SetRingPeak(pps.TokRingPeak)
		val := scanSpan.Child("validate")
		val.AddStall(pps.ValStall)
		val.SetRingPeak(pps.ValRingPeak)
		tr.Span().AddStall(gate.Stall())
		tr.End()
	}
	gate.Close()
	return st, err
}

func (ex *exec) run(p *Plan) (*Stats, error) {
	if err := ex.evalTop(p.root); err != nil {
		return ex.st, err
	}
	if err := ex.w.Flush(); err != nil {
		return ex.st, err
	}
	ex.st.OutputBytes = ex.w.Written()
	return ex.st, nil
}

type exec struct {
	xr  eventSource
	w   *xmltok.Writer
	st  *Stats
	cur int64 // live buffered bytes (logical)
	// acct, when non-nil, is the execution's budget ledger: every
	// buffer-fill point reserves against it and every free releases, so
	// the buffer manager can fail, spill or throttle per its policy.
	acct *bufmgr.Account
}

func (ex *exec) grow(n int64) {
	ex.cur += n
	ex.st.BufferedBytesTotal += n
	if ex.cur > ex.st.PeakBufferBytes {
		ex.st.PeakBufferBytes = ex.cur
	}
}

func (ex *exec) shrink(n int64) { ex.cur -= n }

// fill accounts one freshly buffered subtree (or text node) of size sz
// appended to f.buf: the logical ledgers always, and the budget account
// when managed. spillable registers n as a spill candidate; a budget
// rejection (PolicyFail) aborts the plan with the returned error.
func (ex *exec) fill(f *psFrame, n *dom.Node, sz int64, spillable bool) error {
	f.bufBytes += sz
	ex.grow(sz)
	if ex.acct == nil {
		return nil
	}
	return ex.acct.Filled(n, sz, spillable)
}

// unbuffer accounts the release of one buffered child: it reports the
// child's logical size (the buffer manager remembers fill-time sizes for
// spilled units — a spilled child's resident Size no longer tells) and
// drains the budget ledger.
func (ex *exec) unbuffer(c *dom.Node) int64 {
	if ex.acct == nil {
		return c.Size()
	}
	return ex.acct.FreeTree(c)
}

// element is the evaluator's view of one element instance: either the
// live stream positioned right after its start tag, or a materialized
// node (replay mode).
type element struct {
	name     string
	attrs    []xmltok.Attr
	node     *dom.Node // replay mode when non-nil
	consumed bool
}

// evalTop runs the plan root. The document scope is special: the virtual
// $ROOT element's only child is the document element.
func (ex *exec) evalTop(p pnode) error {
	root := &element{name: dtdDocName}
	if err := ex.eval(p, root, nil); err != nil {
		return err
	}
	// Consume any trailing tokens (comments, whitespace) and verify the
	// document was well-formed to the end.
	return ex.drain()
}

const dtdDocName = "#document"

func (ex *exec) drain() error {
	for {
		_, err := ex.xr.NextEvent()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		ex.st.Events++
	}
}

// eval executes a physical node. el is the current element whose content
// may be consumed (nil in buffered handler bodies); env carries the
// buffer bindings for XQ nodes.
func (ex *exec) eval(p pnode, el *element, env *eval.Env) error {
	switch t := p.(type) {
	case pText:
		ex.w.Text(t.data)
		return nil
	case pOpen:
		ex.w.StartElement(t.name, toTokAttrs(t.attrs))
		return nil
	case pClose:
		ex.w.EndElement(t.name)
		return nil
	case pSeq:
		for _, c := range t.items {
			if err := ex.eval(c, el, env); err != nil {
				return err
			}
		}
		return nil
	case pElement:
		ex.w.StartElement(t.name, toTokAttrs(t.attrs))
		for _, c := range t.children {
			if err := ex.eval(c, el, env); err != nil {
				return err
			}
		}
		ex.w.EndElement(t.name)
		return nil
	case pXQ:
		ex.st.HandlerFirings++
		return eval.Eval(t.expr, env, ex.w)
	case pCopy:
		return ex.copyElement(el)
	case pAtomic:
		return ex.atomicElement(el, t.step)
	case *pPS:
		return ex.runPS(t, el)
	default:
		return fmt.Errorf("runtime: cannot execute %T", p)
	}
}

func toTokAttrs(attrs []xquery.Attr) []xmltok.Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]xmltok.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = xmltok.Attr{Name: a.Name, Value: a.Value}
	}
	return out
}

// copyElement streams a verbatim copy of the current element to the
// output. Events pass straight from the scanner window to the writer
// buffer without materializing strings.
func (ex *exec) copyElement(el *element) error {
	if el == nil {
		return fmt.Errorf("runtime: copy outside an element context")
	}
	if el.node != nil {
		el.node.WriteXML(ex.w)
		return nil
	}
	if el.consumed {
		return fmt.Errorf("runtime: element $%s already consumed", el.name)
	}
	el.consumed = true
	ex.w.StartElement(el.name, el.attrs)
	depth := 1
	for depth > 0 {
		ev, err := ex.xr.NextEvent()
		if err != nil {
			return err
		}
		ex.st.Events++
		switch ev.Kind {
		case xmltok.StartElement:
			depth++
			ex.w.StartElementRaw(ev.Name, ev.Attrs)
		case xmltok.EndElement:
			depth--
			if depth > 0 {
				ex.w.EndElement(ev.Name)
			}
		case xmltok.Text:
			ex.w.TextBytes(ev.Data)
		}
	}
	ex.w.EndElement(el.name)
	return nil
}

// atomicElement emits the atomized step of the current element (its
// direct text, or an attribute) and consumes the element.
func (ex *exec) atomicElement(el *element, step xquery.Step) error {
	if el == nil {
		return fmt.Errorf("runtime: atomic emission outside an element context")
	}
	if el.node != nil {
		switch step.Axis {
		case xquery.Attribute:
			if v, ok := el.node.Attr(step.Name); ok {
				ex.w.Text(v)
			}
		case xquery.TextAxis:
			var b strings.Builder
			for _, c := range el.node.Kids() {
				if c.Kind == dom.TextNode {
					b.WriteString(c.Text)
				}
			}
			ex.w.Text(b.String())
		}
		return nil
	}
	if el.consumed {
		return fmt.Errorf("runtime: element $%s already consumed", el.name)
	}
	el.consumed = true
	if step.Axis == xquery.Attribute {
		for _, a := range el.attrs {
			if a.Name == step.Name {
				ex.w.Text(a.Value)
				break
			}
		}
		return ex.skipRest(1)
	}
	// text(): stream the direct text children to the output.
	depth := 1
	for depth > 0 {
		ev, err := ex.xr.NextEvent()
		if err != nil {
			return err
		}
		ex.st.Events++
		switch ev.Kind {
		case xmltok.StartElement:
			depth++
		case xmltok.EndElement:
			depth--
		case xmltok.Text:
			if depth == 1 {
				ex.w.TextBytes(ev.Data)
			}
		}
	}
	return nil
}

// skipRest consumes the rest of the current element (depth open levels)
// without copying a byte.
func (ex *exec) skipRest(depth int) error {
	for depth > 0 {
		ev, err := ex.xr.NextEvent()
		if err != nil {
			return err
		}
		ex.st.Events++
		switch ev.Kind {
		case xmltok.StartElement:
			depth++
		case xmltok.EndElement:
			depth--
		}
	}
	return nil
}

// runPS processes the children of the current element with the scope's
// handlers. In replay mode (el.node != nil) the children are iterated
// from the materialized subtree.
func (ex *exec) runPS(ps *pPS, el *element) error {
	if el == nil {
		return fmt.Errorf("runtime: process-stream $%s outside an element context", ps.v)
	}
	f := &psFrame{
		ps:    ps,
		state: ps.auto.Start(),
		buf:   dom.NewElement(ps.elem),
	}
	if el.node == nil {
		f.buf.Attrs = append(f.buf.Attrs, el.attrs...)
	} else {
		f.buf.Attrs = append(f.buf.Attrs, el.node.Attrs...)
	}

	// Trigger check at element start.
	if err := ex.fireEligible(f); err != nil {
		return err
	}

	if el.node != nil {
		return ex.runPSReplay(ps, f, el.node)
	}
	if el.consumed {
		return fmt.Errorf("runtime: element $%s already consumed", el.name)
	}
	el.consumed = true

	for {
		ev, err := ex.xr.NextEvent()
		if err == io.EOF && ps.elem == dtdDocName {
			// The virtual document element "ends" at EOF.
			return ex.finishPS(f)
		}
		if err != nil {
			return err
		}
		ex.st.Events++
		switch ev.Kind {
		case xmltok.EndElement:
			return ex.finishPS(f)
		case xmltok.Text:
			if f.ps.scope.Text {
				// Buffer-fill point: the BDF keeps this text, so copy it
				// out of the scanner window.
				n := dom.NewText(string(ev.Data))
				f.buf.AppendChild(n)
				if err := ex.fill(f, n, n.Size(), false); err != nil {
					return err
				}
			}
		case xmltok.StartElement:
			if err := ex.dispatchChild(f, ev); err != nil {
				return err
			}
			// The completed child advanced the automaton: re-check
			// triggers.
			if err := ex.fireEligible(f); err != nil {
				return err
			}
		}
	}
}

// psFrame is the per-element-instance state of a process-stream.
type psFrame struct {
	ps       *pPS
	state    int // content-model automaton state
	nextOnce int // index into ps.once of the next unfired once-handler
	buf      *dom.Node
	bufBytes int64
	// stopped[id] marks name ids whose buffers were freed; further
	// children with that id are no longer buffered. Allocated lazily by
	// the first buffer-freeing once-handler.
	stopped []bool
}

// dispatchChild handles one child start tag in stream mode. ev's views
// are only valid until the next reader call, so every branch that
// retains data copies it first (the buffering branches) or hands the
// owned conversions to the handler (the streaming branch).
//
// All per-child decisions key on the element's dense name id: the
// content-model step, the buffering verdict and the handler lookup are
// each one slice load.
func (ex *exec) dispatchChild(f *psFrame, ev *xsax.Event) error {
	label := ev.Name
	id := ev.Elem.ID()
	f.state = f.ps.auto.StepID(f.state, id)

	proj, buffered := f.ps.bufProj[id], f.ps.bufOn[id]
	if buffered && f.stopped != nil && f.stopped[id] {
		buffered = false
	}
	hIdx := int(f.ps.onElemID[id])
	streamed := hIdx >= 0

	switch {
	case streamed && !buffered:
		h := f.ps.hs[hIdx]
		ex.st.HandlerFirings++
		child := &element{name: label, attrs: ev.OwnedAttrs()}
		if err := ex.eval(h.body, child, nil); err != nil {
			return err
		}
		if !child.consumed {
			ex.st.SkippedSubtrees++
			return ex.skipRest(1)
		}
		return nil
	case buffered && !streamed:
		n, sz, err := ex.materialize(ev, proj)
		if err != nil {
			return err
		}
		f.buf.AppendChild(n)
		f.bufBytes += sz
		ex.grow(sz)
		ex.st.BufferedNodes++
		return nil
	case buffered && streamed:
		// Materialize fully (the streaming handler replays the node),
		// then run the handler over the materialized child.
		n, sz, err := ex.materialize(ev, nil)
		if err != nil {
			return err
		}
		f.buf.AppendChild(n)
		f.bufBytes += sz
		ex.grow(sz)
		ex.st.BufferedNodes++
		h := f.ps.hs[hIdx]
		ex.st.HandlerFirings++
		// Pinned while the handler replays it: the node must not be a
		// spill victim of a reservation its own handler body makes.
		ex.acct.Pin(n)
		err = ex.eval(h.body, &element{name: label, node: n}, nil)
		ex.acct.Unpin(n)
		return err
	default:
		ex.st.SkippedSubtrees++
		return ex.skipRest(1)
	}
}

// materialize builds a dom subtree for the element whose start tag was
// just read, applying the BDF projection (nil proj = keep everything).
// This is the evaluator's buffer-fill point: names come interned from the
// DTD, text and attribute values are copied into owned strings here.
//
// When the execution is budget-managed, construction streams through a
// bufmgr.Filler: completed sub-subtrees are reserved (and registered as
// eviction units) as their end tags arrive, so a buffer far larger than
// the budget spills its earlier chunks while the later ones are still
// being parsed — the accounted residency never waits for the whole
// subtree.
func (ex *exec) materialize(start *xsax.Event, proj *bdf.Node) (*dom.Node, int64, error) {
	rootNode := dom.NewElement(start.Name)
	rootNode.Attrs = start.OwnedAttrs()
	fl := ex.acct.NewFiller(rootNode)
	type frame struct {
		node *dom.Node // nil when the level is being dropped
		proj *bdf.Node // nil = copy all below
	}
	stack := []frame{{node: rootNode, proj: proj}}
	for len(stack) > 0 {
		ev, err := ex.xr.NextEvent()
		if err != nil {
			return nil, 0, err
		}
		ex.st.Events++
		top := &stack[len(stack)-1]
		switch ev.Kind {
		case xmltok.StartElement:
			if top.node == nil {
				stack = append(stack, frame{})
				continue
			}
			var childProj *bdf.Node
			keep := true
			if top.proj != nil {
				childProj, keep = top.proj.Keep(ev.Name)
			}
			if !keep {
				stack = append(stack, frame{})
				continue
			}
			child := dom.NewElement(ev.Name)
			child.Attrs = ev.OwnedAttrs()
			top.node.AppendChild(child)
			fl.Push(child)
			stack = append(stack, frame{node: child, proj: childProj})
		case xmltok.EndElement:
			kept := top.node != nil
			stack = stack[:len(stack)-1]
			if kept && len(stack) > 0 {
				if err := fl.Pop(); err != nil {
					return nil, 0, err
				}
			}
		case xmltok.Text:
			if top.node == nil {
				continue
			}
			if top.proj == nil || top.proj.CopyAll || top.proj.Text {
				n := dom.NewText(string(ev.Data))
				top.node.AppendChild(n)
				fl.Text(n)
			}
		}
	}
	total, err := fl.Finish()
	if err != nil {
		return nil, 0, err
	}
	if ex.acct == nil {
		total = rootNode.Size()
	}
	return rootNode, total, nil
}

func copyAttrs(attrs []xmltok.Attr) []xmltok.Attr {
	if len(attrs) == 0 {
		return nil
	}
	return append([]xmltok.Attr(nil), attrs...)
}

// fireEligible fires pending once-handlers whose past condition holds in
// the current automaton state, in handler order. The condition is the
// handler's precompiled per-state vector: one slice load.
func (ex *exec) fireEligible(f *psFrame) error {
	for f.nextOnce < len(f.ps.once) {
		idx := f.ps.once[f.nextOnce]
		h := &f.ps.hs[idx]
		if h.kind == core.OnEnd {
			return nil // only at the end tag
		}
		// A dead content-model state (shell-elided dispatch stream) never
		// satisfies a past condition mid-stream; the handler still fires at
		// the end tag via finishPS. Unreachable for plans with non-trivial
		// past vectors — those report NeedShells and keep their shells.
		if f.state < 0 || !h.pastOK[f.state] {
			return nil
		}
		if err := ex.fireOnce(f, idx); err != nil {
			return err
		}
	}
	return nil
}

// fireOnce executes once-handler idx and frees buffers it was the last
// reader of.
func (ex *exec) fireOnce(f *psFrame, idx int) error {
	h := f.ps.hs[idx]
	ex.st.HandlerFirings++
	env := eval.NewEnv(f.ps.v, eval.Item(f.buf))
	if err := ex.eval(h.body, nil, env); err != nil {
		return err
	}
	f.nextOnce++
	// Free buffered labels whose last reader has fired.
	for label, last := range f.ps.scope.LastRef {
		if last != idx {
			continue
		}
		if f.stopped == nil {
			f.stopped = make([]bool, f.ps.numIDs)
		}
		if e := f.ps.d.Element(label); e != nil {
			f.stopped[e.ID()] = true
		}
		kept := f.buf.Children[:0]
		for _, c := range f.buf.Children {
			match := c.Kind == dom.ElementNode && (c.Name == label || label == "*")
			if match {
				sz := ex.unbuffer(c)
				f.bufBytes -= sz
				ex.shrink(sz)
				continue
			}
			kept = append(kept, c)
		}
		f.buf.Children = kept
	}
	return nil
}

// finishPS fires the remaining once-handlers at the end tag and releases
// the frame's buffers.
func (ex *exec) finishPS(f *psFrame) error {
	for f.nextOnce < len(f.ps.once) {
		if err := ex.fireOnce(f, f.ps.once[f.nextOnce]); err != nil {
			return err
		}
	}
	if ex.acct != nil {
		// Drain the budget ledger child by child so spilled units return
		// their segments; any residue (rounding between the logical and
		// resident views cannot occur, but a defensive remainder release
		// keeps the ledger exact if it ever did) is released in one sweep.
		rem := f.bufBytes
		for _, c := range f.buf.Children {
			rem -= ex.acct.FreeTree(c)
		}
		ex.acct.Release(rem)
	}
	ex.shrink(f.bufBytes)
	f.bufBytes = 0
	return nil
}

// runPSReplay iterates a materialized element's children.
func (ex *exec) runPSReplay(ps *pPS, f *psFrame, node *dom.Node) error {
	for _, c := range node.Kids() {
		switch c.Kind {
		case dom.TextNode:
			if f.ps.scope.Text {
				n := dom.NewText(c.Text)
				f.buf.AppendChild(n)
				if err := ex.fill(f, n, n.Size(), false); err != nil {
					return err
				}
			}
		case dom.ElementNode:
			f.state = ps.auto.Step(f.state, c.Name)
			proj, buffered := ps.scope.Buffered[c.Name]
			if !buffered {
				if star, ok := ps.scope.Buffered["*"]; ok {
					proj, buffered = star, true
				}
			}
			if buffered && f.stopped != nil {
				if e := ps.d.Element(c.Name); e != nil && f.stopped[e.ID()] {
					buffered = false
				}
			}
			hIdx, streamed := ps.onElem[c.Name]
			if buffered {
				n := projectNode(c, proj)
				f.buf.AppendChild(n)
				if err := ex.fill(f, n, n.Size(), true); err != nil {
					return err
				}
				ex.st.BufferedNodes++
			}
			if streamed {
				ex.st.HandlerFirings++
				if err := ex.eval(ps.hs[hIdx].body, &element{name: c.Name, node: c}, nil); err != nil {
					return err
				}
			}
			if !buffered && !streamed {
				ex.st.SkippedSubtrees++
			}
			if err := ex.fireEligible(f); err != nil {
				return err
			}
		}
	}
	return ex.finishPS(f)
}

// projectNode copies a materialized subtree under a BDF projection.
func projectNode(n *dom.Node, proj *bdf.Node) *dom.Node {
	if proj == nil || proj.CopyAll {
		return n.Clone()
	}
	out := dom.NewElement(n.Name)
	out.Attrs = copyAttrs(n.Attrs)
	for _, c := range n.Kids() {
		switch c.Kind {
		case dom.TextNode:
			if proj.Text {
				out.AppendChild(dom.NewText(c.Text))
			}
		case dom.ElementNode:
			if sub, keep := proj.Keep(c.Name); keep {
				out.AppendChild(projectNode(c, sub))
			}
		}
	}
	return out
}
