package runtime

import (
	"strings"
	"testing"

	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const q3 = `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`

// plan compiles a query through the full pipeline.
func plan(t *testing.T, src, dtdSrc string) *Plan {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Schedule(n, d)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runPlan(t *testing.T, p *Plan, doc string) (string, *Stats) {
	t.Helper()
	var out strings.Builder
	st, err := p.Run(strings.NewReader(doc), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), st
}

const weakDoc = `<bib><book><title>T1</title><author>A1</author><title>T1b</title><author>A2</author></book><book><author>B1</author><title>T2</title></book></bib>`

func TestQ3WeakDTDOutput(t *testing.T) {
	p := plan(t, q3, weakBib)
	got, st := runPlan(t, p, weakDoc)
	// XQuery semantics: per book, all titles then all authors, in
	// document order.
	want := `<results><result><title>T1</title><title>T1b</title><author>A1</author><author>A2</author></result><result><title>T2</title><author>B1</author></result></results>`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	if st.PeakBufferBytes <= 0 {
		t.Error("authors must be buffered under the weak DTD")
	}
}

func TestQ3StrongDTDOutputAndZeroBuffer(t *testing.T) {
	p := plan(t, q3, strongBib)
	doc := `<bib><book><title>T1</title><author>A1</author><author>A2</author><publisher>P</publisher><price>9</price></book></bib>`
	got, st := runPlan(t, p, doc)
	want := `<results><result><title>T1</title><author>A1</author><author>A2</author></result></results>`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	if st.PeakBufferBytes != 0 {
		t.Errorf("strong DTD must stream with zero buffering, peak = %d", st.PeakBufferBytes)
	}
	if st.SkippedSubtrees == 0 {
		t.Error("publisher/price should be skipped")
	}
}

// TestBufferOneBookAtATime is the paper's §2 claim: the peak buffer holds
// the authors of ONE book, regardless of book count.
func TestBufferOneBookAtATime(t *testing.T) {
	p := plan(t, q3, weakBib)
	book := `<book><title>T</title><author>AAAAAAAAAA</author><author>BBBBBBBBBB</author></book>`
	small := `<bib>` + strings.Repeat(book, 2) + `</bib>`
	large := `<bib>` + strings.Repeat(book, 200) + `</bib>`
	_, stSmall := runPlan(t, p, small)
	_, stLarge := runPlan(t, p, large)
	if stLarge.PeakBufferBytes != stSmall.PeakBufferBytes {
		t.Errorf("peak buffer grew with document size: %d -> %d",
			stSmall.PeakBufferBytes, stLarge.PeakBufferBytes)
	}
	if stLarge.BufferedBytesTotal <= stSmall.BufferedBytesTotal {
		t.Error("total buffer traffic should grow with document size")
	}
}

// TestTitlesNeverBuffered: only author bytes are buffered under Q3/weak.
func TestTitlesNeverBuffered(t *testing.T) {
	p := plan(t, q3, weakBib)
	// One book, no authors: nothing may be buffered.
	_, st := runPlan(t, p, `<bib><book><title>OnlyTitles</title><title>More</title></book></bib>`)
	if st.PeakBufferBytes != 0 {
		t.Errorf("titles wrongly buffered: peak = %d", st.PeakBufferBytes)
	}
}

func TestAttributesAndText(t *testing.T) {
	d := `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ATTLIST book year CDATA #REQUIRED>
`
	src := `<results>{ for $b in $ROOT/bib/book return <r>{ $b/@year }{ $b/title/text() }</r> }</results>`
	p := plan(t, src, d)
	got, _ := runPlan(t, p, `<bib><book year="1994"><title>TCP/IP</title><price>9</price></book></bib>`)
	want := `<results><r>1994TCP/IP</r></results>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestConditionOverBuffers(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return { if ($b/author = "Knuth") then <hit>{ $b/title }</hit> else () } }</results>`
	p := plan(t, src, weakBib)
	doc := `<bib><book><title>A</title><author>Knuth</author></book><book><title>B</title><author>Other</author></book></bib>`
	got, _ := runPlan(t, p, doc)
	want := `<results><hit><title>A</title></hit></results>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestJoinOverRootBuffers(t *testing.T) {
	d := `
<!ELEMENT store (bib,reviews)>
<!ELEMENT bib (book)*>
<!ELEMENT book (title)>
<!ELEMENT reviews (entry)*>
<!ELEMENT entry (title,rating)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT rating (#PCDATA)>
`
	src := `<out>{ for $b in $ROOT/store/bib/book, $e in $ROOT/store/reviews/entry where $b/title = $e/title return <m>{ $b/title }{ $e/rating }</m> }</out>`
	p := plan(t, src, d)
	doc := `<store><bib><book><title>X</title></book><book><title>Y</title></book></bib><reviews><entry><title>Y</title><rating>5</rating></entry><entry><title>Z</title><rating>1</rating></entry></reviews></store>`
	got, st := runPlan(t, p, doc)
	want := `<out><m><title>Y</title><rating>5</rating></m></out>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	if st.PeakBufferBytes == 0 {
		t.Error("a join must buffer")
	}
}

func TestInvalidDocumentRejected(t *testing.T) {
	p := plan(t, q3, strongBib)
	var out strings.Builder
	_, err := p.Run(strings.NewReader(`<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>1</price></book></bib>`), &out)
	if err == nil {
		t.Fatal("invalid document (author before title) accepted")
	}
}

func TestEmptyBib(t *testing.T) {
	p := plan(t, q3, weakBib)
	got, st := runPlan(t, p, `<bib></bib>`)
	if got != `<results/>` {
		t.Errorf("got %q", got)
	}
	if st.PeakBufferBytes != 0 {
		t.Errorf("peak = %d", st.PeakBufferBytes)
	}
}

func TestConstantQuery(t *testing.T) {
	p := plan(t, `<hello><world/></hello>`, weakBib)
	got, _ := runPlan(t, p, `<bib></bib>`)
	if got != `<hello><world/></hello>` {
		t.Errorf("got %q", got)
	}
}

func TestSeparatorBetweenStreams(t *testing.T) {
	src := `<results>{ for $b in $ROOT/bib/book return <r>{ $b/title }<sep/>{ $b/author }</r> }</results>`
	p := plan(t, src, strongBib)
	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book></bib>`
	got, _ := runPlan(t, p, doc)
	want := `<results><r><title>T</title><sep/><author>A</author></r></results>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestEarlyBufferFree: after the handler reading a buffered label fires,
// the label's buffers are released before the element ends.
func TestEarlyBufferFree(t *testing.T) {
	// price is buffered (output before title forces buffering of title;
	// actually: output authors after titles under weak DTD).
	p := plan(t, q3, weakBib)
	// Construct one book whose author load is big; the peak must be about
	// one book's authors even though the book also has trailing titles
	// after the authors... (title|author)* allows that.
	doc := `<bib><book><author>` + strings.Repeat("x", 1000) + `</author><title>T</title></book><book><title>U</title></book></bib>`
	_, st := runPlan(t, p, doc)
	if st.PeakBufferBytes < 1000 {
		t.Errorf("author buffer unaccounted: %d", st.PeakBufferBytes)
	}
	if st.PeakBufferBytes > 2500 {
		t.Errorf("buffer not released between books: %d", st.PeakBufferBytes)
	}
}

// TestStreamedAndBufferedLabel: with the optimizer disabled, a label can
// be both streamed (first loop) and buffered (second loop over the same
// label); outputs must still be correct.
func TestStreamedAndBufferedLabel(t *testing.T) {
	d := `
<!ELEMENT bib (book)*>
<!ELEMENT book (publisher)>
<!ELEMENT publisher (#PCDATA)>
`
	src := `<results>{ for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return <p1>{ $x/text() }</p1> }{ for $y in $b/publisher return <p2>{ $y/text() }</p2> }</r> }</results>`
	// Schedule WITHOUT loop merging (raw normalized query).
	p := plan(t, src, d)
	got, _ := runPlan(t, p, `<bib><book><publisher>AW</publisher></book></bib>`)
	want := `<results><r><p1>AW</p1><p2>AW</p2></r></results>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExplainSurfaces(t *testing.T) {
	p := plan(t, q3, weakBib)
	if p.BDF == nil || !strings.Contains(p.BDF.String(), "author") {
		t.Errorf("plan BDF missing author buffer:\n%v", p.BDF)
	}
}
