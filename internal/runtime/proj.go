package runtime

import (
	"fluxquery/internal/bdf"
	"fluxquery/internal/core"
	"fluxquery/internal/proj"
	"fluxquery/internal/xquery"
)

// This file derives a plan's projection path-set (package proj) from its
// physical operators: the union of every document path the evaluator can
// read. The derivation mirrors exec.go's consumption of the stream —
// every branch there that touches event content has a counterpart here
// that widens the set — and errs wide: a path the evaluator never reads
// costs only skipped savings, a path it reads but the set lacks would be
// a correctness bug (the differential suite runs projection on/off to
// prove there is none).

// derivePaths computes the projection requirement of a compiled plan.
func derivePaths(root pnode) *proj.PathSet {
	s := proj.NewPathSet()
	addPaths(root, s.Root)
	s.Normalize()
	return s
}

// addPaths folds the requirements of a physical node into cur, the
// path node of the element the evaluator would be positioned on.
func addPaths(p pnode, cur *proj.PathNode) {
	switch t := p.(type) {
	case pText, pOpen, pClose:
		// Output-only: reads nothing from the stream.
	case pSeq:
		for _, c := range t.items {
			addPaths(c, cur)
		}
	case pElement:
		for _, c := range t.children {
			addPaths(c, cur)
		}
	case pCopy:
		// Verbatim copy of the current element: everything below streams
		// to the output.
		cur.All = true
	case pAtomic:
		// Attributes ride on the start event; text() needs the direct
		// text children.
		if t.step.Axis == xquery.TextAxis {
			cur.Text = true
		}
	case pXQ:
		// Buffered evaluation reads only what the BDF buffered, which the
		// enclosing pPS folds in below — but derive the expression's own
		// path trie too, so an XQ placed outside a buffer context is
		// still covered. Underivable expressions keep everything.
		if trie, err := bdf.PathsTrie(t.expr, t.scopeVar); err == nil {
			cur.MergeBDF(trie)
		} else {
			cur.All = true
		}
	case *pPS:
		addScopePaths(t, cur)
	}
}

// addScopePaths folds one process-stream scope: the BDF's buffered
// children, the scope's buffered text, and every handler body.
func addScopePaths(ps *pPS, cur *proj.PathNode) {
	if ps.scope.Text {
		cur.Text = true
	}
	for label, b := range ps.scope.Buffered {
		cur.Child(label).MergeBDF(b)
	}
	_, starBuffered := ps.scope.Buffered["*"]
	for _, h := range ps.hs {
		if h.kind != core.OnElement {
			// Once-handlers evaluate over the scope's buffers; their
			// bodies read relative to the scope element.
			addPaths(h.body, cur)
			continue
		}
		child := cur.Child(h.label)
		if _, buffered := ps.scope.Buffered[h.label]; buffered || starBuffered {
			// A label that is both streamed and buffered is materialized
			// completely (the handler replays the full node).
			child.All = true
		}
		addPaths(h.body, child)
	}
}
