package baseline

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

const bibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author|extra)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT extra (#PCDATA)>
`

const doc = `<bib><book><title>T1</title><extra>never read, quite long content here</extra><author>A1</author></book></bib>`

func compile(t *testing.T, src string) (xquery.Expr, *dtd.DTD) {
	t.Helper()
	d := dtd.MustParse(bibDTD)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return n, d
}

const q = `<r>{ for $b in $ROOT/bib/book return <x>{ $b/title }{ $b/author }</x> }</r>`

func TestNaiveProducesResult(t *testing.T) {
	n, d := compile(t, q)
	var out strings.Builder
	st, err := RunNaive(n, d, strings.NewReader(doc), &out)
	if err != nil {
		t.Fatal(err)
	}
	want := `<r><x><title>T1</title><author>A1</author></x></r>`
	if out.String() != want {
		t.Errorf("got %s", out.String())
	}
	if st.PeakBufferBytes <= 0 || st.OutputBytes != int64(len(want)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestProjectionPrunesUnusedContent(t *testing.T) {
	n, d := compile(t, q)
	var out1, out2 strings.Builder
	stNaive, err := RunNaive(n, d, strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	stProj, err := RunProjection(n, d, strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("projection changed the result: %s vs %s", out1.String(), out2.String())
	}
	// The extra element is pruned, so projection holds strictly less.
	if stProj.PeakBufferBytes >= stNaive.PeakBufferBytes {
		t.Errorf("projection %d >= naive %d", stProj.PeakBufferBytes, stNaive.PeakBufferBytes)
	}
	if stProj.SkippedSubtrees == 0 {
		t.Error("projection should report skipped subtrees")
	}
}

func TestBaselinesRejectInvalid(t *testing.T) {
	n, d := compile(t, q)
	var out strings.Builder
	if _, err := RunNaive(n, d, strings.NewReader(`<bib><junk/></bib>`), &out); err == nil {
		t.Error("naive accepted invalid document")
	}
	if _, err := RunProjection(n, d, strings.NewReader(`<wrong/>`), &out); err == nil {
		t.Error("projection accepted invalid document")
	}
}
