// Package baseline implements the two comparison engines of the paper's
// evaluation (§4 cites benchmarks against two other XQuery engines):
//
//   - Naive: a conventional main-memory XQuery processor — it materializes
//     the entire document as a tree and evaluates the query over it. Its
//     buffer high-water mark is the whole document.
//   - Projection: the strongest published buffer-reduction technique of
//     the time, document projection à la Marian & Siméon [10] — it
//     stream-prunes the document to the paths the query touches before
//     building the in-memory tree. Its high-water mark is the projected
//     document, which still grows linearly with input size.
//
// Both engines consume the same validating XSAX token stream and share
// the eval interpreter with the FluX runtime, so all three engines
// produce byte-identical output — the differential test suite depends on
// that.
package baseline

import (
	"io"

	"fluxquery/internal/bdf"
	"fluxquery/internal/dom"
	"fluxquery/internal/dtd"
	"fluxquery/internal/eval"
	"fluxquery/internal/runtime"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
	"fluxquery/internal/xsax"
)

// RunNaive evaluates the query by materializing the whole document.
func RunNaive(q xquery.Expr, d *dtd.DTD, in io.Reader, out io.Writer) (*runtime.Stats, error) {
	st := &runtime.Stats{}
	doc, err := buildDoc(in, d, nil, st)
	if err != nil {
		return st, err
	}
	sz := doc.Size()
	st.PeakBufferBytes = sz
	st.PeakHeapBufferBytes = sz
	st.BufferedBytesTotal = sz
	st.BufferedNodes = int64(doc.Count())
	return st, evalOver(q, doc, out, st)
}

// RunProjection evaluates the query over a stream-projected document.
func RunProjection(q xquery.Expr, d *dtd.DTD, in io.Reader, out io.Writer) (*runtime.Stats, error) {
	st := &runtime.Stats{}
	trie, err := bdf.PathsTrie(q, xquery.RootVar)
	if err != nil {
		return st, err
	}
	doc, err := buildDoc(in, d, trie, st)
	if err != nil {
		return st, err
	}
	sz := doc.Size()
	st.PeakBufferBytes = sz
	st.PeakHeapBufferBytes = sz
	st.BufferedBytesTotal = sz
	st.BufferedNodes = int64(doc.Count())
	return st, evalOver(q, doc, out, st)
}

func evalOver(q xquery.Expr, doc *dom.Node, out io.Writer, st *runtime.Stats) error {
	w := xmltok.GetWriter(out)
	defer xmltok.PutWriter(w)
	env := eval.NewEnv(xquery.RootVar, eval.Item(doc))
	if err := eval.Eval(q, env, w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st.OutputBytes = w.Written()
	return nil
}

// buildDoc reads the validated token stream into a document tree,
// applying the projection trie when non-nil. The projection root
// describes the document node: its children constrain the root element
// and below.
func buildDoc(in io.Reader, d *dtd.DTD, proj *bdf.Node, st *runtime.Stats) (*dom.Node, error) {
	xr := xsax.GetReader(in, d)
	defer xsax.PutReader(xr)
	doc := dom.NewDocument()
	type frame struct {
		node *dom.Node
		proj *bdf.Node // nil = keep everything below
	}
	stack := []frame{{node: doc, proj: proj}}
	for {
		ev, err := xr.NextEvent()
		if err == io.EOF {
			return doc, nil
		}
		if err != nil {
			return nil, err
		}
		st.Events++
		top := &stack[len(stack)-1]
		switch ev.Kind {
		case xmltok.StartElement:
			if top.node == nil {
				stack = append(stack, frame{})
				st.SkippedSubtrees++
				continue
			}
			var childProj *bdf.Node
			keep := true
			if top.proj != nil {
				childProj, keep = top.proj.Keep(ev.Name)
			}
			if !keep {
				stack = append(stack, frame{})
				st.SkippedSubtrees++
				continue
			}
			e := dom.NewElement(ev.Name)
			e.Attrs = ev.OwnedAttrs()
			top.node.AppendChild(e)
			stack = append(stack, frame{node: e, proj: childProj})
		case xmltok.EndElement:
			stack = stack[:len(stack)-1]
		case xmltok.Text:
			if top.node == nil || top.node.Kind == dom.DocumentNode {
				continue
			}
			if top.proj == nil || top.proj.CopyAll || top.proj.Text {
				top.node.AppendChild(dom.NewText(string(ev.Data)))
			}
		}
	}
}
