// Package faultinj is the engine's fault-injection layer: a small
// registry of named sites on the streaming hot paths (spill-store I/O,
// request-body reads, pipeline ring hand-offs) where tests, fluxbench
// -fault runs and operators can arm error, latency or short-write
// faults. The disabled path — the only one production traffic ever
// sees — is a single atomic load per site hit.
//
// Sites are declared here, centrally, so the fault-matrix test can
// enumerate them (Sites) and prove each one reachable: every injection
// is counted per site (Injected), and a site whose counter stays zero
// under an armed fault is a regression, not a pass.
package faultinj

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fluxquery/internal/telemetry"
)

// The named fault sites. Each constant is the site's wire name, used in
// specs (Arm / ArmSpec), metrics labels and test tables.
const (
	// SiteSpillWrite covers segment writes in the bufmgr spill store.
	SiteSpillWrite = "spill.write"
	// SiteSpillRead covers segment reads (rehydration) in the spill store.
	SiteSpillRead = "spill.read"
	// SiteBodyRead covers fluxserve request-body reads.
	SiteBodyRead = "body.read"
	// SiteRingToken covers the tokenizer→validator ring hand-off of the
	// pipelined pass.
	SiteRingToken = "ring.token"
	// SiteRingEvent covers the validator→dispatcher ring hand-off.
	SiteRingEvent = "ring.event"
)

// Mode selects what an armed fault does at its site.
type Mode uint8

const (
	// ModeError fails the operation with an injected error.
	ModeError Mode = iota
	// ModeLatency delays the operation, then lets it proceed.
	ModeLatency
	// ModeShortWrite truncates the operation's payload and fails with a
	// short-write error. At non-write sites it degrades to ModeError.
	ModeShortWrite
)

// String returns the mode's spec name.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeShortWrite:
		return "shortwrite"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode parses a spec mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "latency":
		return ModeLatency, nil
	case "shortwrite", "short-write":
		return ModeShortWrite, nil
	}
	return 0, fmt.Errorf("faultinj: unknown mode %q", s)
}

// Modes enumerates every fault mode, in spec order.
func Modes() []Mode { return []Mode{ModeError, ModeLatency, ModeShortWrite} }

// ErrInjected is the sentinel wrapped by every injected error, so
// callers can classify a failure as synthetic with errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault is one armed fault.
type Fault struct {
	Mode Mode
	// Latency is the delay for ModeLatency (default 1ms).
	Latency time.Duration
	// Times bounds how often the fault fires before auto-disarming;
	// 0 means every hit. A Times=1 error fault followed by success is
	// exactly the transient-I/O shape the spill retry path recovers from.
	Times int64
}

// site is one registered site's armed state and counters.
type site struct {
	mu       sync.Mutex
	fault    Fault
	armed    bool
	err      error // prewrapped, allocated at Arm time
	left     int64 // remaining injections when fault.Times > 0
	hits     atomic.Int64
	injected atomic.Int64
}

var (
	// enabled is the global fast-path switch: zero while no site is
	// armed, so a disabled Hit is one atomic load and a branch.
	enabled atomic.Int32
	sites   = map[string]*site{
		SiteSpillWrite: {},
		SiteSpillRead:  {},
		SiteBodyRead:   {},
		SiteRingToken:  {},
		SiteRingEvent:  {},
	}
)

// Sites returns every registered site name, sorted.
func Sites() []string {
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Arm installs a fault at the named site. Arming any site enables the
// injection slow path process-wide until Reset or the last Disarm.
func Arm(name string, f Fault) error {
	s, ok := sites[name]
	if !ok {
		return fmt.Errorf("faultinj: unknown site %q", name)
	}
	if f.Mode == ModeLatency && f.Latency <= 0 {
		f.Latency = time.Millisecond
	}
	s.mu.Lock()
	if !s.armed {
		enabled.Add(1)
	}
	s.armed = true
	s.fault = f
	s.left = f.Times
	s.err = fmt.Errorf("faultinj: %s at %s: %w", f.Mode, name, ErrInjected)
	if f.Mode == ModeShortWrite {
		s.err = fmt.Errorf("faultinj: %s at %s: %w (%w)", f.Mode, name, io.ErrShortWrite, ErrInjected)
	}
	s.mu.Unlock()
	return nil
}

// Disarm removes the fault at the named site, if any.
func Disarm(name string) {
	s, ok := sites[name]
	if !ok {
		return
	}
	s.mu.Lock()
	if s.armed {
		s.armed = false
		enabled.Add(-1)
	}
	s.mu.Unlock()
}

// Reset disarms every site and zeroes all counters.
func Reset() {
	for _, s := range sites {
		s.mu.Lock()
		if s.armed {
			s.armed = false
			enabled.Add(-1)
		}
		s.hits.Store(0)
		s.injected.Store(0)
		s.mu.Unlock()
	}
}

// Hits returns how many times the named site was reached while any
// fault was armed anywhere (reachability evidence for the matrix test).
func Hits(name string) int64 {
	if s, ok := sites[name]; ok {
		return s.hits.Load()
	}
	return 0
}

// Injected returns how many faults the named site has injected.
func Injected(name string) int64 {
	if s, ok := sites[name]; ok {
		return s.injected.Load()
	}
	return 0
}

// TotalInjected returns the process-wide injected-fault count summed
// across every site (a handful of atomic loads — cheap enough for
// per-pass attribution deltas).
func TotalInjected() int64 {
	var n int64
	for _, s := range sites {
		n += s.injected.Load()
	}
	return n
}

// take decides whether the site's armed fault fires for this hit and
// returns the fault and prewrapped error when it does.
func (s *site) take() (Fault, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return Fault{}, nil, false
	}
	if s.fault.Times > 0 {
		if s.left <= 0 {
			return Fault{}, nil, false
		}
		s.left--
	}
	s.injected.Add(1)
	return s.fault, s.err, true
}

// Hit marks one pass through the named site. It returns nil when
// injection is disabled or the site is not armed; under an armed error
// or short-write fault it returns the injected error; under a latency
// fault it sleeps, then returns nil.
func Hit(name string) error {
	if enabled.Load() == 0 {
		return nil
	}
	s, ok := sites[name]
	if !ok {
		return nil
	}
	s.hits.Add(1)
	f, err, fire := s.take()
	if !fire {
		return nil
	}
	if f.Mode == ModeLatency {
		time.Sleep(f.Latency)
		return nil
	}
	return err
}

// Cut is the write-site form of Hit: n is the intended write length and
// the result is how much to actually write plus the error to report.
// Disabled or unarmed: (n, nil). Error fault: (0, err). Short write:
// (n/2, err) — the caller writes the prefix, then fails, exactly the
// torn write a crashed disk produces. Latency: sleeps, then (n, nil).
func Cut(name string, n int) (int, error) {
	if enabled.Load() == 0 {
		return n, nil
	}
	s, ok := sites[name]
	if !ok {
		return n, nil
	}
	s.hits.Add(1)
	f, err, fire := s.take()
	if !fire {
		return n, nil
	}
	switch f.Mode {
	case ModeLatency:
		time.Sleep(f.Latency)
		return n, nil
	case ModeShortWrite:
		return n / 2, err
	}
	return 0, err
}

// ArmSpec arms faults from a comma-separated spec list. Each item is
// "site:mode[:param]" — param is the delay for latency faults (a
// Go duration) and the fire count for error/short-write faults:
//
//	spill.write:error        fail every spill write
//	spill.write:error:1      fail exactly one write (transient)
//	body.read:latency:5ms    delay every body read by 5ms
//	ring.token:shortwrite    torn hand-off on the token ring
//
// This is the grammar behind test env vars and fluxbench -fault.
func ArmSpec(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("faultinj: bad spec %q (want site:mode[:param])", item)
		}
		mode, err := ParseMode(parts[1])
		if err != nil {
			return err
		}
		f := Fault{Mode: mode}
		if len(parts) == 3 {
			switch mode {
			case ModeLatency:
				d, err := time.ParseDuration(parts[2])
				if err != nil {
					return fmt.Errorf("faultinj: bad latency in %q: %w", item, err)
				}
				f.Latency = d
			default:
				nTimes, err := strconv.ParseInt(parts[2], 10, 64)
				if err != nil {
					return fmt.Errorf("faultinj: bad count in %q: %w", item, err)
				}
				f.Times = nTimes
			}
		}
		if err := Arm(parts[0], f); err != nil {
			return err
		}
	}
	return nil
}

// EnvVar is the environment variable holding an ArmSpec list applied
// at process start, so faults can be armed on an unmodified binary
// (FLUX_FAULT=spill.write:error:1 fluxserve ...).
const EnvVar = "FLUX_FAULT"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		// A typo in a fault spec must not silently run a fault-free
		// experiment; fail loudly at startup.
		if err := ArmSpec(spec); err != nil {
			panic(fmt.Sprintf("faultinj: %s: %v", EnvVar, err))
		}
	}
}

// A Reader wraps an io.Reader with a fault site: every Read passes
// through Hit(site) first. It wraps the fluxserve request body so
// client-side stalls and failures are injectable.
type Reader struct {
	Site string
	R    io.Reader
}

func (r *Reader) Read(p []byte) (int, error) {
	if err := Hit(r.Site); err != nil {
		return 0, err
	}
	return r.R.Read(p)
}

// RegisterMetrics publishes one flux_fault_injected_total{site} series
// per registered site on reg, read from the live counters at scrape
// time. Nil registry is a no-op.
func RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, name := range Sites() {
		s := sites[name]
		reg.CounterFunc("flux_fault_injected_total",
			"Faults injected by the faultinj layer, by site.",
			telemetry.ScaleNone, s.injected.Load,
			telemetry.L("site", name))
	}
}
