package faultinj

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"fluxquery/internal/telemetry"
)

func TestDisabledFastPath(t *testing.T) {
	Reset()
	if err := Hit(SiteSpillWrite); err != nil {
		t.Fatalf("disabled Hit: %v", err)
	}
	if n, err := Cut(SiteSpillWrite, 100); n != 100 || err != nil {
		t.Fatalf("disabled Cut = (%d, %v), want (100, nil)", n, err)
	}
	if Hits(SiteSpillWrite) != 0 {
		t.Fatalf("disabled hits counted: %d", Hits(SiteSpillWrite))
	}
}

func TestErrorFault(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm(SiteSpillRead, Fault{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := Hit(SiteSpillRead)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if got := Injected(SiteSpillRead); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	// Other sites stay clean while injection is enabled.
	if err := Hit(SiteBodyRead); err != nil {
		t.Fatalf("unarmed site injected: %v", err)
	}
	if Hits(SiteBodyRead) != 1 {
		t.Fatalf("armed-mode hit not counted: %d", Hits(SiteBodyRead))
	}
	Disarm(SiteSpillRead)
	if err := Hit(SiteSpillRead); err != nil {
		t.Fatalf("disarmed Hit: %v", err)
	}
}

func TestTimesBound(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm(SiteSpillWrite, Fault{Mode: ModeError, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var failed int
	for i := 0; i < 5; i++ {
		if Hit(SiteSpillWrite) != nil {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("Times=2 fired %d times", failed)
	}
	if got := Injected(SiteSpillWrite); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
}

func TestLatencyFault(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm(SiteRingToken, Fault{Mode: ModeLatency, Latency: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(SiteRingToken); err != nil {
		t.Fatalf("latency Hit errored: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency fault returned after %v, want >= 10ms", d)
	}
}

func TestCutShortWrite(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm(SiteSpillWrite, Fault{Mode: ModeShortWrite}); err != nil {
		t.Fatal(err)
	}
	n, err := Cut(SiteSpillWrite, 64)
	if n != 32 {
		t.Fatalf("Cut truncated to %d, want 32", n)
	}
	if !errors.Is(err, io.ErrShortWrite) || !errors.Is(err, ErrInjected) {
		t.Fatalf("Cut err = %v, want short-write + injected", err)
	}
	// Hit at a non-write site degrades short-write to a plain error.
	if err := Arm(SiteBodyRead, Fault{Mode: ModeShortWrite}); err != nil {
		t.Fatal(err)
	}
	if err := Hit(SiteBodyRead); !errors.Is(err, ErrInjected) {
		t.Fatalf("short-write Hit = %v, want injected error", err)
	}
}

func TestArmSpec(t *testing.T) {
	Reset()
	defer Reset()
	spec := "spill.write:error:1, body.read:latency:1ms, ring.event:shortwrite"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := Hit(SiteSpillWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("spec error fault: %v", err)
	}
	if err := Hit(SiteSpillWrite); err != nil {
		t.Fatalf("spec Times=1 fired twice: %v", err)
	}
	if err := Hit(SiteBodyRead); err != nil {
		t.Fatalf("spec latency fault errored: %v", err)
	}
	if err := Hit(SiteRingEvent); !errors.Is(err, ErrInjected) {
		t.Fatalf("spec shortwrite fault: %v", err)
	}
	for _, bad := range []string{"nope:error", "spill.write", "spill.write:maybe", "body.read:latency:fast"} {
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestReader(t *testing.T) {
	Reset()
	defer Reset()
	r := &Reader{Site: SiteBodyRead, R: strings.NewReader("abc")}
	buf := make([]byte, 8)
	if n, err := r.Read(buf); n != 3 || err != nil {
		t.Fatalf("clean Read = (%d, %v)", n, err)
	}
	if err := Arm(SiteBodyRead, Fault{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted Read = %v", err)
	}
}

func TestSitesAndMetrics(t *testing.T) {
	Reset()
	defer Reset()
	want := []string{SiteBodyRead, SiteRingEvent, SiteRingToken, SiteSpillRead, SiteSpillWrite}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
	reg := telemetry.New()
	RegisterMetrics(reg)
	if err := Arm(SiteSpillRead, Fault{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	Hit(SiteSpillRead)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `flux_fault_injected_total{site="spill.read"} 1`) {
		t.Fatalf("metrics missing injected series:\n%s", sb.String())
	}
}
