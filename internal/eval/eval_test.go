package eval

import (
	"strings"
	"testing"

	"fluxquery/internal/dom"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
)

const bibDoc = `<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><publisher>AW</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><publisher>MK</publisher><price>39.95</price></book></bib>`

func run(t *testing.T, query, doc string) string {
	t.Helper()
	tree, err := dom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(xquery.RootVar, Item(tree))
	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	if err := Eval(xquery.MustParse(query), env, w); err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestEvalQ3(t *testing.T) {
	got := run(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`, bibDoc)
	want := `<results><result><title>TCP/IP</title><author>Stevens</author></result><result><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author></result></results>`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestEvalWhere(t *testing.T) {
	got := run(t, `for $b in $ROOT/bib/book where $b/publisher = "AW" return { $b/title/text() }`, bibDoc)
	if got != "TCP/IP" {
		t.Errorf("got %q", got)
	}
}

func TestEvalNumericComparison(t *testing.T) {
	got := run(t, `for $b in $ROOT/bib/book where $b/price < 50 return { $b/title/text() }`, bibDoc)
	if got != "Data on the Web" {
		t.Errorf("got %q", got)
	}
	got = run(t, `for $b in $ROOT/bib/book where $b/@year >= 2000 return { $b/title/text() }`, bibDoc)
	if got != "Data on the Web" {
		t.Errorf("attr compare got %q", got)
	}
}

func TestEvalExistentialComparison(t *testing.T) {
	// Any author equal matches (existential over the author sequence).
	got := run(t, `for $b in $ROOT/bib/book where $b/author = "Buneman" return { $b/title/text() }`, bibDoc)
	if got != "Data on the Web" {
		t.Errorf("got %q", got)
	}
}

func TestEvalJoin(t *testing.T) {
	doc := `<db><l><i k="1">x</i><i k="2">y</i></l><r><j k="2">Y</j><j k="3">Z</j></r></db>`
	got := run(t, `for $a in $ROOT/db/l/i, $b in $ROOT/db/r/j where $a/@k = $b/@k return <m>{ $a/text() }{ $b/text() }</m>`, doc)
	if got != "<m>yY</m>" {
		t.Errorf("join got %q", got)
	}
}

func TestEvalIfElse(t *testing.T) {
	got := run(t, `for $b in $ROOT/bib/book return { if (exists($b/author)) then <a/> else <e/> }`, bibDoc)
	if got != "<a/><a/>" {
		t.Errorf("got %q", got)
	}
	got = run(t, `for $b in $ROOT/bib/book return { if ($b/price > 100) then <x/> else <cheap/> }`, bibDoc)
	if got != "<cheap/><cheap/>" {
		t.Errorf("got %q", got)
	}
}

func TestEvalLet(t *testing.T) {
	got := run(t, `for $b in $ROOT/bib/book let $t := $b/title where $b/publisher = "AW" return <r>{ $t/text() }</r>`, bibDoc)
	if got != "<r>TCP/IP</r>" {
		t.Errorf("got %q", got)
	}
}

func TestEvalConcatAndData(t *testing.T) {
	got := run(t, `for $b in $ROOT/bib/book where $b/publisher = "AW" return { concat("t=", data($b/title)) }`, bibDoc)
	if got != "t=TCP/IP" {
		t.Errorf("got %q", got)
	}
}

func TestEvalDistinctValues(t *testing.T) {
	doc := `<d><v>a</v><v>b</v><v>a</v><v>c</v></d>`
	got := run(t, `{ distinct-values($ROOT/d/v) }`, doc)
	if got != "abc" {
		t.Errorf("got %q", got)
	}
}

func TestEvalWildcard(t *testing.T) {
	got := run(t, `for $x in $ROOT/bib/book/* where $x/text() = "Stevens" return <hit/>`, bibDoc)
	if got != "<hit/>" {
		t.Errorf("got %q", got)
	}
}

func TestEvalEscaping(t *testing.T) {
	doc := `<d><v>a &amp; b &lt; c</v></d>`
	got := run(t, `{ $ROOT/d/v }`, doc)
	if got != "<v>a &amp; b &lt; c</v>" {
		t.Errorf("got %q", got)
	}
}

func TestEvalErrors(t *testing.T) {
	tree, _ := dom.ParseString(bibDoc)
	env := NewEnv(xquery.RootVar, Item(tree))
	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	cases := []string{
		`{ $nope/x }`, // unbound variable
		`for $x in $ROOT/bib/book/@year return { $x }`, // iterate atomics
	}
	for _, src := range cases {
		if err := Eval(xquery.MustParse(src), env, w); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEnvShadowing(t *testing.T) {
	base := NewEnv("x", "outer")
	inner := base.Bind("x", "inner")
	if v, _ := inner.Lookup("x"); v[0] != "inner" {
		t.Errorf("shadow lookup = %v", v)
	}
	if v, _ := base.Lookup("x"); v[0] != "outer" {
		t.Errorf("outer lookup = %v", v)
	}
	if _, ok := base.Lookup("y"); ok {
		t.Error("unbound lookup should fail")
	}
}

func TestEvalTextStepConcatenatesDirectText(t *testing.T) {
	doc := `<d><v>a<b>skip</b>c</v></d>`
	got := run(t, `{ $ROOT/d/v/text() }`, doc)
	if got != "ac" {
		t.Errorf("got %q", got)
	}
}
