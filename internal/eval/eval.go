// Package eval implements the XQuery-over-tree interpreter shared by the
// FluX runtime (for handler bodies evaluated over memory buffers) and the
// baseline engines (which evaluate whole documents in memory).
//
// Sequence semantics follow the paper's fragment: general comparisons are
// existential; atomization takes the string value of a node; adjacent
// atomic values in constructor content are concatenated without separator
// (a deliberate, engine-wide simplification of the W3C space-joining rule
// so that all engines in this repository produce byte-identical output).
package eval

import (
	"fmt"
	"strconv"
	"strings"

	"fluxquery/internal/dom"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
)

// Item is one value of a sequence: a *dom.Node or an atomic string.
type Item interface{}

// Env maps variables to item sequences; environments nest lexically.
type Env struct {
	parent *Env
	name   string
	items  []Item
}

// NewEnv returns an environment with a single binding.
func NewEnv(name string, items ...Item) *Env {
	return &Env{name: name, items: items}
}

// Bind returns a child environment with an additional binding.
func (e *Env) Bind(name string, items ...Item) *Env {
	return &Env{parent: e, name: name, items: items}
}

// Lookup resolves a variable.
func (e *Env) Lookup(name string) ([]Item, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.items, true
		}
	}
	return nil, false
}

// Error reports an evaluation failure (unbound variable, iteration over
// atomics, …).
type Error struct{ Msg string }

func (e *Error) Error() string { return "eval: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates e under env and writes its result to w.
func Eval(e xquery.Expr, env *Env, w *xmltok.Writer) error {
	switch t := e.(type) {
	case nil, xquery.EmptySeq:
		return nil
	case xquery.Text:
		w.Text(t.Data)
		return nil
	case xquery.Str:
		w.Text(t.Value)
		return nil
	case xquery.Num:
		w.Text(t.Lit)
		return nil
	case xquery.Seq:
		for _, c := range t.Items {
			if err := Eval(c, env, w); err != nil {
				return err
			}
		}
		return nil
	case xquery.Elem:
		attrs := make([]xmltok.Attr, len(t.Attrs))
		for i, a := range t.Attrs {
			attrs[i] = xmltok.Attr{Name: a.Name, Value: a.Value}
		}
		w.StartElement(t.Name, attrs)
		for _, c := range t.Children {
			if err := Eval(c, env, w); err != nil {
				return err
			}
		}
		w.EndElement(t.Name)
		return nil
	case xquery.Path:
		items, err := Items(t, env)
		if err != nil {
			return err
		}
		for _, it := range items {
			EmitItem(w, it)
		}
		return nil
	case xquery.For:
		return evalFor(t, env, w)
	case xquery.Let:
		inner := env
		for _, b := range t.Bindings {
			items, err := Items(b.In, inner)
			if err != nil {
				return err
			}
			inner = inner.Bind(b.Var, items...)
		}
		return Eval(t.Body, inner, w)
	case xquery.If:
		ok, err := Cond(t.Cond, env)
		if err != nil {
			return err
		}
		if ok {
			return Eval(t.Then, env, w)
		}
		return Eval(t.Else, env, w)
	case xquery.Call:
		return evalCallOutput(t, env, w)
	case xquery.Cmp, xquery.And, xquery.Or:
		ok, err := Cond(t, env)
		if err != nil {
			return err
		}
		if ok {
			w.Text("true")
		} else {
			w.Text("false")
		}
		return nil
	default:
		return errf("cannot evaluate %T in output position", e)
	}
}

func evalFor(f xquery.For, env *Env, w *xmltok.Writer) error {
	return iterate(f.Bindings, 0, env, func(rowEnv *Env) error {
		inner := rowEnv
		for _, b := range f.Lets {
			items, err := Items(b.In, inner)
			if err != nil {
				return err
			}
			inner = inner.Bind(b.Var, items...)
		}
		if f.Where != nil {
			ok, err := Cond(f.Where, inner)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return Eval(f.Return, inner, w)
	})
}

// iterate runs body once per combination of binding values (nested-loop
// semantics for multi-variable for clauses).
func iterate(bindings []xquery.Binding, i int, env *Env, body func(*Env) error) error {
	if i == len(bindings) {
		return body(env)
	}
	items, err := Items(bindings[i].In, env)
	if err != nil {
		return err
	}
	for _, it := range items {
		if _, ok := it.(*dom.Node); !ok {
			return errf("for $%s iterates over atomic values", bindings[i].Var)
		}
		if err := iterate(bindings, i+1, env.Bind(bindings[i].Var, it), body); err != nil {
			return err
		}
	}
	return nil
}

// EmitItem writes one item to the output.
func EmitItem(w *xmltok.Writer, it Item) {
	switch v := it.(type) {
	case *dom.Node:
		v.WriteXML(w)
	case string:
		w.Text(v)
	}
}

// Items evaluates an expression in operand position to an item sequence.
func Items(e xquery.Expr, env *Env) ([]Item, error) {
	switch t := e.(type) {
	case xquery.Path:
		base, ok := env.Lookup(t.Var)
		if !ok {
			return nil, errf("unbound variable $%s", t.Var)
		}
		return resolveSteps(base, t.Steps)
	case xquery.Str:
		return []Item{t.Value}, nil
	case xquery.Num:
		return []Item{t.Lit}, nil
	case xquery.EmptySeq:
		return nil, nil
	case xquery.Seq:
		var out []Item
		for _, c := range t.Items {
			items, err := Items(c, env)
			if err != nil {
				return nil, err
			}
			out = append(out, items...)
		}
		return out, nil
	case xquery.Call:
		return callItems(t, env)
	default:
		return nil, errf("unsupported operand %T", e)
	}
}

func resolveSteps(items []Item, steps []xquery.Step) ([]Item, error) {
	cur := items
	for _, s := range steps {
		var next []Item
		for _, it := range cur {
			n, ok := it.(*dom.Node)
			if !ok {
				return nil, errf("cannot apply step /%s to atomic value", s)
			}
			switch s.Axis {
			case xquery.Child:
				for _, c := range n.ChildElements(s.Name) {
					next = append(next, c)
				}
			case xquery.Attribute:
				if v, ok := n.Attr(s.Name); ok {
					next = append(next, v)
				}
			case xquery.TextAxis:
				// The concatenated character data directly under n
				// (Kids, not Children: n may be a spilled buffer stub).
				var b strings.Builder
				for _, c := range n.Kids() {
					if c.Kind == dom.TextNode {
						b.WriteString(c.Text)
					}
				}
				if b.Len() > 0 {
					next = append(next, b.String())
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// Atomize returns the string value of an item.
func Atomize(it Item) string {
	switch v := it.(type) {
	case *dom.Node:
		return v.StringValue()
	case string:
		return v
	default:
		return ""
	}
}

// Cond evaluates a condition to a boolean.
func Cond(e xquery.Expr, env *Env) (bool, error) {
	switch t := e.(type) {
	case xquery.And:
		l, err := Cond(t.L, env)
		if err != nil || !l {
			return false, err
		}
		return Cond(t.R, env)
	case xquery.Or:
		l, err := Cond(t.L, env)
		if err != nil || l {
			return l, err
		}
		return Cond(t.R, env)
	case xquery.Cmp:
		return evalCmp(t, env)
	case xquery.Call:
		switch t.Name {
		case "true":
			return true, nil
		case "false":
			return false, nil
		case "not":
			inner, err := Cond(t.Args[0], env)
			return !inner, err
		case "exists", "empty":
			items, err := Items(t.Args[0], env)
			if err != nil {
				return false, err
			}
			if t.Name == "exists" {
				return len(items) > 0, nil
			}
			return len(items) == 0, nil
		default:
			return false, errf("function %s() is not a condition", t.Name)
		}
	case xquery.Path:
		items, err := Items(t, env)
		return len(items) > 0, err
	default:
		return false, errf("unsupported condition %T", e)
	}
}

// evalCmp implements general comparisons with existential semantics. The
// comparison is numeric when either operand is a numeric literal and both
// atomized values parse as numbers; otherwise it is a string comparison.
func evalCmp(c xquery.Cmp, env *Env) (bool, error) {
	l, err := Items(c.L, env)
	if err != nil {
		return false, err
	}
	r, err := Items(c.R, env)
	if err != nil {
		return false, err
	}
	_, lNum := c.L.(xquery.Num)
	_, rNum := c.R.(xquery.Num)
	numeric := lNum || rNum
	for _, li := range l {
		ls := Atomize(li)
		for _, ri := range r {
			rs := Atomize(ri)
			if numeric {
				lf, errL := strconv.ParseFloat(strings.TrimSpace(ls), 64)
				rf, errR := strconv.ParseFloat(strings.TrimSpace(rs), 64)
				if errL != nil || errR != nil {
					continue
				}
				if cmpNum(c.Op, lf, rf) {
					return true, nil
				}
				continue
			}
			if cmpStr(c.Op, ls, rs) {
				return true, nil
			}
		}
	}
	return false, nil
}

func cmpNum(op xquery.CmpOp, a, b float64) bool {
	switch op {
	case xquery.Eq:
		return a == b
	case xquery.Ne:
		return a != b
	case xquery.Lt:
		return a < b
	case xquery.Le:
		return a <= b
	case xquery.Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpStr(op xquery.CmpOp, a, b string) bool {
	switch op {
	case xquery.Eq:
		return a == b
	case xquery.Ne:
		return a != b
	case xquery.Lt:
		return a < b
	case xquery.Le:
		return a <= b
	case xquery.Gt:
		return a > b
	default:
		return a >= b
	}
}

// callItems evaluates value-returning builtins.
func callItems(c xquery.Call, env *Env) ([]Item, error) {
	switch c.Name {
	case "data", "string":
		items, err := Items(c.Args[0], env)
		if err != nil {
			return nil, err
		}
		out := make([]Item, len(items))
		for i, it := range items {
			out[i] = Atomize(it)
		}
		return out, nil
	case "concat":
		var b strings.Builder
		for _, a := range c.Args {
			items, err := Items(a, env)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				b.WriteString(Atomize(it))
			}
		}
		return []Item{b.String()}, nil
	case "distinct-values":
		items, err := Items(c.Args[0], env)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(items))
		var out []Item
		for _, it := range items {
			s := Atomize(it)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out, nil
	default:
		return nil, errf("unsupported function %s() in operand position", c.Name)
	}
}

// evalCallOutput writes a value-returning call's result to the output.
func evalCallOutput(c xquery.Call, env *Env, w *xmltok.Writer) error {
	items, err := callItems(c, env)
	if err != nil {
		return err
	}
	for _, it := range items {
		EmitItem(w, it)
	}
	return nil
}
