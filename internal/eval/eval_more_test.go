package eval

import (
	"strings"
	"testing"

	"fluxquery/internal/dom"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xquery"
)

func runExpr(t *testing.T, query, doc string) (string, error) {
	t.Helper()
	tree, err := dom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(xquery.RootVar, Item(tree))
	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	if err := Eval(xquery.MustParse(query), env, w); err != nil {
		return "", err
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func mustRun(t *testing.T, query, doc string) string {
	t.Helper()
	out, err := runExpr(t, query, doc)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	return out
}

func TestAllComparisonOperators(t *testing.T) {
	doc := `<d><v>5</v><w>abc</w></d>`
	cases := []struct {
		q    string
		want string
	}{
		{`{ if ($ROOT/d/v != 5) then <t/> else <f/> }`, "<f/>"},
		{`{ if ($ROOT/d/v <= 5) then <t/> else <f/> }`, "<t/>"},
		{`{ if ($ROOT/d/v >= 6) then <t/> else <f/> }`, "<f/>"},
		{`{ if ($ROOT/d/v lt 10) then <t/> else <f/> }`, "<t/>"},
		{`{ if ($ROOT/d/w = "abc") then <t/> else <f/> }`, "<t/>"},
		{`{ if ($ROOT/d/w < "abd") then <t/> else <f/> }`, "<t/>"},
		{`{ if ($ROOT/d/w ge "abd") then <t/> else <f/> }`, "<f/>"},
		{`{ if ($ROOT/d/w ne "abc") then <t/> else <f/> }`, "<f/>"},
	}
	for _, c := range cases {
		if got := mustRun(t, c.q, doc); got != c.want {
			t.Errorf("%s = %s, want %s", c.q, got, c.want)
		}
	}
}

func TestNumericComparisonSkipsUnparseable(t *testing.T) {
	doc := `<d><v>not-a-number</v><v>7</v></d>`
	// Existential: one v parses and satisfies > 5.
	got := mustRun(t, `{ if ($ROOT/d/v > 5) then <t/> else <f/> }`, doc)
	if got != "<t/>" {
		t.Errorf("got %s", got)
	}
}

func TestEmptyAndNot(t *testing.T) {
	doc := `<d><a>x</a></d>`
	if got := mustRun(t, `{ if (empty($ROOT/d/b)) then <t/> else <f/> }`, doc); got != "<t/>" {
		t.Errorf("empty: %s", got)
	}
	if got := mustRun(t, `{ if (not(empty($ROOT/d/a))) then <t/> else <f/> }`, doc); got != "<t/>" {
		t.Errorf("not-empty: %s", got)
	}
	if got := mustRun(t, `{ if (true()) then <t/> else <f/> }`, doc); got != "<t/>" {
		t.Errorf("true(): %s", got)
	}
	if got := mustRun(t, `{ if (false()) then <t/> else <f/> }`, doc); got != "<f/>" {
		t.Errorf("false(): %s", got)
	}
}

func TestBarePathAsCondition(t *testing.T) {
	doc := `<d><a>x</a></d>`
	if got := mustRun(t, `{ if ($ROOT/d/a) then <t/> else <f/> }`, doc); got != "<t/>" {
		t.Errorf("got %s", got)
	}
	if got := mustRun(t, `{ if ($ROOT/d/zz) then <t/> else <f/> }`, doc); got != "<f/>" {
		t.Errorf("got %s", got)
	}
}

func TestStringFunction(t *testing.T) {
	doc := `<d><a>hello</a></d>`
	if got := mustRun(t, `{ string($ROOT/d/a) }`, doc); got != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestBooleanOutputPosition(t *testing.T) {
	doc := `<d><a>1</a></d>`
	if got := mustRun(t, `<r>{ $ROOT/d/a = "1" }</r>`, doc); got != "<r>true</r>" {
		t.Errorf("got %s", got)
	}
}

func TestSeqAndEmptyInOperands(t *testing.T) {
	doc := `<d><a>x</a><b>y</b></d>`
	got := mustRun(t, `{ if (($ROOT/d/a, $ROOT/d/b) = "y") then <t/> else <f/> }`, doc)
	if got != "<t/>" {
		t.Errorf("sequence operand: %s", got)
	}
	got = mustRun(t, `{ if (() = "y") then <t/> else <f/> }`, doc)
	if got != "<f/>" {
		t.Errorf("empty operand: %s", got)
	}
}

func TestForLetWhereCombined(t *testing.T) {
	doc := `<d><p><n>1</n></p><p><n>2</n></p></d>`
	got := mustRun(t, `for $p in $ROOT/d/p let $n := $p/n where $n = "2" return <hit>{ $n/text() }</hit>`, doc)
	if got != "<hit>2</hit>" {
		t.Errorf("got %s", got)
	}
}

func TestEvalMoreErrors(t *testing.T) {
	doc := `<d><a>x</a></d>`
	cases := []string{
		`{ if (concat("a","b")) then <t/> else <f/> }`, // call as condition
		`for $x in $ROOT/d/a/text() return <r/>`,       // iterate text atomics
	}
	for _, src := range cases {
		if _, err := runExpr(t, src, doc); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestAtomizeKinds(t *testing.T) {
	n, _ := dom.ParseString(`<a>x<b>y</b></a>`)
	if got := Atomize(n.Root()); got != "xy" {
		t.Errorf("node atomize = %q", got)
	}
	if got := Atomize("plain"); got != "plain" {
		t.Errorf("string atomize = %q", got)
	}
	if got := Atomize(42); got != "" {
		t.Errorf("unknown atomize = %q", got)
	}
}

func TestDistinctValuesInOperand(t *testing.T) {
	doc := `<d><v>a</v><v>a</v><v>b</v></d>`
	got := mustRun(t, `{ if (distinct-values($ROOT/d/v) = "b") then <t/> else <f/> }`, doc)
	if got != "<t/>" {
		t.Errorf("got %s", got)
	}
}
