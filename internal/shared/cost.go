package shared

import (
	"math"

	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
)

// This file is the cost side of the multi-query rewrite pass, in the
// Volcano/Cascades shape: schema statistics derived once per DTD, a cost
// function over a plan's physical dispatch alternatives, and the
// decisions the engine makes with it — which plans elide shells
// (projection tightness, gated by runtime.Plan.NeedShells), how fan-out
// structure is laid out (interned lists, memoized flood nodes), and how
// plans are ordered across the evaluator pool's worker stripes
// (replacing the structural paths.Size proxy with an expected
// delivered-event count).

const (
	// manyFan is the expected occurrence count assumed for a CardMany
	// child: the schema bounds multiplicity only from below, so the model
	// uses a fixed fan-out the way classic optimizers assume default
	// selectivities.
	manyFan = 4.0
	// optionalP is the expected count of a CardOptional child.
	optionalP = 0.5
	// costCap bounds the fixpoint on recursive content models, whose
	// expected subtree size diverges.
	costCap = 1e12
	// costDepthCap bounds the path-set walk (mirrors the trie DepthCap).
	costDepthCap = DepthCap
)

// SchemaStats is the per-DTD statistics bundle: expected child
// occurrence counts per parent element and expected subtree event counts,
// both derived from the declared content models alone (no data sampled).
type SchemaStats struct {
	d *dtd.DTD
	// ExpChild[parent][child] is the expected number of `child` elements
	// directly inside one `parent` element, by dense name id.
	ExpChild [][]float64
	// ExpEvents[id] is the expected total event count (starts, ends,
	// text) of one element's subtree, capped for recursive models.
	ExpEvents []float64
}

// ComputeStats derives the statistics for a DTD. Cost is O(n²) in the
// element count plus a short fixpoint, paid once per stream schema.
func ComputeStats(d *dtd.DTD) *SchemaStats {
	n := d.NumIDs()
	st := &SchemaStats{
		d:         d,
		ExpChild:  make([][]float64, n),
		ExpEvents: make([]float64, n),
	}
	for pid := 0; pid < n; pid++ {
		row := make([]float64, n)
		parent := d.ByID(int32(pid)).Name
		for cid := 0; cid < n; cid++ {
			switch d.Cardinality(parent, d.ByID(int32(cid)).Name) {
			case dtd.CardOptional:
				row[cid] = optionalP
			case dtd.CardOne:
				row[cid] = 1
			case dtd.CardMany:
				row[cid] = manyFan
			}
		}
		st.ExpChild[pid] = row
	}
	// Fixpoint for expected subtree event counts. n rounds reach the
	// deepest acyclic chain; the extra rounds let recursive models grow
	// up to the cap instead of settling on an arbitrary partial sum.
	for id := 0; id < n; id++ {
		st.ExpEvents[id] = st.selfEvents(int32(id))
	}
	rounds := n
	if rounds < 64 {
		rounds = 64
	}
	for round := 0; round < rounds; round++ {
		changed := false
		for id := 0; id < n; id++ {
			e := st.selfEvents(int32(id))
			for cid, c := range st.ExpChild[id] {
				e += c * st.ExpEvents[cid]
			}
			if e > costCap {
				e = costCap
			}
			if math.Abs(e-st.ExpEvents[id]) > 1e-9 {
				st.ExpEvents[id] = e
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return st
}

// selfEvents is the event count of an element with no children: its
// start and end, plus one expected text event when PCDATA is permitted.
func (st *SchemaStats) selfEvents(id int32) float64 {
	e := 2.0
	if st.d.ByID(id).HasPCData() {
		e++
	}
	return e
}

// PlanCost estimates the expected number of events delivered to one plan
// per document under trie dispatch: subtree regions it keeps weigh their
// full expected event count, paths it steps through weigh their start/end
// pairs, and — only when the plan needs shells — the expected shells of
// irrelevant siblings along those paths. The evaluator pool orders its
// worker stripes by this value.
func PlanCost(ps *proj.PathSet, needShells bool, st *SchemaStats) float64 {
	if ps == nil || ps.Root == nil {
		return 1
	}
	if ps.Root.All {
		var max float64
		for id := range st.ExpEvents {
			if st.ExpEvents[id] > max {
				max = st.ExpEvents[id]
			}
		}
		return max + 2
	}
	cost := 2.0 // document element start/end
	for _, label := range ps.Root.SortedLabels() {
		if label == "*" {
			continue
		}
		e := st.d.Element(label)
		if e == nil {
			continue
		}
		cost += st.nodeCost(ps.Root.Children[label], e, 1, needShells, 1)
	}
	return cost
}

// PlanCostInt is PlanCost clamped into int range for Costed consumers.
func PlanCostInt(ps *proj.PathSet, needShells bool, st *SchemaStats) int {
	c := PlanCost(ps, needShells, st)
	if c < 1 {
		return 1
	}
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(c)
}

func (st *SchemaStats) nodeCost(n *proj.PathNode, e *dtd.Element, w float64, needShells bool, depth int) float64 {
	if w <= 0 || depth > costDepthCap {
		return 0
	}
	id := e.ID()
	if n.All {
		return w * st.ExpEvents[id]
	}
	c := w * 2
	if n.Text && e.HasPCData() {
		c += w
	}
	star := n.Children["*"]
	named := n.Children
	row := st.ExpChild[id]
	for cid := 0; cid < len(row); cid++ {
		ec := row[cid]
		if ec == 0 {
			continue
		}
		ce := st.d.ByID(int32(cid))
		if child, ok := named[ce.Name]; ok {
			c += st.nodeCost(child, ce, w*ec, needShells, depth+1)
		} else if star != nil {
			c += st.nodeCost(star, ce, w*ec, needShells, depth+1)
		} else if needShells {
			c += 2 * w * ec
		}
		if c > costCap {
			return costCap
		}
	}
	return c
}
