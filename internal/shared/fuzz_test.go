package shared

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"fluxquery/internal/proj"
)

// FuzzTrieBuild decodes arbitrary bytes into a registered plan set
// (path-sets with All/Text markers and per-plan shell requirements over
// a small vocabulary), builds the dispatch trie, and asserts its
// structural invariants: no panics, every fan-out list duplicate-free
// and in range, the document element covering every plan exactly once —
// and, against the independent per-plan reference walker, that routing
// never under-delivers (and is exact for inputs within the depth cap).
//
// Run with: go test -fuzz FuzzTrieBuild ./internal/shared
func FuzzTrieBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 2})
	f.Add([]byte{3, 0, 0, 1, 2, 0xFF, 1, 0, 1, 6, 0xFF, 0, 5, 5, 5, 7})
	f.Add([]byte{2, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0xFF, 0, 6})
	// A plan set that exercises the depth-cap flood: one label repeated
	// far beyond DepthCap.
	deep := []byte{1, 0}
	for i := 0; i < 3*DepthCap; i++ {
		deep = append(deep, 0)
	}
	f.Add(deep)
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, deepest := decodeReqs(data)
		trie := Build(reqs, fuzzVocabSize)
		if err := trie.Check(len(reqs)); err != nil {
			t.Fatalf("invariants violated: %v", err)
		}
		// Differential walks, seeded from the input so every corpus entry
		// replays the same streams.
		h := fnv.New64a()
		h.Write(data)
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		exact := deepest < DepthCap
		for i := 0; i < 8; i++ {
			compareWalk(t, trie, reqs, randomWalk(r, fuzzVocabSize, 200, DepthCap/2), exact)
		}
	})
}

// fuzzVocabSize keeps the decoded vocabulary small so fuzzed plans
// collide on labels (shared prefixes are the interesting case).
const fuzzVocabSize = 5

// decodeReqs interprets the fuzz input as a plan set. Byte stream:
// first byte = plan count (mod 8); then per plan, one shell-flag byte
// followed by path ops until 0xFF: op%8 in 0..4 descends into child
// (op%fuzzVocabSize), 5 pops one level, 6 marks Text, 7 marks All.
// Returns the decoded requests and the deepest path node touched.
func decodeReqs(data []byte) ([]PlanReq, int) {
	names := vocab(fuzzVocabSize)
	if len(data) == 0 {
		return nil, 0
	}
	numPlans := int(data[0]%8) + 1
	data = data[1:]
	deepest := 0
	reqs := make([]PlanReq, 0, numPlans)
	for p := 0; p < numPlans; p++ {
		needShells := false
		if len(data) > 0 {
			needShells = data[0]&1 == 1
			data = data[1:]
		}
		ps := proj.NewPathSet()
		stack := []*proj.PathNode{ps.Root}
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			if op == 0xFF {
				break
			}
			cur := stack[len(stack)-1]
			switch op % 8 {
			case 5:
				if len(stack) > 1 {
					stack = stack[:len(stack)-1]
				}
			case 6:
				cur.Text = true
			case 7:
				cur.All = true
			default:
				stack = append(stack, cur.Child(names[int(op)%fuzzVocabSize]))
				if d := len(stack) - 1; d > deepest {
					deepest = d
				}
			}
		}
		reqs = append(reqs, ReqFromPaths(ps, needShells, names))
	}
	return reqs, deepest
}

// TestFuzzSeedsPass replays the committed seed corpus through the fuzz
// body in a plain test run, so `go test` exercises it without -fuzz.
func TestFuzzSeedsPass(t *testing.T) {
	seeds := [][]byte{
		{},
		{1, 0, 1, 2},
		{3, 0, 0, 1, 2, 0xFF, 1, 0, 1, 6, 0xFF, 0, 5, 5, 5, 7},
		{2, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0xFF, 0, 6},
	}
	for _, s := range seeds {
		reqs, deepest := decodeReqs(s)
		trie := Build(reqs, fuzzVocabSize)
		if err := trie.Check(len(reqs)); err != nil {
			t.Fatalf("seed %v: %v", s, err)
		}
		h := fnv.New64a()
		h.Write(s)
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		for i := 0; i < 8; i++ {
			compareWalk(t, trie, reqs, randomWalk(r, fuzzVocabSize, 200, DepthCap/2), deepest < DepthCap)
		}
	}
}
