package shared

import (
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
)

const costDTD = `
<!ELEMENT root (one, opt?, many*)>
<!ELEMENT one (#PCDATA)>
<!ELEMENT opt (#PCDATA)>
<!ELEMENT many (leaf)*>
<!ELEMENT leaf (#PCDATA)>
`

func TestComputeStatsCardinalities(t *testing.T) {
	d := dtd.MustParse(costDTD)
	st := ComputeStats(d)
	root := d.Element("root").ID()
	get := func(child string) float64 {
		return st.ExpChild[root][d.Element(child).ID()]
	}
	if got := get("one"); got != 1 {
		t.Errorf("ExpChild[root][one] = %v, want 1", got)
	}
	if got := get("opt"); got != optionalP {
		t.Errorf("ExpChild[root][opt] = %v, want %v", got, optionalP)
	}
	if got := get("many"); got != manyFan {
		t.Errorf("ExpChild[root][many] = %v, want %v", got, manyFan)
	}
	if got := get("leaf"); got != 0 {
		t.Errorf("ExpChild[root][leaf] = %v, want 0 (not a direct child)", got)
	}
	// Subtree sizes compose: root's expected events include the expected
	// events of its children, so root > many > leaf.
	ev := func(name string) float64 { return st.ExpEvents[d.Element(name).ID()] }
	if !(ev("root") > ev("many") && ev("many") > ev("leaf")) {
		t.Errorf("expected event counts not monotone: root=%v many=%v leaf=%v",
			ev("root"), ev("many"), ev("leaf"))
	}
	if got := ev("leaf"); got != 3 {
		t.Errorf("ExpEvents[leaf] = %v, want 3 (start+end+text)", got)
	}
}

func TestComputeStatsRecursiveCapped(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (a)*>
`)
	st := ComputeStats(d)
	got := st.ExpEvents[d.Element("a").ID()]
	if got != costCap {
		t.Errorf("recursive model ExpEvents = %v, want cap %v", got, costCap)
	}
}

func TestPlanCostOrdering(t *testing.T) {
	d := dtd.MustParse(costDTD)
	st := ComputeStats(d)
	path := func(labels ...string) *proj.PathSet {
		ps := proj.NewPathSet()
		cur := ps.Root
		for _, l := range labels {
			cur = cur.Child(l)
		}
		return ps
	}
	shallow := PlanCost(path("root"), false, st)
	deep := PlanCost(path("root", "many", "leaf"), false, st)
	if !(deep > shallow) {
		t.Errorf("deeper path not costlier: deep=%v shallow=%v", deep, shallow)
	}
	// All-subtree capture must dominate a single path through it.
	all := path("root", "many")
	all.Root.Children["root"].Children["many"].All = true
	if a, p := PlanCost(all, false, st), PlanCost(path("root", "many", "leaf"), false, st); !(a > p) {
		t.Errorf("keep-all not costlier than one path: all=%v path=%v", a, p)
	}
	// Needing shells adds the expected irrelevant-sibling deliveries.
	withShells := PlanCost(path("root", "one"), true, st)
	without := PlanCost(path("root", "one"), false, st)
	if !(withShells > without) {
		t.Errorf("shells did not add cost: with=%v without=%v", withShells, without)
	}
	// Deterministic: same inputs, same float.
	if a, b := PlanCost(path("root", "many", "leaf"), true, st), PlanCost(path("root", "many", "leaf"), true, st); a != b {
		t.Errorf("cost not deterministic: %v vs %v", a, b)
	}
	if PlanCostInt(path("root"), false, st) < 1 {
		t.Error("PlanCostInt must be >= 1")
	}
}
