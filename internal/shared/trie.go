package shared

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"fluxquery/internal/proj"
)

// Drop is the interior sentinel: no registered plan wants anything inside
// the region, so the dispatcher discards events until the matching end
// tag.
const Drop int32 = -1

// DepthCap bounds the trie's depth. Path sets are finite trees, so the
// build always terminates; the cap guards the product construction
// against adversarially deep path sets (fuzzed inputs, machine-generated
// queries) by switching to a conservative flood node — every plan still
// active at the cap receives everything below it, which is safe
// over-delivery — instead of growing an arbitrarily deep structure.
const DepthCap = 64

// PlanReq is one registered plan's dispatch requirement: its compiled
// projection automaton (vocabulary form, so verdicts are slice loads on
// the shared dense name ids) and whether the plan needs shells for
// children it does not descend into (runtime.Plan.NeedShells).
type PlanReq struct {
	Auto       *proj.Automaton
	NeedShells bool
}

// ReqFromPaths builds a PlanReq directly from a path-set, compiling its
// automaton over the given name-id vocabulary. Tests and fuzzers use it;
// the engine hands the trie the automata its plans already carry.
func ReqFromPaths(ps *proj.PathSet, needShells bool, names []string) PlanReq {
	return PlanReq{Auto: proj.CompileVocab(ps, names), NeedShells: needShells}
}

// Trie is the compiled, immutable dispatch structure over a fixed
// ordered set of plans. It is safe for concurrent readers; a
// registration change builds a fresh Trie (mqe.Set snapshots it per
// pass, the same idiom as the projection union).
type Trie struct {
	numIDs   int
	numPlans int
	nodes    []tnode
	// lists holds the interned fan-out lists; every fan/text/flood field
	// below is an index into it. lists[0] is the empty list.
	lists [][]int32
	// maxFanout is the length of the longest interned list.
	maxFanout int
}

// tnode is one trie node: the product of the registered plans' projection
// states at one schema-qualified path prefix.
type tnode struct {
	// flood, when >= 0, marks a keep-all node: every event at or below it
	// is delivered to lists[flood] with no further lookups, and the node
	// is its own successor for every child id.
	flood int32
	// next[id] is the interior node for a child with dense name id `id`,
	// or Drop.
	next []int32
	// fan[id] is the fan-out list id for that child's start and end
	// events.
	fan []int32
	// text is the fan-out list id for direct text children.
	text int32
}

// pstate is one plan's position during the product construction.
type pstate struct {
	plan int32
	st   int32
}

type builder struct {
	t    *Trie
	reqs []PlanReq
	// listIdx interns fan-out lists; memo interns product nodes by their
	// (active states, keep-all list) key, so common sub-automata shared by
	// several prefixes — or several plans — become one node.
	listIdx map[string]int32
	memo    map[string]int32
}

// Build compiles the dispatch trie for an ordered plan set over a DTD
// vocabulary of numIDs dense element ids. The i-th request corresponds to
// plan index i in every fan-out list. All automata must be
// vocabulary-compiled over the same id assignment (equal DTDs guarantee
// this, see dtd.IDNames).
func Build(reqs []PlanReq, numIDs int) *Trie {
	t := &Trie{numIDs: numIDs, numPlans: len(reqs)}
	b := &builder{t: t, reqs: reqs, listIdx: map[string]int32{}, memo: map[string]int32{}}
	b.internList(nil) // list 0 = empty

	var active []pstate
	var all []int32
	for i := range reqs {
		st := reqs[i].Auto.Start()
		if st == proj.StateAll {
			all = append(all, int32(i))
		} else {
			active = append(active, pstate{int32(i), st})
		}
	}
	root := b.node(active, b.internList(all), 0)
	if root == Drop {
		// Zero plans (or none wanting anything): a single node that drops
		// everything keeps the walker branch-free.
		b.flood(0)
	}
	for _, l := range t.lists {
		if len(l) > t.maxFanout {
			t.maxFanout = len(l)
		}
	}
	return t
}

// node interns the product node for the given active plan states plus
// keep-all list and returns its index (allocating it and its subtree on
// first use).
func (b *builder) node(active []pstate, allList int32, depth int) int32 {
	if len(active) == 0 {
		if allList == 0 {
			return Drop
		}
		return b.flood(allList)
	}
	if depth >= DepthCap {
		// Conservative flood: over-deliver the whole subtree to every plan
		// still active here. Safe (evaluators tolerate unprojected
		// streams), and it bounds the structure against adversarial depth.
		plans := append([]int32(nil), b.t.lists[allList]...)
		for _, a := range active {
			plans = append(plans, a.plan)
		}
		sort.Slice(plans, func(i, j int) bool { return plans[i] < plans[j] })
		return b.flood(b.internList(plans))
	}
	key := nodeKey(active, allList)
	if idx, ok := b.memo[key]; ok {
		return idx
	}
	idx := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, tnode{flood: -1})
	// Memoize before recursing: product states over tree-shaped path
	// automata form a DAG, but an interned index must exist the moment a
	// converging prefix asks for it.
	b.memo[key] = idx

	n := b.t.numIDs
	next := make([]int32, n)
	fan := make([]int32, n)
	allPlans := b.t.lists[allList]
	var fanPlans, childAll []int32
	var childActive []pstate
	for id := 0; id < n; id++ {
		fanPlans = fanPlans[:0]
		childAll = childAll[:0]
		childActive = childActive[:0]
		for _, a := range active {
			v := b.reqs[a.plan].Auto.ChildID(a.st, int32(id))
			switch {
			case v == proj.StateAll:
				childAll = append(childAll, a.plan)
				fanPlans = append(fanPlans, a.plan)
			case v == proj.StateSkip:
				// Shell or full elision. The document element (depth 0) is
				// always delivered at least as a shell: every evaluator
				// expects to enter its root scope.
				if b.reqs[a.plan].NeedShells || depth == 0 {
					fanPlans = append(fanPlans, a.plan)
				}
			default:
				childActive = append(childActive, pstate{a.plan, v})
				fanPlans = append(fanPlans, a.plan)
			}
		}
		fan[id] = b.internList(mergeSorted(allPlans, fanPlans))
		nextAll := allList
		if len(childAll) > 0 {
			nextAll = b.internList(mergeSorted(allPlans, childAll))
		}
		next[id] = b.node(append([]pstate(nil), childActive...), nextAll, depth+1)
	}
	textPlans := allPlans[:len(allPlans):len(allPlans)]
	var tp []int32
	for _, a := range active {
		if b.reqs[a.plan].Auto.Text(a.st) {
			tp = append(tp, a.plan)
		}
	}
	text := b.internList(mergeSorted(textPlans, tp))

	nd := &b.t.nodes[idx]
	nd.next, nd.fan, nd.text = next, fan, text
	return idx
}

// flood interns the keep-all node delivering everything to lists[list].
func (b *builder) flood(list int32) int32 {
	key := "F" + listKey(b.t.lists[list])
	if idx, ok := b.memo[key]; ok {
		return idx
	}
	idx := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, tnode{flood: list, text: list})
	b.memo[key] = idx
	return idx
}

// internList interns a sorted, duplicate-free plan list and returns its
// id. nil and empty intern to list 0.
func (b *builder) internList(plans []int32) int32 {
	key := listKey(plans)
	if idx, ok := b.listIdx[key]; ok {
		return idx
	}
	idx := int32(len(b.t.lists))
	b.t.lists = append(b.t.lists, append([]int32(nil), plans...))
	b.listIdx[key] = idx
	return idx
}

// mergeSorted merges two ascending duplicate-free lists (reusing neither).
func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func listKey(plans []int32) string {
	buf := make([]byte, 4*len(plans))
	for i, p := range plans {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(p))
	}
	return string(buf)
}

func nodeKey(active []pstate, allList int32) string {
	buf := make([]byte, 8*len(active)+4)
	for i, a := range active {
		binary.LittleEndian.PutUint32(buf[8*i:], uint32(a.plan))
		binary.LittleEndian.PutUint32(buf[8*i+4:], uint32(a.st))
	}
	binary.LittleEndian.PutUint32(buf[8*len(active):], uint32(allList))
	return string(buf)
}

// Root returns the trie's start node (the virtual document node).
func (t *Trie) Root() int32 {
	if len(t.nodes) == 0 {
		return Drop
	}
	return 0
}

// StartChild resolves a start tag with dense name id `id` at `node`: the
// fan-out list id for the child's start and end events, and the interior
// node to descend into (Drop when nothing below matters to any plan).
func (t *Trie) StartChild(node int32, id int32) (fanList int32, next int32) {
	nd := &t.nodes[node]
	if nd.flood >= 0 {
		return nd.flood, node
	}
	if int(id) >= len(nd.fan) {
		return 0, Drop
	}
	return nd.fan[id], nd.next[id]
}

// TextList returns the plans receiving direct text at `node`.
func (t *Trie) TextList(node int32) []int32 {
	return t.lists[t.nodes[node].text]
}

// List resolves a fan-out list id (nil for ids < 0).
func (t *Trie) List(id int32) []int32 {
	if id < 0 {
		return nil
	}
	return t.lists[id]
}

// NumNodes returns the interned node count (diagnostics/telemetry).
func (t *Trie) NumNodes() int { return len(t.nodes) }

// NumLists returns the interned fan-out list count.
func (t *Trie) NumLists() int { return len(t.lists) }

// NumPlans returns the plan count the trie was built for.
func (t *Trie) NumPlans() int { return t.numPlans }

// MaxFanout returns the length of the longest fan-out list.
func (t *Trie) MaxFanout() int { return t.maxFanout }

// Check verifies the trie's structural invariants: every interned list
// is strictly increasing with plan indices in [0, numPlans) — so no
// event is ever delivered to the same plan twice — every next pointer is
// Drop or a valid node, flood nodes are self-consistent, and the root's
// fan-out for every child id covers every registered plan exactly once
// (the document element reaches each plan at least as a shell).
func (t *Trie) Check(numPlans int) error {
	if t.numPlans != numPlans {
		return fmt.Errorf("shared: trie built for %d plans, checked against %d", t.numPlans, numPlans)
	}
	for li, l := range t.lists {
		for i, p := range l {
			if p < 0 || int(p) >= numPlans {
				return fmt.Errorf("shared: list %d holds out-of-range plan %d", li, p)
			}
			if i > 0 && l[i-1] >= p {
				return fmt.Errorf("shared: list %d not strictly increasing at %d", li, i)
			}
		}
	}
	for ni := range t.nodes {
		nd := &t.nodes[ni]
		if nd.flood >= 0 {
			if int(nd.flood) >= len(t.lists) {
				return fmt.Errorf("shared: node %d floods unknown list %d", ni, nd.flood)
			}
			continue
		}
		if len(nd.next) != t.numIDs || len(nd.fan) != t.numIDs {
			return fmt.Errorf("shared: node %d tables sized %d/%d, want %d", ni, len(nd.next), len(nd.fan), t.numIDs)
		}
		if nd.text < 0 || int(nd.text) >= len(t.lists) {
			return fmt.Errorf("shared: node %d has invalid text list %d", ni, nd.text)
		}
		for id := 0; id < t.numIDs; id++ {
			if f := nd.fan[id]; f < 0 || int(f) >= len(t.lists) {
				return fmt.Errorf("shared: node %d id %d has invalid fan list %d", ni, id, f)
			}
			if nx := nd.next[id]; nx != Drop && (nx < 0 || int(nx) >= len(t.nodes)) {
				return fmt.Errorf("shared: node %d id %d has invalid next %d", ni, id, nx)
			}
		}
	}
	if numPlans > 0 && len(t.nodes) > 0 && t.nodes[0].flood < 0 {
		for id := 0; id < t.numIDs; id++ {
			l := t.lists[t.nodes[0].fan[id]]
			if len(l) != numPlans {
				return fmt.Errorf("shared: root fan for id %d covers %d of %d plans", id, len(l), numPlans)
			}
		}
	}
	return nil
}

// DebugString renders the trie in canonical form. Build is deterministic
// for a given (ordered) request set, so two equal tries render equal
// strings — the churn property test relies on this.
func (t *Trie) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trie plans=%d nodes=%d lists=%d\n", t.numPlans, len(t.nodes), len(t.lists))
	for li, l := range t.lists {
		fmt.Fprintf(&sb, "list %d: %v\n", li, l)
	}
	for ni := range t.nodes {
		nd := &t.nodes[ni]
		if nd.flood >= 0 {
			fmt.Fprintf(&sb, "node %d: flood list=%d\n", ni, nd.flood)
			continue
		}
		fmt.Fprintf(&sb, "node %d: text=%d\n", ni, nd.text)
		for id := 0; id < t.numIDs; id++ {
			if nd.fan[id] == 0 && nd.next[id] == Drop {
				continue
			}
			fmt.Fprintf(&sb, "  id %d: fan=%d next=%d\n", id, nd.fan[id], nd.next[id])
		}
	}
	return sb.String()
}
