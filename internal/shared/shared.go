// Package shared implements multi-query plan sharing for the shared
// event stream: the dispatch trie that interns the schema-qualified path
// prefixes and projection sub-automata of every registered plan into one
// id-indexed structure, and the schema-statistics cost model that drives
// the multi-query rewrite pass (shell elision, fan-out layout, evaluator
// worker placement).
//
// # Why a trie
//
// The shared pass of package mqe fans every validated batch out to every
// registered plan, so per-event cost grows linearly with the number of
// registrations even when the registrations overlap heavily — 10k copies
// of "read /site/regions" pay 10k evaluator passes over the whole
// stream. The paper's own claim is that FluX evaluation cost is driven
// by schema-qualified paths, not query text: two plans that agree on a
// path prefix need exactly one dispatch decision along it. The trie is
// that factored decision structure. One node per reachable *product* of
// the registered plans' projection-automaton states, one dense jump
// table per node over the DTD's element ids (the PR 4 symbol pipeline:
// equal DTDs assign identical dense ids, so every plan's automaton and
// the trie index the same vocabulary), and one interned fan-out list per
// (node, child id): the plans that must receive that child's start and
// end events. Resolving an event is one slice load on the trie walk;
// delivering it costs work proportional to the plans that actually want
// it, not to the registration count.
//
// # Correctness envelope
//
// Trie routing applies each plan's own projection at the dispatch layer.
// The projection contract (package proj) already guarantees that a plan
// evaluated over its own projected stream is byte-identical to the
// unprojected run, so per-plan routing inherits that proof. The trie
// adds exactly one sharpening on top — shell elision — and gates it on a
// compile-time analysis (runtime.Plan.NeedShells): a plan whose handlers
// never consult a past(S) condition never reads its scopes'
// content-model state, so the start/end shells of children it does not
// descend into can be dropped entirely for it. Plans that do carry
// past(S) on-first handlers keep their shells, because shells are what
// step the content-model automaton that decides when those handlers
// fire. Over-delivery is always safe (evaluators tolerate unprojected
// streams), which is why the builder may conservatively flood a subtree
// (depth cap, pure keep-all regions) but never under-delivers beyond the
// gated shell elision.
package shared
