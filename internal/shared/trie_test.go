package shared

import (
	"fmt"
	"math/rand"
	"testing"

	"fluxquery/internal/proj"
)

// names builds a fake dense vocabulary e0..e{n-1}.
func vocab(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("e%d", i)
	}
	return out
}

// pathReq builds a PlanReq from slash paths ("e0/e1/e2"), with optional
// markers: a trailing "!" on a path sets All on its last node, "~" sets
// Text.
func pathReq(names []string, needShells bool, paths ...string) PlanReq {
	ps := proj.NewPathSet()
	for _, p := range paths {
		cur := ps.Root
		all, text := false, false
		if n := len(p); n > 0 && p[n-1] == '!' {
			all, p = true, p[:n-1]
		} else if n > 0 && p[n-1] == '~' {
			text, p = true, p[:n-1]
		}
		start := 0
		for i := 0; i <= len(p); i++ {
			if i == len(p) || p[i] == '/' {
				if i > start {
					cur = cur.Child(p[start:i])
				}
				start = i + 1
			}
		}
		if all {
			cur.All = true
		}
		if text {
			cur.Text = true
		}
	}
	return ReqFromPaths(ps, needShells, names)
}

// refWalker is the independent oracle: per-plan projection semantics
// applied one automaton at a time, exactly as N separate projected runs
// would deliver events. frame verdicts: state id, StateAll, StateSkip.
type refWalker struct {
	reqs   []PlanReq
	stacks [][]refFrame
}

type refFrame struct {
	v         int32
	delivered bool
}

func newRefWalker(reqs []PlanReq) *refWalker {
	w := &refWalker{reqs: reqs, stacks: make([][]refFrame, len(reqs))}
	for i, r := range reqs {
		w.stacks[i] = []refFrame{{v: r.Auto.Start(), delivered: true}}
	}
	return w
}

// start returns the plans that receive a child start tag with name id.
func (w *refWalker) start(id int32) []int32 {
	var out []int32
	for p := range w.reqs {
		st := w.stacks[p]
		top := st[len(st)-1]
		depth := len(st) - 1
		var fr refFrame
		switch {
		case top.v == proj.StateAll:
			fr = refFrame{v: proj.StateAll, delivered: true}
		case top.v == proj.StateSkip:
			fr = refFrame{v: proj.StateSkip, delivered: false}
		default:
			v := w.reqs[p].Auto.ChildID(top.v, id)
			if v == proj.StateSkip {
				fr = refFrame{v: proj.StateSkip,
					delivered: w.reqs[p].NeedShells || depth == 0}
			} else {
				fr = refFrame{v: v, delivered: true}
			}
		}
		w.stacks[p] = append(st, fr)
		if fr.delivered {
			out = append(out, int32(p))
		}
	}
	return out
}

// end returns the plans that receive the matching end tag.
func (w *refWalker) end() []int32 {
	var out []int32
	for p := range w.reqs {
		st := w.stacks[p]
		fr := st[len(st)-1]
		w.stacks[p] = st[:len(st)-1]
		if fr.delivered {
			out = append(out, int32(p))
		}
	}
	return out
}

// text returns the plans that receive direct text here.
func (w *refWalker) text() []int32 {
	var out []int32
	for p := range w.reqs {
		st := w.stacks[p]
		top := st[len(st)-1]
		switch {
		case top.v == proj.StateAll:
			out = append(out, int32(p))
		case top.v >= 0 && w.reqs[p].Auto.Text(top.v):
			out = append(out, int32(p))
		}
	}
	return out
}

// trieWalker mirrors the dispatcher's trie walk.
type trieWalker struct {
	t     *Trie
	stack []tframeT
}

type tframeT struct {
	node int32
	fan  int32
}

func newTrieWalker(t *Trie) *trieWalker {
	return &trieWalker{t: t, stack: []tframeT{{node: t.Root(), fan: -1}}}
}

func (w *trieWalker) start(id int32) []int32 {
	top := w.stack[len(w.stack)-1]
	if top.node == Drop {
		w.stack = append(w.stack, tframeT{node: Drop, fan: -1})
		return nil
	}
	fan, next := w.t.StartChild(top.node, id)
	w.stack = append(w.stack, tframeT{node: next, fan: fan})
	return w.t.List(fan)
}

func (w *trieWalker) end() []int32 {
	top := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	if top.fan < 0 {
		return nil
	}
	return w.t.List(top.fan)
}

func (w *trieWalker) text() []int32 {
	top := w.stack[len(w.stack)-1]
	if top.node == Drop {
		return nil
	}
	return w.t.TextList(top.node)
}

func eqList(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func superset(a, b []int32) bool {
	m := map[int32]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// walkEvent is one synthetic stream event.
type walkEvent struct {
	kind byte // 's' start, 'e' end, 't' text
	id   int32
}

// randomWalk generates a balanced synthetic element stream over numIDs
// labels with bounded depth.
func randomWalk(r *rand.Rand, numIDs, length, maxDepth int) []walkEvent {
	var out []walkEvent
	depth := 0
	for len(out) < length {
		switch {
		case depth == 0:
			out = append(out, walkEvent{'s', int32(r.Intn(numIDs))})
			depth++
		case depth >= maxDepth || r.Intn(3) == 0:
			out = append(out, walkEvent{'e', 0})
			depth--
			if depth == 0 && r.Intn(2) == 0 {
				// End of document element: stop (one root per stream).
				return out
			}
		case r.Intn(4) == 0:
			out = append(out, walkEvent{'t', 0})
		default:
			out = append(out, walkEvent{'s', int32(r.Intn(numIDs))})
			depth++
		}
	}
	for depth > 0 {
		out = append(out, walkEvent{'e', 0})
		depth--
	}
	return out
}

// compareWalk drives both walkers over a stream. When exact is true the
// delivery sets must be identical per event; otherwise (depth-capped
// tries) the trie may over-deliver but never under-deliver.
func compareWalk(t *testing.T, trie *Trie, reqs []PlanReq, evs []walkEvent, exact bool) {
	t.Helper()
	tw, rw := newTrieWalker(trie), newRefWalker(reqs)
	for i, ev := range evs {
		var got, want []int32
		switch ev.kind {
		case 's':
			got, want = tw.start(ev.id), rw.start(ev.id)
		case 'e':
			got, want = tw.end(), rw.end()
		case 't':
			got, want = tw.text(), rw.text()
		}
		if exact && !eqList(got, want) {
			t.Fatalf("event %d (%c id=%d): trie delivered %v, reference %v", i, ev.kind, ev.id, got, want)
		}
		if !exact && !superset(got, want) {
			t.Fatalf("event %d (%c id=%d): trie under-delivered %v, reference %v", i, ev.kind, ev.id, got, want)
		}
	}
}

func TestTrieMatchesPerPlanProjection(t *testing.T) {
	const numIDs = 6
	names := vocab(numIDs)
	reqs := []PlanReq{
		pathReq(names, true, "e0/e1/e2"),
		pathReq(names, false, "e0/e1/e3~"),
		pathReq(names, true, "e0/e4!"),
		pathReq(names, false, "e0/e1", "e0/e5/e2!"),
		pathReq(names, false), // empty plan: document shell only
	}
	trie := Build(reqs, numIDs)
	if err := trie.Check(len(reqs)); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		compareWalk(t, trie, reqs, randomWalk(r, numIDs, 120, 8), true)
	}
}

func TestTrieShellElision(t *testing.T) {
	names := vocab(3)
	// Plan 0 needs shells, plan 1 does not; both read e0/e1 only.
	reqs := []PlanReq{
		pathReq(names, true, "e0/e1"),
		pathReq(names, false, "e0/e1"),
	}
	trie := Build(reqs, 3)
	tw := newTrieWalker(trie)
	if got := tw.start(0); !eqList(got, []int32{0, 1}) {
		t.Fatalf("document element fan-out %v, want both plans", got)
	}
	// Irrelevant sibling e2 inside e0: only the shell-needing plan sees it.
	if got := tw.start(2); !eqList(got, []int32{0}) {
		t.Fatalf("irrelevant-sibling fan-out %v, want just plan 0", got)
	}
	if got := tw.end(); !eqList(got, []int32{0}) {
		t.Fatalf("irrelevant-sibling end fan-out %v, want just plan 0", got)
	}
	// The relevant child goes to both.
	if got := tw.start(1); !eqList(got, []int32{0, 1}) {
		t.Fatalf("relevant-child fan-out %v, want both plans", got)
	}
}

func TestTrieInternsIdenticalPlans(t *testing.T) {
	const numIDs = 5
	names := vocab(numIDs)
	single := Build([]PlanReq{pathReq(names, true, "e0/e1/e2", "e0/e3~")}, numIDs)
	many := make([]PlanReq, 100)
	for i := range many {
		many[i] = pathReq(names, true, "e0/e1/e2", "e0/e3~")
	}
	trie := Build(many, numIDs)
	if err := trie.Check(100); err != nil {
		t.Fatal(err)
	}
	// 100 identical plans move through the product in lockstep: the node
	// count must equal the single-plan trie's, only the fan-out lists
	// widen. This is the interning claim in one assertion.
	if trie.NumNodes() != single.NumNodes() {
		t.Fatalf("100 identical plans interned to %d nodes, single plan has %d",
			trie.NumNodes(), single.NumNodes())
	}
	if trie.MaxFanout() != 100 {
		t.Fatalf("max fan-out %d, want 100", trie.MaxFanout())
	}
}

func TestTrieDeterministicBuild(t *testing.T) {
	const numIDs = 4
	names := vocab(numIDs)
	mk := func() *Trie {
		return Build([]PlanReq{
			pathReq(names, true, "e0/e1", "e0/e2!"),
			pathReq(names, false, "e0/e1/e3~"),
			pathReq(names, true, "e3!"),
		}, numIDs)
	}
	if a, b := mk().DebugString(), mk().DebugString(); a != b {
		t.Fatalf("two builds of the same request set differ:\n%s\n--- vs ---\n%s", a, b)
	}
}

func TestTrieDepthCap(t *testing.T) {
	const numIDs = 2
	names := vocab(numIDs)
	// A path twice as deep as the cap: e0/e0/e0/...
	deep := ""
	for i := 0; i < 2*DepthCap; i++ {
		if i > 0 {
			deep += "/"
		}
		deep += "e0"
	}
	reqs := []PlanReq{pathReq(names, false, deep), pathReq(names, true, "e0/e1")}
	trie := Build(reqs, numIDs)
	if err := trie.Check(len(reqs)); err != nil {
		t.Fatal(err)
	}
	// Below the cap the trie floods conservatively: over-delivery is
	// allowed, under-delivery is not.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		compareWalk(t, trie, reqs, randomWalk(r, numIDs, 400, 2*DepthCap+4), false)
	}
}

func TestTrieZeroPlans(t *testing.T) {
	trie := Build(nil, 3)
	if err := trie.Check(0); err != nil {
		t.Fatal(err)
	}
	tw := newTrieWalker(trie)
	if got := tw.start(1); len(got) != 0 {
		t.Fatalf("zero-plan trie delivered to %v", got)
	}
	if got := tw.end(); len(got) != 0 {
		t.Fatalf("zero-plan trie delivered end to %v", got)
	}
}

func TestTrieAllRootPlan(t *testing.T) {
	names := vocab(3)
	ps := proj.NewPathSet()
	ps.Root.All = true
	reqs := []PlanReq{
		{Auto: proj.CompileVocab(ps, names), NeedShells: false},
		pathReq(names, false, "e0/e1"),
	}
	trie := Build(reqs, 3)
	if err := trie.Check(2); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		compareWalk(t, trie, reqs, randomWalk(r, 3, 80, 6), true)
	}
}
