// Package unit parses human-readable byte counts for CLI flags, so
// every command's size-taking flag (fluxserve -budget, fluxbench
// -budget, …) accepts the same spellings.
package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseBytes reads a byte count with an optional K/M/G suffix (binary
// units); "" means 0. Negative values and products that would overflow
// int64 are rejected — a wrapped-negative size silently disabling a
// limit is exactly the failure this guards against.
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("want a byte count like 512K or 64M, got %q", s)
	}
	return n * mult, nil
}
