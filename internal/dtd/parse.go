package dtd

import (
	"fmt"
	"strings"
)

// ParseError reports a malformed DTD.
type ParseError struct {
	Pos int // byte offset into the source
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses DTD declaration text: a sequence of <!ELEMENT>, <!ATTLIST>,
// comments and processing instructions. <!ENTITY> and <!NOTATION>
// declarations are skipped. The root element defaults to the first
// declared element.
func Parse(src string) (*DTD, error) {
	p := &parser{src: src}
	d := &DTD{Elements: make(map[string]*Element)}
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		if !p.consume("<!") {
			if p.consume("<?") {
				p.skipUntil("?>")
				continue
			}
			return nil, p.errf("expected declaration, found %q", p.rest(12))
		}
		switch {
		case p.consume("--"):
			p.skipUntil("-->")
		case p.consumeWord("ELEMENT"):
			if err := p.parseElement(d); err != nil {
				return nil, err
			}
		case p.consumeWord("ATTLIST"):
			if err := p.parseAttlist(d); err != nil {
				return nil, err
			}
		case p.consumeWord("ENTITY"), p.consumeWord("NOTATION"):
			p.skipDecl()
		default:
			return nil, p.errf("unknown declaration <!%s", p.rest(12))
		}
	}
	if len(d.Order) == 0 {
		return nil, &ParseError{Msg: "no element declarations"}
	}
	if d.Root == "" {
		d.Root = d.Order[0]
	}
	// Compile automata and check that referenced children are declared.
	for _, name := range d.Order {
		e := d.Elements[name]
		if err := compileElement(e); err != nil {
			return nil, err
		}
		for _, l := range e.auto.Alphabet() {
			if _, ok := d.Elements[l]; !ok {
				return nil, &ParseError{Msg: fmt.Sprintf("element %s references undeclared child %s", name, l)}
			}
		}
	}
	// The hidden document pseudo-element types the $ROOT variable: its
	// content model is exactly one occurrence of the root element. It is
	// not part of Order, so printing and Labels are unaffected.
	doc := &Element{Name: DocElem, Model: Name{Label: d.Root}}
	if err := compileElement(doc); err != nil {
		return nil, err
	}
	d.Elements[DocElem] = doc
	// Freeze the dense name-id vocabulary and the id-indexed dispatch
	// tables; everything above the tokenizer keys on these integers.
	d.assignIDs()
	return d, nil
}

// DocElem is the name of the hidden pseudo-element describing the document
// node: it has exactly one child, the DTD's root element. It types the
// $ROOT variable in the optimizer and the FluX scheduler.
const DocElem = "#document"

// MustParse is Parse that panics on error; for tests and fixed schemas.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseDoctype extracts and parses the internal subset of a DOCTYPE
// directive body (the text between <! and >, as produced by the xmltok
// scanner for a Directive token). The declared document element becomes
// the DTD root.
func ParseDoctype(directive string) (*DTD, error) {
	s := strings.TrimSpace(directive)
	if !strings.HasPrefix(s, "DOCTYPE") {
		return nil, &ParseError{Msg: "not a DOCTYPE directive"}
	}
	s = strings.TrimSpace(s[len("DOCTYPE"):])
	i := strings.IndexAny(s, " \t\r\n[")
	if i < 0 {
		return nil, &ParseError{Msg: "DOCTYPE without internal subset"}
	}
	root := s[:i]
	open := strings.IndexByte(s, '[')
	close := strings.LastIndexByte(s, ']')
	if open < 0 || close < open {
		return nil, &ParseError{Msg: "DOCTYPE without internal subset"}
	}
	d, err := Parse(s[open+1 : close])
	if err != nil {
		return nil, err
	}
	if _, ok := d.Elements[root]; !ok {
		return nil, &ParseError{Msg: fmt.Sprintf("DOCTYPE root %s not declared", root)}
	}
	d.Root = root
	// Rebuild the document pseudo-element for the declared root, then
	// re-freeze the name-id tables: Parse assigned ids against its default
	// root, and the replacement doc element must take over the document
	// id and its id-indexed transition table.
	doc := &Element{Name: DocElem, Model: Name{Label: root}}
	if err := compileElement(doc); err != nil {
		return nil, err
	}
	d.Elements[DocElem] = doc
	d.assignIDs()
	return d, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// consumeWord consumes s only if followed by a non-name character.
func (p *parser) consumeWord(s string) bool {
	rest := p.src[p.pos:]
	if !strings.HasPrefix(rest, s) {
		return false
	}
	if len(rest) > len(s) && isNameChar(rest[len(s)]) {
		return false
	}
	p.pos += len(s)
	return true
}

func (p *parser) skipUntil(s string) {
	if i := strings.Index(p.src[p.pos:], s); i >= 0 {
		p.pos += i + len(s)
	} else {
		p.pos = len(p.src)
	}
}

// skipDecl skips the remainder of a declaration up to '>', honoring quotes.
func (p *parser) skipDecl() {
	var quote byte
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		p.pos++
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return
		}
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) name() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected name, found %q", p.rest(8))
	}
	p.pos++
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseElement(d *DTD) error {
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return err
	}
	if prev, dup := d.Elements[name]; dup && prev.Model != nil {
		return p.errf("duplicate declaration of element %s", name)
	}
	p.skipSpace()
	model, err := p.contentSpec()
	if err != nil {
		return err
	}
	p.skipSpace()
	if !p.consume(">") {
		return p.errf("expected '>' after ELEMENT %s", name)
	}
	if prev, ok := d.Elements[name]; ok {
		// Fill in a placeholder created by a preceding ATTLIST.
		prev.Model = model
		return nil
	}
	d.Elements[name] = &Element{Name: name, Model: model}
	d.Order = append(d.Order, name)
	return nil
}

func (p *parser) contentSpec() (Model, error) {
	switch {
	case p.consumeWord("EMPTY"):
		return Empty{}, nil
	case p.consumeWord("ANY"):
		return Any{}, nil
	case p.consume("("):
		p.skipSpace()
		if p.consume("#PCDATA") {
			return p.mixedTail()
		}
		return p.groupTail()
	default:
		return nil, p.errf("expected content specification, found %q", p.rest(12))
	}
}

// mixedTail parses the remainder of (#PCDATA ... after the keyword.
func (p *parser) mixedTail() (Model, error) {
	var labels []string
	for {
		p.skipSpace()
		if p.consume(")") {
			if len(labels) > 0 {
				// (#PCDATA|a|b) must be followed by *.
				if !p.consume("*") {
					return nil, p.errf("mixed content with names requires ')*'")
				}
				return Mixed{Labels: labels}, nil
			}
			p.consume("*") // (#PCDATA)* is also legal
			return PCData{}, nil
		}
		if !p.consume("|") {
			return nil, p.errf("expected '|' or ')' in mixed content")
		}
		p.skipSpace()
		n, err := p.name()
		if err != nil {
			return err2(err)
		}
		for _, l := range labels {
			if l == n {
				return nil, p.errf("duplicate name %s in mixed content", n)
			}
		}
		labels = append(labels, n)
	}
}

func err2(err error) (Model, error) { return nil, err }

// groupTail parses a children group after the opening '('.
func (p *parser) groupTail() (Model, error) {
	first, err := p.cp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	var sep byte
	items := []Model{first}
	for {
		switch {
		case p.consume(")"):
			var m Model
			if len(items) == 1 {
				m = items[0]
			} else if sep == '|' {
				m = Choice{Items: items}
			} else {
				m = Seq{Items: items}
			}
			return p.repSuffix(m), nil
		case p.consume("|"):
			if sep == ',' {
				return nil, p.errf("cannot mix ',' and '|' in one group")
			}
			sep = '|'
		case p.consume(","):
			if sep == '|' {
				return nil, p.errf("cannot mix ',' and '|' in one group")
			}
			sep = ','
		default:
			return nil, p.errf("expected ',', '|' or ')' in content model, found %q", p.rest(8))
		}
		p.skipSpace()
		item, err := p.cp()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		p.skipSpace()
	}
}

// cp parses one content particle: a name or a parenthesized group, with an
// optional repetition suffix.
func (p *parser) cp() (Model, error) {
	p.skipSpace()
	if p.consume("(") {
		p.skipSpace()
		if p.consume("#PCDATA") {
			return nil, p.errf("#PCDATA only allowed at top level of a content model")
		}
		return p.groupTail()
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	return p.repSuffix(Name{Label: n}), nil
}

func (p *parser) repSuffix(m Model) Model {
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?', '*', '+':
			op := RepOp(p.src[p.pos])
			p.pos++
			return Rep{Item: m, Op: op}
		}
	}
	return m
}

func (p *parser) parseAttlist(d *DTD) error {
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return err
	}
	e := d.Elements[name]
	if e == nil {
		// Forward ATTLIST: create a placeholder; the element must still be
		// declared later (checked in Parse when compiling).
		e = &Element{Name: name}
		d.Elements[name] = e
		d.Order = append(d.Order, name)
	}
	for {
		p.skipSpace()
		if p.consume(">") {
			return nil
		}
		aname, err := p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		def := &AttDef{Name: aname}
		switch {
		case p.consumeWord("CDATA"):
			def.Type = AttCDATA
		case p.consumeWord("IDREFS"), p.consumeWord("IDREF"):
			def.Type = AttIDRef
		case p.consumeWord("ID"):
			def.Type = AttID
		case p.consumeWord("ENTITIES"), p.consumeWord("ENTITY"):
			def.Type = AttCDATA
		case p.consumeWord("NMTOKENS"), p.consumeWord("NMTOKEN"):
			def.Type = AttNMToken
		case p.consumeWord("NOTATION"):
			return p.errf("NOTATION attribute types are not supported")
		case p.consume("("):
			def.Type = AttEnum
			for {
				p.skipSpace()
				v, err := p.name()
				if err != nil {
					return err
				}
				def.Enum = append(def.Enum, v)
				p.skipSpace()
				if p.consume(")") {
					break
				}
				if !p.consume("|") {
					return p.errf("expected '|' or ')' in enumeration")
				}
			}
		default:
			return p.errf("expected attribute type for %s", aname)
		}
		p.skipSpace()
		switch {
		case p.consumeWord("#REQUIRED"):
			def.Default = AttRequired
		case p.consumeWord("#IMPLIED"):
			def.Default = AttImplied
		case p.consumeWord("#FIXED"):
			def.Default = AttFixed
			p.skipSpace()
			v, err := p.quoted()
			if err != nil {
				return err
			}
			def.Value = v
		default:
			def.Default = AttDefaulted
			v, err := p.quoted()
			if err != nil {
				return err
			}
			def.Value = v
		}
		if e.AttDef(aname) != nil {
			return p.errf("duplicate attribute %s on element %s", aname, name)
		}
		e.Atts = append(e.Atts, def)
	}
}

func (p *parser) quoted() (string, error) {
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected quoted value")
	}
	q := p.src[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated quoted value")
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}
