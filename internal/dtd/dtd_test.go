package dtd

import (
	"math/rand"
	"strings"
	"testing"
)

// The two bibliography DTDs from the paper (§2 and Figure 1).
const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

// The unsafe variant from §2: price follows an interleaved prefix.
const mixedOrderBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book ((title|author)*,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

func TestParseWeakBib(t *testing.T) {
	d := MustParse(weakBib)
	if d.Root != "bib" {
		t.Errorf("root = %q", d.Root)
	}
	if len(d.Order) != 4 {
		t.Errorf("declared %d elements", len(d.Order))
	}
	if got := d.Elements["book"].Model.String(); got != "(title|author)*" {
		t.Errorf("book model = %s", got)
	}
}

func TestParseAttlist(t *testing.T) {
	d := MustParse(`
<!ELEMENT book (#PCDATA)>
<!ATTLIST book year CDATA #REQUIRED
               kind (hard|soft) "soft"
               id ID #IMPLIED
               ver CDATA #FIXED "1">
`)
	e := d.Elements["book"]
	if len(e.Atts) != 4 {
		t.Fatalf("got %d attdefs", len(e.Atts))
	}
	if e.AttDef("year").Default != AttRequired {
		t.Error("year should be #REQUIRED")
	}
	k := e.AttDef("kind")
	if k.Type != AttEnum || len(k.Enum) != 2 || k.Value != "soft" {
		t.Errorf("kind = %+v", k)
	}
	if e.AttDef("ver").Default != AttFixed || e.AttDef("ver").Value != "1" {
		t.Error("ver should be fixed to 1")
	}
}

func TestParseDoctype(t *testing.T) {
	d, err := ParseDoctype(`DOCTYPE bib [
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
]`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "bib" {
		t.Errorf("root = %q", d.Root)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"garbage", "hello"},
		{"undeclared child", "<!ELEMENT a (b)>"},
		{"mixed separators", "<!ELEMENT a (b,c|d)><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>"},
		{"mixed without star", "<!ELEMENT a (#PCDATA|b)><!ELEMENT b EMPTY>"},
		{"duplicate element", "<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"},
		{"attlist only", "<!ATTLIST a x CDATA #IMPLIED>"},
		{"pcdata nested", "<!ELEMENT a ((#PCDATA),b)><!ELEMENT b EMPTY>"},
		{"unclosed decl", "<!ELEMENT a (b"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestValidateChildren(t *testing.T) {
	d := MustParse(strongBib)
	valid := [][]string{
		{"title", "author", "publisher", "price"},
		{"title", "author", "author", "publisher", "price"},
		{"title", "editor", "publisher", "price"},
	}
	for _, w := range valid {
		if err := d.ValidateChildren("book", w); err != nil {
			t.Errorf("%v should be valid: %v", w, err)
		}
	}
	invalid := [][]string{
		{},
		{"title"},
		{"title", "publisher", "price"}, // no author/editor
		{"title", "author", "editor", "publisher", "price"}, // both
		{"author", "title", "publisher", "price"},           // order
		{"title", "author", "price", "publisher"},           // order
		{"title", "author", "publisher", "price", "price"},  // extra
	}
	for _, w := range invalid {
		if err := d.ValidateChildren("book", w); err == nil {
			t.Errorf("%v should be invalid", w)
		}
	}
}

func TestValidateChildrenAny(t *testing.T) {
	d := MustParse(`<!ELEMENT a ANY><!ELEMENT b EMPTY>`)
	if err := d.ValidateChildren("a", []string{"b", "a", "b"}); err != nil {
		t.Errorf("ANY should accept declared children: %v", err)
	}
	if err := d.ValidateChildren("a", []string{"zzz"}); err == nil {
		t.Error("ANY must reject undeclared children")
	}
}

func TestValidateAttrs(t *testing.T) {
	d := MustParse(`
<!ELEMENT b (#PCDATA)>
<!ATTLIST b year CDATA #REQUIRED kind (x|y) #IMPLIED>
`)
	if err := d.ValidateAttrs("b", map[string]string{"year": "1994"}); err != nil {
		t.Errorf("valid attrs rejected: %v", err)
	}
	if err := d.ValidateAttrs("b", map[string]string{}); err == nil {
		t.Error("missing required attr accepted")
	}
	if err := d.ValidateAttrs("b", map[string]string{"year": "1", "kind": "z"}); err == nil {
		t.Error("bad enum value accepted")
	}
	if err := d.ValidateAttrs("b", map[string]string{"year": "1", "oops": "v"}); err == nil {
		t.Error("undeclared attr accepted")
	}
}

func TestCardinalityPaperExamples(t *testing.T) {
	strong := MustParse(strongBib)
	weak := MustParse(weakBib)
	cases := []struct {
		d             *DTD
		parent, child string
		want          Card
	}{
		{strong, "bib", "book", CardMany},
		{strong, "book", "title", CardOne},
		{strong, "book", "author", CardMany},
		{strong, "book", "editor", CardMany},
		{strong, "book", "publisher", CardOne}, // the loop-merging premise
		{strong, "book", "price", CardOne},
		{strong, "book", "bib", CardNone},
		{weak, "book", "title", CardMany},
		{weak, "book", "author", CardMany},
		{weak, "title", "author", CardNone},
	}
	for _, c := range cases {
		if got := c.d.Cardinality(c.parent, c.child); got != c.want {
			t.Errorf("card(%s,%s) = %v, want %v", c.parent, c.child, got, c.want)
		}
	}
	if !MustParse(strongBib).Cardinality("book", "publisher").AtMostOne() {
		t.Error("publisher must satisfy the ||<=1 premise")
	}
}

func TestOrderConstraintPaperExamples(t *testing.T) {
	strong := MustParse(strongBib)
	weak := MustParse(weakBib)
	mixed := MustParse(mixedOrderBib)

	// Figure 1 DTD: titles strictly precede authors -> streaming possible.
	if !strong.OrderBefore("book", "title", "author") {
		t.Error("strong DTD: title must precede author")
	}
	if strong.OrderBefore("book", "author", "title") {
		t.Error("strong DTD: author does not precede title")
	}
	if !strong.OrderBefore("book", "author", "publisher") {
		t.Error("strong DTD: author precedes publisher")
	}
	if !strong.OrderBefore("book", "publisher", "price") {
		t.Error("strong DTD: publisher precedes price")
	}
	// Weak DTD: interleaving allowed -> no order constraint.
	if weak.OrderBefore("book", "title", "author") {
		t.Error("weak DTD: title/author are interleaved")
	}
	// Mixed-order DTD: title and author interleave, but both precede price.
	if mixed.OrderBefore("book", "title", "author") {
		t.Error("mixed DTD: title/author interleave")
	}
	if !mixed.OrderBefore("book", "title", "price") || !mixed.OrderBefore("book", "author", "price") {
		t.Error("mixed DTD: title and author precede price")
	}
	// Self order == at-most-one.
	if !strong.OrderBefore("book", "title", "title") {
		t.Error("title occurs at most once, so order(title,title) holds")
	}
	if strong.OrderBefore("book", "author", "author") {
		t.Error("author can repeat, so order(author,author) must fail")
	}
}

func TestConflictPaperExample(t *testing.T) {
	strong := MustParse(strongBib)
	// The paper: a book can never have both author and editor children.
	if !strong.Conflict("book", "author", "editor") {
		t.Error("author/editor must conflict under Figure 1 DTD")
	}
	if strong.Conflict("book", "title", "author") {
		t.Error("title/author do not conflict")
	}
	if strong.Conflict("book", "author", "publisher") {
		t.Error("author/publisher do not conflict")
	}
}

func TestGuaranteed(t *testing.T) {
	strong := MustParse(strongBib)
	if !strong.Guaranteed("book", "title") {
		t.Error("title is guaranteed")
	}
	if !strong.Guaranteed("book", "publisher") {
		t.Error("publisher is guaranteed")
	}
	if strong.Guaranteed("book", "author") {
		t.Error("author is not guaranteed (editor branch)")
	}
	if strong.Guaranteed("bib", "book") {
		t.Error("book* may be empty")
	}
}

func TestPastImpliesPaperSafetyExamples(t *testing.T) {
	weak := MustParse(weakBib)
	mixed := MustParse(mixedOrderBib)
	// Safe: in the weak DTD, once past(title,author), no author can come.
	if !weak.PastImplies("book", []string{"title", "author"}, "author") {
		t.Error("past(title,author) must imply past(author)")
	}
	// Unsafe (paper §2): under ((title|author)*,price), when
	// past(title,author) fires the price may still be pending.
	if mixed.PastImplies("book", []string{"title", "author"}, "price") {
		t.Error("past(title,author) must NOT imply past(price)")
	}
	// But past(price) implies past(title): price is last.
	if !mixed.PastImplies("book", []string{"price"}, "title") {
		t.Error("past(price) implies past(title)")
	}
}

func TestPastOnStates(t *testing.T) {
	d := MustParse(strongBib)
	a := d.Elements["book"].Automaton()
	q := a.Start()
	if a.Past(q, []string{"title"}) {
		t.Error("at start, title still possible")
	}
	q = a.Step(q, "title")
	if q < 0 {
		t.Fatal("title step failed")
	}
	if !a.Past(q, []string{"title"}) {
		t.Error("after title, no further title possible")
	}
	if a.Past(q, []string{"author"}) {
		t.Error("after title, authors still possible")
	}
	q = a.Step(q, "author")
	q = a.Step(q, "publisher")
	if !a.Past(q, []string{"author", "editor"}) {
		t.Error("after publisher, authors/editors are past")
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	d := MustParse(strongBib)
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, d.String())
	}
	if d2.String() != d.String() {
		t.Errorf("DTD printing not a fixpoint:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

// --- Oracle-based property tests ---------------------------------------

// matches is a Brzozowski-derivative matcher used as an independent oracle
// for the automaton construction.
func matches(m Model, word []string) bool {
	for _, s := range word {
		m = derive(m, s)
		if m == nil {
			return false
		}
	}
	return nullable(m)
}

func nullable(m Model) bool {
	switch t := m.(type) {
	case Name:
		return false
	case Seq:
		for _, i := range t.Items {
			if !nullable(i) {
				return false
			}
		}
		return true
	case Choice:
		for _, i := range t.Items {
			if nullable(i) {
				return true
			}
		}
		return false
	case Rep:
		return t.Op != OneOrMore || nullable(t.Item)
	default: // Empty, PCData, Mixed handled elsewhere
		return true
	}
}

// derive returns the derivative of m w.r.t. symbol s, or nil for the empty
// language.
func derive(m Model, s string) Model {
	switch t := m.(type) {
	case Name:
		if t.Label == s {
			return Seq{} // epsilon
		}
		return nil
	case Seq:
		if len(t.Items) == 0 {
			return nil
		}
		head, tail := t.Items[0], Seq{Items: t.Items[1:]}
		var alts []Model
		if dh := derive(head, s); dh != nil {
			alts = append(alts, Seq{Items: append([]Model{dh}, tail.Items...)})
		}
		if nullable(head) {
			if dt := derive(tail, s); dt != nil {
				alts = append(alts, dt)
			}
		}
		return alt(alts)
	case Choice:
		var alts []Model
		for _, i := range t.Items {
			if d := derive(i, s); d != nil {
				alts = append(alts, d)
			}
		}
		return alt(alts)
	case Rep:
		d := derive(t.Item, s)
		if d == nil {
			return nil
		}
		if t.Op == ZeroOrOne {
			return d
		}
		return Seq{Items: []Model{d, Rep{Item: t.Item, Op: ZeroOrMore}}}
	default:
		return nil
	}
}

func alt(ms []Model) Model {
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	default:
		return Choice{Items: ms}
	}
}

// randomModel builds a random content model over the alphabet.
func randomModel(r *rand.Rand, alphabet []string, depth int) Model {
	if depth <= 0 || r.Intn(3) == 0 {
		return Name{Label: alphabet[r.Intn(len(alphabet))]}
	}
	n := 1 + r.Intn(3)
	items := make([]Model, n)
	for i := range items {
		items[i] = randomModel(r, alphabet, depth-1)
	}
	var m Model
	if r.Intn(2) == 0 {
		m = Seq{Items: items}
	} else {
		m = Choice{Items: items}
	}
	switch r.Intn(4) {
	case 0:
		m = Rep{Item: m, Op: ZeroOrOne}
	case 1:
		m = Rep{Item: m, Op: ZeroOrMore}
	case 2:
		m = Rep{Item: m, Op: OneOrMore}
	}
	return m
}

// enumWords yields all words over alphabet up to maxLen.
func enumWords(alphabet []string, maxLen int) [][]string {
	words := [][]string{{}}
	frontier := [][]string{{}}
	for l := 0; l < maxLen; l++ {
		var next [][]string
		for _, w := range frontier {
			for _, s := range alphabet {
				nw := append(append([]string(nil), w...), s)
				next = append(next, nw)
				words = append(words, nw)
			}
		}
		frontier = next
	}
	return words
}

// TestAutomatonAgreesWithDerivativeOracle cross-checks DFA acceptance
// against the derivative matcher on random models and all short words.
func TestAutomatonAgreesWithDerivativeOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c"}
	words := enumWords(alphabet, 5)
	for i := 0; i < 200; i++ {
		m := randomModel(r, alphabet, 3)
		a, err := buildAutomaton(m)
		if err != nil {
			t.Fatalf("build %s: %v", m, err)
		}
		for _, w := range words {
			q := a.Start()
			ok := true
			for _, s := range w {
				q = a.Step(q, s)
				if q < 0 {
					ok = false
					break
				}
			}
			got := ok && a.Accepting(q)
			want := matches(m, w)
			if got != want {
				t.Fatalf("model %s word %v: dfa=%v oracle=%v", m, w, got, want)
			}
		}
	}
}

// TestConstraintsAgreeWithBruteForce verifies cardinality, order and
// conflict analyses against brute-force enumeration of the content
// language.
func TestConstraintsAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b"}
	words := enumWords(alphabet, 6)
	decls := `<!ELEMENT a EMPTY><!ELEMENT b EMPTY>`
	for i := 0; i < 150; i++ {
		m := randomModel(r, alphabet, 2)
		d, err := Parse("<!ELEMENT root " + modelDecl(m) + ">" + decls)
		if err != nil {
			t.Fatalf("parse %s: %v", m, err)
		}
		var accepted [][]string
		for _, w := range words {
			if matches(m, w) {
				accepted = append(accepted, w)
			}
		}
		// NOTE: with maxLen 6, counts are exact for small models but a
		// lower bound in general; use only facts stable under extension:
		// a word with two a's refutes AtMostOne; a word with a after b
		// refutes order; a word with both refutes conflict.
		count := func(w []string, s string) int {
			n := 0
			for _, x := range w {
				if x == s {
					n++
				}
			}
			return n
		}
		for _, x := range alphabet {
			card := d.Cardinality("root", x)
			sawTwo, sawAny := false, false
			for _, w := range accepted {
				c := count(w, x)
				if c >= 1 {
					sawAny = true
				}
				if c >= 2 {
					sawTwo = true
				}
			}
			if sawTwo && card.AtMostOne() {
				t.Fatalf("model %s: card(%s)=%v but word with 2 found", m, x, card)
			}
			if sawAny && card == CardNone {
				t.Fatalf("model %s: card(%s)=0 but %s occurs", m, x, x)
			}
			if !sawAny && card != CardNone && len(accepted) > 0 && len(words) > 60 {
				// With enumeration up to length 6 and model depth 2, any
				// possible label occurs in some word of length <= 6.
				t.Fatalf("model %s: card(%s)=%v but never occurs", m, x, card)
			}
		}
		orderAB := d.OrderBefore("root", "a", "b")
		conflictAB := d.Conflict("root", "a", "b")
		for _, w := range accepted {
			sawB := false
			both := count(w, "a") > 0 && count(w, "b") > 0
			violation := false
			for _, s := range w {
				if s == "b" {
					sawB = true
				} else if s == "a" && sawB {
					violation = true
				}
			}
			if violation && orderAB {
				t.Fatalf("model %s: order(a,b) claimed but %v accepted", m, w)
			}
			if both && conflictAB {
				t.Fatalf("model %s: conflict(a,b) claimed but %v accepted", m, w)
			}
		}
	}
}

// TestPastAgreesWithBruteForce: for each accepted prefix, Past(q,{x}) must
// equal "no accepted extension of the prefix contains x".
func TestPastAgreesWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []string{"a", "b"}
	words := enumWords(alphabet, 5)
	for i := 0; i < 100; i++ {
		m := randomModel(r, alphabet, 2)
		a, err := buildAutomaton(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			q := a.Start()
			valid := true
			for _, s := range w {
				q = a.Step(q, s)
				if q < 0 {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			for _, x := range alphabet {
				past := a.Past(q, []string{x})
				// Oracle: does some word = w ++ suffix (len(suffix)<=6)
				// accepted by m contain x in the suffix? The bound must
				// exceed any loop body length of the small models used here.
				canStill := false
				for _, suf := range enumWords(alphabet, 6) {
					hasX := false
					for _, s := range suf {
						if s == x {
							hasX = true
						}
					}
					if !hasX {
						continue
					}
					if matches(m, append(append([]string(nil), w...), suf...)) {
						canStill = true
						break
					}
				}
				if past && canStill {
					t.Fatalf("model %s prefix %v: Past(%s) but extension exists", m, w, x)
				}
				// The converse may be cut off by the suffix bound for deep
				// models; only check it for short-language models.
				if !past && !canStill && a.NumStates() <= 4 {
					t.Fatalf("model %s prefix %v: !Past(%s) but no extension found", m, w, x)
				}
			}
		}
	}
}

func TestConstraintSummary(t *testing.T) {
	d := MustParse(strongBib)
	s := d.ConstraintSummary("book")
	for _, want := range []string{
		"card(title) = 1",
		"card(author) = *",
		"order: all title before all author",
		"conflict: never both author and editor",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
