package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Card is the cardinality bound of a child label within a parent element.
type Card uint8

// Cardinality classes for a child label under a parent, as derivable from
// the parent's content model.
const (
	// CardNone: the child can never occur.
	CardNone Card = iota
	// CardOptional: at most one occurrence (the paper's "a ∈ ||≤1 r").
	CardOptional
	// CardOne: exactly one occurrence in every valid parent.
	CardOne
	// CardMany: more than one occurrence is possible.
	CardMany
)

func (c Card) String() string {
	switch c {
	case CardNone:
		return "0"
	case CardOptional:
		return "?"
	case CardOne:
		return "1"
	default:
		return "*"
	}
}

// AtMostOne reports whether the cardinality is bounded by one (the
// precondition of the paper's loop-merging rule).
func (c Card) AtMostOne() bool { return c == CardNone || c == CardOptional || c == CardOne }

// Cardinality returns the cardinality class of child under parent. An
// undeclared parent yields CardNone.
func (d *DTD) Cardinality(parent, child string) Card {
	e := d.Elements[parent]
	if e == nil {
		return CardNone
	}
	a := e.auto
	if a.isAny {
		if _, declared := d.Elements[child]; declared {
			return CardMany
		}
		return CardNone
	}
	l, ok := a.labelIdx[child]
	if !ok {
		return CardNone
	}
	// Max: can two child-edges occur on one path? True iff some reachable
	// child-edge leads to a state from which another child-edge is
	// reachable.
	many := false
	occurs := false
	for q := range a.trans {
		if !a.reach[q] {
			continue
		}
		t := a.trans[q][l]
		if t < 0 {
			continue
		}
		occurs = true
		if a.canSee[t][l] {
			many = true
			break
		}
	}
	if !occurs {
		return CardNone
	}
	if many {
		return CardMany
	}
	// Min: is an accepting state reachable without any child-edge?
	if a.acceptingWithout(l) {
		return CardOptional
	}
	return CardOne
}

// acceptingWithout reports whether an accepting state is reachable from
// the start without using any edge labeled l.
func (a *Automaton) acceptingWithout(l int) bool {
	seen := make([]bool, len(a.trans))
	stack := []int{a.start}
	seen[a.start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[q] {
			return true
		}
		for li, t := range a.trans[q] {
			if li == l || t < 0 || seen[t] {
				continue
			}
			seen[t] = true
			stack = append(stack, t)
		}
	}
	return false
}

// OrderBefore reports the order constraint "within parent, all a-children
// occur before all b-children" — i.e. once a b-child has been read, no
// a-child may follow in any valid document. With a == b this degenerates
// to "at most one a", matching the scheduling requirement for successive
// handlers on the same label.
func (d *DTD) OrderBefore(parent, a, b string) bool {
	e := d.Elements[parent]
	if e == nil {
		return true // vacuous: parent cannot occur
	}
	au := e.auto
	if au.isAny {
		return false
	}
	li, oka := au.labelIdx[a]
	lj, okb := au.labelIdx[b]
	if !oka || !okb {
		// A label that cannot occur imposes no ordering violation.
		return true
	}
	for q := range au.trans {
		if !au.reach[q] {
			continue
		}
		t := au.trans[q][lj] // take a b-edge...
		if t < 0 {
			continue
		}
		if au.canSee[t][li] { // ...an a may still follow
			return false
		}
	}
	return true
}

// Conflict reports the language constraint "no valid parent has both an
// a-child and a b-child" (the paper's author/editor example).
func (d *DTD) Conflict(parent, a, b string) bool {
	e := d.Elements[parent]
	if e == nil {
		return true
	}
	au := e.auto
	if au.isAny {
		return false
	}
	li, oka := au.labelIdx[a]
	lj, okb := au.labelIdx[b]
	if !oka || !okb {
		return true // one of them can never occur at all
	}
	if a == b {
		// "Both an a and an a" means two a's.
		return d.Cardinality(parent, a).AtMostOne()
	}
	for q := range au.trans {
		if !au.reach[q] {
			continue
		}
		if t := au.trans[q][li]; t >= 0 && au.canSee[t][lj] {
			return false
		}
		if t := au.trans[q][lj]; t >= 0 && au.canSee[t][li] {
			return false
		}
	}
	return true
}

// Guaranteed reports whether every valid parent element has at least one
// child labeled child (used to simplify exists() conditions).
func (d *DTD) Guaranteed(parent, child string) bool {
	c := d.Cardinality(parent, child)
	return c == CardOne || (c == CardMany && !d.Elements[parent].auto.optionalMany(child))
}

// optionalMany reports whether, for a CardMany label, zero occurrences are
// also possible.
func (a *Automaton) optionalMany(child string) bool {
	l, ok := a.labelIdx[child]
	if !ok {
		return true
	}
	return a.acceptingWithout(l)
}

// PastImplies reports whether it is safe to dereference $x/label inside an
// on-first past(set) handler of an x-element (paper §2). XSAX inserts the
// on-first event at the earliest position of the SAX stream where the
// condition holds, which is the start tag of the child whose arrival makes
// it true. Safety therefore needs two facts about the parent's automaton:
//
//  1. in every reachable state where past(set) holds, no further
//     label-child can occur (the buffer will never grow again), and
//  2. past(set) never first becomes true on the start tag of a label-child
//     itself — otherwise the handler fires while that child is still
//     incomplete and its buffer is missing the final item. This is exactly
//     the paper's $book/price counterexample under ((title|author)*,price).
func (d *DTD) PastImplies(parent string, set []string, label string) bool {
	e := d.Elements[parent]
	if e == nil {
		return true
	}
	a := e.auto
	if a.isAny {
		return false
	}
	l, hasLabel := a.labelIdx[label]
	for q := range a.trans {
		if !a.reach[q] {
			continue
		}
		if a.Past(q, set) && a.CanSee(q, label) {
			return false
		}
		if hasLabel {
			if t := a.trans[q][l]; t >= 0 && a.Past(t, set) {
				// The condition holds immediately after a label-child's
				// start tag: firing would precede the child's content.
				return false
			}
		}
	}
	return true
}

// ValidationError reports a document that does not conform to the DTD.
type ValidationError struct {
	Element string // the element whose content is invalid
	Msg     string
}

func (e *ValidationError) Error() string {
	if e.Element == "" {
		return "validation error: " + e.Msg
	}
	return fmt.Sprintf("validation error in <%s>: %s", e.Element, e.Msg)
}

// ValidateChildren checks a full child-label sequence against parent's
// content model.
func (d *DTD) ValidateChildren(parent string, children []string) error {
	e := d.Elements[parent]
	if e == nil {
		return &ValidationError{Element: parent, Msg: "undeclared element"}
	}
	q := e.auto.Start()
	for _, c := range children {
		if e.isAny {
			if _, ok := d.Elements[c]; !ok {
				return &ValidationError{Element: parent, Msg: "undeclared child <" + c + ">"}
			}
			continue
		}
		q = e.auto.Step(q, c)
		if q < 0 {
			return &ValidationError{Element: parent, Msg: fmt.Sprintf("child <%s> not allowed here (content model %s)", c, e.Model)}
		}
	}
	if !e.auto.Accepting(q) {
		return &ValidationError{Element: parent, Msg: fmt.Sprintf("content ended prematurely (content model %s)", e.Model)}
	}
	return nil
}

// ValidateAttrs checks an element's attributes against its ATTLIST. It is
// a convenience adapter over ValidateAttrPairs, which holds the single
// rule set.
func (d *DTD) ValidateAttrs(elem string, attrs map[string]string) error {
	e := d.Elements[elem]
	if e == nil {
		return &ValidationError{Element: elem, Msg: "undeclared element"}
	}
	pairs := make([]AttrPair, 0, len(attrs))
	for name, val := range attrs {
		pairs = append(pairs, AttrPair{Name: []byte(name), Value: []byte(val)})
	}
	return d.ValidateAttrPairs(e, pairs)
}

// AttrPair is a zero-copy attribute view used by the streaming validator;
// both slices belong to the caller and are not retained.
type AttrPair struct {
	Name  []byte
	Value []byte
}

// ValidateAttrPairs is the zero-copy form of ValidateAttrs: it checks the
// attribute list of one start tag against e's ATTLIST without allocating
// on the success path.
func (d *DTD) ValidateAttrPairs(e *Element, attrs []AttrPair) error {
	for _, p := range attrs {
		def := e.AttDefBytes(p.Name)
		if def == nil {
			return &ValidationError{Element: e.Name, Msg: "undeclared attribute " + string(p.Name)}
		}
		switch def.Type {
		case AttEnum:
			ok := false
			for _, v := range def.Enum {
				if v == string(p.Value) {
					ok = true
					break
				}
			}
			if !ok {
				return &ValidationError{Element: e.Name, Msg: fmt.Sprintf("attribute %s value %q not in (%s)", def.Name, p.Value, strings.Join(def.Enum, "|"))}
			}
		case AttID, AttIDRef, AttNMToken:
			tok := false
			for _, c := range p.Value {
				if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
					tok = true
					break
				}
			}
			if !tok {
				return &ValidationError{Element: e.Name, Msg: "attribute " + def.Name + " must be a token"}
			}
		}
		if def.Default == AttFixed && string(p.Value) != def.Value {
			return &ValidationError{Element: e.Name, Msg: fmt.Sprintf("attribute %s must have fixed value %q", def.Name, def.Value)}
		}
	}
	for _, def := range e.Atts {
		if def.Default != AttRequired {
			continue
		}
		found := false
		for _, p := range attrs {
			if string(p.Name) == def.Name {
				found = true
				break
			}
		}
		if !found {
			return &ValidationError{Element: e.Name, Msg: "missing required attribute " + def.Name}
		}
	}
	return nil
}

// ConstraintSummary renders all derived constraints of one parent element;
// it backs the schemareason example and the -explain CLI mode.
func (d *DTD) ConstraintSummary(parent string) string {
	e := d.Elements[parent]
	if e == nil {
		return ""
	}
	labels := e.auto.Alphabet()
	var b strings.Builder
	fmt.Fprintf(&b, "element %s, content model %s\n", parent, e.Model)
	for _, l := range labels {
		fmt.Fprintf(&b, "  card(%s) = %s\n", l, d.Cardinality(parent, l))
	}
	for _, x := range labels {
		for _, y := range labels {
			if x != y && d.OrderBefore(parent, x, y) {
				fmt.Fprintf(&b, "  order: all %s before all %s\n", x, y)
			}
		}
	}
	for i, x := range labels {
		for _, y := range labels[i+1:] {
			if d.Conflict(parent, x, y) {
				fmt.Fprintf(&b, "  conflict: never both %s and %s\n", x, y)
			}
		}
	}
	return b.String()
}

// sortedLabels returns the union of two label sets, sorted and deduplicated.
func sortedLabels(a, b []string) []string {
	m := make(map[string]bool, len(a)+len(b))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		m[x] = true
	}
	out := make([]string, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}
