package dtd

import (
	"os"
	"testing"
)

// idTestDTDs gathers a spread of content-model shapes: sequences,
// choices, repetitions, mixed, EMPTY and ANY.
func idTestDTDs(t *testing.T) []*DTD {
	t.Helper()
	srcs := []string{
		`<!ELEMENT r (a,b?,c*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)><!ELEMENT c (a|b)+>`,
		`<!ELEMENT r ((a|b)*,c)><!ELEMENT a EMPTY><!ELEMENT b ANY><!ELEMENT c (#PCDATA|a)*>`,
	}
	var out []*DTD
	for _, s := range srcs {
		out = append(out, MustParse(s))
	}
	for _, f := range []string{"../../testdata/bib-weak.dtd", "../../testdata/bib-strong.dtd"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, MustParse(string(data)))
	}
	return out
}

// TestStepIDEquivalence: the id-indexed transition table agrees with the
// string-keyed Step on every (element, state, child) triple, including
// the hidden document pseudo-element.
func TestStepIDEquivalence(t *testing.T) {
	for _, d := range idTestDTDs(t) {
		for _, e := range d.Elements {
			a := e.Automaton()
			for q := 0; q < a.NumStates(); q++ {
				for id := int32(0); int(id) < d.NumIDs(); id++ {
					child := d.ByID(id)
					want := a.Step(q, child.Name)
					got := a.StepID(q, id)
					if want != got {
						t.Fatalf("%s: Step(%d,%s)=%d but StepID(%d,%d)=%d",
							e.Name, q, child.Name, want, q, id, got)
					}
				}
			}
		}
	}
}

// TestPastVectorEquivalence: the precompiled per-state past vectors agree
// with the per-call Past on assorted label sets.
func TestPastVectorEquivalence(t *testing.T) {
	for _, d := range idTestDTDs(t) {
		for _, e := range d.Elements {
			a := e.Automaton()
			labels := a.Alphabet()
			sets := [][]string{{}, labels}
			for _, l := range labels {
				sets = append(sets, []string{l})
			}
			if len(labels) >= 2 {
				sets = append(sets, labels[:2])
			}
			for _, set := range sets {
				vec := a.PastVector(set)
				for q := 0; q < a.NumStates(); q++ {
					if vec[q] != a.Past(q, set) {
						t.Fatalf("%s: PastVector(%v)[%d]=%v, Past=%v",
							e.Name, set, q, vec[q], a.Past(q, set))
					}
				}
			}
		}
	}
}

// TestIDsDeterministic: two parses of the same source assign identical
// ids — the invariant that lets plans compiled against an equivalent DTD
// ride a shared stream with integer dispatch.
func TestIDsDeterministic(t *testing.T) {
	const src = `<!ELEMENT r (a,b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>`
	d1, d2 := MustParse(src), MustParse(src)
	if d1.NumIDs() != d2.NumIDs() {
		t.Fatalf("NumIDs differ: %d vs %d", d1.NumIDs(), d2.NumIDs())
	}
	for id := int32(0); int(id) < d1.NumIDs(); id++ {
		if d1.ByID(id).Name != d2.ByID(id).Name {
			t.Fatalf("id %d names %q vs %q", id, d1.ByID(id).Name, d2.ByID(id).Name)
		}
	}
	if doc := d1.Element(DocElem); doc == nil || int(doc.ID()) != d1.NumIDs()-1 {
		t.Fatalf("document pseudo-element must take the last id")
	}
}

// TestParseDoctypeReassignsIDs: ParseDoctype replaces the document
// pseudo-element after Parse froze the id tables; it must re-freeze them
// so the live doc element owns the document id and a transition table
// (regression: StepID returned -1 for the root child, poisoning every
// id-keyed dispatch downstream).
func TestParseDoctypeReassignsIDs(t *testing.T) {
	d, err := ParseDoctype(`DOCTYPE b [<!ELEMENT a (#PCDATA)><!ELEMENT b (a)*>]`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "b" {
		t.Fatalf("root = %q, want b", d.Root)
	}
	doc := d.Element(DocElem)
	if doc == nil {
		t.Fatal("no document pseudo-element")
	}
	if int(doc.ID()) != d.NumIDs()-1 {
		t.Fatalf("doc id = %d, want %d", doc.ID(), d.NumIDs()-1)
	}
	if d.ByID(doc.ID()) != doc {
		t.Fatalf("ByID(doc.ID()) is %q, not the live doc element", d.ByID(doc.ID()).Name)
	}
	a := doc.Automaton()
	rootElem := d.Element("b")
	if got := a.StepID(a.Start(), rootElem.ID()); got < 0 {
		t.Fatalf("doc StepID(start, root) = %d, want a valid state", got)
	}
	if got := a.StepID(a.Start(), d.Element("a").ID()); got >= 0 {
		t.Fatalf("doc StepID(start, non-root) = %d, want -1", got)
	}
}
