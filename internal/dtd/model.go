// Package dtd implements Document Type Definitions: parsing, content-model
// automata, validation, and the schema-constraint analyses that drive the
// FluX optimizer (paper §3.1):
//
//   - cardinality constraints  — "a ∈ ||≤1 r": an r-element has at most one
//     a-child; enables loop merging;
//   - order constraints        — all a-children precede all b-children;
//     enables on-the-fly scheduling instead of buffering;
//   - language (co-occurrence) constraints — no r-element has both an
//     a-child and a b-child; enables elimination of unsatisfiable
//     conditionals;
//   - past(S) analysis         — given the parser's position inside an
//     element, can any child labeled in S still occur? This powers the
//     XSAX on-first events (paper §3.2).
//
// All analyses are decided on the deterministic Glushkov automata of the
// content models, built once per element declaration.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Model is a content-model expression tree. The concrete types are Name,
// Seq, Choice, Rep, PCData, Mixed, Empty and Any.
type Model interface {
	String() string
	modelNode()
}

// Name is a reference to a child element type.
type Name struct{ Label string }

// Seq is a sequence group (a, b, c).
type Seq struct{ Items []Model }

// Choice is an alternative group (a | b | c).
type Choice struct{ Items []Model }

// RepOp is a repetition operator: '?', '*' or '+'.
type RepOp byte

// Repetition operators.
const (
	ZeroOrOne  RepOp = '?'
	ZeroOrMore RepOp = '*'
	OneOrMore  RepOp = '+'
)

// Rep applies a repetition operator to a sub-model.
type Rep struct {
	Item Model
	Op   RepOp
}

// PCData is the #PCDATA-only content model: text, no element children.
type PCData struct{}

// Mixed is mixed content (#PCDATA | a | b)*: text interleaved with the
// listed child elements in any order and number.
type Mixed struct{ Labels []string }

// Empty is the EMPTY content model.
type Empty struct{}

// Any is the ANY content model: any declared elements and text.
type Any struct{}

func (Name) modelNode()   {}
func (Seq) modelNode()    {}
func (Choice) modelNode() {}
func (Rep) modelNode()    {}
func (PCData) modelNode() {}
func (Mixed) modelNode()  {}
func (Empty) modelNode()  {}
func (Any) modelNode()    {}

func (m Name) String() string { return m.Label }

func (m Seq) String() string {
	parts := make([]string, len(m.Items))
	for i, it := range m.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (m Choice) String() string {
	parts := make([]string, len(m.Items))
	for i, it := range m.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, "|") + ")"
}

func (m Rep) String() string { return m.Item.String() + string(m.Op) }

func (PCData) String() string { return "(#PCDATA)" }

func (m Mixed) String() string {
	if len(m.Labels) == 0 {
		return "(#PCDATA)*"
	}
	return "(#PCDATA|" + strings.Join(m.Labels, "|") + ")*"
}

func (Empty) String() string { return "EMPTY" }
func (Any) String() string   { return "ANY" }

// AttType is the type of a declared attribute.
type AttType uint8

// Attribute types. Tokenized types beyond enumerations are validated as
// CDATA; the engine does not resolve ID/IDREF references.
const (
	AttCDATA AttType = iota
	AttID
	AttIDRef
	AttNMToken
	AttEnum
)

// AttDefault describes the default/requiredness of an attribute.
type AttDefault uint8

// Attribute default kinds.
const (
	AttImplied AttDefault = iota
	AttRequired
	AttFixed
	AttDefaulted
)

// AttDef is one attribute declaration from an ATTLIST.
type AttDef struct {
	Name    string
	Type    AttType
	Enum    []string // for AttEnum
	Default AttDefault
	Value   string // for AttFixed and AttDefaulted
}

// Element is one element type declaration together with its compiled
// automaton.
type Element struct {
	Name  string
	Model Model
	Atts  []*AttDef

	auto *Automaton
	// id is the element's dense name id within its DTD (see Element.ID).
	id int32
	// hasPCData reports whether text children are permitted.
	hasPCData bool
	// isAny marks the ANY content model.
	isAny bool
}

// ID returns the element's dense name id: declared elements are numbered
// in declaration order starting at 0, with the hidden document
// pseudo-element last. Ids index the Sym-oriented dispatch tables of the
// whole pipeline (content-model StepID tables, projection jump tables,
// the runtime's handler slices). Two DTDs with equal String() renderings
// assign identical ids, which is what lets plans compiled against an
// equivalent DTD ride a shared stream with integer dispatch.
func (e *Element) ID() int32 { return e.id }

// Automaton returns the compiled content-model automaton.
func (e *Element) Automaton() *Automaton { return e.auto }

// HasPCData reports whether text content is permitted inside the element.
func (e *Element) HasPCData() bool { return e.hasPCData }

// IsAny reports whether the element was declared with the ANY model.
func (e *Element) IsAny() bool { return e.isAny }

// AttDef returns the declaration of the named attribute, or nil.
func (e *Element) AttDef(name string) *AttDef {
	for _, a := range e.Atts {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// DTD is a parsed document type definition.
type DTD struct {
	// Root is the expected document element name. It is the name from the
	// DOCTYPE declaration when parsed from one, else the first declared
	// element.
	Root string
	// Elements maps element names to their declarations.
	Elements map[string]*Element
	// Order lists element names in declaration order (for deterministic
	// printing).
	Order []string
	// byID maps dense name ids back to declarations (index = Element.ID).
	byID []*Element
}

// NumIDs returns the size of the DTD's name-id space (declared elements
// plus the document pseudo-element); valid ids are 0..NumIDs()-1.
func (d *DTD) NumIDs() int { return len(d.byID) }

// ByID returns the declaration with the given dense name id.
func (d *DTD) ByID(id int32) *Element { return d.byID[id] }

// IDNames returns element names indexed by their dense ids; it is the
// vocabulary handed to integer-compiled dispatch tables (e.g. the
// projection automaton). The returned slice is freshly allocated.
func (d *DTD) IDNames() []string {
	out := make([]string, len(d.byID))
	for i, e := range d.byID {
		out[i] = e.Name
	}
	return out
}

// assignIDs numbers the declarations (declaration order, document
// pseudo-element last) and compiles every content-model automaton's
// id-indexed transition table. Called once at the end of Parse, after all
// elements exist.
func (d *DTD) assignIDs() {
	d.byID = make([]*Element, 0, len(d.Order)+1)
	for _, name := range d.Order {
		e := d.Elements[name]
		e.id = int32(len(d.byID))
		d.byID = append(d.byID, e)
	}
	if doc, ok := d.Elements[DocElem]; ok {
		doc.id = int32(len(d.byID))
		d.byID = append(d.byID, doc)
	}
	for _, e := range d.byID {
		e.auto.compileIDTable(d)
	}
}

// Element returns the declaration for name, or nil if undeclared.
func (d *DTD) Element(name string) *Element { return d.Elements[name] }

// ElementBytes is the zero-copy form of Element: the byte-slice key is
// looked up without allocating a string.
func (d *DTD) ElementBytes(name []byte) *Element { return d.Elements[string(name)] }

// AttDefBytes returns the declaration of the named attribute without
// allocating, or nil.
func (e *Element) AttDefBytes(name []byte) *AttDef {
	for _, a := range e.Atts {
		if string(name) == a.Name {
			return a
		}
	}
	return nil
}

// Labels returns the sorted set of all declared element names.
func (d *DTD) Labels() []string {
	out := append([]string(nil), d.Order...)
	sort.Strings(out)
	return out
}

// String serializes the DTD back to declaration syntax.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.Order {
		e := d.Elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", e.Name, modelDecl(e.Model))
		if len(e.Atts) > 0 {
			fmt.Fprintf(&b, "<!ATTLIST %s", e.Name)
			for _, a := range e.Atts {
				b.WriteString(" ")
				b.WriteString(a.Name)
				switch a.Type {
				case AttCDATA:
					b.WriteString(" CDATA")
				case AttID:
					b.WriteString(" ID")
				case AttIDRef:
					b.WriteString(" IDREF")
				case AttNMToken:
					b.WriteString(" NMTOKEN")
				case AttEnum:
					b.WriteString(" (" + strings.Join(a.Enum, "|") + ")")
				}
				switch a.Default {
				case AttImplied:
					b.WriteString(" #IMPLIED")
				case AttRequired:
					b.WriteString(" #REQUIRED")
				case AttFixed:
					fmt.Fprintf(&b, " #FIXED %q", a.Value)
				case AttDefaulted:
					fmt.Fprintf(&b, " %q", a.Value)
				}
			}
			b.WriteString(">\n")
		}
	}
	return b.String()
}

// modelDecl renders a model as it appears in a declaration: name groups
// must be parenthesized at top level.
func modelDecl(m Model) string {
	switch m.(type) {
	case Name:
		return "(" + m.String() + ")"
	case Rep:
		if _, ok := m.(Rep).Item.(Name); ok {
			return "(" + m.(Rep).Item.String() + ")" + string(m.(Rep).Op)
		}
	}
	return m.String()
}
