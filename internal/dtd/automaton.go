package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Automaton is the deterministic finite automaton of one element's content
// model over the alphabet of child-element labels. It is produced by the
// Glushkov construction followed by a subset construction (DTD content
// models are required to be 1-unambiguous by XML, in which case the subset
// step is the identity, but the engine does not depend on that).
//
// All of the paper's schema analyses are decided on this automaton:
// validation, cardinality/order/co-occurrence constraints, and the past(S)
// test behind XSAX on-first events.
type Automaton struct {
	labels   []string       // alphabet, sorted
	labelIdx map[string]int // label -> index in labels
	start    int
	accept   []bool
	// trans[q][l] is the successor of state q on label index l, or -1.
	trans [][]int
	// canSee[q][l] reports whether, starting in state q, a child labeled
	// labels[l] can still occur on some path to an accepting state.
	canSee [][]bool
	// reach[q] reports whether q is reachable from the start state.
	reach []bool
	// isAny marks the universal automaton of the ANY content model; its
	// transition table is empty and every label self-loops implicitly.
	isAny bool

	// stepID is the flattened id-indexed transition table filled by
	// compileIDTable: stepID[q*vocabN+id] is the successor of state q on a
	// child with dense name id `id`, or -1. It lets the streaming hot path
	// step the automaton with one slice load instead of a string-map probe.
	stepID []int32
	vocabN int
}

// compileElement builds the automaton for an element declaration.
func compileElement(e *Element) error {
	if e.Model == nil {
		return &ParseError{Msg: fmt.Sprintf("element %s has an ATTLIST but no ELEMENT declaration", e.Name)}
	}
	switch m := e.Model.(type) {
	case Empty:
		e.auto = emptyAutomaton()
	case PCData:
		e.auto = emptyAutomaton()
		e.hasPCData = true
	case Any:
		e.auto = &Automaton{
			labelIdx: map[string]int{},
			start:    0,
			accept:   []bool{true},
			trans:    [][]int{{}},
			canSee:   [][]bool{{}},
			reach:    []bool{true},
			isAny:    true,
		}
		e.hasPCData = true
		e.isAny = true
	case Mixed:
		items := make([]Model, len(m.Labels))
		for i, l := range m.Labels {
			items[i] = Name{Label: l}
		}
		var err error
		e.auto, err = buildAutomaton(Rep{Item: Choice{Items: items}, Op: ZeroOrMore})
		if err != nil {
			return err
		}
		e.hasPCData = true
	default:
		var err error
		e.auto, err = buildAutomaton(e.Model)
		if err != nil {
			return err
		}
	}
	return nil
}

// emptyAutomaton accepts exactly the empty child sequence.
func emptyAutomaton() *Automaton {
	return &Automaton{
		labelIdx: map[string]int{},
		start:    0,
		accept:   []bool{true},
		trans:    [][]int{{}},
		canSee:   [][]bool{{}},
		reach:    []bool{true},
	}
}

// position is one occurrence of a Name in the model (Glushkov position).
type position struct {
	label int // label index
}

// glushkov holds the intermediate construction state.
type glushkov struct {
	labels   []string
	labelIdx map[string]int
	pos      []position
	follow   []map[int]bool
}

// nfaFacts describes a sub-expression during the Glushkov recursion.
type nfaFacts struct {
	nullable bool
	first    map[int]bool
	last     map[int]bool
}

func (g *glushkov) labelOf(name string) int {
	if i, ok := g.labelIdx[name]; ok {
		return i
	}
	i := len(g.labels)
	g.labels = append(g.labels, name)
	g.labelIdx[name] = i
	return i
}

func buildAutomaton(m Model) (*Automaton, error) {
	g := &glushkov{labelIdx: map[string]int{}}
	facts := g.walkCached(m)

	// NFA: state 0 is the start; state i+1 is position i.
	nStates := len(g.pos) + 1
	type nfaEdge struct{ from, label, to int }
	var edges []nfaEdge
	for p := range facts.first {
		edges = append(edges, nfaEdge{0, g.pos[p].label, p + 1})
	}
	for p, fset := range g.follow {
		for q := range fset {
			edges = append(edges, nfaEdge{p + 1, g.pos[q].label, q + 1})
		}
	}
	nfaAccept := make([]bool, nStates)
	nfaAccept[0] = facts.nullable
	for p := range facts.last {
		nfaAccept[p+1] = true
	}

	// Subset construction.
	nfaTrans := make([]map[int][]int, nStates) // state -> label -> []state
	for i := range nfaTrans {
		nfaTrans[i] = map[int][]int{}
	}
	for _, e := range edges {
		nfaTrans[e.from][e.label] = append(nfaTrans[e.from][e.label], e.to)
	}
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = fmt.Sprint(s)
		}
		return strings.Join(parts, ",")
	}
	a := &Automaton{labels: g.labels, labelIdx: g.labelIdx, start: 0}
	stateOf := map[string]int{}
	var sets [][]int
	addState := func(set []int) int {
		k := key(set)
		if id, ok := stateOf[k]; ok {
			return id
		}
		id := len(sets)
		stateOf[k] = id
		sets = append(sets, set)
		a.trans = append(a.trans, make([]int, len(g.labels)))
		for i := range a.trans[id] {
			a.trans[id][i] = -1
		}
		acc := false
		for _, s := range set {
			if nfaAccept[s] {
				acc = true
			}
		}
		a.accept = append(a.accept, acc)
		return id
	}
	start := addState([]int{0})
	a.start = start
	for work := []int{start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		for l := range g.labels {
			targets := map[int]bool{}
			for _, s := range set {
				for _, t := range nfaTrans[s][l] {
					targets[t] = true
				}
			}
			if len(targets) == 0 {
				continue
			}
			tset := make([]int, 0, len(targets))
			for t := range targets {
				tset = append(tset, t)
			}
			sort.Ints(tset)
			before := len(sets)
			tid := addState(tset)
			a.trans[id][l] = tid
			if tid == before {
				work = append(work, tid)
			}
		}
	}
	a.computeAnalyses()
	return a, nil
}

// walkCached is walk but records facts per sub-model for Seq's suffix-last
// recomputation.
func (g *glushkov) walkCached(m Model) nfaFacts {
	switch t := m.(type) {
	case Seq:
		// Walk items in order, caching their facts first.
		f := nfaFacts{nullable: true, first: map[int]bool{}, last: map[int]bool{}}
		var itemFacts []nfaFacts
		var prevLasts []map[int]bool
		for _, item := range t.Items {
			fi := g.walkCached(item)
			itemFacts = append(itemFacts, fi)
			// follow links: all lasts of every nullable-connected prefix
			// item reach this item's firsts.
			for i := len(prevLasts) - 1; i >= 0; i-- {
				for p := range prevLasts[i] {
					for q := range fi.first {
						g.follow[p][q] = true
					}
				}
				if !itemFacts[i].nullable {
					break
				}
			}
			if f.nullable {
				for p := range fi.first {
					f.first[p] = true
				}
			}
			f.nullable = f.nullable && fi.nullable
			prevLasts = append(prevLasts, fi.last)
		}
		for i := len(itemFacts) - 1; i >= 0; i-- {
			for p := range itemFacts[i].last {
				f.last[p] = true
			}
			if !itemFacts[i].nullable {
				break
			}
		}
		return f
	case Choice:
		f := nfaFacts{first: map[int]bool{}, last: map[int]bool{}}
		for _, item := range t.Items {
			fi := g.walkCached(item)
			f.nullable = f.nullable || fi.nullable
			for p := range fi.first {
				f.first[p] = true
			}
			for p := range fi.last {
				f.last[p] = true
			}
		}
		return f
	case Rep:
		fi := g.walkCached(t.Item)
		f := nfaFacts{first: fi.first, last: fi.last}
		switch t.Op {
		case ZeroOrOne:
			f.nullable = true
		case ZeroOrMore:
			f.nullable = true
			for p := range fi.last {
				for q := range fi.first {
					g.follow[p][q] = true
				}
			}
		case OneOrMore:
			f.nullable = fi.nullable
			for p := range fi.last {
				for q := range fi.first {
					g.follow[p][q] = true
				}
			}
		}
		return f
	case Name:
		p := len(g.pos)
		g.pos = append(g.pos, position{label: g.labelOf(t.Label)})
		g.follow = append(g.follow, map[int]bool{})
		return nfaFacts{first: map[int]bool{p: true}, last: map[int]bool{p: true}}
	default:
		return nfaFacts{nullable: true, first: map[int]bool{}, last: map[int]bool{}}
	}
}

// computeAnalyses fills reach and canSee.
func (a *Automaton) computeAnalyses() {
	n := len(a.trans)
	a.reach = make([]bool, n)
	a.reach[a.start] = true
	for stack := []int{a.start}; len(stack) > 0; {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.trans[q] {
			if t >= 0 && !a.reach[t] {
				a.reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// canSee[q][l]: an l-edge occurs on some path from q. (All states of a
	// Glushkov automaton can reach acceptance, so no usefulness filter is
	// required; subset states are unions of those.)
	a.canSee = make([][]bool, n)
	for q := range a.canSee {
		a.canSee[q] = make([]bool, len(a.labels))
	}
	changed := true
	for changed {
		changed = false
		for q := 0; q < n; q++ {
			for l, t := range a.trans[q] {
				if t < 0 {
					continue
				}
				if !a.canSee[q][l] {
					a.canSee[q][l] = true
					changed = true
				}
				for l2 := range a.labels {
					if a.canSee[t][l2] && !a.canSee[q][l2] {
						a.canSee[q][l2] = true
						changed = true
					}
				}
			}
		}
	}
}

// Alphabet returns the labels occurring in the content model, sorted.
func (a *Automaton) Alphabet() []string {
	out := append([]string(nil), a.labels...)
	sort.Strings(out)
	return out
}

// Start returns the initial state.
func (a *Automaton) Start() int { return a.start }

// NumStates returns the number of DFA states.
func (a *Automaton) NumStates() int { return len(a.trans) }

// Accepting reports whether state q is accepting (a valid end of the child
// sequence).
func (a *Automaton) Accepting(q int) bool {
	if a.isAny {
		return true
	}
	return q >= 0 && q < len(a.accept) && a.accept[q]
}

// Step returns the successor of state q on a child labeled label, or -1 if
// the child is not permitted there.
func (a *Automaton) Step(q int, label string) int {
	if a.isAny {
		return 0
	}
	l, ok := a.labelIdx[label]
	if !ok || q < 0 || q >= len(a.trans) {
		return -1
	}
	return a.trans[q][l]
}

// compileIDTable fills the automaton's id-indexed transition table over
// the DTD's name-id vocabulary. The ANY automaton keeps a nil table (every
// declared child self-loops, see StepID).
func (a *Automaton) compileIDTable(d *DTD) {
	if a.isAny {
		a.stepID = nil
		a.vocabN = d.NumIDs()
		return
	}
	n := d.NumIDs()
	a.vocabN = n
	a.stepID = make([]int32, len(a.trans)*n)
	for i := range a.stepID {
		a.stepID[i] = -1
	}
	for l, label := range a.labels {
		e := d.Elements[label]
		if e == nil {
			continue // undeclared label: Parse rejects these anyway
		}
		id := int(e.id)
		for q := range a.trans {
			if t := a.trans[q][l]; t >= 0 {
				a.stepID[q*n+id] = int32(t)
			}
		}
	}
}

// StepID is Step keyed by the child's dense name id: one slice load on
// the streaming hot path. Like Step, a dead state (q < 0) is absorbing:
// a plan riding a shell-elided trie stream legitimately steps its scope
// automata off the content model (the elided siblings are what kept the
// ordering valid), and the state must pin to dead rather than index the
// table with a negative offset. The caller guarantees id < the DTD's
// NumIDs.
func (a *Automaton) StepID(q int, id int32) int {
	if a.stepID == nil {
		if a.isAny {
			return 0
		}
		return -1
	}
	if q < 0 {
		return -1
	}
	return int(a.stepID[q*a.vocabN+int(id)])
}

// PastVector precomputes Past(q, set) for every state: the returned slice
// is indexed by automaton state, so an on-first handler's firing test is
// one slice load per completed child instead of a per-label CanSee scan.
// The vector is immutable and safe to share across executions.
func (a *Automaton) PastVector(set []string) []bool {
	n := len(a.trans)
	if n == 0 {
		n = 1
	}
	out := make([]bool, n)
	for q := range out {
		out[q] = a.Past(q, set)
	}
	return out
}

// CanSee reports whether, from state q, a child labeled label can still
// occur later in the element. For ANY content every declared label can
// always occur.
func (a *Automaton) CanSee(q int, label string) bool {
	if a.isAny {
		return true
	}
	l, ok := a.labelIdx[label]
	if !ok || q < 0 || q >= len(a.canSee) {
		return false
	}
	return a.canSee[q][l]
}

// Past reports whether, from state q, no child labeled in set can occur
// anymore — the firing condition of an on-first past(set) handler.
func (a *Automaton) Past(q int, set []string) bool {
	for _, s := range set {
		if a.CanSee(q, s) {
			return false
		}
	}
	return true
}

// Transitions returns the outgoing transitions of q as (label, next) pairs
// in sorted label order; used by the random document generator.
func (a *Automaton) Transitions(q int) (labels []string, next []int) {
	if a.isAny || q < 0 || q >= len(a.trans) {
		return nil, nil
	}
	idx := make([]int, 0, len(a.labels))
	for l, t := range a.trans[q] {
		if t >= 0 {
			idx = append(idx, l)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return a.labels[idx[i]] < a.labels[idx[j]] })
	for _, l := range idx {
		labels = append(labels, a.labels[l])
		next = append(next, a.trans[q][l])
	}
	return labels, next
}

// states iterates over reachable states.
func (a *Automaton) reachableStates() []int {
	var out []int
	for q := range a.trans {
		if a.reach[q] {
			out = append(out, q)
		}
	}
	return out
}
