// Package workload catalogues the experiment workloads: the W3C XMP use
// case queries of the paper's domain, XMark-style auction queries, and
// the micro-queries of the paper's §3.1 optimization examples. The bench
// harness (bench_test.go), the fluxbench command and the differential
// test suite all draw from this catalogue so that every experiment runs
// the same code.
package workload

import (
	"io"

	"fluxquery/internal/xmlgen"
)

// Case is one (query, schema, document generator) workload.
type Case struct {
	// Name identifies the case (e.g. "xmp-q3-weak").
	Name string
	// Paper ties the case to its source (use case number or paper
	// section).
	Paper string
	// Query is the XQuery source.
	Query string
	// DTD is the schema source.
	DTD string
	// Gen writes a document of roughly the given size in bytes.
	Gen func(w io.Writer, bytes int64, seed int64) error
	// Join marks inherently buffering (join) workloads.
	Join bool
}

func bibGen(dialect xmlgen.BibDialect) func(io.Writer, int64, int64) error {
	return func(w io.Writer, bytes int64, seed int64) error {
		cfg := xmlgen.BibConfig{Dialect: dialect, Seed: seed}
		cfg.Books = xmlgen.SizedBibBooks(cfg, bytes)
		return xmlgen.WriteBib(w, cfg)
	}
}

func auctionGen(w io.Writer, bytes int64, seed int64) error {
	// Factor 1 is roughly 40 KB.
	return xmlgen.WriteAuction(w, xmlgen.AuctionConfig{Factor: float64(bytes) / 40000, Seed: seed})
}

func storeGen(w io.Writer, bytes int64, seed int64) error {
	// A book plus an entry is roughly 110 bytes.
	n := int(bytes / 110)
	if n < 2 {
		n = 2
	}
	return xmlgen.WriteStore(w, xmlgen.StoreConfig{Books: n / 2, Entries: n / 2, Seed: seed})
}

// Q3 is the paper's running query, W3C XMP use case Q3.
const Q3 = `<results>{
  for $b in $ROOT/bib/book return
    <result>{ $b/title }{ $b/author }</result>
}</results>`

// Cases is the experiment catalogue.
var Cases = []Case{
	{
		Name:  "xmp-q1-strong",
		Paper: "XMP Q1: books by Addison-Wesley after 1991",
		Query: `<bib>{
  for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/@year > 1991
  return <book>{ $b/@year }{ $b/title }</book>
}</bib>`,
		DTD: xmlgen.StrongBibDTD,
		Gen: bibGen(xmlgen.StrongBib),
	},
	{
		Name:  "xmp-q2-weak",
		Paper: "XMP Q2: flat title/author pairs",
		Query: `<results>{
  for $b in $ROOT/bib/book, $t in $b/title, $a in $b/author
  return <result>{ $t }{ $a }</result>
}</results>`,
		DTD: xmlgen.WeakBibDTD,
		Gen: bibGen(xmlgen.WeakBib),
	},
	{
		Name:  "xmp-q3-weak",
		Paper: "XMP Q3 (paper §2), weak DTD: authors buffered per book",
		Query: Q3,
		DTD:   xmlgen.WeakBibDTD,
		Gen:   bibGen(xmlgen.WeakBib),
	},
	{
		Name:  "xmp-q3-strong",
		Paper: "XMP Q3 (paper §2), Figure 1 DTD: fully streaming",
		Query: Q3,
		DTD:   xmlgen.StrongBibDTD,
		Gen:   bibGen(xmlgen.StrongBib),
	},
	{
		Name:  "xmp-q5-join",
		Paper: "XMP Q5: join of books with price-list entries",
		Query: `<books-with-prices>{
  for $b in $ROOT/store/bib/book, $e in $ROOT/store/prices/entry
  where $b/title = $e/title
  return <book-with-prices>{ $b/title }<price-bib>{ $b/price/text() }</price-bib><price-list>{ $e/price/text() }</price-list></book-with-prices>
}</books-with-prices>`,
		DTD:  xmlgen.StoreDTD,
		Gen:  storeGen,
		Join: true,
	},
	{
		Name:  "xmp-q6-weak",
		Paper: "XMP Q6-style: books with more than one listed author element (conditional output)",
		Query: `<results>{
  for $b in $ROOT/bib/book
  return { if (exists($b/author)) then <book>{ $b/title }{ $b/author }</book> else () }
}</results>`,
		DTD: xmlgen.WeakBibDTD,
		Gen: bibGen(xmlgen.WeakBib),
	},
	{
		Name:  "xmp-q4-distinct",
		Paper: "XMP Q4-style: the distinct author names of the bibliography",
		Query: `<authors>{ distinct-values($ROOT/bib/book/author) }</authors>`,
		DTD:   xmlgen.WeakBibDTD,
		Gen:   bibGen(xmlgen.WeakBib),
	},
	{
		Name:  "xmark-q1",
		Paper: "XMark Q1: lookup of one person by id",
		Query: `<result>{
  for $p in $ROOT/site/people/person
  where $p/@id = "person3"
  return { $p/name/text() }
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q8-join",
		Paper: "XMark Q8-style: buyers joined with their person records",
		Query: `<result>{
  for $p in $ROOT/site/people/person, $c in $ROOT/site/closed_auctions/closed_auction
  where $c/buyer = $p/@id
  return <purchase><who>{ $p/name/text() }</who><price>{ $c/price/text() }</price></purchase>
}</result>`,
		DTD:  xmlgen.AuctionDTD,
		Gen:  auctionGen,
		Join: true,
	},
	{
		Name:  "xmark-q13",
		Paper: "XMark Q13: item listing with description copy",
		Query: `<result>{
  for $i in $ROOT/site/items/item
  return <item-info>{ $i/name }{ $i/description }</item-info>
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q2-bidders",
		Paper: "XMark Q2-style: first/current bid extraction per open auction",
		Query: `<result>{
  for $a in $ROOT/site/open_auctions/open_auction
  return <auction><start>{ $a/initial/text() }</start><now>{ $a/current/text() }</now></auction>
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q17-nophone",
		Paper: "XMark Q17-style: people listed with a conditional phone check",
		Query: `<result>{
  for $p in $ROOT/site/people/person
  return { if (exists($p/phone)) then () else <nophone>{ $p/name/text() }</nophone> }
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q20-cities",
		Paper: "XMark Q20-style: city of every person that lists one",
		Query: `<cities>{
  for $p in $ROOT/site/people/person, $c in $p/city
  return <c>{ $c/text() }</c>
}</cities>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q4-sellers",
		Paper: "XMark Q4-style: seller and item reference of every open auction",
		Query: `<result>{
  for $a in $ROOT/site/open_auctions/open_auction
  return <offer><by>{ $a/seller/text() }</by><of>{ $a/itemref/text() }</of></offer>
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "xmark-q11-bids",
		Paper: "XMark Q11-style: the bid history of every open auction",
		Query: `<result>{
  for $a in $ROOT/site/open_auctions/open_auction
  return <history>{ for $b in $a/bidder return <bid>{ $b/increase/text() }</bid> }</history>
}</result>`,
		DTD: xmlgen.AuctionDTD,
		Gen: auctionGen,
	},
	{
		Name:  "paper-loop-merge",
		Paper: "paper §3.1: two consecutive loops over $book/publisher",
		Query: `<results>{
  for $b in $ROOT/bib/book return
    <r>{ for $x in $b/publisher return <p1>{ $x/text() }</p1> }{ for $y in $b/publisher return <p2>{ $y/text() }</p2> }</r>
}</results>`,
		DTD: xmlgen.StrongBibDTD,
		Gen: bibGen(xmlgen.StrongBib),
	},
	{
		Name:  "bdf-projection",
		Paper: "paper §3.2: BDF buffers only the paths the query employs (vs [10])",
		Query: `<results>{
  for $b in $ROOT/bib/book return
    <r>{ $b/title }{ for $i in $b/info return <isbn>{ $i/isbn/text() }</isbn> }</r>
}</results>`,
		DTD: xmlgen.InfoBibDTD,
		Gen: func(w io.Writer, bytes int64, seed int64) error {
			cfg := xmlgen.InfoBibConfig{Seed: seed}
			cfg.Books = xmlgen.SizedInfoBibBooks(cfg, bytes)
			return xmlgen.WriteInfoBib(w, cfg)
		},
	},
	{
		Name:  "paper-conflict",
		Paper: "paper §3.1: unsatisfiable author+editor conditional",
		Query: `<results>{
  for $b in $ROOT/bib/book return
    { if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit>{ $b/title }</hit> else () }
}</results>`,
		DTD: xmlgen.StrongBibDTD,
		Gen: bibGen(xmlgen.StrongBib),
	},
}

// ByName returns the named case, or nil.
func ByName(name string) *Case {
	for i := range Cases {
		if Cases[i].Name == name {
			return &Cases[i]
		}
	}
	return nil
}
