// Package nf rewrites queries of the supported XQuery fragment into the
// normal form on which the FluXQuery optimizer and scheduler operate
// (paper §3.1, first step).
//
// Normal-form invariants:
//
//  1. every for-expression binds exactly one variable, has no let clause
//     and no where clause (where C return R becomes return if (C) then R);
//  2. every for-in path has exactly one child step, so loops mirror the
//     parent/child structure that process-stream handlers traverse;
//  3. let-bound variables are inlined (they bind paths, which the fragment
//     treats as pure);
//  4. in output position, a bare path is expanded into an explicit loop
//     over its element steps: { $b/title } becomes
//     for $v in $b/title return $v, making node copies explicit. Paths
//     ending in text() or an attribute step remain as atomic (string)
//     emissions over a single variable;
//  5. conditions keep their paths intact — they are evaluated over
//     buffered data and never drive stream traversal directly.
package nf

import (
	"fmt"
	"strconv"
	"strings"

	"fluxquery/internal/xquery"
)

// Error reports a query outside the normalizable fragment.
type Error struct{ Msg string }

func (e *Error) Error() string { return "normalize: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Normalize rewrites e into normal form.
func Normalize(e xquery.Expr) (xquery.Expr, error) {
	n := &normalizer{used: map[string]bool{}}
	xquery.Walk(e, func(x xquery.Expr) bool {
		switch t := x.(type) {
		case xquery.For:
			for _, b := range t.Bindings {
				n.used[b.Var] = true
			}
			for _, b := range t.Lets {
				n.used[b.Var] = true
			}
		case xquery.Let:
			for _, b := range t.Bindings {
				n.used[b.Var] = true
			}
		case xquery.Path:
			n.used[t.Var] = true
		}
		return true
	})
	return n.output(e)
}

// MustNormalize panics on error; for tests and fixed queries.
func MustNormalize(e xquery.Expr) xquery.Expr {
	out, err := Normalize(e)
	if err != nil {
		panic(err)
	}
	return out
}

type normalizer struct {
	used map[string]bool
	next int
}

// fresh returns a variable name unused in the query.
func (n *normalizer) fresh() string {
	for {
		n.next++
		v := "v" + strconv.Itoa(n.next)
		if !n.used[v] {
			n.used[v] = true
			return v
		}
	}
}

// output normalizes an expression in output position.
func (n *normalizer) output(e xquery.Expr) (xquery.Expr, error) {
	switch t := e.(type) {
	case nil:
		return nil, nil
	case xquery.Text, xquery.Str, xquery.Num, xquery.EmptySeq:
		return t, nil
	case xquery.Seq:
		items := make([]xquery.Expr, 0, len(t.Items))
		for _, it := range t.Items {
			o, err := n.output(it)
			if err != nil {
				return nil, err
			}
			if _, empty := o.(xquery.EmptySeq); empty {
				continue
			}
			if s, ok := o.(xquery.Seq); ok {
				items = append(items, s.Items...)
				continue
			}
			items = append(items, o)
		}
		switch len(items) {
		case 0:
			return xquery.EmptySeq{}, nil
		case 1:
			return items[0], nil
		default:
			return xquery.Seq{Items: items}, nil
		}
	case xquery.Elem:
		out := xquery.Elem{Name: t.Name, Attrs: t.Attrs}
		for _, c := range t.Children {
			o, err := n.output(c)
			if err != nil {
				return nil, err
			}
			if _, empty := o.(xquery.EmptySeq); empty {
				continue
			}
			if s, ok := o.(xquery.Seq); ok {
				out.Children = append(out.Children, s.Items...)
				continue
			}
			out.Children = append(out.Children, o)
		}
		return out, nil
	case xquery.Path:
		return n.outputPath(t)
	case xquery.Let:
		body := t.Body
		for i := len(t.Bindings) - 1; i >= 0; i-- {
			b := t.Bindings[i]
			var err error
			body, err = substitute(body, b.Var, b.In)
			if err != nil {
				return nil, err
			}
		}
		return n.output(body)
	case xquery.If:
		cond, err := n.cond(t.Cond)
		if err != nil {
			return nil, err
		}
		then, err := n.output(t.Then)
		if err != nil {
			return nil, err
		}
		els, err := n.output(t.Else)
		if err != nil {
			return nil, err
		}
		if _, empty := els.(xquery.EmptySeq); empty {
			els = nil
		}
		return xquery.If{Cond: cond, Then: then, Else: els}, nil
	case xquery.For:
		return n.forExpr(t)
	case xquery.Call:
		return n.call(t)
	case xquery.Cmp, xquery.And, xquery.Or:
		// A boolean in output position: emit its effective boolean value
		// as text, expressed as a conditional.
		cond, err := n.cond(t)
		if err != nil {
			return nil, err
		}
		return xquery.If{Cond: cond, Then: xquery.Text{Data: "true"}, Else: xquery.Text{Data: "false"}}, nil
	default:
		return nil, errf("unsupported expression %T in output position", e)
	}
}

// outputPath expands a path in output position per invariant 4.
func (n *normalizer) outputPath(p xquery.Path) (xquery.Expr, error) {
	// Split leading child steps from a trailing atomic step.
	atomicAt := -1
	for i, s := range p.Steps {
		if s.Axis != xquery.Child {
			if i != len(p.Steps)-1 {
				return nil, errf("step %s may only appear last in path %s", s, p)
			}
			atomicAt = i
		}
	}
	childSteps := p.Steps
	var atomic *xquery.Step
	if atomicAt >= 0 {
		st := p.Steps[atomicAt]
		atomic = &st
		childSteps = p.Steps[:atomicAt]
	}
	// Innermost expression: a node copy ($v) or an atomic emission
	// ($v/text(), $v/@a).
	v := p.Var
	var wrap func(inner xquery.Expr) xquery.Expr = func(inner xquery.Expr) xquery.Expr { return inner }
	for _, s := range childSteps {
		fv := n.fresh()
		outerV, step := v, s
		prev := wrap
		wrap = func(inner xquery.Expr) xquery.Expr {
			return prev(xquery.For{
				Bindings: []xquery.Binding{{Var: fv, In: xquery.Path{Var: outerV, Steps: []xquery.Step{step}}}},
				Return:   inner,
			})
		}
		v = fv
	}
	var innermost xquery.Expr
	if atomic != nil {
		innermost = xquery.Path{Var: v, Steps: []xquery.Step{*atomic}}
	} else {
		innermost = xquery.Path{Var: v}
	}
	return wrap(innermost), nil
}

// forExpr normalizes a FLWOR per invariants 1-3.
func (n *normalizer) forExpr(f xquery.For) (xquery.Expr, error) {
	body := f.Return
	// where C return R  =>  return if (C) then R.
	if f.Where != nil {
		body = xquery.If{Cond: f.Where, Then: body}
	}
	// Inline lets, innermost first.
	for i := len(f.Lets) - 1; i >= 0; i-- {
		b := f.Lets[i]
		var err error
		body, err = substitute(body, b.Var, b.In)
		if err != nil {
			return nil, err
		}
	}
	// Nested bindings, innermost first.
	expr := body
	for i := len(f.Bindings) - 1; i >= 0; i-- {
		b := f.Bindings[i]
		steps := b.In.Steps
		if len(steps) == 0 {
			// for $x in $y: a pure alias.
			var err error
			expr, err = substitute(expr, b.Var, b.In)
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, s := range steps {
			if s.Axis != xquery.Child {
				return nil, errf("cannot iterate %s in for $%s", s, b.Var)
			}
		}
		// Decompose multi-step paths: iterate outer steps via fresh vars.
		v := b.In.Var
		var chain []xquery.Binding
		for _, s := range steps[:len(steps)-1] {
			fv := n.fresh()
			chain = append(chain, xquery.Binding{Var: fv, In: xquery.Path{Var: v, Steps: []xquery.Step{s}}})
			v = fv
		}
		chain = append(chain, xquery.Binding{Var: b.Var, In: xquery.Path{Var: v, Steps: []xquery.Step{steps[len(steps)-1]}}})
		for i := len(chain) - 1; i >= 0; i-- {
			expr = xquery.For{Bindings: []xquery.Binding{chain[i]}, Return: expr}
		}
	}
	// The outer shell is already a For; normalize its body now. expr is
	// For{...For{body}}; normalize bodies bottom-up by re-walking.
	return n.normalizeForChain(expr)
}

// normalizeForChain normalizes the bodies of the nested single-binding
// loops produced by forExpr.
func (n *normalizer) normalizeForChain(e xquery.Expr) (xquery.Expr, error) {
	f, ok := e.(xquery.For)
	if !ok {
		return n.output(e)
	}
	inner, err := n.normalizeForChain(f.Return)
	if err != nil {
		return nil, err
	}
	return xquery.For{Bindings: f.Bindings, Return: inner}, nil
}

// call normalizes a function call in output position.
func (n *normalizer) call(c xquery.Call) (xquery.Expr, error) {
	switch c.Name {
	case "data", "string", "concat", "distinct-values":
		// Evaluated over buffers; keep argument paths intact.
		return c, nil
	case "true":
		return xquery.Text{Data: "true"}, nil
	case "false":
		return xquery.Text{Data: "false"}, nil
	default:
		return nil, errf("function %s() not allowed in output position", c.Name)
	}
}

// cond normalizes a condition: boolean structure is preserved, path
// operands are untouched.
func (n *normalizer) cond(e xquery.Expr) (xquery.Expr, error) {
	switch t := e.(type) {
	case xquery.And:
		l, err := n.cond(t.L)
		if err != nil {
			return nil, err
		}
		r, err := n.cond(t.R)
		if err != nil {
			return nil, err
		}
		return xquery.And{L: l, R: r}, nil
	case xquery.Or:
		l, err := n.cond(t.L)
		if err != nil {
			return nil, err
		}
		r, err := n.cond(t.R)
		if err != nil {
			return nil, err
		}
		return xquery.Or{L: l, R: r}, nil
	case xquery.Cmp:
		if err := checkOperand(t.L); err != nil {
			return nil, err
		}
		if err := checkOperand(t.R); err != nil {
			return nil, err
		}
		return t, nil
	case xquery.Call:
		switch t.Name {
		case "exists", "empty", "not", "true", "false":
			if t.Name == "not" {
				inner, err := n.cond(t.Args[0])
				if err != nil {
					return nil, err
				}
				return xquery.Call{Name: "not", Args: []xquery.Expr{inner}}, nil
			}
			return t, nil
		default:
			return nil, errf("function %s() is not a condition", t.Name)
		}
	case xquery.Path:
		// Existential test: a bare path is true iff non-empty.
		return xquery.Call{Name: "exists", Args: []xquery.Expr{t}}, nil
	default:
		return nil, errf("unsupported condition %T", e)
	}
}

func checkOperand(e xquery.Expr) error {
	switch t := e.(type) {
	case xquery.Path, xquery.Str, xquery.Num:
		return nil
	case xquery.Call:
		if t.Name == "data" || t.Name == "string" {
			return nil
		}
		return errf("call %s() not allowed as comparison operand", t.Name)
	default:
		return errf("unsupported comparison operand %T", e)
	}
}

// Substitute replaces free occurrences of $v with the path p (appending
// any further steps of the occurrence). It is used here for let-inlining
// and by the optimizer for capture-safe variable renaming.
func Substitute(e xquery.Expr, v string, p xquery.Path) (xquery.Expr, error) {
	return substitute(e, v, p)
}

// substitute replaces free occurrences of $v with the path p (appending
// any further steps of the occurrence).
func substitute(e xquery.Expr, v string, p xquery.Path) (xquery.Expr, error) {
	switch t := e.(type) {
	case nil:
		return nil, nil
	case xquery.Path:
		if t.Var != v {
			return t, nil
		}
		if len(t.Steps) > 0 && len(p.Steps) > 0 && p.Steps[len(p.Steps)-1].Axis != xquery.Child {
			return nil, errf("cannot extend atomic path $%s%s with /%s", p.Var, stepsString(p.Steps), t.Steps[0])
		}
		return xquery.Path{Var: p.Var, Steps: append(append([]xquery.Step(nil), p.Steps...), t.Steps...)}, nil
	case xquery.Seq:
		items := make([]xquery.Expr, len(t.Items))
		for i, c := range t.Items {
			o, err := substitute(c, v, p)
			if err != nil {
				return nil, err
			}
			items[i] = o
		}
		return xquery.Seq{Items: items}, nil
	case xquery.Elem:
		out := xquery.Elem{Name: t.Name, Attrs: t.Attrs, Children: make([]xquery.Expr, len(t.Children))}
		for i, c := range t.Children {
			o, err := substitute(c, v, p)
			if err != nil {
				return nil, err
			}
			out.Children[i] = o
		}
		return out, nil
	case xquery.For:
		out := t
		out.Bindings = append([]xquery.Binding(nil), t.Bindings...)
		shadowed := false
		for i, b := range out.Bindings {
			in, err := substitute(b.In, v, p)
			if err != nil {
				return nil, err
			}
			out.Bindings[i].In = in.(xquery.Path)
			if b.Var == v {
				shadowed = true
			}
		}
		out.Lets = append([]xquery.Binding(nil), t.Lets...)
		for i, b := range out.Lets {
			if shadowed {
				break
			}
			in, err := substitute(b.In, v, p)
			if err != nil {
				return nil, err
			}
			out.Lets[i].In = in.(xquery.Path)
			if b.Var == v {
				shadowed = true
			}
		}
		if shadowed {
			return out, nil
		}
		if t.Where != nil {
			w, err := substitute(t.Where, v, p)
			if err != nil {
				return nil, err
			}
			out.Where = w
		}
		r, err := substitute(t.Return, v, p)
		if err != nil {
			return nil, err
		}
		out.Return = r
		return out, nil
	case xquery.Let:
		out := t
		out.Bindings = append([]xquery.Binding(nil), t.Bindings...)
		shadowed := false
		for i, b := range out.Bindings {
			if shadowed {
				break
			}
			in, err := substitute(b.In, v, p)
			if err != nil {
				return nil, err
			}
			out.Bindings[i].In = in.(xquery.Path)
			if b.Var == v {
				shadowed = true
			}
		}
		if shadowed {
			return out, nil
		}
		b, err := substitute(t.Body, v, p)
		if err != nil {
			return nil, err
		}
		out.Body = b
		return out, nil
	case xquery.If:
		c, err := substitute(t.Cond, v, p)
		if err != nil {
			return nil, err
		}
		th, err := substitute(t.Then, v, p)
		if err != nil {
			return nil, err
		}
		el, err := substitute(t.Else, v, p)
		if err != nil {
			return nil, err
		}
		return xquery.If{Cond: c, Then: th, Else: el}, nil
	case xquery.And:
		l, err := substitute(t.L, v, p)
		if err != nil {
			return nil, err
		}
		r, err := substitute(t.R, v, p)
		if err != nil {
			return nil, err
		}
		return xquery.And{L: l, R: r}, nil
	case xquery.Or:
		l, err := substitute(t.L, v, p)
		if err != nil {
			return nil, err
		}
		r, err := substitute(t.R, v, p)
		if err != nil {
			return nil, err
		}
		return xquery.Or{L: l, R: r}, nil
	case xquery.Cmp:
		l, err := substitute(t.L, v, p)
		if err != nil {
			return nil, err
		}
		r, err := substitute(t.R, v, p)
		if err != nil {
			return nil, err
		}
		return xquery.Cmp{Op: t.Op, L: l, R: r}, nil
	case xquery.Call:
		out := xquery.Call{Name: t.Name, Args: make([]xquery.Expr, len(t.Args))}
		for i, a := range t.Args {
			o, err := substitute(a, v, p)
			if err != nil {
				return nil, err
			}
			out.Args[i] = o
		}
		return out, nil
	default:
		return t, nil
	}
}

func stepsString(steps []xquery.Step) string {
	var b strings.Builder
	for _, s := range steps {
		b.WriteByte('/')
		b.WriteString(s.String())
	}
	return b.String()
}

// IsNormal reports whether e satisfies the normal-form invariants; it
// backs tests and internal assertions.
func IsNormal(e xquery.Expr) bool {
	ok := true
	xquery.Walk(e, func(x xquery.Expr) bool {
		switch t := x.(type) {
		case xquery.For:
			if len(t.Bindings) != 1 || len(t.Lets) != 0 || t.Where != nil {
				ok = false
			} else if len(t.Bindings[0].In.Steps) != 1 || t.Bindings[0].In.Steps[0].Axis != xquery.Child {
				ok = false
			}
		case xquery.Let:
			ok = false
		}
		return ok
	})
	return ok
}
