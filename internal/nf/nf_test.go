package nf

import (
	"strings"
	"testing"

	"fluxquery/internal/xquery"
)

func norm(t *testing.T, src string) xquery.Expr {
	t.Helper()
	e, err := Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	if !IsNormal(e) {
		t.Fatalf("result not in normal form: %s", e)
	}
	return e
}

func TestNormalizeQ3(t *testing.T) {
	e := norm(t, `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`)
	s := e.String()
	// The multi-step binding becomes two nested loops, and the bare paths
	// become explicit copy loops.
	for _, want := range []string{
		"in $ROOT/bib", "/book", "in $b/title", "in $b/author",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("normalized Q3 missing %q:\n%s", want, s)
		}
	}
}

func TestWhereBecomesIf(t *testing.T) {
	e := norm(t, `for $b in $d/book where $b/publisher = "AW" return { $b/title }`)
	f := e.(xquery.For)
	ife, ok := f.Return.(xquery.If)
	if !ok {
		t.Fatalf("body = %s", f.Return)
	}
	if _, ok := ife.Cond.(xquery.Cmp); !ok {
		t.Fatalf("cond = %s", ife.Cond)
	}
	if ife.Else != nil {
		t.Error("where-if must have empty else")
	}
}

func TestMultiVarFor(t *testing.T) {
	e := norm(t, `for $a in $d/x, $b in $a/y return <p>{ $b }</p>`)
	outer := e.(xquery.For)
	if outer.Bindings[0].Var != "a" {
		t.Fatalf("outer = %+v", outer.Bindings)
	}
	inner, ok := outer.Return.(xquery.For)
	if !ok || inner.Bindings[0].Var != "b" {
		t.Fatalf("inner = %s", outer.Return)
	}
}

func TestMultiStepPathDecomposed(t *testing.T) {
	e := norm(t, `for $x in $ROOT/a/b/c return { $x }`)
	// Expect three nested loops: fresh over a, fresh over b, x over c.
	depth := 0
	cur := e
	for {
		f, ok := cur.(xquery.For)
		if !ok {
			break
		}
		if len(f.Bindings[0].In.Steps) != 1 {
			t.Fatalf("binding not single-step: %s", f.Bindings[0].In)
		}
		depth++
		cur = f.Return
	}
	if depth != 3 {
		t.Errorf("depth = %d, want 3:\n%s", depth, e)
	}
}

func TestLetInlined(t *testing.T) {
	e := norm(t, `for $b in $d/book let $t := $b/title return <r>{ $t }</r>`)
	s := e.String()
	if strings.Contains(s, "let") {
		t.Errorf("let not inlined: %s", s)
	}
	if !strings.Contains(s, "$b/title") {
		t.Errorf("substitution lost path: %s", s)
	}
}

func TestStandaloneLet(t *testing.T) {
	e := norm(t, `let $t := $b/title return <r>{ $t/text() }</r>`)
	s := e.String()
	if strings.Contains(s, "let") {
		t.Errorf("let survived: %s", s)
	}
	if !strings.Contains(s, "$b/title") {
		t.Errorf("missing inlined path: %s", s)
	}
}

func TestLetShadowedByFor(t *testing.T) {
	// The inner for rebinds $t; the let must not substitute inside.
	e := norm(t, `let $t := $b/title return for $t in $d/other return { $t }`)
	f := e.(xquery.For)
	if f.Bindings[0].In.String() != "$d/other" {
		t.Fatalf("binding = %s", f.Bindings[0].In)
	}
	inner := f.Return.(xquery.Path)
	if inner.Var != "t" || len(inner.Steps) != 0 {
		t.Fatalf("inner = %s", inner)
	}
}

func TestBarePathBecomesCopyLoop(t *testing.T) {
	e := norm(t, `<r>{ $b/author }</r>`)
	f := e.(xquery.Elem).Children[0].(xquery.For)
	if f.Bindings[0].In.String() != "$b/author" {
		t.Fatalf("binding = %s", f.Bindings[0].In)
	}
	p := f.Return.(xquery.Path)
	if len(p.Steps) != 0 {
		t.Fatalf("copy body = %s", p)
	}
}

func TestAtomicPathsStayAtomic(t *testing.T) {
	e := norm(t, `<r>{ $b/title/text() }{ $b/@year }</r>`)
	kids := e.(xquery.Elem).Children
	f := kids[0].(xquery.For) // loop over title
	p := f.Return.(xquery.Path)
	if len(p.Steps) != 1 || p.Steps[0].Axis != xquery.TextAxis {
		t.Fatalf("text emission = %s", p)
	}
	attr := kids[1].(xquery.Path)
	if len(attr.Steps) != 1 || attr.Steps[0].Axis != xquery.Attribute {
		t.Fatalf("attr emission = %s", attr)
	}
}

func TestConditionPathsKeptIntact(t *testing.T) {
	e := norm(t, `for $b in $d/book where $b/a/deep = "x" return { $b/title }`)
	s := e.String()
	if !strings.Contains(s, "$b/a/deep = ") {
		t.Errorf("condition path decomposed: %s", s)
	}
}

func TestBarePathConditionBecomesExists(t *testing.T) {
	e := norm(t, `for $b in $d/book where $b/author return { $b/title }`)
	ife := e.(xquery.For).Return.(xquery.If)
	c, ok := ife.Cond.(xquery.Call)
	if !ok || c.Name != "exists" {
		t.Fatalf("cond = %s", ife.Cond)
	}
}

func TestSeqFlattening(t *testing.T) {
	e := norm(t, `<r>{ ($a/x, ($a/y, $a/z)) }</r>`)
	kids := e.(xquery.Elem).Children
	if len(kids) != 3 {
		t.Fatalf("children = %d: %s", len(kids), e)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		`<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`,
		`for $b in $d/book where $b/p = "x" return <r>{ $b/t/text() }</r>`,
		`if (exists($b/a)) then { $b/a } else <none/>`,
	}
	for _, src := range srcs {
		once := norm(t, src)
		twice, err := Normalize(once)
		if err != nil {
			t.Fatalf("re-normalize: %v", err)
		}
		if !xquery.Equal(once, twice) {
			t.Errorf("not idempotent:\n1: %s\n2: %s", once, twice)
		}
	}
}

func TestFreshVarsAvoidCollision(t *testing.T) {
	// User already uses v1; fresh vars must not collide.
	e := norm(t, `for $v1 in $ROOT/a/b return { $v1 }`)
	f := e.(xquery.For)
	if f.Bindings[0].Var == "v1" && f.Return.(xquery.For).Bindings[0].Var == "v1" {
		t.Fatalf("collision: %s", e)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"iterate attribute", `for $x in $b/@year return { $x }`},
		{"iterate text", `for $x in $b/title/text() return { $x }`},
		{"atomic mid-path", `{ $b/@year/x }`},
		{"let atomic extended", `let $t := $b/title/text() return { $t/x }`},
	}
	for _, c := range cases {
		if _, err := Normalize(xquery.MustParse(c.src)); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestBooleanInOutputPosition(t *testing.T) {
	e := norm(t, `<r>{ $a/x = "1" }</r>`)
	ife, ok := e.(xquery.Elem).Children[0].(xquery.If)
	if !ok {
		t.Fatalf("got %s", e)
	}
	if ife.Then.(xquery.Text).Data != "true" {
		t.Fatalf("then = %s", ife.Then)
	}
}
