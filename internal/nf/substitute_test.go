package nf

import (
	"strings"
	"testing"

	"fluxquery/internal/xquery"
)

func sub(t *testing.T, src, v, path string) string {
	t.Helper()
	p := xquery.MustParse(path).(xquery.Path)
	out, err := Substitute(xquery.MustParse(src), v, p)
	if err != nil {
		t.Fatalf("substitute: %v", err)
	}
	return out.String()
}

func TestSubstituteIntoConditions(t *testing.T) {
	got := sub(t, `if ($x/a = "1" and exists($x/b) or not($x/c = "2")) then { $x/d } else { $x/e }`, "x", "$b/t")
	for _, want := range []string{"$b/t/a", "$b/t/b", "$b/t/c", "$b/t/d", "$b/t/e"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %s in %s", want, got)
		}
	}
	if strings.Contains(got, "$x") {
		t.Errorf("unsubstituted occurrence in %s", got)
	}
}

func TestSubstituteIntoCallsAndSeq(t *testing.T) {
	got := sub(t, `<r>{ concat("a", data($x/p)), $x/q }</r>`, "x", "$y")
	if !strings.Contains(got, "$y/p") || !strings.Contains(got, "$y/q") {
		t.Errorf("got %s", got)
	}
}

func TestSubstituteRespectsForShadowing(t *testing.T) {
	// The outer $x in the binding path is substituted; the body's $x is
	// the loop variable and must stay.
	got := sub(t, `for $x in $x/items return { $x/name }`, "x", "$root")
	if !strings.Contains(got, "in $root/items") {
		t.Errorf("binding path not substituted: %s", got)
	}
	if !strings.Contains(got, "{ $x/name }") && !strings.Contains(got, "$x/name") {
		t.Errorf("shadowed body wrongly substituted: %s", got)
	}
}

func TestSubstituteRespectsLetShadowing(t *testing.T) {
	got := sub(t, `let $x := $x/sub return { $x/leaf }`, "x", "$r")
	if !strings.Contains(got, ":= $r/sub") {
		t.Errorf("let binding not substituted: %s", got)
	}
	if strings.Contains(got, "$r/leaf") {
		t.Errorf("shadowed body wrongly substituted: %s", got)
	}
}

func TestSubstituteExtendsAtomicPathFails(t *testing.T) {
	p := xquery.Path{Var: "b", Steps: []xquery.Step{{Axis: xquery.Attribute, Name: "year"}}}
	_, err := Substitute(xquery.MustParse(`{ $x/more }`), "x", p)
	if err == nil {
		t.Error("extending an attribute path must fail")
	}
}

func TestNormalizeNestedConstructors(t *testing.T) {
	e := norm(t, `<a><b>{ for $x in $d/p return <c>{ $x/q/text() }</c> }</b><e>static</e></a>`)
	s := e.String()
	if !strings.Contains(s, "<e>static</e>") {
		t.Errorf("static constructor lost: %s", s)
	}
	if !nfIsNormalString(s) {
		t.Errorf("not reparsable-normal: %s", s)
	}
}

func nfIsNormalString(s string) bool {
	e, err := xquery.Parse(s)
	if err != nil {
		return false
	}
	return IsNormal(e)
}

func TestNormalizeEmptyThenBranch(t *testing.T) {
	e := norm(t, `for $b in $d/book return { if ($b/x = "1") then () else <e/> }`)
	ife := e.(xquery.For).Return.(xquery.If)
	if _, ok := ife.Then.(xquery.EmptySeq); !ok {
		t.Errorf("then = %#v", ife.Then)
	}
	if ife.Else == nil {
		t.Error("else lost")
	}
}

func TestNormalizeDistinctValuesKept(t *testing.T) {
	e := norm(t, `<a>{ distinct-values($d/book/author) }</a>`)
	if !strings.Contains(e.String(), "distinct-values($d/book/author)") {
		t.Errorf("got %s", e)
	}
}

func TestNormalizeConditionErrors(t *testing.T) {
	cases := []string{
		`for $b in $d/x where concat("a","b") return <r/>`, // call operand
		`for $b in $d/x where 1 return <r/>`,               // numeric condition
		`for $b in $d/x where <a/> = "1" return <r/>`,      // constructor operand
	}
	for _, src := range cases {
		if _, err := Normalize(xquery.MustParse(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestIsNormalRejectsRawForms(t *testing.T) {
	raw := []string{
		`for $a in $d/x, $b in $d/y return <r/>`,
		`for $a in $d/x let $t := $a/b return <r/>`,
		`for $a in $d/x where $a/y = "1" return <r/>`,
		`for $a in $d/x/y return <r/>`,
		`let $a := $d/x return <r/>`,
	}
	for _, src := range raw {
		if IsNormal(xquery.MustParse(src)) {
			t.Errorf("IsNormal accepted %q", src)
		}
	}
}
