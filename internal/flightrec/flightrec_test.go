package flightrec

import (
	"bytes"
	"fmt"
	"log/slog"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxquery/internal/telemetry"
)

// TestRingWrapAround is the wrap-around property test: for randomized
// ring capacities and record counts, the recorder retains exactly the
// most recent min(cap, n) records in most-recent-first order, Total
// counts every deposit, and Get resolves exactly the retained ids.
func TestRingWrapAround(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(32)
		n := rng.Intn(4 * capacity)
		rec := New(Config{Size: capacity})
		for i := 1; i <= n; i++ {
			rec.Record(Record{PassID: uint64(i), InputBytes: int64(i)})
		}
		want := n
		if want > capacity {
			want = capacity
		}
		if rec.Len() != want || rec.Cap() != capacity || rec.Total() != uint64(n) {
			t.Fatalf("cap=%d n=%d: Len=%d Cap=%d Total=%d, want %d/%d/%d",
				capacity, n, rec.Len(), rec.Cap(), rec.Total(), want, capacity, n)
		}
		snap := rec.Snapshot(0)
		if len(snap) != want {
			t.Fatalf("cap=%d n=%d: snapshot has %d records, want %d", capacity, n, len(snap), want)
		}
		for i, r := range snap {
			if wantID := uint64(n - i); r.PassID != wantID {
				t.Fatalf("cap=%d n=%d: snapshot[%d].PassID = %d, want %d", capacity, n, i, r.PassID, wantID)
			}
		}
		// Every retained id resolves; every overwritten id does not.
		for id := 1; id <= n; id++ {
			r, ok := rec.Get(uint64(id))
			retained := id > n-want
			if ok != retained {
				t.Fatalf("cap=%d n=%d: Get(%d) ok=%v, want %v", capacity, n, id, ok, retained)
			}
			if ok && r.InputBytes != int64(id) {
				t.Fatalf("Get(%d) returned record with InputBytes %d", id, r.InputBytes)
			}
		}
		// A bounded Snapshot takes the most recent prefix.
		if want >= 2 {
			top := rec.Snapshot(2)
			if len(top) != 2 || top[0].PassID != uint64(n) || top[1].PassID != uint64(n-1) {
				t.Fatalf("Snapshot(2) = %v", top)
			}
		}
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *Recorder
	rec.Record(Record{PassID: 1})
	if rec.Len() != 0 || rec.Cap() != 0 || rec.Total() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if s := rec.Snapshot(5); s != nil {
		t.Fatalf("nil Snapshot = %v", s)
	}
	if _, ok := rec.Get(1); ok {
		t.Fatal("nil Get found a record")
	}
	if ru := rec.Rollup(time.Minute); ru.Passes != 0 {
		t.Fatalf("nil Rollup = %+v", ru)
	}
	if rec.CapturesSlow() {
		t.Fatal("nil recorder captures slow passes")
	}
}

// TestRollupWindows: records outside the lookback window are excluded,
// and the percentiles are nearest-rank over the matching durations.
func TestRollupWindows(t *testing.T) {
	rec := New(Config{Size: 64})
	now := time.Now()
	// 10 old passes (ended 10 minutes ago) and 4 recent ones.
	for i := 0; i < 10; i++ {
		rec.Record(Record{
			PassID:   uint64(i + 1),
			Start:    now.Add(-10 * time.Minute),
			Duration: time.Second,
		})
	}
	recent := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond}
	for i, d := range recent {
		rec.Record(Record{
			PassID:     uint64(100 + i),
			Start:      now.Add(-time.Second),
			Duration:   d,
			InputBytes: 1 << 20,
			Err:        map[bool]string{true: "boom", false: ""}[i == 0],
		})
	}
	ru := rec.RollupAt(time.Minute, now)
	if ru.Passes != 4 || ru.Errors != 1 {
		t.Fatalf("windowed rollup = %+v, want 4 passes 1 error", ru)
	}
	if ru.InputBytes != 4<<20 {
		t.Fatalf("InputBytes = %d", ru.InputBytes)
	}
	// Nearest-rank over [10,20,30,40]ms: p50=20ms, p95=p99=max=40ms.
	if ru.P50 != 20*time.Millisecond || ru.P95 != 40*time.Millisecond || ru.P99 != 40*time.Millisecond || ru.Max != 40*time.Millisecond {
		t.Fatalf("quantiles = p50=%v p95=%v p99=%v max=%v", ru.P50, ru.P95, ru.P99, ru.Max)
	}
	// 4 MiB over 100ms of pass time = 40 MiB/s.
	if ru.MBps < 39 || ru.MBps > 41 {
		t.Fatalf("MBps = %f, want ~40", ru.MBps)
	}
	all := rec.RollupAt(0, now)
	if all.Passes != 14 {
		t.Fatalf("since-start rollup covers %d passes, want 14", all.Passes)
	}
	if all.P99 != time.Second || all.P50 != time.Second {
		t.Fatalf("since-start quantiles = %+v", all)
	}
}

// TestSlowPassCapture: a pass over the latency threshold keeps its span
// tree and is dumped through the logger with its request id; a fast pass
// has the trace dropped and stays silent.
func TestSlowPassCapture(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	rec := New(Config{Size: 8, SlowLatency: 100 * time.Millisecond, Logger: logger})
	if !rec.CapturesSlow() {
		t.Fatal("CapturesSlow = false with a latency threshold set")
	}

	mkTrace := func(id string) *telemetry.Trace {
		tr := telemetry.NewTrace(id)
		tr.Span().Child("scan").AddTime(time.Millisecond)
		tr.End()
		return tr
	}

	rec.Record(Record{PassID: 1, RequestID: "fast-1", Duration: time.Millisecond, Trace: mkTrace("fast-1")})
	if buf.Len() != 0 {
		t.Fatalf("fast pass logged: %s", buf.String())
	}
	r, ok := rec.Get(1)
	if !ok || r.Slow || r.Trace != nil {
		t.Fatalf("fast record = slow=%v trace=%v", r.Slow, r.Trace)
	}

	rec.Record(Record{PassID: 2, RequestID: "req-slow", Duration: time.Second, Trace: mkTrace("req-slow")})
	r, ok = rec.Get(2)
	if !ok || !r.Slow || r.Trace == nil {
		t.Fatalf("slow record = ok=%v slow=%v trace=%v", ok, r.Slow, r.Trace)
	}
	out := buf.String()
	for _, want := range []string{"slow pass", "req-slow", "pass_id=2", "scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow dump missing %q:\n%s", want, out)
		}
	}
}

// TestSlowStallThreshold: the stall trigger fires independently of the
// latency trigger.
func TestSlowStallThreshold(t *testing.T) {
	rec := New(Config{Size: 8, SlowStall: 50 * time.Millisecond, Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))})
	rec.Record(Record{PassID: 1, Duration: time.Millisecond, GateStall: 40 * time.Millisecond})
	rec.Record(Record{PassID: 2, Duration: time.Millisecond, GateStall: 30 * time.Millisecond, DispatchStall: 30 * time.Millisecond})
	if r, _ := rec.Get(1); r.Slow {
		t.Fatal("under-threshold stall marked slow")
	}
	if r, _ := rec.Get(2); !r.Slow {
		t.Fatal("cumulative stall over threshold not marked slow")
	}
}

// TestConcurrentRecordAndRead drives writers against readers under the
// race detector: snapshots must always be internally consistent
// (strictly descending pass ids).
func TestConcurrentRecordAndRead(t *testing.T) {
	rec := New(Config{Size: 32})
	var writers sync.WaitGroup
	start := uint64(telemetry.NextPassID())
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				rec.Record(Record{PassID: telemetry.NextPassID(), Duration: time.Duration(i) * time.Microsecond})
			}
		}()
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := rec.Snapshot(0)
			for i := 1; i < len(snap); i++ {
				// Pass ids are drawn from a global monotone counter and the
				// ring orders by deposit, but deposits of concurrent writers
				// may interleave out of id order — only self-consistency
				// (no duplicates) can be asserted here.
				if snap[i-1].PassID == snap[i].PassID {
					t.Errorf("duplicate pass id %d in snapshot", snap[i].PassID)
					return
				}
			}
			rec.Rollup(time.Minute)
			rec.Get(start + 1)
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if rec.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", rec.Total())
	}
}

func ExampleRecorder() {
	rec := New(Config{Size: 4})
	for i := 1; i <= 6; i++ {
		rec.Record(Record{PassID: uint64(i), Duration: time.Duration(i) * time.Millisecond})
	}
	fmt.Println("retained:", rec.Len(), "of", rec.Total())
	for _, r := range rec.Snapshot(2) {
		fmt.Println("pass", r.PassID, r.Duration)
	}
	// Output:
	// retained: 4 of 6
	// pass 6 6ms
	// pass 5 5ms
}
