// Package flightrec is the engine's pass flight recorder: a fixed-size,
// allocation-bounded ring of completed pass records with time-windowed
// rollups and a slow-pass capture policy.
//
// Telemetry (internal/telemetry) answers "how is the process doing" as
// unattributed cumulative series; the flight recorder answers "what did
// pass #N do" after the fact. Every completed shared pass deposits one
// Record — engine configuration, input size, throughput, per-stage stall
// breakdown, ring peaks, steals, trie deliveries, buffer peaks, spill
// traffic, fault hits, cancellation reason and terminal error — into a
// preallocated ring. The ring retains the most recent Cap() passes;
// rollups (count, error rate, throughput, latency percentiles) are
// computed from the retained records at query time, never from new
// global histograms, so the recorder adds no per-event work and exactly
// one ring write per pass.
//
// Slow-pass capture: a pass whose wall time or cumulative stall exceeds
// the configured thresholds retains its full span tree in the record and
// is dumped through slog with its request id, so a 504 in an access log
// joins to a complete stage-level post-mortem without tracing having
// been enabled ahead of time.
//
// All methods are safe for concurrent use and no-ops on a nil *Recorder,
// following the repo-wide nil-receiver discipline: call sites wire the
// recorder unconditionally and the disabled path costs one nil check per
// pass.
package flightrec

import (
	"context"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"fluxquery/internal/telemetry"
)

// Record is one completed pass. Every field is stamped once, when the
// pass ends; records are plain values and copy into and out of the ring.
type Record struct {
	// PassID is the process-unique pass number
	// (telemetry.NextPassID), correlating the record with metric
	// scrapes, traces and Stats.PassID.
	PassID uint64 `json:"pass_id"`
	// RequestID joins the record to the access-log line of the HTTP
	// request that drove the pass ("" outside a server).
	RequestID string `json:"request_id,omitempty"`
	// Start and Duration bound the pass in wall time.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`

	// Engine configuration of the pass: projection and dispatch modes,
	// pipeline width (0/1 = sequential) and the riding plan count.
	Projection string `json:"projection,omitempty"`
	Dispatch   string `json:"dispatch,omitempty"`
	Parallel   int    `json:"parallel,omitempty"`
	Plans      int    `json:"plans"`

	// InputBytes, Events and Batches are the pass's data-flow totals;
	// MBps is InputBytes over Duration.
	InputBytes int64   `json:"input_bytes"`
	Events     int64   `json:"events"`
	Batches    int64   `json:"batches"`
	MBps       float64 `json:"mbps"`

	// Per-stage stall breakdown: the pipeline stages blocked on their
	// rings (zero for sequential passes) and the buffer-manager gate.
	TokenizeStall time.Duration `json:"tokenize_stall_ns,omitempty"`
	ValidateStall time.Duration `json:"validate_stall_ns,omitempty"`
	DispatchStall time.Duration `json:"dispatch_stall_ns,omitempty"`
	GateStall     time.Duration `json:"gate_stall_ns,omitempty"`
	// TokenRingPeak and EventRingPeak are ring high-water marks;
	// Steals counts cross-stripe feed claims (pipelined passes only).
	TokenRingPeak int   `json:"token_ring_peak,omitempty"`
	EventRingPeak int   `json:"event_ring_peak,omitempty"`
	Steals        int64 `json:"steals,omitempty"`

	// TrieEvents and TrieDeliveries are the dispatch trie's routing
	// totals (zero under plain fanout).
	TrieEvents     int64 `json:"trie_events,omitempty"`
	TrieDeliveries int64 `json:"trie_deliveries,omitempty"`

	// BufferPeak is the largest per-plan heap buffer high-water of the
	// pass; SpilledBytes and RehydratedBytes sum the plans' spill
	// traffic.
	BufferPeak      int64 `json:"buffer_peak_bytes,omitempty"`
	SpilledBytes    int64 `json:"spilled_bytes,omitempty"`
	RehydratedBytes int64 `json:"rehydrated_bytes,omitempty"`

	// FaultHits counts fault-injection sites reached during the pass
	// (approximate under concurrent passes: sites are process-global).
	FaultHits int64 `json:"fault_hits,omitempty"`

	// CancelReason classifies a cancelled pass ("deadline",
	// "canceled"; "" for completed or stream-errored passes); Err is
	// the pass's terminal error ("" on success). PlanErrors counts
	// riding plans that ended in error even when the stream itself was
	// clean.
	CancelReason string `json:"cancel_reason,omitempty"`
	Err          string `json:"error,omitempty"`
	PlanErrors   int    `json:"plan_errors,omitempty"`

	// Slow marks a pass that tripped the capture policy; Trace is its
	// retained span tree (nil for fast passes — the recorder drops the
	// tree so the ring's footprint stays bounded by slow passes only).
	Slow  bool             `json:"slow,omitempty"`
	Trace *telemetry.Trace `json:"trace,omitempty"`
}

// TotalStall sums the record's stall attribution across stages.
func (r *Record) TotalStall() time.Duration {
	return r.TokenizeStall + r.ValidateStall + r.DispatchStall + r.GateStall
}

// Config configures a Recorder.
type Config struct {
	// Size is the ring capacity in records (default 256). The ring is
	// preallocated at New; recording never allocates ring storage.
	Size int
	// SlowLatency and SlowStall are the slow-pass capture thresholds:
	// a pass whose Duration exceeds SlowLatency, or whose summed stage
	// stall exceeds SlowStall, retains its span tree and is dumped
	// through Logger. Zero disables the respective trigger.
	SlowLatency time.Duration
	SlowStall   time.Duration
	// Logger receives slow-pass dumps (nil = slog.Default()).
	Logger *slog.Logger
}

// DefaultSize is the ring capacity when Config.Size is unset.
const DefaultSize = 256

// Recorder is the flight recorder: a mutex-guarded ring of Records.
// Recording is the cold once-per-pass path, so a short mutex hold beats
// lock-free machinery here; readers copy records out under the same
// lock.
type Recorder struct {
	slowLatency time.Duration
	slowStall   time.Duration
	log         *slog.Logger

	mu    sync.Mutex
	ring  []Record
	next  int    // next write slot
	count int    // live records (== len(ring) once wrapped)
	total uint64 // records ever written
}

// New returns a Recorder with a preallocated ring.
func New(cfg Config) *Recorder {
	size := cfg.Size
	if size <= 0 {
		size = DefaultSize
	}
	return &Recorder{
		slowLatency: cfg.SlowLatency,
		slowStall:   cfg.SlowStall,
		log:         cfg.Logger,
		ring:        make([]Record, size),
	}
}

// CapturesSlow reports whether the recorder wants span trees offered to
// Record (a capture threshold is configured). Pass drivers use it to
// decide whether to build a trace for an otherwise untraced pass.
func (rec *Recorder) CapturesSlow() bool {
	if rec == nil {
		return false
	}
	return rec.slowLatency > 0 || rec.slowStall > 0
}

// isSlow applies the capture policy to a record.
func (rec *Recorder) isSlow(r *Record) bool {
	if rec.slowLatency > 0 && r.Duration >= rec.slowLatency {
		return true
	}
	if rec.slowStall > 0 && r.TotalStall() >= rec.slowStall {
		return true
	}
	return false
}

// Record deposits one completed pass. The record's Slow flag is stamped
// from the capture policy: slow passes keep their Trace (when the caller
// provided one) and are dumped through the logger; fast passes have the
// Trace dropped so ring memory stays bounded. Safe for concurrent use.
func (rec *Recorder) Record(r Record) {
	if rec == nil {
		return
	}
	r.Slow = rec.isSlow(&r)
	if !r.Slow {
		r.Trace = nil
	}
	rec.mu.Lock()
	rec.ring[rec.next] = r
	rec.next = (rec.next + 1) % len(rec.ring)
	if rec.count < len(rec.ring) {
		rec.count++
	}
	rec.total++
	rec.mu.Unlock()
	if r.Slow {
		rec.dumpSlow(&r)
	}
}

// dumpSlow writes the slow-pass post-mortem through slog: one line keyed
// by pass and request id with the headline numbers, plus the span tree
// rendered as an attribute when the pass carried one.
func (rec *Recorder) dumpSlow(r *Record) {
	log := rec.log
	if log == nil {
		log = slog.Default()
	}
	attrs := []slog.Attr{
		slog.Uint64("pass_id", r.PassID),
		slog.String("request_id", r.RequestID),
		slog.Duration("dur", r.Duration),
		slog.Duration("stall", r.TotalStall()),
		slog.Int64("input_bytes", r.InputBytes),
		slog.Int64("events", r.Events),
		slog.Int("plans", r.Plans),
	}
	if r.Err != "" {
		attrs = append(attrs, slog.String("error", r.Err))
	}
	if r.CancelReason != "" {
		attrs = append(attrs, slog.String("cancel_reason", r.CancelReason))
	}
	if r.Trace != nil {
		var b strings.Builder
		r.Trace.WriteTree(&b)
		attrs = append(attrs, slog.String("spans", strings.TrimRight(b.String(), "\n")))
	}
	log.LogAttrs(context.Background(), slog.LevelWarn, "slow pass", attrs...)
}

// Len returns the number of retained records; Cap the ring capacity;
// Total the number of records ever deposited (Total - Len have been
// overwritten).
func (rec *Recorder) Len() int {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.count
}

// Cap returns the ring capacity (0 on a nil recorder).
func (rec *Recorder) Cap() int {
	if rec == nil {
		return 0
	}
	return len(rec.ring)
}

// Total returns the number of records ever deposited.
func (rec *Recorder) Total() uint64 {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.total
}

// Snapshot returns up to n retained records, most recent first (n <= 0
// returns all retained).
func (rec *Recorder) Snapshot(n int) []Record {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if n <= 0 || n > rec.count {
		n = rec.count
	}
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		// next-1 is the most recent write; walk backwards.
		idx := (rec.next - 1 - i + 2*len(rec.ring)) % len(rec.ring)
		out[i] = rec.ring[idx]
	}
	return out
}

// Get returns the retained record with the given pass id.
func (rec *Recorder) Get(passID uint64) (Record, bool) {
	if rec == nil {
		return Record{}, false
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i := 0; i < rec.count; i++ {
		idx := (rec.next - 1 - i + 2*len(rec.ring)) % len(rec.ring)
		if rec.ring[idx].PassID == passID {
			return rec.ring[idx], true
		}
	}
	return Record{}, false
}

// Rollup is a windowed aggregate over retained records: counts, data
// flow, nearest-rank latency percentiles and stall attribution. MBps is
// the window's aggregate throughput (bytes over summed pass wall time —
// per-pass speed, not wall-clock arrival rate).
type Rollup struct {
	// Window is the rollup's lookback (0 = every retained record).
	Window time.Duration `json:"window_ns,omitempty"`
	// Passes, Errors and Slow count records in the window; Cancelled
	// counts the subset of Errors with a cancellation reason.
	Passes    int `json:"passes"`
	Errors    int `json:"errors"`
	Cancelled int `json:"cancelled"`
	Slow      int `json:"slow"`
	// InputBytes and Events sum the window's data flow.
	InputBytes int64 `json:"input_bytes"`
	Events     int64 `json:"events"`
	// P50/P95/P99/Max are pass-duration quantiles (nearest-rank).
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// MBps is aggregate throughput; StallTotal sums stage stalls.
	MBps       float64       `json:"mbps"`
	StallTotal time.Duration `json:"stall_total_ns"`
}

// Rollup aggregates the retained records whose pass ended within window
// of now (window <= 0 covers every retained record). Percentiles are
// nearest-rank over the matching records — computed here at query time,
// not maintained as histograms.
func (rec *Recorder) Rollup(window time.Duration) Rollup {
	return rec.RollupAt(window, time.Now())
}

// RollupAt is Rollup against an explicit clock (for tests).
func (rec *Recorder) RollupAt(window time.Duration, now time.Time) Rollup {
	ru := Rollup{Window: window}
	if rec == nil {
		return ru
	}
	var durs []time.Duration
	var wall time.Duration
	rec.mu.Lock()
	cutoff := now.Add(-window)
	for i := 0; i < rec.count; i++ {
		idx := (rec.next - 1 - i + 2*len(rec.ring)) % len(rec.ring)
		r := &rec.ring[idx]
		if window > 0 && r.Start.Add(r.Duration).Before(cutoff) {
			continue
		}
		ru.Passes++
		if r.Err != "" {
			ru.Errors++
		}
		if r.CancelReason != "" {
			ru.Cancelled++
		}
		if r.Slow {
			ru.Slow++
		}
		ru.InputBytes += r.InputBytes
		ru.Events += r.Events
		ru.StallTotal += r.TotalStall()
		wall += r.Duration
		if r.Duration > ru.Max {
			ru.Max = r.Duration
		}
		durs = append(durs, r.Duration)
	}
	rec.mu.Unlock()
	if len(durs) == 0 {
		return ru
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	ru.P50 = quantile(durs, 0.50)
	ru.P95 = quantile(durs, 0.95)
	ru.P99 = quantile(durs, 0.99)
	if wall > 0 {
		ru.MBps = float64(ru.InputBytes) / (1 << 20) / wall.Seconds()
	}
	return ru
}

// quantile returns the q-quantile of ascending-sorted durations by the
// nearest-rank method (matching fluxbench's convention).
func quantile(durs []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(durs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(durs) {
		rank = len(durs)
	}
	return durs[rank-1]
}
