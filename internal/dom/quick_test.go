package dom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fluxquery/internal/xmltok"
)

// genTree builds a random tree for property tests.
func genTree(r *rand.Rand, depth int) *Node {
	n := NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		n.Attrs = append(n.Attrs, xmltok.Attr{Name: "a", Value: texts[r.Intn(len(texts))]})
	}
	kids := r.Intn(4)
	for i := 0; i < kids; i++ {
		if depth <= 0 || r.Intn(3) == 0 {
			n.AppendChild(NewText(texts[r.Intn(len(texts))]))
		} else {
			n.AppendChild(genTree(r, depth-1))
		}
	}
	return n
}

var names = []string{"a", "b", "c", "deep", "x1"}
var texts = []string{"hello", "x < y & z", "", "  spaced  ", "Gödel"}

// treeValue wraps *Node so testing/quick can generate it.
type treeValue struct{ n *Node }

// Generate implements quick.Generator.
func (treeValue) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(treeValue{n: genTree(r, 3)})
}

// TestQuickCloneIsDeepAndEqual: Clone produces an equal, independent tree.
func TestQuickCloneIsDeepAndEqual(t *testing.T) {
	f := func(tv treeValue) bool {
		orig := tv.n
		cp := orig.Clone()
		if cp.String() != orig.String() || cp.Size() != orig.Size() || cp.Count() != orig.Count() {
			return false
		}
		// Mutating the clone leaves the original untouched.
		before := orig.String()
		cp.Name = "mutated"
		cp.Children = nil
		return orig.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSizeBounds: Size is at least the per-node overhead times the
// node count, and grows when a child is added.
func TestQuickSizeBounds(t *testing.T) {
	f := func(tv treeValue) bool {
		n := tv.n
		if n.Size() < int64(nodeOverhead*n.Count()) {
			return false
		}
		before := n.Size()
		n.AppendChild(NewText("extra"))
		return n.Size() > before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializationRoundTrip: Parse(String(t)) has the same string
// value and serialization (modulo empty text nodes, which Parse drops).
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(tv treeValue) bool {
		s := tv.n.String()
		doc, err := ParseString(s)
		if err != nil {
			return false
		}
		return doc.Root().String() == s && doc.Root().StringValue() == tv.n.StringValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickParentLinks: AppendChild-built trees always have consistent
// parent links.
func TestQuickParentLinks(t *testing.T) {
	f := func(tv treeValue) bool {
		ok := true
		var walk func(n *Node)
		walk = func(n *Node) {
			for _, c := range n.Children {
				if c.Parent != n {
					ok = false
					return
				}
				walk(c)
			}
		}
		walk(tv.n)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
