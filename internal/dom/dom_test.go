package dom

import (
	"strings"
	"testing"

	"fluxquery/internal/xmltok"
)

const bibDoc = `<bib><book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><publisher>Addison-Wesley</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last></author><author><last>Buneman</last></author></book></bib>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func TestParseAndNavigate(t *testing.T) {
	doc := mustParse(t, bibDoc)
	root := doc.Root()
	if root == nil || root.Name != "bib" {
		t.Fatalf("root = %+v", root)
	}
	books := root.ChildElements("book")
	if len(books) != 2 {
		t.Fatalf("got %d books", len(books))
	}
	if y, ok := books[0].Attr("year"); !ok || y != "1994" {
		t.Errorf("year = %q, %v", y, ok)
	}
	if _, ok := books[0].Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
	title := books[0].FirstChildElement("title")
	if title == nil || title.StringValue() != "TCP/IP Illustrated" {
		t.Errorf("title = %v", title)
	}
	if got := len(books[1].ChildElements("author")); got != 2 {
		t.Errorf("book 2 has %d authors", got)
	}
	if got := len(root.ChildElements("*")); got != 2 {
		t.Errorf("wildcard children = %d", got)
	}
}

func TestStringValueConcatenatesSubtree(t *testing.T) {
	doc := mustParse(t, `<a>x<b>y<c>z</c></b>w</a>`)
	if got := doc.Root().StringValue(); got != "xyzw" {
		t.Errorf("string value = %q", got)
	}
}

func TestParentLinks(t *testing.T) {
	doc := mustParse(t, bibDoc)
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("broken parent link at %v", c)
			}
			walk(c)
		}
	}
	walk(doc)
}

func TestSerializationRoundTrip(t *testing.T) {
	doc := mustParse(t, bibDoc)
	out := doc.String()
	doc2 := mustParse(t, out)
	if doc2.String() != out {
		t.Errorf("serialization not a fixpoint:\n%s\nvs\n%s", out, doc2.String())
	}
	if doc.Count() != doc2.Count() {
		t.Errorf("node count changed: %d vs %d", doc.Count(), doc2.Count())
	}
}

func TestSizeAccounting(t *testing.T) {
	small := mustParse(t, `<a/>`)
	big := mustParse(t, `<a>`+strings.Repeat("<b>xxxxxxxxxx</b>", 100)+`</a>`)
	if small.Size() >= big.Size() {
		t.Errorf("size not monotone: %d vs %d", small.Size(), big.Size())
	}
	// Text bytes must be fully accounted.
	text := mustParse(t, `<a>`+strings.Repeat("x", 1000)+`</a>`)
	if text.Size() < 1000 {
		t.Errorf("text bytes not accounted: %d", text.Size())
	}
	// Attributes accounted.
	withAttr := mustParse(t, `<a k="`+strings.Repeat("v", 500)+`"/>`)
	if withAttr.Size() < 500 {
		t.Errorf("attr bytes not accounted: %d", withAttr.Size())
	}
}

// TestSizeAttrAccounting pins the per-attribute formula: name and value
// bytes plus two string headers (32 B), matching the real retained
// memory of attribute-heavy documents — the old 8 B overhead undercount
// would let a byte budget overshoot the actual heap.
func TestSizeAttrAccounting(t *testing.T) {
	bare := mustParse(t, `<a/>`)
	attr := mustParse(t, `<a key="value"/>`)
	wantDelta := int64(len("key") + len("value") + attrOverhead)
	if got := attr.Size() - bare.Size(); got != wantDelta {
		t.Errorf("one attribute costs %d, want %d", got, wantDelta)
	}
	if attrOverhead != 32 {
		t.Errorf("attrOverhead = %d, want two 16-byte string headers", attrOverhead)
	}
	// SelfSize of a childless element equals its Size; children add to
	// Size only.
	parent := mustParse(t, `<a key="value"><b/>text</a>`).Root()
	if parent.SelfSize() != attr.Root().Size() {
		t.Errorf("SelfSize %d != childless Size %d", parent.SelfSize(), attr.Root().Size())
	}
	if parent.Size() <= parent.SelfSize() {
		t.Errorf("children not accounted beyond SelfSize")
	}
}

func TestClone(t *testing.T) {
	doc := mustParse(t, bibDoc)
	cp := doc.Clone()
	if cp.String() != doc.String() {
		t.Error("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	cp.Root().Children = nil
	if doc.Root().Children == nil {
		t.Error("clone shares children with original")
	}
	if cp.Parent != nil {
		t.Error("clone must have nil parent")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("book", []xmltok.Attr{{Name: "year", Value: "1994"}})
	b.Start("title", nil)
	b.Text("TCP/IP")
	b.End()
	b.Start("author", nil)
	b.Start("last", nil)
	b.Text("Stevens")
	b.End()
	b.End()
	got := b.Root().String()
	want := `<book year="1994"><title>TCP/IP</title><author><last>Stevens</last></author></book>`
	if got != want {
		t.Errorf("built = %s, want %s", got, want)
	}
}

func TestBuilderUnbalancedEndIsSafe(t *testing.T) {
	b := NewBuilder("x", nil)
	b.End()
	b.End() // extra ends must not panic or lose the root
	b.Text("t")
	if got := b.Root().String(); got != "<x>t</x>" {
		t.Errorf("got %s", got)
	}
}

func TestCount(t *testing.T) {
	doc := mustParse(t, `<a><b/><c>t</c></a>`)
	// document + a + b + c + text = 5
	if got := doc.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := ParseString("<a><b></a></b>"); err == nil {
		// Note: tag mismatch detection happens at the dtd/xsax layer or by
		// nesting; the raw scanner accepts this but the tree will close
		// wrongly. Parse itself only fails on scanner errors:
		t.Skip("tag-name mismatch is validated by xsax, not dom")
	}
}

func TestEmptyTextSkipped(t *testing.T) {
	doc := mustParse(t, `<a></a>`)
	if len(doc.Root().Children) != 0 {
		t.Errorf("unexpected children: %+v", doc.Root().Children)
	}
}
