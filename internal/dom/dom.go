// Package dom implements a lightweight in-memory XML tree.
//
// The tree serves three roles in the engine: it is the storage format of
// runtime buffers (holding only the projected paths the query needs), the
// document representation of the baseline engines, and the workhorse of the
// differential test suite. Every node is byte-accounted (Size) so that
// "main memory consumption" — the quantity the paper's optimizations
// minimize — can be measured deterministically and machine-independently.
package dom

import (
	"io"
	"strings"

	"fluxquery/internal/xmltok"
)

// NodeKind discriminates tree node types.
type NodeKind uint8

// Node kinds.
const (
	// DocumentNode is the synthetic root owning the document element.
	DocumentNode NodeKind = iota
	// ElementNode is an XML element.
	ElementNode
	// TextNode is character data.
	TextNode
)

// Node is an XML tree node. Fields are exported for cheap traversal by the
// evaluator; use the constructors and AppendChild to keep Parent links
// consistent.
type Node struct {
	Kind     NodeKind
	Name     string // element name; empty for text and document nodes
	Text     string // character data; only for TextNode
	Attrs    []xmltok.Attr
	Children []*Node
	Parent   *Node
	// Lazy, when non-nil, restores spilled children on first traversal:
	// the buffer manager (internal/bufmgr) evicts cold buffered subtrees
	// to disk by clearing Children and installing this hook, and every
	// child-reading accessor fires it exactly once before looking. The
	// hook may panic on I/O failure; the runtime's recover wrapper turns
	// that into the plan's error. Code that reads Children directly must
	// go through Kids() (or another hydrating accessor) to see spilled
	// content.
	Lazy func(*Node)
}

// hydrate fires the Lazy hook once.
func (n *Node) hydrate() {
	if n.Lazy != nil {
		f := n.Lazy
		n.Lazy = nil
		f(n)
	}
}

// Kids returns the node's children, restoring them first if they were
// spilled. Direct Children access is only sound where the node is known
// resident (tree construction, the accounting walk of Size).
func (n *Node) Kids() []*Node {
	n.hydrate()
	return n.Children
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentNode} }

// NewElement returns an element node with the given name.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a text node.
func NewText(data string) *Node { return &Node{Kind: TextNode, Text: data} }

// AppendChild appends c to n and sets c's parent link.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children with the given name; name "*"
// matches every element child.
func (n *Node) ChildElements(name string) []*Node {
	n.hydrate()
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "*" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given name, or
// nil.
func (n *Node) FirstChildElement(name string) *Node {
	n.hydrate()
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "*" || c.Name == name) {
			return c
		}
	}
	return nil
}

// Root returns the document element of a document node (or n itself for
// any other node kind).
func (n *Node) Root() *Node {
	if n.Kind != DocumentNode {
		return n
	}
	return n.FirstChildElement("*")
}

// StringValue returns the concatenated text content of the subtree, the
// XPath string value of the node.
func (n *Node) StringValue() string {
	if n.Kind == TextNode {
		return n.Text
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == TextNode {
		b.WriteString(n.Text)
		return
	}
	n.hydrate()
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// nodeOverhead approximates the bookkeeping cost of one buffered node
// (pointers, kind, slice headers) in bytes. The constant keeps the memory
// metric deterministic across architectures; it is close to the true
// 64-bit footprint of Node.
const nodeOverhead = 48

// attrOverhead is the per-attribute bookkeeping cost: two string headers
// (16 bytes each on 64-bit) on top of the name and value bytes. The old
// accounting charged only 8 bytes per attribute, which undercounted the
// retained memory of attribute-heavy documents badly enough that a byte
// budget computed from Size would overshoot the real heap.
const attrOverhead = 32

// SelfSize returns the accounted footprint of the node itself — overhead,
// name, text and attribute strings — without its children. This is what
// a spilled subtree's stub still keeps resident (the buffer manager
// retains names and attributes so handler matching and attribute axes
// never touch the disk).
func (n *Node) SelfSize() int64 {
	s := int64(nodeOverhead + len(n.Name) + len(n.Text))
	for _, a := range n.Attrs {
		s += int64(len(a.Name) + len(a.Value) + attrOverhead)
	}
	return s
}

// Size returns the accounted memory footprint of the subtree in bytes:
// per-node overhead plus the length of all names, attribute strings and
// character data. This is the engine's buffer-size metric. A spilled
// subtree reports only its resident portion (Size does not hydrate); the
// buffer manager remembers logical sizes itself.
func (n *Node) Size() int64 {
	s := n.SelfSize()
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Count returns the number of nodes in the subtree, including n.
func (n *Node) Count() int {
	n.hydrate()
	c := 1
	for _, ch := range n.Children {
		c += ch.Count()
	}
	return c
}

// Clone returns a deep copy of the subtree with a nil parent.
func (n *Node) Clone() *Node {
	n.hydrate()
	cp := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = append([]xmltok.Attr(nil), n.Attrs...)
	}
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// WriteXML serializes the subtree to w. Document nodes emit their
// children; element and text nodes emit themselves.
func (n *Node) WriteXML(w *xmltok.Writer) {
	n.hydrate()
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			c.WriteXML(w)
		}
	case ElementNode:
		w.StartElement(n.Name, n.Attrs)
		for _, c := range n.Children {
			c.WriteXML(w)
		}
		w.EndElement(n.Name)
	case TextNode:
		w.Text(n.Text)
	}
}

// String returns the XML serialization of the subtree.
func (n *Node) String() string {
	var b strings.Builder
	w := xmltok.NewWriter(&b)
	n.WriteXML(w)
	w.Flush()
	return b.String()
}

// Parse builds a document tree from an XML byte stream. Comments,
// processing instructions and directives are skipped: the query language
// fragment has no constructs that observe them.
func Parse(r io.Reader) (*Node, error) {
	sc := xmltok.NewScanner(r)
	doc := NewDocument()
	cur := doc
	for {
		tok, err := sc.Next()
		if err == io.EOF {
			return doc, nil
		}
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			e := NewElement(tok.Name)
			if len(tok.Attrs) > 0 {
				e.Attrs = append([]xmltok.Attr(nil), tok.Attrs...)
			}
			cur.AppendChild(e)
			cur = e
		case xmltok.EndElement:
			cur = cur.Parent
		case xmltok.Text:
			if tok.Data != "" {
				cur.AppendChild(NewText(tok.Data))
			}
		}
	}
}

// ParseString builds a document tree from a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// Builder incrementally constructs a subtree from a token stream; it is
// used by the runtime to materialize buffered elements. The zero value is
// not usable; call NewBuilder.
type Builder struct {
	root *Node
	cur  *Node
}

// NewBuilder returns a Builder whose tree is rooted at an element with the
// given name and attributes.
func NewBuilder(name string, attrs []xmltok.Attr) *Builder {
	root := NewElement(name)
	if len(attrs) > 0 {
		root.Attrs = append([]xmltok.Attr(nil), attrs...)
	}
	return &Builder{root: root, cur: root}
}

// Start opens a child element.
func (b *Builder) Start(name string, attrs []xmltok.Attr) {
	e := NewElement(name)
	if len(attrs) > 0 {
		e.Attrs = append([]xmltok.Attr(nil), attrs...)
	}
	b.cur.AppendChild(e)
	b.cur = e
}

// End closes the current element.
func (b *Builder) End() {
	if b.cur.Parent != nil {
		b.cur = b.cur.Parent
	}
}

// Text appends character data to the current element.
func (b *Builder) Text(data string) {
	if data != "" {
		b.cur.AppendChild(NewText(data))
	}
}

// Root returns the built subtree.
func (b *Builder) Root() *Node { return b.root }
