package proj

import (
	"testing"

	"fluxquery/internal/bdf"
)

func TestAutomatonVerdicts(t *testing.T) {
	s := NewPathSet()
	bib := s.Root.Child("bib")
	book := bib.Child("book")
	book.Child("title").All = true
	book.Child("author").Text = true
	a := Compile(s)

	st := a.Start()
	if got := a.Child(st, "nope"); got != StateSkip {
		t.Errorf("unknown root child: got %d, want skip", got)
	}
	st = a.Child(st, "bib")
	if st < 0 {
		t.Fatalf("bib: got %d, want descend", st)
	}
	if a.Text(st) {
		t.Error("bib must not need text")
	}
	bookSt := a.Child(st, "book")
	if bookSt < 0 {
		t.Fatalf("book: got %d, want descend", bookSt)
	}
	if got := a.Child(bookSt, "title"); got != StateAll {
		t.Errorf("title: got %d, want all", got)
	}
	auth := a.Child(bookSt, "author")
	if auth < 0 || !a.Text(auth) {
		t.Errorf("author: got state %d text=%v, want descend with text", auth, a.Text(auth))
	}
	if got := a.Child(auth, "inner"); got != StateSkip {
		t.Errorf("below a text-only node: got %d, want skip", got)
	}
	if got := a.Child(bookSt, "publisher"); got != StateSkip {
		t.Errorf("irrelevant child: got %d, want skip", got)
	}
	// Inside an all-region every label and text is kept.
	if got := a.Child(StateAll, "anything"); got != StateAll {
		t.Errorf("all-region child: got %d, want all", got)
	}
	if !a.Text(StateAll) {
		t.Error("all-region must keep text")
	}
}

func TestUnionMergesRequirements(t *testing.T) {
	a := NewPathSet()
	a.Root.Child("site").Child("people").All = true
	b := NewPathSet()
	b.Root.Child("site").Child("items").Text = true

	u := Compile(Union(a, b))
	st := u.Child(u.Start(), "site")
	if st < 0 {
		t.Fatal("site must descend")
	}
	if got := u.Child(st, "people"); got != StateAll {
		t.Errorf("people: got %d, want all", got)
	}
	if it := u.Child(st, "items"); it < 0 || !u.Text(it) {
		t.Errorf("items: got %d, want text descend", it)
	}
	if got := u.Child(st, "regions"); got != StateSkip {
		t.Errorf("regions: got %d, want skip", got)
	}
	// Union must not have mutated its inputs.
	if a.Root.Child("site").Children["items"] != nil {
		t.Error("union mutated input set")
	}
}

func TestUnionOfZeroSetsIsEmpty(t *testing.T) {
	u := Compile(Union())
	if got := u.Child(u.Start(), "root"); got != StateSkip {
		t.Errorf("empty union should skip everything, got %d", got)
	}
}

// TestWildcardWidensNamedSiblings is the adversarial wildcard case: a
// label matched by BOTH a named entry and a "*" entry needs the union of
// the two subtrees. A projection that dispatched on the name alone and
// ignored the star would silently drop the star's requirements.
func TestWildcardWidensNamedSiblings(t *testing.T) {
	a := NewPathSet()
	book := a.Root.Child("bib").Child("book")
	book.Child("title").Child("sub").All = true // named: only title/sub
	b := NewPathSet()
	star := b.Root.Child("bib").Child("book").Child("*")
	star.Text = true // wildcard: text of every child

	u := Compile(Union(a, b))
	st := u.Child(u.Child(u.Start(), "bib"), "book")
	title := u.Child(st, "title")
	if title < 0 {
		t.Fatal("title must descend")
	}
	if !u.Text(title) {
		t.Error("star's text requirement lost on the named sibling")
	}
	if got := u.Child(title, "sub"); got != StateAll {
		t.Errorf("named requirement lost: title/sub got %d, want all", got)
	}
	if other := u.Child(st, "publisher"); other < 0 || !u.Text(other) {
		t.Errorf("star alone: got %d, want text descend", other)
	}
}

// TestWildcardCopyAllSubsumesEverything: a "*" CopyAll buffer (whole-
// element reads) must turn every child — named or not — into an
// all-region.
func TestWildcardCopyAllSubsumesEverything(t *testing.T) {
	s := NewPathSet()
	book := s.Root.Child("book")
	book.Child("title").Text = true
	book.Child("*").MergeBDF(&bdf.Node{CopyAll: true})
	a := Compile(s)
	st := a.Child(a.Start(), "book")
	if got := a.Child(st, "title"); got != StateAll {
		t.Errorf("named child under * CopyAll: got %d, want all", got)
	}
	if got := a.Child(st, "anything"); got != StateAll {
		t.Errorf("unnamed child under * CopyAll: got %d, want all", got)
	}
}

// TestMergeBDFNilKeepsEverything: bdf.Node.Keep returns a nil projection
// for "keep everything below"; MergeBDF(nil) must map that to All, never
// to an empty requirement.
func TestMergeBDFNilKeepsEverything(t *testing.T) {
	n := NewPathNode()
	n.MergeBDF(nil)
	if !n.All {
		t.Fatal("nil BDF projection must widen to All")
	}
}

// TestTextOnlyNodeKeepsShellChildren: a text()-only node delivers its
// own text but shells its element children — it must not degenerate to
// skip (losing the text) or to all (losing the pruning).
func TestTextOnlyNodeKeepsShellChildren(t *testing.T) {
	s := NewPathSet()
	s.Root.Child("a").MergeBDF(&bdf.Node{Text: true})
	a := Compile(s)
	st := a.Child(a.Start(), "a")
	if st < 0 {
		t.Fatalf("a: got %d, want descend", st)
	}
	if !a.Text(st) {
		t.Error("text requirement lost")
	}
	if got := a.Child(st, "b"); got != StateSkip {
		t.Errorf("child of text-only node: got %d, want skip", got)
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeFast, ModeValidate, ModeOff} {
		got, ok := ParseMode(m.String())
		if !ok || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseMode("bogus"); ok {
		t.Error("ParseMode accepted bogus input")
	}
}

func TestPathSetString(t *testing.T) {
	s := NewPathSet()
	s.Root.Child("bib").Child("book").Child("title").All = true
	out := s.String()
	if out == "" || out == "(empty)\n" {
		t.Fatalf("String() = %q", out)
	}
	if NewPathSet().String() != "(empty)\n" {
		t.Error("empty set should render as (empty)")
	}
}

// TestChildIDEquivalence: the vocabulary jump tables agree with the
// string-keyed Child on every (state, name) pair, including the All and
// Skip sentinels and star-wildcard fallthrough.
func TestChildIDEquivalence(t *testing.T) {
	names := []string{"bib", "book", "title", "author", "price", "unused"}
	s := NewPathSet()
	bib := s.Root.Child("bib")
	book := bib.Child("book")
	book.Child("title").All = true
	book.Child("author").Text = true
	bib.Child("*").Child("price").Text = true
	a := CompileVocab(s, names)
	if !a.HasVocab() {
		t.Fatal("CompileVocab did not mark the vocabulary")
	}
	states := []int32{StateAll, StateSkip, a.Start()}
	for st := int32(0); int(st) < a.Len(); st++ {
		states = append(states, st)
	}
	for _, st := range states {
		for id, name := range names {
			want := a.Child(st, name)
			got := a.ChildID(st, int32(id))
			if want != got {
				t.Fatalf("state %d name %q: Child=%d ChildID=%d", st, name, want, got)
			}
		}
	}
}
