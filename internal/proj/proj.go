// Package proj implements schema-driven stream projection: the analysis
// that, given a compiled plan's FluX handlers and its buffer description
// forest, derives the set of document paths the plan can ever touch — and
// the event-level skip automaton that the streaming layers use to discard
// everything else before it reaches a single evaluator.
//
// This realizes, below the buffer layer, the document-projection idea the
// paper cites as its baseline (Marian & Siméon [10]) and the
// buffer-minimization line of Koch et al.: the BDF already proves which
// subtrees a query buffers; the same reasoning proves which subtrees the
// shared scan need not even tokenize. A PathSet is the per-plan result; the
// union of all registered plans' path-sets compiles into one Automaton that
// the shared-pass dispatcher pushes into the validating reader.
//
// # Projection contract
//
// The projection is structure-preserving: for every element the automaton
// prunes, its StartElement and EndElement are still delivered (a "shell"),
// because evaluators step DTD content-model automata on child labels to
// decide the paper's past(S) on-first conditions. Only the pruned element's
// interior — descendants, character data, and (in fast mode) tokenization
// work itself — is dropped. A too-narrow path-set is therefore a
// correctness bug, never a crash: the adversarial tests in this package and
// the differential suite assert that projected and unprojected runs produce
// byte-identical output.
package proj

import (
	"sort"
	"strings"

	"fluxquery/internal/bdf"
)

// Mode selects how skipped regions are handled by a projecting reader.
type Mode uint8

const (
	// ModeFast (the default) skips pruned subtrees in the tokenizer with a
	// bulk end-tag scan: attributes, text and entities inside them are
	// never materialized, and the region is checked for tag balance and a
	// matching outer end tag only — element declarations and content
	// models inside a pruned subtree are not enforced. Every delivered or
	// shell element is still fully validated (its start tag, attributes
	// and position in the parent's content model), so errors at the
	// projection frontier are always caught.
	ModeFast Mode = iota
	// ModeValidate filters delivery but still tokenizes and DTD-validates
	// every event, including pruned regions: error behavior is exactly
	// that of an unprojected pass.
	ModeValidate
	// ModeOff disables projection: every event is delivered.
	ModeOff
)

// String returns the mode's flag spelling ("fast", "validate", "off").
func (m Mode) String() string {
	switch m {
	case ModeFast:
		return "fast"
	case ModeValidate:
		return "validate"
	default:
		return "off"
	}
}

// ParseMode converts a flag value ("fast", "validate", "off").
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "fast":
		return ModeFast, true
	case "validate":
		return ModeValidate, true
	case "off":
		return ModeOff, true
	}
	return ModeOff, false
}

// PathNode is the projection requirement at one element path of the
// document. The zero requirement (no fields set, no children) means the
// element's presence matters — its start and end events are delivered —
// but nothing inside it does.
type PathNode struct {
	// Children maps child labels to their requirements. The key "*"
	// stands for every label; a label that has both a named entry and a
	// "*" entry needs the union of the two (Normalize folds the star into
	// the named entries so the automaton can dispatch on the name alone).
	Children map[string]*PathNode
	// All marks that the entire subtree below this element is needed
	// (verbatim copies, string-value atomization).
	All bool
	// Text marks that direct text children of this element are needed.
	Text bool
}

// NewPathNode returns an empty requirement node.
func NewPathNode() *PathNode { return &PathNode{Children: map[string]*PathNode{}} }

// Child returns the requirement node for a child label, creating it if
// absent.
func (n *PathNode) Child(label string) *PathNode {
	c, ok := n.Children[label]
	if !ok {
		c = NewPathNode()
		n.Children[label] = c
	}
	return c
}

// SortedLabels returns the node's child labels in sorted order. The
// multi-query dispatch trie and its cost model iterate path nodes with
// it so that builds and estimates are deterministic for a given plan set
// (map iteration order must not leak into interned structure or float
// summation order).
func (n *PathNode) SortedLabels() []string {
	labels := make([]string, 0, len(n.Children))
	for l := range n.Children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// MergeBDF folds a buffer-description projection (bdf.Node) into this
// node: CopyAll becomes All, Text stays Text, children merge recursively.
func (n *PathNode) MergeBDF(b *bdf.Node) {
	if b == nil {
		n.All = true
		return
	}
	if b.CopyAll {
		n.All = true
	}
	if b.Text {
		n.Text = true
	}
	for label, c := range b.Children {
		n.Child(label).MergeBDF(c)
	}
}

// Merge folds another requirement node into this one (set union).
func (n *PathNode) Merge(o *PathNode) {
	if o == nil {
		return
	}
	n.All = n.All || o.All
	n.Text = n.Text || o.Text
	for label, c := range o.Children {
		n.Child(label).Merge(c)
	}
}

// PathSet is the projection requirement of a whole plan (or a union of
// plans): Root is the virtual document node, whose children are the
// possible root elements.
type PathSet struct {
	Root *PathNode
}

// NewPathSet returns an empty path-set (nothing needed).
func NewPathSet() *PathSet { return &PathSet{Root: NewPathNode()} }

// Union returns a fresh path-set containing every requirement of the
// inputs. The inputs are not modified; the result is Normalized and ready
// to Compile. A union over zero sets is empty.
func Union(sets ...*PathSet) *PathSet {
	u := NewPathSet()
	for _, s := range sets {
		if s != nil {
			u.Root.Merge(s.Root)
		}
	}
	u.Normalize()
	return u
}

// Normalize rewrites the set so the automaton can dispatch on child
// labels alone: wherever a node has both a "*" entry and named entries,
// the star's requirements are folded into every named entry (a label
// matching both needs the union of both subtrees).
func (s *PathSet) Normalize() { normalize(s.Root) }

// Size returns a structural weight of the set: its node count, with
// whole-subtree and text requirements weighted extra. It is a cheap
// proxy for how much of a stream a plan compiled from this set touches,
// used to balance plans across shared-pass evaluator workers.
func (s *PathSet) Size() int {
	if s == nil {
		return 0
	}
	return nodeSize(s.Root)
}

func nodeSize(n *PathNode) int {
	if n == nil {
		return 0
	}
	sz := 1
	if n.All {
		sz += 4
	}
	if n.Text {
		sz++
	}
	for _, c := range n.Children {
		sz += nodeSize(c)
	}
	return sz
}

func normalize(n *PathNode) {
	if n == nil {
		return
	}
	if star, ok := n.Children["*"]; ok {
		for label, c := range n.Children {
			if label != "*" {
				c.Merge(star)
			}
		}
	}
	for _, c := range n.Children {
		normalize(c)
	}
}

// String renders the set for explain output, one path per line.
func (s *PathSet) String() string {
	if s.Root.All {
		return "/ (all)\n"
	}
	var b strings.Builder
	if s.Root.Text {
		b.WriteString("/ (text)\n")
	}
	writePaths(&b, s.Root, "")
	if b.Len() == 0 {
		return "(empty)\n"
	}
	return b.String()
}

func writePaths(b *strings.Builder, n *PathNode, prefix string) {
	suffix := ""
	if n.All {
		suffix = " (all)"
	} else if n.Text {
		suffix = " (text)"
	}
	if prefix != "" {
		b.WriteString(prefix + suffix + "\n")
	}
	if n.All {
		return
	}
	labels := make([]string, 0, len(n.Children))
	for l := range n.Children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		writePaths(b, n.Children[l], prefix+"/"+l)
	}
}

// Automaton state sentinels. Non-negative values are indices into the
// automaton's state table.
const (
	// StateSkip is the verdict for an irrelevant child: deliver its start
	// and end events (a shell), skip its interior.
	StateSkip int32 = -1
	// StateAll marks a keep-everything region: every event below is
	// delivered without further lookups.
	StateAll int32 = -2
)

// Automaton is the compiled, read-only form of a PathSet: a tree automaton
// over element labels whose current state answers, per event, whether to
// deliver it. It is immutable after Compile and safe for concurrent use by
// any number of readers.
//
// Compiled with a name-id vocabulary (CompileVocab), every state
// additionally carries a dense jump table indexed by the DTD's element
// ids, so the per-event verdict is one slice load (ChildID) instead of a
// map probe.
type Automaton struct {
	states []state
	vocab  bool
}

type state struct {
	children map[string]int32
	// byID is the vocabulary jump table: byID[id] is the verdict/successor
	// for a child with dense name id `id` (nil unless CompileVocab).
	byID []int32
	star int32 // verdict for labels without a named entry
	text bool
}

// Compile builds the skip automaton of a normalized path-set. Compile
// normalizes defensively, so callers may pass a freshly derived set.
func Compile(s *PathSet) *Automaton {
	s.Normalize()
	a := &Automaton{}
	a.build(s.Root)
	return a
}

// CompileVocab is Compile plus a dense jump table per state over the
// given name-id vocabulary (names[id] = element name, as produced by
// dtd.IDNames). Readers then dispatch with ChildID — one slice load per
// start tag. Labels in the path-set that are not in the vocabulary can
// never match a validated event and are simply unreachable through the
// id tables.
func CompileVocab(s *PathSet, names []string) *Automaton {
	a := Compile(s)
	a.vocab = true
	for i := range a.states {
		st := &a.states[i]
		st.byID = make([]int32, len(names))
		for id, name := range names {
			if next, ok := st.children[name]; ok {
				st.byID[id] = next
			} else {
				st.byID[id] = st.star
			}
		}
	}
	return a
}

// HasVocab reports whether the automaton carries id jump tables (built by
// CompileVocab) and therefore supports ChildID.
func (a *Automaton) HasVocab() bool { return a.vocab }

// ChildID is Child keyed by the child element's dense name id. Valid only
// on automata built by CompileVocab, for ids within that vocabulary.
func (a *Automaton) ChildID(st int32, id int32) int32 {
	if st == StateAll {
		return StateAll
	}
	if st < 0 || int(st) >= len(a.states) {
		return StateSkip
	}
	return a.states[st].byID[id]
}

// build interns a path node as a state and returns its id (or a
// sentinel).
func (a *Automaton) build(n *PathNode) int32 {
	if n.All {
		return StateAll
	}
	id := int32(len(a.states))
	a.states = append(a.states, state{star: StateSkip, text: n.Text})
	var children map[string]int32
	star := StateSkip
	for label, c := range n.Children {
		cid := a.build(c)
		if label == "*" {
			star = cid
			continue
		}
		if children == nil {
			children = make(map[string]int32, len(n.Children))
		}
		children[label] = cid
	}
	a.states[id].children = children
	a.states[id].star = star
	return id
}

// Start returns the automaton's start state (the virtual document node).
func (a *Automaton) Start() int32 {
	if len(a.states) == 0 {
		return StateAll // an all-root set compiles to zero states
	}
	return 0
}

// Child returns the state governing a child element with the given label:
// StateAll (deliver everything below), StateSkip (deliver a shell, skip
// the interior), or a state id to descend into.
func (a *Automaton) Child(st int32, label string) int32 {
	if st == StateAll {
		return StateAll
	}
	if st == StateSkip || st < 0 || int(st) >= len(a.states) {
		return StateSkip
	}
	s := &a.states[st]
	if next, ok := s.children[label]; ok {
		return next
	}
	return s.star
}

// Text reports whether direct text children of an element in state st
// must be delivered.
func (a *Automaton) Text(st int32) bool {
	if st == StateAll {
		return true
	}
	if st < 0 || int(st) >= len(a.states) {
		return false
	}
	return a.states[st].text
}

// Len returns the number of interned states (diagnostics).
func (a *Automaton) Len() int { return len(a.states) }
