// Package opt implements FluXQuery's algebraic, schema-driven query
// optimizer (paper §3.1, second step). It rewrites normalized queries
// using constraints derived from the DTD:
//
//   - loop merging under cardinality constraints: two consecutive loops
//     over the same path $r/a are fused when the DTD guarantees at most
//     one a-child per r ("a ∈ ||≤1 r"), saving an iteration and — after
//     scheduling — a buffered re-read of the stream;
//   - elimination of unsatisfiable conditionals under language
//     (co-occurrence) constraints: a condition requiring both an author
//     and an editor child is statically false under the paper's Figure 1
//     DTD, so its branch is removed;
//   - guaranteed-existence simplification: exists($x/a) is true when the
//     DTD guarantees an a-child, so the conditional collapses;
//   - empty-path elimination: loops and existence tests over paths the
//     DTD rules out entirely reduce to the empty sequence / false;
//   - boolean and comparison constant folding.
//
// Every rewrite is recorded in a Trace so that tools can explain the
// optimization, and each rule can be disabled individually for the
// ablation experiments.
package opt

import (
	"fmt"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

// Options switches individual rules off (for ablation benchmarks).
type Options struct {
	NoLoopMerging     bool
	NoCondElimination bool // unsatisfiable-conditional elimination
	NoExistsFolding   bool // guaranteed-existence simplification
	NoEmptyPathRules  bool
	NoConstantFolding bool
}

// Step records one applied rewrite.
type Step struct {
	Rule   string
	Detail string
}

func (s Step) String() string { return s.Rule + ": " + s.Detail }

// Trace is the sequence of rewrites applied during optimization.
type Trace []Step

// Optimize rewrites the normalized query e under DTD d until no more
// rules apply. It returns the rewritten query and the rewrite trace.
func Optimize(e xquery.Expr, d *dtd.DTD, opts Options) (xquery.Expr, Trace, error) {
	o := &optimizer{d: d, opts: opts}
	cur := e
	for i := 0; i < 32; i++ {
		o.changed = false
		next := o.rewrite(cur, map[string]string{xquery.RootVar: dtd.DocElem})
		if !o.changed {
			return next, o.trace, nil
		}
		cur = next
	}
	return cur, o.trace, fmt.Errorf("opt: rewriting did not reach a fixpoint")
}

type optimizer struct {
	d       *dtd.DTD
	opts    Options
	trace   Trace
	changed bool
}

func (o *optimizer) log(rule, format string, args ...any) {
	o.changed = true
	o.trace = append(o.trace, Step{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// typeOf resolves the element type a variable is bound to; "" if unknown.
func typeOf(env map[string]string, v string) string { return env[v] }

// bind returns env extended with v bound to the element type reached by
// one child step named label from parent type pt.
func bind(env map[string]string, v, pt, label string) map[string]string {
	out := make(map[string]string, len(env)+1)
	for k, val := range env {
		out[k] = val
	}
	if pt != "" && label != "*" {
		out[v] = label
	} else {
		out[v] = ""
	}
	return out
}

// rewrite applies one bottom-up rewriting pass.
func (o *optimizer) rewrite(e xquery.Expr, env map[string]string) xquery.Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case xquery.Seq:
		items := make([]xquery.Expr, 0, len(t.Items))
		for _, c := range t.Items {
			rc := o.rewrite(c, env)
			if _, empty := rc.(xquery.EmptySeq); empty {
				o.log("seq-cleanup", "dropped empty item")
				continue
			}
			if s, ok := rc.(xquery.Seq); ok {
				items = append(items, s.Items...)
				continue
			}
			items = append(items, rc)
		}
		items = o.mergeAdjacentLoops(items, env)
		switch len(items) {
		case 0:
			return xquery.EmptySeq{}
		case 1:
			return items[0]
		default:
			return xquery.Seq{Items: items}
		}
	case xquery.Elem:
		out := xquery.Elem{Name: t.Name, Attrs: t.Attrs}
		kids := make([]xquery.Expr, 0, len(t.Children))
		for _, c := range t.Children {
			rc := o.rewrite(c, env)
			if _, empty := rc.(xquery.EmptySeq); empty {
				continue
			}
			if s, ok := rc.(xquery.Seq); ok {
				kids = append(kids, s.Items...)
				continue
			}
			kids = append(kids, rc)
		}
		out.Children = o.mergeAdjacentLoops(kids, env)
		return out
	case xquery.For:
		b := t.Bindings[0]
		step := b.In.Steps[0]
		pt := typeOf(env, b.In.Var)
		if !o.opts.NoEmptyPathRules && pt != "" && step.Name != "*" && o.d.Cardinality(pt, step.Name) == dtd.CardNone {
			o.log("empty-path", "loop over %s eliminated: no %s child under %s", b.In, step.Name, pt)
			return xquery.EmptySeq{}
		}
		inner := bind(env, b.Var, pt, step.Name)
		ret := o.rewrite(t.Return, inner)
		if _, empty := ret.(xquery.EmptySeq); empty {
			o.log("empty-body", "loop over %s eliminated: empty body", b.In)
			return xquery.EmptySeq{}
		}
		return xquery.For{Bindings: t.Bindings, Return: ret}
	case xquery.If:
		cond := o.rewriteCond(t.Cond, env)
		then := o.rewrite(t.Then, env)
		els := o.rewrite(t.Else, env)
		if _, empty := then.(xquery.EmptySeq); empty {
			then = xquery.EmptySeq{}
		}
		if els != nil {
			if _, empty := els.(xquery.EmptySeq); empty {
				els = nil
			}
		}
		switch truth(cond) {
		case condTrue:
			if !o.opts.NoConstantFolding {
				o.log("if-true", "conditional replaced by then-branch")
				return then
			}
		case condFalse:
			if !o.opts.NoCondElimination {
				o.log("if-false", "conditional replaced by else-branch")
				if els == nil {
					return xquery.EmptySeq{}
				}
				return els
			}
		}
		if _, e1 := then.(xquery.EmptySeq); e1 && els == nil {
			o.log("if-empty", "conditional with empty branches eliminated")
			return xquery.EmptySeq{}
		}
		return xquery.If{Cond: cond, Then: then, Else: els}
	case xquery.Call:
		// Output-position calls: rewrite arguments (paths untouched).
		return t
	default:
		return t
	}
}

// condTruth classifies a rewritten condition.
type condTruth uint8

const (
	condUnknown condTruth = iota
	condTrue
	condFalse
)

func truth(c xquery.Expr) condTruth {
	if call, ok := c.(xquery.Call); ok {
		switch call.Name {
		case "true":
			return condTrue
		case "false":
			return condFalse
		}
	}
	return condUnknown
}

func boolCall(b bool) xquery.Expr {
	if b {
		return xquery.Call{Name: "true"}
	}
	return xquery.Call{Name: "false"}
}

// rewriteCond simplifies a condition.
func (o *optimizer) rewriteCond(c xquery.Expr, env map[string]string) xquery.Expr {
	switch t := c.(type) {
	case xquery.And:
		l := o.rewriteCond(t.L, env)
		r := o.rewriteCond(t.R, env)
		if !o.opts.NoConstantFolding {
			switch {
			case truth(l) == condFalse || truth(r) == condFalse:
				o.log("and-false", "conjunction is false")
				return boolCall(false)
			case truth(l) == condTrue:
				o.log("and-true", "dropped true conjunct")
				return r
			case truth(r) == condTrue:
				o.log("and-true", "dropped true conjunct")
				return l
			}
		}
		out := xquery.And{L: l, R: r}
		if !o.opts.NoCondElimination {
			if a, b, v, ok := o.findConflict(out, env); ok {
				o.log("conflict", "condition requires both %s and %s under %s — unsatisfiable (language constraint)", a, b, v)
				return boolCall(false)
			}
		}
		return out
	case xquery.Or:
		l := o.rewriteCond(t.L, env)
		r := o.rewriteCond(t.R, env)
		if !o.opts.NoConstantFolding {
			switch {
			case truth(l) == condTrue || truth(r) == condTrue:
				o.log("or-true", "disjunction is true")
				return boolCall(true)
			case truth(l) == condFalse:
				o.log("or-false", "dropped false disjunct")
				return r
			case truth(r) == condFalse:
				o.log("or-false", "dropped false disjunct")
				return l
			}
		}
		return xquery.Or{L: l, R: r}
	case xquery.Call:
		switch t.Name {
		case "not":
			inner := o.rewriteCond(t.Args[0], env)
			if !o.opts.NoConstantFolding {
				switch truth(inner) {
				case condTrue:
					o.log("not-fold", "not(true) = false")
					return boolCall(false)
				case condFalse:
					o.log("not-fold", "not(false) = true")
					return boolCall(true)
				}
			}
			return xquery.Call{Name: "not", Args: []xquery.Expr{inner}}
		case "exists", "empty":
			p, ok := t.Args[0].(xquery.Path)
			if !ok {
				return t
			}
			known, val := o.existsStatic(p, env)
			if !known {
				return t
			}
			if t.Name == "empty" {
				val = !val
			}
			o.log("exists-fold", "%s(%s) decided statically: %v", t.Name, p, val)
			return boolCall(val)
		default:
			return t
		}
	case xquery.Cmp:
		if !o.opts.NoConstantFolding {
			if v, ok := constCompare(t); ok {
				o.log("cmp-fold", "constant comparison %s = %v", t, v)
				return boolCall(v)
			}
		}
		// A comparison over an impossible path is false (existential
		// semantics over the empty sequence).
		if !o.opts.NoEmptyPathRules {
			for _, side := range []xquery.Expr{t.L, t.R} {
				if p, ok := side.(xquery.Path); ok && o.pathImpossible(p, env) {
					o.log("empty-path", "comparison %s is false: %s selects nothing", t, p)
					return boolCall(false)
				}
			}
		}
		return t
	default:
		return c
	}
}

// existsStatic decides exists(p) from the schema if possible: statically
// false when the schema rules the path out entirely, statically true when
// every step is guaranteed.
func (o *optimizer) existsStatic(p xquery.Path, env map[string]string) (known, val bool) {
	pt := typeOf(env, p.Var)
	if pt == "" || len(p.Steps) == 0 {
		return false, false
	}
	if !o.opts.NoEmptyPathRules && o.pathImpossible(p, env) {
		return true, false
	}
	if o.opts.NoExistsFolding {
		return false, false
	}
	cur := pt
	for _, s := range p.Steps {
		switch s.Axis {
		case xquery.TextAxis:
			return false, false // text presence is data-dependent
		case xquery.Attribute:
			e := o.d.Element(cur)
			if e == nil {
				return false, false
			}
			def := e.AttDef(s.Name)
			if def == nil || def.Default == dtd.AttImplied {
				return false, false
			}
			// #REQUIRED, #FIXED and defaulted attributes are always
			// present.
		default:
			if s.Name == "*" || !o.d.Guaranteed(cur, s.Name) {
				return false, false
			}
			cur = s.Name
		}
	}
	return true, true
}

// pathImpossible reports whether the schema rules out any match for p.
func (o *optimizer) pathImpossible(p xquery.Path, env map[string]string) bool {
	pt := typeOf(env, p.Var)
	if pt == "" {
		return false
	}
	cur := pt
	for _, s := range p.Steps {
		switch s.Axis {
		case xquery.TextAxis:
			e := o.d.Element(cur)
			return e != nil && !e.HasPCData()
		case xquery.Attribute:
			e := o.d.Element(cur)
			return e != nil && e.AttDef(s.Name) == nil
		default:
			if s.Name == "*" {
				return false
			}
			if o.d.Cardinality(cur, s.Name) == dtd.CardNone {
				return true
			}
			cur = s.Name
		}
	}
	return false
}

// findConflict looks for two conjuncts whose required child labels can
// never co-occur (the paper's author/editor example).
func (o *optimizer) findConflict(c xquery.Expr, env map[string]string) (a, b, parent string, found bool) {
	// Collect required (var, label) pairs from the conjunction.
	type req struct{ v, label string }
	var reqs []req
	var collect func(e xquery.Expr)
	collect = func(e xquery.Expr) {
		switch t := e.(type) {
		case xquery.And:
			collect(t.L)
			collect(t.R)
		case xquery.Cmp:
			// An (in)equality over a path holds only if the path is
			// non-empty (general comparisons are existential).
			for _, side := range []xquery.Expr{t.L, t.R} {
				if p, ok := side.(xquery.Path); ok && len(p.Steps) > 0 && p.Steps[0].Axis == xquery.Child && p.Steps[0].Name != "*" {
					reqs = append(reqs, req{p.Var, p.Steps[0].Name})
				}
			}
		case xquery.Call:
			if t.Name == "exists" {
				if p, ok := t.Args[0].(xquery.Path); ok && len(p.Steps) > 0 && p.Steps[0].Axis == xquery.Child && p.Steps[0].Name != "*" {
					reqs = append(reqs, req{p.Var, p.Steps[0].Name})
				}
			}
		}
	}
	collect(c)
	for i := 0; i < len(reqs); i++ {
		for j := i + 1; j < len(reqs); j++ {
			if reqs[i].v != reqs[j].v || reqs[i].label == reqs[j].label {
				continue
			}
			pt := typeOf(env, reqs[i].v)
			if pt == "" {
				continue
			}
			if o.d.Conflict(pt, reqs[i].label, reqs[j].label) {
				return reqs[i].label, reqs[j].label, pt, true
			}
		}
	}
	return "", "", "", false
}

// constCompare folds comparisons between literals.
func constCompare(c xquery.Cmp) (bool, bool) {
	ls, lok := literalString(c.L)
	rs, rok := literalString(c.R)
	if !lok || !rok {
		return false, false
	}
	ln, lnum := literalNum(c.L)
	rn, rnum := literalNum(c.R)
	if lnum && rnum {
		return cmpNum(c.Op, ln, rn), true
	}
	return cmpStr(c.Op, ls, rs), true
}

func literalString(e xquery.Expr) (string, bool) {
	switch t := e.(type) {
	case xquery.Str:
		return t.Value, true
	case xquery.Num:
		return t.Lit, true
	default:
		return "", false
	}
}

func literalNum(e xquery.Expr) (float64, bool) {
	if n, ok := e.(xquery.Num); ok {
		return n.Value, true
	}
	return 0, false
}

func cmpNum(op xquery.CmpOp, a, b float64) bool {
	switch op {
	case xquery.Eq:
		return a == b
	case xquery.Ne:
		return a != b
	case xquery.Lt:
		return a < b
	case xquery.Le:
		return a <= b
	case xquery.Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpStr(op xquery.CmpOp, a, b string) bool {
	switch op {
	case xquery.Eq:
		return a == b
	case xquery.Ne:
		return a != b
	case xquery.Lt:
		return a < b
	case xquery.Le:
		return a <= b
	case xquery.Gt:
		return a > b
	default:
		return a >= b
	}
}

// mergeAdjacentLoops applies the paper's loop-merging rule to a sequence:
//
//	{ for $x in $r/a return α } { for $y in $r/a return β }
//	  ==>  { for $x in $r/a return α β[y:=x] }      (a ∈ ||≤1 r)
func (o *optimizer) mergeAdjacentLoops(items []xquery.Expr, env map[string]string) []xquery.Expr {
	if o.opts.NoLoopMerging {
		return items
	}
	out := make([]xquery.Expr, 0, len(items))
	for _, it := range items {
		cur, ok := it.(xquery.For)
		if !ok || len(out) == 0 {
			out = append(out, it)
			continue
		}
		prev, ok := out[len(out)-1].(xquery.For)
		if !ok {
			out = append(out, it)
			continue
		}
		pb, cb := prev.Bindings[0], cur.Bindings[0]
		if pb.In.String() != cb.In.String() {
			out = append(out, it)
			continue
		}
		pt := typeOf(env, pb.In.Var)
		label := pb.In.Steps[0].Name
		if pt == "" || label == "*" || pb.In.Steps[0].Axis != xquery.Child {
			out = append(out, it)
			continue
		}
		if !o.d.Cardinality(pt, label).AtMostOne() {
			out = append(out, it)
			continue
		}
		// Rename the second loop's variable to the first's.
		body := cur.Return
		if cb.Var != pb.Var {
			body = rename(body, cb.Var, pb.Var)
		}
		merged := xquery.For{
			Bindings: prev.Bindings,
			Return:   flatSeq(prev.Return, body),
		}
		o.log("loop-merge", "merged consecutive loops over %s (%s ∈ ||<=1 %s)", pb.In, label, pt)
		out[len(out)-1] = merged
	}
	return out
}

func flatSeq(a, b xquery.Expr) xquery.Expr {
	var items []xquery.Expr
	if s, ok := a.(xquery.Seq); ok {
		items = append(items, s.Items...)
	} else {
		items = append(items, a)
	}
	if s, ok := b.(xquery.Seq); ok {
		items = append(items, s.Items...)
	} else {
		items = append(items, b)
	}
	return xquery.Seq{Items: items}
}

// rename substitutes variable occurrences; renaming is capture-safe
// because normal-form fresh variables are globally unique. It delegates to
// the normalizer's substitution: renaming $from to $to is substituting the
// zero-step path $to.
func rename(e xquery.Expr, from, to string) xquery.Expr {
	out, err := nf.Substitute(e, from, xquery.Path{Var: to})
	if err != nil {
		return e
	}
	return out
}
