package opt

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

// Figure 1 DTD of the paper.
const strongBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

func optimize(t *testing.T, src, dtdSrc string, opts Options) (xquery.Expr, Trace) {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	out, tr, err := Optimize(n, d, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return out, tr
}

func hasRule(tr Trace, rule string) bool {
	for _, s := range tr {
		if s.Rule == rule {
			return true
		}
	}
	return false
}

// TestLoopMergingPaperExample reproduces §3.1: two consecutive loops over
// $book/publisher merge because publisher ∈ ||<=1 book.
func TestLoopMergingPaperExample(t *testing.T) {
	src := `for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return <p1>{ $x/text() }</p1> }{ for $x in $b/publisher return <p2>{ $x/text() }</p2> }</r>`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "loop-merge") {
		t.Fatalf("loop-merge not applied; trace = %v", tr)
	}
	// After merging there must be exactly one loop over $b/publisher.
	count := strings.Count(out.String(), "in $b/publisher")
	if count != 1 {
		t.Errorf("want 1 publisher loop after merge, got %d:\n%s", count, out)
	}
}

// TestLoopMergingBlockedByCardinality: loops over author (author+ allows
// many) must NOT be merged — iterating twice is not the same as one loop.
func TestLoopMergingBlockedByCardinality(t *testing.T) {
	src := `for $b in $ROOT/bib/book return <r>{ for $x in $b/author return <a1>{ $x/text() }</a1> }{ for $y in $b/author return <a2>{ $y/text() }</a2> }</r>`
	out, tr := optimize(t, src, strongBib, Options{})
	if hasRule(tr, "loop-merge") {
		t.Fatalf("loop-merge wrongly applied to author (card *); trace = %v", tr)
	}
	if strings.Count(out.String(), "in $b/author") != 2 {
		t.Errorf("author loops must survive:\n%s", out)
	}
}

func TestLoopMergingDisabled(t *testing.T) {
	src := `for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return <p1/> }{ for $x in $b/publisher return <p2/> }</r>`
	_, tr := optimize(t, src, strongBib, Options{NoLoopMerging: true})
	if hasRule(tr, "loop-merge") {
		t.Fatal("loop-merge applied despite NoLoopMerging")
	}
}

// TestConflictEliminationPaperExample reproduces §3.1: the condition
// author = "Goedel" and editor = "Goedel" is unsatisfiable under Figure 1.
func TestConflictEliminationPaperExample(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit>{ $b/title }</hit> else () }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "conflict") {
		t.Fatalf("conflict rule not applied; trace = %v", tr)
	}
	s := out.String()
	if strings.Contains(s, "hit") || strings.Contains(s, "Goedel") {
		t.Errorf("unsatisfiable branch survived:\n%s", s)
	}
}

func TestConflictEliminationKeepsElse(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if ($b/author = "G" and $b/editor = "G") then <hit/> else <miss/> }`
	out, _ := optimize(t, src, strongBib, Options{})
	s := out.String()
	if !strings.Contains(s, "miss") {
		t.Errorf("else branch lost:\n%s", s)
	}
	if strings.Contains(s, "hit") {
		t.Errorf("then branch survived:\n%s", s)
	}
}

func TestConflictEliminationDisabled(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if ($b/author = "G" and $b/editor = "G") then <hit/> else () }`
	out, tr := optimize(t, src, strongBib, Options{NoCondElimination: true})
	if hasRule(tr, "conflict") {
		t.Fatal("conflict applied despite NoCondElimination")
	}
	if !strings.Contains(out.String(), "hit") {
		t.Errorf("branch must survive with rule disabled:\n%s", out)
	}
}

// TestNoConflictNotEliminated: author+publisher can co-occur, so the
// condition stays.
func TestNoConflictNotEliminated(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if ($b/author = "G" and $b/publisher = "P") then <hit/> else () }`
	out, tr := optimize(t, src, strongBib, Options{})
	if hasRule(tr, "conflict") {
		t.Fatalf("conflict wrongly found; trace = %v", tr)
	}
	if !strings.Contains(out.String(), "hit") {
		t.Errorf("satisfiable conditional eliminated:\n%s", out)
	}
}

func TestExistsGuaranteedFolds(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (exists($b/title)) then <has/> else <not/> }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "exists-fold") {
		t.Fatalf("exists-fold missing; trace = %v", tr)
	}
	s := out.String()
	if strings.Contains(s, "if ") || strings.Contains(s, "not/") {
		t.Errorf("conditional should collapse to then branch:\n%s", s)
	}
}

func TestExistsOptionalNotFolded(t *testing.T) {
	// author is not guaranteed (editor alternative).
	src := `for $b in $ROOT/bib/book return { if (exists($b/author)) then <has/> else () }`
	_, tr := optimize(t, src, strongBib, Options{})
	if hasRule(tr, "exists-fold") {
		t.Fatalf("exists($b/author) wrongly folded; trace = %v", tr)
	}
}

func TestEmptyPathLoopEliminated(t *testing.T) {
	// book has no chapter children.
	src := `for $b in $ROOT/bib/book return <r>{ for $c in $b/chapter return { $c } }</r>` // chapter undeclared under book
	d := dtd.MustParse(strongBib + "<!ELEMENT chapter (#PCDATA)>")
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, tr, err := Optimize(n, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasRule(tr, "empty-path") {
		t.Fatalf("empty-path missing; trace = %v", tr)
	}
	if strings.Contains(out.String(), "chapter") {
		t.Errorf("impossible loop survived:\n%s", out)
	}
}

func TestConstantComparisonFolding(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (1 < 2) then <a/> else <b/> }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "cmp-fold") {
		t.Fatalf("cmp-fold missing; trace = %v", tr)
	}
	if strings.Contains(out.String(), "if") {
		t.Errorf("constant conditional survived:\n%s", out)
	}
}

func TestBooleanFolding(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (exists($b/title) and $b/publisher = "X") then <a/> else () }`
	out, _ := optimize(t, src, strongBib, Options{})
	// exists(title) is guaranteed true and must disappear from the
	// conjunction; the publisher comparison must remain.
	s := out.String()
	if strings.Contains(s, "exists") {
		t.Errorf("guaranteed exists survived in conjunction:\n%s", s)
	}
	if !strings.Contains(s, "$b/publisher") {
		t.Errorf("data-dependent conjunct lost:\n%s", s)
	}
}

func TestOrFolding(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (exists($b/title) or $b/publisher = "X") then <a/> else <b/> }`
	out, _ := optimize(t, src, strongBib, Options{})
	s := out.String()
	if strings.Contains(s, "if ") {
		t.Errorf("disjunction with true arm should fold:\n%s", s)
	}
	if !strings.Contains(s, "<a/>") {
		t.Errorf("then branch lost:\n%s", s)
	}
}

// TestOptimizeProducesNormalForm: rewrites must preserve normal form.
func TestOptimizeProducesNormalForm(t *testing.T) {
	srcs := []string{
		`for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return { $x } }{ for $x in $b/publisher return { $x/text() } }</r>`,
		`for $b in $ROOT/bib/book return { if ($b/author = "G" and $b/editor = "G") then <h/> else <m/> }`,
	}
	for _, src := range srcs {
		out, _ := optimize(t, src, strongBib, Options{})
		if !nf.IsNormal(out) {
			t.Errorf("optimizer output not normal:\n%s", out)
		}
	}
}

// TestTraceIsMeaningful: trace entries mention the constraint used.
func TestTraceIsMeaningful(t *testing.T) {
	src := `for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return <p/> }{ for $x in $b/publisher return <q/> }</r>`
	_, tr := optimize(t, src, strongBib, Options{})
	found := false
	for _, s := range tr {
		if s.Rule == "loop-merge" && strings.Contains(s.Detail, "||<=1") {
			found = true
		}
	}
	if !found {
		t.Errorf("trace does not cite the cardinality constraint: %v", tr)
	}
}
