package opt

import (
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/xquery"
)

func TestConstantFoldingCanBeDisabled(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (1 < 2) then <a/> else <b/> }`
	_, tr := optimize(t, src, strongBib, Options{NoConstantFolding: true})
	if hasRule(tr, "cmp-fold") || hasRule(tr, "if-true") {
		t.Fatalf("folding applied despite NoConstantFolding: %v", tr)
	}
}

func TestEmptyPathRulesCanBeDisabled(t *testing.T) {
	d := dtd.MustParse(strongBib + "<!ELEMENT chapter (#PCDATA)>")
	src := `for $b in $ROOT/bib/book return <r>{ for $c in $b/chapter return { $c } }</r>`
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, tr, err := Optimize(n, d, Options{NoEmptyPathRules: true})
	if err != nil {
		t.Fatal(err)
	}
	if hasRule(tr, "empty-path") {
		t.Fatalf("empty-path applied despite option: %v", tr)
	}
	if !strings.Contains(out.String(), "chapter") {
		t.Errorf("loop should survive: %s", out)
	}
}

func TestImpossibleComparisonFolds(t *testing.T) {
	d := dtd.MustParse(strongBib + "<!ELEMENT chapter (#PCDATA)>")
	src := `for $b in $ROOT/bib/book return { if ($b/chapter = "x") then <hit/> else <miss/> }`
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, tr, err := Optimize(n, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasRule(tr, "empty-path") {
		t.Fatalf("empty-path fold missing: %v", tr)
	}
	s := out.String()
	if strings.Contains(s, "hit") || !strings.Contains(s, "miss") {
		t.Errorf("impossible comparison not folded to else: %s", s)
	}
}

func TestUndeclaredAttributeExistsFolds(t *testing.T) {
	src := `for $b in $ROOT/bib/book return { if (exists($b/@isbn)) then <h/> else <m/> }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "exists-fold") && !hasRule(tr, "empty-path") {
		t.Fatalf("undeclared attribute not folded: %v", tr)
	}
	if strings.Contains(out.String(), "<h/>") {
		t.Errorf("then branch should be gone: %s", out)
	}
}

func TestImpossibleTextFolds(t *testing.T) {
	// bib has element content only — $f/text() can never match.
	src := `for $f in $ROOT/bib return { if ($f/text() = "x") then <h/> else <m/> }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "empty-path") {
		t.Fatalf("text() on element-content not folded: %v\n%s", tr, out)
	}
}

func TestNotFoldingThroughConflict(t *testing.T) {
	// not(author-and-editor-conflict) folds to true, then if-true fires.
	src := `for $b in $ROOT/bib/book return { if (not($b/author = "X" and $b/editor = "Y")) then <always/> else <never/> }`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "not-fold") {
		t.Fatalf("not-fold missing: %v", tr)
	}
	s := out.String()
	if strings.Contains(s, "never") || !strings.Contains(s, "always") {
		t.Errorf("got %s", s)
	}
}

func TestWhereConflictEliminatesLoopBody(t *testing.T) {
	// A where-clause version of the paper's example: after normalization
	// the condition sits in an if; elimination leaves an empty loop body,
	// which the optimizer then removes entirely.
	src := `for $b in $ROOT/bib/book where $b/author = "G" and $b/editor = "G" return <hit/>`
	out, tr := optimize(t, src, strongBib, Options{})
	if !hasRule(tr, "conflict") || !hasRule(tr, "empty-body") {
		t.Fatalf("rules missing: %v", tr)
	}
	if !strings.Contains(out.String(), "()") && strings.Contains(out.String(), "for") {
		t.Errorf("dead loop survived: %s", out)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	srcs := []string{
		`for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return { $x } }{ for $x in $b/publisher return { $x } }</r>`,
		`for $b in $ROOT/bib/book return { if (exists($b/title)) then <h/> else <m/> }`,
	}
	d := dtd.MustParse(strongBib)
	for _, src := range srcs {
		n, err := nf.Normalize(xquery.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		once, _, err := Optimize(n, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		twice, tr, err := Optimize(once, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != 0 {
			t.Errorf("second pass rewrote again: %v", tr)
		}
		if !xquery.Equal(once, twice) {
			t.Errorf("not idempotent:\n%s\nvs\n%s", once, twice)
		}
	}
}
