package xquery

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExpr builds a random well-formed expression of the fragment.
func genExpr(r *rand.Rand, depth int, output bool) Expr {
	if depth <= 0 {
		return genLeaf(r, output)
	}
	switch r.Intn(6) {
	case 0:
		return genLeaf(r, output)
	case 1:
		e := Elem{Name: name(r)}
		kids := r.Intn(3)
		for i := 0; i < kids; i++ {
			e.Children = append(e.Children, genExpr(r, depth-1, true))
		}
		if r.Intn(2) == 0 {
			e.Attrs = append(e.Attrs, Attr{Name: name(r), Value: "v"})
		}
		return e
	case 2:
		return For{
			Bindings: []Binding{{Var: varname(r), In: genPath(r)}},
			Return:   genExpr(r, depth-1, true),
		}
	case 3:
		f := For{
			Bindings: []Binding{{Var: varname(r), In: genPath(r)}},
			Where:    genCond(r, depth-1),
			Return:   genExpr(r, depth-1, true),
		}
		return f
	case 4:
		var els Expr
		if r.Intn(2) == 0 {
			els = genExpr(r, depth-1, true)
		}
		return If{Cond: genCond(r, depth-1), Then: genExpr(r, depth-1, true), Else: els}
	default:
		items := make([]Expr, 2+r.Intn(2))
		for i := range items {
			items[i] = genExpr(r, depth-1, output)
		}
		return Seq{Items: items}
	}
}

func genLeaf(r *rand.Rand, output bool) Expr {
	switch r.Intn(4) {
	case 0:
		return genPath(r)
	case 1:
		return Str{Value: "lit"}
	case 2:
		return Num{Lit: "42", Value: 42}
	default:
		if output {
			return Elem{Name: name(r)}
		}
		return genPath(r)
	}
}

func genPath(r *rand.Rand) Path {
	p := Path{Var: varname(r)}
	steps := 1 + r.Intn(3)
	for i := 0; i < steps; i++ {
		p.Steps = append(p.Steps, Step{Axis: Child, Name: name(r)})
	}
	switch r.Intn(4) {
	case 0:
		p.Steps = append(p.Steps, Step{Axis: Attribute, Name: name(r)})
	case 1:
		p.Steps = append(p.Steps, Step{Axis: TextAxis})
	}
	return p
}

func genCond(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(2) == 0 {
		return Cmp{Op: CmpOp(r.Intn(6)), L: genPath(r), R: Str{Value: "x"}}
	}
	switch r.Intn(3) {
	case 0:
		return And{L: genCond(r, depth-1), R: genCond(r, depth-1)}
	case 1:
		return Or{L: genCond(r, depth-1), R: genCond(r, depth-1)}
	default:
		return Call{Name: "exists", Args: []Expr{genPath(r)}}
	}
}

func name(r *rand.Rand) string {
	return []string{"alpha", "b", "c-c", "d.d", "e1"}[r.Intn(5)]
}

func varname(r *rand.Rand) string {
	return []string{"x", "y", "z", "ROOT"}[r.Intn(4)]
}

type exprValue struct{ e Expr }

// Generate implements quick.Generator.
func (exprValue) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(exprValue{e: genExpr(r, 4, true)})
}

// TestQuickPrintParseRoundTrip: every generated AST survives
// print-then-parse structurally intact. This pins the printer and parser
// against each other over the whole fragment.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(ev exprValue) bool {
		printed := ev.e.String()
		back, err := Parse(printed)
		if err != nil {
			t.Logf("parse error on %q: %v", printed, err)
			return false
		}
		return Equal(ev.e, back) || back.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFreeVarsStableUnderPrinting: FreeVars is invariant under a
// print/parse round trip.
func TestQuickFreeVarsStableUnderPrinting(t *testing.T) {
	f := func(ev exprValue) bool {
		back, err := Parse(ev.e.String())
		if err != nil {
			return false
		}
		a, b := FreeVars(ev.e), FreeVars(back)
		if len(a) != len(b) {
			return false
		}
		for v := range a {
			if !b[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWalkVisitsAllPaths: Paths() finds at least every path that a
// manual walk finds.
func TestQuickWalkVisitsAllPaths(t *testing.T) {
	f := func(ev exprValue) bool {
		count := 0
		Walk(ev.e, func(x Expr) bool {
			if _, ok := x.(Path); ok {
				count++
			}
			return true
		})
		return len(Paths(ev.e)) >= count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
