package xquery

import (
	"strings"
	"testing"
)

// The paper's running example, XMP use case Q3.
const q3 = `<results>
{ for $b in $ROOT/bib/book return
  <result> { $b/title } { $b/author } </result> }
</results>`

func TestParseQ3(t *testing.T) {
	e := MustParse(q3)
	results, ok := e.(Elem)
	if !ok || results.Name != "results" {
		t.Fatalf("top = %#v", e)
	}
	if len(results.Children) != 1 {
		t.Fatalf("children = %d", len(results.Children))
	}
	f, ok := results.Children[0].(For)
	if !ok {
		t.Fatalf("child = %#v", results.Children[0])
	}
	if len(f.Bindings) != 1 || f.Bindings[0].Var != "b" {
		t.Fatalf("bindings = %+v", f.Bindings)
	}
	in := f.Bindings[0].In
	if in.Var != RootVar || len(in.Steps) != 2 || in.Steps[0].Name != "bib" || in.Steps[1].Name != "book" {
		t.Fatalf("in = %+v", in)
	}
	body, ok := f.Return.(Elem)
	if !ok || body.Name != "result" || len(body.Children) != 2 {
		t.Fatalf("body = %#v", f.Return)
	}
	p1 := body.Children[0].(Path)
	if p1.Var != "b" || p1.Steps[0].Name != "title" {
		t.Fatalf("first path = %+v", p1)
	}
}

func TestParseWhereAndComparisons(t *testing.T) {
	e := MustParse(`for $b in $ROOT/bib/book where $b/publisher = "Addison-Wesley" and $b/@year > 1991 return { $b/title }`)
	f := e.(For)
	and, ok := f.Where.(And)
	if !ok {
		t.Fatalf("where = %#v", f.Where)
	}
	left := and.L.(Cmp)
	if left.Op != Eq {
		t.Errorf("left op = %v", left.Op)
	}
	if left.R.(Str).Value != "Addison-Wesley" {
		t.Errorf("left rhs = %#v", left.R)
	}
	right := and.R.(Cmp)
	if right.Op != Gt {
		t.Errorf("right op = %v", right.Op)
	}
	pr := right.L.(Path)
	if pr.Steps[0].Axis != Attribute || pr.Steps[0].Name != "year" {
		t.Errorf("attr step = %+v", pr.Steps[0])
	}
	if right.R.(Num).Value != 1991 {
		t.Errorf("rhs = %#v", right.R)
	}
}

func TestParseKeywordComparisons(t *testing.T) {
	e := MustParse(`for $x in $d/a where $x/v lt 5 return { $x }`)
	if e.(For).Where.(Cmp).Op != Lt {
		t.Error("lt keyword not parsed")
	}
}

func TestParseMultiVarForDesugarsLater(t *testing.T) {
	e := MustParse(`for $a in $ROOT/x/a, $b in $ROOT/y/b where $a = $b return <pair/>`)
	f := e.(For)
	if len(f.Bindings) != 2 {
		t.Fatalf("bindings = %+v", f.Bindings)
	}
}

func TestParseLet(t *testing.T) {
	e := MustParse(`let $t := $b/title return <r>{ $t }</r>`)
	l := e.(Let)
	if l.Bindings[0].Var != "t" {
		t.Fatalf("let = %+v", l)
	}
	e2 := MustParse(`for $b in $d/book let $a := $b/author return { $a }`)
	if len(e2.(For).Lets) != 1 {
		t.Fatal("for-let not parsed")
	}
}

func TestParseIfAndBooleans(t *testing.T) {
	e := MustParse(`if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit/> else ()`)
	i := e.(If)
	if i.Else != nil {
		t.Errorf("else () should normalize to nil, got %#v", i.Else)
	}
	if _, ok := i.Cond.(And); !ok {
		t.Errorf("cond = %#v", i.Cond)
	}
	e2 := MustParse(`if (exists($b/author) or not(exists($b/editor))) then 1 else 2`)
	or := e2.(If).Cond.(Or)
	if or.L.(Call).Name != "exists" {
		t.Errorf("or.L = %#v", or.L)
	}
	if or.R.(Call).Name != "not" {
		t.Errorf("or.R = %#v", or.R)
	}
}

func TestParseLeadingSlashIsRoot(t *testing.T) {
	e := MustParse(`for $b in /bib/book return { $b }`)
	if got := e.(For).Bindings[0].In.Var; got != RootVar {
		t.Errorf("var = %q", got)
	}
}

func TestParseTextStepAndWildcard(t *testing.T) {
	e := MustParse(`{ $b/title/text() }`)
	p := e.(Path)
	if p.Steps[1].Axis != TextAxis {
		t.Errorf("steps = %+v", p.Steps)
	}
	e2 := MustParse(`for $x in $b/* return { $x }`)
	if e2.(For).Bindings[0].In.Steps[0].Name != "*" {
		t.Error("wildcard step lost")
	}
}

func TestParseConstructorDetails(t *testing.T) {
	e := MustParse(`<a x="1" y="a&amp;b"><b/>hello {$v} world<c>t</c></a>`)
	a := e.(Elem)
	if len(a.Attrs) != 2 || a.Attrs[1].Value != "a&b" {
		t.Fatalf("attrs = %+v", a.Attrs)
	}
	// children: <b/>, "hello ", $v, " world", <c>t</c>
	if len(a.Children) != 5 {
		t.Fatalf("children = %#v", a.Children)
	}
	if a.Children[1].(Text).Data != "hello " {
		t.Errorf("text = %#v", a.Children[1])
	}
	if a.Children[3].(Text).Data != " world" {
		t.Errorf("text = %#v", a.Children[3])
	}
	if a.Children[4].(Elem).Children[0].(Text).Data != "t" {
		t.Errorf("nested = %#v", a.Children[4])
	}
}

func TestParseBraceEscapes(t *testing.T) {
	e := MustParse(`<a>left {{ right }}</a>`)
	if got := e.(Elem).Children[0].(Text).Data; got != "left { right }" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCommentsAnywhere(t *testing.T) {
	e := MustParse(`(: outer (: nested :) :) for $b (: x :) in $ROOT/bib/book return { $b }`)
	if _, ok := e.(For); !ok {
		t.Fatalf("got %#v", e)
	}
}

func TestParseSequences(t *testing.T) {
	e := MustParse(`<r>{ $a/x, $a/y }</r>`)
	seq := e.(Elem).Children[0].(Seq)
	if len(seq.Items) != 2 {
		t.Fatalf("seq = %#v", seq)
	}
}

func TestParseStringEscapedQuote(t *testing.T) {
	e := MustParse(`"say ""hi"""`)
	if e.(Str).Value != `say "hi"` {
		t.Errorf("got %q", e.(Str).Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bare name", "book"},
		{"unknown function", "frobnicate($x)"},
		{"missing return", "for $x in $d/a"},
		{"bad let", "let $x in $d/a return 1"},
		{"unterminated constructor", "<a>"},
		{"mismatched tags", "<a></b>"},
		{"computed attribute", `<a x="{1}"/>`},
		{"trailing input", "$a/b $c"},
		{"unterminated string", `"abc`},
		{"lone closing brace", "<a>}</a>"},
		{"path after slash", "$a/"},
		{"arity", "exists($a, $b)"},
		{"unterminated comment", "(: hi"},
		{"else missing paren", "if $x then 1 else 2"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: no error for %q", c.name, c.src)
		}
	}
}

// TestPrintParseRoundTrip: printing any parsed query and re-parsing it
// yields a structurally identical AST.
func TestPrintParseRoundTrip(t *testing.T) {
	queries := []string{
		q3,
		`for $b in $ROOT/bib/book where $b/publisher = "AW" and $b/@year > 1991 return <book>{ $b/title }</book>`,
		`for $a in $ROOT/bib/book/author return <a>{ $a/last, $a/first }</a>`,
		`let $t := $b/title return (<r>{ $t }</r>, <s/>)`,
		`if (exists($b/editor)) then { $b/editor } else { $b/author }`,
		`<out>plain {{ text }} &amp; stuff { $v }</out>`,
		`for $x in $d/a, $y in $x/b let $z := $y/c where $z = "q" or $z != "r" return { $z/text() }`,
		`concat("a", "b", "c")`,
		`distinct-values($ROOT/bib/book/author)`,
		`for $p in /site/people/person where $p/@id = "person0" return { $p/name }`,
	}
	for _, q := range queries {
		e1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, q, err)
		}
		if !Equal(e1, e2) {
			t.Errorf("round trip changed AST:\n%s\nvs\n%s", e1, e2)
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := MustParse(`for $b in $ROOT/bib/book return <r>{ $b/title, $x/other }</r>`)
	free := FreeVars(e)
	if !free[RootVar] || !free["x"] || free["b"] {
		t.Errorf("free = %v", free)
	}
}

func TestPathsCollection(t *testing.T) {
	e := MustParse(`for $b in $ROOT/bib/book where $b/y = "1" return { $b/title }`)
	ps := Paths(e)
	var strs []string
	for _, p := range ps {
		strs = append(strs, p.String())
	}
	joined := strings.Join(strs, " ")
	for _, want := range []string{"$ROOT/bib/book", "$b/y", "$b/title"} {
		if !strings.Contains(joined, want) {
			t.Errorf("paths %v missing %s", strs, want)
		}
	}
}

func TestWalkPruning(t *testing.T) {
	e := MustParse(`<a>{ for $x in $d/p return { $x } }</a>`)
	var n int
	Walk(e, func(x Expr) bool {
		n++
		_, isFor := x.(For)
		return !isFor // do not descend into the loop
	})
	if n != 2 { // Elem + For
		t.Errorf("visited %d nodes, want 2", n)
	}
}

// Truncated queries must produce parse errors, not panics: the
// continuous-query server compiles untrusted query text.
func TestParseTruncatedInputs(t *testing.T) {
	for _, src := range []string{
		"for $x in",
		"for $x in ",
		"for",
		"<a>{",
		`"unterminated`,
		"$",
		"for $b in $ROOT/bib/book where",
		"for $b in $ROOT/bib/book return",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

// TestParseDeepPaths: path steps are parsed iteratively, so a chain far
// past the dispatch trie's depth cap (shared.DepthCap = 64) must parse —
// the trie handles such plans with its flood fallback, not the parser.
func TestParseDeepPaths(t *testing.T) {
	for _, n := range []int{63, 64, 65, 200} {
		src := "for $x in $ROOT" + strings.Repeat("/n", n) + " return <r>{ $x/t }</r>"
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("depth %d: %v", n, err)
		}
		f, ok := e.(For)
		if !ok {
			t.Fatalf("depth %d: top = %#v", n, e)
		}
		if got := len(f.Bindings[0].In.Steps); got != n {
			t.Fatalf("depth %d: parsed %d steps", n, got)
		}
	}
}

// TestParseNestingBounded: pathological nesting must come back as a
// ParseError, never a goroutine stack overflow (which is fatal and
// unrecoverable — a server parsing untrusted queries must survive it).
func TestParseNestingBounded(t *testing.T) {
	for name, src := range map[string]string{
		"parens":       strings.Repeat("(", 100_000) + "1" + strings.Repeat(")", 100_000),
		"constructors": strings.Repeat("<a>", 100_000) + strings.Repeat("</a>", 100_000),
		"flwor":        strings.Repeat("for $x in $ROOT/a return ", 100_000) + "1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: pathological nesting accepted", name)
		} else if pe := err.(*ParseError); !strings.Contains(pe.Msg, "nesting") {
			t.Errorf("%s: error is %v, want a nesting-limit ParseError", name, err)
		}
	}
}

// TestParseNestingCapAllowsReasonableDepth: realistic queries sit far
// below the cap.
func TestParseNestingCapAllowsReasonableDepth(t *testing.T) {
	src := strings.Repeat("<a>", 100) + "{ $x/t }" + strings.Repeat("</a>", 100)
	if _, err := Parse(src); err != nil {
		t.Fatalf("100-deep constructor rejected: %v", err)
	}
}
