package xquery

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax error in a query.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a query in the supported XQuery fragment.
//
// Lexical notes: a '<' in expression position starts an element
// constructor; after a complete operand it is the less-than operator (the
// keyword forms lt/le/gt/ge/eq/ne are also accepted). XQuery comments
// (: like this :) may appear anywhere whitespace may.
func Parse(src string) (Expr, error) {
	p := &qparser{src: src}
	p.ws()
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if !p.eof() {
		return nil, p.errf("trailing input %q", p.rest(12))
	}
	return e, nil
}

// MustParse parses or panics; for tests and fixed example queries.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type qparser struct {
	src   string
	pos   int
	depth int
}

// maxNest bounds expression nesting. Every recursion cycle in the parser
// passes through exprSingle or constructor, so counting those two turns a
// pathological input (thousands of nested parentheses or constructors)
// into a ParseError instead of a fatal goroutine stack overflow. Paths
// are parsed iteratively and can be arbitrarily long — a chain of steps
// far past the dispatch trie's depth cap is fine (the trie floods there,
// see shared.DepthCap).
const maxNest = 256

func (p *qparser) enter() error {
	p.depth++
	if p.depth > maxNest {
		return p.errf("expression nesting exceeds %d levels", maxNest)
	}
	return nil
}

func (p *qparser) eof() bool { return p.pos >= len(p.src) }

func (p *qparser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *qparser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

// ws skips whitespace and (: comments :) (which nest).
func (p *qparser) ws() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "(:") {
			depth := 1
			p.pos += 2
			for p.pos < len(p.src) && depth > 0 {
				switch {
				case strings.HasPrefix(p.src[p.pos:], "(:"):
					depth++
					p.pos += 2
				case strings.HasPrefix(p.src[p.pos:], ":)"):
					depth--
					p.pos += 2
				default:
					p.pos++
				}
			}
			continue
		}
		return
	}
}

func (p *qparser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// word consumes the keyword s only when followed by a non-name character.
func (p *qparser) word(s string) bool {
	rest := p.src[p.pos:]
	if !strings.HasPrefix(rest, s) {
		return false
	}
	if len(rest) > len(s) && isNameChar(rest[len(s)]) {
		return false
	}
	p.pos += len(s)
	return true
}

// peekWord reports whether the keyword s is next, without consuming.
func (p *qparser) peekWord(s string) bool {
	save := p.pos
	ok := p.word(s)
	p.pos = save
	return ok
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *qparser) name() (string, error) {
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected name, found %q", p.rest(8))
	}
	start := p.pos
	p.pos++
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// expr parses a comma-separated sequence.
func (p *qparser) expr() (Expr, error) {
	first, err := p.exprSingle()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		p.ws()
		if !p.consume(",") {
			break
		}
		p.ws()
		e, err := p.exprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return Seq{Items: items}, nil
}

func (p *qparser) exprSingle() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	p.ws()
	switch {
	case p.peekWord("for"):
		return p.flwor()
	case p.peekWord("let"):
		return p.letExpr()
	case p.peekWord("if"):
		return p.ifExpr()
	default:
		return p.orExpr()
	}
}

func (p *qparser) binding(assign bool) (Binding, error) {
	p.ws()
	if !p.consume("$") {
		return Binding{}, p.errf("expected variable")
	}
	v, err := p.name()
	if err != nil {
		return Binding{}, err
	}
	p.ws()
	if assign {
		if !p.consume(":=") {
			return Binding{}, p.errf("expected ':=' after let variable $%s", v)
		}
	} else {
		if !p.word("in") {
			return Binding{}, p.errf("expected 'in' after for variable $%s", v)
		}
	}
	p.ws()
	path, err := p.pathOnly()
	if err != nil {
		return Binding{}, err
	}
	return Binding{Var: v, In: path}, nil
}

func (p *qparser) flwor() (Expr, error) {
	p.word("for")
	var f For
	for {
		b, err := p.binding(false)
		if err != nil {
			return nil, err
		}
		f.Bindings = append(f.Bindings, b)
		p.ws()
		if !p.consume(",") {
			break
		}
	}
	p.ws()
	if p.word("let") {
		for {
			b, err := p.binding(true)
			if err != nil {
				return nil, err
			}
			f.Lets = append(f.Lets, b)
			p.ws()
			if !p.consume(",") {
				break
			}
		}
		p.ws()
	}
	if p.word("where") {
		cond, err := p.exprSingle()
		if err != nil {
			return nil, err
		}
		f.Where = cond
		p.ws()
	}
	if !p.word("return") {
		return nil, p.errf("expected 'return' in for expression")
	}
	body, err := p.exprSingle()
	if err != nil {
		return nil, err
	}
	f.Return = body
	return f, nil
}

func (p *qparser) letExpr() (Expr, error) {
	p.word("let")
	var l Let
	for {
		b, err := p.binding(true)
		if err != nil {
			return nil, err
		}
		l.Bindings = append(l.Bindings, b)
		p.ws()
		if !p.consume(",") {
			break
		}
	}
	p.ws()
	if !p.word("return") {
		return nil, p.errf("expected 'return' in let expression")
	}
	body, err := p.exprSingle()
	if err != nil {
		return nil, err
	}
	l.Body = body
	return l, nil
}

func (p *qparser) ifExpr() (Expr, error) {
	p.word("if")
	p.ws()
	if !p.consume("(") {
		return nil, p.errf("expected '(' after if")
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if !p.consume(")") {
		return nil, p.errf("expected ')' after if condition")
	}
	p.ws()
	if !p.word("then") {
		return nil, p.errf("expected 'then'")
	}
	then, err := p.exprSingle()
	if err != nil {
		return nil, err
	}
	p.ws()
	var els Expr
	if p.word("else") {
		els, err = p.exprSingle()
		if err != nil {
			return nil, err
		}
		if _, empty := els.(EmptySeq); empty {
			els = nil
		}
	}
	return If{Cond: cond, Then: then, Else: els}, nil
}

func (p *qparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.word("or") {
			return l, nil
		}
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
}

func (p *qparser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.word("and") {
			return l, nil
		}
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
}

func (p *qparser) cmpExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	p.ws()
	var op CmpOp
	switch {
	case p.consume("!="), p.word("ne"):
		op = Ne
	case p.consume("<="), p.word("le"):
		op = Le
	case p.consume(">="), p.word("ge"):
		op = Ge
	case p.consume("="), p.word("eq"):
		op = Eq
	case p.consume("<"), p.word("lt"):
		op = Lt
	case p.consume(">"), p.word("gt"):
		op = Gt
	default:
		return l, nil
	}
	p.ws()
	r, err := p.primary()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *qparser) primary() (Expr, error) {
	p.ws()
	if p.eof() {
		return nil, p.errf("unexpected end of query")
	}
	c := p.src[p.pos]
	switch {
	case c == '$' || c == '/':
		return p.path()
	case c == '"' || c == '\'':
		return p.stringLit()
	case c >= '0' && c <= '9':
		return p.numberLit()
	case c == '<':
		return p.constructor()
	case c == '{':
		// The paper writes enclosed expressions around return bodies even
		// outside constructors ("return { $b/title }"); accept that form.
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.consume("}") {
			return nil, p.errf("expected '}'")
		}
		return e, nil
	case c == '(':
		p.pos++
		p.ws()
		if p.consume(")") {
			return EmptySeq{}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.consume(")") {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	case isNameStart(c):
		// Keyword-led expressions are handled by exprSingle; here a name
		// must be a function call.
		save := p.pos
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.consume("(") {
			p.pos = save
			return nil, p.errf("unexpected name %q (paths must be variable-rooted, e.g. $%s)", name, name)
		}
		return p.callTail(name)
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

// builtinArity maps supported functions to their arity (-1 = variadic,
// at least one argument).
var builtinArity = map[string]int{
	"exists":          1,
	"empty":           1,
	"not":             1,
	"true":            0,
	"false":           0,
	"data":            1,
	"string":          1,
	"concat":          -1,
	"distinct-values": 1,
}

func (p *qparser) callTail(name string) (Expr, error) {
	arity, ok := builtinArity[name]
	if !ok {
		return nil, p.errf("unsupported function %s()", name)
	}
	var args []Expr
	p.ws()
	if !p.consume(")") {
		for {
			a, err := p.exprSingle()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			p.ws()
			if p.consume(")") {
				break
			}
			if !p.consume(",") {
				return nil, p.errf("expected ',' or ')' in %s()", name)
			}
		}
	}
	if arity >= 0 && len(args) != arity {
		return nil, p.errf("%s() takes %d argument(s), got %d", name, arity, len(args))
	}
	if arity == -1 && len(args) == 0 {
		return nil, p.errf("%s() needs at least one argument", name)
	}
	return Call{Name: name, Args: args}, nil
}

func (p *qparser) path() (Expr, error) {
	var path Path
	switch {
	case p.consume("$"):
		v, err := p.name()
		if err != nil {
			return nil, err
		}
		path.Var = v
	case !p.eof() && p.src[p.pos] == '/':
		path.Var = RootVar
	default:
		return nil, p.errf("expected path")
	}
	for p.consume("/") {
		if p.eof() {
			return nil, p.errf("path ends with '/'")
		}
		switch {
		case p.consume("@"):
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, Step{Axis: Attribute, Name: n})
		case p.consume("*"):
			path.Steps = append(path.Steps, Step{Axis: Child, Name: "*"})
		default:
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			if n == "text" && p.consume("()") {
				path.Steps = append(path.Steps, Step{Axis: TextAxis})
			} else {
				path.Steps = append(path.Steps, Step{Axis: Child, Name: n})
			}
		}
	}
	return path, nil
}

// pathOnly parses a Path and fails on any other expression; used for
// binding clauses.
func (p *qparser) pathOnly() (Path, error) {
	e, err := p.path()
	if err != nil {
		return Path{}, err
	}
	return e.(Path), nil
}

func (p *qparser) stringLit() (Expr, error) {
	q := p.src[p.pos]
	p.pos++
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == q {
			// Doubled quote is an escaped quote.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == q {
				b.WriteByte(q)
				p.pos += 2
				continue
			}
			p.pos++
			return Str{Value: b.String()}, nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return nil, p.errf("unterminated string literal")
}

func (p *qparser) numberLit() (Expr, error) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos < len(p.src) && p.src[p.pos] == '.' {
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
	}
	lit := p.src[start:p.pos]
	v, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return nil, p.errf("bad number %q", lit)
	}
	return Num{Lit: lit, Value: v}, nil
}

func (p *qparser) constructor() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if !p.consume("<") {
		return nil, p.errf("expected '<'")
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	e := Elem{Name: name}
	for {
		p.ws()
		switch {
		case p.consume("/>"):
			return e, nil
		case p.consume(">"):
			return p.constructorContent(e)
		default:
			aname, err := p.name()
			if err != nil {
				return nil, err
			}
			p.ws()
			if !p.consume("=") {
				return nil, p.errf("expected '=' after attribute %s", aname)
			}
			p.ws()
			if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
				return nil, p.errf("attribute %s needs a quoted value", aname)
			}
			q := p.src[p.pos]
			p.pos++
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != q {
				if p.src[p.pos] == '{' {
					return nil, p.errf("computed attribute values are not supported")
				}
				p.pos++
			}
			if p.eof() {
				return nil, p.errf("unterminated attribute value")
			}
			val, err := decodeEntities(p.src[start:p.pos])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			p.pos++
			e.Attrs = append(e.Attrs, Attr{Name: aname, Value: val})
		}
	}
}

func (p *qparser) constructorContent(e Elem) (Expr, error) {
	var text strings.Builder
	flushText := func() {
		if text.Len() == 0 {
			return
		}
		data := text.String()
		text.Reset()
		if strings.TrimSpace(data) == "" {
			// Boundary whitespace is stripped (XQuery default).
			return
		}
		e.Children = append(e.Children, Text{Data: data})
	}
	for {
		if p.eof() {
			return nil, p.errf("unterminated element constructor <%s>", e.Name)
		}
		c := p.src[p.pos]
		switch {
		case c == '<':
			if strings.HasPrefix(p.src[p.pos:], "</") {
				flushText()
				p.pos += 2
				n, err := p.name()
				if err != nil {
					return nil, err
				}
				if n != e.Name {
					return nil, p.errf("end tag </%s> does not match <%s>", n, e.Name)
				}
				p.ws()
				if !p.consume(">") {
					return nil, p.errf("malformed end tag </%s", n)
				}
				return e, nil
			}
			flushText()
			child, err := p.constructor()
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, child)
		case c == '{':
			if strings.HasPrefix(p.src[p.pos:], "{{") {
				text.WriteByte('{')
				p.pos += 2
				continue
			}
			flushText()
			p.pos++
			inner, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.ws()
			if !p.consume("}") {
				return nil, p.errf("expected '}' closing enclosed expression")
			}
			e.Children = append(e.Children, inner)
		case c == '}':
			if strings.HasPrefix(p.src[p.pos:], "}}") {
				text.WriteByte('}')
				p.pos += 2
				continue
			}
			return nil, p.errf("unexpected '}' in constructor content")
		case c == '&':
			end := strings.IndexByte(p.src[p.pos:], ';')
			if end < 0 {
				return nil, p.errf("unterminated entity reference")
			}
			dec, err := decodeEntities(p.src[p.pos : p.pos+end+1])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			text.WriteString(dec)
			p.pos += end + 1
		default:
			text.WriteByte(c)
			p.pos++
		}
	}
}

// decodeEntities expands the predefined and numeric character entities.
func decodeEntities(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", fmt.Errorf("unterminated entity in %q", s)
		}
		name := s[i+1 : i+end]
		switch name {
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "amp":
			b.WriteByte('&')
		case "apos":
			b.WriteByte('\'')
		case "quot":
			b.WriteByte('"')
		default:
			if len(name) > 1 && name[0] == '#' {
				base := 10
				digits := name[1:]
				if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
					base = 16
					digits = digits[1:]
				}
				n, err := strconv.ParseUint(digits, base, 32)
				if err != nil || n > 0x10FFFF {
					return "", fmt.Errorf("bad character reference &%s;", name)
				}
				b.WriteRune(rune(n))
			} else {
				return "", fmt.Errorf("unknown entity &%s;", name)
			}
		}
		i += end + 1
	}
	return b.String(), nil
}
