// Package xquery implements the front-end for the XQuery fragment
// supported by FluXQuery (paper §4): arbitrarily nested for-loops,
// let-bindings, where-clauses with joins, conditionals, element
// constructors and child/attribute/text paths — but no aggregation.
//
// The package provides the AST, a parser, a printer whose output
// re-parses to the same AST, and the traversal helpers used by the
// normalizer, the optimizer and the FluX scheduler.
package xquery

import (
	"fmt"
	"strings"
)

// Expr is an XQuery expression.
type Expr interface {
	exprNode()
	String() string
}

// Attr is a constant attribute of an element constructor.
type Attr struct {
	Name  string
	Value string
}

// Seq is a sequence of expressions: its value is the concatenation of the
// items' values.
type Seq struct{ Items []Expr }

// Elem is a direct element constructor with constant attributes.
type Elem struct {
	Name     string
	Attrs    []Attr
	Children []Expr
}

// Text is literal character data inside an element constructor.
type Text struct{ Data string }

// Str is a string literal in expression position.
type Str struct{ Value string }

// Num is a numeric literal.
type Num struct {
	Lit   string
	Value float64
}

// Axis identifies a path step axis.
type Axis uint8

// Path step axes. The fragment supports downward child steps, attribute
// access and text().
const (
	Child Axis = iota
	Attribute
	TextAxis
)

// Step is one path step.
type Step struct {
	Axis Axis
	Name string // element or attribute name; "*" matches any element
}

func (s Step) String() string {
	switch s.Axis {
	case Attribute:
		return "@" + s.Name
	case TextAxis:
		return "text()"
	default:
		return s.Name
	}
}

// Path is a variable-rooted path expression $var/step/....
// The document root is the pseudo-variable ROOT (written $ROOT, or
// implied by a leading '/').
type Path struct {
	Var   string
	Steps []Step
}

// RootVar is the name of the document-root variable.
const RootVar = "ROOT"

// Binding binds a variable to a path in a for or let clause.
type Binding struct {
	Var string
	In  Path
}

// For is a FLWOR expression (without order-by and aggregation, per the
// paper's fragment).
type For struct {
	Bindings []Binding // for $x in p, $y in q, ...
	Lets     []Binding // let $z := p, ...
	Where    Expr      // nil if absent
	Return   Expr
}

// Let is a standalone let expression: let $x := p return e.
type Let struct {
	Bindings []Binding
	Body     Expr
}

// If is a conditional; Else may be nil (empty sequence).
type If struct {
	Cond Expr
	Then Expr
	Else Expr
}

// And is boolean conjunction.
type And struct{ L, R Expr }

// Or is boolean disjunction.
type Or struct{ L, R Expr }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators (general comparisons with existential semantics
// over sequences).
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	default:
		return ">="
	}
}

// Cmp is a general comparison.
type Cmp struct {
	Op CmpOp
	L  Expr
	R  Expr
}

// Call is a built-in function call. The supported builtins are exists,
// empty, not, true, false, data, concat and distinct-values.
type Call struct {
	Name string
	Args []Expr
}

// EmptySeq is the empty sequence ().
type EmptySeq struct{}

func (Seq) exprNode()      {}
func (Elem) exprNode()     {}
func (Text) exprNode()     {}
func (Str) exprNode()      {}
func (Num) exprNode()      {}
func (Path) exprNode()     {}
func (For) exprNode()      {}
func (Let) exprNode()      {}
func (If) exprNode()       {}
func (And) exprNode()      {}
func (Or) exprNode()       {}
func (Cmp) exprNode()      {}
func (Call) exprNode()     {}
func (EmptySeq) exprNode() {}

func (e Seq) String() string {
	if len(e.Items) == 0 {
		return "()"
	}
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e Elem) String() string {
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
	}
	if len(e.Children) == 0 {
		b.WriteString("/>")
		return b.String()
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		if t, ok := c.(Text); ok {
			b.WriteString(escapeConstructorText(t.Data))
			continue
		}
		b.WriteString("{ ")
		b.WriteString(c.String())
		b.WriteString(" }")
	}
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteByte('>')
	return b.String()
}

func escapeConstructorText(s string) string {
	r := strings.NewReplacer("{", "{{", "}", "}}", "<", "&lt;", "&", "&amp;")
	return r.Replace(s)
}

func (e Text) String() string { return fmt.Sprintf("text { %q }", e.Data) }

func (e Str) String() string { return fmt.Sprintf("%q", e.Value) }

func (e Num) String() string { return e.Lit }

func (e Path) String() string {
	var b strings.Builder
	b.WriteByte('$')
	b.WriteString(e.Var)
	for _, s := range e.Steps {
		b.WriteByte('/')
		b.WriteString(s.String())
	}
	return b.String()
}

func (e For) String() string {
	var b strings.Builder
	for i, bd := range e.Bindings {
		if i == 0 {
			b.WriteString("for ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s in %s", bd.Var, bd.In.String())
	}
	for i, bd := range e.Lets {
		if i == 0 {
			b.WriteString(" let ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s := %s", bd.Var, bd.In.String())
	}
	if e.Where != nil {
		b.WriteString(" where ")
		b.WriteString(e.Where.String())
	}
	b.WriteString(" return ")
	b.WriteString(e.Return.String())
	return b.String()
}

func (e Let) String() string {
	var b strings.Builder
	for i, bd := range e.Bindings {
		if i == 0 {
			b.WriteString("let ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s := %s", bd.Var, bd.In.String())
	}
	b.WriteString(" return ")
	b.WriteString(e.Body.String())
	return b.String()
}

func (e If) String() string {
	s := "if (" + e.Cond.String() + ") then " + e.Then.String()
	if e.Else != nil {
		s += " else " + e.Else.String()
	} else {
		s += " else ()"
	}
	return s
}

func (e And) String() string { return binString(e.L, "and", e.R) }
func (e Or) String() string  { return binString(e.L, "or", e.R) }

func binString(l Expr, op string, r Expr) string {
	return "(" + l.String() + " " + op + " " + r.String() + ")"
}

func (e Cmp) String() string {
	return e.L.String() + " " + e.Op.String() + " " + e.R.String()
}

func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (EmptySeq) String() string { return "()" }

// Walk calls fn on e and recursively on every sub-expression. If fn
// returns false the children of the current node are not visited.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case Seq:
		for _, c := range t.Items {
			Walk(c, fn)
		}
	case Elem:
		for _, c := range t.Children {
			Walk(c, fn)
		}
	case For:
		Walk(t.Where, fn)
		Walk(t.Return, fn)
	case Let:
		Walk(t.Body, fn)
	case If:
		Walk(t.Cond, fn)
		Walk(t.Then, fn)
		Walk(t.Else, fn)
	case And:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case Or:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case Cmp:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case Call:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	}
}

// Paths returns every Path expression occurring in e, including binding
// paths of for/let clauses.
func Paths(e Expr) []Path {
	var out []Path
	Walk(e, func(x Expr) bool {
		switch t := x.(type) {
		case Path:
			out = append(out, t)
		case For:
			for _, b := range t.Bindings {
				out = append(out, b.In)
			}
			for _, b := range t.Lets {
				out = append(out, b.In)
			}
		case Let:
			for _, b := range t.Bindings {
				out = append(out, b.In)
			}
		}
		return true
	})
	return out
}

// FreeVars returns the set of variables that occur free in e (including
// ROOT if the document root is referenced).
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	var walk func(e Expr, bound map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch t := e.(type) {
		case nil:
			return
		case Path:
			if !bound[t.Var] {
				free[t.Var] = true
			}
		case For:
			inner := copyBound(bound)
			for _, b := range t.Bindings {
				if !inner[b.In.Var] {
					free[b.In.Var] = true
				}
				inner[b.Var] = true
			}
			for _, b := range t.Lets {
				if !inner[b.In.Var] {
					free[b.In.Var] = true
				}
				inner[b.Var] = true
			}
			walk(t.Where, inner)
			walk(t.Return, inner)
		case Let:
			inner := copyBound(bound)
			for _, b := range t.Bindings {
				if !inner[b.In.Var] {
					free[b.In.Var] = true
				}
				inner[b.Var] = true
			}
			walk(t.Body, inner)
		case Seq:
			for _, c := range t.Items {
				walk(c, bound)
			}
		case Elem:
			for _, c := range t.Children {
				walk(c, bound)
			}
		case If:
			walk(t.Cond, bound)
			walk(t.Then, bound)
			walk(t.Else, bound)
		case And:
			walk(t.L, bound)
			walk(t.R, bound)
		case Or:
			walk(t.L, bound)
			walk(t.R, bound)
		case Cmp:
			walk(t.L, bound)
			walk(t.R, bound)
		case Call:
			for _, a := range t.Args {
				walk(a, bound)
			}
		}
	}
	walk(e, map[string]bool{})
	return free
}

func copyBound(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m)+2)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}
