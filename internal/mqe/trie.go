package mqe

import (
	"io"
	"time"

	"fluxquery/internal/proj"
	"fluxquery/internal/shared"
	"fluxquery/internal/xmltok"
	"fluxquery/internal/xsax"
)

// This file implements trie-routed dispatch: instead of fanning every
// batch to every riding plan, the dispatcher walks the shared dispatch
// trie (package shared) one node per element and appends each event only
// to the pending batches of the delivery *classes* whose fan-out list
// names them. A class groups every subscription with the same projection
// automaton and shell requirement — their event streams are provably
// identical — so the per-event cost is the trie step plus one arena copy
// per receiving class: proportional to the distinct path families the
// registrations touch, not to the registration count. A class's pending
// batch flushes to every member evaluator when it fills (or at end of
// stream); rendezvous cost amortizes the same way — a plan is woken once
// per batch of its own events, so a plan whose paths see little of the
// stream is woken rarely.
//
// Ownership: pending batches are dispatcher-owned xsax.Batches. Append
// deep-copies event payloads out of the scanner (sequential) or the
// validated ring batch (pipelined) immediately, so the source memory can
// recycle without waiting for evaluator acknowledgements; symbol-table
// references stay valid for the whole stream (the table is append-only
// between streams, see xmltok.SymTab). A flush is the standard
// BeginFeed/EndFeed rendezvous, after which the pending batch resets and
// its arena reuses.

// DispatchMode selects how a Set fans the shared stream out to its
// plans.
type DispatchMode uint8

const (
	// DispatchFanout delivers every batch to every riding plan (the
	// original shared pass).
	DispatchFanout DispatchMode = iota
	// DispatchTrie routes events through the shared dispatch trie:
	// per-plan delivery, shell elision for plans that allow it, per-plan
	// batch flushing.
	DispatchTrie
)

// String returns the mode's flag spelling ("fanout", "trie").
func (m DispatchMode) String() string {
	if m == DispatchTrie {
		return "trie"
	}
	return "fanout"
}

// ParseDispatchMode converts a flag value ("fanout", "trie").
func ParseDispatchMode(s string) (DispatchMode, bool) {
	switch s {
	case "fanout":
		return DispatchFanout, true
	case "trie":
		return DispatchTrie, true
	}
	return DispatchFanout, false
}

// DispatchStats reports the dispatch-layer statistics of the most recent
// shared pass.
type DispatchStats struct {
	// Mode is the dispatch mode the pass ran with ("fanout", "trie").
	Mode string
	// Plans is the number of plans riding the pass.
	Plans int
	// TrieNodes, TrieLists and MaxFanout describe the trie snapshot the
	// pass used (zero in fanout mode): interned product nodes, interned
	// fan-out lists, and the widest list.
	TrieNodes, TrieLists, MaxFanout int
	// Events counts events routed through the trie; Deliveries counts
	// per-plan event deliveries (the sum of fan-out sizes — the work a
	// plain fanout pass would have multiplied by the plan count).
	Events, Deliveries int64
	// Flushes counts per-plan batch rendezvous.
	Flushes int64
	// BuildNanos is the time spent (re)building the trie snapshot, paid
	// on the first Run after a registration change, not per pass.
	BuildNanos int64
}

// runTrie is the trie-routed shared pass, sequential or pipelined
// depending on d.Parallel.
func (d *Dispatcher) runTrie(r io.Reader, consumers []Consumer) (xsax.ScanStats, PassStats, error) {
	maxEvents := d.BatchEvents
	if maxEvents <= 0 {
		maxEvents = defaultBatchEvents
	}
	maxBytes := d.BatchBytes
	if maxBytes <= 0 {
		maxBytes = defaultBatchBytes
	}
	s := newTrieSink(d.Trie, d.Members, consumers, maxEvents, maxBytes)
	if d.Parallel >= 2 {
		return d.runTriePipelined(r, s)
	}
	return d.runTrieSeq(r, s)
}

func (d *Dispatcher) runTrieSeq(r io.Reader, s *trieSink) (xsax.ScanStats, PassStats, error) {
	xr := xsax.GetReader(r, d.DTD)
	if d.Proj != nil && d.ProjMode != proj.ModeOff {
		xr.SetProjection(d.Proj, d.ProjMode)
	}
	obs := d.Obs
	var scanTime, dispTime time.Duration
	var cause error
	for cause == nil {
		if err := d.ctxErr(); err != nil {
			cause = err
			break
		}
		if err := d.Gate.Wait(); err != nil {
			cause = err
			break
		}
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		// One chunk of routing between gate checks. Appending into
		// pending batches is counted as scan work here; the flush
		// rendezvous below is the dispatch side.
		for n := 0; n < s.maxEvents; n++ {
			ev, err := xr.NextEvent()
			if err != nil {
				cause = err
				break
			}
			s.route(ev)
		}
		var t1 time.Time
		if obs != nil {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		s.flushDue(nil)
		if obs != nil {
			dispTime += time.Since(t1)
		}
	}
	s.finish(cause, nil)
	if obs != nil {
		obs.Scan.AddTime(scanTime)
		obs.Dispatch.AddTime(dispTime)
		obs.Batches = s.flushes
		obs.Events = s.events
	}
	s.report(d.Disp)
	sc := xr.ScanStats()
	xsax.PutReader(xr)
	if cause == io.EOF {
		return sc, PassStats{}, nil
	}
	return sc, PassStats{}, cause
}

func (d *Dispatcher) runTriePipelined(r io.Reader, s *trieSink) (xsax.ScanStats, PassStats, error) {
	var pa *proj.Automaton
	if d.Proj != nil && d.ProjMode != proj.ModeOff {
		pa = d.Proj
	}
	be, bb := d.BatchEvents, d.BatchBytes
	if be <= 0 {
		be = 4 * defaultBatchEvents
	}
	if bb <= 0 {
		bb = 4 * defaultBatchBytes
	}
	pl := xsax.NewPipeline(r, d.DTD, xsax.PipelineConfig{
		BatchEvents: be,
		BatchBytes:  bb,
		Proj:        pa,
		ProjMode:    d.ProjMode,
		Throttle:    d.Gate.Wait,
		Ctx:         d.Ctx,
	})
	// The feed workers shard the trie's flush sets: per source batch,
	// only the plans whose pending batches filled are woken, and the
	// pool's cost-ordered claim/steal discipline balances them.
	workers := d.Parallel
	if workers > len(s.cons) {
		workers = len(s.cons)
	}
	var pool *evalPool
	if workers >= 2 {
		pool = newEvalPool(workers)
	} else {
		workers = 1
	}

	obs := d.Obs
	var scanTime, dispTime time.Duration
	var cause error
	var batches int64
	for cause == nil {
		if err := d.ctxErr(); err != nil {
			cause = err
			break
		}
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		vb, err := pl.Next()
		if err != nil {
			cause = err
			break
		}
		for i := range vb.Events {
			s.route(&vb.Events[i])
		}
		var t1 time.Time
		if obs != nil {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		if vb.Len() > 0 {
			batches++
		}
		s.flushDue(pool)
		if obs != nil {
			dispTime += time.Since(t1)
		}
		pl.Recycle(vb)
	}
	s.finish(cause, pool)
	var steals int64
	if pool != nil {
		steals = pool.close()
	}
	sc, pps, _ := pl.Close()
	ps := PassStats{
		Parallel:      workers,
		Batches:       batches,
		Steals:        steals,
		TokenizeStall: pps.TokStall,
		ValidateStall: pps.ValStall,
		DispatchStall: pps.DispStall,
		TokenRingPeak: pps.TokRingPeak,
		EventRingPeak: pps.ValRingPeak,
	}
	if obs != nil {
		obs.Scan.AddTime(scanTime)
		obs.Scan.AddStall(pps.DispStall)
		obs.Dispatch.AddTime(dispTime)
		obs.Batches = s.flushes
		obs.Events = s.events
	}
	s.report(d.Disp)
	if cause == io.EOF {
		return sc, ps, nil
	}
	return sc, ps, cause
}

// tframe is one open element on the trie walk: the interior node
// governing its children and the fan-out list its end event owes.
type tframe struct {
	node int32
	fan  int32
}

// trieSink routes events to per-class pending batches and flushes each
// to the class's member consumers.
type trieSink struct {
	t    *shared.Trie
	cons []Consumer
	// members maps each trie plan index (delivery class) to the consumer
	// indices riding it; clsLive counts a class's not-yet-closed members
	// so fully dead classes stop buffering. pend and dueMark are indexed
	// by class, dead by consumer.
	members [][]int32
	clsLive []int32
	pend    []*xsax.Batch
	dead    []bool

	stack   []tframe
	due     []int32
	dueMark []bool

	// flush scratch for the pooled path: one task per live member of
	// each due class, all members of a class sharing its event slice.
	parTasks []Consumer
	parEvs   [][]xsax.Event
	parIdx   []int32
	parCls   []int32

	maxEvents, maxBytes int
	live                int
	events, deliveries  int64
	flushes             int64
}

func newTrieSink(t *shared.Trie, members [][]int32, consumers []Consumer, maxEvents, maxBytes int) *trieSink {
	if members == nil {
		// Trie built directly over the consumers: one class each.
		members = make([][]int32, len(consumers))
		for i := range members {
			members[i] = []int32{int32(i)}
		}
	}
	s := &trieSink{
		t:         t,
		cons:      consumers,
		members:   members,
		clsLive:   make([]int32, len(members)),
		pend:      make([]*xsax.Batch, len(members)),
		dead:      make([]bool, len(consumers)),
		dueMark:   make([]bool, len(members)),
		maxEvents: maxEvents,
		maxBytes:  maxBytes,
		live:      len(consumers),
	}
	for c := range s.pend {
		s.pend[c] = xsax.GetBatch()
		s.clsLive[c] = int32(len(members[c]))
	}
	s.stack = append(s.stack, tframe{node: t.Root(), fan: -1})
	return s
}

// route walks one event through the trie and appends it to every
// receiving plan's pending batch.
func (s *trieSink) route(ev *xsax.Event) {
	s.events++
	switch ev.Kind {
	case xmltok.StartElement:
		top := s.stack[len(s.stack)-1]
		if top.node == shared.Drop {
			s.stack = append(s.stack, tframe{node: shared.Drop, fan: -1})
			return
		}
		fan, next := s.t.StartChild(top.node, ev.Elem.ID())
		s.stack = append(s.stack, tframe{node: next, fan: fan})
		s.deliver(s.t.List(fan), ev)
	case xmltok.EndElement:
		n := len(s.stack) - 1
		if n < 1 {
			return
		}
		fr := s.stack[n]
		s.stack = s.stack[:n]
		if fr.fan >= 0 {
			s.deliver(s.t.List(fr.fan), ev)
		}
	case xmltok.Text:
		if top := s.stack[len(s.stack)-1]; top.node != shared.Drop {
			s.deliver(s.t.TextList(top.node), ev)
		}
	default:
		// Comments, processing instructions and directives: no evaluator
		// output depends on them (copy regions reproduce elements and
		// text only), so they are not routed.
	}
}

func (s *trieSink) deliver(classes []int32, ev *xsax.Event) {
	for _, c := range classes {
		n := s.clsLive[c]
		if n == 0 {
			continue
		}
		b := s.pend[c]
		b.Append(ev)
		s.deliveries += int64(n)
		if !s.dueMark[c] && (b.Len() >= s.maxEvents || b.ArenaBytes() >= s.maxBytes) {
			s.dueMark[c] = true
			s.due = append(s.due, c)
		}
	}
}

// flushDue feeds every due class's pending batch to its live members —
// through the worker pool when one is available.
func (s *trieSink) flushDue(pool *evalPool) {
	if len(s.due) == 0 {
		return
	}
	if pool != nil {
		s.flushPooled(pool)
	} else {
		for _, c := range s.due {
			s.flushOne(c)
		}
	}
	for _, c := range s.due {
		s.dueMark[c] = false
	}
	s.due = s.due[:0]
}

// closeMember retires one consumer of class c.
func (s *trieSink) closeMember(p, c int32, cause error) {
	s.cons[p].Close(cause)
	s.dead[p] = true
	s.live--
	s.clsLive[c]--
}

func (s *trieSink) flushOne(c int32) {
	b := s.pend[c]
	for _, p := range s.members[c] {
		if s.dead[p] {
			continue
		}
		cons := s.cons[p]
		cons.BeginFeed(b.Events)
		done, _ := cons.EndFeed()
		s.flushes++
		if done {
			s.closeMember(p, c, nil)
		}
	}
	b.Reset()
}

func (s *trieSink) flushPooled(pool *evalPool) {
	s.parTasks, s.parEvs = s.parTasks[:0], s.parEvs[:0]
	s.parIdx, s.parCls = s.parIdx[:0], s.parCls[:0]
	for _, c := range s.due {
		evs := s.pend[c].Events
		for _, p := range s.members[c] {
			if s.dead[p] {
				continue
			}
			s.parTasks = append(s.parTasks, s.cons[p])
			s.parEvs = append(s.parEvs, evs)
			s.parIdx = append(s.parIdx, p)
			s.parCls = append(s.parCls, c)
		}
	}
	if len(s.parTasks) > 0 {
		pool.feedEach(s.parTasks, s.parEvs)
		for k := range s.parTasks {
			s.flushes++
			if pool.res[k].done {
				// A worker-side failure (panic isolation) reaches the
				// consumer as its cause; evaluator-side terminations
				// recorded their own error and ignore it.
				s.closeMember(s.parIdx[k], s.parCls[k], pool.res[k].err)
			}
		}
	}
	for _, c := range s.due {
		s.pend[c].Reset()
	}
}

// finish flushes every remaining pending batch, closes the consumers
// with the stream's terminal status and returns the pending batches to
// the pool.
func (s *trieSink) finish(cause error, pool *evalPool) {
	s.due = s.due[:0]
	for c := range s.pend {
		if s.clsLive[c] > 0 && s.pend[c].Len() > 0 {
			s.dueMark[c] = true
			s.due = append(s.due, int32(c))
		}
	}
	s.flushDue(pool)
	for p, cons := range s.cons {
		if !s.dead[p] {
			cons.Close(cause)
		}
	}
	for c := range s.pend {
		xsax.PutBatch(s.pend[c])
		s.pend[c] = nil
	}
}

// report stamps the sink's routing totals onto the pass's DispatchStats.
func (s *trieSink) report(ds *DispatchStats) {
	if ds == nil {
		return
	}
	ds.Events = s.events
	ds.Deliveries = s.deliveries
	ds.Flushes = s.flushes
}
