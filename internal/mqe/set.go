package mqe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fluxquery/internal/bufmgr"
	"fluxquery/internal/dtd"
	"fluxquery/internal/faultinj"
	"fluxquery/internal/flightrec"
	"fluxquery/internal/proj"
	"fluxquery/internal/runtime"
	"fluxquery/internal/shared"
	"fluxquery/internal/telemetry"
	"fluxquery/internal/xsax"
)

// ErrUnregistered aborts a subscription's in-flight evaluation when it is
// unregistered mid-stream; it is then reported as that run's result.
var ErrUnregistered = errors.New("mqe: subscription unregistered during streaming")

// ErrNotRun is reported by Sub.Result before the subscription has
// completed any run.
var ErrNotRun = errors.New("mqe: subscription has not completed a run")

// Set is a registry of compiled plans riding a shared event stream. Plans
// are registered with a per-plan output writer; each Run evaluates every
// currently registered plan over one document in a single
// tokenize+validate pass. Register and Unregister are safe to call
// concurrently with Run: a registration takes effect at the next Run, an
// unregistration detaches the subscription from an in-flight Run at the
// next batch boundary (aborting it with ErrUnregistered).
type Set struct {
	d *dtd.DTD
	// dstr is the set DTD's canonical serialization, computed once so
	// Register's equivalence check on pointer-unequal DTDs does not
	// re-serialize the set side on every call.
	dstr string
	disp Dispatcher

	// runMu serializes Run: subscriptions write to fixed per-Sub writers,
	// so two concurrent passes would interleave on them.
	runMu sync.Mutex

	mu   sync.Mutex
	subs []*Sub
	// pauto is the compiled union of every registered plan's projection
	// path-set. Register/Unregister invalidate it (projDirty) and the
	// next Run recompiles it once — registering K plans costs one union
	// build, not K. The automaton is immutable once built: an in-flight
	// Run keeps the one it snapshotted even as registrations replace it.
	// nil while the set is empty (a pass over zero subscriptions stays a
	// full validation pass).
	pauto     *proj.Automaton
	projDirty bool
	pmode     proj.Mode
	// dispatch selects how a pass fans events out. Under DispatchTrie,
	// trie holds the compiled dispatch trie for the current
	// subscriptions, rebuilt lazily (trieDirty) under the same
	// immutable-snapshot discipline as pauto: an in-flight Run keeps the
	// trie it snapshotted, whose plan indices match the subscription
	// slice it snapshotted alongside.
	dispatch  DispatchMode
	trie      *shared.Trie
	trieDirty bool
	trieBuild time.Duration
	// trieMembers maps each trie plan index (a delivery class — plans
	// whose projection automaton and shell requirement coincide, so their
	// event streams are identical) to the subscription indices riding it.
	// trieMaxFan is the widest per-subscription fan-out any interned list
	// reaches once class membership is multiplied back in.
	trieMembers [][]int32
	trieMaxFan  int
	// sstats is the DTD's schema-statistics bundle, computed on first
	// registration and reused for every plan's dispatch-cost estimate.
	sstats *shared.SchemaStats
	// lastDispatch reports the most recent pass's dispatch-layer
	// statistics.
	lastDispatch DispatchStats
	// bufs, when non-nil, governs the buffer memory of shared passes:
	// each Run opens one gate (the pass's backpressure point) and one
	// account per riding plan, so a budget violation is attributed — and,
	// under bufmgr.PolicyFail, confined — to the individual plan.
	bufs *bufmgr.Manager
	// parallel selects pipelined passes (>= 2: staged pipeline with that
	// many feed workers; 0/1: the sequential pass).
	parallel int
	// lastScan reports the most recent pass's projection counters; passes
	// counts completed Run calls. lastStall is the most recent pass's
	// backpressure stall, lastPass its pipeline metrics (zero when
	// sequential).
	lastScan  xsax.ScanStats
	passes    int64
	lastStall time.Duration
	lastPass  PassStats
	// mt is the resolved telemetry instrument bundle (nil = disabled);
	// tracing/traceID configure span capture of subsequent runs, and
	// lastTrace holds the most recent completed pass's span tree.
	mt        *setMetrics
	tracing   bool
	traceID   string
	lastTrace *telemetry.Trace
	// rec, when non-nil, receives one flight-recorder record per
	// completed pass (success or failure); when its slow-pass capture
	// policy is armed, every pass builds a span tree that the recorder
	// retains only for slow passes. reqID labels subsequent passes'
	// records with the driving request's id.
	rec   *flightrec.Recorder
	reqID string
	// ledger, when non-nil, accrues per-query cost attribution (eval
	// CPU, delivered data, buffer peaks, errors) across passes, keyed
	// by registration name. A ledger typically outlives the Set: a
	// server installs one process-wide ledger on every per-request Set.
	ledger *Ledger
	// nameSeq numbers unnamed registrations for telemetry labels.
	nameSeq int
}

// NewSet returns a Set for streams governed by d.
func NewSet(d *dtd.DTD) *Set {
	return &Set{d: d, dstr: d.String(), disp: Dispatcher{DTD: d}}
}

// Sub is one registered (plan, output) subscription.
type Sub struct {
	set     *Set
	plan    *runtime.Plan
	name    string
	out     io.Writer
	removed atomic.Bool
	// cost is the plan's expected delivered-event count under the set's
	// schema statistics (shared.PlanCostInt), stamped at registration;
	// the evaluator pool orders its worker stripes by it.
	cost int

	mu  sync.Mutex
	ran bool
	st  runtime.Stats
	dur time.Duration
	err error
}

// Register adds a plan to the set, streaming its result to out on every
// subsequent Run. The plan must be compiled against the set's DTD: events
// carry names interned in one schema, and a plan scheduled under a
// different schema would mis-dispatch on them.
func (s *Set) Register(p *runtime.Plan, out io.Writer) (*Sub, error) {
	return s.RegisterNamed(p, out, "")
}

// RegisterNamed is Register with a display name labelling the plan's
// telemetry series and trace spans ("" derives q1, q2, ... in
// registration order).
func (s *Set) RegisterNamed(p *runtime.Plan, out io.Writer, name string) (*Sub, error) {
	if pd := p.DTD(); pd != s.d && pd.String() != s.dstr {
		return nil, fmt.Errorf("mqe: plan compiled against a different DTD (root <%s>, stream root <%s>)",
			p.DTD().Root, s.d.Root)
	}
	b := &Sub{set: s, plan: p, out: out}
	s.mu.Lock()
	s.nameSeq++
	if name == "" {
		name = fmt.Sprintf("q%d", s.nameSeq)
	}
	b.name = name
	if s.sstats == nil {
		s.sstats = shared.ComputeStats(s.d)
	}
	b.cost = shared.PlanCostInt(p.Paths(), p.NeedShells(), s.sstats)
	s.subs = append(s.subs, b)
	s.projDirty = true
	s.trieDirty = true
	s.mu.Unlock()
	return b, nil
}

// SetDispatch selects how shared passes fan events out to the riding
// plans: DispatchFanout (the default) delivers every batch to every
// plan, DispatchTrie routes events through the shared dispatch trie so
// per-event cost tracks the distinct registered paths rather than the
// registration count. Takes effect at the next Run.
func (s *Set) SetDispatch(m DispatchMode) {
	s.mu.Lock()
	if m != s.dispatch && m == DispatchTrie {
		s.trieDirty = true
	}
	s.dispatch = m
	s.mu.Unlock()
}

// LastDispatch returns the dispatch-layer statistics of the most recent
// successfully completed Run.
func (s *Set) LastDispatch() DispatchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastDispatch
}

// SetProjection selects how shared passes treat stream regions no
// registered plan can use: proj.ModeFast (the default) bulk-skips them in
// the tokenizer, proj.ModeValidate still validates them fully, and
// proj.ModeOff delivers every event. Takes effect at the next Run.
func (s *Set) SetProjection(m proj.Mode) {
	s.mu.Lock()
	s.pmode = m
	s.mu.Unlock()
}

// LastScan returns the projection counters of the most recent
// successfully completed Run and the number of such runs (shared scan
// passes). A Run that fails mid-stream leaves both unchanged.
func (s *Set) LastScan() (xsax.ScanStats, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastScan, s.passes
}

// SetBuffers installs the buffer manager governing shared passes (nil =
// unmanaged). Takes effect at the next Run.
func (s *Set) SetBuffers(m *bufmgr.Manager) {
	s.mu.Lock()
	s.bufs = m
	s.mu.Unlock()
}

// LastStall returns the backpressure stall of the most recent
// successfully completed Run (zero unless bufmgr.PolicyBackpressure
// throttled the pass).
func (s *Set) LastStall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastStall
}

// SetTelemetry publishes the set's pass metrics on reg (nil disables).
// Instruments are resolved once here; passes then update them with plain
// atomic operations. Takes effect at the next Run.
func (s *Set) SetTelemetry(reg *telemetry.Registry) {
	mt := newSetMetrics(reg)
	s.mu.Lock()
	s.mt = mt
	s.mu.Unlock()
}

// SetTracing enables span capture of subsequent runs; id correlates the
// traces with an external request ("" for none). Takes effect at the
// next Run.
func (s *Set) SetTracing(on bool, id string) {
	s.mu.Lock()
	s.tracing = on
	s.traceID = id
	s.mu.Unlock()
}

// LastTrace returns the span tree of the most recent successfully
// completed Run, or nil when tracing is off (or no run completed).
func (s *Set) LastTrace() *telemetry.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}

// SetRecorder installs the flight recorder receiving one record per
// completed pass, success or failure (nil disables). When the recorder's
// slow-pass capture policy is armed, subsequent passes build a span tree
// even with tracing off, so a slow pass dumps with full stage
// attribution. Takes effect at the next Run.
func (s *Set) SetRecorder(rec *flightrec.Recorder) {
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

// Recorder returns the installed flight recorder (nil when none).
func (s *Set) Recorder() *flightrec.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// SetRequestID labels subsequent passes' flight-recorder records (and
// slow-pass dumps) with the driving request's id ("" clears it). Takes
// effect at the next Run.
func (s *Set) SetRequestID(id string) {
	s.mu.Lock()
	s.reqID = id
	s.mu.Unlock()
}

// SetLedger installs the per-query cost ledger (nil disables): every
// pass folds each riding plan's cost — evaluator CPU, delivered events,
// output bytes, buffer peaks, errors — into the ledger entry of its
// registration name. Takes effect at the next Run.
func (s *Set) SetLedger(l *Ledger) {
	s.mu.Lock()
	s.ledger = l
	s.mu.Unlock()
}

// Ledger returns the installed cost ledger (nil when none).
func (s *Set) Ledger() *Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger
}

// SetParallel selects how shared passes execute: n >= 2 runs the staged
// pipeline (tokenize ∥ validate ∥ dispatch) with up to n feed workers
// sharding the plan set; 0 or 1 is the sequential single-goroutine pass.
// Takes effect at the next Run.
func (s *Set) SetParallel(n int) {
	s.mu.Lock()
	s.parallel = n
	s.mu.Unlock()
}

// LastPass returns the pipeline metrics of the most recent successfully
// completed Run (all zeros for sequential passes).
func (s *Set) LastPass() PassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPass
}

// recomputeProjLocked rebuilds the union skip automaton from the current
// subscriptions when a Register/Unregister has invalidated it. Called
// with s.mu held at the start of each Run; the previous automaton is
// never mutated, so an in-flight Run that already snapshotted it is
// unaffected (its union is merely wider or narrower than the new
// registration set, both of which are sound for the plans it snapshotted
// alongside).
func (s *Set) recomputeProjLocked() {
	if !s.projDirty {
		return
	}
	s.projDirty = false
	if len(s.subs) == 0 {
		s.pauto = nil
		return
	}
	sets := make([]*proj.PathSet, len(s.subs))
	for i, b := range s.subs {
		sets[i] = b.plan.Paths()
	}
	// Compiled over the stream DTD's name-id vocabulary so the shared
	// pass dispatches verdicts with slice loads. Plans ride with their
	// own (equivalent) DTD: equal String() renderings assign identical
	// ids, which Register's equivalence check guarantees.
	s.pauto = proj.CompileVocab(proj.Union(sets...), s.d.IDNames())
}

// recomputeTrieLocked rebuilds the dispatch trie from the current
// subscriptions when trie dispatch is selected and a registration change
// has invalidated it. Called with s.mu held at the start of each Run —
// the same lock hold that snapshots s.subs, so the trie's plan indices
// always match the subscription slice the pass rides with. The previous
// trie is never mutated (in-flight Runs keep their snapshot). The build
// cost is recorded so a pass can report it; it is paid once per
// registration change, not per pass.
func (s *Set) recomputeTrieLocked() {
	if s.dispatch != DispatchTrie {
		return
	}
	if !s.trieDirty && s.trie != nil {
		return
	}
	s.trieDirty = false
	names := s.d.IDNames()
	// Class the subscriptions by delivery behavior before building: two
	// registrations of the same compiled plan (pointer-identical
	// projection automaton, same shell requirement) receive identical
	// event streams, so the trie is built over the distinct classes and
	// the dispatcher copies each event once per class, fanning to the
	// class members only at flush. Per-event dispatch cost then tracks
	// the distinct registered path families even when thousands of
	// subscriptions share them. Distinct compilations of an identical
	// query form separate (correct, merely undeduplicated) classes.
	type classKey struct {
		auto   *proj.Automaton
		shells bool
	}
	idx := make(map[classKey]int32, len(s.subs))
	reqs := make([]shared.PlanReq, 0, len(s.subs))
	members := make([][]int32, 0, len(s.subs))
	for i, b := range s.subs {
		k := classKey{b.plan.ProjAutomaton(), b.plan.NeedShells()}
		c, ok := idx[k]
		if !ok {
			c = int32(len(reqs))
			idx[k] = c
			reqs = append(reqs, shared.PlanReq{Auto: k.auto, NeedShells: k.shells})
			members = append(members, nil)
		}
		members[c] = append(members[c], int32(i))
	}
	t0 := time.Now()
	s.trie = shared.Build(reqs, len(names))
	s.trieBuild = time.Since(t0)
	s.trieMembers = members
	s.trieMaxFan = 0
	for li := 0; li < s.trie.NumLists(); li++ {
		n := 0
		for _, c := range s.trie.List(int32(li)) {
			n += len(members[c])
		}
		if n > s.trieMaxFan {
			s.trieMaxFan = n
		}
	}
	if s.mt != nil {
		s.mt.recordTrieBuild(s.trie, s.trieMaxFan)
	}
}

// Unregister removes the subscription. An in-flight Run detaches it at
// the next batch boundary, recording ErrUnregistered as its result.
// Unregister is idempotent.
func (b *Sub) Unregister() {
	if b.removed.Swap(true) {
		return
	}
	s := b.set
	s.mu.Lock()
	for i, x := range s.subs {
		if x == b {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	s.projDirty = true
	s.trieDirty = true
	s.mu.Unlock()
}

// Len returns the number of registered subscriptions.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Result returns the subscription's outcome from the most recent Run that
// included it: the execution statistics, and the error that ended it
// (nil for a clean evaluation).
func (b *Sub) Result() (runtime.Stats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ran {
		return runtime.Stats{}, ErrNotRun
	}
	return b.st, b.err
}

// Duration returns the wall-clock time of the subscription's most recent
// run (the shared pass; all subscriptions of one Run ride the same
// clock).
func (b *Sub) Duration() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dur
}

// setStall overwrites the most recent run's backpressure stall with the
// pass-wide value once the pass has fully ended.
func (b *Sub) setStall(stall time.Duration) {
	b.mu.Lock()
	if b.ran {
		b.st.BudgetStall = stall
	}
	b.mu.Unlock()
}

func (b *Sub) setResult(st *runtime.Stats, dur time.Duration, err error) {
	b.mu.Lock()
	b.ran = true
	if st != nil {
		b.st = *st
	} else {
		b.st = runtime.Stats{}
	}
	b.dur = dur
	b.err = err
	b.mu.Unlock()
}

// Run evaluates every registered plan over one document in a single
// shared tokenize+validate pass. Per-plan results (including per-plan
// failures, which do not disturb the other plans or the stream) are
// recorded on each Sub; Run's own error is the stream's: nil on a
// well-formed, valid document. Concurrent Run calls are serialized:
// every subscription streams to its fixed writer, so passes must not
// overlap on it.
func (s *Set) Run(r io.Reader) error {
	return s.RunContext(nil, r)
}

// RunContext is Run under a cancellation context: the pass checks ctx at
// every batch boundary, parked stages (gate waits, ring hand-offs)
// unpark on cancellation, and ctx's error becomes both the pass's return
// and every riding plan's terminal error — a cancelled plan always
// reports the cancellation, never a silently truncated result. A nil or
// non-cancellable ctx degrades to Run.
func (s *Set) RunContext(ctx context.Context, r io.Reader) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	s.recomputeProjLocked()
	s.recomputeTrieLocked()
	subs := make([]*Sub, len(s.subs))
	copy(subs, s.subs)
	disp := s.disp
	disp.Proj = s.pauto
	disp.ProjMode = s.pmode
	disp.Parallel = s.parallel
	var ds DispatchStats
	ds.Mode = s.dispatch.String()
	ds.Plans = len(subs)
	if s.dispatch == DispatchTrie {
		disp.Trie = s.trie
		disp.Members = s.trieMembers
		disp.Disp = &ds
		ds.TrieNodes = s.trie.NumNodes()
		ds.TrieLists = s.trie.NumLists()
		ds.MaxFanout = s.trieMaxFan
		ds.BuildNanos = s.trieBuild.Nanoseconds()
	}
	bufs := s.bufs
	mt := s.mt
	tracing := s.tracing
	traceID := s.traceID
	pmode := s.pmode
	parallel := s.parallel
	rec := s.rec
	reqID := s.reqID
	ledger := s.ledger
	s.mu.Unlock()

	// One gate per pass, one account per riding plan: the gate throttles
	// the shared scan under backpressure, the accounts isolate budget
	// enforcement per plan (an over-budget query fails or spills alone).
	gate := bufs.NewGate()
	disp.Gate = gate
	if ctx != nil && ctx.Done() != nil {
		disp.Ctx = ctx
		gate.Bind(ctx)
	}

	// Every pass gets a process-unique id; a trace (span capture) when
	// tracing is on — or when the flight recorder's slow-pass policy is
	// armed, so a pass that turns out slow dumps with its span tree even
	// though tracing was never enabled. The span tree is built up front
	// on this goroutine — the pass's own synchronization then makes
	// per-span writes safe (one owner per span per batch, barriers
	// between batches).
	var tr *telemetry.Trace
	var passID uint64
	var obs *PassObs
	if tracing || rec.CapturesSlow() {
		tr = telemetry.NewTrace(traceID)
		passID = tr.PassID
	} else {
		passID = telemetry.NextPassID()
	}
	if tr != nil || mt != nil || rec != nil {
		obs = &PassObs{Scan: tr.Span().Child("scan"), Dispatch: tr.Span().Child("dispatch")}
		disp.Obs = obs
	}
	var faults0 int64
	if rec != nil {
		faults0 = faultinj.TotalInjected()
	}

	start := time.Now()
	consumers := make([]Consumer, len(subs))
	for i, b := range subs {
		acct := gate.NewAccount()
		consumers[i] = &subRun{
			sub:    b,
			se:     b.plan.NewStepExecBudgeted(b.out, acct),
			acct:   acct,
			start:  start,
			passID: passID,
			hist:   mt.evalSeconds(b.name),
			span:   obs.evalSpan(b.name),
			ledger: ledger,
		}
	}
	sc, ps, err := disp.RunScanPass(r, consumers)
	wall := time.Since(start)
	stall := gate.Stall()
	// Every riding plan reports the same full-pass stall (a consumer
	// that settled mid-pass snapshotted only what had accrued by then).
	for _, c := range consumers {
		if rr, ok := c.(*subRun); ok {
			rr.sub.setStall(stall)
		}
	}
	gate.Close()
	if tr != nil {
		s.stampTrace(tr, obs, sc, ps, stall)
	}
	if err == nil {
		if mt != nil {
			s.recordPass(mt, obs, sc, ps, stall, wall)
			mt.recordDispatch(ds)
		}
		s.mu.Lock()
		s.lastScan = sc
		s.passes++
		s.lastStall = stall
		s.lastPass = ps
		s.lastDispatch = ds
		// lastTrace is the user-facing tracing feature; a trace built
		// only for slow-pass capture stays out of it.
		if tr != nil && tracing {
			s.lastTrace = tr
		}
		s.mu.Unlock()
	} else {
		mt.cancelled(err)
	}
	if rec != nil {
		fr := flightrec.Record{
			PassID:         passID,
			RequestID:      reqID,
			Start:          start,
			Duration:       wall,
			Projection:     pmode.String(),
			Dispatch:       ds.Mode,
			Parallel:       parallel,
			Plans:          len(subs),
			InputBytes:     sc.BytesRead,
			Events:         obs.Events,
			Batches:        obs.Batches,
			TokenizeStall:  ps.TokenizeStall,
			ValidateStall:  ps.ValidateStall,
			DispatchStall:  ps.DispatchStall,
			GateStall:      stall,
			TokenRingPeak:  ps.TokenRingPeak,
			EventRingPeak:  ps.EventRingPeak,
			Steals:         ps.Steals,
			TrieEvents:     ds.Events,
			TrieDeliveries: ds.Deliveries,
			FaultHits:      faultinj.TotalInjected() - faults0,
			Trace:          tr,
		}
		if wall > 0 {
			fr.MBps = float64(sc.BytesRead) / (1 << 20) / wall.Seconds()
		}
		for _, b := range subs {
			st, serr := b.Result()
			if serr != nil && !errors.Is(serr, ErrNotRun) {
				fr.PlanErrors++
			}
			if st.PeakHeapBufferBytes > fr.BufferPeak {
				fr.BufferPeak = st.PeakHeapBufferBytes
			}
			fr.SpilledBytes += st.SpilledBytes
			fr.RehydratedBytes += st.RehydratedBytes
		}
		if err != nil {
			fr.Err = err.Error()
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fr.CancelReason = "deadline"
			case errors.Is(err, context.Canceled):
				fr.CancelReason = "canceled"
			}
		}
		rec.Record(fr)
	}
	return err
}

// evalSpan resolves the trace span of one riding plan (nil when tracing
// is off). Eval spans hang off the dispatch span: that is the stage that
// hands them their batches.
func (o *PassObs) evalSpan(name string) *telemetry.Span {
	if o == nil {
		return nil
	}
	return o.Dispatch.Child("eval:" + name)
}

// stampTrace finishes a pass's span tree: stage stall attribution, data
// flow and ring peaks from the pass statistics.
func (s *Set) stampTrace(tr *telemetry.Trace, obs *PassObs, sc xsax.ScanStats, ps PassStats, stall time.Duration) {
	root := tr.Span()
	root.AddStall(stall)
	obs.Scan.AddBytes(sc.BytesRead)
	obs.Scan.AddEvents(obs.Events)
	if ps.Parallel >= 2 {
		tok := obs.Scan.Child("tokenize")
		tok.AddStall(ps.TokenizeStall)
		tok.SetRingPeak(ps.TokenRingPeak)
		val := obs.Scan.Child("validate")
		val.AddStall(ps.ValidateStall)
		val.SetRingPeak(ps.EventRingPeak)
	}
	tr.End()
}

// recordPass publishes one completed pass's statistics to the metric
// bundle.
func (s *Set) recordPass(mt *setMetrics, obs *PassObs, sc xsax.ScanStats, ps PassStats, stall, wall time.Duration) {
	mt.passes.Inc()
	mt.bytes.Add(sc.BytesRead)
	mt.events.Add(obs.Events)
	mt.batches.Add(obs.Batches)
	mt.passSeconds.Observe(wall.Nanoseconds())
	mt.passBytes.Observe(sc.BytesRead)
	mt.stallGate.Add(stall.Nanoseconds())
	if ps.Parallel >= 2 {
		mt.steals.Add(ps.Steals)
		mt.stallTokenize.Add(ps.TokenizeStall.Nanoseconds())
		mt.stallValidate.Add(ps.ValidateStall.Nanoseconds())
		mt.stallDispatch.Add(ps.DispatchStall.Nanoseconds())
		mt.ringToken.Observe(int64(ps.TokenRingPeak))
		mt.ringEvent.Observe(int64(ps.EventRingPeak))
	}
}

// subRun drives one subscription's StepExec through a single dispatcher
// pass, recording the result on the Sub when the execution settles.
type subRun struct {
	sub   *Sub
	se    *runtime.StepExec
	acct  *bufmgr.Account
	start time.Time
	done  bool
	// passID stamps the pass's process-unique id on the result stats.
	// hist and span (nil when telemetry/tracing are off) receive the
	// plan's per-batch eval latency: BeginFeed stamps t0, EndFeed — which
	// blocks until the plan's evaluator has consumed the batch —
	// observes. One pool worker owns a plan's whole feed per batch, and
	// the per-batch barrier orders batches, so t0 never races.
	passID uint64
	hist   *telemetry.Histogram
	span   *telemetry.Span
	t0     time.Time
	// ledger (nil when cost attribution is off) receives the plan's
	// settled pass outcome; evalCPU accumulates the plan's per-batch
	// eval wall time for it, measured on the same t0 clock as hist/span.
	ledger  *Ledger
	evalCPU time.Duration
}

// measures reports whether the run needs per-batch eval timing (any of
// the latency histogram, the trace span or the cost ledger is wired).
func (rr *subRun) measures() bool {
	return rr.hist != nil || rr.span != nil || rr.ledger != nil
}

func (rr *subRun) BeginFeed(evs []xsax.Event) {
	if rr.done {
		return
	}
	if rr.sub.removed.Load() {
		rr.finish(ErrUnregistered)
		return
	}
	if rr.measures() {
		rr.t0 = time.Now()
	}
	rr.se.BeginFeed(evs)
}

// FeedCost reports the subscription plan's cost estimate so the
// pipelined pass can balance its evaluator worker stripes: the
// schema-statistics expected delivered-event count stamped at
// registration, falling back to the structural estimate.
func (rr *subRun) FeedCost() int {
	if c := rr.sub.cost; c > 0 {
		return c
	}
	return rr.sub.plan.CostEstimate()
}

func (rr *subRun) EndFeed() (done bool, err error) {
	if rr.done {
		return true, nil
	}
	done, err = rr.se.EndFeed()
	if rr.measures() {
		d := time.Since(rr.t0)
		rr.hist.Observe(d.Nanoseconds())
		rr.span.AddTime(d)
		rr.evalCPU += d
	}
	return done, err
}

func (rr *subRun) Close(cause error) {
	if rr.done {
		return
	}
	// A subscription unregistered mid-stream must report ErrUnregistered
	// even if no batch reached it after the unregistration — under trie
	// dispatch a plan whose paths see nothing of the stream tail is never
	// fed again, so the BeginFeed check alone would miss it.
	if rr.sub.removed.Load() {
		rr.finish(ErrUnregistered)
		return
	}
	rr.finish(cause)
}

func (rr *subRun) finish(cause error) {
	rr.done = true
	st, err := rr.se.Close(cause)
	if rr.acct != nil {
		as := rr.acct.Close()
		if st != nil {
			st.PeakHeapBufferBytes = as.PeakBytes
			st.SpilledBytes = as.SpilledBytes
			st.RehydratedBytes = as.RehydratedBytes
			// BudgetStall is stamped by Set.Run once the pass ends, so
			// every riding plan reports the same pass-wide stall.
		}
	}
	if st != nil {
		st.PassID = rr.passID
	}
	rr.ledger.record(rr.sub.name, st, rr.evalCPU, err)
	rr.sub.setResult(st, time.Since(rr.start), err)
}
