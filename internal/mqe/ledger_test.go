package mqe

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"fluxquery/internal/dtd"
	"fluxquery/internal/flightrec"
)

// TestLedgerAttributesAcrossPasses: the ledger accrues per-name cost
// over multiple passes and over multiple Sets sharing the ledger (the
// server shape: one process ledger, fresh Set per request).
func TestLedgerAttributesAcrossPasses(t *testing.T) {
	d := dtd.MustParse(weakBib)
	led := NewLedger()
	doc := bibDoc(50)

	for pass := 0; pass < 3; pass++ {
		s := NewSet(d)
		s.SetLedger(led)
		if s.Ledger() != led {
			t.Fatal("Ledger getter did not return the installed ledger")
		}
		if _, err := s.RegisterNamed(plan(t, q3, d), io.Discard, "books"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RegisterNamed(plan(t, qTitles, d), io.Discard, "titles"); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}

	if led.Len() != 2 {
		t.Fatalf("ledger holds %d entries, want 2", led.Len())
	}
	e, ok := led.Get("books")
	if !ok {
		t.Fatal("no entry for books")
	}
	if e.Passes != 3 || e.Errors != 0 || e.LastError != "" {
		t.Fatalf("books entry = %+v, want 3 clean passes", e)
	}
	if e.EvalCPU <= 0 {
		t.Errorf("EvalCPU = %v, want > 0", e.EvalCPU)
	}
	if e.Events <= 0 || e.OutputBytes <= 0 {
		t.Errorf("Events = %d OutputBytes = %d, want > 0", e.Events, e.OutputBytes)
	}
	if e.LastPassID == 0 {
		t.Error("LastPassID not stamped")
	}

	// Stats is sorted by name; per-entry sums are disjoint per name.
	all := led.Stats()
	if len(all) != 2 || all[0].Name != "books" || all[1].Name != "titles" {
		t.Fatalf("Stats() = %+v", all)
	}
}

// TestLedgerRecordsErrors: a failing subscription accrues an error and
// retains its message; the healthy neighbour stays clean.
func TestLedgerRecordsErrors(t *testing.T) {
	d := dtd.MustParse(weakBib)
	led := NewLedger()
	s := NewSet(d)
	s.SetLedger(led)
	if _, err := s.RegisterNamed(plan(t, q3, d), &failAfter{n: 64}, "bad"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterNamed(plan(t, q3, d), io.Discard, "good"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(strings.NewReader(bibDoc(2000))); err != nil {
		t.Fatal(err)
	}
	bad, _ := led.Get("bad")
	if bad.Errors != 1 || bad.LastError == "" {
		t.Fatalf("bad entry = %+v, want 1 error with message", bad)
	}
	good, _ := led.Get("good")
	if good.Errors != 0 || good.LastError != "" {
		t.Fatalf("good entry = %+v, want clean", good)
	}
}

func TestLedgerTopK(t *testing.T) {
	led := NewLedger()
	led.record("a", nil, 30*time.Millisecond, nil)
	led.record("b", nil, 10*time.Millisecond, errors.New("boom"))
	led.record("c", nil, 20*time.Millisecond, nil)
	led.record("c", nil, 20*time.Millisecond, nil)

	top, err := led.TopK("cpu", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Name != "c" || top[1].Name != "a" {
		t.Fatalf("TopK(cpu, 2) = %+v", top)
	}
	top, err = led.TopK("errors", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Name != "b" {
		t.Fatalf("TopK(errors, 1) = %+v", top)
	}
	top, err = led.TopK("passes", 0)
	if err != nil || len(top) != 3 || top[0].Name != "c" {
		t.Fatalf("TopK(passes, 0) = %+v, %v", top, err)
	}
	if _, err := led.TopK("bogus", 3); err == nil {
		t.Fatal("unknown axis accepted")
	}
	// Ties break by name for determinism.
	led2 := NewLedger()
	led2.record("z", nil, time.Millisecond, nil)
	led2.record("a", nil, time.Millisecond, nil)
	top, _ = led2.TopK("cpu", 0)
	if top[0].Name != "a" || top[1].Name != "z" {
		t.Fatalf("tie order = %+v", top)
	}

	led.Reset()
	if led.Len() != 0 {
		t.Fatal("Reset left entries")
	}
}

func TestNilLedgerIsNoop(t *testing.T) {
	var led *Ledger
	led.record("x", nil, time.Second, errors.New("boom"))
	if led.Len() != 0 {
		t.Fatal("nil ledger has entries")
	}
	if _, ok := led.Get("x"); ok {
		t.Fatal("nil ledger resolved an entry")
	}
	if led.Stats() != nil {
		t.Fatal("nil ledger returned stats")
	}
	if top, err := led.TopK("cpu", 3); err != nil || top != nil {
		t.Fatalf("nil TopK = %v, %v", top, err)
	}
	led.Reset()
}

// TestSetFlightRecorder: every completed pass — success and failure —
// deposits one record carrying configuration, data flow and the request
// id; the pass id matches the subscriptions' stamped PassID.
func TestSetFlightRecorder(t *testing.T) {
	d := dtd.MustParse(weakBib)
	rec := flightrec.New(flightrec.Config{Size: 8})
	s := NewSet(d)
	s.SetRecorder(rec)
	if s.Recorder() != rec {
		t.Fatal("Recorder getter did not return the installed recorder")
	}
	s.SetRequestID("req-42")
	sub, err := s.RegisterNamed(plan(t, q3, d), io.Discard, "books")
	if err != nil {
		t.Fatal(err)
	}
	doc := bibDoc(50)
	if err := s.Run(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}

	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d records, want 1", rec.Len())
	}
	r := rec.Snapshot(1)[0]
	st, _ := sub.Result()
	if r.PassID != st.PassID {
		t.Errorf("record pass id %d != sub pass id %d", r.PassID, st.PassID)
	}
	if r.RequestID != "req-42" {
		t.Errorf("RequestID = %q", r.RequestID)
	}
	if r.Plans != 1 || r.Projection == "" || r.Dispatch == "" {
		t.Errorf("configuration fields = %+v", r)
	}
	if r.InputBytes != int64(len(doc)) {
		t.Errorf("InputBytes = %d, want %d", r.InputBytes, len(doc))
	}
	if r.Events <= 0 || r.Duration <= 0 || r.MBps <= 0 {
		t.Errorf("data flow = events=%d dur=%v mbps=%f", r.Events, r.Duration, r.MBps)
	}
	if r.Err != "" || r.CancelReason != "" || r.PlanErrors != 0 {
		t.Errorf("clean pass carries error fields: %+v", r)
	}
	// No tracing, no slow thresholds: the trace must not be retained.
	if r.Trace != nil {
		t.Error("fast pass retained a trace")
	}
	if s.LastTrace() != nil {
		t.Error("recorder-only pass leaked into LastTrace")
	}

	// A failed pass still deposits a record with its terminal error.
	if err := s.Run(strings.NewReader(`<bib><book><title>T</title><broken`)); err == nil {
		t.Fatal("malformed stream accepted")
	}
	if rec.Total() != 2 {
		t.Fatalf("recorder total = %d after failed pass, want 2", rec.Total())
	}
	r = rec.Snapshot(1)[0]
	if r.Err == "" {
		t.Error("failed pass recorded without error")
	}
	if r.PlanErrors != 1 {
		t.Errorf("PlanErrors = %d, want 1", r.PlanErrors)
	}
}

// TestSetSlowPassCaptureWithoutTracing: with tracing off but a slow
// threshold armed, a slow pass's record retains a span tree and dumps
// through the logger — and LastTrace stays nil (tracing is a separate,
// user-facing switch).
func TestSetSlowPassCaptureWithoutTracing(t *testing.T) {
	d := dtd.MustParse(weakBib)
	var buf bytes.Buffer
	rec := flightrec.New(flightrec.Config{
		Size:        8,
		SlowLatency: time.Nanosecond, // everything is slow
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
	})
	s := NewSet(d)
	s.SetRecorder(rec)
	if _, err := s.RegisterNamed(plan(t, q3, d), io.Discard, "books"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(strings.NewReader(bibDoc(20))); err != nil {
		t.Fatal(err)
	}
	r := rec.Snapshot(1)[0]
	if !r.Slow {
		t.Fatal("pass over threshold not marked slow")
	}
	if r.Trace == nil {
		t.Fatal("slow pass has no span tree despite CapturesSlow")
	}
	if !strings.Contains(buf.String(), "slow pass") {
		t.Errorf("no slow-pass dump: %s", buf.String())
	}
	if s.LastTrace() != nil {
		t.Error("slow-capture trace leaked into LastTrace")
	}
}
